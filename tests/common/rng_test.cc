#include "common/rng.h"

#include <gtest/gtest.h>

#include <map>

namespace expdb {
namespace {

TEST(RngTest, DeterministicForSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextUint64(), b.NextUint64());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  bool differs = false;
  for (int i = 0; i < 10 && !differs; ++i) {
    differs = a.NextUint64() != b.NextUint64();
  }
  EXPECT_TRUE(differs);
}

TEST(RngTest, UniformIntStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 10'000; ++i) {
    int64_t v = rng.UniformInt(-3, 12);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 12);
  }
}

TEST(RngTest, UniformIntSingletonRange) {
  Rng rng(7);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(rng.UniformInt(5, 5), 5);
  }
}

TEST(RngTest, UniformIntCoversRange) {
  Rng rng(11);
  std::map<int64_t, int> counts;
  for (int i = 0; i < 10'000; ++i) ++counts[rng.UniformInt(0, 9)];
  EXPECT_EQ(counts.size(), 10u);
  for (const auto& [v, n] : counts) {
    EXPECT_GT(n, 700) << "value " << v << " badly underrepresented";
  }
}

TEST(RngTest, UniformDoubleInHalfOpenUnitInterval) {
  Rng rng(13);
  for (int i = 0; i < 10'000; ++i) {
    double d = rng.UniformDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, BernoulliExtremes) {
  Rng rng(17);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
  }
}

TEST(ZipfTest, RanksWithinBounds) {
  Rng rng(19);
  ZipfDistribution zipf(100, 1.0);
  for (int i = 0; i < 10'000; ++i) {
    int64_t r = zipf.Sample(rng);
    EXPECT_GE(r, 1);
    EXPECT_LE(r, 100);
  }
}

TEST(ZipfTest, SkewFavorsLowRanks) {
  Rng rng(23);
  ZipfDistribution zipf(1000, 1.2);
  int64_t low = 0, high = 0;
  for (int i = 0; i < 20'000; ++i) {
    int64_t r = zipf.Sample(rng);
    if (r <= 10) ++low;
    if (r > 500) ++high;
  }
  EXPECT_GT(low, high * 4) << "rank 1-10 should dominate ranks 501+";
}

TEST(ZipfTest, ZeroSkewIsUniform) {
  Rng rng(29);
  ZipfDistribution zipf(10, 0.0);
  std::map<int64_t, int> counts;
  for (int i = 0; i < 20'000; ++i) ++counts[zipf.Sample(rng)];
  for (const auto& [v, n] : counts) {
    EXPECT_GT(n, 1500);
    EXPECT_LT(n, 2500);
  }
}

}  // namespace
}  // namespace expdb
