#include "common/thread_pool.h"

#include <atomic>
#include <mutex>
#include <numeric>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "obs/trace.h"

namespace expdb {
namespace {

TEST(ThreadPoolTest, RunsScheduledTasks) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.num_threads(), 3u);
  std::atomic<int> count{0};
  std::mutex mu;
  std::condition_variable cv;
  constexpr int kTasks = 100;
  for (int i = 0; i < kTasks; ++i) {
    pool.Schedule([&] {
      if (count.fetch_add(1) + 1 == kTasks) {
        std::lock_guard<std::mutex> lock(mu);
        cv.notify_all();
      }
    });
  }
  std::unique_lock<std::mutex> lock(mu);
  cv.wait(lock, [&] { return count.load() == kTasks; });
  EXPECT_EQ(count.load(), kTasks);
}

TEST(ThreadPoolTest, ZeroThreadsClampsToOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), 1u);
}

TEST(ThreadPoolTest, WorkerThreadsAreMarked) {
  EXPECT_FALSE(ThreadPool::InWorkerThread());
  ThreadPool pool(1);
  std::atomic<bool> in_worker{false};
  std::atomic<bool> done{false};
  std::mutex mu;
  std::condition_variable cv;
  pool.Schedule([&] {
    in_worker = ThreadPool::InWorkerThread();
    std::lock_guard<std::mutex> lock(mu);
    done = true;
    cv.notify_all();
  });
  std::unique_lock<std::mutex> lock(mu);
  cv.wait(lock, [&] { return done.load(); });
  EXPECT_TRUE(in_worker.load());
  EXPECT_FALSE(ThreadPool::InWorkerThread());
}

TEST(ThreadPoolTest, SharedPoolHasAtLeastFourWorkers) {
  EXPECT_GE(ThreadPool::Shared().num_threads(), 4u);
}

// --- ParallelFor -----------------------------------------------------------

ParallelForOptions SmallMorselOptions(size_t parallelism, size_t min_morsel) {
  ParallelForOptions opts;
  opts.parallelism = parallelism;
  opts.min_morsel_size = min_morsel;
  return opts;
}

TEST(ParallelForTest, CoversRangeExactlyOnce) {
  constexpr size_t kN = 10000;
  std::vector<std::atomic<int>> touched(kN);
  ParallelForStats stats =
      ParallelFor(kN, SmallMorselOptions(4, 16), [&](size_t begin, size_t end) {
        ASSERT_LE(begin, end);
        ASSERT_LE(end, kN);
        for (size_t i = begin; i < end; ++i) touched[i].fetch_add(1);
      });
  for (size_t i = 0; i < kN; ++i) {
    ASSERT_EQ(touched[i].load(), 1) << "index " << i;
  }
  EXPECT_TRUE(stats.parallel);
  EXPECT_GE(stats.workers, 2u);
  EXPECT_GE(stats.morsels, 2u);
}

TEST(ParallelForTest, EmptyRangeIsANoOp) {
  std::atomic<int> calls{0};
  ParallelForStats stats = ParallelFor(
      0, SmallMorselOptions(4, 1), [&](size_t, size_t) { calls.fetch_add(1); });
  EXPECT_EQ(calls.load(), 0);
  EXPECT_FALSE(stats.parallel);
}

TEST(ParallelForTest, TinyRangeRunsSerialInline) {
  // Below 2 x min_morsel_size the body must run inline exactly once.
  std::thread::id caller = std::this_thread::get_id();
  std::atomic<int> calls{0};
  std::thread::id body_thread;
  ParallelForStats stats = ParallelFor(
      100, SmallMorselOptions(8, 64), [&](size_t begin, size_t end) {
        calls.fetch_add(1);
        body_thread = std::this_thread::get_id();
        EXPECT_EQ(begin, 0u);
        EXPECT_EQ(end, 100u);
      });
  EXPECT_EQ(calls.load(), 1);
  EXPECT_EQ(body_thread, caller);
  EXPECT_FALSE(stats.parallel);
  EXPECT_EQ(stats.workers, 1u);
}

TEST(ParallelForTest, ParallelismOneIsSerial) {
  std::atomic<int> calls{0};
  ParallelForStats stats =
      ParallelFor(100000, SmallMorselOptions(1, 16),
                  [&](size_t, size_t) { calls.fetch_add(1); });
  EXPECT_EQ(calls.load(), 1);
  EXPECT_FALSE(stats.parallel);
}

TEST(ParallelForTest, NestedFromWorkerRunsSerial) {
  // ParallelFor issued from inside a pool worker must not recurse into the
  // pool (deadlock risk); it runs the body inline.
  ThreadPool pool(2);
  std::atomic<bool> done{false};
  std::atomic<bool> inner_parallel{true};
  std::atomic<int> inner_calls{0};
  std::mutex mu;
  std::condition_variable cv;
  pool.Schedule([&] {
    ParallelForStats stats =
        ParallelFor(100000, SmallMorselOptions(4, 16),
                    [&](size_t, size_t) { inner_calls.fetch_add(1); });
    inner_parallel = stats.parallel;
    std::lock_guard<std::mutex> lock(mu);
    done = true;
    cv.notify_all();
  });
  std::unique_lock<std::mutex> lock(mu);
  cv.wait(lock, [&] { return done.load(); });
  EXPECT_FALSE(inner_parallel.load());
  EXPECT_EQ(inner_calls.load(), 1);
}

TEST(ParallelForTest, UsesMultipleThreadsWhenAvailable) {
  constexpr size_t kN = 1 << 16;
  std::mutex mu;
  std::set<std::thread::id> seen;
  ParallelFor(kN, SmallMorselOptions(4, 16), [&](size_t begin, size_t end) {
    // A little work so helpers have a chance to claim morsels.
    volatile size_t sink = 0;
    for (size_t i = begin; i < end; ++i) sink = sink + i;
    std::lock_guard<std::mutex> lock(mu);
    seen.insert(std::this_thread::get_id());
  });
  // With 4 workers and >= 8 morsels, at least the caller ran; typically
  // several threads participate. We only assert the sound lower bound to
  // stay deterministic on single-CPU machines.
  EXPECT_GE(seen.size(), 1u);
}

TEST(ParallelForTest, PropagatesBodyException) {
  EXPECT_THROW(
      ParallelFor(100000, SmallMorselOptions(4, 16),
                  [&](size_t begin, size_t) {
                    if (begin == 0) throw std::runtime_error("boom");
                  }),
      std::runtime_error);
}

TEST(ParallelForTest, StressSumMatchesSerial) {
  constexpr size_t kN = 1 << 18;
  std::vector<uint64_t> data(kN);
  std::iota(data.begin(), data.end(), 1);
  const uint64_t expected =
      std::accumulate(data.begin(), data.end(), uint64_t{0});
  for (int round = 0; round < 20; ++round) {
    std::atomic<uint64_t> sum{0};
    ParallelFor(kN, SmallMorselOptions(round % 8 + 1, 64),
                [&](size_t begin, size_t end) {
                  uint64_t local = 0;
                  for (size_t i = begin; i < end; ++i) local += data[i];
                  sum.fetch_add(local);
                });
    ASSERT_EQ(sum.load(), expected) << "round " << round;
  }
}

TEST(ParallelForTest, ConcurrentParallelForsFromManyThreads) {
  // Several caller threads issue ParallelFors against the shared pool at
  // once; each must still see its own range covered exactly once.
  constexpr size_t kCallers = 4;
  constexpr size_t kN = 1 << 15;
  std::vector<std::thread> callers;
  std::atomic<int> failures{0};
  for (size_t c = 0; c < kCallers; ++c) {
    callers.emplace_back([&] {
      std::vector<std::atomic<int>> touched(kN);
      ParallelFor(kN, SmallMorselOptions(4, 64),
                  [&](size_t begin, size_t end) {
                    for (size_t i = begin; i < end; ++i) touched[i].fetch_add(1);
                  });
      for (size_t i = 0; i < kN; ++i) {
        if (touched[i].load() != 1) failures.fetch_add(1);
      }
    });
  }
  for (auto& t : callers) t.join();
  EXPECT_EQ(failures.load(), 0);
}

TEST(ParallelForTest, HelperTasksInheritTheCallersTraceContext) {
  // Spans opened inside morsel bodies must be children of the caller's
  // enclosing span — across threads — not orphan roots.
  obs::TraceRecorder& rec = obs::TraceRecorder::Global();
  rec.Clear();
  const bool was_enabled = rec.enabled();
  rec.set_enabled(true);

  constexpr size_t kN = 1 << 14;
  uint64_t caller_span = 0;
  uint64_t caller_trace = 0;
  {
    obs::ScopedSpan outer("test.parallel_for");
    caller_span = outer.id();
    caller_trace = outer.trace_id();
    ParallelForOptions opts;
    opts.parallelism = 4;
    opts.min_morsel_size = 64;
    ParallelFor(kN, opts, [&](size_t begin, size_t end) {
      obs::ScopedSpan span("test.morsel");
      for (size_t i = begin; i < end; ++i) {
        // spin a little so morsels actually overlap across workers
      }
      (void)begin;
      (void)end;
    });
  }
  rec.set_enabled(was_enabled);

  size_t morsel_spans = 0;
  std::set<uint32_t> tids;
  for (const obs::SpanRecord& s : rec.Snapshot()) {
    if (std::string_view(s.name) != "test.morsel") continue;
    ++morsel_spans;
    tids.insert(s.tid);
    EXPECT_EQ(s.parent_id, caller_span) << "orphan morsel span";
    EXPECT_EQ(s.trace_id, caller_trace);
  }
  EXPECT_GT(morsel_spans, 1u);  // the range was actually split
  rec.Clear();
}

}  // namespace
}  // namespace expdb
