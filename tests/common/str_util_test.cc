#include "common/str_util.h"

#include <gtest/gtest.h>

namespace expdb {
namespace {

TEST(StrUtilTest, JoinStrings) {
  EXPECT_EQ(JoinStrings({}, ", "), "");
  EXPECT_EQ(JoinStrings({"a"}, ", "), "a");
  EXPECT_EQ(JoinStrings({"a", "b", "c"}, ", "), "a, b, c");
}

TEST(StrUtilTest, Padding) {
  EXPECT_EQ(PadRight("ab", 5), "ab   ");
  EXPECT_EQ(PadLeft("ab", 5), "   ab");
  EXPECT_EQ(PadRight("abcdef", 3), "abcdef");  // never truncates
  EXPECT_EQ(PadLeft("abcdef", 3), "abcdef");
}

TEST(StrUtilTest, CaseFolding) {
  EXPECT_EQ(AsciiToLower("SeLeCt"), "select");
  EXPECT_EQ(AsciiToUpper("SeLeCt"), "SELECT");
  EXPECT_TRUE(AsciiEqualsIgnoreCase("select", "SELECT"));
  EXPECT_TRUE(AsciiEqualsIgnoreCase("", ""));
  EXPECT_FALSE(AsciiEqualsIgnoreCase("a", "ab"));
  EXPECT_FALSE(AsciiEqualsIgnoreCase("abc", "abd"));
}

TEST(StrUtilTest, ParseInt64) {
  EXPECT_EQ(ParseInt64("42"), 42);
  EXPECT_EQ(ParseInt64("-7"), -7);
  EXPECT_EQ(ParseInt64("0"), 0);
  EXPECT_FALSE(ParseInt64("").has_value());
  EXPECT_FALSE(ParseInt64("4x").has_value());
  EXPECT_FALSE(ParseInt64("4.5").has_value());
  EXPECT_FALSE(ParseInt64("99999999999999999999").has_value());  // overflow
}

TEST(StrUtilTest, ParseDouble) {
  EXPECT_DOUBLE_EQ(ParseDouble("2.5").value(), 2.5);
  EXPECT_DOUBLE_EQ(ParseDouble("-0.25").value(), -0.25);
  EXPECT_DOUBLE_EQ(ParseDouble("3").value(), 3.0);
  EXPECT_FALSE(ParseDouble("").has_value());
  EXPECT_FALSE(ParseDouble("x").has_value());
  EXPECT_FALSE(ParseDouble("1.2.3").has_value());
}

}  // namespace
}  // namespace expdb
