#include "common/status.h"

#include <gtest/gtest.h>

#include "common/result.h"

namespace expdb {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::NotFound("no such relation");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_EQ(s.message(), "no such relation");
  EXPECT_EQ(s.ToString(), "NotFound: no such relation");
}

TEST(StatusTest, AllFactoriesProduceMatchingCodes) {
  EXPECT_EQ(Status::InvalidArgument("x").code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(Status::AlreadyExists("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::TypeError("x").code(), StatusCode::kTypeError);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::ParseError("x").code(), StatusCode::kParseError);
  EXPECT_EQ(Status::NotImplemented("x").code(),
            StatusCode::kNotImplemented);
  EXPECT_EQ(Status::ConstraintViolation("x").code(),
            StatusCode::kConstraintViolation);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
}

TEST(StatusTest, ReturnNotOkMacroPropagates) {
  auto fails = []() -> Status {
    EXPDB_RETURN_NOT_OK(Status::TypeError("bad"));
    return Status::OK();
  };
  EXPECT_EQ(fails().code(), StatusCode::kTypeError);

  auto passes = []() -> Status {
    EXPDB_RETURN_NOT_OK(Status::OK());
    return Status::AlreadyExists("reached end");
  };
  EXPECT_EQ(passes().code(), StatusCode::kAlreadyExists);
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("nope");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(ResultTest, OkStatusBecomesInternalError) {
  Result<int> r = Status::OK();
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInternal);
}

TEST(ResultTest, ValueOr) {
  EXPECT_EQ((Result<int>(7)).ValueOr(0), 7);
  EXPECT_EQ((Result<int>(Status::NotFound("x"))).ValueOr(9), 9);
}

TEST(ResultTest, MoveValue) {
  Result<std::string> r = std::string("payload");
  std::string s = r.MoveValue();
  EXPECT_EQ(s, "payload");
}

TEST(ResultTest, AssignOrReturnMacro) {
  auto inner = [](bool fail) -> Result<int> {
    if (fail) return Status::OutOfRange("boom");
    return 5;
  };
  auto outer = [&](bool fail) -> Result<int> {
    EXPDB_ASSIGN_OR_RETURN(int v, inner(fail));
    return v * 2;
  };
  EXPECT_EQ(outer(false).value(), 10);
  EXPECT_EQ(outer(true).status().code(), StatusCode::kOutOfRange);
}

}  // namespace
}  // namespace expdb
