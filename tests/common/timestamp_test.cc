#include "common/timestamp.h"

#include <gtest/gtest.h>

namespace expdb {
namespace {

TEST(TimestampTest, DefaultIsZero) {
  Timestamp t;
  EXPECT_TRUE(t.IsFinite());
  EXPECT_EQ(t.ticks(), 0);
  EXPECT_EQ(t, Timestamp::Zero());
}

TEST(TimestampTest, NegativeClampsToZero) {
  EXPECT_EQ(Timestamp(-5), Timestamp::Zero());
}

TEST(TimestampTest, InfinityIsLargerThanAnyFiniteTime) {
  // The paper: "the symbol ∞ ... is larger than any other time value".
  const Timestamp inf = Timestamp::Infinity();
  EXPECT_TRUE(inf.IsInfinite());
  EXPECT_GT(inf, Timestamp(0));
  EXPECT_GT(inf, Timestamp(1'000'000'000));
  EXPECT_EQ(inf, Timestamp::Infinity());
}

TEST(TimestampTest, TotalOrder) {
  EXPECT_LT(Timestamp(1), Timestamp(2));
  EXPECT_LE(Timestamp(2), Timestamp(2));
  EXPECT_GT(Timestamp(3), Timestamp(2));
  EXPECT_NE(Timestamp(1), Timestamp(2));
}

TEST(TimestampTest, AdditionIsSaturating) {
  EXPECT_EQ(Timestamp(5) + 3, Timestamp(8));
  EXPECT_EQ(Timestamp::Infinity() + 100, Timestamp::Infinity());
  // Near-overflow saturates below infinity rather than wrapping.
  Timestamp huge(INT64_MAX - 2);
  Timestamp bumped = huge + 100;
  EXPECT_TRUE(bumped.IsFinite());
  EXPECT_GE(bumped, huge);
}

TEST(TimestampTest, AdditionOfNegativeDelta) {
  EXPECT_EQ(Timestamp(5) + (-3), Timestamp(2));
  EXPECT_EQ(Timestamp(5) + (-10), Timestamp(0));  // clamped
}

TEST(TimestampTest, MinMax) {
  EXPECT_EQ(Timestamp::Min(Timestamp(3), Timestamp(7)), Timestamp(3));
  EXPECT_EQ(Timestamp::Max(Timestamp(3), Timestamp(7)), Timestamp(7));
  EXPECT_EQ(Timestamp::Min(Timestamp(3), Timestamp::Infinity()),
            Timestamp(3));
  EXPECT_EQ(Timestamp::Max(Timestamp(3), Timestamp::Infinity()),
            Timestamp::Infinity());
  EXPECT_EQ(
      Timestamp::Min({Timestamp(9), Timestamp(2), Timestamp(5)}),
      Timestamp(2));
  EXPECT_EQ(
      Timestamp::Max({Timestamp(9), Timestamp(2), Timestamp(5)}),
      Timestamp(9));
}

TEST(TimestampTest, NextIsSuccessor) {
  EXPECT_EQ(Timestamp(4).Next(), Timestamp(5));
  EXPECT_EQ(Timestamp::Infinity().Next(), Timestamp::Infinity());
}

TEST(TimestampTest, ToString) {
  EXPECT_EQ(Timestamp(42).ToString(), "42");
  EXPECT_EQ(Timestamp::Infinity().ToString(), "inf");
}

TEST(TimestampTest, HashDistinguishesValues) {
  std::hash<Timestamp> h;
  EXPECT_EQ(h(Timestamp(7)), h(Timestamp(7)));
  EXPECT_NE(h(Timestamp(7)), h(Timestamp(8)));
}

}  // namespace
}  // namespace expdb
