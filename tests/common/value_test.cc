#include "common/value.h"

#include <gtest/gtest.h>

namespace expdb {
namespace {

TEST(ValueTest, DefaultIsNull) {
  Value v;
  EXPECT_TRUE(v.is_null());
  EXPECT_EQ(v.type(), ValueType::kNull);
  EXPECT_EQ(v.ToString(), "NULL");
}

TEST(ValueTest, TypedConstruction) {
  EXPECT_TRUE(Value(42).is_int64());
  EXPECT_TRUE(Value(int64_t{42}).is_int64());
  EXPECT_TRUE(Value(2.5).is_double());
  EXPECT_TRUE(Value("hi").is_string());
  EXPECT_TRUE(Value(std::string("hi")).is_string());
}

TEST(ValueTest, Accessors) {
  EXPECT_EQ(Value(42).AsInt64(), 42);
  EXPECT_DOUBLE_EQ(Value(2.5).AsDouble(), 2.5);
  EXPECT_EQ(Value("abc").AsString(), "abc");
}

TEST(ValueTest, MixedNumericEquality) {
  EXPECT_EQ(Value(3), Value(3.0));
  EXPECT_NE(Value(3), Value(3.5));
  EXPECT_LT(Value(3), Value(3.5));
  EXPECT_GT(Value(4.5), Value(4));
}

TEST(ValueTest, EqualValuesHashEqual) {
  // Required by the hash/equality contract used by Tuple hashing.
  EXPECT_EQ(Value(3).Hash(), Value(3.0).Hash());
  EXPECT_EQ(Value("x").Hash(), Value(std::string("x")).Hash());
}

TEST(ValueTest, CrossTypeOrdering) {
  // Null < numerics < strings.
  EXPECT_LT(Value::Null(), Value(0));
  EXPECT_LT(Value(999), Value("a"));
  EXPECT_LT(Value::Null(), Value(""));
}

TEST(ValueTest, StringOrdering) {
  EXPECT_LT(Value("abc"), Value("abd"));
  EXPECT_LT(Value("ab"), Value("abc"));
  EXPECT_EQ(Value("abc"), Value("abc"));
}

TEST(ValueTest, ToNumeric) {
  EXPECT_DOUBLE_EQ(Value(7).ToNumeric().value(), 7.0);
  EXPECT_DOUBLE_EQ(Value(7.5).ToNumeric().value(), 7.5);
  EXPECT_FALSE(Value("x").ToNumeric().ok());
  EXPECT_FALSE(Value::Null().ToNumeric().ok());
}

TEST(ValueTest, AddIntegers) {
  auto sum = Value(2).Add(Value(3));
  ASSERT_TRUE(sum.ok());
  EXPECT_TRUE(sum->is_int64());
  EXPECT_EQ(sum->AsInt64(), 5);
}

TEST(ValueTest, AddMixedWidensToDouble) {
  auto sum = Value(2).Add(Value(0.5));
  ASSERT_TRUE(sum.ok());
  EXPECT_TRUE(sum->is_double());
  EXPECT_DOUBLE_EQ(sum->AsDouble(), 2.5);
}

TEST(ValueTest, AddStringFails) {
  EXPECT_FALSE(Value(1).Add(Value("x")).ok());
}

TEST(ValueTest, DoubleToStringTrimsZeros) {
  EXPECT_EQ(Value(2.5).ToString(), "2.5");
  EXPECT_EQ(Value(2.0).ToString(), "2.0");
}

}  // namespace
}  // namespace expdb
