// A deliberately naive reference evaluator for differential testing.
//
// Implements the paper's operator definitions *literally* — nested loops,
// no hash paths, derived operators expanded through their defining
// rewrites (⋈ via Eq. 5, ∩ via Eq. 6, ⋉ via π(⋈)) — and entirely
// independently of src/core/eval.cc. Any divergence between the two
// evaluators on any input is a bug in one of them.

#ifndef EXPDB_TESTS_SUPPORT_REFERENCE_EVAL_H_
#define EXPDB_TESTS_SUPPORT_REFERENCE_EVAL_H_

#include <map>
#include <vector>

#include "core/aggregate.h"
#include "core/expression.h"
#include "relational/database.h"

namespace expdb {
namespace testing {

/// \brief Evaluates `e` at time `tau` per the paper's definitions.
/// Aggregation uses the conservative Eq. (8) rule (the reference baseline
/// every optimized mode must refine). Only the result relation is
/// produced; expression-level texp is out of scope here.
inline Result<Relation> ReferenceEval(const ExpressionPtr& e,
                                      const Database& db, Timestamp tau) {
  using Entries = std::vector<std::pair<Tuple, Timestamp>>;
  auto entries_of = [](const Relation& r) {
    return r.SortedEntries();
  };

  switch (e->kind()) {
    case ExprKind::kBase: {
      EXPDB_ASSIGN_OR_RETURN(const Relation* rel,
                             db.GetRelation(e->relation_name()));
      // expτ(R) = {r | texp_R(r) > τ}.
      Relation out(rel->schema());
      for (const auto& [t, texp] : entries_of(*rel)) {
        if (texp > tau) out.InsertUnchecked(t, texp);
      }
      return out;
    }
    case ExprKind::kSelect: {
      EXPDB_ASSIGN_OR_RETURN(Relation child,
                             ReferenceEval(e->left(), db, tau));
      EXPDB_RETURN_NOT_OK(e->predicate().Validate(child.schema()));
      Relation out(child.schema());
      for (const auto& [t, texp] : entries_of(child)) {
        if (e->predicate().Evaluate(t)) out.InsertUnchecked(t, texp);
      }
      return out;
    }
    case ExprKind::kProject: {
      EXPDB_ASSIGN_OR_RETURN(Relation child,
                             ReferenceEval(e->left(), db, tau));
      EXPDB_ASSIGN_OR_RETURN(Schema schema,
                             child.schema().Project(e->projection()));
      // Eq. (3): max over all coinciding duplicates.
      Relation out(std::move(schema));
      for (const auto& [t, texp] : entries_of(child)) {
        Tuple projected = t.Project(e->projection());
        auto existing = out.GetTexp(projected);
        Timestamp best = existing ? Timestamp::Max(*existing, texp) : texp;
        out.InsertUnchecked(std::move(projected), best);
      }
      return out;
    }
    case ExprKind::kProduct: {
      EXPDB_ASSIGN_OR_RETURN(Relation l, ReferenceEval(e->left(), db, tau));
      EXPDB_ASSIGN_OR_RETURN(Relation r,
                             ReferenceEval(e->right(), db, tau));
      Relation out(l.schema().Concat(r.schema()));
      for (const auto& [lt, ltexp] : entries_of(l)) {
        for (const auto& [rt, rtexp] : entries_of(r)) {
          out.InsertUnchecked(lt.Concat(rt), Timestamp::Min(ltexp, rtexp));
        }
      }
      return out;
    }
    case ExprKind::kUnion: {
      EXPDB_ASSIGN_OR_RETURN(Relation l, ReferenceEval(e->left(), db, tau));
      EXPDB_ASSIGN_OR_RETURN(Relation r,
                             ReferenceEval(e->right(), db, tau));
      if (!l.schema().UnionCompatibleWith(r.schema())) {
        return Status::TypeError("union-incompatible");
      }
      Relation out(l.schema());
      // Eq. (4): three cases, written out.
      for (const auto& [t, ltexp] : entries_of(l)) {
        auto rtexp = r.GetTexp(t);
        out.InsertUnchecked(
            t, rtexp ? Timestamp::Max(ltexp, *rtexp) : ltexp);
      }
      for (const auto& [t, rtexp] : entries_of(r)) {
        if (!l.Contains(t)) out.InsertUnchecked(t, rtexp);
      }
      return out;
    }
    case ExprKind::kJoin: {
      // Eq. (5): R ⋈exp_p S = σexp_{p'}(R ×exp S).
      auto rewritten = Expression::MakeSelect(
          Expression::MakeProduct(e->left(), e->right()), e->predicate());
      return ReferenceEval(rewritten, db, tau);
    }
    case ExprKind::kIntersect: {
      // Eq. (6): π over a self-equality selection of the product.
      EXPDB_ASSIGN_OR_RETURN(Schema lschema, e->left()->InferSchema(db));
      const size_t n = lschema.arity();
      Predicate p = Predicate::ColumnsEqual(0, n);
      for (size_t i = 1; i < n; ++i) {
        p = p.And(Predicate::ColumnsEqual(i, n + i));
      }
      std::vector<size_t> keep;
      for (size_t i = 0; i < n; ++i) keep.push_back(i);
      auto rewritten = Expression::MakeProject(
          Expression::MakeSelect(
              Expression::MakeProduct(e->left(), e->right()), p),
          keep);
      return ReferenceEval(rewritten, db, tau);
    }
    case ExprKind::kDifference: {
      EXPDB_ASSIGN_OR_RETURN(Relation l, ReferenceEval(e->left(), db, tau));
      EXPDB_ASSIGN_OR_RETURN(Relation r,
                             ReferenceEval(e->right(), db, tau));
      if (!l.schema().UnionCompatibleWith(r.schema())) {
        return Status::TypeError("union-incompatible");
      }
      // Eq. (10).
      Relation out(l.schema());
      for (const auto& [t, texp] : entries_of(l)) {
        if (!r.Contains(t)) out.InsertUnchecked(t, texp);
      }
      return out;
    }
    case ExprKind::kAggregate: {
      EXPDB_ASSIGN_OR_RETURN(Relation child,
                             ReferenceEval(e->left(), db, tau));
      EXPDB_ASSIGN_OR_RETURN(Schema schema, e->InferSchema(db));
      // φexp (Eq. 7): partition by equality on the grouping attributes.
      Entries entries = child.SortedEntries();
      std::map<Tuple, std::vector<PartitionEntry>> partitions;
      for (const auto& [t, texp] : entries) {
        partitions[t.Project(e->group_by())].push_back({&t, texp});
      }
      Relation out(std::move(schema));
      for (const auto& [key, partition] : partitions) {
        EXPDB_ASSIGN_OR_RETURN(Value value,
                               ApplyAggregate(e->aggregate(), partition));
        // Eq. (8), conservative: min texp over the partition, capped by
        // the source tuple (DESIGN.md correction).
        Timestamp min_texp = Timestamp::Infinity();
        for (const PartitionEntry& entry : partition) {
          min_texp = Timestamp::Min(min_texp, entry.texp);
        }
        for (const PartitionEntry& entry : partition) {
          out.InsertUnchecked(entry.tuple->Append(value),
                              Timestamp::Min(entry.texp, min_texp));
        }
      }
      return out;
    }
    case ExprKind::kSemiJoin: {
      // Defining rewrite: π_{1..α(R)}(R ⋈exp_p S).
      EXPDB_ASSIGN_OR_RETURN(Schema lschema, e->left()->InferSchema(db));
      std::vector<size_t> keep;
      for (size_t i = 0; i < lschema.arity(); ++i) keep.push_back(i);
      auto rewritten = Expression::MakeProject(
          Expression::MakeJoin(e->left(), e->right(), e->predicate()),
          keep);
      return ReferenceEval(rewritten, db, tau);
    }
    case ExprKind::kAntiJoin: {
      EXPDB_ASSIGN_OR_RETURN(Relation l, ReferenceEval(e->left(), db, tau));
      EXPDB_ASSIGN_OR_RETURN(Relation r,
                             ReferenceEval(e->right(), db, tau));
      EXPDB_RETURN_NOT_OK(
          e->predicate().Validate(l.schema().Concat(r.schema())));
      Relation out(l.schema());
      for (const auto& [lt, ltexp] : l.SortedEntries()) {
        bool matched = false;
        for (const auto& [rt, rtexp] : r.SortedEntries()) {
          if (e->predicate().Evaluate(lt.Concat(rt))) {
            matched = true;
            break;
          }
        }
        if (!matched) out.InsertUnchecked(lt, ltexp);
      }
      return out;
    }
  }
  return Status::Internal("unknown expression kind");
}

}  // namespace testing
}  // namespace expdb

#endif  // EXPDB_TESTS_SUPPORT_REFERENCE_EVAL_H_
