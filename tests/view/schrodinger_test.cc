// Schrödinger's cat semantics at the view level (paper Sec. 3.3-3.4):
// "an (materialised) expression is only required to contain correct
// values when a user queries it." Reads inside validity intervals are
// served without recomputation; reads in gaps are recomputed or moved
// backward/forward in time.

#include <gtest/gtest.h>

#include "view/materialized_view.h"

namespace expdb {
namespace {

using namespace algebra;  // NOLINT

Timestamp T(int64_t t) { return Timestamp(t); }

class SchrodingerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Relation* r = db_.CreateRelation(
                         "R", Schema({{"x", ValueType::kInt64}})).value();
    Relation* s = db_.CreateRelation(
                         "S", Schema({{"x", ValueType::kInt64}})).value();
    // One critical tuple <1>: absent in [0,5), present in [5,9), absent
    // again from 9 — the paper's Sec. 3.3 motivating shape. A second
    // never-critical tuple <7> keeps the result non-empty.
    ASSERT_TRUE(r->Insert(Tuple{1}, T(9)).ok());
    ASSERT_TRUE(s->Insert(Tuple{1}, T(5)).ok());
    ASSERT_TRUE(r->Insert(Tuple{7}, T(30)).ok());
    expr_ = Difference(Base("R"), Base("S"));
  }

  MaterializedView MakeView(MovePolicy policy) {
    MaterializedView::Options opts;
    opts.mode = RefreshMode::kSchrodinger;
    opts.move_policy = policy;
    return MaterializedView(expr_, opts);
  }

  Database db_;
  ExpressionPtr expr_;
};

TEST_F(SchrodingerTest, ValidityHasGapThenRecovers) {
  MaterializedView view = MakeView(MovePolicy::kRecompute);
  ASSERT_TRUE(view.Initialize(db_, T(0)).ok());
  // Valid on [0,5) and [9,∞); invalid on the window [5,9).
  EXPECT_TRUE(view.validity().Contains(T(0)));
  EXPECT_TRUE(view.validity().Contains(T(4)));
  EXPECT_FALSE(view.validity().Contains(T(5)));
  EXPECT_FALSE(view.validity().Contains(T(8)));
  EXPECT_TRUE(view.validity().Contains(T(9)));
  EXPECT_TRUE(view.validity().Contains(T(100)));
}

TEST_F(SchrodingerTest, ReadsInsideValidityDoNotRecompute) {
  MaterializedView view = MakeView(MovePolicy::kRecompute);
  ASSERT_TRUE(view.Initialize(db_, T(0)).ok());
  for (int64_t t : {0, 3, 4, 9, 10, 20}) {
    auto served = view.Read(db_, T(t));
    ASSERT_TRUE(served.ok());
  }
  EXPECT_EQ(view.stats().recomputations, 0u);
  EXPECT_EQ(view.stats().reads_from_materialization, 6u);
}

TEST_F(SchrodingerTest, GapReadRecomputesUnderRecomputePolicy) {
  MaterializedView view = MakeView(MovePolicy::kRecompute);
  ASSERT_TRUE(view.Initialize(db_, T(0)).ok());
  auto served = view.Read(db_, T(6));
  ASSERT_TRUE(served.ok());
  EXPECT_EQ(view.stats().recomputations, 1u);
  // Correct contents: <1> visible (expired from S, alive in R).
  EXPECT_TRUE(served->Contains(Tuple{1}));
  EXPECT_TRUE(served->Contains(Tuple{7}));
}

TEST_F(SchrodingerTest, MoveBackwardServesOutdatedButValidTime) {
  MaterializedView view = MakeView(MovePolicy::kMoveBackward);
  ASSERT_TRUE(view.Initialize(db_, T(0)).ok());
  Timestamp served_at;
  auto served = view.Read(db_, T(6), &served_at);
  ASSERT_TRUE(served.ok());
  EXPECT_EQ(view.stats().recomputations, 0u);
  EXPECT_EQ(view.stats().reads_moved_backward, 1u);
  EXPECT_EQ(served_at, T(4));  // last valid instant before the gap
  // The served result is the correct answer *for time 4*.
  auto fresh = Evaluate(expr_, db_, T(4));
  ASSERT_TRUE(fresh.ok());
  EXPECT_TRUE(Relation::ContentsEqualAt(*served, fresh->relation, T(4)));
}

TEST_F(SchrodingerTest, MoveForwardServesDelayedTime) {
  MaterializedView view = MakeView(MovePolicy::kMoveForward);
  ASSERT_TRUE(view.Initialize(db_, T(0)).ok());
  Timestamp served_at;
  auto served = view.Read(db_, T(6), &served_at);
  ASSERT_TRUE(served.ok());
  EXPECT_EQ(view.stats().recomputations, 0u);
  EXPECT_EQ(view.stats().reads_moved_forward, 1u);
  EXPECT_EQ(served_at, T(9));  // first valid instant at/after the gap
  auto fresh = Evaluate(expr_, db_, T(9));
  ASSERT_TRUE(fresh.ok());
  EXPECT_TRUE(Relation::ContentsEqualAt(*served, fresh->relation, T(9)));
}

TEST_F(SchrodingerTest, MoveBackwardFallsBackToRecomputeWithoutHistory) {
  // Materialize *inside* what would otherwise already be a gap: no valid
  // time precedes the gap for a view materialized at 5.
  MaterializedView view = MakeView(MovePolicy::kMoveBackward);
  ASSERT_TRUE(view.Initialize(db_, T(5)).ok());
  // A view created at 5 sees <1> (expired from S): it is valid from 5
  // until... <1> dies from R at 9 — no criticals remain, so valid
  // everywhere. Force a real gap instead with a fresh critical pair.
  Relation* r = db_.GetRelation("R").value();
  Relation* s = db_.GetRelation("S").value();
  ASSERT_TRUE(r->Insert(Tuple{2}, T(20)).ok());
  ASSERT_TRUE(s->Insert(Tuple{2}, T(12)).ok());
  MaterializedView view2 = MakeView(MovePolicy::kMoveBackward);
  ASSERT_TRUE(view2.Initialize(db_, T(12)).ok());
  // At 12 the view is already in its invalid window [12, 20)? No: at
  // materialization time 12 tuple <2> has already expired from S, so it
  // is correctly included; validity starts at 12.
  EXPECT_TRUE(view2.validity().Contains(T(12)));
}

TEST_F(SchrodingerTest, EveryPolicyServesInternallyConsistentResults) {
  for (MovePolicy policy : {MovePolicy::kRecompute,
                            MovePolicy::kMoveBackward,
                            MovePolicy::kMoveForward}) {
    MaterializedView view = MakeView(policy);
    ASSERT_TRUE(view.Initialize(db_, T(0)).ok());
    for (int64_t t = 0; t <= 12; ++t) {
      Timestamp served_at;
      auto served = view.Read(db_, T(t), &served_at);
      ASSERT_TRUE(served.ok());
      // Whatever time was served, the contents are exactly the
      // recomputation at that time.
      auto fresh = Evaluate(expr_, db_, served_at);
      ASSERT_TRUE(fresh.ok());
      EXPECT_TRUE(
          Relation::ContentsEqualAt(*served, fresh->relation, served_at))
          << MovePolicyToString(policy) << " inconsistent at t=" << t
          << " (served " << served_at << ")";
    }
  }
}

}  // namespace
}  // namespace expdb
