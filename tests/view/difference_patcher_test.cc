// Theorem 3 as executable property: a materialized difference patched with
// the expiring tuples of the helper relation R(R −exp S) never needs
// recomputation — its effective expiration time is ∞ — and each patched
// tuple carries expiration texp_R(t).

#include <gtest/gtest.h>

#include "testing/workload.h"
#include "view/materialized_view.h"

namespace expdb {
namespace {

using namespace algebra;  // NOLINT

Timestamp T(int64_t t) { return Timestamp(t); }

TEST(DifferencePatcherTest, PaperExamplePatchesInsteadOfRecomputing) {
  Database db;
  Relation* pol = db.CreateRelation(
                         "Pol", Schema({{"UID", ValueType::kInt64}})).value();
  ASSERT_TRUE(pol->Insert(Tuple{1}, T(10)).ok());
  ASSERT_TRUE(pol->Insert(Tuple{2}, T(15)).ok());
  ASSERT_TRUE(pol->Insert(Tuple{3}, T(10)).ok());
  Relation* el = db.CreateRelation(
                        "El", Schema({{"UID", ValueType::kInt64}})).value();
  ASSERT_TRUE(el->Insert(Tuple{1}, T(5)).ok());
  ASSERT_TRUE(el->Insert(Tuple{2}, T(3)).ok());
  ASSERT_TRUE(el->Insert(Tuple{4}, T(2)).ok());

  auto e = Difference(Base("Pol"), Base("El"));
  MaterializedView::Options opts;
  opts.mode = RefreshMode::kPatchDifference;
  MaterializedView view(e, opts);
  ASSERT_TRUE(view.Initialize(db, T(0)).ok());

  // Monotonic arguments: patched lifetime is infinite (Theorem 3).
  EXPECT_TRUE(view.texp().IsInfinite());
  EXPECT_EQ(view.pending_patches(), 2u);  // <2> at 3, <1> at 5

  for (int64_t t = 0; t <= 20; ++t) {
    auto served = view.Read(db, T(t));
    ASSERT_TRUE(served.ok());
    auto fresh = Evaluate(e, db, T(t));
    ASSERT_TRUE(fresh.ok());
    EXPECT_TRUE(Relation::EqualAt(*served, fresh->relation, T(t)))
        << "patched view diverges at " << t;
  }
  EXPECT_EQ(view.stats().recomputations, 0u);
  EXPECT_EQ(view.stats().patches_applied, 2u);

  // The patched-in tuple <1> carries texp_R = 10 (Theorem 3's claim).
  MaterializedView view2(e, opts);
  ASSERT_TRUE(view2.Initialize(db, T(0)).ok());
  ASSERT_TRUE(view2.AdvanceTo(db, T(5)).ok());
  EXPECT_EQ(view2.result().relation.GetTexp(Tuple{1}), T(10));
}

TEST(DifferencePatcherTest, SkipsPatchesThatAlreadyExpired) {
  Database db;
  Relation* r = db.CreateRelation(
                       "R", Schema({{"x", ValueType::kInt64}})).value();
  Relation* s = db.CreateRelation(
                       "S", Schema({{"x", ValueType::kInt64}})).value();
  ASSERT_TRUE(r->Insert(Tuple{1}, T(6)).ok());
  ASSERT_TRUE(s->Insert(Tuple{1}, T(4)).ok());  // visible window [4, 6)

  MaterializedView::Options opts;
  opts.mode = RefreshMode::kPatchDifference;
  MaterializedView view(Difference(Base("R"), Base("S")), opts);
  ASSERT_TRUE(view.Initialize(db, T(0)).ok());
  // Jump straight past the tuple's entire visibility window.
  auto served = view.Read(db, T(10));
  ASSERT_TRUE(served.ok());
  EXPECT_EQ(served->size(), 0u);
  EXPECT_EQ(view.stats().patches_applied, 0u);  // skipped, not inserted
  EXPECT_EQ(view.pending_patches(), 0u);
}

class PatcherPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(PatcherPropertyTest, PatchedViewEqualsRecomputationForever) {
  Rng rng(GetParam());
  Database db;
  testing::RelationSpec spec;
  spec.num_tuples = 80;
  spec.arity = 2;
  spec.value_domain = 7;  // heavy overlap -> many criticals
  spec.ttl_min = 1;
  spec.ttl_max = 25;
  spec.infinite_fraction = 0.1;
  ASSERT_TRUE(testing::FillDatabase(&db, rng, spec, 2).ok());

  // Also exercise monotonic sub-expressions under the difference root.
  auto left = algebra::Project(algebra::Base("R0"), {0, 1});
  auto right = algebra::Select(
      algebra::Base("R1"),
      Predicate::Compare(Operand::Column(0), ComparisonOp::kGe,
                         Operand::Constant(Value(0))));
  auto e = algebra::Difference(left, right);

  MaterializedView::Options opts;
  opts.mode = RefreshMode::kPatchDifference;
  MaterializedView view(e, opts);
  ASSERT_TRUE(view.Initialize(db, T(0)).ok());
  EXPECT_TRUE(view.texp().IsInfinite());

  for (int64_t t = 0; t <= 30; ++t) {
    auto served = view.Read(db, T(t));
    ASSERT_TRUE(served.ok());
    auto fresh = Evaluate(e, db, T(t));
    ASSERT_TRUE(fresh.ok());
    EXPECT_TRUE(Relation::EqualAt(*served, fresh->relation, T(t)))
        << "seed " << GetParam() << " diverges at " << t;
  }
  EXPECT_EQ(view.stats().recomputations, 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PatcherPropertyTest,
                         ::testing::Range<uint64_t>(300, 312));

}  // namespace
}  // namespace expdb
