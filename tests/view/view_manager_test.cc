#include "view/view_manager.h"

#include <gtest/gtest.h>

#include "obs/metrics.h"

namespace expdb {
namespace {

using namespace algebra;  // NOLINT

Timestamp T(int64_t t) { return Timestamp(t); }

class ViewManagerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Relation* r = db_.CreateRelation(
                         "R", Schema({{"x", ValueType::kInt64}})).value();
    ASSERT_TRUE(r->Insert(Tuple{1}, T(5)).ok());
    ASSERT_TRUE(r->Insert(Tuple{2}, T(10)).ok());
    Relation* s = db_.CreateRelation(
                         "S", Schema({{"x", ValueType::kInt64}})).value();
    ASSERT_TRUE(s->Insert(Tuple{1}, T(3)).ok());
  }
  Database db_;
};

TEST_F(ViewManagerTest, CreateGetDrop) {
  ViewManager mgr(&db_);
  auto view = mgr.CreateView("v1", Base("R"), {}, T(0));
  ASSERT_TRUE(view.ok());
  EXPECT_TRUE(mgr.HasView("v1"));
  EXPECT_EQ(mgr.GetView("v1").value(), view.value());
  EXPECT_EQ(mgr.view_count(), 1u);
  ASSERT_TRUE(mgr.DropView("v1").ok());
  EXPECT_FALSE(mgr.HasView("v1"));
  EXPECT_EQ(mgr.DropView("v1").code(), StatusCode::kNotFound);
}

TEST_F(ViewManagerTest, RejectsDuplicatesAndBadNames) {
  ViewManager mgr(&db_);
  ASSERT_TRUE(mgr.CreateView("v", Base("R"), {}, T(0)).ok());
  EXPECT_EQ(mgr.CreateView("v", Base("R"), {}, T(0)).status().code(),
            StatusCode::kAlreadyExists);
  EXPECT_EQ(mgr.CreateView("", Base("R"), {}, T(0)).status().code(),
            StatusCode::kInvalidArgument);
}

TEST_F(ViewManagerTest, CreateFailsOnBadExpressionLeavingNoTrace) {
  ViewManager mgr(&db_);
  EXPECT_FALSE(mgr.CreateView("v", Base("missing"), {}, T(0)).ok());
  EXPECT_FALSE(mgr.HasView("v"));
}

TEST_F(ViewManagerTest, AdvanceAllMaintainsEveryView) {
  ViewManager mgr(&db_);
  ASSERT_TRUE(mgr.CreateView("mono", Base("R"), {}, T(0)).ok());
  ASSERT_TRUE(
      mgr.CreateView("diff", Difference(Base("R"), Base("S")), {}, T(0))
          .ok());
  ASSERT_TRUE(mgr.AdvanceAllTo(T(6)).ok());
  // diff invalidated at 3 (critical <1>: R@5 > S@3): one recompute.
  EXPECT_EQ(mgr.GetView("diff").value()->stats().recomputations, 1u);
  EXPECT_EQ(mgr.GetView("mono").value()->stats().recomputations, 0u);

  auto served = mgr.Read("diff", T(6));
  ASSERT_TRUE(served.ok());
  EXPECT_TRUE(served->Contains(Tuple{2}));
}

TEST_F(ViewManagerTest, ReadUnknownViewFails) {
  ViewManager mgr(&db_);
  EXPECT_EQ(mgr.Read("nope", T(0)).status().code(), StatusCode::kNotFound);
}

TEST_F(ViewManagerTest, TotalStatsAggregates) {
  ViewManager mgr(&db_);
  ASSERT_TRUE(mgr.CreateView("a", Base("R"), {}, T(0)).ok());
  ASSERT_TRUE(mgr.CreateView("b", Base("S"), {}, T(0)).ok());
  ASSERT_TRUE(mgr.Read("a", T(1)).ok());
  ASSERT_TRUE(mgr.Read("b", T(1)).ok());
  ASSERT_TRUE(mgr.Read("b", T(2)).ok());
  ViewStats total = mgr.TotalStats();
  EXPECT_EQ(total.reads, 3u);
  EXPECT_EQ(total.reads_from_materialization, 3u);
  EXPECT_EQ(total.recomputations, 0u);
}

TEST_F(ViewManagerTest, ViewNamesSorted) {
  ViewManager mgr(&db_);
  ASSERT_TRUE(mgr.CreateView("zz", Base("R"), {}, T(0)).ok());
  ASSERT_TRUE(mgr.CreateView("aa", Base("S"), {}, T(0)).ok());
  EXPECT_EQ(mgr.ViewNames(), (std::vector<std::string>{"aa", "zz"}));
}

TEST_F(ViewManagerTest, NotifyBaseChangedMarksDependentsAndCounts) {
  ViewManager mgr(&db_);
  ASSERT_TRUE(mgr.CreateView("on_r", Base("R"), {}, T(0)).ok());
  ASSERT_TRUE(mgr.CreateView("on_s", Base("S"), {}, T(0)).ok());
  obs::Counter* marked = obs::MetricsRegistry::Global().GetCounter(
      "expdb_view_marked_stale_total");
  obs::Counter* notifications = obs::MetricsRegistry::Global().GetCounter(
      "expdb_view_notifications_total");
  const uint64_t marked_before = marked->value();
  const uint64_t notifications_before = notifications->value();

  EXPECT_EQ(mgr.NotifyBaseChanged("R"), 1u);
  EXPECT_TRUE(mgr.GetView("on_r").value()->stale());
  EXPECT_FALSE(mgr.GetView("on_s").value()->stale());
  EXPECT_EQ(marked->value(), marked_before + 1);
  EXPECT_EQ(notifications->value(), notifications_before + 1);

  // A second notification for an already-stale view is not a transition:
  // affected count still reports the dependent, but no new stale mark.
  EXPECT_EQ(mgr.NotifyBaseChanged("R"), 1u);
  EXPECT_EQ(marked->value(), marked_before + 1);
  EXPECT_EQ(notifications->value(), notifications_before + 2);
}

// Regression: notifying about a relation no view reads — including one
// the catalog has never heard of — must return 0 and not error or mark
// anything stale. The size_t return carries "number of dependents", not
// a status.
TEST_F(ViewManagerTest, NotifyBaseChangedOnUnknownRelationIsANoop) {
  ViewManager mgr(&db_);
  ASSERT_TRUE(mgr.CreateView("v", Base("R"), {}, T(0)).ok());
  EXPECT_EQ(mgr.NotifyBaseChanged("no_such_relation"), 0u);
  EXPECT_EQ(mgr.NotifyBaseChanged("S"), 0u);  // exists, but no dependents
  EXPECT_FALSE(mgr.GetView("v").value()->stale());
  // The manager with no views at all is equally indifferent.
  ViewManager empty(&db_);
  EXPECT_EQ(empty.NotifyBaseChanged("R"), 0u);
}

TEST_F(ViewManagerTest, ViewCountGaugeTracksCreateAndDrop) {
  obs::Gauge* gauge =
      obs::MetricsRegistry::Global().GetGauge("expdb_view_count");
  const int64_t before = gauge->value();
  {
    ViewManager mgr(&db_);
    ASSERT_TRUE(mgr.CreateView("a", Base("R"), {}, T(0)).ok());
    ASSERT_TRUE(mgr.CreateView("b", Base("S"), {}, T(0)).ok());
    EXPECT_EQ(gauge->value(), before + 2);
    ASSERT_TRUE(mgr.DropView("a").ok());
    EXPECT_EQ(gauge->value(), before + 1);
  }
  // A dying manager retracts its contribution from the global sum.
  EXPECT_EQ(gauge->value(), before);
}

}  // namespace
}  // namespace expdb
