// Explicit base updates vs. views: the paper assumes no source updates
// (Sec. 1); ExpDB lifts this incrementally — an explicit insert/delete
// marks every dependent view stale, and the next maintenance point
// applies the recorded base deltas through the cached plan (or rebuilds
// when the incremental path is unavailable), so reads never serve
// update-invalidated contents. Set-identity of the two maintenance
// paths is swept in delta_property_test.cc; these tests pin the
// staleness protocol itself.

#include <gtest/gtest.h>

#include "sql/session.h"
#include "view/view_manager.h"

namespace expdb {
namespace {

using namespace algebra;  // NOLINT

Timestamp T(int64_t t) { return Timestamp(t); }

TEST(StalenessTest, MarkStaleForcesRecomputeOnNextRead) {
  Database db;
  Relation* r = db.CreateRelation(
                       "R", Schema({{"x", ValueType::kInt64}})).value();
  ASSERT_TRUE(r->Insert(Tuple{1}, T(100)).ok());

  MaterializedView view(Base("R"), {});
  ASSERT_TRUE(view.Initialize(db, T(0)).ok());
  // Out-of-band insert the view cannot see through expiration.
  ASSERT_TRUE(r->Insert(Tuple{2}, T(100)).ok());
  auto before = view.Read(db, T(1)).MoveValue();
  EXPECT_EQ(before.size(), 1u);  // still serving the old materialization

  view.MarkStale();
  EXPECT_TRUE(view.stale());
  auto after = view.Read(db, T(2)).MoveValue();
  EXPECT_EQ(after.size(), 2u);
  EXPECT_FALSE(view.stale());
  EXPECT_EQ(view.stats().recomputations, 1u);
}

TEST(StalenessTest, NotifyBaseChangedTargetsOnlyDependents) {
  Database db;
  (void)db.CreateRelation("A", Schema({{"x", ValueType::kInt64}}));
  (void)db.CreateRelation("B", Schema({{"x", ValueType::kInt64}}));
  ViewManager mgr(&db);
  ASSERT_TRUE(mgr.CreateView("va", Base("A"), {}, T(0)).ok());
  ASSERT_TRUE(mgr.CreateView("vb", Base("B"), {}, T(0)).ok());
  ASSERT_TRUE(
      mgr.CreateView("vab", Union(Base("A"), Base("B")), {}, T(0)).ok());

  EXPECT_EQ(mgr.NotifyBaseChanged("A"), 2u);  // va and vab
  EXPECT_TRUE(mgr.GetView("va").value()->stale());
  EXPECT_FALSE(mgr.GetView("vb").value()->stale());
  EXPECT_TRUE(mgr.GetView("vab").value()->stale());
  EXPECT_EQ(mgr.NotifyBaseChanged("nonexistent"), 0u);
}

TEST(StalenessTest, SqlInsertRefreshesDependentViews) {
  sql::Session s;
  ASSERT_TRUE(s.Execute("CREATE TABLE t (x INT)").ok());
  ASSERT_TRUE(s.Execute("INSERT INTO t VALUES (1)").ok());
  ASSERT_TRUE(s.Execute("CREATE VIEW v AS SELECT x FROM t").ok());
  // Insert after view creation: the view must reflect it on next read.
  ASSERT_TRUE(s.Execute("INSERT INTO t VALUES (2)").ok());
  auto r = s.Execute("SELECT * FROM v");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->relation->CountUnexpiredAt(r->served_at), 2u);
}

TEST(StalenessTest, SqlDeleteRefreshesDependentViews) {
  sql::Session s;
  ASSERT_TRUE(s.Execute("CREATE TABLE t (x INT)").ok());
  ASSERT_TRUE(s.Execute("INSERT INTO t VALUES (1), (2), (3)").ok());
  ASSERT_TRUE(s.Execute("CREATE VIEW v AS SELECT x FROM t").ok());
  ASSERT_TRUE(s.Execute("DELETE FROM t WHERE x = 2").ok());
  auto r = s.Execute("SELECT * FROM v");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->relation->CountUnexpiredAt(r->served_at), 2u);
  EXPECT_FALSE(r->relation->Contains(Tuple{2}));
}

TEST(StalenessTest, DropTableWithDependentViewRejected) {
  sql::Session s;
  ASSERT_TRUE(s.Execute("CREATE TABLE t (x INT)").ok());
  ASSERT_TRUE(s.Execute("CREATE VIEW v AS SELECT x FROM t").ok());
  auto r = s.Execute("DROP TABLE t");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  // Dropping the view first unblocks the table.
  ASSERT_TRUE(s.Execute("DROP VIEW v").ok());
  EXPECT_TRUE(s.Execute("DROP TABLE t").ok());
}

TEST(StalenessTest, StalePatchViewRebuildsHelper) {
  Database db;
  Relation* r = db.CreateRelation(
                       "R", Schema({{"x", ValueType::kInt64}})).value();
  Relation* q = db.CreateRelation(
                       "S", Schema({{"x", ValueType::kInt64}})).value();
  ASSERT_TRUE(r->Insert(Tuple{1}, T(50)).ok());

  MaterializedView::Options opts;
  opts.mode = RefreshMode::kPatchDifference;
  MaterializedView view(Difference(Base("R"), Base("S")), opts);
  ASSERT_TRUE(view.Initialize(db, T(0)).ok());
  EXPECT_EQ(view.pending_patches(), 0u);

  // A new critical pair arrives via explicit update.
  ASSERT_TRUE(r->Insert(Tuple{2}, T(40)).ok());
  ASSERT_TRUE(q->Insert(Tuple{2}, T(10)).ok());
  view.MarkStale();

  auto at5 = view.Read(db, T(5)).MoveValue();
  EXPECT_EQ(at5.size(), 1u);  // <2> suppressed by S until 10
  EXPECT_EQ(view.pending_patches(), 1u);  // helper rebuilt with <2>
  auto at12 = view.Read(db, T(12)).MoveValue();
  EXPECT_EQ(at12.size(), 2u);  // <2> patched back in
}

}  // namespace
}  // namespace expdb
