// Segment bulk drops are invisible to the delta ring.
//
// Physical expiration was never a delta source: expτ readers cannot see
// expired tuples, so removing them changes nothing any view observes, and
// RemoveExpired has always bypassed the mutation log. The segment storage
// bulk path (DropExpired, and the trigger-free compaction built on it)
// must keep that exclusion — dropping a whole expired segment in O(1)
// must not emit per-tuple deltas, must not advance any base relation's
// delta cursor, and must not knock incremental views off the delta path.
// These tests pin all three across direct drops and manager-driven
// compaction over segmented base relations.

#include <gtest/gtest.h>

#include "core/expression.h"
#include "expiration/expiration_queue.h"
#include "relational/database.h"
#include "view/materialized_view.h"

namespace expdb {
namespace {

Schema OneInt() { return Schema({{"a", ValueType::kInt64}}); }

Timestamp T(int64_t t) { return Timestamp(t); }

/// A plan the delta engine provably supports (see delta_property_test):
/// maintenance rounds on it must take the incremental path, so a
/// fallback after a bulk drop would be a regression, not noise.
ExpressionPtr SupportedPlan() {
  using namespace algebra;  // NOLINT
  return Select(Base("R"),
                Predicate::Compare(Operand::Column(0), ComparisonOp::kGe,
                                   Operand::Constant(Value(int64_t{0}))));
}

TEST(SegmentBulkDropTest, DropExpiredLeavesViewDeltaCursorsPinned) {
  Database db;
  // CreateRelation => expiration-partitioned storage, the engine default.
  ASSERT_TRUE(db.CreateRelation("R", OneInt()).ok());
  Relation* rel = db.GetRelation("R").value();
  ASSERT_TRUE(rel->segmented());

  // Two doomed segments ([1,8] and [9,16] with the default width 8), one
  // straddler bucket, and survivors incl. ∞ — a bulk drop at τ=20 drops
  // whole segments AND per-tuple-erases within the straddling one.
  for (int64_t i = 0; i < 6; ++i) {
    ASSERT_TRUE(db.Insert("R", Tuple{i}, T(3 + i)).ok());          // doomed
    ASSERT_TRUE(db.Insert("R", Tuple{10 + i}, T(11 + i)).ok());    // doomed
    ASSERT_TRUE(db.Insert("R", Tuple{20 + i}, T(18 + i)).ok());    // straddle
    ASSERT_TRUE(db.Insert("R", Tuple{30 + i}, T(100 + i)).ok());   // live
  }
  ASSERT_TRUE(db.Insert("R", Tuple{99}, Timestamp::Infinity()).ok());

  MaterializedView view(SupportedPlan(), MaterializedView::Options());
  ASSERT_TRUE(view.Initialize(db, T(0)).ok());

  // Seeding is demand-driven: the first explicit update falls back to a
  // recompute (which captures per-node state), the second proves the
  // delta path live. Get the view onto that path before the drop.
  ASSERT_TRUE(db.Insert("R", Tuple{40}, T(200)).ok());
  view.MarkStale();
  ASSERT_TRUE(view.AdvanceTo(db, T(1)).ok());
  ASSERT_TRUE(db.Insert("R", Tuple{42}, T(202)).ok());
  view.MarkStale();
  ASSERT_TRUE(view.AdvanceTo(db, T(1)).ok());
  ASSERT_EQ(view.stats().delta_applies, 1u);
  const uint64_t fallbacks = view.stats().delta_fallbacks;

  const Relation::DeltaCursor cursor = rel->delta_cursor();
  const size_t before = rel->size();

  // The bulk drop: whole expired segments plus straddler erases.
  const Relation::DropResult drop = rel->DropExpired(T(20));
  EXPECT_GE(drop.segments, 2u);
  EXPECT_GT(drop.tuples, drop.segments);  // straddler tuples went per-tuple
  EXPECT_LT(rel->size(), before);

  // The cursor did not move and no per-tuple deltas were recorded — the
  // drop is invisible to every delta consumer.
  EXPECT_EQ(rel->delta_cursor(), cursor);
  auto deltas = rel->DeltasSince(cursor.epoch);
  ASSERT_TRUE(deltas.has_value());
  EXPECT_TRUE(deltas->empty());

  // And the view is still on the incremental path: the next explicit
  // update applies as a delta, no fallback, with correct contents. Read
  // at τ=20 — the drop horizon — where the dropped tuples were already
  // invisible to every expτ reader.
  ASSERT_TRUE(db.Insert("R", Tuple{41}, T(201)).ok());
  view.MarkStale();
  ASSERT_TRUE(view.AdvanceTo(db, T(20)).ok());
  EXPECT_EQ(view.stats().delta_applies, 2u);
  EXPECT_EQ(view.stats().delta_fallbacks, fallbacks);

  MaterializedView::Options recompute_opts;
  recompute_opts.incremental = false;
  MaterializedView recompute(SupportedPlan(), recompute_opts);
  ASSERT_TRUE(recompute.Initialize(db, T(20)).ok());
  auto got = view.Read(db, T(20));
  auto want = recompute.Read(db, T(20));
  ASSERT_TRUE(got.ok());
  ASSERT_TRUE(want.ok());
  EXPECT_TRUE(Relation::EqualAt(*got, *want, T(20)))
      << "view after bulk drop: " << got->ToString()
      << "\nrecomputed:          " << want->ToString();
}

TEST(SegmentBulkDropTest, TriggerFreeCompactionKeepsViewsIncremental) {
  // Same pin, driven end-to-end through the expiration manager's
  // trigger-free compaction (the path background maintenance takes).
  ExpirationManagerOptions options;
  options.policy = RemovalPolicy::kLazy;
  ExpirationManager manager(options);
  ASSERT_TRUE(manager.CreateRelation("R", OneInt()).ok());
  Relation* rel = manager.db().GetRelation("R").value();
  ASSERT_TRUE(rel->segmented());

  for (int64_t i = 0; i < 8; ++i) {
    ASSERT_TRUE(manager.Insert("R", Tuple{i}, T(2 + i)).ok());      // doomed
    ASSERT_TRUE(manager.Insert("R", Tuple{50 + i}, T(500 + i)).ok());  // live
  }

  MaterializedView view(SupportedPlan(), MaterializedView::Options());
  ASSERT_TRUE(view.Initialize(manager.db(), T(0)).ok());
  // Two seeding rounds: the first falls back (demand-driven capture), the
  // second runs incrementally.
  ASSERT_TRUE(manager.db().Insert("R", Tuple{60}, T(600)).ok());
  view.MarkStale();
  ASSERT_TRUE(view.AdvanceTo(manager.db(), T(1)).ok());
  ASSERT_TRUE(manager.db().Insert("R", Tuple{62}, T(602)).ok());
  view.MarkStale();
  ASSERT_TRUE(view.AdvanceTo(manager.db(), T(1)).ok());
  ASSERT_EQ(view.stats().delta_applies, 1u);
  const uint64_t fallbacks = view.stats().delta_fallbacks;

  const Relation::DeltaCursor cursor = rel->delta_cursor();
  const uint64_t segs_before = manager.metrics().segments_dropped.value();

  ASSERT_TRUE(manager.AdvanceTo(T(40)).ok());
  const size_t removed = manager.Compact();
  EXPECT_EQ(removed, 8u);
  // The compaction actually took the bulk path (no triggers registered).
  EXPECT_GT(manager.metrics().segments_dropped.value(), segs_before);

  EXPECT_EQ(rel->delta_cursor(), cursor);
  auto deltas = rel->DeltasSince(cursor.epoch);
  ASSERT_TRUE(deltas.has_value());
  EXPECT_TRUE(deltas->empty());

  ASSERT_TRUE(manager.db().Insert("R", Tuple{61}, T(601)).ok());
  view.MarkStale();
  ASSERT_TRUE(view.AdvanceTo(manager.db(), T(41)).ok());
  EXPECT_EQ(view.stats().delta_applies, 2u);
  EXPECT_EQ(view.stats().delta_fallbacks, fallbacks);
  auto read = view.Read(manager.db(), T(41));
  ASSERT_TRUE(read.ok());
  // 8 live seeds + the three explicit inserts survive; the 8 doomed are
  // gone physically and were never visible at τ=41 anyway.
  EXPECT_EQ(read->CountUnexpiredAt(T(41)), 11u);
}

}  // namespace
}  // namespace expdb
