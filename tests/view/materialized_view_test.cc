// Materialized-view maintenance: monotonic views are maintenance-free
// (Theorem 1 operationalized), non-monotonic views recompute exactly at
// their invalidation instants, lazy views defer, and every policy serves
// reads equal to recomputation.

#include "view/materialized_view.h"

#include <gtest/gtest.h>

namespace expdb {
namespace {

using namespace algebra;  // NOLINT

Timestamp T(int64_t t) { return Timestamp(t); }

class MaterializedViewTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // The paper's Figure 1 database.
    Relation* pol =
        db_.CreateRelation("Pol", Schema({{"UID", ValueType::kInt64},
                                          {"Deg", ValueType::kInt64}}))
            .value();
    ASSERT_TRUE(pol->Insert(Tuple{1, 25}, T(10)).ok());
    ASSERT_TRUE(pol->Insert(Tuple{2, 25}, T(15)).ok());
    ASSERT_TRUE(pol->Insert(Tuple{3, 35}, T(10)).ok());
    Relation* el =
        db_.CreateRelation("El", Schema({{"UID", ValueType::kInt64},
                                         {"Deg", ValueType::kInt64}}))
            .value();
    ASSERT_TRUE(el->Insert(Tuple{1, 75}, T(5)).ok());
    ASSERT_TRUE(el->Insert(Tuple{2, 85}, T(3)).ok());
    ASSERT_TRUE(el->Insert(Tuple{4, 90}, T(2)).ok());
  }

  // Reads must equal recomputation at every probed instant.
  void ExpectAlwaysFresh(MaterializedView& view, const ExpressionPtr& e,
                         int64_t horizon) {
    for (int64_t t = 0; t <= horizon; ++t) {
      auto served = view.Read(db_, T(t));
      ASSERT_TRUE(served.ok()) << served.status().ToString();
      auto fresh = Evaluate(e, db_, T(t));
      ASSERT_TRUE(fresh.ok());
      EXPECT_TRUE(
          Relation::ContentsEqualAt(*served, fresh->relation, T(t)))
          << "policy " << RefreshModeToString(view.mode()) << " stale at "
          << t;
    }
  }

  Database db_;
};

TEST_F(MaterializedViewTest, MonotonicViewNeverRecomputes) {
  auto e = Join(Base("Pol"), Base("El"), Predicate::ColumnsEqual(0, 2));
  MaterializedView view(e, {});
  ASSERT_TRUE(view.Initialize(db_, T(0)).ok());
  EXPECT_TRUE(view.texp().IsInfinite());
  ExpectAlwaysFresh(view, e, 20);
  EXPECT_EQ(view.stats().recomputations, 0u);
  EXPECT_EQ(view.stats().reads, 21u);
  EXPECT_EQ(view.stats().reads_from_materialization, 21u);
}

TEST_F(MaterializedViewTest, EagerRecomputesAtEveryInvalidation) {
  // Figure 3(a)'s histogram: invalid at 10 (count of the 25-partition
  // changes while <2,25> lives on).
  auto e = Project(Aggregate(Base("Pol"), {1}, AggregateFunction::Count()),
                   {1, 2});
  MaterializedView view(e, {});
  ASSERT_TRUE(view.Initialize(db_, T(0)).ok());
  EXPECT_EQ(view.texp(), T(10));
  ExpectAlwaysFresh(view, e, 20);
  // Exactly one recomputation: at time 10. (After it, the new result —
  // {<25,1>} with the partition dying at 15 — never changes again.)
  EXPECT_EQ(view.stats().recomputations, 1u);
}

TEST_F(MaterializedViewTest, EagerDifferenceRecomputesTwice) {
  // Figures 3(b)-(d): π1(Pol) − π1(El); criticals <2> at 3 and <1> at 5.
  auto e = Difference(Project(Base("Pol"), {0}), Project(Base("El"), {0}));
  MaterializedView view(e, {});
  ASSERT_TRUE(view.Initialize(db_, T(0)).ok());
  EXPECT_EQ(view.texp(), T(3));
  ExpectAlwaysFresh(view, e, 20);
  EXPECT_EQ(view.stats().recomputations, 2u);  // at 3 and at 5
}

TEST_F(MaterializedViewTest, LazyRecomputesOnlyOnRead) {
  auto e = Difference(Project(Base("Pol"), {0}), Project(Base("El"), {0}));
  MaterializedView::Options opts;
  opts.mode = RefreshMode::kLazyRecompute;
  MaterializedView view(e, opts);
  ASSERT_TRUE(view.Initialize(db_, T(0)).ok());
  // Advancing past both invalidations does not recompute...
  ASSERT_TRUE(view.AdvanceTo(db_, T(8)).ok());
  EXPECT_EQ(view.stats().recomputations, 0u);
  // ...the next read does, once.
  auto served = view.Read(db_, T(8));
  ASSERT_TRUE(served.ok());
  EXPECT_EQ(view.stats().recomputations, 1u);
  auto fresh = Evaluate(e, db_, T(8));
  ASSERT_TRUE(fresh.ok());
  EXPECT_TRUE(Relation::ContentsEqualAt(*served, fresh->relation, T(8)));
}

TEST_F(MaterializedViewTest, LazyServesFreshReadsEverywhere) {
  auto e = Project(Aggregate(Base("Pol"), {1}, AggregateFunction::Count()),
                   {1, 2});
  MaterializedView::Options opts;
  opts.mode = RefreshMode::kLazyRecompute;
  MaterializedView view(e, opts);
  ASSERT_TRUE(view.Initialize(db_, T(0)).ok());
  ExpectAlwaysFresh(view, e, 20);
}

TEST_F(MaterializedViewTest, TimeCannotMoveBackwards) {
  MaterializedView view(Base("Pol"), {});
  ASSERT_TRUE(view.Initialize(db_, T(5)).ok());
  ASSERT_TRUE(view.AdvanceTo(db_, T(9)).ok());
  EXPECT_EQ(view.AdvanceTo(db_, T(4)).code(),
            StatusCode::kInvalidArgument);
}

TEST_F(MaterializedViewTest, UninitializedViewRejectsUse) {
  MaterializedView view(Base("Pol"), {});
  EXPECT_FALSE(view.initialized());
  EXPECT_FALSE(view.AdvanceTo(db_, T(1)).ok());
  EXPECT_FALSE(view.Read(db_, T(1)).ok());
}

TEST_F(MaterializedViewTest, PatchModeRequiresDifferenceRoot) {
  MaterializedView::Options opts;
  opts.mode = RefreshMode::kPatchDifference;
  MaterializedView view(Base("Pol"), opts);
  EXPECT_EQ(view.Initialize(db_, T(0)).code(),
            StatusCode::kInvalidArgument);
}

TEST_F(MaterializedViewTest, InitializeFailsOnBadExpression) {
  MaterializedView view(Base("Nope"), {});
  EXPECT_EQ(view.Initialize(db_, T(0)).code(), StatusCode::kNotFound);
  MaterializedView null_view(nullptr, {});
  EXPECT_FALSE(null_view.Initialize(db_, T(0)).ok());
}

TEST_F(MaterializedViewTest, EagerHandlesMultipleInvalidationsInOneJump) {
  auto e = Difference(Project(Base("Pol"), {0}), Project(Base("El"), {0}));
  MaterializedView view(e, {});
  ASSERT_TRUE(view.Initialize(db_, T(0)).ok());
  // Jump straight past both invalidation instants (3 and 5).
  ASSERT_TRUE(view.AdvanceTo(db_, T(20)).ok());
  EXPECT_EQ(view.stats().recomputations, 2u);
  auto fresh = Evaluate(e, db_, T(20));
  ASSERT_TRUE(fresh.ok());
  auto served = view.Read(db_, T(20));
  ASSERT_TRUE(served.ok());
  EXPECT_TRUE(Relation::ContentsEqualAt(*served, fresh->relation, T(20)));
}

}  // namespace
}  // namespace expdb
