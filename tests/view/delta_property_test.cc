// Incremental maintenance is invisible in the results.
//
// Two materialized views over the same expression — one maintained by
// pushing recorded base deltas through its cached physical plan
// (Options::incremental = true, the default), one forced onto the full
// recomputation path — must agree exactly (tuples, per-tuple texps, and
// texp(e)) after every step of a randomized interleaving of inserts,
// deletes, texp bumps, and time advances, across all refresh modes and
// operators. The incremental path may fall back to recomputation
// whenever it cannot prove a plan incrementalizable; the property holds
// either way, which is exactly the point: correctness never depends on
// the delta engine firing.

#include <algorithm>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/expression.h"
#include "testing/workload.h"
#include "view/materialized_view.h"

namespace expdb {
namespace {

std::vector<Relation::Entry> SortedEntries(const Relation& r) {
  std::vector<Relation::Entry> out = r.entries();
  std::sort(out.begin(), out.end(),
            [](const Relation::Entry& a, const Relation::Entry& b) {
              if (!(a.tuple == b.tuple)) return a.tuple < b.tuple;
              return a.texp < b.texp;
            });
  return out;
}

void ExpectSameEntries(const Relation& expected, const Relation& actual,
                       const std::string& context) {
  ASSERT_EQ(expected.size(), actual.size()) << context;
  const auto lhs = SortedEntries(expected);
  const auto rhs = SortedEntries(actual);
  for (size_t i = 0; i < lhs.size(); ++i) {
    ASSERT_TRUE(lhs[i].tuple == rhs[i].tuple)
        << context << "\ntuple #" << i << ": " << lhs[i].tuple.ToString()
        << " vs " << rhs[i].tuple.ToString();
    ASSERT_EQ(lhs[i].texp, rhs[i].texp)
        << context << "\ntexp of " << lhs[i].tuple.ToString();
  }
}

struct Config {
  uint64_t seed;
  size_t num_tuples;
  size_t max_depth;
  int64_t value_domain;
  RefreshMode mode;
  AggregateExpirationMode agg_mode;
};

class DeltaPropertyTest : public ::testing::TestWithParam<Config> {
 protected:
  void Fill(Database* db, Rng& rng) {
    const Config& cfg = GetParam();
    testing::RelationSpec rspec;
    rspec.num_tuples = cfg.num_tuples;
    rspec.arity = 2;
    rspec.value_domain = cfg.value_domain;
    rspec.ttl_min = 5;
    rspec.ttl_max = 60;
    rspec.infinite_fraction = 0.15;
    ASSERT_TRUE(testing::FillDatabase(db, rng, rspec, 3).ok());
  }

  /// One random mutation against a random base relation: an insert of a
  /// fresh tuple, a re-insert of an existing tuple with a longer TTL (a
  /// texp bump under Insert's max-merge), or a delete of an existing
  /// tuple. All go through the Database mutators so they land in the
  /// delta rings the incremental view reads.
  void Mutate(Database* db, Rng& rng, Timestamp now) {
    const Config& cfg = GetParam();
    const std::string name = "R" + std::to_string(rng.UniformInt(0, 2));
    Relation* rel = db->GetRelation(name).value();
    const double roll = rng.UniformDouble();
    if (roll < 0.5 || rel->size() == 0) {
      Tuple t{rng.UniformInt(0, cfg.value_domain - 1),
              rng.UniformInt(0, cfg.value_domain - 1)};
      // Mostly future expirations; sometimes ∞, sometimes already dead
      // (an insert invisible to every expτ reader — must be a no-op).
      Timestamp texp = Timestamp(now.ticks() + rng.UniformInt(0, 25));
      if (rng.Bernoulli(0.1)) texp = Timestamp::Infinity();
      ASSERT_TRUE(db->Insert(name, std::move(t), texp).ok());
      return;
    }
    const std::vector<Relation::Entry> entries = rel->entries();
    const Relation::Entry& victim =
        entries[static_cast<size_t>(rng.UniformInt(
            0, static_cast<int64_t>(entries.size()) - 1))];
    if (roll < 0.75 && !victim.texp.IsInfinite()) {
      // Texp bump: recorded as delete(t, old) + insert(t, new).
      ASSERT_TRUE(db->Insert(name, victim.tuple,
                             Timestamp(victim.texp.ticks() +
                                       rng.UniformInt(1, 20)))
                      .ok());
    } else {
      ASSERT_TRUE(db->Erase(name, victim.tuple).ok());
    }
  }

  MaterializedView::Options Options(bool incremental) const {
    const Config& cfg = GetParam();
    MaterializedView::Options opts;
    opts.mode = cfg.mode;
    opts.eval.aggregate_mode = cfg.agg_mode;
    opts.incremental = incremental;
    return opts;
  }

  /// Runs the interleaving against `expr` and checks the two views agree
  /// after every step.
  void Run(Database* db, Rng& rng, const ExpressionPtr& expr) {
    MaterializedView incremental(expr, Options(true));
    MaterializedView recompute(expr, Options(false));
    ASSERT_TRUE(incremental.Initialize(*db, Timestamp(0)).ok());
    ASSERT_TRUE(recompute.Initialize(*db, Timestamp(0)).ok());

    Timestamp now(0);
    for (int step = 0; step < 40; ++step) {
      const int mutations = static_cast<int>(rng.UniformInt(0, 3));
      for (int m = 0; m < mutations; ++m) Mutate(db, rng, now);
      if (mutations > 0) {
        incremental.MarkStale();
        recompute.MarkStale();
      }
      now = Timestamp(now.ticks() + rng.UniformInt(0, 5));

      const std::string context =
          "expression: " + expr->ToString() + "\nmode: " +
          std::string(RefreshModeToString(GetParam().mode)) + "\nstep " +
          std::to_string(step) + " at t=" + std::to_string(now.ticks());
      ASSERT_TRUE(incremental.AdvanceTo(*db, now).ok()) << context;
      ASSERT_TRUE(recompute.AdvanceTo(*db, now).ok()) << context;
      auto inc_read = incremental.Read(*db, now);
      ASSERT_TRUE(inc_read.ok()) << inc_read.status().ToString() << "\n"
                                 << context;
      auto rec_read = recompute.Read(*db, now);
      ASSERT_TRUE(rec_read.ok()) << rec_read.status().ToString() << "\n"
                                 << context;
      ExpectSameEntries(*rec_read, *inc_read, context);
      EXPECT_EQ(incremental.texp(), recompute.texp()) << context;
    }
  }
};

TEST_P(DeltaPropertyTest, IncrementalMatchesRecomputeOnRandomExpressions) {
  Rng rng(GetParam().seed);
  for (int trial = 0; trial < 4; ++trial) {
    Database db;
    Fill(&db, rng);
    testing::ExpressionSpec espec;
    espec.max_depth = GetParam().max_depth;
    espec.allow_nonmonotonic = true;
    ExpressionPtr e = testing::MakeRandomExpression(rng, db, espec);
    if (GetParam().mode == RefreshMode::kPatchDifference) {
      // Patch mode requires a difference root; the random expression
      // becomes its subtrahend side when arities line up, else we fall
      // back to a plain base difference.
      ExpressionPtr minuend = Expression::MakeUnion(
          Expression::MakeBase("R0"), Expression::MakeBase("R1"));
      auto schema = e->InferSchema(db);
      e = (schema.ok() && schema->arity() == 2)
              ? Expression::MakeDifference(std::move(minuend),
                                           std::move(e))
              : Expression::MakeDifference(std::move(minuend),
                                           Expression::MakeBase("R2"));
    }
    Run(&db, rng, e);
  }
}

/// A deterministic anchor: on a plan the delta engine provably supports,
/// the incremental view must actually take the delta path (no silent
/// fallback masking a vacuous sweep) and still match recomputation.
TEST_P(DeltaPropertyTest, SupportedPlanExercisesTheDeltaPath) {
  if (GetParam().mode == RefreshMode::kSchrodinger) {
    // Validity tracking is out of the delta engine's scope by design;
    // Schrödinger views always fall back.
    GTEST_SKIP();
  }
  Rng rng(GetParam().seed * 7919 + 1);
  Database db;
  Fill(&db, rng);

  using namespace algebra;  // NOLINT
  ExpressionPtr e =
      GetParam().mode == RefreshMode::kPatchDifference
          ? Difference(Base("R0"), Base("R1"))
          : Select(Union(Base("R0"), Base("R1")),
                   Predicate::Compare(
                       Operand::Column(0), ComparisonOp::kGe,
                       Operand::Constant(Value(int64_t{0}))));

  MaterializedView incremental(e, Options(true));
  MaterializedView recompute(e, Options(false));
  ASSERT_TRUE(incremental.Initialize(db, Timestamp(0)).ok());
  ASSERT_TRUE(recompute.Initialize(db, Timestamp(0)).ok());

  Timestamp now(0);
  for (int step = 0; step < 25; ++step) {
    Mutate(&db, rng, now);
    incremental.MarkStale();
    recompute.MarkStale();
    now = Timestamp(now.ticks() + 1);
    const std::string context = "step " + std::to_string(step);
    ASSERT_TRUE(incremental.AdvanceTo(db, now).ok()) << context;
    ASSERT_TRUE(recompute.AdvanceTo(db, now).ok()) << context;
    auto inc_read = incremental.Read(db, now);
    ASSERT_TRUE(inc_read.ok()) << inc_read.status().ToString();
    auto rec_read = recompute.Read(db, now);
    ASSERT_TRUE(rec_read.ok()) << rec_read.status().ToString();
    ExpectSameEntries(*rec_read, *inc_read, context);
    EXPECT_EQ(incremental.texp(), recompute.texp()) << context;
  }

  // The whole point of the sweep: the incremental view really maintained
  // itself from deltas (texp(e) lapses may still force occasional
  // recomputes), and the forced-recompute twin never did.
  EXPECT_GT(incremental.stats().delta_applies, 0u);
  EXPECT_EQ(recompute.stats().delta_applies, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, DeltaPropertyTest,
    ::testing::Values(
        Config{301, 50, 3, 6, RefreshMode::kEagerRecompute,
               AggregateExpirationMode::kConservative},
        Config{302, 50, 4, 4, RefreshMode::kEagerRecompute,
               AggregateExpirationMode::kExact},
        Config{303, 80, 3, 8, RefreshMode::kLazyRecompute,
               AggregateExpirationMode::kContributingSet},
        Config{304, 40, 4, 3, RefreshMode::kSchrodinger,
               AggregateExpirationMode::kExact},
        Config{305, 60, 3, 5, RefreshMode::kPatchDifference,
               AggregateExpirationMode::kExact}),
    [](const ::testing::TestParamInfo<Config>& info) {
      std::string mode(RefreshModeToString(info.param.mode));
      std::replace(mode.begin(), mode.end(), '-', '_');
      return "seed" + std::to_string(info.param.seed) + "_" + mode;
    });

}  // namespace
}  // namespace expdb
