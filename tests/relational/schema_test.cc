#include "relational/schema.h"

#include <gtest/gtest.h>

namespace expdb {
namespace {

Schema TwoCol() {
  return Schema({{"UID", ValueType::kInt64}, {"Deg", ValueType::kInt64}});
}

TEST(SchemaTest, ArityAndAccess) {
  Schema s = TwoCol();
  EXPECT_EQ(s.arity(), 2u);
  EXPECT_EQ(s.attribute(0).name, "UID");
  EXPECT_EQ(s.attribute(1).type, ValueType::kInt64);
}

TEST(SchemaTest, MakeRejectsDuplicates) {
  auto r = Schema::Make({{"a", ValueType::kInt64}, {"a", ValueType::kInt64}});
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST(SchemaTest, MakeRejectsEmptyNames) {
  auto r = Schema::Make({{"", ValueType::kInt64}});
  EXPECT_FALSE(r.ok());
}

TEST(SchemaTest, IndexOf) {
  Schema s = TwoCol();
  EXPECT_EQ(s.IndexOf("Deg").value(), 1u);
  EXPECT_EQ(s.IndexOf("missing").status().code(), StatusCode::kNotFound);
}

TEST(SchemaTest, ConcatDisambiguatesNames) {
  Schema s = TwoCol().Concat(TwoCol());
  EXPECT_EQ(s.arity(), 4u);
  EXPECT_EQ(s.attribute(0).name, "UID");
  EXPECT_EQ(s.attribute(2).name, "UID.2");
  EXPECT_EQ(s.attribute(3).name, "Deg.2");
}

TEST(SchemaTest, ProjectReordersAndRepeats) {
  Schema s = TwoCol();
  Schema p = s.Project({1, 0}).value();
  EXPECT_EQ(p.attribute(0).name, "Deg");
  EXPECT_EQ(p.attribute(1).name, "UID");
  // Repeated columns get fresh names.
  Schema pp = s.Project({0, 0}).value();
  EXPECT_EQ(pp.attribute(0).name, "UID");
  EXPECT_EQ(pp.attribute(1).name, "UID.2");
}

TEST(SchemaTest, ProjectRejectsOutOfRange) {
  EXPECT_EQ(TwoCol().Project({5}).status().code(), StatusCode::kOutOfRange);
}

TEST(SchemaTest, UnionCompatibility) {
  // The paper requires equal arity; ExpDB additionally checks types.
  Schema a({{"x", ValueType::kInt64}, {"y", ValueType::kString}});
  Schema b({{"p", ValueType::kInt64}, {"q", ValueType::kString}});
  Schema c({{"p", ValueType::kString}, {"q", ValueType::kInt64}});
  Schema d({{"p", ValueType::kInt64}});
  EXPECT_TRUE(a.UnionCompatibleWith(b));  // names may differ
  EXPECT_FALSE(a.UnionCompatibleWith(c));  // types differ
  EXPECT_FALSE(a.UnionCompatibleWith(d));  // arity differs
}

TEST(SchemaTest, ToString) {
  EXPECT_EQ(TwoCol().ToString(), "(UID:int, Deg:int)");
  EXPECT_EQ(Schema().ToString(), "()");
}

}  // namespace
}  // namespace expdb
