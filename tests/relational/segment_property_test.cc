// Segmented storage is set-identical to flat storage.
//
// Expiration-partitioned storage reorganizes *where* entries live, never
// *what* the relation contains: under any interleaving of inserts (fresh,
// duplicate max-merge, overwrite), erases, time advances, and physical
// expiration (RemoveExpired and the segment bulk path DropExpired), a
// segmented relation and a flat relation fed the same operations hold the
// same set of (tuple, texp) pairs. And above storage, every operator of
// the expiration algebra — serial and morsel-parallel — produces
// identical results (tuples + per-tuple texps + texp(e)) over segmented
// and flat base relations. Swept over seeds, bucket widths, and segment
// caps; rides the CI TSan job with the rest of the suite.

#include <algorithm>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/eval.h"
#include "testing/workload.h"

namespace expdb {
namespace {

Schema TwoInts() {
  return Schema({{"a", ValueType::kInt64}, {"b", ValueType::kInt64}});
}

/// Applies the same random operation stream to both relations and checks
/// exact (tuple, texp) identity after every step.
struct StorageSweepConfig {
  uint64_t seed;
  int64_t bucket_width;
  size_t max_segments;
  size_t ops;
};

class SegmentStorageSweep
    : public ::testing::TestWithParam<StorageSweepConfig> {};

TEST_P(SegmentStorageSweep, MirrorsFlatStorage) {
  const StorageSweepConfig& cfg = GetParam();
  Rng rng(cfg.seed);

  Relation seg(TwoInts());
  seg.SetSegmented({cfg.bucket_width, cfg.max_segments});
  Relation flat(TwoInts());

  Timestamp tau = Timestamp::Zero();
  auto random_tuple = [&] {
    return Tuple{rng.UniformInt(0, 12), rng.UniformInt(0, 12)};
  };
  auto random_texp = [&] {
    if (rng.UniformInt(0, 9) == 0) return Timestamp::Infinity();
    return tau + rng.UniformInt(1, 40);
  };

  auto check = [&](const std::string& what) {
    ASSERT_EQ(seg.size(), flat.size()) << what;
    ASSERT_EQ(seg.SortedEntries(), flat.SortedEntries()) << what;
    // Both bounds must be conservative (cover every stored texp), even
    // when they disagree in tightness.
    const Timestamp seg_bound = seg.texp_upper_bound();
    const Timestamp flat_bound = flat.texp_upper_bound();
    seg.ForEach([&](const Tuple&, Timestamp texp) {
      ASSERT_LE(texp, seg_bound) << what;
      ASSERT_LE(texp, flat_bound) << what;
    });
  };

  for (size_t op = 0; op < cfg.ops; ++op) {
    switch (rng.UniformInt(0, 9)) {
      case 0:
      case 1:
      case 2:
      case 3: {  // max-merge insert (fresh or duplicate)
        const Tuple t = random_tuple();
        const Timestamp texp = random_texp();
        seg.MergeMaxUnchecked(t, texp);
        flat.MergeMaxUnchecked(t, texp);
        break;
      }
      case 4: {  // overwrite insert — can *lower* a texp (relocation down)
        const Tuple t = random_tuple();
        const Timestamp texp = random_texp();
        seg.InsertUnchecked(t, texp);
        flat.InsertUnchecked(t, texp);
        break;
      }
      case 5: {  // erase
        const Tuple t = random_tuple();
        ASSERT_EQ(seg.Erase(t), flat.Erase(t));
        break;
      }
      case 6: {  // advance time
        tau = tau + rng.UniformInt(1, 10);
        break;
      }
      case 7: {  // enumerating physical expiration
        ASSERT_EQ(seg.RemoveExpired(tau), flat.RemoveExpired(tau));
        break;
      }
      case 8: {  // bulk physical expiration
        const size_t expired = seg.size() - seg.CountUnexpiredAt(tau);
        ASSERT_EQ(seg.DropExpired(tau).tuples, expired);
        ASSERT_EQ(flat.DropExpired(tau).tuples, expired);
        break;
      }
      case 9: {  // point reads agree
        const Tuple t = random_tuple();
        ASSERT_EQ(seg.GetTexp(t), flat.GetTexp(t));
        ASSERT_EQ(seg.ContainsUnexpired(t, tau),
                  flat.ContainsUnexpired(t, tau));
        break;
      }
    }
    check("op #" + std::to_string(op) + " at tau=" + tau.ToString());
    ASSERT_EQ(seg.CountUnexpiredAt(tau), flat.CountUnexpiredAt(tau));
    ASSERT_EQ(seg.NextExpirationAfter(tau), flat.NextExpirationAfter(tau));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SegmentStorageSweep,
    ::testing::Values(
        StorageSweepConfig{201, 1, 2, 400},      // degenerate: tiny buckets
        StorageSweepConfig{202, 8, 64, 400},     // the engine default
        StorageSweepConfig{203, 3, 4, 400},      // frequent rebucketing
        StorageSweepConfig{204, 1000000, 64, 400},  // one fat finite bucket
        StorageSweepConfig{205, 8, 1, 600},      // cap 1: merge constantly
        StorageSweepConfig{206, 5, 8, 600}),
    [](const ::testing::TestParamInfo<StorageSweepConfig>& info) {
      return "seed" + std::to_string(info.param.seed) + "_w" +
             std::to_string(info.param.bucket_width) + "_cap" +
             std::to_string(info.param.max_segments);
    });

/// Operator-level identity: random algebra expressions evaluated over a
/// database with segmented bases and a flat clone of it, serial and
/// parallel, at several τ — including after physical expiration ran on
/// both.
struct OperatorSweepConfig {
  uint64_t seed;
  size_t num_tuples;
  size_t max_depth;
};

class SegmentOperatorSweep
    : public ::testing::TestWithParam<OperatorSweepConfig> {};

/// Rebuilds `db`'s relations as flat storage in `flat_db` (same names,
/// same contents).
void CloneFlat(const Database& db, Database* flat_db) {
  for (const std::string& name : db.RelationNames()) {
    const Relation* rel = db.GetRelation(name).value();
    std::vector<Relation::Entry> entries;
    entries.reserve(rel->size());
    rel->ForEach([&](const Tuple& t, Timestamp texp) {
      entries.push_back({t, texp});
    });
    ASSERT_TRUE(flat_db
                    ->PutRelation(name, Relation::FromEntriesUnchecked(
                                            rel->schema(), std::move(entries)))
                    .ok());
  }
}

TEST_P(SegmentOperatorSweep, AllOperatorsMatchFlatSerialAndParallel) {
  const OperatorSweepConfig& cfg = GetParam();
  Rng rng(cfg.seed);

  Database db;
  testing::RelationSpec rspec;
  rspec.num_tuples = cfg.num_tuples;
  rspec.arity = 2;
  rspec.value_domain = 8;
  rspec.ttl_min = 1;
  rspec.ttl_max = 40;
  rspec.infinite_fraction = 0.15;
  ASSERT_TRUE(testing::FillDatabase(&db, rng, rspec, 3).ok());
  // FillDatabase registers flat relations (PutRelation); switch the bases
  // to expiration-partitioned storage, as Database::CreateRelation does.
  for (const std::string& name : db.RelationNames()) {
    db.GetRelation(name).value()->SetSegmented();
    ASSERT_TRUE(db.GetRelation(name).value()->segmented()) << name;
  }

  Database flat_db;
  CloneFlat(db, &flat_db);

  testing::ExpressionSpec espec;
  espec.max_depth = cfg.max_depth;
  espec.allow_nonmonotonic = true;

  for (int trial = 0; trial < 10; ++trial) {
    // Halfway through, physically expire on both sides so later trials
    // exercise scans over bulk-dropped storage (stale index slots,
    // tightened bounds) — the expτ contents are untouched by this.
    if (trial == 5) {
      const Timestamp tau(20);
      for (const std::string& name : db.RelationNames()) {
        db.GetRelation(name).value()->DropExpired(tau);
        flat_db.GetRelation(name).value()->DropExpired(tau);
      }
    }
    ExpressionPtr e = testing::MakeRandomExpression(rng, db, espec);
    const Timestamp tau(rng.UniformInt(trial >= 5 ? 20 : 0, 45));

    for (size_t threads : {1u, 4u}) {
      EvalOptions opts;
      opts.parallelism = threads;
      opts.parallel_min_morsel = 1 + trial % 4;
      auto seg_result = Evaluate(e, db, tau, opts);
      auto flat_result = Evaluate(e, flat_db, tau, opts);
      ASSERT_TRUE(seg_result.ok()) << seg_result.status().ToString();
      ASSERT_TRUE(flat_result.ok()) << flat_result.status().ToString();

      const std::string context =
          "expression: " + e->ToString() + "\nthreads: " +
          std::to_string(threads) + ", tau: " + tau.ToString();
      EXPECT_EQ(seg_result->texp, flat_result->texp) << context;
      ASSERT_TRUE(Relation::EqualAt(seg_result->relation,
                                    flat_result->relation, tau))
          << context << "\nsegmented: " << seg_result->relation.ToString()
          << "\nflat:      " << flat_result->relation.ToString();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SegmentOperatorSweep,
    ::testing::Values(OperatorSweepConfig{301, 80, 3},
                      OperatorSweepConfig{302, 150, 4},
                      OperatorSweepConfig{303, 40, 5},
                      OperatorSweepConfig{304, 300, 3}),
    [](const ::testing::TestParamInfo<OperatorSweepConfig>& info) {
      return "seed" + std::to_string(info.param.seed) + "_n" +
             std::to_string(info.param.num_tuples) + "_d" +
             std::to_string(info.param.max_depth);
    });

}  // namespace
}  // namespace expdb
