#include "relational/printer.h"

#include <gtest/gtest.h>

namespace expdb {
namespace {

Relation PolTable() {
  Relation pol(Schema({{"UID", ValueType::kInt64},
                       {"Deg", ValueType::kInt64}}));
  EXPECT_TRUE(pol.Insert(Tuple{1, 25}, Timestamp(10)).ok());
  EXPECT_TRUE(pol.Insert(Tuple{2, 25}, Timestamp(15)).ok());
  EXPECT_TRUE(pol.Insert(Tuple{3, 35}, Timestamp(10)).ok());
  return pol;
}

TEST(PrinterTest, TableWithTexpColumn) {
  std::string out = PrintRelation(PolTable());
  // Header first, texp leading (Figure 1 layout).
  EXPECT_NE(out.find("texp"), std::string::npos);
  EXPECT_NE(out.find("UID"), std::string::npos);
  EXPECT_NE(out.find("10"), std::string::npos);
  EXPECT_NE(out.find("25"), std::string::npos);
  // Three data rows + header + separator = 5 lines.
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 5);
}

TEST(PrinterTest, FilterExpired) {
  PrintOptions opts;
  opts.at = Timestamp(10);
  std::string out = PrintRelation(PolTable(), opts);
  // Only <2, 25> @15 survives at time 10.
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 3);
  EXPECT_NE(out.find("15"), std::string::npos);
}

TEST(PrinterTest, UnfilteredShowsEverything) {
  PrintOptions opts;
  opts.at = Timestamp(100);
  opts.filter_expired = false;
  std::string out = PrintRelation(PolTable(), opts);
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 5);
}

TEST(PrinterTest, HideTexp) {
  PrintOptions opts;
  opts.show_texp = false;
  std::string out = PrintRelation(PolTable(), opts);
  EXPECT_EQ(out.find("texp"), std::string::npos);
}

TEST(PrinterTest, Caption) {
  PrintOptions opts;
  opts.caption = "Politics table Pol";
  std::string out = PrintRelation(PolTable(), opts);
  EXPECT_EQ(out.rfind("Politics table Pol", 0), 0u);
}

TEST(PrinterTest, PrintTuplesCompactForm) {
  std::string out = PrintTuples(PolTable(), Timestamp(0));
  EXPECT_EQ(out, "<1, 25>\n<2, 25>\n<3, 35>\n");
}

TEST(PrinterTest, PrintTuplesEmptyMatchesFigure2g) {
  // Figure 2(g) renders the empty result as "(the query is empty)".
  std::string out = PrintTuples(PolTable(), Timestamp(15));
  EXPECT_EQ(out, "(the query is empty)\n");
}

}  // namespace
}  // namespace expdb
