#include "relational/relation.h"

#include <gtest/gtest.h>

namespace expdb {
namespace {

Schema OneInt() { return Schema({{"x", ValueType::kInt64}}); }

Timestamp T(int64_t t) { return Timestamp(t); }

TEST(RelationTest, InsertAndLookup) {
  Relation r(OneInt());
  ASSERT_TRUE(r.Insert(Tuple{1}, T(10)).ok());
  EXPECT_EQ(r.size(), 1u);
  EXPECT_TRUE(r.Contains(Tuple{1}));
  EXPECT_EQ(r.GetTexp(Tuple{1}), T(10));
  EXPECT_FALSE(r.GetTexp(Tuple{2}).has_value());
}

TEST(RelationTest, InsertDefaultsToInfinity) {
  Relation r(OneInt());
  ASSERT_TRUE(r.Insert(Tuple{1}).ok());
  EXPECT_TRUE(r.GetTexp(Tuple{1})->IsInfinite());
}

TEST(RelationTest, DuplicateInsertKeepsMaxTexp) {
  // Set semantics: re-insertion is idempotent; lifetime is monotone.
  Relation r(OneInt());
  ASSERT_TRUE(r.Insert(Tuple{1}, T(10)).ok());
  ASSERT_TRUE(r.Insert(Tuple{1}, T(5)).ok());
  EXPECT_EQ(r.GetTexp(Tuple{1}), T(10));
  ASSERT_TRUE(r.Insert(Tuple{1}, T(20)).ok());
  EXPECT_EQ(r.GetTexp(Tuple{1}), T(20));
  EXPECT_EQ(r.size(), 1u);
}

TEST(RelationTest, InsertChecksArity) {
  Relation r(OneInt());
  EXPECT_EQ(r.Insert(Tuple{1, 2}, T(10)).code(), StatusCode::kTypeError);
}

TEST(RelationTest, InsertChecksTypes) {
  Relation r(OneInt());
  EXPECT_EQ(r.Insert(Tuple{"str"}, T(10)).code(), StatusCode::kTypeError);
  EXPECT_EQ(r.Insert(Tuple{1.5}, T(10)).code(), StatusCode::kTypeError);
}

TEST(RelationTest, IntCoercesIntoDoubleColumn) {
  Relation r(Schema({{"x", ValueType::kDouble}}));
  ASSERT_TRUE(r.Insert(Tuple{3}, T(10)).ok());
  // Stored as double; lookup by double value works.
  EXPECT_TRUE(r.Contains(Tuple{3.0}));
  auto entries = r.SortedEntries();
  ASSERT_EQ(entries.size(), 1u);
  EXPECT_TRUE(entries[0].first.at(0).is_double());
}

TEST(RelationTest, InsertWithTtl) {
  Relation r(OneInt());
  ASSERT_TRUE(r.InsertWithTtl(Tuple{1}, T(5), 10).ok());
  EXPECT_EQ(r.GetTexp(Tuple{1}), T(15));
  EXPECT_EQ(r.InsertWithTtl(Tuple{2}, T(5), -1).code(),
            StatusCode::kInvalidArgument);
}

TEST(RelationTest, ExpTauSemantics) {
  // expτ(R) = {r | texp_R(r) > τ}: strict inequality.
  Relation r(OneInt());
  ASSERT_TRUE(r.Insert(Tuple{1}, T(10)).ok());
  EXPECT_TRUE(r.ContainsUnexpired(Tuple{1}, T(9)));
  EXPECT_FALSE(r.ContainsUnexpired(Tuple{1}, T(10)));
  EXPECT_FALSE(r.ContainsUnexpired(Tuple{1}, T(11)));
}

TEST(RelationTest, UnexpiredAtFiltersAndPreservesTexp) {
  Relation r(OneInt());
  ASSERT_TRUE(r.Insert(Tuple{1}, T(10)).ok());
  ASSERT_TRUE(r.Insert(Tuple{2}, T(5)).ok());
  ASSERT_TRUE(r.Insert(Tuple{3}).ok());
  Relation live = r.UnexpiredAt(T(5));
  EXPECT_EQ(live.size(), 2u);
  EXPECT_EQ(live.GetTexp(Tuple{1}), T(10));
  EXPECT_TRUE(live.GetTexp(Tuple{3})->IsInfinite());
  EXPECT_FALSE(live.Contains(Tuple{2}));
}

TEST(RelationTest, CountUnexpired) {
  Relation r(OneInt());
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(r.Insert(Tuple{i}, T(i + 1)).ok());
  }
  EXPECT_EQ(r.CountUnexpiredAt(T(0)), 10u);
  EXPECT_EQ(r.CountUnexpiredAt(T(5)), 5u);
  EXPECT_EQ(r.CountUnexpiredAt(T(10)), 0u);
}

TEST(RelationTest, RemoveExpiredReturnsInExpiryOrder) {
  Relation r(OneInt());
  ASSERT_TRUE(r.Insert(Tuple{3}, T(7)).ok());
  ASSERT_TRUE(r.Insert(Tuple{1}, T(3)).ok());
  ASSERT_TRUE(r.Insert(Tuple{2}, T(3)).ok());
  ASSERT_TRUE(r.Insert(Tuple{4}, T(100)).ok());
  auto removed = r.RemoveExpired(T(10));
  ASSERT_EQ(removed.size(), 3u);
  EXPECT_EQ(removed[0].first, Tuple{1});  // (3, <1>)
  EXPECT_EQ(removed[1].first, Tuple{2});  // (3, <2>)
  EXPECT_EQ(removed[2].first, Tuple{3});  // (7, <3>)
  EXPECT_EQ(r.size(), 1u);
}

TEST(RelationTest, NextExpirationAfter) {
  Relation r(OneInt());
  ASSERT_TRUE(r.Insert(Tuple{1}, T(10)).ok());
  ASSERT_TRUE(r.Insert(Tuple{2}, T(4)).ok());
  ASSERT_TRUE(r.Insert(Tuple{3}).ok());  // infinite: never "next"
  EXPECT_EQ(r.NextExpirationAfter(T(0)), T(4));
  EXPECT_EQ(r.NextExpirationAfter(T(4)), T(10));
  EXPECT_FALSE(r.NextExpirationAfter(T(10)).has_value());
}

TEST(RelationTest, MergeMaxUnchecked) {
  Relation r(OneInt());
  r.MergeMaxUnchecked(Tuple{1}, T(5));
  r.MergeMaxUnchecked(Tuple{1}, T(9));
  r.MergeMaxUnchecked(Tuple{1}, T(2));
  EXPECT_EQ(r.GetTexp(Tuple{1}), T(9));
}

TEST(RelationTest, InsertUncheckedOverwrites) {
  Relation r(OneInt());
  r.InsertUnchecked(Tuple{1}, T(9));
  r.InsertUnchecked(Tuple{1}, T(2));  // overwrite, not max
  EXPECT_EQ(r.GetTexp(Tuple{1}), T(2));
}

TEST(RelationTest, EqualityHelpers) {
  Relation a(OneInt()), b(OneInt());
  ASSERT_TRUE(a.Insert(Tuple{1}, T(10)).ok());
  ASSERT_TRUE(b.Insert(Tuple{1}, T(12)).ok());
  // Same contents, different texps.
  EXPECT_TRUE(Relation::ContentsEqualAt(a, b, T(0)));
  EXPECT_FALSE(Relation::EqualAt(a, b, T(0)));
  // At time 10, a's tuple is expired: contents differ.
  EXPECT_FALSE(Relation::ContentsEqualAt(a, b, T(10)));
  // At 12 both are expired: equal (both empty).
  EXPECT_TRUE(Relation::ContentsEqualAt(a, b, T(12)));
  EXPECT_TRUE(Relation::EqualAt(a, b, T(12)));
}

TEST(RelationTest, EraseAndClear) {
  Relation r(OneInt());
  ASSERT_TRUE(r.Insert(Tuple{1}, T(10)).ok());
  EXPECT_TRUE(r.Erase(Tuple{1}));
  EXPECT_FALSE(r.Erase(Tuple{1}));
  ASSERT_TRUE(r.Insert(Tuple{2}, T(10)).ok());
  r.Clear();
  EXPECT_TRUE(r.empty());
}

TEST(RelationTest, RenameAttributes) {
  Relation r(OneInt());
  ASSERT_TRUE(r.RenameAttributes({"renamed"}).ok());
  EXPECT_EQ(r.schema().attribute(0).name, "renamed");
  EXPECT_EQ(r.RenameAttributes({"a", "b"}).code(),
            StatusCode::kInvalidArgument);
}

TEST(RelationTest, ForEachUnexpiredVisitsExactlyLiveTuples) {
  Relation r(OneInt());
  ASSERT_TRUE(r.Insert(Tuple{1}, T(5)).ok());
  ASSERT_TRUE(r.Insert(Tuple{2}, T(15)).ok());
  size_t visits = 0;
  r.ForEachUnexpired(T(5), [&](const Tuple& t, Timestamp texp) {
    ++visits;
    EXPECT_EQ(t, Tuple{2});
    EXPECT_EQ(texp, T(15));
  });
  EXPECT_EQ(visits, 1u);
}

}  // namespace
}  // namespace expdb
