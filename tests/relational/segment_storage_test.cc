// Expiration-partitioned (segmented) storage: bucketing, segment bounds,
// O(1) bulk drops, stale-handle recycling, and the delta-ring exclusion
// for physical expiration (docs/PERFORMANCE.md §8).

#include <gtest/gtest.h>

#include <vector>

#include "relational/relation.h"

namespace expdb {
namespace {

Schema OneInt() { return Schema({{"x", ValueType::kInt64}}); }

Timestamp T(int64_t t) { return Timestamp(t); }

Relation Segmented(Relation::SegmentOptions opts = {}) {
  Relation r(OneInt());
  r.SetSegmented(opts);
  return r;
}

TEST(SegmentStorageTest, PartitionsByBucketWithDedicatedInfinitySegment) {
  Relation r = Segmented({/*bucket_width=*/8, /*max_segments=*/64});
  ASSERT_TRUE(r.Insert(Tuple{1}, T(3)).ok());    // bucket 0
  ASSERT_TRUE(r.Insert(Tuple{2}, T(5)).ok());    // bucket 0
  ASSERT_TRUE(r.Insert(Tuple{3}, T(20)).ok());   // bucket 2
  ASSERT_TRUE(r.Insert(Tuple{4}).ok());          // ∞ segment
  EXPECT_TRUE(r.segmented());
  EXPECT_EQ(r.SegmentCount(), 3u);
  EXPECT_EQ(r.size(), 4u);

  // Segments are bucket-ordered; the ∞ segment comes last.
  Relation::SegmentView s0 = r.GetSegment(0);
  EXPECT_EQ(s0.size, 2u);
  EXPECT_EQ(s0.min_texp, T(3));
  EXPECT_EQ(s0.max_texp, T(5));
  Relation::SegmentView s1 = r.GetSegment(1);
  EXPECT_EQ(s1.size, 1u);
  EXPECT_EQ(s1.min_texp, T(20));
  EXPECT_EQ(s1.max_texp, T(20));
  Relation::SegmentView s2 = r.GetSegment(2);
  EXPECT_EQ(s2.size, 1u);
  EXPECT_TRUE(s2.min_texp.IsInfinite());
  EXPECT_TRUE(s2.max_texp.IsInfinite());
}

TEST(SegmentStorageTest, LookupsSpanSegments) {
  Relation r = Segmented();
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(r.Insert(Tuple{i}, T(1 + i * 3)).ok());
  }
  for (int i = 0; i < 100; ++i) {
    EXPECT_TRUE(r.Contains(Tuple{i}));
    EXPECT_EQ(r.GetTexp(Tuple{i}), T(1 + i * 3));
  }
  EXPECT_FALSE(r.Contains(Tuple{100}));
  EXPECT_GT(r.SegmentCount(), 1u);
}

TEST(SegmentStorageTest, DropExpiredDropsWholeSegmentsAndCountsThem) {
  Relation r = Segmented({/*bucket_width=*/8, /*max_segments=*/64});
  // Bucket 0: texp in [1, 7]; bucket 1: [8, 15]; ∞ tuples.
  for (int i = 0; i < 5; ++i) ASSERT_TRUE(r.Insert(Tuple{i}, T(1 + i)).ok());
  for (int i = 5; i < 9; ++i) ASSERT_TRUE(r.Insert(Tuple{i}, T(5 + i)).ok());
  ASSERT_TRUE(r.Insert(Tuple{100}).ok());
  ASSERT_EQ(r.SegmentCount(), 3u);

  // τ = 7 expires the whole of bucket 0 and none of bucket 1.
  Relation::DropResult drop = r.DropExpired(T(7));
  EXPECT_EQ(drop.tuples, 5u);
  EXPECT_EQ(drop.segments, 1u);
  EXPECT_EQ(r.size(), 5u);
  EXPECT_EQ(r.SegmentCount(), 2u);
  for (int i = 0; i < 5; ++i) EXPECT_FALSE(r.Contains(Tuple{i}));
  for (int i = 5; i < 9; ++i) EXPECT_TRUE(r.Contains(Tuple{i}));
  EXPECT_TRUE(r.Contains(Tuple{100}));

  // Idempotent: nothing else is expired at the same τ.
  drop = r.DropExpired(T(7));
  EXPECT_EQ(drop.tuples, 0u);
  EXPECT_EQ(drop.segments, 0u);
}

TEST(SegmentStorageTest, DropExpiredStraddlingSegmentTightensBounds) {
  Relation r = Segmented({/*bucket_width=*/8, /*max_segments=*/64});
  for (int i = 1; i <= 7; ++i) ASSERT_TRUE(r.Insert(Tuple{i}, T(i)).ok());
  ASSERT_EQ(r.SegmentCount(), 1u);

  // τ = 3 straddles the only segment: per-tuple path, exact new bounds.
  Relation::DropResult drop = r.DropExpired(T(3));
  EXPECT_EQ(drop.tuples, 3u);
  EXPECT_EQ(drop.segments, 0u);
  ASSERT_EQ(r.SegmentCount(), 1u);
  Relation::SegmentView s = r.GetSegment(0);
  EXPECT_EQ(s.min_texp, T(4));
  EXPECT_EQ(s.max_texp, T(7));
  EXPECT_EQ(r.size(), 4u);
}

TEST(SegmentStorageTest, InsertAfterBulkDropRecyclesStaleSlots) {
  Relation r = Segmented({/*bucket_width=*/4, /*max_segments=*/64});
  for (int i = 0; i < 64; ++i) {
    ASSERT_TRUE(r.Insert(Tuple{i}, T(1 + (i % 4))).ok());
  }
  ASSERT_EQ(r.DropExpired(T(10)).tuples, 64u);
  EXPECT_TRUE(r.empty());
  // Reuse after the bulk drop: stale index slots must behave like
  // tombstones, and re-inserted tuples must be findable.
  for (int i = 0; i < 64; ++i) {
    ASSERT_TRUE(r.Insert(Tuple{i}, T(100 + i)).ok());
  }
  EXPECT_EQ(r.size(), 64u);
  for (int i = 0; i < 64; ++i) {
    EXPECT_EQ(r.GetTexp(Tuple{i}), T(100 + i));
  }
}

TEST(SegmentStorageTest, TexpUpperBoundTightensAfterDrop) {
  // Satellite: the bound is derived from live segments, so physical
  // expiration lowers it — the flat-era max_texp_ never did.
  Relation r = Segmented({/*bucket_width=*/8, /*max_segments=*/64});
  ASSERT_TRUE(r.Insert(Tuple{1}, T(5)).ok());
  ASSERT_TRUE(r.Insert(Tuple{2}, T(50)).ok());
  EXPECT_EQ(r.texp_upper_bound(), T(50));
  ASSERT_EQ(r.DropExpired(T(50)).tuples, 2u);
  EXPECT_EQ(r.texp_upper_bound(), Timestamp::Zero());
  ASSERT_TRUE(r.Insert(Tuple{3}, T(7)).ok());
  EXPECT_EQ(r.texp_upper_bound(), T(7));
}

TEST(SegmentStorageTest, TexpUpperBoundTightensAfterRemoveExpired) {
  Relation r = Segmented({/*bucket_width=*/8, /*max_segments=*/64});
  ASSERT_TRUE(r.Insert(Tuple{1}, T(9)).ok());
  ASSERT_TRUE(r.Insert(Tuple{2}, T(14)).ok());  // same bucket [8, 16)
  ASSERT_TRUE(r.Insert(Tuple{3}, T(100)).ok());
  EXPECT_EQ(r.texp_upper_bound(), T(100));
  // τ = 99: the [8,16) bucket goes entirely; segment 100 survives.
  std::vector<std::pair<Tuple, Timestamp>> removed = r.RemoveExpired(T(99));
  ASSERT_EQ(removed.size(), 2u);
  EXPECT_EQ(removed[0].second, T(9));   // sorted by (texp, tuple)
  EXPECT_EQ(removed[1].second, T(14));
  EXPECT_EQ(r.texp_upper_bound(), T(100));
}

TEST(SegmentStorageTest, RaisingTexpRelocatesAcrossSegments) {
  Relation r = Segmented({/*bucket_width=*/8, /*max_segments=*/64});
  ASSERT_TRUE(r.Insert(Tuple{1}, T(3)).ok());
  ASSERT_TRUE(r.Insert(Tuple{2}, T(4)).ok());
  ASSERT_EQ(r.SegmentCount(), 1u);
  // Max-merge raises tuple 1's texp into bucket 2; it must move there so
  // a bulk drop of bucket 0 cannot take it along.
  ASSERT_TRUE(r.Insert(Tuple{1}, T(20)).ok());
  EXPECT_EQ(r.GetTexp(Tuple{1}), T(20));
  EXPECT_EQ(r.SegmentCount(), 2u);
  Relation::DropResult drop = r.DropExpired(T(10));
  EXPECT_EQ(drop.tuples, 1u);  // only tuple 2
  EXPECT_TRUE(r.Contains(Tuple{1}));
  EXPECT_FALSE(r.Contains(Tuple{2}));
  // Relocating the last entry out of a bucket retires the segment.
  EXPECT_EQ(r.SegmentCount(), 1u);
}

TEST(SegmentStorageTest, WidthDoublesWhenSegmentCapExceeded) {
  Relation r = Segmented({/*bucket_width=*/1, /*max_segments=*/4});
  for (int i = 0; i < 128; ++i) {
    ASSERT_TRUE(r.Insert(Tuple{i}, T(i + 1)).ok());
  }
  ASSERT_TRUE(r.Insert(Tuple{1000}).ok());
  // The finite segments respect the cap (the ∞ segment rides along).
  EXPECT_LE(r.SegmentCount(), 5u);
  EXPECT_EQ(r.size(), 129u);
  for (int i = 0; i < 128; ++i) {
    EXPECT_EQ(r.GetTexp(Tuple{i}), T(i + 1));
  }
  // Content-level behaviour is unchanged by the merges.
  EXPECT_EQ(r.CountUnexpiredAt(T(64)), 65u);
  EXPECT_EQ(r.DropExpired(T(64)).tuples, 64u);
  EXPECT_EQ(r.size(), 65u);
}

TEST(SegmentStorageTest, BulkDropEmitsNoDeltas) {
  // Satellite: physical expiration is invisible to expτ readers, so the
  // bulk path must not touch the delta ring (mirroring RemoveExpired).
  Relation r = Segmented({/*bucket_width=*/8, /*max_segments=*/64});
  r.EnableDeltaTracking();
  ASSERT_TRUE(r.Insert(Tuple{1}, T(3)).ok());
  ASSERT_TRUE(r.Insert(Tuple{2}, T(30)).ok());
  const Relation::DeltaCursor before = r.delta_cursor();
  ASSERT_EQ(r.DropExpired(T(10)).tuples, 1u);
  EXPECT_EQ(r.delta_cursor(), before);
  auto deltas = r.DeltasSince(before.epoch);
  ASSERT_TRUE(deltas.has_value());
  EXPECT_TRUE(deltas->empty());
  // Explicit mutations still record.
  EXPECT_TRUE(r.Erase(Tuple{2}));
  EXPECT_EQ(r.delta_cursor().epoch, before.epoch + 1);
}

TEST(SegmentStorageTest, CopyPreservesSegmentsAndStaleHandleSafety) {
  Relation r = Segmented({/*bucket_width=*/8, /*max_segments=*/64});
  for (int i = 0; i < 32; ++i) {
    ASSERT_TRUE(r.Insert(Tuple{i}, T(1 + (i % 16))).ok());
  }
  // Leave stale slots behind (segment [0,8) bulk-dropped), then copy.
  ASSERT_GT(r.DropExpired(T(7)).segments, 0u);
  Relation copy(r);
  EXPECT_TRUE(copy.segmented());
  EXPECT_EQ(copy.size(), r.size());
  EXPECT_TRUE(Relation::EqualAt(copy, r, Timestamp::Zero()));
  // Mutating the copy (forcing new segments + slot reuse) must not
  // confuse the copied stale handles with fresh segment ids.
  for (int i = 0; i < 32; ++i) {
    ASSERT_TRUE(copy.Insert(Tuple{100 + i}, T(2 + (i % 16))).ok());
  }
  for (int i = 0; i < 32; ++i) {
    EXPECT_TRUE(copy.Contains(Tuple{100 + i}));
  }
  EXPECT_EQ(copy.size(), r.size() + 32);
}

TEST(SegmentStorageTest, ScanHelpersAgreeWithFlatStorage) {
  Relation seg = Segmented({/*bucket_width=*/4, /*max_segments=*/8});
  Relation flat(OneInt());
  for (int i = 0; i < 200; ++i) {
    const Timestamp texp = i % 7 == 0 ? Timestamp::Infinity() : T(i % 40);
    ASSERT_TRUE(seg.Insert(Tuple{i}, texp).ok());
    ASSERT_TRUE(flat.Insert(Tuple{i}, texp).ok());
  }
  for (int64_t tau : {0, 5, 20, 39, 40, 100}) {
    EXPECT_EQ(seg.CountUnexpiredAt(T(tau)), flat.CountUnexpiredAt(T(tau)));
    EXPECT_TRUE(Relation::EqualAt(seg, flat, T(tau)));
    EXPECT_EQ(seg.UnexpiredAt(T(tau)).SortedEntries(),
              flat.UnexpiredAt(T(tau)).SortedEntries());
    EXPECT_EQ(seg.NextExpirationAfter(T(tau)),
              flat.NextExpirationAfter(T(tau)));
  }
  EXPECT_EQ(seg.SortedEntries(), flat.SortedEntries());
}

TEST(SegmentStorageTest, ClearKeepsSegmentedMode) {
  Relation r = Segmented();
  ASSERT_TRUE(r.Insert(Tuple{1}, T(3)).ok());
  r.Clear();
  EXPECT_TRUE(r.empty());
  EXPECT_TRUE(r.segmented());
  ASSERT_TRUE(r.Insert(Tuple{2}, T(5)).ok());
  EXPECT_EQ(r.SegmentCount(), 1u);
}

TEST(SegmentStorageTest, UnexpiredAtProducesFlatResult) {
  // Derived materializations stay flat: the evaluator chunks entries()
  // directly.
  Relation r = Segmented();
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(r.Insert(Tuple{i}, T(10 + i)).ok());
  }
  Relation live = r.UnexpiredAt(T(15));
  EXPECT_FALSE(live.segmented());
  EXPECT_EQ(live.entries().size(), live.size());
  EXPECT_EQ(live.size(), r.CountUnexpiredAt(T(15)));
}

}  // namespace
}  // namespace expdb
