#include "relational/database.h"

#include <gtest/gtest.h>

namespace expdb {
namespace {

Schema OneInt() { return Schema({{"x", ValueType::kInt64}}); }

TEST(DatabaseTest, CreateAndGet) {
  Database db;
  auto rel = db.CreateRelation("t", OneInt());
  ASSERT_TRUE(rel.ok());
  EXPECT_TRUE(db.HasRelation("t"));
  EXPECT_EQ(db.GetRelation("t").value(), rel.value());
  EXPECT_EQ(db.relation_count(), 1u);
}

TEST(DatabaseTest, CreateRejectsDuplicatesAndEmptyNames) {
  Database db;
  ASSERT_TRUE(db.CreateRelation("t", OneInt()).ok());
  EXPECT_EQ(db.CreateRelation("t", OneInt()).status().code(),
            StatusCode::kAlreadyExists);
  EXPECT_EQ(db.CreateRelation("", OneInt()).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(DatabaseTest, GetMissingIsNotFound) {
  Database db;
  EXPECT_EQ(db.GetRelation("nope").status().code(), StatusCode::kNotFound);
}

TEST(DatabaseTest, PutRelationTransfersContents) {
  Database db;
  Relation r(OneInt());
  ASSERT_TRUE(r.Insert(Tuple{7}, Timestamp(10)).ok());
  ASSERT_TRUE(db.PutRelation("t", std::move(r)).ok());
  EXPECT_EQ(db.GetRelation("t").value()->size(), 1u);
  EXPECT_EQ(db.PutRelation("t", Relation(OneInt())).code(),
            StatusCode::kAlreadyExists);
}

TEST(DatabaseTest, DropRelation) {
  Database db;
  ASSERT_TRUE(db.CreateRelation("t", OneInt()).ok());
  ASSERT_TRUE(db.DropRelation("t").ok());
  EXPECT_FALSE(db.HasRelation("t"));
  EXPECT_EQ(db.DropRelation("t").code(), StatusCode::kNotFound);
}

TEST(DatabaseTest, RelationNamesSorted) {
  Database db;
  ASSERT_TRUE(db.CreateRelation("zeta", OneInt()).ok());
  ASSERT_TRUE(db.CreateRelation("alpha", OneInt()).ok());
  EXPECT_EQ(db.RelationNames(),
            (std::vector<std::string>{"alpha", "zeta"}));
}

TEST(DatabaseTest, PointersStableAcrossCatalogGrowth) {
  Database db;
  Relation* first = db.CreateRelation("a", OneInt()).value();
  ASSERT_TRUE(first->Insert(Tuple{1}, Timestamp(5)).ok());
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(db.CreateRelation("r" + std::to_string(i), OneInt()).ok());
  }
  EXPECT_EQ(first->size(), 1u);  // handle still valid
  EXPECT_EQ(db.GetRelation("a").value(), first);
}

TEST(DatabaseTest, RemoveExpiredEverywhere) {
  Database db;
  Relation* a = db.CreateRelation("a", OneInt()).value();
  Relation* b = db.CreateRelation("b", OneInt()).value();
  ASSERT_TRUE(a->Insert(Tuple{1}, Timestamp(5)).ok());
  ASSERT_TRUE(a->Insert(Tuple{2}, Timestamp(50)).ok());
  ASSERT_TRUE(b->Insert(Tuple{3}, Timestamp(5)).ok());
  EXPECT_EQ(db.RemoveExpiredEverywhere(Timestamp(10)), 2u);
  EXPECT_EQ(a->size(), 1u);
  EXPECT_EQ(b->size(), 0u);
}

}  // namespace
}  // namespace expdb
