#include "relational/tuple.h"

#include <gtest/gtest.h>

#include <unordered_set>

namespace expdb {
namespace {

TEST(TupleTest, ConstructionAndAccess) {
  Tuple t{1, 25};
  EXPECT_EQ(t.arity(), 2u);
  EXPECT_EQ(t.at(0), Value(1));
  EXPECT_EQ(t[1], Value(25));
}

TEST(TupleTest, Equality) {
  EXPECT_EQ((Tuple{1, 2}), (Tuple{1, 2}));
  EXPECT_NE((Tuple{1, 2}), (Tuple{2, 1}));
  EXPECT_NE((Tuple{1}), (Tuple{1, 2}));
  // Numeric equality crosses int/double.
  EXPECT_EQ((Tuple{1, 2.0}), (Tuple{1, 2}));
}

TEST(TupleTest, Concat) {
  EXPECT_EQ((Tuple{1, 2}.Concat(Tuple{3})), (Tuple{1, 2, 3}));
  EXPECT_EQ((Tuple{}.Concat(Tuple{1})), (Tuple{1}));
}

TEST(TupleTest, Project) {
  Tuple t{10, 20, 30};
  EXPECT_EQ(t.Project({2, 0}), (Tuple{30, 10}));
  EXPECT_EQ(t.Project({}), Tuple{});
  EXPECT_EQ(t.Project({1, 1}), (Tuple{20, 20}));
}

TEST(TupleTest, PrefixSuffix) {
  Tuple t{1, 2, 3, 4};
  EXPECT_EQ(t.Prefix(2), (Tuple{1, 2}));
  EXPECT_EQ(t.Suffix(2), (Tuple{3, 4}));
  EXPECT_EQ(t.Prefix(0), Tuple{});
  EXPECT_EQ(t.Suffix(4), Tuple{});
}

TEST(TupleTest, Append) {
  EXPECT_EQ((Tuple{1}.Append(Value(9))), (Tuple{1, 9}));
}

TEST(TupleTest, LexicographicOrder) {
  EXPECT_LT((Tuple{1, 2}), (Tuple{1, 3}));
  EXPECT_LT((Tuple{1, 2}), (Tuple{2, 0}));
  EXPECT_LT((Tuple{1}), (Tuple{1, 0}));  // prefix sorts first
  EXPECT_FALSE((Tuple{1, 2}) < (Tuple{1, 2}));
}

TEST(TupleTest, HashConsistentWithEquality) {
  EXPECT_EQ((Tuple{1, 2}).Hash(), (Tuple{1, 2}).Hash());
  EXPECT_EQ((Tuple{1, 2.0}).Hash(), (Tuple{1, 2}).Hash());
  std::unordered_set<Tuple> set;
  set.insert(Tuple{1, 2});
  set.insert(Tuple{1, 2});
  set.insert(Tuple{1.0, 2.0});
  EXPECT_EQ(set.size(), 1u);
}

TEST(TupleTest, ToStringUsesAngleBrackets) {
  EXPECT_EQ((Tuple{1, 25}).ToString(), "<1, 25>");
  EXPECT_EQ(Tuple{}.ToString(), "<>");
}

}  // namespace
}  // namespace expdb
