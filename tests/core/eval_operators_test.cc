// Operator-by-operator evaluation semantics: Eqs. (1)-(6) expiration-time
// rules, expτ filtering, closure (texp(e) composition), and the textbook
// degeneration when every tuple has texp = ∞.

#include <gtest/gtest.h>

#include "core/eval.h"
#include "core/expression.h"

namespace expdb {
namespace {

using namespace algebra;  // NOLINT

Timestamp T(int64_t t) { return Timestamp(t); }

class EvalOperatorsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Relation* r = db_.CreateRelation(
                         "R", Schema({{"a", ValueType::kInt64},
                                      {"b", ValueType::kInt64}}))
                      .value();
    ASSERT_TRUE(r->Insert(Tuple{1, 10}, T(5)).ok());
    ASSERT_TRUE(r->Insert(Tuple{2, 20}, T(10)).ok());
    ASSERT_TRUE(r->Insert(Tuple{3, 30}, Timestamp::Infinity()).ok());

    Relation* s = db_.CreateRelation(
                         "S", Schema({{"x", ValueType::kInt64},
                                      {"y", ValueType::kInt64}}))
                      .value();
    ASSERT_TRUE(s->Insert(Tuple{1, 10}, T(8)).ok());
    ASSERT_TRUE(s->Insert(Tuple{4, 20}, T(12)).ok());
  }

  MaterializedResult Eval(const ExpressionPtr& e, int64_t tau,
                          EvalOptions opts = {}) {
    auto r = Evaluate(e, db_, T(tau), opts);
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    return r.MoveValue();
  }

  Database db_;
};

TEST_F(EvalOperatorsTest, BaseFiltersThroughExpTau) {
  auto at0 = Eval(Base("R"), 0);
  EXPECT_EQ(at0.relation.size(), 3u);
  auto at5 = Eval(Base("R"), 5);
  EXPECT_EQ(at5.relation.size(), 2u);
  EXPECT_FALSE(at5.relation.Contains(Tuple{1, 10}));
  auto at100 = Eval(Base("R"), 100);
  EXPECT_EQ(at100.relation.size(), 1u);  // only the infinite tuple
  EXPECT_TRUE(at0.texp.IsInfinite());
}

TEST_F(EvalOperatorsTest, SelectRetainsExpirationTimes) {
  // Eq. (1): result tuples simply retain their expiration times.
  auto e = Select(Base("R"), Predicate::Compare(
                                 Operand::Column(1), ComparisonOp::kGe,
                                 Operand::Constant(Value(20))));
  auto result = Eval(e, 0);
  EXPECT_EQ(result.relation.size(), 2u);
  EXPECT_EQ(result.relation.GetTexp(Tuple{2, 20}), T(10));
  EXPECT_TRUE(result.relation.GetTexp(Tuple{3, 30})->IsInfinite());
}

TEST_F(EvalOperatorsTest, SelectCorrelated) {
  Relation* rr = db_.GetRelation("R").value();
  ASSERT_TRUE(rr->Insert(Tuple{7, 7}, T(99)).ok());
  auto e = Select(Base("R"), Predicate::ColumnsEqual(0, 1));
  auto result = Eval(e, 0);
  EXPECT_EQ(result.relation.size(), 1u);
  EXPECT_TRUE(result.relation.Contains(Tuple{7, 7}));
}

TEST_F(EvalOperatorsTest, ProjectTakesMaxOfDuplicates) {
  // Eq. (3): coinciding tuples inherit the maximum expiration time.
  Relation* rr = db_.GetRelation("R").value();
  ASSERT_TRUE(rr->Insert(Tuple{9, 10}, T(7)).ok());  // b=10 also in <1,10>@5
  auto result = Eval(Project(Base("R"), {1}), 0);
  EXPECT_EQ(result.relation.GetTexp(Tuple{10}), T(7));  // max(5, 7)
}

TEST_F(EvalOperatorsTest, ProductTakesMinOfPair) {
  // Eq. (2): the lifetime of a product tuple is the min of its parts.
  auto result = Eval(Product(Base("R"), Base("S")), 0);
  EXPECT_EQ(result.relation.size(), 6u);
  EXPECT_EQ(result.relation.GetTexp(Tuple{1, 10, 1, 10}), T(5));
  EXPECT_EQ(result.relation.GetTexp(Tuple{2, 20, 4, 20}), T(10));
  EXPECT_EQ(result.relation.GetTexp(Tuple{3, 30, 4, 20}), T(12));
}

TEST_F(EvalOperatorsTest, UnionTakesMaxOnBothSides) {
  // Eq. (4): tuples in both arguments get the max expiration time.
  Relation* s = db_.GetRelation("S").value();
  ASSERT_TRUE(s->Insert(Tuple{2, 20}, T(3)).ok());  // also in R @10
  auto result = Eval(Union(Base("R"), Base("S")), 0);
  // Distinct tuples: {1,10}, {2,20}, {3,30}, {4,20} — {1,10} is in both.
  EXPECT_EQ(result.relation.size(), 4u);
  EXPECT_EQ(result.relation.GetTexp(Tuple{1, 10}), T(8));   // max(5, 8)
  EXPECT_EQ(result.relation.GetTexp(Tuple{2, 20}), T(10));  // max(10, 3)
  EXPECT_EQ(result.relation.GetTexp(Tuple{4, 20}), T(12));  // only in S
}

TEST_F(EvalOperatorsTest, IntersectTakesMinOfPair) {
  // Eq. (6): intersection inherits the product's min rule.
  Relation* s = db_.GetRelation("S").value();
  ASSERT_TRUE(s->Insert(Tuple{2, 20}, T(3)).ok());
  auto result = Eval(Intersect(Base("R"), Base("S")), 0);
  // Common tuples: {1,10} (R@5, S@8) and {2,20} (R@10, S@3).
  EXPECT_EQ(result.relation.size(), 2u);
  EXPECT_EQ(result.relation.GetTexp(Tuple{1, 10}), T(5));  // min(5, 8)
  EXPECT_EQ(result.relation.GetTexp(Tuple{2, 20}), T(3));  // min(10, 3)
}

TEST_F(EvalOperatorsTest, JoinEqualsSelectOverProduct) {
  // Eq. (5): R ⋈exp_p S = σexp_{p'}(R ×exp S) — the hash path must be
  // indistinguishable from the rewrite.
  auto join =
      Eval(Join(Base("R"), Base("S"), Predicate::ColumnsEqual(0, 2)), 0);
  auto rewrite = Eval(
      Select(Product(Base("R"), Base("S")), Predicate::ColumnsEqual(0, 2)),
      0);
  EXPECT_TRUE(Relation::EqualAt(join.relation, rewrite.relation, T(0)));
  EXPECT_EQ(join.relation.size(), rewrite.relation.size());
  EXPECT_EQ(join.relation.GetTexp(Tuple{1, 10, 1, 10}), T(5));
}

TEST_F(EvalOperatorsTest, JoinWithResidualPredicate) {
  // A non-equality residual must be applied on top of the hash match.
  auto pred = Predicate::ColumnsEqual(1, 3).And(Predicate::Compare(
      Operand::Column(0), ComparisonOp::kLt, Operand::Column(2)));
  auto join = Eval(Join(Base("R"), Base("S"), pred), 0);
  auto rewrite =
      Eval(Select(Product(Base("R"), Base("S")), pred), 0);
  EXPECT_TRUE(Relation::EqualAt(join.relation, rewrite.relation, T(0)));
}

TEST_F(EvalOperatorsTest, JoinWithoutEqualitiesFallsBackToNestedLoop) {
  auto pred = Predicate::Compare(Operand::Column(0), ComparisonOp::kLt,
                                 Operand::Column(2));
  auto join = Eval(Join(Base("R"), Base("S"), pred), 0);
  auto rewrite = Eval(Select(Product(Base("R"), Base("S")), pred), 0);
  EXPECT_TRUE(Relation::EqualAt(join.relation, rewrite.relation, T(0)));
}

TEST_F(EvalOperatorsTest, MonotonicCompositionHasInfiniteTexp) {
  // Sec. 2.3: "the expiration times of all expressions that we can
  // currently construct is infinity".
  auto e = Union(Project(Join(Base("R"), Base("S"),
                              Predicate::ColumnsEqual(0, 2)),
                         {0, 1}),
                 Intersect(Base("R"), Base("S")));
  auto result = Eval(e, 0, {});
  EXPECT_TRUE(result.texp.IsInfinite());
  EXPECT_EQ(result.validity, IntervalSet::From(T(0)));
}

TEST_F(EvalOperatorsTest, InfinityDegeneratesToTextbookAlgebra) {
  // "if all tuples are assigned expiration time ∞ then the algebra
  // operators work like their textbook equivalents."
  Database db;
  Relation* r = db.CreateRelation(
                       "R", Schema({{"a", ValueType::kInt64}})).value();
  Relation* s = db.CreateRelation(
                       "S", Schema({{"a", ValueType::kInt64}})).value();
  for (int i = 0; i < 5; ++i) ASSERT_TRUE(r->Insert(Tuple{i}).ok());
  for (int i = 3; i < 8; ++i) ASSERT_TRUE(s->Insert(Tuple{i}).ok());

  auto check = [&](const ExpressionPtr& e, size_t want) {
    for (int64_t tau : {0, 100, 1'000'000}) {
      auto result = Evaluate(e, db, T(tau));
      ASSERT_TRUE(result.ok());
      EXPECT_EQ(result->relation.size(), want) << e->ToString();
      EXPECT_TRUE(result->texp.IsInfinite());
    }
  };
  check(Union(Base("R"), Base("S")), 8);
  check(Intersect(Base("R"), Base("S")), 2);
  check(Difference(Base("R"), Base("S")), 3);
  check(Product(Base("R"), Base("S")), 25);
  check(Aggregate(Base("R"), {}, AggregateFunction::Count()), 5);
}

TEST_F(EvalOperatorsTest, ErrorsPropagate) {
  EXPECT_EQ(Evaluate(Base("nope"), db_, T(0)).status().code(),
            StatusCode::kNotFound);
  EXPECT_EQ(
      Evaluate(Union(Base("R"), Project(Base("S"), {0})), db_, T(0))
          .status()
          .code(),
      StatusCode::kTypeError);
  EXPECT_EQ(Evaluate(nullptr, db_, T(0)).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(Evaluate(Select(Base("R"), Predicate::ColumnsEqual(0, 9)), db_,
                     T(0))
                .status()
                .code(),
            StatusCode::kOutOfRange);
}

TEST_F(EvalOperatorsTest, EvaluateDifferenceRootRequiresDifference) {
  EXPECT_EQ(
      EvaluateDifferenceRoot(Base("R"), db_, T(0)).status().code(),
      StatusCode::kInvalidArgument);
}

TEST_F(EvalOperatorsTest, AggregateCountsOnlyUnexpired) {
  // At time 5, <1,10> is gone: the global count partition sees 2 tuples.
  auto e = Aggregate(Base("R"), {}, AggregateFunction::Count());
  auto at5 = Eval(e, 5);
  EXPECT_EQ(at5.relation.size(), 2u);
  EXPECT_TRUE(at5.relation.Contains(Tuple{2, 20, 2}));
  EXPECT_TRUE(at5.relation.Contains(Tuple{3, 30, 2}));
}

}  // namespace
}  // namespace expdb
