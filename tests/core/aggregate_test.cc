// Unit tests for aggregation lifetimes: Eq. (8), Table 1 neutral subsets,
// the C = ∅ special case, and the exact ν-replay of Eq. (9).

#include "core/aggregate.h"

#include <gtest/gtest.h>

namespace expdb {
namespace {

Timestamp T(int64_t t) { return Timestamp(t); }

/// Holds tuples alive so PartitionEntry pointers stay valid.
class PartitionBuilder {
 public:
  PartitionBuilder& Add(Tuple t, Timestamp texp) {
    tuples_.push_back(std::make_unique<Tuple>(std::move(t)));
    entries_.push_back({tuples_.back().get(), texp});
    return *this;
  }
  PartitionBuilder& Add(int64_t v, int64_t texp) {
    return Add(Tuple{v}, T(texp));
  }
  const std::vector<PartitionEntry>& entries() const { return entries_; }

 private:
  std::vector<std::unique_ptr<Tuple>> tuples_;
  std::vector<PartitionEntry> entries_;
};

TEST(ApplyAggregateTest, AllFunctions) {
  PartitionBuilder p;
  p.Add(4, 10).Add(2, 20).Add(6, 30);
  EXPECT_EQ(ApplyAggregate(AggregateFunction::Min(0), p.entries()).value(),
            Value(2));
  EXPECT_EQ(ApplyAggregate(AggregateFunction::Max(0), p.entries()).value(),
            Value(6));
  EXPECT_EQ(ApplyAggregate(AggregateFunction::Sum(0), p.entries()).value(),
            Value(12));
  EXPECT_EQ(ApplyAggregate(AggregateFunction::Count(), p.entries()).value(),
            Value(3));
  EXPECT_EQ(ApplyAggregate(AggregateFunction::Avg(0), p.entries()).value(),
            Value(4.0));
}

TEST(ApplyAggregateTest, EmptyPartitionRejected) {
  std::vector<PartitionEntry> empty;
  EXPECT_FALSE(ApplyAggregate(AggregateFunction::Count(), empty).ok());
}

TEST(ApplyAggregateTest, SumOnStringsFails) {
  PartitionBuilder p;
  p.Add(Tuple{"x"}, T(5));
  EXPECT_FALSE(ApplyAggregate(AggregateFunction::Sum(0), p.entries()).ok());
  EXPECT_FALSE(ApplyAggregate(AggregateFunction::Avg(0), p.entries()).ok());
  // min/max over strings are fine (no arithmetic).
  EXPECT_EQ(ApplyAggregate(AggregateFunction::Min(0), p.entries()).value(),
            Value("x"));
}

TEST(ApplyAggregateTest, MixedNumericWidens) {
  PartitionBuilder p;
  p.Add(Tuple{Value(1)}, T(5)).Add(Tuple{Value(0.5)}, T(5));
  EXPECT_EQ(ApplyAggregate(AggregateFunction::Sum(0), p.entries()).value(),
            Value(1.5));
}

TEST(AggregateFunctionTest, ResultTypes) {
  EXPECT_EQ(AggregateFunction::Count().ResultType(ValueType::kString),
            ValueType::kInt64);
  EXPECT_EQ(AggregateFunction::Sum(0).ResultType(ValueType::kInt64),
            ValueType::kInt64);
  EXPECT_EQ(AggregateFunction::Sum(0).ResultType(ValueType::kDouble),
            ValueType::kDouble);
  EXPECT_EQ(AggregateFunction::Avg(0).ResultType(ValueType::kInt64),
            ValueType::kDouble);
  EXPECT_EQ(AggregateFunction::Min(0).ResultType(ValueType::kString),
            ValueType::kString);
}

TEST(AggregateFunctionTest, ToStringUsesOneBasedSubscripts) {
  EXPECT_EQ(AggregateFunction::Sum(2).ToString(), "sum_3");
  EXPECT_EQ(AggregateFunction::Count().ToString(), "count");
}

// --- Conservative mode: Eq. (8) ---------------------------------------

TEST(AnalyzePartitionTest, ConservativeUsesPartitionMinimum) {
  PartitionBuilder p;
  p.Add(5, 20).Add(9, 10);
  auto a = AnalyzePartition(p.entries(), AggregateFunction::Min(0),
                            AggregateExpirationMode::kConservative)
               .value();
  EXPECT_EQ(a.value, Value(5));
  EXPECT_EQ(a.change_cap, T(10));  // min texp over the partition
  EXPECT_EQ(a.death, T(20));
  EXPECT_TRUE(a.invalidates_expression);
}

TEST(AnalyzePartitionTest, ConservativeSingleSliceDoesNotInvalidate) {
  PartitionBuilder p;
  p.Add(5, 10).Add(9, 10);  // one time slice: partition dies all at once
  auto a = AnalyzePartition(p.entries(), AggregateFunction::Count(),
                            AggregateExpirationMode::kConservative)
               .value();
  EXPECT_EQ(a.change_cap, T(10));
  EXPECT_EQ(a.death, T(10));
  EXPECT_FALSE(a.invalidates_expression);
}

// --- Table 1: min / max -------------------------------------------------

TEST(AnalyzePartitionTest, MinNeutralSetExtendsLifetime) {
  // Paper's motivating case: "a tuple that is not minimal may have the
  // minimum expiration time" — Eq. (8) would expire the result at 10, but
  // the min value 5 is actually stable until its holder dies at 20.
  PartitionBuilder p;
  p.Add(5, 20).Add(9, 10);
  auto a = AnalyzePartition(p.entries(), AggregateFunction::Min(0),
                            AggregateExpirationMode::kContributingSet)
               .value();
  EXPECT_EQ(a.value, Value(5));
  EXPECT_EQ(a.change_cap, T(20));
  // At 20 the partition also dies, so the expression never invalidates.
  EXPECT_FALSE(a.invalidates_expression);
}

TEST(AnalyzePartitionTest, MinChangesWhilePartitionAlive) {
  PartitionBuilder p;
  p.Add(5, 10).Add(9, 30);  // min dies at 10; 9 lives on -> value changes
  auto a = AnalyzePartition(p.entries(), AggregateFunction::Min(0),
                            AggregateExpirationMode::kContributingSet)
               .value();
  EXPECT_EQ(a.change_cap, T(10));
  EXPECT_TRUE(a.invalidates_expression);
}

TEST(AnalyzePartitionTest, MinLastSurvivingHolderMatters) {
  // Two holders of the minimum: only the last-expiring one contributes
  // (the other is in a neutral set per Table 1).
  PartitionBuilder p;
  p.Add(5, 10).Add(5, 25).Add(9, 30);
  auto a = AnalyzePartition(p.entries(), AggregateFunction::Min(0),
                            AggregateExpirationMode::kContributingSet)
               .value();
  EXPECT_EQ(a.change_cap, T(25));
  EXPECT_TRUE(a.invalidates_expression);  // 9 outlives the min holders
}

TEST(AnalyzePartitionTest, MaxSymmetric) {
  PartitionBuilder p;
  p.Add(9, 20).Add(5, 10);
  auto a = AnalyzePartition(p.entries(), AggregateFunction::Max(0),
                            AggregateExpirationMode::kContributingSet)
               .value();
  EXPECT_EQ(a.value, Value(9));
  EXPECT_EQ(a.change_cap, T(20));
  EXPECT_FALSE(a.invalidates_expression);
}

// --- Table 1: sum / avg -------------------------------------------------

TEST(AnalyzePartitionTest, SumZeroSliceIsNeutral) {
  // The slice at time 10 sums to zero: removing it keeps sum = 7.
  PartitionBuilder p;
  p.Add(3, 10).Add(-3, 10).Add(7, 20);
  auto a = AnalyzePartition(p.entries(), AggregateFunction::Sum(0),
                            AggregateExpirationMode::kContributingSet)
               .value();
  EXPECT_EQ(a.value, Value(7));
  EXPECT_EQ(a.change_cap, T(20));
  EXPECT_FALSE(a.invalidates_expression);
}

TEST(AnalyzePartitionTest, SumNonZeroSliceCaps) {
  PartitionBuilder p;
  p.Add(3, 10).Add(7, 20);
  auto a = AnalyzePartition(p.entries(), AggregateFunction::Sum(0),
                            AggregateExpirationMode::kContributingSet)
               .value();
  EXPECT_EQ(a.change_cap, T(10));
  EXPECT_TRUE(a.invalidates_expression);
}

TEST(AnalyzePartitionTest, SumAllZerosIsEmptyContributingSet) {
  // The paper's C = ∅ example: "all attribute values to be aggregated are
  // zero and the aggregate function is sum" — the value stays valid until
  // the whole partition expires.
  PartitionBuilder p;
  p.Add(0, 10).Add(0, 20).Add(0, 30);
  auto a = AnalyzePartition(p.entries(), AggregateFunction::Sum(0),
                            AggregateExpirationMode::kContributingSet)
               .value();
  EXPECT_EQ(a.value, Value(0));
  EXPECT_EQ(a.change_cap, T(30));  // max{texp(l) | l ∈ P}
  EXPECT_FALSE(a.invalidates_expression);
}

TEST(AnalyzePartitionTest, AvgNeutralSlice) {
  // Partition avg = 4; the slice at 10 has avg (3+5)/2 = 4: neutral.
  PartitionBuilder p;
  p.Add(3, 10).Add(5, 10).Add(4, 20);
  auto a = AnalyzePartition(p.entries(), AggregateFunction::Avg(0),
                            AggregateExpirationMode::kContributingSet)
               .value();
  EXPECT_EQ(a.value, Value(4.0));
  EXPECT_EQ(a.change_cap, T(20));
  EXPECT_FALSE(a.invalidates_expression);
}

TEST(AnalyzePartitionTest, AvgNonNeutralSlice) {
  PartitionBuilder p;
  p.Add(3, 10).Add(5, 20);  // removing 3 moves avg from 4 to 5
  auto a = AnalyzePartition(p.entries(), AggregateFunction::Avg(0),
                            AggregateExpirationMode::kContributingSet)
               .value();
  EXPECT_EQ(a.change_cap, T(10));
  EXPECT_TRUE(a.invalidates_expression);
}

// --- count strictly follows Eq. (8) ------------------------------------

TEST(AnalyzePartitionTest, CountStrictlyFollowsEq8) {
  PartitionBuilder p;
  p.Add(1, 10).Add(2, 20);
  for (auto mode : {AggregateExpirationMode::kConservative,
                    AggregateExpirationMode::kContributingSet,
                    AggregateExpirationMode::kExact}) {
    auto a =
        AnalyzePartition(p.entries(), AggregateFunction::Count(), mode)
            .value();
    EXPECT_EQ(a.change_cap, T(10)) << AggregateExpirationModeToString(mode);
    EXPECT_TRUE(a.invalidates_expression);
  }
}

// --- Exact replay (Eq. 9) -----------------------------------------------

TEST(AnalyzePartitionTest, ExactFindsFirstChange) {
  // min over {5@10, 5@20, 9@30}: changes at 20 (when the last 5 dies).
  PartitionBuilder p;
  p.Add(5, 10).Add(5, 20).Add(9, 30);
  auto a = AnalyzePartition(p.entries(), AggregateFunction::Min(0),
                            AggregateExpirationMode::kExact)
               .value();
  EXPECT_EQ(a.change_cap, T(20));
  EXPECT_TRUE(a.invalidates_expression);
}

TEST(AnalyzePartitionTest, ExactNoChangeUntilDeath) {
  PartitionBuilder p;
  p.Add(5, 30).Add(9, 10);  // min holder outlives everything
  auto a = AnalyzePartition(p.entries(), AggregateFunction::Min(0),
                            AggregateExpirationMode::kExact)
               .value();
  EXPECT_EQ(a.change_cap, T(30));
  EXPECT_FALSE(a.invalidates_expression);
}

TEST(AnalyzePartitionTest, InfiniteTuplesNeverExpire) {
  PartitionBuilder p;
  p.Add(Tuple{5}, Timestamp::Infinity());
  p.Add(Tuple{9}, T(10));
  auto a = AnalyzePartition(p.entries(), AggregateFunction::Max(0),
                            AggregateExpirationMode::kExact)
               .value();
  // max = 9 dies at 10 while the 5 lives forever: change at 10.
  EXPECT_EQ(a.change_cap, T(10));
  EXPECT_TRUE(a.invalidates_expression);
  EXPECT_TRUE(a.death.IsInfinite());
}

TEST(PartitionChangeTimesTest, CountChangesAtEverySliceButLast) {
  PartitionBuilder p;
  p.Add(1, 10).Add(2, 20).Add(3, 30);
  auto changes =
      PartitionChangeTimes(p.entries(), AggregateFunction::Count()).value();
  // The last slice's removal empties the partition: not a change event.
  EXPECT_EQ(changes, (std::vector<Timestamp>{T(10), T(20)}));
}

TEST(PartitionChangeTimesTest, BoundedByPartitionSize) {
  // Sec. 3.4.1: a deterministic f yields at most |P| distinct values.
  PartitionBuilder p;
  for (int i = 0; i < 8; ++i) p.Add(i * 7 % 5, 10 + i);
  for (auto f : {AggregateFunction::Min(0), AggregateFunction::Max(0),
                 AggregateFunction::Sum(0), AggregateFunction::Avg(0),
                 AggregateFunction::Count()}) {
    auto changes = PartitionChangeTimes(p.entries(), f).value();
    EXPECT_LE(changes.size(), p.entries().size()) << f.ToString();
  }
}

TEST(PartitionChangeTimesTest, SumWithCancellingSlices) {
  // sum: 3@10, -3@20, 5@30. Removing 3 changes sum (5->2); removing -3
  // changes it again (2->5); removing 5 empties.
  PartitionBuilder p;
  p.Add(3, 10).Add(-3, 20).Add(5, 30);
  auto changes =
      PartitionChangeTimes(p.entries(), AggregateFunction::Sum(0)).value();
  EXPECT_EQ(changes, (std::vector<Timestamp>{T(10), T(20)}));
}

}  // namespace
}  // namespace expdb
