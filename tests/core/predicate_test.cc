#include "core/predicate.h"

#include <gtest/gtest.h>

namespace expdb {
namespace {

TEST(PredicateTest, DefaultIsTrue) {
  Predicate p;
  EXPECT_TRUE(p.Evaluate(Tuple{1, 2}));
  EXPECT_TRUE(p.Evaluate(Tuple{}));
}

TEST(PredicateTest, Literals) {
  EXPECT_TRUE(Predicate::Literal(true).Evaluate(Tuple{}));
  EXPECT_FALSE(Predicate::Literal(false).Evaluate(Tuple{}));
}

TEST(PredicateTest, ColumnEqualsConstant) {
  // The paper's uncorrelated selection: j = a.
  Predicate p = Predicate::ColumnEquals(1, Value(25));
  EXPECT_TRUE(p.Evaluate(Tuple{1, 25}));
  EXPECT_FALSE(p.Evaluate(Tuple{1, 30}));
  EXPECT_FALSE(p.IsCorrelated());
}

TEST(PredicateTest, ColumnsEqual) {
  // The paper's correlated selection: j = k.
  Predicate p = Predicate::ColumnsEqual(0, 2);
  EXPECT_TRUE(p.Evaluate(Tuple{7, 0, 7}));
  EXPECT_FALSE(p.Evaluate(Tuple{7, 0, 8}));
  EXPECT_TRUE(p.IsCorrelated());
}

TEST(PredicateTest, AllComparisonOps) {
  Tuple t{5};
  auto cmp = [&](ComparisonOp op, int64_t c) {
    return Predicate::Compare(Operand::Column(0), op,
                              Operand::Constant(Value(c)))
        .Evaluate(t);
  };
  EXPECT_TRUE(cmp(ComparisonOp::kEq, 5));
  EXPECT_FALSE(cmp(ComparisonOp::kEq, 6));
  EXPECT_TRUE(cmp(ComparisonOp::kNe, 6));
  EXPECT_TRUE(cmp(ComparisonOp::kLt, 6));
  EXPECT_FALSE(cmp(ComparisonOp::kLt, 5));
  EXPECT_TRUE(cmp(ComparisonOp::kLe, 5));
  EXPECT_TRUE(cmp(ComparisonOp::kGt, 4));
  EXPECT_TRUE(cmp(ComparisonOp::kGe, 5));
  EXPECT_FALSE(cmp(ComparisonOp::kGe, 6));
}

TEST(PredicateTest, AndOrNot) {
  Predicate a = Predicate::ColumnEquals(0, Value(1));
  Predicate b = Predicate::ColumnEquals(1, Value(2));
  EXPECT_TRUE(a.And(b).Evaluate(Tuple{1, 2}));
  EXPECT_FALSE(a.And(b).Evaluate(Tuple{1, 3}));
  EXPECT_TRUE(a.Or(b).Evaluate(Tuple{9, 2}));
  EXPECT_FALSE(a.Or(b).Evaluate(Tuple{9, 9}));
  EXPECT_TRUE(a.Not().Evaluate(Tuple{9, 0}));
  EXPECT_FALSE(a.Not().Evaluate(Tuple{1, 0}));
}

TEST(PredicateTest, MixedNumericComparison) {
  Predicate p = Predicate::ColumnEquals(0, Value(3.0));
  EXPECT_TRUE(p.Evaluate(Tuple{3}));
}

TEST(PredicateTest, ValidateChecksColumnRange) {
  Schema s({{"a", ValueType::kInt64}, {"b", ValueType::kInt64}});
  EXPECT_TRUE(Predicate::ColumnsEqual(0, 1).Validate(s).ok());
  EXPECT_EQ(Predicate::ColumnsEqual(0, 5).Validate(s).code(),
            StatusCode::kOutOfRange);
  EXPECT_EQ(Predicate::ColumnEquals(2, Value(1)).Validate(s).code(),
            StatusCode::kOutOfRange);
  // Nested composition is validated too.
  Predicate bad = Predicate::ColumnsEqual(0, 1)
                      .And(Predicate::ColumnEquals(9, Value(1)));
  EXPECT_FALSE(bad.Validate(s).ok());
}

TEST(PredicateTest, ReferencedColumns) {
  Predicate p = Predicate::ColumnsEqual(0, 3)
                    .Or(Predicate::ColumnEquals(1, Value(9)))
                    .Not();
  EXPECT_EQ(p.ReferencedColumns(), (std::set<size_t>{0, 1, 3}));
}

TEST(PredicateTest, ShiftColumns) {
  // Shift a predicate formulated against S to index into R × S.
  Predicate p = Predicate::ColumnEquals(0, Value(7));
  Predicate shifted = p.ShiftColumns(0, 2);
  EXPECT_TRUE(shifted.Evaluate(Tuple{0, 0, 7}));
  EXPECT_FALSE(shifted.Evaluate(Tuple{7, 0, 0}));
  // Only columns >= `from` shift.
  Predicate q = Predicate::ColumnsEqual(0, 1).ShiftColumns(1, 2);
  EXPECT_TRUE(q.Evaluate(Tuple{4, 0, 0, 4}));
}

TEST(PredicateTest, TopLevelEqualities) {
  Predicate p = Predicate::ColumnsEqual(0, 2)
                    .And(Predicate::ColumnsEqual(1, 3))
                    .And(Predicate::ColumnEquals(0, Value(1)));
  auto eqs = p.TopLevelEqualities();
  ASSERT_EQ(eqs.size(), 2u);
  EXPECT_EQ(eqs[0], (std::pair<size_t, size_t>{0, 2}));
  EXPECT_EQ(eqs[1], (std::pair<size_t, size_t>{1, 3}));
  // Equalities under OR are not extractable.
  Predicate q = Predicate::ColumnsEqual(0, 1).Or(Predicate::ColumnsEqual(2, 3));
  EXPECT_TRUE(q.TopLevelEqualities().empty());
  // Inequalities are not equalities.
  Predicate r = Predicate::Compare(Operand::Column(0), ComparisonOp::kLt,
                                   Operand::Column(1));
  EXPECT_TRUE(r.TopLevelEqualities().empty());
}

TEST(PredicateTest, ToStringRendersOneBased) {
  Predicate p = Predicate::ColumnsEqual(0, 2);
  EXPECT_EQ(p.ToString(), "$1 = $3");
  Predicate q = Predicate::ColumnEquals(1, Value("x"));
  EXPECT_EQ(q.ToString(), "$2 = 'x'");
}

TEST(PredicateTest, SharedStructureIsImmutable) {
  Predicate base = Predicate::ColumnEquals(0, Value(1));
  Predicate combined = base.And(Predicate::ColumnEquals(0, Value(2)));
  // `base` behaves the same after being composed.
  EXPECT_TRUE(base.Evaluate(Tuple{1}));
  EXPECT_FALSE(combined.Evaluate(Tuple{1}));
}

}  // namespace
}  // namespace expdb
