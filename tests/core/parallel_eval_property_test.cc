// Parallel evaluation is set-identical to serial evaluation.
//
// Results of the expiration algebra are sets, so the morsel-parallel
// engine (EvalOptions::parallelism > 1) must produce exactly the same
// MaterializedResult as the serial path — same tuples, same per-tuple
// expiration times, same texp(e), same validity intervals — for every
// operator, both aggregate replay flavors, and difference roots with
// their Theorem 3 helper queues. Swept over random databases and
// expression shapes with parallel_min_morsel forced low so the parallel
// code paths run even on test-sized inputs.

#include <algorithm>
#include <vector>

#include <gtest/gtest.h>

#include "core/eval.h"
#include "testing/workload.h"

namespace expdb {
namespace {

/// Sorted (tuple, texp) snapshot of a relation — the canonical form for
/// exact set comparison.
std::vector<Relation::Entry> SortedEntries(const Relation& r) {
  std::vector<Relation::Entry> out = r.entries();
  std::sort(out.begin(), out.end(),
            [](const Relation::Entry& a, const Relation::Entry& b) {
              if (!(a.tuple == b.tuple)) return a.tuple < b.tuple;
              return a.texp < b.texp;
            });
  return out;
}

void ExpectIdentical(const MaterializedResult& serial,
                     const MaterializedResult& parallel,
                     const std::string& context) {
  EXPECT_EQ(serial.texp, parallel.texp) << context;
  EXPECT_EQ(serial.materialized_at, parallel.materialized_at) << context;
  EXPECT_EQ(serial.validity, parallel.validity) << context;
  ASSERT_EQ(serial.relation.size(), parallel.relation.size()) << context;
  const auto lhs = SortedEntries(serial.relation);
  const auto rhs = SortedEntries(parallel.relation);
  for (size_t i = 0; i < lhs.size(); ++i) {
    ASSERT_TRUE(lhs[i].tuple == rhs[i].tuple)
        << context << "\ntuple #" << i << ": " << lhs[i].tuple.ToString()
        << " vs " << rhs[i].tuple.ToString();
    ASSERT_EQ(lhs[i].texp, rhs[i].texp)
        << context << "\ntexp of " << lhs[i].tuple.ToString();
  }
}

struct Config {
  uint64_t seed;
  size_t num_tuples;
  size_t max_depth;
  int64_t value_domain;
  AggregateExpirationMode mode;
  bool compute_validity;
};

class ParallelEvalPropertyTest : public ::testing::TestWithParam<Config> {};

TEST_P(ParallelEvalPropertyTest, MatchesSerial) {
  const Config& cfg = GetParam();
  Rng rng(cfg.seed);

  Database db;
  testing::RelationSpec rspec;
  rspec.num_tuples = cfg.num_tuples;
  rspec.arity = 2;
  rspec.value_domain = cfg.value_domain;
  rspec.ttl_min = 1;
  rspec.ttl_max = 30;
  rspec.infinite_fraction = 0.1;
  ASSERT_TRUE(testing::FillDatabase(&db, rng, rspec, 3).ok());

  testing::ExpressionSpec espec;
  espec.max_depth = cfg.max_depth;
  espec.allow_nonmonotonic = true;

  EvalOptions serial_opts;
  serial_opts.aggregate_mode = cfg.mode;
  serial_opts.compute_validity = cfg.compute_validity;
  serial_opts.parallelism = 1;

  for (int trial = 0; trial < 8; ++trial) {
    ExpressionPtr e = testing::MakeRandomExpression(rng, db, espec);
    const Timestamp tau(rng.UniformInt(0, 5));
    auto serial = Evaluate(e, db, tau, serial_opts);
    ASSERT_TRUE(serial.ok()) << serial.status().ToString() << "\n"
                             << e->ToString();

    for (size_t threads : {2u, 4u, 8u}) {
      EvalOptions par_opts = serial_opts;
      par_opts.parallelism = threads;
      // Force the parallel code paths despite test-sized inputs.
      par_opts.parallel_min_morsel = 1 + trial % 4;
      auto parallel = Evaluate(e, db, tau, par_opts);
      ASSERT_TRUE(parallel.ok()) << parallel.status().ToString();
      ExpectIdentical(*serial, *parallel,
                      "expression: " + e->ToString() + "\nthreads: " +
                          std::to_string(threads) + ", tau: " +
                          std::to_string(tau.ticks()));
    }
  }
}

TEST_P(ParallelEvalPropertyTest, DifferenceRootMatchesSerial) {
  const Config& cfg = GetParam();
  Rng rng(cfg.seed * 977 + 5);

  Database db;
  testing::RelationSpec rspec;
  rspec.num_tuples = cfg.num_tuples;
  rspec.arity = 2;
  // A small domain forces common tuples, hence criticals in the helper.
  rspec.value_domain = std::min<int64_t>(cfg.value_domain, 6);
  rspec.ttl_min = 1;
  rspec.ttl_max = 30;
  rspec.infinite_fraction = 0.1;
  ASSERT_TRUE(testing::FillDatabase(&db, rng, rspec, 3).ok());

  EvalOptions serial_opts;
  serial_opts.aggregate_mode = cfg.mode;
  serial_opts.compute_validity = cfg.compute_validity;
  serial_opts.parallelism = 1;

  // FillDatabase relations share a schema, so these are union-compatible.
  const std::vector<ExpressionPtr> roots = {
      Expression::MakeDifference(Expression::MakeBase("R0"),
                                 Expression::MakeBase("R1")),
      Expression::MakeDifference(
          Expression::MakeUnion(Expression::MakeBase("R0"),
                                Expression::MakeBase("R1")),
          Expression::MakeBase("R2")),
      Expression::MakeDifference(
          Expression::MakeBase("R2"),
          Expression::MakeIntersect(Expression::MakeBase("R0"),
                                    Expression::MakeBase("R1"))),
  };

  for (const ExpressionPtr& e : roots) {
    const Timestamp tau(rng.UniformInt(0, 5));
    auto serial = EvaluateDifferenceRoot(e, db, tau, serial_opts);
    ASSERT_TRUE(serial.ok()) << serial.status().ToString();

    for (size_t threads : {2u, 4u, 8u}) {
      EvalOptions par_opts = serial_opts;
      par_opts.parallelism = threads;
      par_opts.parallel_min_morsel = 1;
      auto parallel = EvaluateDifferenceRoot(e, db, tau, par_opts);
      ASSERT_TRUE(parallel.ok()) << parallel.status().ToString();

      const std::string context =
          "difference root: " + e->ToString() + "\nthreads: " +
          std::to_string(threads);
      ExpectIdentical(serial->result, parallel->result, context);
      EXPECT_EQ(serial->common_count, parallel->common_count) << context;
      EXPECT_EQ(serial->children_texp, parallel->children_texp) << context;
      // Helper queues are sorted by (appears_at, tuple) — exact equality.
      ASSERT_EQ(serial->helper.size(), parallel->helper.size()) << context;
      for (size_t i = 0; i < serial->helper.size(); ++i) {
        EXPECT_TRUE(serial->helper[i] == parallel->helper[i])
            << context << "\nhelper entry #" << i;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ParallelEvalPropertyTest,
    ::testing::Values(
        Config{101, 60, 3, 6, AggregateExpirationMode::kConservative, false},
        Config{102, 60, 3, 6, AggregateExpirationMode::kContributingSet,
               false},
        Config{103, 60, 3, 6, AggregateExpirationMode::kExact, true},
        Config{104, 120, 4, 4, AggregateExpirationMode::kContributingSet,
               true},
        Config{105, 120, 4, 4, AggregateExpirationMode::kExact, false},
        Config{106, 40, 5, 3, AggregateExpirationMode::kContributingSet,
               true},
        Config{107, 250, 3, 12, AggregateExpirationMode::kContributingSet,
               false},
        Config{108, 250, 3, 12, AggregateExpirationMode::kConservative,
               true},
        Config{109, 500, 2, 25, AggregateExpirationMode::kExact, false},
        Config{110, 90, 4, 5, AggregateExpirationMode::kExact, true}),
    [](const ::testing::TestParamInfo<Config>& info) {
      return "seed" + std::to_string(info.param.seed) + "_" +
             std::string(AggregateExpirationModeToString(info.param.mode)
                             .substr(0, 4)) +
             "_n" + std::to_string(info.param.num_tuples) +
             (info.param.compute_validity ? "_validity" : "");
    });

}  // namespace
}  // namespace expdb
