// Approximate aggregate maintenance (the paper's future-work extension):
// with an absolute error bound ε, an aggregation result stays valid while
// the live aggregate is within ±ε of the materialized value, extending
// lifetimes beyond the exact ν.

#include <gtest/gtest.h>

#include "core/aggregate.h"
#include "core/eval.h"
#include "core/expression.h"

namespace expdb {
namespace {

Timestamp T(int64_t t) { return Timestamp(t); }

class ApproxPartition {
 public:
  ApproxPartition& Add(int64_t v, int64_t texp) {
    storage_.push_back(std::make_unique<Tuple>(Tuple{v}));
    entries_.push_back({storage_.back().get(), T(texp)});
    return *this;
  }
  const std::vector<PartitionEntry>& entries() const { return entries_; }

 private:
  std::vector<std::unique_ptr<Tuple>> storage_;
  std::vector<PartitionEntry> entries_;
};

TEST(ApproxAggregateTest, ZeroToleranceMatchesExact) {
  ApproxPartition p;
  p.Add(3, 10).Add(7, 20).Add(5, 30);
  for (auto f : {AggregateFunction::Min(0), AggregateFunction::Max(0),
                 AggregateFunction::Sum(0), AggregateFunction::Avg(0),
                 AggregateFunction::Count()}) {
    auto exact =
        AnalyzePartition(p.entries(), f, AggregateExpirationMode::kExact)
            .value();
    auto approx = AnalyzeApproxPartition(p.entries(), f, 0.0).value();
    EXPECT_EQ(exact.change_cap, approx.change_cap) << f.ToString();
    EXPECT_EQ(exact.invalidates_expression, approx.invalidates_expression)
        << f.ToString();
    EXPECT_EQ(exact.value, approx.value);
  }
}

TEST(ApproxAggregateTest, ToleranceExtendsSumLifetime) {
  // sum = 3 + 7 + 100 = 110; at 10 it drops to 107 (drift 3), at 20 to
  // 100 (drift 10).
  ApproxPartition p;
  p.Add(3, 10).Add(7, 20).Add(100, 30);
  auto f = AggregateFunction::Sum(0);

  auto exact = AnalyzeApproxPartition(p.entries(), f, 0.0).value();
  EXPECT_EQ(exact.change_cap, T(10));

  auto tol5 = AnalyzeApproxPartition(p.entries(), f, 5.0).value();
  EXPECT_EQ(tol5.change_cap, T(20));  // drift 3 tolerated, 10 is not
  EXPECT_TRUE(tol5.invalidates_expression);

  auto tol50 = AnalyzeApproxPartition(p.entries(), f, 50.0).value();
  EXPECT_EQ(tol50.change_cap, T(30));  // never deviates beyond 50
  EXPECT_FALSE(tol50.invalidates_expression);
}

TEST(ApproxAggregateTest, ToleranceExtendsAvgLifetime) {
  // avg = (10+12+14)/3 = 12; at 10 -> (12+14)/2 = 13; at 20 -> 14.
  ApproxPartition p;
  p.Add(10, 10).Add(12, 20).Add(14, 30);
  auto f = AggregateFunction::Avg(0);
  EXPECT_EQ(AnalyzeApproxPartition(p.entries(), f, 0.5).value().change_cap,
            T(10));
  EXPECT_EQ(AnalyzeApproxPartition(p.entries(), f, 1.5).value().change_cap,
            T(20));
  EXPECT_EQ(AnalyzeApproxPartition(p.entries(), f, 2.5).value().change_cap,
            T(30));
}

TEST(ApproxAggregateTest, CountWithSlackToleratesDepartures) {
  ApproxPartition p;
  p.Add(1, 10).Add(2, 20).Add(3, 30).Add(4, 40);
  auto f = AggregateFunction::Count();
  // count 4 -> 3 -> 2 -> (empties). Tolerance 1 allows count=3.
  EXPECT_EQ(AnalyzeApproxPartition(p.entries(), f, 1.0).value().change_cap,
            T(20));
  EXPECT_EQ(AnalyzeApproxPartition(p.entries(), f, 2.0).value().change_cap,
            T(30));
}

TEST(ApproxAggregateTest, MinMaxUseNumericDistance) {
  // min = 5; when it expires the live min is 6 (distance 1).
  ApproxPartition p;
  p.Add(5, 10).Add(6, 30).Add(9, 30);
  auto f = AggregateFunction::Min(0);
  EXPECT_EQ(AnalyzeApproxPartition(p.entries(), f, 0.5).value().change_cap,
            T(10));
  EXPECT_EQ(AnalyzeApproxPartition(p.entries(), f, 1.0).value().change_cap,
            T(30));
}

TEST(ApproxAggregateTest, NegativeToleranceRejected) {
  ApproxPartition p;
  p.Add(1, 10);
  EXPECT_FALSE(
      AnalyzeApproxPartition(p.entries(), AggregateFunction::Count(), -1.0)
          .ok());
}

TEST(ApproxAggregateTest, EvaluatorIntegration) {
  Database db;
  Relation* r = db.CreateRelation(
                       "R", Schema({{"k", ValueType::kInt64},
                                    {"v", ValueType::kInt64}}))
                    .value();
  ASSERT_TRUE(r->Insert(Tuple{1, 3}, T(10)).ok());
  ASSERT_TRUE(r->Insert(Tuple{1, 7}, T(20)).ok());
  ASSERT_TRUE(r->Insert(Tuple{1, 100}, T(30)).ok());

  auto e = algebra::Aggregate(algebra::Base("R"), {0},
                              AggregateFunction::Sum(1));
  EvalOptions exact;
  exact.aggregate_mode = AggregateExpirationMode::kExact;
  auto strict = Evaluate(e, db, T(0), exact).MoveValue();
  EXPECT_EQ(strict.texp, T(10));

  EvalOptions approx;
  approx.aggregate_tolerance = 5.0;
  auto relaxed = Evaluate(e, db, T(0), approx).MoveValue();
  EXPECT_EQ(relaxed.texp, T(20));  // 110 -> 107 tolerated under eps = 5

  // The served value is the (approximately maintained) original: at time
  // 12, the tuple <1,7,110> is still visible although the true sum is 107.
  EXPECT_TRUE(relaxed.relation.ContainsUnexpired(Tuple{1, 7, 110}, T(12)));
}

}  // namespace
}  // namespace expdb
