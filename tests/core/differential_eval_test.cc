// Differential testing: the production evaluator (hash joins, match
// tables, merged paths) against the naive reference evaluator that
// implements the paper's definitions literally. Random databases, random
// plans, all probed times — any divergence is a bug.

#include <gtest/gtest.h>

#include "core/eval.h"
#include "testing/workload.h"
#include "tests/support/reference_eval.h"

namespace expdb {
namespace {

struct Config {
  uint64_t seed;
  size_t num_tuples;
  size_t max_depth;
  int64_t value_domain;
};

class DifferentialEvalTest : public ::testing::TestWithParam<Config> {};

TEST_P(DifferentialEvalTest, ProductionMatchesReference) {
  const Config& cfg = GetParam();
  Rng rng(cfg.seed);
  Database db;
  testing::RelationSpec rspec;
  rspec.num_tuples = cfg.num_tuples;
  rspec.arity = 2;
  rspec.value_domain = cfg.value_domain;
  rspec.ttl_min = 1;
  rspec.ttl_max = 18;
  rspec.infinite_fraction = 0.1;
  ASSERT_TRUE(testing::FillDatabase(&db, rng, rspec, 3).ok());

  testing::ExpressionSpec espec;
  espec.max_depth = cfg.max_depth;
  espec.allow_nonmonotonic = true;

  EvalOptions conservative;
  conservative.aggregate_mode = AggregateExpirationMode::kConservative;

  for (int trial = 0; trial < 12; ++trial) {
    ExpressionPtr e = testing::MakeRandomExpression(rng, db, espec);
    for (int64_t t : {0, 1, 5, 9, 14, 19}) {
      auto production = Evaluate(e, db, Timestamp(t), conservative);
      auto reference = testing::ReferenceEval(e, db, Timestamp(t));
      ASSERT_EQ(production.ok(), reference.ok())
          << e->ToString() << " disagree on evaluability at " << t;
      if (!production.ok()) continue;
      EXPECT_TRUE(Relation::EqualAt(production->relation, *reference,
                                    Timestamp(t)))
          << "divergence at t=" << t << "\n  plan: " << e->ToString()
          << "\n  production: " << production->relation.ToString()
          << "\n  reference:  " << reference->ToString();
      EXPECT_EQ(production->relation.size(), reference->size())
          << e->ToString();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, DifferentialEvalTest,
    ::testing::Values(Config{901, 25, 3, 4}, Config{902, 25, 4, 4},
                      Config{903, 40, 4, 6}, Config{904, 40, 5, 3},
                      Config{905, 15, 5, 2}, Config{906, 60, 3, 8},
                      Config{907, 30, 4, 5}, Config{908, 50, 4, 10},
                      Config{909, 20, 6, 3}, Config{910, 35, 5, 5}),
    [](const ::testing::TestParamInfo<Config>& info) {
      return "seed" + std::to_string(info.param.seed);
    });

}  // namespace
}  // namespace expdb
