// Rewrite-rule tests (paper Sec. 3.1): each rule fires where expected,
// preserves contents and per-tuple expiration times at every instant, and
// never *shortens* the expression expiration time — pushing selections
// below a difference genuinely extends independent maintainability.

#include "core/rewrite.h"

#include <gtest/gtest.h>

#include "core/eval.h"
#include "testing/workload.h"

namespace expdb {
namespace {

using namespace algebra;  // NOLINT

Timestamp T(int64_t t) { return Timestamp(t); }

Predicate GeConst(size_t col, int64_t v) {
  return Predicate::Compare(Operand::Column(col), ComparisonOp::kGe,
                            Operand::Constant(Value(v)));
}

class RewriteTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Relation* r = db_.CreateRelation(
                         "R", Schema({{"a", ValueType::kInt64},
                                      {"b", ValueType::kInt64}}))
                      .value();
    ASSERT_TRUE(r->Insert(Tuple{1, 10}, T(6)).ok());
    ASSERT_TRUE(r->Insert(Tuple{2, 20}, T(12)).ok());
    ASSERT_TRUE(r->Insert(Tuple{3, 30}, T(20)).ok());
    Relation* s = db_.CreateRelation(
                         "S", Schema({{"a", ValueType::kInt64},
                                      {"b", ValueType::kInt64}}))
                      .value();
    ASSERT_TRUE(s->Insert(Tuple{1, 10}, T(3)).ok());   // critical vs R@6
    ASSERT_TRUE(s->Insert(Tuple{2, 20}, T(5)).ok());   // critical vs R@12
    ASSERT_TRUE(s->Insert(Tuple{4, 40}, T(9)).ok());
  }

  ExpressionPtr MustRewrite(const ExpressionPtr& e,
                            RewriteReport* report = nullptr) {
    auto r = RewriteForIndependence(e, db_, report);
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    return r.MoveValue();
  }

  Database db_;
};

TEST_F(RewriteTest, MergeSelects) {
  auto e = Select(Select(Base("R"), GeConst(0, 2)), GeConst(1, 25));
  RewriteReport report;
  auto rewritten = MustRewrite(e, &report);
  EXPECT_EQ(report.rule_applications["merge-selects"], 1u);
  EXPECT_EQ(rewritten->kind(), ExprKind::kSelect);
  EXPECT_EQ(rewritten->left()->kind(), ExprKind::kBase);
  auto result = Evaluate(rewritten, db_, T(0)).MoveValue();
  EXPECT_EQ(result.relation.size(), 1u);
  EXPECT_TRUE(result.relation.Contains(Tuple{3, 30}));
}

TEST_F(RewriteTest, SelectThroughDifferenceShrinksCriticalSet) {
  // Unrewritten: criticals <1,10> (appears 3) and <2,20> (appears 5)
  // -> texp(e) = 3. The selection b >= 15 keeps only <2,20>:
  // pushed below the difference, texp(e) becomes 5.
  auto e = Select(Difference(Base("R"), Base("S")), GeConst(1, 15));
  auto before = Evaluate(e, db_, T(0)).MoveValue();
  EXPECT_EQ(before.texp, T(3));

  RewriteReport report;
  auto rewritten = MustRewrite(e, &report);
  EXPECT_EQ(report.rule_applications["select-through-difference"], 1u);
  EXPECT_EQ(rewritten->kind(), ExprKind::kDifference);

  auto after = Evaluate(rewritten, db_, T(0)).MoveValue();
  EXPECT_EQ(after.texp, T(5));  // strictly extended
  // Same contents and texps everywhere they are both valid.
  EXPECT_TRUE(Relation::EqualAt(before.relation, after.relation, T(0)));
}

TEST_F(RewriteTest, SelectThroughUnionAndIntersect) {
  for (auto make : {+[](ExpressionPtr l, ExpressionPtr r) {
                      return Union(std::move(l), std::move(r));
                    },
                    +[](ExpressionPtr l, ExpressionPtr r) {
                      return Intersect(std::move(l), std::move(r));
                    }}) {
    auto e = Select(make(Base("R"), Base("S")), GeConst(0, 2));
    RewriteReport report;
    auto rewritten = MustRewrite(e, &report);
    EXPECT_EQ(report.rule_applications["select-through-set-op"], 1u);
    EXPECT_NE(rewritten->kind(), ExprKind::kSelect);
    auto before = Evaluate(e, db_, T(0)).MoveValue();
    auto after = Evaluate(rewritten, db_, T(0)).MoveValue();
    EXPECT_TRUE(Relation::EqualAt(before.relation, after.relation, T(0)));
  }
}

TEST_F(RewriteTest, SelectThroughProjectRemaps) {
  auto e = Select(Project(Base("R"), {1}), GeConst(0, 15));
  RewriteReport report;
  auto rewritten = MustRewrite(e, &report);
  EXPECT_EQ(report.rule_applications["select-through-project"], 1u);
  EXPECT_EQ(rewritten->kind(), ExprKind::kProject);
  EXPECT_EQ(rewritten->left()->kind(), ExprKind::kSelect);
  auto after = Evaluate(rewritten, db_, T(0)).MoveValue();
  EXPECT_EQ(after.relation.size(), 2u);  // {<20>, <30>}
  EXPECT_TRUE(after.relation.Contains(Tuple{20}));
}

TEST_F(RewriteTest, SelectThroughAggregateOnGroupColumns) {
  auto e = Select(Aggregate(Base("R"), {1}, AggregateFunction::Count()),
                  GeConst(1, 15));  // references group column b only
  RewriteReport report;
  auto rewritten = MustRewrite(e, &report);
  EXPECT_EQ(report.rule_applications["select-through-aggregate"], 1u);
  EXPECT_EQ(rewritten->kind(), ExprKind::kAggregate);
  auto before = Evaluate(e, db_, T(0)).MoveValue();
  auto after = Evaluate(rewritten, db_, T(0)).MoveValue();
  EXPECT_TRUE(Relation::EqualAt(before.relation, after.relation, T(0)));
}

TEST_F(RewriteTest, SelectOnNonGroupColumnStaysAboveAggregate) {
  // References the appended count column: NOT pushable.
  auto e = Select(Aggregate(Base("R"), {1}, AggregateFunction::Count()),
                  GeConst(2, 1));
  RewriteReport report;
  auto rewritten = MustRewrite(e, &report);
  EXPECT_EQ(report.rule_applications.count("select-through-aggregate"), 0u);
  EXPECT_EQ(rewritten->kind(), ExprKind::kSelect);
}

TEST_F(RewriteTest, SelectOnAggregatedValueColumnStaysPut) {
  // References a non-group source column: also not pushable.
  auto e = Select(Aggregate(Base("R"), {1}, AggregateFunction::Count()),
                  GeConst(0, 2));
  auto rewritten = MustRewrite(e);
  EXPECT_EQ(rewritten->kind(), ExprKind::kSelect);
}

TEST_F(RewriteTest, ProductBecomesJoinWithPushedSides) {
  auto p = GeConst(0, 2)                       // left-only ($1)
               .And(GeConst(2, 15))            // right-only ($3 -> S.a)
               .And(Predicate::ColumnsEqual(0, 2));  // cross
  auto e = Select(Product(Base("R"), Base("S")), p);
  RewriteReport report;
  auto rewritten = MustRewrite(e, &report);
  EXPECT_EQ(report.rule_applications["select-through-product"], 1u);
  EXPECT_EQ(rewritten->kind(), ExprKind::kJoin);
  EXPECT_EQ(rewritten->left()->kind(), ExprKind::kSelect);
  EXPECT_EQ(rewritten->right()->kind(), ExprKind::kSelect);
  auto before = Evaluate(e, db_, T(0)).MoveValue();
  auto after = Evaluate(rewritten, db_, T(0)).MoveValue();
  EXPECT_TRUE(Relation::EqualAt(before.relation, after.relation, T(0)));
}

TEST_F(RewriteTest, SelectIntoJoinMerges) {
  auto e = Select(Join(Base("R"), Base("S"), Predicate::ColumnsEqual(0, 2)),
                  GeConst(1, 15));
  RewriteReport report;
  auto rewritten = MustRewrite(e, &report);
  EXPECT_EQ(report.rule_applications["select-into-join"], 1u);
  EXPECT_EQ(rewritten->kind(), ExprKind::kJoin);
}

TEST_F(RewriteTest, MergeProjects) {
  auto e = Project(Project(Base("R"), {1, 0}), {1});
  RewriteReport report;
  auto rewritten = MustRewrite(e, &report);
  EXPECT_EQ(report.rule_applications["merge-projects"], 1u);
  EXPECT_EQ(rewritten->kind(), ExprKind::kProject);
  EXPECT_EQ(rewritten->projection(), (std::vector<size_t>{0}));
  EXPECT_EQ(rewritten->left()->kind(), ExprKind::kBase);
}

TEST_F(RewriteTest, NullAndInvalidInputsRejected) {
  EXPECT_FALSE(RewriteForIndependence(nullptr, db_).ok());
  EXPECT_FALSE(RewriteForIndependence(Base("nope"), db_).ok());
}

// Property: rewriting preserves semantics exactly (contents + texps at
// every instant) and never shortens texp(e).
class RewritePropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RewritePropertyTest, SemanticsPreservedAndIndependenceExtended) {
  Rng rng(GetParam());
  Database db;
  testing::RelationSpec spec;
  spec.num_tuples = 60;
  spec.arity = 2;
  spec.value_domain = 6;
  spec.ttl_min = 1;
  spec.ttl_max = 20;
  ASSERT_TRUE(testing::FillDatabase(&db, rng, spec, 3).ok());

  testing::ExpressionSpec espec;
  espec.max_depth = 5;
  espec.allow_nonmonotonic = true;

  for (int trial = 0; trial < 10; ++trial) {
    ExpressionPtr e = testing::MakeRandomExpression(rng, db, espec);
    auto rewritten = RewriteForIndependence(e, db);
    ASSERT_TRUE(rewritten.ok()) << e->ToString();

    auto before = Evaluate(e, db, Timestamp::Zero()).MoveValue();
    auto after = Evaluate(*rewritten, db, Timestamp::Zero()).MoveValue();
    EXPECT_GE(after.texp, before.texp)
        << "rewrite shortened texp(e)\n  before: " << e->ToString()
        << "\n  after:  " << (*rewritten)->ToString();
    for (int64_t t = 0; t <= 22; t += 2) {
      auto b = Evaluate(e, db, T(t)).MoveValue();
      auto a = Evaluate(*rewritten, db, T(t)).MoveValue();
      EXPECT_TRUE(Relation::EqualAt(b.relation, a.relation, T(t)))
          << "rewrite changed semantics at t=" << t << "\n  before: "
          << e->ToString() << "\n  after:  " << (*rewritten)->ToString();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RewritePropertyTest,
                         ::testing::Range<uint64_t>(400, 412));

}  // namespace
}  // namespace expdb
