#include "core/expression.h"

#include <gtest/gtest.h>

namespace expdb {
namespace {

using namespace algebra;  // NOLINT

class ExpressionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(db_.CreateRelation("R", Schema({{"a", ValueType::kInt64},
                                                {"b", ValueType::kInt64}}))
                    .ok());
    ASSERT_TRUE(db_.CreateRelation("S", Schema({{"x", ValueType::kInt64},
                                                {"y", ValueType::kInt64}}))
                    .ok());
    ASSERT_TRUE(
        db_.CreateRelation("W", Schema({{"s", ValueType::kString}})).ok());
  }
  Database db_;
};

TEST_F(ExpressionTest, MonotonicityClassification) {
  // The paper's dichotomy: (1)-(6) are monotonic; agg and − are not.
  auto r = Base("R");
  auto s = Base("S");
  EXPECT_TRUE(r->IsMonotonic());
  EXPECT_TRUE(Select(r, Predicate())->IsMonotonic());
  EXPECT_TRUE(Project(r, {0})->IsMonotonic());
  EXPECT_TRUE(Product(r, s)->IsMonotonic());
  EXPECT_TRUE(Union(r, s)->IsMonotonic());
  EXPECT_TRUE(Intersect(r, s)->IsMonotonic());
  EXPECT_TRUE(Join(r, s, Predicate::ColumnsEqual(0, 2))->IsMonotonic());
  EXPECT_FALSE(Difference(r, s)->IsMonotonic());
  EXPECT_FALSE(Aggregate(r, {0}, AggregateFunction::Count())->IsMonotonic());
  // Non-monotonicity is contagious upward.
  EXPECT_FALSE(Select(Difference(r, s), Predicate())->IsMonotonic());
  EXPECT_FALSE(
      Product(r, Project(Aggregate(s, {0}, AggregateFunction::Count()),
                         {0, 1}))
          ->IsMonotonic());
}

TEST_F(ExpressionTest, SchemaInferenceBase) {
  EXPECT_EQ(Base("R")->InferSchema(db_).value().ToString(),
            "(a:int, b:int)");
  EXPECT_EQ(Base("nope")->InferSchema(db_).status().code(),
            StatusCode::kNotFound);
}

TEST_F(ExpressionTest, SchemaInferenceSelectValidatesPredicate) {
  auto ok = Select(Base("R"), Predicate::ColumnsEqual(0, 1));
  EXPECT_TRUE(ok->InferSchema(db_).ok());
  auto bad = Select(Base("R"), Predicate::ColumnsEqual(0, 9));
  EXPECT_EQ(bad->InferSchema(db_).status().code(), StatusCode::kOutOfRange);
}

TEST_F(ExpressionTest, SchemaInferenceProject) {
  auto e = Project(Base("R"), {1});
  EXPECT_EQ(e->InferSchema(db_).value().ToString(), "(b:int)");
  auto bad = Project(Base("R"), {7});
  EXPECT_FALSE(bad->InferSchema(db_).ok());
}

TEST_F(ExpressionTest, SchemaInferenceProductConcatenates) {
  auto e = Product(Base("R"), Base("S"));
  EXPECT_EQ(e->InferSchema(db_).value().ToString(),
            "(a:int, b:int, x:int, y:int)");
  // Self-product disambiguates names.
  auto self = Product(Base("R"), Base("R"));
  EXPECT_EQ(self->InferSchema(db_).value().ToString(),
            "(a:int, b:int, a.2:int, b.2:int)");
}

TEST_F(ExpressionTest, SchemaInferenceSetOpsRequireCompatibility) {
  EXPECT_TRUE(Union(Base("R"), Base("S"))->InferSchema(db_).ok());
  EXPECT_EQ(Union(Base("R"), Base("W"))->InferSchema(db_).status().code(),
            StatusCode::kTypeError);
  EXPECT_EQ(
      Intersect(Base("R"), Base("W"))->InferSchema(db_).status().code(),
      StatusCode::kTypeError);
  EXPECT_EQ(
      Difference(Base("R"), Base("W"))->InferSchema(db_).status().code(),
      StatusCode::kTypeError);
}

TEST_F(ExpressionTest, SchemaInferenceAggregateAppendsColumn) {
  auto e = Aggregate(Base("R"), {0}, AggregateFunction::Sum(1));
  EXPECT_EQ(e->InferSchema(db_).value().ToString(),
            "(a:int, b:int, sum_2:int)");
  auto avg = Aggregate(Base("R"), {0}, AggregateFunction::Avg(1));
  EXPECT_EQ(avg->InferSchema(db_).value().attribute(2).type,
            ValueType::kDouble);
}

TEST_F(ExpressionTest, SchemaInferenceAggregateRejectsBadInputs) {
  EXPECT_EQ(Aggregate(Base("R"), {5}, AggregateFunction::Count())
                ->InferSchema(db_)
                .status()
                .code(),
            StatusCode::kOutOfRange);
  EXPECT_EQ(Aggregate(Base("R"), {0}, AggregateFunction::Sum(9))
                ->InferSchema(db_)
                .status()
                .code(),
            StatusCode::kOutOfRange);
  EXPECT_EQ(Aggregate(Base("W"), {}, AggregateFunction::Sum(0))
                ->InferSchema(db_)
                .status()
                .code(),
            StatusCode::kTypeError);
}

TEST_F(ExpressionTest, ChainedAggregateNamesStayUnique) {
  auto e = Aggregate(Aggregate(Base("R"), {0}, AggregateFunction::Count()),
                     {0}, AggregateFunction::Count());
  Schema s = e->InferSchema(db_).value();
  EXPECT_EQ(s.attribute(2).name, "count");
  EXPECT_EQ(s.attribute(3).name, "count.2");
}

TEST_F(ExpressionTest, BaseRelationNames) {
  auto e = Union(Join(Base("R"), Base("S"), Predicate::ColumnsEqual(0, 2)),
                 Base("R"));
  EXPECT_EQ(e->BaseRelationNames(),
            (std::set<std::string>{"R", "S"}));
}

TEST_F(ExpressionTest, NodeCountAndDepth) {
  auto e = Select(Project(Base("R"), {0}), Predicate());
  EXPECT_EQ(e->NodeCount(), 3u);
  EXPECT_EQ(e->Depth(), 3u);
  auto b = Union(Base("R"), Base("S"));
  EXPECT_EQ(b->NodeCount(), 3u);
  EXPECT_EQ(b->Depth(), 2u);
}

TEST_F(ExpressionTest, ToStringNotation) {
  auto e = Project(Join(Base("Pol"), Base("El"),
                        Predicate::ColumnsEqual(0, 2)),
                   {1});
  EXPECT_EQ(e->ToString(), "π_{2}((Pol ⋈_{$1 = $3} El))");
  auto d = Difference(Base("R"), Base("S"));
  EXPECT_EQ(d->ToString(), "(R − S)");
  auto a = Aggregate(Base("Pol"), {1}, AggregateFunction::Count());
  EXPECT_EQ(a->ToString(), "agg_{{2},count}(Pol)");
}

}  // namespace
}  // namespace expdb
