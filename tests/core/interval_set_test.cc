#include "core/interval_set.h"

#include <gtest/gtest.h>

namespace expdb {
namespace {

Timestamp T(int64_t t) { return Timestamp(t); }
const Timestamp kInf = Timestamp::Infinity();

TEST(IntervalSetTest, EmptyByDefault) {
  IntervalSet s;
  EXPECT_TRUE(s.IsEmpty());
  EXPECT_FALSE(s.Contains(T(0)));
  EXPECT_EQ(s.ToString(), "{}");
}

TEST(IntervalSetTest, SingleInterval) {
  IntervalSet s(T(2), T(5));
  EXPECT_TRUE(s.Contains(T(2)));
  EXPECT_TRUE(s.Contains(T(4)));
  EXPECT_FALSE(s.Contains(T(5)));  // half-open
  EXPECT_FALSE(s.Contains(T(1)));
  EXPECT_EQ(s.interval_count(), 1u);
}

TEST(IntervalSetTest, EmptyIntervalIgnored) {
  IntervalSet s(T(5), T(5));
  EXPECT_TRUE(s.IsEmpty());
  s.Add(T(7), T(3));
  EXPECT_TRUE(s.IsEmpty());
}

TEST(IntervalSetTest, FromExtendsToInfinity) {
  IntervalSet s = IntervalSet::From(T(3));
  EXPECT_TRUE(s.Contains(T(3)));
  EXPECT_TRUE(s.Contains(T(1'000'000)));
  EXPECT_FALSE(s.Contains(T(2)));
}

TEST(IntervalSetTest, AddMergesOverlapping) {
  IntervalSet s;
  s.Add(T(1), T(4));
  s.Add(T(3), T(7));
  EXPECT_EQ(s.interval_count(), 1u);
  EXPECT_EQ(s, IntervalSet(T(1), T(7)));
}

TEST(IntervalSetTest, AddMergesAdjacent) {
  IntervalSet s;
  s.Add(T(1), T(4));
  s.Add(T(4), T(7));  // [1,4) ∪ [4,7) = [1,7)
  EXPECT_EQ(s.interval_count(), 1u);
  EXPECT_TRUE(s.Contains(T(4)));
}

TEST(IntervalSetTest, AddKeepsDisjointSeparate) {
  IntervalSet s;
  s.Add(T(1), T(3));
  s.Add(T(5), T(8));
  EXPECT_EQ(s.interval_count(), 2u);
  EXPECT_FALSE(s.Contains(T(4)));
}

TEST(IntervalSetTest, AddBridgesMultiple) {
  IntervalSet s;
  s.Add(T(1), T(3));
  s.Add(T(5), T(7));
  s.Add(T(9), T(11));
  s.Add(T(2), T(10));  // swallows the gap structure
  EXPECT_EQ(s.interval_count(), 1u);
  EXPECT_EQ(s, IntervalSet(T(1), T(11)));
}

TEST(IntervalSetTest, SubtractMiddleSplits) {
  IntervalSet s(T(0), T(10));
  s.Subtract(T(3), T(6));
  EXPECT_EQ(s.interval_count(), 2u);
  EXPECT_TRUE(s.Contains(T(2)));
  EXPECT_FALSE(s.Contains(T(3)));
  EXPECT_FALSE(s.Contains(T(5)));
  EXPECT_TRUE(s.Contains(T(6)));
}

TEST(IntervalSetTest, SubtractEdges) {
  IntervalSet s(T(0), T(10));
  s.Subtract(T(0), T(2));
  s.Subtract(T(8), T(20));
  EXPECT_EQ(s, IntervalSet(T(2), T(8)));
}

TEST(IntervalSetTest, SubtractFromInfinite) {
  IntervalSet s = IntervalSet::From(T(0));
  s.Subtract(T(5), T(9));
  EXPECT_TRUE(s.Contains(T(4)));
  EXPECT_FALSE(s.Contains(T(7)));
  EXPECT_TRUE(s.Contains(T(9)));
  EXPECT_TRUE(s.Contains(T(1'000'000)));
  EXPECT_EQ(s.interval_count(), 2u);
}

TEST(IntervalSetTest, IntersectBasic) {
  IntervalSet a(T(0), T(10));
  IntervalSet b(T(5), T(15));
  EXPECT_EQ(a.Intersect(b), IntervalSet(T(5), T(10)));
  EXPECT_EQ(b.Intersect(a), IntervalSet(T(5), T(10)));
}

TEST(IntervalSetTest, IntersectDisjointIsEmpty) {
  IntervalSet a(T(0), T(3));
  IntervalSet b(T(5), T(9));
  EXPECT_TRUE(a.Intersect(b).IsEmpty());
}

TEST(IntervalSetTest, IntersectMultiInterval) {
  IntervalSet a;
  a.Add(T(0), T(4));
  a.Add(T(6), T(10));
  IntervalSet b(T(2), T(8));
  IntervalSet expected;
  expected.Add(T(2), T(4));
  expected.Add(T(6), T(8));
  EXPECT_EQ(a.Intersect(b), expected);
}

TEST(IntervalSetTest, UnionOperation) {
  IntervalSet a(T(0), T(3));
  IntervalSet b(T(5), T(9));
  IntervalSet u = a.Union(b);
  EXPECT_EQ(u.interval_count(), 2u);
  EXPECT_TRUE(u.Contains(T(1)));
  EXPECT_TRUE(u.Contains(T(7)));
}

TEST(IntervalSetTest, ComplementFrom) {
  IntervalSet s;
  s.Add(T(3), T(6));
  s.Add(T(8), kInf);
  IntervalSet c = s.ComplementFrom(T(0));
  EXPECT_TRUE(c.Contains(T(0)));
  EXPECT_TRUE(c.Contains(T(2)));
  EXPECT_FALSE(c.Contains(T(4)));
  EXPECT_TRUE(c.Contains(T(6)));
  EXPECT_TRUE(c.Contains(T(7)));
  EXPECT_FALSE(c.Contains(T(8)));
  EXPECT_FALSE(c.Contains(T(1'000)));
}

TEST(IntervalSetTest, LastValidBefore) {
  IntervalSet s;
  s.Add(T(2), T(5));
  s.Add(T(9), T(12));
  EXPECT_EQ(s.LastValidBefore(T(7)), T(4));   // end of [2,5)
  EXPECT_EQ(s.LastValidBefore(T(10)), T(9));  // inside [9,12)
  EXPECT_EQ(s.LastValidBefore(T(2)), std::nullopt);
  EXPECT_EQ(s.LastValidBefore(T(3)), T(2));
  EXPECT_EQ(s.LastValidBefore(T(100)), T(11));
}

TEST(IntervalSetTest, FirstValidAtOrAfter) {
  IntervalSet s;
  s.Add(T(2), T(5));
  s.Add(T(9), T(12));
  EXPECT_EQ(s.FirstValidAtOrAfter(T(0)), T(2));
  EXPECT_EQ(s.FirstValidAtOrAfter(T(3)), T(3));  // already valid
  EXPECT_EQ(s.FirstValidAtOrAfter(T(6)), T(9));
  EXPECT_EQ(s.FirstValidAtOrAfter(T(12)), std::nullopt);
}

TEST(IntervalSetTest, ValidUntil) {
  IntervalSet s(T(2), T(5));
  EXPECT_EQ(s.ValidUntil(T(3)), T(5));
  EXPECT_EQ(s.ValidUntil(T(5)), std::nullopt);
  EXPECT_EQ(IntervalSet::From(T(0)).ValidUntil(T(7)), kInf);
}

TEST(IntervalSetTest, SubtractThenAddRestores) {
  IntervalSet s = IntervalSet::From(T(0));
  s.Subtract(T(10), T(20));
  s.Add(T(10), T(20));
  EXPECT_EQ(s, IntervalSet::From(T(0)));
}

}  // namespace
}  // namespace expdb
