// Theorem 1 as a property test: for any expression e composed of the
// monotonic operators (1)-(6) and any τ <= τ',
//
//     expτ'(e) = expτ'(expτ(e))
//
// i.e. a materialized monotonic result, expiring in place, is forever
// indistinguishable from recomputation. Swept over random databases and
// random expression shapes.

#include <gtest/gtest.h>

#include "core/eval.h"
#include "testing/workload.h"

namespace expdb {
namespace {

struct Config {
  uint64_t seed;
  size_t num_tuples;
  size_t max_depth;
  int64_t value_domain;
};

class MonotonicPropertyTest : public ::testing::TestWithParam<Config> {};

TEST_P(MonotonicPropertyTest, MaterializedEqualsRecomputation) {
  const Config& cfg = GetParam();
  Rng rng(cfg.seed);

  Database db;
  testing::RelationSpec rspec;
  rspec.num_tuples = cfg.num_tuples;
  rspec.arity = 2;
  rspec.value_domain = cfg.value_domain;
  rspec.ttl_min = 1;
  rspec.ttl_max = 30;
  rspec.infinite_fraction = 0.1;
  ASSERT_TRUE(testing::FillDatabase(&db, rng, rspec, 3).ok());

  testing::ExpressionSpec espec;
  espec.max_depth = cfg.max_depth;
  espec.allow_nonmonotonic = false;

  for (int trial = 0; trial < 8; ++trial) {
    ExpressionPtr e = testing::MakeRandomExpression(rng, db, espec);
    ASSERT_TRUE(e->IsMonotonic());

    const Timestamp tau(rng.UniformInt(0, 5));
    auto materialized = Evaluate(e, db, tau);
    ASSERT_TRUE(materialized.ok()) << materialized.status().ToString()
                                   << "\n" << e->ToString();
    // Monotonic expressions never expire as a whole.
    EXPECT_TRUE(materialized->texp.IsInfinite()) << e->ToString();

    std::vector<Timestamp> taus = testing::InterestingTimes(db);
    taus.push_back(tau);
    taus.push_back(Timestamp(31));
    taus.push_back(Timestamp(100));
    for (Timestamp tp : taus) {
      if (tp < tau) continue;
      auto fresh = Evaluate(e, db, tp);
      ASSERT_TRUE(fresh.ok());
      // Equality of contents *and* expiration times: the expired
      // materialization is byte-for-byte the recomputation.
      EXPECT_TRUE(Relation::EqualAt(materialized->relation, fresh->relation,
                                    tp))
          << "expression: " << e->ToString() << "\nmaterialized at " << tau
          << ", diverges at " << tp;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, MonotonicPropertyTest,
    ::testing::Values(Config{1, 40, 3, 8}, Config{2, 40, 3, 8},
                      Config{3, 80, 4, 5}, Config{4, 80, 4, 5},
                      Config{5, 120, 5, 12}, Config{6, 120, 5, 12},
                      Config{7, 30, 2, 3}, Config{8, 200, 4, 20},
                      Config{9, 60, 5, 4}, Config{10, 100, 3, 6}),
    [](const ::testing::TestParamInfo<Config>& info) {
      return "seed" + std::to_string(info.param.seed) + "_n" +
             std::to_string(info.param.num_tuples) + "_d" +
             std::to_string(info.param.max_depth);
    });

}  // namespace
}  // namespace expdb
