// Semijoin / antijoin (paper Sec. 2.4's derived-operator schema; Sec.
// 3.4.2 names the anti-semijoin as the difference implementation).
// Semantics, derived expiration times, equivalence with their defining
// rewrites, critical analysis, and Theorem 3 patching on antijoin roots.

#include <gtest/gtest.h>

#include "core/eval.h"
#include "testing/workload.h"
#include "view/materialized_view.h"

namespace expdb {
namespace {

using namespace algebra;  // NOLINT

Timestamp T(int64_t t) { return Timestamp(t); }

class SemiAntiJoinTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Orders(cust, amount) and Customers(cust, tier): different schemas,
    // matched on the first column.
    Relation* orders = db_.CreateRelation(
                              "Orders", Schema({{"cust", ValueType::kInt64},
                                                {"amount", ValueType::kInt64}}))
                           .value();
    ASSERT_TRUE(orders->Insert(Tuple{1, 100}, T(20)).ok());
    ASSERT_TRUE(orders->Insert(Tuple{2, 200}, T(12)).ok());
    ASSERT_TRUE(orders->Insert(Tuple{3, 300}, T(25)).ok());
    Relation* cust = db_.CreateRelation(
                            "Customers", Schema({{"cust", ValueType::kInt64},
                                                 {"tier", ValueType::kInt64}}))
                         .value();
    // Customer 1 has two rows with different lifetimes (4 and 9).
    ASSERT_TRUE(cust->Insert(Tuple{1, 7}, T(4)).ok());
    ASSERT_TRUE(cust->Insert(Tuple{1, 8}, T(9)).ok());
    ASSERT_TRUE(cust->Insert(Tuple{2, 7}, T(30)).ok());
    match_ = Predicate::ColumnsEqual(0, 2);
  }

  Database db_;
  Predicate match_;
};

TEST_F(SemiAntiJoinTest, SemiJoinKeepsMatchedLeftTuples) {
  auto e = SemiJoin(Base("Orders"), Base("Customers"), match_);
  auto result = Evaluate(e, db_, T(0)).MoveValue();
  EXPECT_EQ(result.relation.size(), 2u);
  // Order of customer 1: min(texp_order 20, max match texp 9) = 9.
  EXPECT_EQ(result.relation.GetTexp(Tuple{1, 100}), T(9));
  // Order of customer 2: min(12, 30) = 12.
  EXPECT_EQ(result.relation.GetTexp(Tuple{2, 200}), T(12));
  EXPECT_FALSE(result.relation.Contains(Tuple{3, 300}));
  // Monotonic: never invalid.
  EXPECT_TRUE(e->IsMonotonic());
  EXPECT_TRUE(result.texp.IsInfinite());
}

TEST_F(SemiAntiJoinTest, SemiJoinEqualsProjectOfJoin) {
  auto semi = SemiJoin(Base("Orders"), Base("Customers"), match_);
  auto rewrite = Project(Join(Base("Orders"), Base("Customers"), match_),
                         {0, 1});
  for (int64_t t : {0, 3, 5, 9, 12, 20, 31}) {
    auto a = Evaluate(semi, db_, T(t)).MoveValue();
    auto b = Evaluate(rewrite, db_, T(t)).MoveValue();
    EXPECT_TRUE(Relation::EqualAt(a.relation, b.relation, T(t)))
        << "semijoin != π(join) at " << t;
  }
}

TEST_F(SemiAntiJoinTest, AntiJoinSuppressesUntilLastMatchExpires) {
  auto e = AntiJoin(Base("Orders"), Base("Customers"), match_);
  auto result = EvaluateDifferenceRoot(e, db_, T(0)).MoveValue();
  // Only order 3 (no customer row) is in the result now.
  EXPECT_EQ(result.result.relation.size(), 1u);
  EXPECT_EQ(result.result.relation.GetTexp(Tuple{3, 300}), T(25));
  // Order of customer 1 re-appears at 9 (when the longer-lived of the two
  // customer rows expires), not at 4.
  ASSERT_EQ(result.helper.size(), 1u);
  EXPECT_EQ(result.helper[0].tuple, (Tuple{1, 100}));
  EXPECT_EQ(result.helper[0].appears_at, T(9));
  EXPECT_EQ(result.helper[0].expires_at, T(20));
  // Order of customer 2 expires (12) before its match (30): not critical.
  EXPECT_EQ(result.result.texp, T(9));
  EXPECT_FALSE(e->IsMonotonic());
}

TEST_F(SemiAntiJoinTest, AntiJoinMatchesRecomputationEverywhereValid) {
  auto e = AntiJoin(Base("Orders"), Base("Customers"), match_);
  EvalOptions opts;
  opts.compute_validity = true;
  auto at0 = Evaluate(e, db_, T(0), opts).MoveValue();
  for (int64_t t = 0; t <= 32; ++t) {
    auto fresh = Evaluate(e, db_, T(t)).MoveValue();
    const bool equal =
        Relation::ContentsEqualAt(at0.relation, fresh.relation, T(t));
    EXPECT_EQ(equal, at0.validity.Contains(T(t)))
        << "validity wrong at " << t << ": " << at0.validity.ToString();
  }
}

TEST_F(SemiAntiJoinTest, AntiJoinGeneralizesDifference) {
  // With union-compatible inputs and an all-columns-equal predicate, the
  // anti-join IS the difference.
  Database db;
  Relation* r = db.CreateRelation(
                       "R", Schema({{"x", ValueType::kInt64}})).value();
  Relation* s = db.CreateRelation(
                       "S", Schema({{"x", ValueType::kInt64}})).value();
  ASSERT_TRUE(r->Insert(Tuple{1}, T(10)).ok());
  ASSERT_TRUE(r->Insert(Tuple{2}, T(15)).ok());
  ASSERT_TRUE(s->Insert(Tuple{1}, T(5)).ok());
  auto anti = AntiJoin(Base("R"), Base("S"), Predicate::ColumnsEqual(0, 1));
  auto diff = Difference(Base("R"), Base("S"));
  for (int64_t t = 0; t <= 16; ++t) {
    auto a = Evaluate(anti, db, T(t)).MoveValue();
    auto d = Evaluate(diff, db, T(t)).MoveValue();
    EXPECT_TRUE(Relation::EqualAt(a.relation, d.relation, T(t)))
        << "anti-join != difference at " << t;
    EXPECT_EQ(a.texp, d.texp);
  }
}

TEST_F(SemiAntiJoinTest, PatchedAntiJoinViewNeverRecomputes) {
  auto e = AntiJoin(Base("Orders"), Base("Customers"), match_);
  MaterializedView::Options opts;
  opts.mode = RefreshMode::kPatchDifference;
  MaterializedView view(e, opts);
  ASSERT_TRUE(view.Initialize(db_, T(0)).ok());
  EXPECT_TRUE(view.texp().IsInfinite());  // Theorem 3, generalized
  for (int64_t t = 0; t <= 32; ++t) {
    auto rows = view.Read(db_, T(t)).MoveValue();
    auto fresh = Evaluate(e, db_, T(t)).MoveValue();
    EXPECT_TRUE(Relation::EqualAt(rows, fresh.relation, T(t)))
        << "patched anti-join view diverges at " << t;
  }
  EXPECT_EQ(view.stats().recomputations, 0u);
  EXPECT_EQ(view.stats().patches_applied, 1u);
}

TEST_F(SemiAntiJoinTest, NonEqualityPredicatesFallBackToScan) {
  // amount > tier * 20 — no hashable equality at all.
  auto pred = Predicate::Compare(Operand::Column(1), ComparisonOp::kGt,
                                 Operand::Column(3));
  auto semi = SemiJoin(Base("Orders"), Base("Customers"), pred);
  auto rewrite =
      Project(Join(Base("Orders"), Base("Customers"), pred), {0, 1});
  auto a = Evaluate(semi, db_, T(0)).MoveValue();
  auto b = Evaluate(rewrite, db_, T(0)).MoveValue();
  EXPECT_TRUE(Relation::EqualAt(a.relation, b.relation, T(0)));
  EXPECT_GT(a.relation.size(), 0u);
}

TEST_F(SemiAntiJoinTest, SchemaAndValidation) {
  auto semi = SemiJoin(Base("Orders"), Base("Customers"), match_);
  EXPECT_EQ(semi->InferSchema(db_).value().ToString(),
            "(cust:int, amount:int)");
  auto bad = AntiJoin(Base("Orders"), Base("Customers"),
                      Predicate::ColumnsEqual(0, 9));
  EXPECT_EQ(bad->InferSchema(db_).status().code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Evaluate(bad, db_, T(0)).status().code(),
            StatusCode::kOutOfRange);
  EXPECT_EQ(semi->ToString(),
            "(Orders ⋉_{$1 = $3} Customers)");
}

// Randomized: semijoin ≡ π(join) and antijoin criticals are sound across
// random relations.
class SemiAntiPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SemiAntiPropertyTest, SemijoinMatchesRewriteEverywhere) {
  Rng rng(GetParam());
  Database db;
  testing::RelationSpec spec;
  spec.num_tuples = 60;
  spec.arity = 2;
  spec.value_domain = 6;
  spec.ttl_min = 1;
  spec.ttl_max = 20;
  ASSERT_TRUE(testing::FillDatabase(&db, rng, spec, 2).ok());
  Predicate p = Predicate::ColumnsEqual(0, 2);
  auto semi = SemiJoin(Base("R0"), Base("R1"), p);
  auto rewrite = Project(Join(Base("R0"), Base("R1"), p), {0, 1});
  auto anti = AntiJoin(Base("R0"), Base("R1"), p);
  EvalOptions opts;
  opts.compute_validity = true;
  auto anti0 = Evaluate(anti, db, T(0), opts).MoveValue();
  for (int64_t t = 0; t <= 22; ++t) {
    auto a = Evaluate(semi, db, T(t)).MoveValue();
    auto b = Evaluate(rewrite, db, T(t)).MoveValue();
    EXPECT_TRUE(Relation::EqualAt(a.relation, b.relation, T(t)))
        << "seed " << GetParam() << " at " << t;
    // Semijoin + antijoin partition the live left tuples.
    auto left = Evaluate(Base("R0"), db, T(t)).MoveValue();
    auto anti_t = Evaluate(anti, db, T(t)).MoveValue();
    EXPECT_EQ(a.relation.size() + anti_t.relation.size(),
              left.relation.size());
    // Validity soundness for the antijoin materialized at 0.
    if (anti0.validity.Contains(T(t))) {
      EXPECT_TRUE(Relation::ContentsEqualAt(anti0.relation,
                                            anti_t.relation, T(t)))
          << "antijoin validity wrong at " << t;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SemiAntiPropertyTest,
                         ::testing::Range<uint64_t>(800, 810));

}  // namespace
}  // namespace expdb
