// Difference lifetimes: Eq. (10), the Table 2 case analysis, τ_R /
// Eq. (11), the exact validity windows vs. the coarse Eq. (12) window,
// and the Theorem 3 helper entries.

#include "core/difference.h"

#include <gtest/gtest.h>

#include "core/eval.h"
#include "core/expression.h"

namespace expdb {
namespace {

Timestamp T(int64_t t) { return Timestamp(t); }

Relation OneCol(std::vector<std::pair<int64_t, Timestamp>> rows) {
  Relation rel(Schema({{"x", ValueType::kInt64}}));
  for (auto& [v, texp] : rows) {
    EXPECT_TRUE(rel.Insert(Tuple{v}, texp).ok());
  }
  return rel;
}

TEST(DifferenceTest, Table2CaseAnalysis) {
  // Case (1): t ∈ R ∧ t ∉ S — result keeps texp_R; no effect on texp(e).
  // Case (2): t ∉ R ∧ t ∈ S — disregarded.
  // Case (3a): both, texp_R > texp_S — critical; expression dies at texp_S.
  // Case (3b): both, texp_R <= texp_S — no effect.
  Relation r = OneCol({{1, T(10)},    // case 1
                       {3, T(20)},    // case 3a vs S's <3>@8
                       {4, T(5)}});   // case 3b vs S's <4>@9
  Relation s = OneCol({{2, T(7)},     // case 2
                       {3, T(8)},
                       {4, T(9)}});
  DifferenceAnalysis a = AnalyzeDifference(r, s);

  // Result per Eq. (10): only <1> (cases 3a/3b tuples are in S).
  EXPECT_EQ(a.result.size(), 1u);
  EXPECT_EQ(a.result.GetTexp(Tuple{1}), T(10));

  // Criticals: exactly the 3a tuple.
  ASSERT_EQ(a.critical.size(), 1u);
  EXPECT_EQ(a.critical[0].tuple, Tuple{3});
  EXPECT_EQ(a.critical[0].appears_at, T(8));
  EXPECT_EQ(a.critical[0].expires_at, T(20));
  EXPECT_EQ(a.common_count, 2u);  // <3> and <4>

  // τ_R = min texp_S over criticals.
  EXPECT_EQ(a.tau_r, T(8));
  // Exact invalid window: [8, 20).
  EXPECT_EQ(a.invalid_windows, IntervalSet(T(8), T(20)));
}

TEST(DifferenceTest, NoCriticalsMeansForeverValid) {
  Relation r = OneCol({{1, T(10)}, {2, T(5)}});
  Relation s = OneCol({{2, T(9)}});  // 3b only
  DifferenceAnalysis a = AnalyzeDifference(r, s);
  EXPECT_TRUE(a.critical.empty());
  EXPECT_TRUE(a.tau_r.IsInfinite());
  EXPECT_TRUE(a.invalid_windows.IsEmpty());
  EXPECT_TRUE(a.coarse_invalid_window.IsEmpty());
}

TEST(DifferenceTest, CriticalsSortedByAppearance) {
  Relation r = OneCol({{1, T(30)}, {2, T(25)}, {3, T(40)}});
  Relation s = OneCol({{1, T(9)}, {2, T(4)}, {3, T(9)}});
  DifferenceAnalysis a = AnalyzeDifference(r, s);
  ASSERT_EQ(a.critical.size(), 3u);
  EXPECT_EQ(a.critical[0].tuple, Tuple{2});  // appears at 4
  EXPECT_EQ(a.critical[1].tuple, Tuple{1});  // appears at 9, <1> < <3>
  EXPECT_EQ(a.critical[2].tuple, Tuple{3});
  EXPECT_EQ(a.tau_r, T(4));
}

TEST(DifferenceTest, ExactWindowsCanHaveGaps) {
  // Two criticals with disjoint [texp_S, texp_R) windows: the paper's
  // single coarse interval covers the gap, the exact set does not.
  Relation r = OneCol({{1, T(7)}, {2, T(12)}});
  Relation s = OneCol({{1, T(5)}, {2, T(9)}});
  DifferenceAnalysis a = AnalyzeDifference(r, s);
  IntervalSet expected;
  expected.Add(T(5), T(7));
  expected.Add(T(9), T(12));
  EXPECT_EQ(a.invalid_windows, expected);
  // The valid gap [7, 9): <1> has expired from R too, <2> not yet from S.
  EXPECT_FALSE(a.invalid_windows.Contains(T(7)));
  EXPECT_FALSE(a.invalid_windows.Contains(T(8)));
  EXPECT_TRUE(a.invalid_windows.Contains(T(5)));
  EXPECT_TRUE(a.invalid_windows.Contains(T(11)));
  // Coarse window spans everything.
  EXPECT_EQ(a.coarse_invalid_window, IntervalSet(T(5), T(12)));
}

TEST(DifferenceTest, InfiniteCriticalNeverStopsBeingRequired) {
  Relation r = OneCol({{1, Timestamp::Infinity()}});
  Relation s = OneCol({{1, T(5)}});
  DifferenceAnalysis a = AnalyzeDifference(r, s);
  ASSERT_EQ(a.critical.size(), 1u);
  EXPECT_EQ(a.invalid_windows,
            IntervalSet(T(5), Timestamp::Infinity()));
}

// The exact windows are correct: inside every window the materialization
// differs from recomputation; outside, it matches.
TEST(DifferenceTest, WindowsMatchRecomputationExactly) {
  Database db;
  ASSERT_TRUE(db.PutRelation(
                    "R", OneCol({{1, T(7)}, {2, T(12)}, {3, T(4)}}))
                  .ok());
  ASSERT_TRUE(
      db.PutRelation("S", OneCol({{1, T(5)}, {2, T(9)}, {4, T(6)}})).ok());
  auto e = algebra::Difference(algebra::Base("R"), algebra::Base("S"));
  EvalOptions opts;
  opts.compute_validity = true;
  auto at0 = Evaluate(e, db, T(0), opts);
  ASSERT_TRUE(at0.ok());
  for (int64_t tau = 0; tau <= 14; ++tau) {
    auto fresh = Evaluate(e, db, T(tau));
    ASSERT_TRUE(fresh.ok());
    const bool matches =
        Relation::ContentsEqualAt(at0->relation, fresh->relation, T(tau));
    EXPECT_EQ(matches, at0->validity.Contains(T(tau)))
        << "validity claim wrong at tau=" << tau;
  }
}

TEST(DifferenceTest, ExpressionTexpUsesTexpSNotTexpR) {
  // Guard for the Eq. (11) typo documented in difference.h: the
  // expression must die when the tuple *should appear* (texp_S), not when
  // it would later expire (texp_R).
  Database db;
  ASSERT_TRUE(db.PutRelation("R", OneCol({{1, T(20)}})).ok());
  ASSERT_TRUE(db.PutRelation("S", OneCol({{1, T(6)}})).ok());
  auto e = algebra::Difference(algebra::Base("R"), algebra::Base("S"));
  auto result = Evaluate(e, db, T(0));
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->texp, T(6));
}

TEST(DifferenceTest, NestedDifferencePropagatesChildTexp) {
  // texp(e) = min(texp(R), texp(S), τ_R): an invalid child invalidates
  // the whole expression even without root criticals.
  Database db;
  ASSERT_TRUE(db.PutRelation("A", OneCol({{1, T(20)}})).ok());
  ASSERT_TRUE(db.PutRelation("B", OneCol({{1, T(3)}})).ok());
  ASSERT_TRUE(db.PutRelation("C", OneCol({{9, T(50)}})).ok());
  // Inner (A − B) has τ_R = 3; outer difference has no own criticals.
  auto inner = algebra::Difference(algebra::Base("A"), algebra::Base("B"));
  auto outer = algebra::Difference(inner, algebra::Base("C"));
  auto result = Evaluate(outer, db, T(0));
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->texp, T(3));
}

}  // namespace
}  // namespace expdb
