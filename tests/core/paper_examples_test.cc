// The paper's running example, end to end: the relations of Figure 1, the
// monotonic expressions of Figure 2, and the non-monotonic expressions of
// Figure 3 — every displayed state at every displayed time.

#include <gtest/gtest.h>

#include "core/eval.h"
#include "core/expression.h"
#include "relational/database.h"

namespace expdb {
namespace {

using algebra::Aggregate;
using algebra::Base;
using algebra::Difference;
using algebra::Join;
using algebra::Project;

Timestamp T(int64_t t) { return Timestamp(t); }

// Figure 1: the example database at time 0.
class PaperExampleTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Relation* pol =
        db_.CreateRelation("Pol", Schema({{"UID", ValueType::kInt64},
                                          {"Deg", ValueType::kInt64}}))
            .value();
    ASSERT_TRUE(pol->Insert(Tuple{1, 25}, T(10)).ok());
    ASSERT_TRUE(pol->Insert(Tuple{2, 25}, T(15)).ok());
    ASSERT_TRUE(pol->Insert(Tuple{3, 35}, T(10)).ok());

    Relation* el =
        db_.CreateRelation("El", Schema({{"UID", ValueType::kInt64},
                                         {"Deg", ValueType::kInt64}}))
            .value();
    ASSERT_TRUE(el->Insert(Tuple{1, 75}, T(5)).ok());
    ASSERT_TRUE(el->Insert(Tuple{2, 85}, T(3)).ok());
    ASSERT_TRUE(el->Insert(Tuple{4, 90}, T(2)).ok());
  }

  // Evaluates and returns sorted tuples.
  std::vector<Tuple> TuplesAt(const ExpressionPtr& e, int64_t tau) {
    auto result = Evaluate(e, db_, T(tau));
    EXPECT_TRUE(result.ok()) << result.status().ToString();
    std::vector<Tuple> out;
    for (const auto& [tuple, texp] : result->relation.SortedEntries()) {
      out.push_back(tuple);
    }
    return out;
  }

  Database db_;
};

TEST_F(PaperExampleTest, Figure1RelationsAtTime0) {
  const Relation* pol = db_.GetRelation("Pol").value();
  EXPECT_EQ(pol->CountUnexpiredAt(T(0)), 3u);
  EXPECT_EQ(pol->GetTexp(Tuple{1, 25}), T(10));
  EXPECT_EQ(pol->GetTexp(Tuple{2, 25}), T(15));
  EXPECT_EQ(pol->GetTexp(Tuple{3, 35}), T(10));

  const Relation* el = db_.GetRelation("El").value();
  EXPECT_EQ(el->CountUnexpiredAt(T(0)), 3u);
  EXPECT_EQ(el->GetTexp(Tuple{1, 75}), T(5));
  EXPECT_EQ(el->GetTexp(Tuple{2, 85}), T(3));
  EXPECT_EQ(el->GetTexp(Tuple{4, 90}), T(2));
}

// Figure 2(c): πexp_2(Pol) at time 0 = {<25>, <35>}, with <25> inheriting
// the max lifetime 15 of its duplicates (Formula 3).
TEST_F(PaperExampleTest, Figure2cProjectionAtTime0) {
  auto e = Project(Base("Pol"), {1});
  auto result = Evaluate(e, db_, T(0));
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(TuplesAt(e, 0), (std::vector<Tuple>{Tuple{25}, Tuple{35}}));
  EXPECT_EQ(result->relation.GetTexp(Tuple{25}), T(15));
  EXPECT_EQ(result->relation.GetTexp(Tuple{35}), T(10));
  // Monotonic: never needs recomputation.
  EXPECT_TRUE(result->texp.IsInfinite());
}

// Figure 2(d): πexp_2(Pol) at time 10 = {<25>}.
TEST_F(PaperExampleTest, Figure2dProjectionAtTime10) {
  auto e = Project(Base("Pol"), {1});
  EXPECT_EQ(TuplesAt(e, 10), (std::vector<Tuple>{Tuple{25}}));
  // And the materialized-at-0 result, properly expired, looks the same
  // (the paper: "looks exactly as if the query had been computed at τ").
  auto at0 = Evaluate(e, db_, T(0));
  ASSERT_TRUE(at0.ok());
  EXPECT_EQ(at0->relation.CountUnexpiredAt(T(10)), 1u);
  EXPECT_TRUE(at0->relation.ContainsUnexpired(Tuple{25}, T(10)));
}

// Figure 2(e): Pol ⋈exp_{1=3} El at time 0.
TEST_F(PaperExampleTest, Figure2eJoinAtTime0) {
  auto e = Join(Base("Pol"), Base("El"), Predicate::ColumnsEqual(0, 2));
  auto result = Evaluate(e, db_, T(0));
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(TuplesAt(e, 0), (std::vector<Tuple>{Tuple{1, 25, 1, 75},
                                                Tuple{2, 25, 2, 85}}));
  // Lifetimes: min of the participating tuples (Eq. 2 via Eq. 5).
  EXPECT_EQ(result->relation.GetTexp(Tuple{1, 25, 1, 75}), T(5));
  EXPECT_EQ(result->relation.GetTexp(Tuple{2, 25, 2, 85}), T(3));
}

// Figure 2(f): the join at time 3 = {<1, 25, 1, 75>}.
TEST_F(PaperExampleTest, Figure2fJoinAtTime3) {
  auto e = Join(Base("Pol"), Base("El"), Predicate::ColumnsEqual(0, 2));
  EXPECT_EQ(TuplesAt(e, 3), (std::vector<Tuple>{Tuple{1, 25, 1, 75}}));
}

// Figure 2(g): the join at time 5 is empty.
TEST_F(PaperExampleTest, Figure2gJoinAtTime5) {
  auto e = Join(Base("Pol"), Base("El"), Predicate::ColumnsEqual(0, 2));
  EXPECT_TRUE(TuplesAt(e, 5).empty());
}

// Theorem 1 on the join: expiring the materialized-at-0 result in place
// coincides with recomputation at 3 and at 5.
TEST_F(PaperExampleTest, Figure2JoinExpiryMatchesRecomputation) {
  auto e = Join(Base("Pol"), Base("El"), Predicate::ColumnsEqual(0, 2));
  auto at0 = Evaluate(e, db_, T(0));
  ASSERT_TRUE(at0.ok());
  for (int64_t tau : {0, 1, 2, 3, 4, 5, 10, 15}) {
    auto fresh = Evaluate(e, db_, T(tau));
    ASSERT_TRUE(fresh.ok());
    EXPECT_TRUE(
        Relation::EqualAt(at0->relation, fresh->relation, T(tau)))
        << "mismatch at tau=" << tau;
  }
}

// Figure 3(a): πexp_{2,3}(aggexp_{{2},count}(Pol)) at time 0 is the
// histogram {<25, 2>, <35, 1>}, and the expression is invalid from time 10
// (a correct result would need <25, 1>, which was never materialized).
TEST_F(PaperExampleTest, Figure3aHistogram) {
  auto e = Project(
      Aggregate(Base("Pol"), {1}, AggregateFunction::Count()), {1, 2});
  auto result = Evaluate(e, db_, T(0));
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(TuplesAt(e, 0),
            (std::vector<Tuple>{Tuple{25, 2}, Tuple{35, 1}}));
  // <25, 2> expires at 10 (count's expiration strictly follows Eq. 8).
  EXPECT_EQ(result->relation.GetTexp(Tuple{25, 2}), T(10));
  EXPECT_EQ(result->relation.GetTexp(Tuple{35, 1}), T(10));
  // The materialized expression becomes invalid at 10: the partition of
  // degree 25 changes its count from 2 to 1 while still alive.
  EXPECT_EQ(result->texp, T(10));
  // Recomputation at 10 yields <25, 1>, which the materialization lacks.
  auto at10 = Evaluate(e, db_, T(10));
  ASSERT_TRUE(at10.ok());
  EXPECT_EQ(TuplesAt(e, 10), (std::vector<Tuple>{Tuple{25, 1}}));
  EXPECT_FALSE(
      Relation::ContentsEqualAt(result->relation, at10->relation, T(10)));
}

// Figures 3(b)–(d): πexp_1(Pol) −exp πexp_1(El) at times 0, 3, 5 — the
// result *grows* as tuples expire from El, so the materialization at 0 is
// invalid from time 3 onwards.
TEST_F(PaperExampleTest, Figure3bcdDifference) {
  auto e = Difference(Project(Base("Pol"), {0}), Project(Base("El"), {0}));
  EXPECT_EQ(TuplesAt(e, 0), (std::vector<Tuple>{Tuple{3}}));   // 3(b)
  EXPECT_EQ(TuplesAt(e, 3),
            (std::vector<Tuple>{Tuple{2}, Tuple{3}}));          // 3(c)
  EXPECT_EQ(TuplesAt(e, 5),
            (std::vector<Tuple>{Tuple{1}, Tuple{2}, Tuple{3}}));  // 3(d)

  auto at0 = Evaluate(e, db_, T(0));
  ASSERT_TRUE(at0.ok());
  // texp(e) = 3: tuple <2> must re-appear when it expires from El at 3.
  EXPECT_EQ(at0->texp, T(3));
}

// Sec. 2.7: operations on relations all of whose tuples share one
// expiration time always yield expressions with infinite expiration time.
TEST_F(PaperExampleTest, UniformTexpDifferenceNeverInvalid) {
  Relation* r = db_.CreateRelation(
                       "R", Schema({{"x", ValueType::kInt64}})).value();
  Relation* s = db_.CreateRelation(
                       "S", Schema({{"x", ValueType::kInt64}})).value();
  for (int i = 0; i < 4; ++i) ASSERT_TRUE(r->Insert(Tuple{i}, T(7)).ok());
  for (int i = 2; i < 6; ++i) ASSERT_TRUE(s->Insert(Tuple{i}, T(7)).ok());
  auto result = Evaluate(Difference(Base("R"), Base("S")), db_, T(0));
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->texp.IsInfinite());
}

// Sec. 2.7: operations on empty relations yield infinite expiration.
TEST_F(PaperExampleTest, EmptyRelationsNeverInvalid) {
  (void)db_.CreateRelation("E1", Schema({{"x", ValueType::kInt64}}));
  (void)db_.CreateRelation("E2", Schema({{"x", ValueType::kInt64}}));
  auto diff = Evaluate(Difference(Base("E1"), Base("E2")), db_, T(0));
  ASSERT_TRUE(diff.ok());
  EXPECT_TRUE(diff->texp.IsInfinite());
  auto agg = Evaluate(
      Aggregate(Base("E1"), {}, AggregateFunction::Count()), db_, T(0));
  ASSERT_TRUE(agg.ok());
  EXPECT_TRUE(agg->texp.IsInfinite());
  EXPECT_TRUE(agg->relation.empty());
}

}  // namespace
}  // namespace expdb
