// Hand-crafted validity-interval compositions (Sec. 3.4 beyond the
// root-operator cases): monotonic operators over invalid-window children,
// intersections of windows from two non-monotonic subtrees, and the
// "valid again when everything expired" tail.

#include <gtest/gtest.h>

#include "core/eval.h"
#include "core/expression.h"

namespace expdb {
namespace {

using namespace algebra;  // NOLINT

Timestamp T(int64_t t) { return Timestamp(t); }

class ValidityCompositionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    opts_.compute_validity = true;
    // A difference with one critical: window [4, 9).
    Relation* r = db_.CreateRelation(
                         "R", Schema({{"x", ValueType::kInt64}})).value();
    Relation* s = db_.CreateRelation(
                         "S", Schema({{"x", ValueType::kInt64}})).value();
    ASSERT_TRUE(r->Insert(Tuple{1}, T(9)).ok());
    ASSERT_TRUE(s->Insert(Tuple{1}, T(4)).ok());
    ASSERT_TRUE(r->Insert(Tuple{2}, T(30)).ok());
    // A second difference with window [6, 12).
    Relation* u = db_.CreateRelation(
                         "U", Schema({{"x", ValueType::kInt64}})).value();
    Relation* v = db_.CreateRelation(
                         "V", Schema({{"x", ValueType::kInt64}})).value();
    ASSERT_TRUE(u->Insert(Tuple{5}, T(12)).ok());
    ASSERT_TRUE(v->Insert(Tuple{5}, T(6)).ok());
    ASSERT_TRUE(u->Insert(Tuple{6}, T(30)).ok());
  }

  MaterializedResult Eval(const ExpressionPtr& e) {
    auto r = Evaluate(e, db_, T(0), opts_);
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    return r.MoveValue();
  }

  Database db_;
  EvalOptions opts_;
};

TEST_F(ValidityCompositionTest, MonotonicWrapperInheritsWindows) {
  auto diff = Difference(Base("R"), Base("S"));
  auto wrapped = Project(
      Select(diff, Predicate::Compare(Operand::Column(0),
                                      ComparisonOp::kGe,
                                      Operand::Constant(Value(0)))),
      {0});
  auto plain = Eval(diff);
  auto composed = Eval(wrapped);
  EXPECT_EQ(plain.validity, composed.validity);
  IntervalSet expected = IntervalSet::From(T(0));
  expected.Subtract(T(4), T(9));
  EXPECT_EQ(composed.validity, expected);
}

TEST_F(ValidityCompositionTest, UnionIntersectsChildWindows) {
  auto d1 = Difference(Base("R"), Base("S"));  // window [4, 9)
  auto d2 = Difference(Base("U"), Base("V"));  // window [6, 12)
  auto both = Union(d1, d2);
  auto result = Eval(both);
  IntervalSet expected = IntervalSet::From(T(0));
  expected.Subtract(T(4), T(9));
  expected.Subtract(T(6), T(12));
  EXPECT_EQ(result.validity, expected);
  // texp(e) is the earlier of the two invalidations.
  EXPECT_EQ(result.texp, T(4));
  // The validity set is sound: wherever it claims validity, contents
  // match recomputation.
  for (int64_t t = 0; t <= 32; ++t) {
    if (!result.validity.Contains(T(t))) continue;
    auto fresh = Evaluate(both, db_, T(t), opts_).MoveValue();
    EXPECT_TRUE(
        Relation::ContentsEqualAt(result.relation, fresh.relation, T(t)))
        << "claimed valid but differs at " << t;
  }
}

TEST_F(ValidityCompositionTest, DifferenceOfDifferences) {
  // Nested non-monotonic operators: the outer difference intersects its
  // own windows with its children's.
  auto inner = Difference(Base("R"), Base("S"));
  auto outer = Difference(inner, Base("V"));
  auto result = Eval(outer);
  // Sound everywhere claimed.
  for (int64_t t = 0; t <= 32; ++t) {
    if (!result.validity.Contains(T(t))) continue;
    auto fresh = Evaluate(outer, db_, T(t), opts_).MoveValue();
    EXPECT_TRUE(
        Relation::ContentsEqualAt(result.relation, fresh.relation, T(t)));
  }
  // Invalid inside the inner window for sure.
  EXPECT_FALSE(result.validity.Contains(T(5)));
}

TEST_F(ValidityCompositionTest, ValidAgainAfterEverythingExpired) {
  // The paper's "extreme case": once all finite tuples have expired,
  // every materialization is trivially valid. <2>@30 and <6>@30 are the
  // last to go.
  auto both = Union(Difference(Base("R"), Base("S")),
                    Difference(Base("U"), Base("V")));
  auto result = Eval(both);
  EXPECT_TRUE(result.validity.Contains(T(12)));
  EXPECT_TRUE(result.validity.Contains(T(1000)));
  ASSERT_FALSE(result.validity.IsEmpty());
  EXPECT_TRUE(result.validity.intervals().back().end.IsInfinite());
}

TEST_F(ValidityCompositionTest, AggregateOverDifference) {
  // count over the R−S difference: the aggregate adds its own windows on
  // top of the child's.
  auto agg = Aggregate(Difference(Base("R"), Base("S")), {},
                       AggregateFunction::Count());
  EvalOptions exact = opts_;
  exact.aggregate_mode = AggregateExpirationMode::kExact;
  auto result = Evaluate(agg, db_, T(0), exact).MoveValue();
  for (int64_t t = 0; t <= 32; ++t) {
    if (!result.validity.Contains(T(t))) continue;
    auto fresh = Evaluate(agg, db_, T(t), exact).MoveValue();
    EXPECT_TRUE(
        Relation::ContentsEqualAt(result.relation, fresh.relation, T(t)))
        << "claimed valid but differs at " << t;
  }
  // The child's window [4,9) must be excluded.
  EXPECT_FALSE(result.validity.Contains(T(5)));
}

TEST_F(ValidityCompositionTest, ValidityAlwaysCoversTexpWindow) {
  for (const auto& e :
       {Difference(Base("R"), Base("S")),
        Union(Difference(Base("R"), Base("S")),
              Difference(Base("U"), Base("V"))),
        Aggregate(Base("R"), {}, AggregateFunction::Count())}) {
    auto result = Eval(e);
    for (Timestamp t = T(0); t < Timestamp::Min(result.texp, T(40));
         t = t.Next()) {
      EXPECT_TRUE(result.validity.Contains(t))
          << e->ToString() << ": validity misses " << t << " < texp "
          << result.texp;
    }
  }
}

}  // namespace
}  // namespace expdb
