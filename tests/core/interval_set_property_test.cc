// Model-based property test for IntervalSet: every operation is checked
// against a brute-force model (the explicit set of contained ticks on a
// bounded axis), over randomized operation sequences.

#include <gtest/gtest.h>

#include <set>

#include "common/rng.h"
#include "core/interval_set.h"

namespace expdb {
namespace {

constexpr int64_t kAxis = 64;  // model covers ticks [0, kAxis]

std::set<int64_t> ModelOf(const IntervalSet& s) {
  std::set<int64_t> out;
  for (int64_t t = 0; t <= kAxis; ++t) {
    if (s.Contains(Timestamp(t))) out.insert(t);
  }
  return out;
}

void ExpectMatchesModel(const IntervalSet& s, const std::set<int64_t>& model,
                        const std::string& context) {
  EXPECT_EQ(ModelOf(s), model) << context << " — set is " << s.ToString();
}

class IntervalSetPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(IntervalSetPropertyTest, AddSubtractAgainstModel) {
  Rng rng(GetParam());
  IntervalSet s;
  std::set<int64_t> model;
  for (int step = 0; step < 200; ++step) {
    int64_t a = rng.UniformInt(0, kAxis);
    int64_t b = rng.UniformInt(0, kAxis);
    if (a > b) std::swap(a, b);
    const bool add = rng.Bernoulli(0.5);
    if (add) {
      s.Add(Timestamp(a), Timestamp(b));
      for (int64_t t = a; t < b; ++t) model.insert(t);
    } else {
      s.Subtract(Timestamp(a), Timestamp(b));
      for (int64_t t = a; t < b; ++t) model.erase(t);
    }
    ExpectMatchesModel(s, model,
                       (add ? "after Add[" : "after Subtract[") +
                           std::to_string(a) + "," + std::to_string(b) +
                           ") at step " + std::to_string(step));
    // Structural invariants: sorted, disjoint, non-empty, gap-separated.
    const auto& ivs = s.intervals();
    for (size_t i = 0; i < ivs.size(); ++i) {
      EXPECT_LT(ivs[i].start, ivs[i].end);
      if (i > 0) {
        EXPECT_LT(ivs[i - 1].end, ivs[i].start);
      }
    }
  }
}

TEST_P(IntervalSetPropertyTest, SetAlgebraAgainstModel) {
  Rng rng(GetParam() + 1000);
  auto random_set = [&](int pieces) {
    IntervalSet s;
    for (int i = 0; i < pieces; ++i) {
      int64_t a = rng.UniformInt(0, kAxis);
      int64_t b = rng.UniformInt(0, kAxis);
      if (a > b) std::swap(a, b);
      s.Add(Timestamp(a), Timestamp(b));
    }
    return s;
  };
  for (int trial = 0; trial < 40; ++trial) {
    IntervalSet x = random_set(4);
    IntervalSet y = random_set(4);
    std::set<int64_t> mx = ModelOf(x), my = ModelOf(y);

    std::set<int64_t> mu, mi;
    std::set_union(mx.begin(), mx.end(), my.begin(), my.end(),
                   std::inserter(mu, mu.begin()));
    std::set_intersection(mx.begin(), mx.end(), my.begin(), my.end(),
                          std::inserter(mi, mi.begin()));
    ExpectMatchesModel(x.Union(y), mu, "union");
    ExpectMatchesModel(x.Intersect(y), mi, "intersect");

    // Complement within [0, ∞): on the bounded axis, the complement's
    // model is everything not in x (the tail past kAxis is unbounded and
    // not modeled).
    std::set<int64_t> mc;
    for (int64_t t = 0; t <= kAxis; ++t) {
      if (mx.count(t) == 0) mc.insert(t);
    }
    ExpectMatchesModel(x.ComplementFrom(Timestamp::Zero()), mc,
                       "complement");
    // Involution: complementing twice within [0, ∞) restores x ∩ [0, ∞).
    IntervalSet cc =
        x.ComplementFrom(Timestamp::Zero()).ComplementFrom(Timestamp::Zero());
    ExpectMatchesModel(cc, mx, "double complement");
  }
}

TEST_P(IntervalSetPropertyTest, NavigationAgainstModel) {
  Rng rng(GetParam() + 2000);
  for (int trial = 0; trial < 40; ++trial) {
    IntervalSet s;
    for (int i = 0; i < 3; ++i) {
      int64_t a = rng.UniformInt(0, kAxis);
      int64_t b = rng.UniformInt(0, kAxis);
      if (a > b) std::swap(a, b);
      s.Add(Timestamp(a), Timestamp(b));
    }
    std::set<int64_t> model = ModelOf(s);
    for (int64_t t = 0; t <= kAxis; ++t) {
      // LastValidBefore: the largest modeled tick < t.
      auto it = model.lower_bound(t);
      std::optional<Timestamp> expected_back;
      if (it != model.begin()) expected_back = Timestamp(*std::prev(it));
      EXPECT_EQ(s.LastValidBefore(Timestamp(t)), expected_back)
          << "LastValidBefore(" << t << ") on " << s.ToString();
      // FirstValidAtOrAfter: the smallest modeled tick >= t.
      auto ge = model.lower_bound(t);
      std::optional<Timestamp> expected_fwd;
      if (ge != model.end()) expected_fwd = Timestamp(*ge);
      EXPECT_EQ(s.FirstValidAtOrAfter(Timestamp(t)), expected_fwd)
          << "FirstValidAtOrAfter(" << t << ") on " << s.ToString();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, IntervalSetPropertyTest,
                         ::testing::Range<uint64_t>(600, 608));

}  // namespace
}  // namespace expdb
