// Theorem 2 as a property test: for any expression e of operators
// (1)-(10) materialized at τ with expression expiration texp(e), and any
// τ <= τ' < texp(e),
//
//     expτ'(e) = expτ'(expτ(e))
//
// — the materialization is exact until the engine says it is not. Swept
// over random databases, expression shapes, and all three aggregate
// expiration modes.

#include <gtest/gtest.h>

#include "core/eval.h"
#include "testing/workload.h"

namespace expdb {
namespace {

struct Config {
  uint64_t seed;
  size_t num_tuples;
  size_t max_depth;
  int64_t value_domain;
  AggregateExpirationMode mode;
};

class TexpPropertyTest : public ::testing::TestWithParam<Config> {};

TEST_P(TexpPropertyTest, ValidUntilTexp) {
  const Config& cfg = GetParam();
  Rng rng(cfg.seed);

  Database db;
  testing::RelationSpec rspec;
  rspec.num_tuples = cfg.num_tuples;
  rspec.arity = 2;
  rspec.value_domain = cfg.value_domain;
  rspec.ttl_min = 1;
  rspec.ttl_max = 25;
  rspec.infinite_fraction = 0.05;
  ASSERT_TRUE(testing::FillDatabase(&db, rng, rspec, 3).ok());

  testing::ExpressionSpec espec;
  espec.max_depth = cfg.max_depth;
  espec.allow_nonmonotonic = true;

  EvalOptions opts;
  opts.aggregate_mode = cfg.mode;

  for (int trial = 0; trial < 10; ++trial) {
    ExpressionPtr e = testing::MakeRandomExpression(rng, db, espec);
    const Timestamp tau(rng.UniformInt(0, 3));
    auto materialized = Evaluate(e, db, tau, opts);
    ASSERT_TRUE(materialized.ok()) << materialized.status().ToString()
                                   << "\n" << e->ToString();

    // Check every instant from τ up to (excluding) texp(e), capped for
    // infinite texp at a horizon past all finite expirations.
    const Timestamp horizon =
        materialized->texp.IsInfinite() ? Timestamp(30) : materialized->texp;
    for (Timestamp tp = tau; tp < horizon; tp = tp.Next()) {
      auto fresh = Evaluate(e, db, tp, opts);
      ASSERT_TRUE(fresh.ok());
      EXPECT_TRUE(Relation::ContentsEqualAt(materialized->relation,
                                            fresh->relation, tp))
          << "expression: " << e->ToString() << "\nmode: "
          << AggregateExpirationModeToString(cfg.mode)
          << "\nmaterialized at " << tau << " with texp(e) = "
          << materialized->texp << ", contents diverge at " << tp;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, TexpPropertyTest,
    ::testing::Values(
        Config{11, 40, 3, 6, AggregateExpirationMode::kConservative},
        Config{12, 40, 3, 6, AggregateExpirationMode::kContributingSet},
        Config{13, 40, 3, 6, AggregateExpirationMode::kExact},
        Config{14, 80, 4, 4, AggregateExpirationMode::kConservative},
        Config{15, 80, 4, 4, AggregateExpirationMode::kContributingSet},
        Config{16, 80, 4, 4, AggregateExpirationMode::kExact},
        Config{17, 25, 5, 3, AggregateExpirationMode::kContributingSet},
        Config{18, 25, 5, 3, AggregateExpirationMode::kExact},
        Config{19, 150, 3, 10, AggregateExpirationMode::kContributingSet},
        Config{20, 150, 3, 10, AggregateExpirationMode::kConservative},
        Config{21, 60, 4, 5, AggregateExpirationMode::kExact},
        Config{22, 60, 4, 5, AggregateExpirationMode::kContributingSet}),
    [](const ::testing::TestParamInfo<Config>& info) {
      return "seed" + std::to_string(info.param.seed) + "_" +
             std::string(AggregateExpirationModeToString(info.param.mode)
                             .substr(0, 4)) +
             "_n" + std::to_string(info.param.num_tuples);
    });

}  // namespace
}  // namespace expdb
