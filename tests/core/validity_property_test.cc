// Schrödinger validity intervals (Sec. 3.4) as properties:
//
//  1. Soundness (all expressions): whenever the validity set contains τ',
//     the expired materialization equals recomputation at τ'.
//  2. Exactness (root-level difference/aggregate over monotonic inputs):
//     the validity set contains τ' *iff* the materialization is correct —
//     including the "valid again" tail after all critical tuples or whole
//     partitions have expired, which a single expiration time cannot
//     express.
//  3. The validity set always covers [τ, texp(e)).

#include <gtest/gtest.h>

#include "core/eval.h"
#include "testing/workload.h"

namespace expdb {
namespace {

class ValiditySoundnessTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ValiditySoundnessTest, ValidImpliesCorrect) {
  Rng rng(GetParam());
  Database db;
  testing::RelationSpec rspec;
  rspec.num_tuples = 60;
  rspec.arity = 2;
  rspec.value_domain = 5;
  rspec.ttl_min = 1;
  rspec.ttl_max = 20;
  ASSERT_TRUE(testing::FillDatabase(&db, rng, rspec, 3).ok());

  testing::ExpressionSpec espec;
  espec.max_depth = 4;
  espec.allow_nonmonotonic = true;

  EvalOptions opts;
  opts.compute_validity = true;

  for (int trial = 0; trial < 8; ++trial) {
    ExpressionPtr e = testing::MakeRandomExpression(rng, db, espec);
    auto materialized = Evaluate(e, db, Timestamp::Zero(), opts);
    ASSERT_TRUE(materialized.ok());

    // Invariant 3: [τ, texp(e)) ⊆ validity.
    const Timestamp probe_end = materialized->texp.IsInfinite()
                                    ? Timestamp(25)
                                    : materialized->texp;
    for (Timestamp t = Timestamp::Zero(); t < probe_end; t = t.Next()) {
      EXPECT_TRUE(materialized->validity.Contains(t))
          << e->ToString() << " validity " << materialized->validity.ToString()
          << " misses " << t << " < texp " << materialized->texp;
    }

    // Invariant 1: valid => equal to recomputation.
    for (int64_t tau = 0; tau <= 25; ++tau) {
      const Timestamp t(tau);
      if (!materialized->validity.Contains(t)) continue;
      auto fresh = Evaluate(e, db, t, opts);
      ASSERT_TRUE(fresh.ok());
      EXPECT_TRUE(Relation::ContentsEqualAt(materialized->relation,
                                            fresh->relation, t))
          << "expression: " << e->ToString() << "\nvalidity "
          << materialized->validity.ToString() << " claims " << t
          << " but contents diverge";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ValiditySoundnessTest,
                         ::testing::Range<uint64_t>(100, 110));

class ValidityExactnessTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ValidityExactnessTest, RootDifferenceExact) {
  Rng rng(GetParam());
  Database db;
  testing::RelationSpec rspec;
  rspec.num_tuples = 50;
  rspec.arity = 1;
  rspec.value_domain = 12;  // heavy overlap between R0 and R1
  rspec.ttl_min = 1;
  rspec.ttl_max = 15;
  ASSERT_TRUE(testing::FillDatabase(&db, rng, rspec, 2).ok());

  auto e = algebra::Difference(algebra::Base("R0"), algebra::Base("R1"));
  EvalOptions opts;
  opts.compute_validity = true;
  auto materialized = Evaluate(e, db, Timestamp::Zero(), opts);
  ASSERT_TRUE(materialized.ok());

  for (int64_t tau = 0; tau <= 18; ++tau) {
    const Timestamp t(tau);
    auto fresh = Evaluate(e, db, t);
    ASSERT_TRUE(fresh.ok());
    const bool correct = Relation::ContentsEqualAt(materialized->relation,
                                                   fresh->relation, t);
    EXPECT_EQ(correct, materialized->validity.Contains(t))
        << "at " << t << ", validity " << materialized->validity.ToString();
  }
  // The "valid again in the far future" property: after every finite
  // expiration the result is trivially correct (both sides empty or
  // infinite-only), so the last validity interval must be unbounded.
  ASSERT_FALSE(materialized->validity.IsEmpty());
  EXPECT_TRUE(
      materialized->validity.intervals().back().end.IsInfinite());
}

TEST_P(ValidityExactnessTest, RootAggregateExact) {
  Rng rng(GetParam() + 5000);
  Database db;
  testing::RelationSpec rspec;
  rspec.num_tuples = 40;
  rspec.arity = 2;
  rspec.value_domain = 4;  // few groups, several slices per group
  rspec.ttl_min = 1;
  rspec.ttl_max = 12;
  ASSERT_TRUE(testing::FillDatabase(&db, rng, rspec, 1).ok());

  for (auto f : {AggregateFunction::Count(), AggregateFunction::Min(1),
                 AggregateFunction::Sum(1), AggregateFunction::Avg(1)}) {
    auto e = algebra::Aggregate(algebra::Base("R0"), {0}, f);
    EvalOptions opts;
    opts.compute_validity = true;
    opts.aggregate_mode = AggregateExpirationMode::kExact;
    auto materialized = Evaluate(e, db, Timestamp::Zero(), opts);
    ASSERT_TRUE(materialized.ok());

    for (int64_t tau = 0; tau <= 14; ++tau) {
      const Timestamp t(tau);
      auto fresh = Evaluate(e, db, t, opts);
      ASSERT_TRUE(fresh.ok());
      const bool correct = Relation::ContentsEqualAt(
          materialized->relation, fresh->relation, t);
      EXPECT_EQ(correct, materialized->validity.Contains(t))
          << f.ToString() << " at " << t << ", validity "
          << materialized->validity.ToString();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ValidityExactnessTest,
                         ::testing::Range<uint64_t>(200, 210));

}  // namespace
}  // namespace expdb
