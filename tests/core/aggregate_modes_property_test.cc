// Properties of the three aggregate expiration modes (Sec. 2.6.1):
//
//  * ordering: conservative cap <= contributing-set cap, and both are <=
//    partition death;
//  * agreement: for the five standard SQL aggregates, the Table 1
//    contributing-set analysis and the Eq. (9) exact replay coincide —
//    Table 1 is precisely the closed form of ν for these functions;
//  * every mode's cap is a sound expiration: the aggregate value over the
//    live part of the partition equals the materialized value at every
//    instant before the cap.

#include <gtest/gtest.h>

#include "core/aggregate.h"
#include "common/rng.h"

namespace expdb {
namespace {

struct Config {
  uint64_t seed;
  size_t partition_size;
  int64_t value_domain;
  int64_t ttl_domain;
  bool with_negatives;
};

class AggregateModesTest : public ::testing::TestWithParam<Config> {
 protected:
  struct Partition {
    std::vector<std::unique_ptr<Tuple>> storage;
    std::vector<PartitionEntry> entries;
  };

  Partition MakePartition(Rng& rng, const Config& cfg) {
    Partition p;
    for (size_t i = 0; i < cfg.partition_size; ++i) {
      int64_t v = rng.UniformInt(cfg.with_negatives ? -cfg.value_domain : 0,
                                 cfg.value_domain);
      p.storage.push_back(std::make_unique<Tuple>(Tuple{v}));
      p.entries.push_back(
          {p.storage.back().get(),
           Timestamp(rng.UniformInt(1, cfg.ttl_domain))});
    }
    return p;
  }

  static std::vector<AggregateFunction> AllFunctions() {
    return {AggregateFunction::Min(0), AggregateFunction::Max(0),
            AggregateFunction::Sum(0), AggregateFunction::Count(),
            AggregateFunction::Avg(0)};
  }
};

TEST_P(AggregateModesTest, CapOrderingAndAgreement) {
  const Config& cfg = GetParam();
  Rng rng(cfg.seed);
  for (int trial = 0; trial < 50; ++trial) {
    Partition p = MakePartition(rng, cfg);
    for (const AggregateFunction& f : AllFunctions()) {
      auto cons = AnalyzePartition(p.entries, f,
                                   AggregateExpirationMode::kConservative)
                      .value();
      auto contrib = AnalyzePartition(
                         p.entries, f,
                         AggregateExpirationMode::kContributingSet)
                         .value();
      auto exact =
          AnalyzePartition(p.entries, f, AggregateExpirationMode::kExact)
              .value();

      // Same value and death in every mode.
      EXPECT_EQ(cons.value, exact.value) << f.ToString();
      EXPECT_EQ(cons.death, exact.death);

      // Ordering: Eq. (8) is the most pessimistic.
      EXPECT_LE(cons.change_cap, contrib.change_cap) << f.ToString();
      EXPECT_LE(contrib.change_cap, contrib.death);

      // Agreement: Table 1 == Eq. (9) for the standard aggregates.
      EXPECT_EQ(contrib.change_cap, exact.change_cap)
          << f.ToString() << " partition of " << p.entries.size();
      EXPECT_EQ(contrib.invalidates_expression,
                exact.invalidates_expression)
          << f.ToString();
    }
  }
}

TEST_P(AggregateModesTest, CapIsSound) {
  // Replay ground truth: at every instant t < cap (and t < death), the
  // aggregate over the unexpired part must still equal the materialized
  // value.
  const Config& cfg = GetParam();
  Rng rng(cfg.seed + 999);
  for (int trial = 0; trial < 25; ++trial) {
    Partition p = MakePartition(rng, cfg);
    for (const AggregateFunction& f : AllFunctions()) {
      for (auto mode : {AggregateExpirationMode::kConservative,
                        AggregateExpirationMode::kContributingSet,
                        AggregateExpirationMode::kExact}) {
        auto analysis = AnalyzePartition(p.entries, f, mode).value();
        for (int64_t t = 0; Timestamp(t) < analysis.change_cap &&
                            t <= cfg.ttl_domain + 1;
             ++t) {
          std::vector<PartitionEntry> live;
          for (const PartitionEntry& e : p.entries) {
            if (e.texp > Timestamp(t)) live.push_back(e);
          }
          if (live.empty()) break;
          auto value = ApplyAggregate(f, live).value();
          EXPECT_EQ(value, analysis.value)
              << f.ToString() << " under "
              << AggregateExpirationModeToString(mode)
              << ": value drifted at t=" << t << " before cap "
              << analysis.change_cap;
        }
      }
    }
  }
}

TEST_P(AggregateModesTest, ExactCapIsTight) {
  // Immediately at the exact cap, if the partition is still alive, the
  // value must actually have changed (ν is not merely a bound).
  const Config& cfg = GetParam();
  Rng rng(cfg.seed + 4242);
  for (int trial = 0; trial < 25; ++trial) {
    Partition p = MakePartition(rng, cfg);
    for (const AggregateFunction& f : AllFunctions()) {
      auto exact =
          AnalyzePartition(p.entries, f, AggregateExpirationMode::kExact)
              .value();
      if (!exact.invalidates_expression) continue;
      std::vector<PartitionEntry> live;
      for (const PartitionEntry& e : p.entries) {
        if (e.texp > exact.change_cap) live.push_back(e);
      }
      ASSERT_FALSE(live.empty());
      EXPECT_NE(ApplyAggregate(f, live).value(), exact.value)
          << f.ToString() << ": claimed change at " << exact.change_cap
          << " did not happen";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, AggregateModesTest,
    ::testing::Values(Config{31, 5, 4, 8, false},
                      Config{32, 10, 3, 6, true},
                      Config{33, 20, 2, 5, true},   // heavy collisions
                      Config{34, 50, 10, 20, false},
                      Config{35, 8, 1, 3, true},    // tiny domains
                      Config{36, 100, 5, 10, true},
                      Config{37, 3, 2, 2, false},
                      Config{38, 40, 0, 7, false}), // all-equal values
    [](const ::testing::TestParamInfo<Config>& info) {
      return "seed" + std::to_string(info.param.seed) + "_p" +
             std::to_string(info.param.partition_size);
    });

}  // namespace
}  // namespace expdb
