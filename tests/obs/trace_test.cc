// Unit tests for the trace layer: span recording, parent/child linking
// via the thread-local span stack, ring-buffer overwrite, and histogram
// feeding.

#include "obs/trace.h"

#include <thread>

#include "gtest/gtest.h"

namespace expdb {
namespace obs {
namespace {

TEST(TraceRecorderTest, DisabledRecorderRecordsNothing) {
  TraceRecorder rec(16);
  ASSERT_FALSE(rec.enabled());
  { ScopedSpan span("test.noop", nullptr, &rec); }
  EXPECT_EQ(rec.Snapshot().size(), 0u);
  EXPECT_EQ(rec.total_recorded(), 0u);
}

TEST(TraceRecorderTest, RecordsCompletedSpans) {
  TraceRecorder rec(16);
  rec.set_enabled(true);
  { ScopedSpan span("test.a", nullptr, &rec); }
  { ScopedSpan span("test.b", nullptr, &rec); }
  auto spans = rec.Snapshot();
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_EQ(spans[0].name, "test.a");
  EXPECT_EQ(spans[1].name, "test.b");
  EXPECT_NE(spans[0].id, spans[1].id);
  EXPECT_EQ(spans[0].parent_id, 0u);
  EXPECT_GE(spans[0].duration_ns, 0);
}

TEST(TraceRecorderTest, NestedSpansLinkParentChild) {
  TraceRecorder rec(16);
  rec.set_enabled(true);
  uint64_t outer_id = 0;
  {
    ScopedSpan outer("test.outer", nullptr, &rec);
    outer_id = outer.id();
    ASSERT_NE(outer_id, 0u);
    { ScopedSpan inner("test.inner", nullptr, &rec); }
  }
  auto spans = rec.Snapshot();
  ASSERT_EQ(spans.size(), 2u);
  // Inner completes (and records) first.
  EXPECT_EQ(spans[0].name, "test.inner");
  EXPECT_EQ(spans[0].parent_id, outer_id);
  EXPECT_EQ(spans[1].name, "test.outer");
  EXPECT_EQ(spans[1].parent_id, 0u);
}

TEST(TraceRecorderTest, RingOverwritesOldestSpans) {
  TraceRecorder rec(4);
  rec.set_enabled(true);
  for (int i = 0; i < 10; ++i) {
    ScopedSpan span("test.ring", nullptr, &rec);
  }
  auto spans = rec.Snapshot();
  ASSERT_EQ(spans.size(), 4u);  // bounded by capacity
  EXPECT_EQ(rec.total_recorded(), 10u);
  // Oldest-first: the four most recent spans, in order.
  for (size_t i = 1; i < spans.size(); ++i) {
    EXPECT_LT(spans[i - 1].id, spans[i].id);
  }
}

TEST(TraceRecorderTest, ClearEmptiesRetainedSpans) {
  TraceRecorder rec(8);
  rec.set_enabled(true);
  { ScopedSpan span("test.x", nullptr, &rec); }
  ASSERT_EQ(rec.Snapshot().size(), 1u);
  rec.Clear();
  EXPECT_EQ(rec.Snapshot().size(), 0u);
}

TEST(ScopedSpanTest, FeedsLatencyHistogramEvenWhenDisabled) {
  TraceRecorder rec(8);  // disabled
  Histogram latency;
  { ScopedSpan span("test.timed", &latency, &rec); }
  EXPECT_EQ(latency.count(), 1u);
  EXPECT_GE(latency.sum(), 0);
  EXPECT_EQ(rec.Snapshot().size(), 0u);
}

TEST(ScopedSpanTest, ThreadsKeepIndependentSpanStacks) {
  TraceRecorder rec(64);
  rec.set_enabled(true);
  std::thread t1([&] {
    ScopedSpan outer("t1.outer", nullptr, &rec);
    ScopedSpan inner("t1.inner", nullptr, &rec);
  });
  std::thread t2([&] {
    ScopedSpan outer("t2.outer", nullptr, &rec);
    ScopedSpan inner("t2.inner", nullptr, &rec);
  });
  t1.join();
  t2.join();
  auto spans = rec.Snapshot();
  ASSERT_EQ(spans.size(), 4u);
  // Each inner's parent must be its own thread's outer.
  uint64_t t1_outer = 0, t2_outer = 0;
  for (const SpanRecord& s : spans) {
    if (s.name == "t1.outer") t1_outer = s.id;
    if (s.name == "t2.outer") t2_outer = s.id;
  }
  for (const SpanRecord& s : spans) {
    if (s.name == "t1.inner") EXPECT_EQ(s.parent_id, t1_outer);
    if (s.name == "t2.inner") EXPECT_EQ(s.parent_id, t2_outer);
  }
}

TEST(SteadyNowNsTest, Monotonic) {
  const int64_t a = SteadyNowNs();
  const int64_t b = SteadyNowNs();
  EXPECT_LE(a, b);
}

}  // namespace
}  // namespace obs
}  // namespace expdb
