// Unit tests for the trace layer: span recording, parent/child linking
// via the thread-local span stack, ring-buffer overwrite, and histogram
// feeding.

#include "obs/trace.h"

#include <thread>

#include "gtest/gtest.h"
#include "obs/validate.h"

namespace expdb {
namespace obs {
namespace {

TEST(TraceRecorderTest, DisabledRecorderRecordsNothing) {
  TraceRecorder rec(16);
  ASSERT_FALSE(rec.enabled());
  { ScopedSpan span("test.noop", nullptr, &rec); }
  EXPECT_EQ(rec.Snapshot().size(), 0u);
  EXPECT_EQ(rec.total_recorded(), 0u);
}

TEST(TraceRecorderTest, RecordsCompletedSpans) {
  TraceRecorder rec(16);
  rec.set_enabled(true);
  { ScopedSpan span("test.a", nullptr, &rec); }
  { ScopedSpan span("test.b", nullptr, &rec); }
  auto spans = rec.Snapshot();
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_EQ(spans[0].name, "test.a");
  EXPECT_EQ(spans[1].name, "test.b");
  EXPECT_NE(spans[0].id, spans[1].id);
  EXPECT_EQ(spans[0].parent_id, 0u);
  EXPECT_GE(spans[0].duration_ns, 0);
}

TEST(TraceRecorderTest, NestedSpansLinkParentChild) {
  TraceRecorder rec(16);
  rec.set_enabled(true);
  uint64_t outer_id = 0;
  {
    ScopedSpan outer("test.outer", nullptr, &rec);
    outer_id = outer.id();
    ASSERT_NE(outer_id, 0u);
    { ScopedSpan inner("test.inner", nullptr, &rec); }
  }
  auto spans = rec.Snapshot();
  ASSERT_EQ(spans.size(), 2u);
  // Inner completes (and records) first.
  EXPECT_EQ(spans[0].name, "test.inner");
  EXPECT_EQ(spans[0].parent_id, outer_id);
  EXPECT_EQ(spans[1].name, "test.outer");
  EXPECT_EQ(spans[1].parent_id, 0u);
}

TEST(TraceRecorderTest, RingOverwritesOldestSpans) {
  TraceRecorder rec(4);
  rec.set_enabled(true);
  for (int i = 0; i < 10; ++i) {
    ScopedSpan span("test.ring", nullptr, &rec);
  }
  auto spans = rec.Snapshot();
  ASSERT_EQ(spans.size(), 4u);  // bounded by capacity
  EXPECT_EQ(rec.total_recorded(), 10u);
  // Oldest-first: the four most recent spans, in order.
  for (size_t i = 1; i < spans.size(); ++i) {
    EXPECT_LT(spans[i - 1].id, spans[i].id);
  }
}

TEST(TraceRecorderTest, ClearEmptiesRetainedSpans) {
  TraceRecorder rec(8);
  rec.set_enabled(true);
  { ScopedSpan span("test.x", nullptr, &rec); }
  ASSERT_EQ(rec.Snapshot().size(), 1u);
  rec.Clear();
  EXPECT_EQ(rec.Snapshot().size(), 0u);
}

TEST(ScopedSpanTest, FeedsLatencyHistogramEvenWhenDisabled) {
  TraceRecorder rec(8);  // disabled
  Histogram latency;
  { ScopedSpan span("test.timed", &latency, &rec); }
  EXPECT_EQ(latency.count(), 1u);
  EXPECT_GE(latency.sum(), 0);
  EXPECT_EQ(rec.Snapshot().size(), 0u);
}

TEST(ScopedSpanTest, ThreadsKeepIndependentSpanStacks) {
  TraceRecorder rec(64);
  rec.set_enabled(true);
  std::thread t1([&] {
    ScopedSpan outer("t1.outer", nullptr, &rec);
    ScopedSpan inner("t1.inner", nullptr, &rec);
  });
  std::thread t2([&] {
    ScopedSpan outer("t2.outer", nullptr, &rec);
    ScopedSpan inner("t2.inner", nullptr, &rec);
  });
  t1.join();
  t2.join();
  auto spans = rec.Snapshot();
  ASSERT_EQ(spans.size(), 4u);
  // Each inner's parent must be its own thread's outer.
  uint64_t t1_outer = 0, t2_outer = 0;
  for (const SpanRecord& s : spans) {
    if (s.name == "t1.outer") t1_outer = s.id;
    if (s.name == "t2.outer") t2_outer = s.id;
  }
  for (const SpanRecord& s : spans) {
    if (s.name == "t1.inner") EXPECT_EQ(s.parent_id, t1_outer);
    if (s.name == "t2.inner") EXPECT_EQ(s.parent_id, t2_outer);
  }
}

TEST(SteadyNowNsTest, Monotonic) {
  const int64_t a = SteadyNowNs();
  const int64_t b = SteadyNowNs();
  EXPECT_LE(a, b);
}

TEST(TraceRecorderTest, OverflowCountsDroppedSpans) {
  TraceRecorder rec(4);
  rec.set_enabled(true);
  EXPECT_EQ(rec.dropped(), 0u);
  for (int i = 0; i < 4; ++i) {
    ScopedSpan span("test.fill", nullptr, &rec);
  }
  EXPECT_EQ(rec.dropped(), 0u);  // ring exactly full, nothing lost yet
  for (int i = 0; i < 10; ++i) {
    ScopedSpan span("test.spill", nullptr, &rec);
  }
  // Every span past capacity overwrote (= dropped) an older one.
  EXPECT_EQ(rec.dropped(), 10u);
  EXPECT_EQ(rec.total_recorded(), 14u);
  EXPECT_EQ(rec.Snapshot().size(), 4u);
}

TEST(TraceContextTest, RootSpanStartsTraceChildrenInherit) {
  TraceRecorder rec(16);
  rec.set_enabled(true);
  uint64_t root_id = 0;
  {
    ScopedSpan root("test.root", nullptr, &rec);
    root_id = root.id();
    EXPECT_EQ(root.trace_id(), root_id);  // a root starts its own trace
    const TraceContext ctx = CurrentTraceContext();
    EXPECT_TRUE(ctx.active());
    EXPECT_EQ(ctx.trace_id, root_id);
    EXPECT_EQ(ctx.span_id, root_id);
    { ScopedSpan child("test.child", nullptr, &rec); }
  }
  EXPECT_FALSE(CurrentTraceContext().active());
  auto spans = rec.Snapshot();
  ASSERT_EQ(spans.size(), 2u);
  for (const SpanRecord& s : spans) {
    EXPECT_EQ(s.trace_id, root_id);  // one trace, both spans in it
  }
}

TEST(TraceContextTest, ScopeReinstallsContextOnAnotherThread) {
  TraceRecorder rec(16);
  rec.set_enabled(true);
  uint64_t caller_span = 0;
  uint64_t caller_trace = 0;
  {
    ScopedSpan outer("test.caller", nullptr, &rec);
    caller_span = outer.id();
    caller_trace = outer.trace_id();
    const TraceContext captured = CurrentTraceContext();
    std::thread worker([&rec, captured] {
      // Without the scope the worker span would be an orphan root.
      TraceContextScope scope(captured);
      ScopedSpan span("test.worker", nullptr, &rec);
    });
    worker.join();
  }
  auto spans = rec.Snapshot();
  ASSERT_EQ(spans.size(), 2u);
  const SpanRecord& worker_span =
      spans[0].name == "test.worker" ? spans[0] : spans[1];
  EXPECT_EQ(worker_span.name, "test.worker");
  EXPECT_EQ(worker_span.parent_id, caller_span);
  EXPECT_EQ(worker_span.trace_id, caller_trace);
}

TEST(TraceContextTest, ScopeRestoresPreviousContext) {
  const TraceContext before = CurrentTraceContext();
  {
    TraceContextScope scope(TraceContext{42, 7});
    EXPECT_EQ(CurrentTraceContext().trace_id, 42u);
    EXPECT_EQ(CurrentTraceContext().span_id, 7u);
  }
  EXPECT_EQ(CurrentTraceContext().trace_id, before.trace_id);
  EXPECT_EQ(CurrentTraceContext().span_id, before.span_id);
}

TEST(ChromeTraceJsonTest, OutputIsValidJson) {
  TraceRecorder rec(16);
  rec.set_enabled(true);
  {
    ScopedSpan outer("test.outer \"quoted\"\n", nullptr, &rec);
    ScopedSpan inner("test.inner", 1234u, nullptr, &rec);
  }
  const std::string json = ChromeTraceJson(rec.Snapshot());
  std::string error;
  EXPECT_TRUE(ValidateJson(json, &error)) << error << "\n" << json;
  // Spot-check the Chrome trace shape and that ids ride along.
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"tag\":1234"), std::string::npos);
}

TEST(ChromeTraceJsonTest, EmptySpanListIsStillValid) {
  const std::string json = ChromeTraceJson({});
  std::string error;
  EXPECT_TRUE(ValidateJson(json, &error)) << error;
}

}  // namespace
}  // namespace obs
}  // namespace expdb
