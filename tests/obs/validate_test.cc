// Exporter conformance: the Prometheus text exposition and JSON exporter
// outputs must satisfy the structural checks in obs/validate.h — and the
// checkers themselves must reject malformed input, otherwise the CI gate
// built on them proves nothing.

#include "obs/validate.h"

#include "gtest/gtest.h"
#include "obs/metrics.h"

namespace expdb {
namespace obs {
namespace {

// --- JSON checker -----------------------------------------------------

TEST(ValidateJsonTest, AcceptsWellFormedValues) {
  for (const char* ok :
       {"{}", "[]", "null", "true", "false", "0", "-1.5e3", "\"s\"",
        R"({"a":[1,2,{"b":null}],"c":"é\n"})", "[1, 2, 3]"}) {
    std::string error;
    EXPECT_TRUE(ValidateJson(ok, &error)) << ok << ": " << error;
  }
}

TEST(ValidateJsonTest, RejectsMalformedValues) {
  for (const char* bad :
       {"", "{", "}", "[1,]", "{\"a\":}", "{'a':1}", "nul", "01", "1.",
        "\"unterminated", "{\"a\":1}extra", "[1 2]", "+1",
        "\"bad\\escape\"", "{\"dup\" 1}"}) {
    std::string error;
    EXPECT_FALSE(ValidateJson(bad, &error)) << bad;
  }
}

TEST(ValidateJsonLinesTest, ChecksEveryLine) {
  std::string error;
  EXPECT_TRUE(ValidateJsonLines("{\"a\":1}\n{\"b\":2}\n", &error)) << error;
  EXPECT_TRUE(ValidateJsonLines("", &error)) << error;  // empty = vacuous
  EXPECT_FALSE(ValidateJsonLines("{\"a\":1}\n{oops\n", &error));
}

// --- Prometheus checker ----------------------------------------------

TEST(ValidatePrometheusTest, AcceptsWellFormedFamilies) {
  const char* text =
      "# HELP expdb_x_total A counter.\n"
      "# TYPE expdb_x_total counter\n"
      "expdb_x_total 3\n"
      "# TYPE expdb_g gauge\n"
      "expdb_g -1.5\n"
      "# TYPE expdb_h histogram\n"
      "expdb_h_bucket{le=\"100\"} 1\n"
      "expdb_h_bucket{le=\"1000\"} 4\n"
      "expdb_h_bucket{le=\"+Inf\"} 5\n"
      "expdb_h_sum 1234\n"
      "expdb_h_count 5\n";
  std::string error;
  EXPECT_TRUE(ValidatePrometheusText(text, &error)) << error;
}

TEST(ValidatePrometheusTest, RejectsSampleWithoutType) {
  std::string error;
  EXPECT_FALSE(ValidatePrometheusText("expdb_untyped_total 1\n", &error));
}

TEST(ValidatePrometheusTest, RejectsBadMetricName) {
  const char* text =
      "# TYPE 9bad counter\n"
      "9bad 1\n";
  std::string error;
  EXPECT_FALSE(ValidatePrometheusText(text, &error));
}

TEST(ValidatePrometheusTest, RejectsNonMonotonicHistogramBuckets) {
  const char* text =
      "# TYPE expdb_h histogram\n"
      "expdb_h_bucket{le=\"100\"} 5\n"
      "expdb_h_bucket{le=\"1000\"} 4\n"  // cumulative count decreased
      "expdb_h_bucket{le=\"+Inf\"} 5\n"
      "expdb_h_sum 1\n"
      "expdb_h_count 5\n";
  std::string error;
  EXPECT_FALSE(ValidatePrometheusText(text, &error));
}

TEST(ValidatePrometheusTest, RejectsHistogramWithoutInfBucket) {
  const char* text =
      "# TYPE expdb_h histogram\n"
      "expdb_h_bucket{le=\"100\"} 5\n"
      "expdb_h_sum 1\n"
      "expdb_h_count 5\n";
  std::string error;
  EXPECT_FALSE(ValidatePrometheusText(text, &error));
}

TEST(ValidatePrometheusTest, RejectsInfBucketCountMismatch) {
  const char* text =
      "# TYPE expdb_h histogram\n"
      "expdb_h_bucket{le=\"+Inf\"} 4\n"
      "expdb_h_sum 1\n"
      "expdb_h_count 5\n";  // != +Inf bucket
  std::string error;
  EXPECT_FALSE(ValidatePrometheusText(text, &error));
}

TEST(ValidatePrometheusTest, RejectsUnescapedHelpNewline) {
  // A raw newline inside HELP text splits the line; the following
  // fragment is then a malformed sample.
  const char* text =
      "# HELP expdb_x broken\nhelp\n"
      "# TYPE expdb_x counter\n"
      "expdb_x 1\n";
  std::string error;
  EXPECT_FALSE(ValidatePrometheusText(text, &error));
}

// --- The real exporters must pass their checkers ----------------------

TEST(ExporterConformanceTest, RegistryPrometheusTextConforms) {
  MetricsRegistry registry;
  RegisterStandardMetrics(registry);
  // Exercise escaping and histogram rendering paths.
  registry.GetCounter("expdb_conf_total", "Help with \\ backslash\nnewline")
      ->Increment(7);
  Histogram* h = registry.GetHistogram("expdb_conf_latency_ns");
  for (int i = 0; i < 100; ++i) h->Record(i * 1000);
  std::string error;
  EXPECT_TRUE(ValidatePrometheusText(registry.PrometheusText(), &error))
      << error;
}

TEST(ExporterConformanceTest, RegistryJsonTextRoundTrips) {
  MetricsRegistry registry;
  RegisterStandardMetrics(registry);
  registry.GetCounter("expdb_json_total", "quote \" and \\ backslash")
      ->Increment();
  registry.GetGauge("expdb_json_gauge")->Set(-3);
  registry.GetHistogram("expdb_json_latency_ns")->Record(12345);
  std::string error;
  EXPECT_TRUE(ValidateJson(registry.JsonText(), &error)) << error;
}

TEST(ExporterConformanceTest, GlobalRegistrySnapshotConforms) {
  // The process-wide registry as the CI scrape sees it.
  std::string error;
  EXPECT_TRUE(
      ValidatePrometheusText(MetricsRegistry::Global().PrometheusText(),
                             &error))
      << error;
  EXPECT_TRUE(ValidateJson(MetricsRegistry::Global().JsonText(), &error))
      << error;
}

}  // namespace
}  // namespace obs
}  // namespace expdb
