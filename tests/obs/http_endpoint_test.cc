// Unit tests for the embedded HTTP observability endpoint: bind/serve/
// stop lifecycle, routing through the caller handler, query parsing,
// error paths, and concurrent fetches against the single listener.

#include "obs/http_endpoint.h"

#include <string>
#include <thread>
#include <vector>

#include "gtest/gtest.h"

namespace expdb {
namespace obs {
namespace {

TEST(QueryParamTest, ParsesPairsAndDecodes) {
  EXPECT_EQ(QueryParam("metric=abc", "metric"), "abc");
  EXPECT_EQ(QueryParam("a=1&metric=xy_z&b=2", "metric"), "xy_z");
  EXPECT_EQ(QueryParam("metric=a%20b%2Fc", "metric"), "a b/c");
  EXPECT_EQ(QueryParam("metric=", "metric"), "");
  EXPECT_FALSE(QueryParam("other=1", "metric").has_value());
  EXPECT_FALSE(QueryParam("", "metric").has_value());
}

TEST(HttpEndpointTest, ServesHandlerResponseOnEphemeralPort) {
  HttpEndpoint server([](const HttpRequest& req) {
    HttpResponse resp;
    resp.body = req.method + " " + req.path + "?" + req.query;
    return resp;
  });
  std::string error;
  const int port = server.Start(0, &error);
  ASSERT_GT(port, 0) << error;
  EXPECT_TRUE(server.running());
  EXPECT_EQ(server.port(), port);

  auto resp = HttpGet("127.0.0.1", port, "/hello?x=1", &error);
  ASSERT_TRUE(resp.has_value()) << error;
  EXPECT_EQ(resp->status, 200);
  EXPECT_EQ(resp->body, "GET /hello?x=1");

  server.Stop();
  EXPECT_FALSE(server.running());
  EXPECT_EQ(server.port(), 0);
}

TEST(HttpEndpointTest, StartWhileRunningReturnsCurrentPort) {
  HttpEndpoint server([](const HttpRequest&) { return HttpResponse{}; });
  const int port = server.Start(0);
  ASSERT_GT(port, 0);
  EXPECT_EQ(server.Start(0), port);  // idempotent while running
  server.Stop();
  server.Stop();  // idempotent when stopped
}

TEST(HttpEndpointTest, HandlerStatusAndContentTypePropagate) {
  HttpEndpoint server([](const HttpRequest& req) {
    HttpResponse resp;
    if (req.path == "/missing") {
      resp.status = 404;
      resp.body = "not here";
    } else if (req.path == "/unhealthy") {
      resp.status = 503;
      resp.content_type = "application/json";
      resp.body = "{\"status\":\"unhealthy\"}";
    }
    return resp;
  });
  const int port = server.Start(0);
  ASSERT_GT(port, 0);
  auto missing = HttpGet("127.0.0.1", port, "/missing");
  ASSERT_TRUE(missing.has_value());
  EXPECT_EQ(missing->status, 404);
  EXPECT_EQ(missing->body, "not here");
  auto unhealthy = HttpGet("127.0.0.1", port, "/unhealthy");
  ASSERT_TRUE(unhealthy.has_value());
  EXPECT_EQ(unhealthy->status, 503);
  EXPECT_EQ(unhealthy->content_type, "application/json");
}

TEST(HttpEndpointTest, SequentialAndConcurrentFetches) {
  HttpEndpoint server([](const HttpRequest& req) {
    HttpResponse resp;
    resp.body = "echo:" + req.query;
    return resp;
  });
  const int port = server.Start(0);
  ASSERT_GT(port, 0);
  // The listener serves one connection at a time; concurrent clients
  // queue in the kernel backlog and every fetch must still succeed.
  constexpr int kThreads = 4;
  constexpr int kFetches = 8;
  std::vector<std::thread> threads;
  std::vector<int> failures(kThreads, 0);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kFetches; ++i) {
        const std::string q = std::to_string(t * 100 + i);
        auto resp = HttpGet("127.0.0.1", port, "/e?" + q);
        if (!resp.has_value() || resp->body != "echo:" + q) ++failures[t];
      }
    });
  }
  for (std::thread& th : threads) th.join();
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(failures[t], 0) << "thread " << t;
  }
  EXPECT_GE(server.requests_served(),
            static_cast<uint64_t>(kThreads) * kFetches);
}

TEST(HttpEndpointTest, RestartAfterStopBindsAgain) {
  HttpEndpoint server([](const HttpRequest&) {
    HttpResponse resp;
    resp.body = "alive";
    return resp;
  });
  const int first = server.Start(0);
  ASSERT_GT(first, 0);
  server.Stop();
  const int second = server.Start(0);
  ASSERT_GT(second, 0);
  auto resp = HttpGet("127.0.0.1", second, "/");
  ASSERT_TRUE(resp.has_value());
  EXPECT_EQ(resp->body, "alive");
  server.Stop();
}

TEST(HttpGetTest, ConnectFailureReportsError) {
  // Find a port with nothing listening by binding-and-closing.
  HttpEndpoint probe([](const HttpRequest&) { return HttpResponse{}; });
  const int port = probe.Start(0);
  ASSERT_GT(port, 0);
  probe.Stop();
  std::string error;
  auto resp = HttpGet("127.0.0.1", port, "/", &error, /*timeout_ms=*/1000);
  EXPECT_FALSE(resp.has_value());
  EXPECT_FALSE(error.empty());
}

TEST(HttpEndpointTest, PortInUseFailsWithError) {
  HttpEndpoint first([](const HttpRequest&) { return HttpResponse{}; });
  const int port = first.Start(0);
  ASSERT_GT(port, 0);
  HttpEndpoint second([](const HttpRequest&) { return HttpResponse{}; });
  std::string error;
  EXPECT_EQ(second.Start(port, &error), -1);
  EXPECT_FALSE(error.empty());
}

}  // namespace
}  // namespace obs
}  // namespace expdb
