// Unit tests for the structured event log: enable gating, field
// rendering, trace-context attachment, ring overflow accounting, and the
// JSONL file sink.

#include "obs/log.h"

#include <cstdio>
#include <fstream>
#include <sstream>

#include "gtest/gtest.h"
#include "obs/trace.h"
#include "obs/validate.h"

namespace expdb {
namespace obs {
namespace {

TEST(EventLogTest, DisabledLogRecordsNothing) {
  EventLog log(8);
  ASSERT_FALSE(log.enabled());
  log.Emit(LogSeverity::kInfo, "test", "noop");
  EXPECT_EQ(log.Snapshot().size(), 0u);
  EXPECT_EQ(log.total_emitted(), 0u);
}

TEST(EventLogTest, EmitRetainsEventsOldestFirst) {
  EventLog log(8);
  log.set_enabled(true);
  log.Emit(LogSeverity::kInfo, "test", "first", {{"k", "v1"}});
  log.Emit(LogSeverity::kWarn, "test", "second", {{"k", "v2"}});
  auto events = log.Snapshot();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].event, "first");
  EXPECT_EQ(events[1].event, "second");
  EXPECT_EQ(events[1].severity, LogSeverity::kWarn);
  ASSERT_EQ(events[1].fields.size(), 1u);
  EXPECT_EQ(events[1].fields[0].first, "k");
  EXPECT_EQ(events[1].fields[0].second, "v2");
  EXPECT_LE(events[0].ts_ns, events[1].ts_ns);
}

TEST(EventLogTest, EventsCarryTheEmittingThreadsTraceContext) {
  EventLog log(8);
  log.set_enabled(true);
  log.Emit(LogSeverity::kInfo, "test", "untraced");
  {
    TraceContextScope scope(TraceContext{99, 42});
    log.Emit(LogSeverity::kInfo, "test", "traced");
  }
  auto events = log.Snapshot();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].trace_id, 0u);
  EXPECT_EQ(events[1].trace_id, 99u);
  EXPECT_EQ(events[1].span_id, 42u);
  // Untraced events omit the ids; traced events include them.
  EXPECT_EQ(events[0].ToJson().find("trace_id"), std::string::npos);
  EXPECT_NE(events[1].ToJson().find("\"trace_id\":99"), std::string::npos);
}

TEST(EventLogTest, RingOverflowCountsDrops) {
  EventLog log(4);
  log.set_enabled(true);
  for (int i = 0; i < 10; ++i) {
    log.Emit(LogSeverity::kInfo, "test", "e" + std::to_string(i));
  }
  EXPECT_EQ(log.Snapshot().size(), 4u);
  EXPECT_EQ(log.total_emitted(), 10u);
  EXPECT_EQ(log.dropped(), 6u);
  // The four most recent events survive.
  EXPECT_EQ(log.Snapshot().front().event, "e6");
  EXPECT_EQ(log.Snapshot().back().event, "e9");
}

TEST(EventLogTest, JsonlTextIsValidJsonLines) {
  EventLog log(8);
  log.set_enabled(true);
  log.Emit(LogSeverity::kError, "test", "esc\"apes\n",
           {{"path", "C:\\tmp"}, {"msg", "line1\nline2"}});
  log.Emit(LogSeverity::kDebug, "test", "plain");
  std::string error;
  EXPECT_TRUE(ValidateJsonLines(log.JsonlText(), &error)) << error;
}

TEST(EventLogTest, FileSinkAppendsOneLinePerEvent) {
  const std::string path = ::testing::TempDir() + "/expdb_log_test.jsonl";
  EventLog log(2);  // tiny ring: the sink must still keep everything
  log.set_enabled(true);
  std::string error;
  ASSERT_TRUE(log.OpenSink(path, &error)) << error;
  EXPECT_TRUE(log.HasSink());
  for (int i = 0; i < 6; ++i) {
    log.Emit(LogSeverity::kInfo, "test", "sunk" + std::to_string(i));
  }
  // Overwrites of already-sunk events are not counted as drops.
  EXPECT_EQ(log.dropped(), 0u);
  log.CloseSink();
  EXPECT_FALSE(log.HasSink());

  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream buffer;
  buffer << in.rdbuf();
  const std::string contents = buffer.str();
  EXPECT_TRUE(ValidateJsonLines(contents, &error)) << error;
  size_t lines = 0;
  for (char c : contents) {
    if (c == '\n') ++lines;
  }
  EXPECT_EQ(lines, 6u);  // every event reached the file, ring overflow or not
  std::remove(path.c_str());
}

TEST(EventLogTest, OpenSinkFailureReportsError) {
  EventLog log(4);
  std::string error;
  EXPECT_FALSE(log.OpenSink("/nonexistent-dir/x/y/z.jsonl", &error));
  EXPECT_FALSE(error.empty());
  EXPECT_FALSE(log.HasSink());
  // The failure is retained for MONITOR STATUS, not just the out-param.
  EXPECT_FALSE(log.last_sink_error().empty());
  // And surfaced as a warning event so callers that drop the return
  // value still see it.
  log.set_enabled(true);
  EXPECT_FALSE(log.OpenSink("/nonexistent-dir/x/y/z.jsonl", &error));
  const std::vector<LogEvent> events = log.Snapshot();
  ASSERT_FALSE(events.empty());
  EXPECT_EQ(events.back().event, "event_log_open_failed");
  EXPECT_EQ(events.back().severity, LogSeverity::kWarn);
}

TEST(EventLogTest, WriteErrorsCountOnFullDevice) {
  // /dev/full accepts the open but fails every write with ENOSPC —
  // exactly the disk-full case the write-error counter exists for.
  std::ifstream probe("/dev/full");
  if (!probe.good()) GTEST_SKIP() << "/dev/full not available";
  EventLog log(4);
  std::string error;
  ASSERT_TRUE(log.OpenSink("/dev/full", &error)) << error;
  log.set_enabled(true);
  EXPECT_EQ(log.write_errors(), 0u);
  log.Emit(LogSeverity::kInfo, "test", "doomed_write");
  EXPECT_GE(log.write_errors(), 1u);
  EXPECT_FALSE(log.last_sink_error().empty());
  // The event itself still lands in the in-memory ring.
  ASSERT_EQ(log.Snapshot().size(), 1u);
  // The stream was cleared for retry: further emits keep counting
  // instead of silently no-opping on a failed stream.
  log.Emit(LogSeverity::kInfo, "test", "doomed_write_2");
  EXPECT_GE(log.write_errors(), 2u);
  log.CloseSink();
}

TEST(EventLogTest, CloseSinkFlushes) {
  const std::string path = "/tmp/expdb_log_flush_test.jsonl";
  {
    EventLog log(4);
    ASSERT_TRUE(log.OpenSink(path));
    log.set_enabled(true);
    log.Emit(LogSeverity::kInfo, "test", "flushed");
    log.CloseSink();
    EXPECT_FALSE(log.HasSink());
    EXPECT_EQ(log.write_errors(), 0u);
  }
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream buffer;
  buffer << in.rdbuf();
  EXPECT_NE(buffer.str().find("flushed"), std::string::npos);
  std::remove(path.c_str());
}

TEST(EventLogTest, ClearEmptiesRing) {
  EventLog log(4);
  log.set_enabled(true);
  log.Emit(LogSeverity::kInfo, "test", "x");
  ASSERT_EQ(log.Snapshot().size(), 1u);
  log.Clear();
  EXPECT_EQ(log.Snapshot().size(), 0u);
}

TEST(LogSeverityTest, Names) {
  EXPECT_EQ(LogSeverityToString(LogSeverity::kDebug), "debug");
  EXPECT_EQ(LogSeverityToString(LogSeverity::kInfo), "info");
  EXPECT_EQ(LogSeverityToString(LogSeverity::kWarn), "warn");
  EXPECT_EQ(LogSeverityToString(LogSeverity::kError), "error");
}

}  // namespace
}  // namespace obs
}  // namespace expdb
