// Unit tests for the obs metrics layer: counters, gauges, histogram
// percentile edge cases, parent chains, registry snapshot/exporters, and
// an 8-thread concurrency hammer.

#include "obs/metrics.h"

#include <atomic>
#include <cmath>
#include <string>
#include <thread>
#include <vector>

#include "gtest/gtest.h"

namespace expdb {
namespace obs {
namespace {

TEST(CounterTest, IncrementAndReset) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.Increment();
  c.Increment(41);
  EXPECT_EQ(c.value(), 42u);
  c.Reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(CounterTest, ParentChainPropagates) {
  Counter grandparent;
  Counter parent(&grandparent);
  Counter child(&parent);
  child.Increment(3);
  parent.Increment(1);
  EXPECT_EQ(child.value(), 3u);
  EXPECT_EQ(parent.value(), 4u);
  EXPECT_EQ(grandparent.value(), 4u);
  // Reset zeroes only the local value; ancestors keep totals.
  child.Reset();
  EXPECT_EQ(child.value(), 0u);
  EXPECT_EQ(grandparent.value(), 4u);
}

TEST(CounterTest, CopyDoesNotDoubleCountIntoParent) {
  Counter parent;
  Counter child(&parent);
  child.Increment(5);
  ASSERT_EQ(parent.value(), 5u);
  Counter copy(child);  // snapshot; events were already aggregated once
  EXPECT_EQ(copy.value(), 5u);
  EXPECT_EQ(parent.value(), 5u);
  copy.Increment();
  EXPECT_EQ(parent.value(), 6u);
}

TEST(GaugeTest, SetForwardsDeltaToParent) {
  Gauge parent;
  Gauge a(&parent);
  Gauge b(&parent);
  a.Set(10);
  b.Set(5);
  EXPECT_EQ(parent.value(), 15);
  a.Set(3);
  EXPECT_EQ(parent.value(), 8);
  b.Add(-5);
  EXPECT_EQ(parent.value(), 3);
}

TEST(GaugeTest, DyingChildRetractsContribution) {
  Gauge parent;
  {
    Gauge child(&parent);
    child.Set(7);
    EXPECT_EQ(parent.value(), 7);
  }
  EXPECT_EQ(parent.value(), 0);
}

TEST(GaugeTest, SetParentMovesContribution) {
  Gauge old_parent;
  Gauge new_parent;
  Gauge child(&old_parent);
  child.Set(4);
  EXPECT_EQ(old_parent.value(), 4);
  child.SetParent(&new_parent);
  EXPECT_EQ(old_parent.value(), 0);
  EXPECT_EQ(new_parent.value(), 4);
}

TEST(HistogramTest, EmptyHistogram) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.sum(), 0);
  EXPECT_EQ(h.min(), 0);
  EXPECT_EQ(h.max(), 0);
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);
  EXPECT_DOUBLE_EQ(h.Percentile(50), 0.0);
  EXPECT_DOUBLE_EQ(h.Percentile(0), 0.0);
  EXPECT_DOUBLE_EQ(h.Percentile(100), 0.0);
}

TEST(HistogramTest, SingleSampleIsEveryPercentile) {
  Histogram h;
  h.Record(1000);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.sum(), 1000);
  EXPECT_EQ(h.min(), 1000);
  EXPECT_EQ(h.max(), 1000);
  // Clamped to observed [min, max]: a single sample is exact at every p.
  EXPECT_DOUBLE_EQ(h.Percentile(0), 1000.0);
  EXPECT_DOUBLE_EQ(h.Percentile(50), 1000.0);
  EXPECT_DOUBLE_EQ(h.Percentile(99), 1000.0);
  EXPECT_DOUBLE_EQ(h.Percentile(100), 1000.0);
}

TEST(HistogramTest, AllSamplesInOneBucket) {
  Histogram h(std::vector<int64_t>{10, 100, 1000});
  for (int i = 0; i < 100; ++i) h.Record(50);
  EXPECT_EQ(h.count(), 100u);
  // Everything landed in the (10, 100] bucket; interpolation must stay
  // clamped to the observed range, i.e. exactly 50.
  EXPECT_DOUBLE_EQ(h.Percentile(50), 50.0);
  EXPECT_DOUBLE_EQ(h.Percentile(99), 50.0);
  auto counts = h.BucketCounts();
  ASSERT_EQ(counts.size(), 4u);  // 3 bounds + overflow
  EXPECT_EQ(counts[1], 100u);
}

TEST(HistogramTest, OverflowBucketAndMonotonePercentiles) {
  Histogram h(std::vector<int64_t>{10, 100});
  h.Record(5);
  h.Record(50);
  h.Record(500);  // overflow bucket
  EXPECT_EQ(h.count(), 3u);
  EXPECT_EQ(h.min(), 5);
  EXPECT_EQ(h.max(), 500);
  auto counts = h.BucketCounts();
  ASSERT_EQ(counts.size(), 3u);
  EXPECT_EQ(counts[2], 1u);
  double p25 = h.Percentile(25);
  double p50 = h.Percentile(50);
  double p99 = h.Percentile(99);
  EXPECT_LE(p25, p50);
  EXPECT_LE(p50, p99);
  EXPECT_GE(p25, 5.0);
  EXPECT_LE(p99, 500.0);
}

TEST(HistogramTest, ParentAggregatesCounts) {
  Histogram parent;
  Histogram child(Histogram::DefaultLatencyBounds(), &parent);
  child.Record(1024);
  child.Record(2048);
  EXPECT_EQ(child.count(), 2u);
  EXPECT_EQ(parent.count(), 2u);
  EXPECT_EQ(parent.sum(), 3072);
}

TEST(HistogramTest, ExponentialBoundsStrictlyIncreasing) {
  auto bounds = Histogram::ExponentialBounds(1, 1.1, 40);
  ASSERT_EQ(bounds.size(), 40u);
  for (size_t i = 1; i < bounds.size(); ++i) {
    EXPECT_LT(bounds[i - 1], bounds[i]) << "at index " << i;
  }
}

TEST(HistogramTest, PercentileExtremesHitObservedMinMax) {
  Histogram h(std::vector<int64_t>{10, 100, 1000});
  for (int i = 0; i < 10; ++i) h.Record(7);
  h.Record(700);
  // p=0 and p=100 must clamp exactly to the observed extremes, not to
  // bucket edges (7 sits inside (0, 10], 700 inside (100, 1000]).
  EXPECT_DOUBLE_EQ(h.Percentile(0), 7.0);
  EXPECT_DOUBLE_EQ(h.Percentile(100), 700.0);
}

TEST(HistogramTest, PercentileSweepIsMonotone) {
  Histogram h(std::vector<int64_t>{10, 100, 1000});
  // Spread over every bucket including overflow.
  for (int i = 0; i < 25; ++i) h.Record(5);
  for (int i = 0; i < 25; ++i) h.Record(50);
  for (int i = 0; i < 25; ++i) h.Record(500);
  for (int i = 0; i < 25; ++i) h.Record(5000);
  double prev = h.Percentile(0);
  for (int p = 1; p <= 100; ++p) {
    const double cur = h.Percentile(p);
    EXPECT_GE(cur, prev) << "percentile not monotone at p=" << p;
    prev = cur;
  }
  EXPECT_GE(h.Percentile(0), 5.0);
  EXPECT_LE(h.Percentile(100), 5000.0);
}

TEST(HistogramTest, AllSamplesInOverflowBucket) {
  Histogram h(std::vector<int64_t>{10});
  h.Record(100);
  h.Record(200);
  h.Record(300);
  // The overflow bucket has no upper bound; percentiles must still stay
  // within the observed [min, max] at both extremes and in between, and
  // p=100 is exactly the observed max.
  EXPECT_GE(h.Percentile(0), 100.0);
  EXPECT_DOUBLE_EQ(h.Percentile(100), 300.0);
  const double p50 = h.Percentile(50);
  EXPECT_GE(p50, 100.0);
  EXPECT_LE(p50, 300.0);
}

TEST(HistogramTest, SingleBucketMonotoneAfterReset) {
  Histogram h(std::vector<int64_t>{1000});
  for (int i = 0; i < 10; ++i) h.Record(i * 100);
  h.Reset();
  EXPECT_DOUBLE_EQ(h.Percentile(50), 0.0);  // empty again
  h.Record(42);
  // Post-reset single sample behaves like a fresh histogram.
  EXPECT_DOUBLE_EQ(h.Percentile(0), 42.0);
  EXPECT_DOUBLE_EQ(h.Percentile(50), 42.0);
  EXPECT_DOUBLE_EQ(h.Percentile(100), 42.0);
}

TEST(RegistryTest, FindOrCreateReturnsStablePointers) {
  MetricsRegistry r;
  Counter* c1 = r.GetCounter("test_counter", "help text");
  Counter* c2 = r.GetCounter("test_counter");
  EXPECT_EQ(c1, c2);
  Gauge* g1 = r.GetGauge("test_gauge");
  EXPECT_EQ(g1, r.GetGauge("test_gauge"));
  Histogram* h1 = r.GetHistogram("test_hist");
  EXPECT_EQ(h1, r.GetHistogram("test_hist"));
  EXPECT_EQ(r.MetricCount(), 3u);
}

TEST(RegistryTest, SnapshotSortedAndComplete) {
  MetricsRegistry r;
  r.GetCounter("b_counter")->Increment(2);
  r.GetGauge("a_gauge")->Set(-3);
  r.GetHistogram("c_hist")->Record(100);
  auto snap = r.Snapshot();
  ASSERT_EQ(snap.size(), 3u);
  EXPECT_EQ(snap[0].name, "a_gauge");
  EXPECT_EQ(snap[1].name, "b_counter");
  EXPECT_EQ(snap[2].name, "c_hist");
  EXPECT_DOUBLE_EQ(snap[0].value, -3.0);
  EXPECT_DOUBLE_EQ(snap[1].value, 2.0);
  EXPECT_EQ(snap[2].count, 1u);
}

TEST(RegistryTest, PrometheusAndJsonExporters) {
  MetricsRegistry r;
  r.GetCounter("exp_requests_total", "requests served")->Increment(7);
  r.GetHistogram("exp_latency_ns")->Record(512);
  std::string prom = r.PrometheusText();
  EXPECT_NE(prom.find("# HELP exp_requests_total requests served"),
            std::string::npos);
  EXPECT_NE(prom.find("exp_requests_total 7"), std::string::npos);
  EXPECT_NE(prom.find("exp_latency_ns"), std::string::npos);
  std::string json = r.JsonText();
  EXPECT_EQ(json.front(), '[');
  EXPECT_EQ(json.back(), ']');
  EXPECT_NE(json.find("\"exp_requests_total\""), std::string::npos);
}

TEST(RegistryTest, ResetAllZeroesEverything) {
  MetricsRegistry r;
  r.GetCounter("x_total")->Increment(5);
  r.GetGauge("x_gauge")->Set(9);
  r.GetHistogram("x_hist")->Record(77);
  r.ResetAll();
  EXPECT_EQ(r.GetCounter("x_total")->value(), 0u);
  EXPECT_EQ(r.GetGauge("x_gauge")->value(), 0);
  EXPECT_EQ(r.GetHistogram("x_hist")->count(), 0u);
}

TEST(RegistryTest, GlobalPreRegistersAllSubsystems) {
  auto snap = MetricsRegistry::Global().Snapshot();
  // The acceptance bar: >= 12 distinct metrics spanning all five
  // subsystems, visible even before any subsystem has run.
  EXPECT_GE(snap.size(), 12u);
  bool eval = false, expiration = false, view = false, replica = false,
       sql = false;
  for (const MetricSnapshot& m : snap) {
    if (m.name.rfind("expdb_eval_", 0) == 0) eval = true;
    if (m.name.rfind("expdb_expiration_", 0) == 0) expiration = true;
    if (m.name.rfind("expdb_view_", 0) == 0) view = true;
    if (m.name.rfind("expdb_replica_", 0) == 0) replica = true;
    if (m.name.rfind("expdb_sql_", 0) == 0) sql = true;
  }
  EXPECT_TRUE(eval);
  EXPECT_TRUE(expiration);
  EXPECT_TRUE(view);
  EXPECT_TRUE(replica);
  EXPECT_TRUE(sql);
}

// 8 threads hammer the same registry: counters, gauges, histograms, and
// concurrent registration of fresh names. Run under TSan/ASan in CI.
TEST(RegistryConcurrencyTest, EightThreadHammer) {
  MetricsRegistry r;
  constexpr int kThreads = 8;
  constexpr int kIters = 20000;
  Counter* shared_counter = r.GetCounter("hammer_total");
  Gauge* shared_gauge = r.GetGauge("hammer_gauge");
  Histogram* shared_hist = r.GetHistogram("hammer_hist");
  std::atomic<int> ready{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      ready.fetch_add(1);
      while (ready.load() < kThreads) {
      }
      for (int i = 0; i < kIters; ++i) {
        shared_counter->Increment();
        shared_gauge->Add(1);
        shared_gauge->Add(-1);
        shared_hist->Record(i % 4096);
        if (i % 1024 == 0) {
          // Concurrent registration, mixing existing and fresh names.
          r.GetCounter("hammer_total")->Increment();
          r.GetCounter("hammer_t" + std::to_string(t))->Increment();
          r.Snapshot();
        }
      }
    });
  }
  for (std::thread& th : threads) th.join();
  // i % 1024 == 0 hits for i = 0, 1024, ..., i.e. ceil(kIters/1024) times.
  const uint64_t hits_per_thread = (kIters + 1023) / 1024;
  EXPECT_EQ(shared_counter->value(),
            static_cast<uint64_t>(kThreads) * kIters +
                kThreads * hits_per_thread);
  EXPECT_EQ(shared_gauge->value(), 0);
  EXPECT_EQ(shared_hist->count(), static_cast<uint64_t>(kThreads) * kIters);
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(r.GetCounter("hammer_t" + std::to_string(t))->value(),
              hits_per_thread);
  }
}

// Parent chains under concurrency: children in different threads, one
// shared parent; the parent must see every increment exactly once.
TEST(RegistryConcurrencyTest, ParentedCountersFromManyThreads) {
  Counter parent;
  constexpr int kThreads = 8;
  constexpr int kIters = 50000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      Counter child(&parent);
      for (int i = 0; i < kIters; ++i) child.Increment();
    });
  }
  for (std::thread& th : threads) th.join();
  EXPECT_EQ(parent.value(), static_cast<uint64_t>(kThreads) * kIters);
}

}  // namespace
}  // namespace obs
}  // namespace expdb
