// Unit tests for the telemetry time-series rings: counter delta/rate
// derivation, gauge deltas, sliding-window histogram percentiles, ring
// eviction order, JSON rendering, and concurrent sampling.

#include "obs/timeseries.h"

#include <string>
#include <thread>
#include <vector>

#include "gtest/gtest.h"
#include "obs/validate.h"

namespace expdb {
namespace obs {
namespace {

MetricSnapshot Counter(const std::string& name, double value) {
  MetricSnapshot m;
  m.name = name;
  m.kind = MetricSnapshot::Kind::kCounter;
  m.value = value;
  return m;
}

MetricSnapshot Gauge(const std::string& name, double value) {
  MetricSnapshot m;
  m.name = name;
  m.kind = MetricSnapshot::Kind::kGauge;
  m.value = value;
  return m;
}

MetricSnapshot Hist(const std::string& name, std::vector<int64_t> bounds,
                    std::vector<uint64_t> counts) {
  MetricSnapshot m;
  m.name = name;
  m.kind = MetricSnapshot::Kind::kHistogram;
  m.bucket_bounds = std::move(bounds);
  m.bucket_counts = std::move(counts);
  for (uint64_t c : m.bucket_counts) m.count += c;
  return m;
}

TEST(PercentileFromBucketsTest, EmptyAndMalformed) {
  EXPECT_DOUBLE_EQ(PercentileFromBuckets({10, 100}, {0, 0, 0}, 50), 0.0);
  // counts.size() must be bounds.size() + 1.
  EXPECT_DOUBLE_EQ(PercentileFromBuckets({10, 100}, {1, 2}, 50), 0.0);
}

TEST(PercentileFromBucketsTest, InterpolatesWithinBucket) {
  // 10 samples in (0, 10]: p50 has rank 5 -> 0 + 5/10 * 10 = 5.
  EXPECT_DOUBLE_EQ(PercentileFromBuckets({10}, {10, 0}, 50), 5.0);
  // p100 -> rank 10 -> upper edge.
  EXPECT_DOUBLE_EQ(PercentileFromBuckets({10}, {10, 0}, 100), 10.0);
}

TEST(PercentileFromBucketsTest, OverflowRankReturnsLargestBound) {
  // All mass in the overflow bucket: the largest finite bound is the
  // best available estimate.
  EXPECT_DOUBLE_EQ(PercentileFromBuckets({10, 100}, {0, 0, 5}, 99), 100.0);
}

TEST(PercentileFromBucketsTest, MonotoneAcrossBuckets) {
  const std::vector<int64_t> bounds = {10, 100, 1000};
  const std::vector<uint64_t> counts = {4, 3, 2, 1};
  double prev = 0.0;
  for (int p = 0; p <= 100; p += 5) {
    const double cur = PercentileFromBuckets(bounds, counts, p);
    EXPECT_GE(cur, prev) << "at p=" << p;
    prev = cur;
  }
}

TEST(TimeSeriesStoreTest, CounterDeltaAndRate) {
  TimeSeriesStore store(8);
  store.Sample({Counter("c", 100)}, 1'000'000'000);
  store.Sample({Counter("c", 150)}, 2'000'000'000);  // +50 over 1s
  auto series = store.Series("c");
  ASSERT_TRUE(series.has_value());
  EXPECT_EQ(series->kind, MetricSnapshot::Kind::kCounter);
  ASSERT_EQ(series->points.size(), 2u);
  EXPECT_DOUBLE_EQ(series->points[0].value, 100.0);
  EXPECT_DOUBLE_EQ(series->points[0].delta, 0.0);  // first sample
  EXPECT_DOUBLE_EQ(series->points[1].value, 150.0);
  EXPECT_DOUBLE_EQ(series->points[1].delta, 50.0);
  EXPECT_DOUBLE_EQ(series->points[1].rate, 50.0);
}

TEST(TimeSeriesStoreTest, CounterResetRestartsDelta) {
  TimeSeriesStore store(8);
  store.Sample({Counter("c", 100)}, 1'000'000'000);
  store.Sample({Counter("c", 30)}, 2'000'000'000);  // went backwards (reset)
  auto series = store.Series("c");
  ASSERT_TRUE(series.has_value());
  // Reset-tolerant: the delta restarts from the new cumulative value
  // instead of going negative.
  EXPECT_DOUBLE_EQ(series->points[1].delta, 30.0);
}

TEST(TimeSeriesStoreTest, GaugeDeltaMayBeNegative) {
  TimeSeriesStore store(8);
  store.Sample({Gauge("g", 10)}, 1'000'000'000);
  store.Sample({Gauge("g", 4)}, 2'000'000'000);
  auto series = store.Series("g");
  ASSERT_TRUE(series.has_value());
  EXPECT_DOUBLE_EQ(series->points[1].value, 4.0);
  EXPECT_DOUBLE_EQ(series->points[1].delta, -6.0);
}

TEST(TimeSeriesStoreTest, HistogramWindowPercentilesTrackTheCurrentRegime) {
  TimeSeriesStore store(8);
  // First sample: 10 fast samples in (0, 10].
  store.Sample({Hist("h", {10, 1000}, {10, 0, 0})}, 1'000'000'000);
  // Second sample: 10 more samples, all slow, in (10, 1000]. Cumulative
  // percentiles would average the two regimes; the windowed p50 must
  // reflect only the new slow samples.
  store.Sample({Hist("h", {10, 1000}, {10, 10, 0})}, 2'000'000'000);
  auto series = store.Series("h");
  ASSERT_TRUE(series.has_value());
  ASSERT_EQ(series->points.size(), 2u);
  EXPECT_LE(series->points[0].p50, 10.0);   // fast window
  EXPECT_GT(series->points[1].p50, 10.0);   // slow window only
  EXPECT_DOUBLE_EQ(series->points[1].delta, 10.0);
  EXPECT_EQ(series->points[1].count, 20u);  // cumulative count
  // value mirrors the window p50 for histograms.
  EXPECT_DOUBLE_EQ(series->points[1].value, series->points[1].p50);
}

TEST(TimeSeriesStoreTest, RingEvictsOldestFirst) {
  TimeSeriesStore store(3);
  for (int i = 0; i < 5; ++i) {
    store.Sample({Counter("c", i * 10.0)}, (i + 1) * 1'000'000'000LL);
  }
  auto series = store.Series("c");
  ASSERT_TRUE(series.has_value());
  ASSERT_EQ(series->points.size(), 3u);
  // Points 0 and 1 evicted; retained oldest-first: values 20, 30, 40.
  EXPECT_DOUBLE_EQ(series->points[0].value, 20.0);
  EXPECT_DOUBLE_EQ(series->points[1].value, 30.0);
  EXPECT_DOUBLE_EQ(series->points[2].value, 40.0);
}

TEST(TimeSeriesStoreTest, JsonTextIsValidJsonAndUnknownIsEmpty) {
  TimeSeriesStore store(4);
  store.Sample({Counter("c", 1), Hist("h", {10}, {1, 0})}, 1'000'000'000);
  std::string error;
  EXPECT_TRUE(ValidateJson(store.JsonText("c"), &error)) << error;
  EXPECT_TRUE(ValidateJson(store.JsonText("h"), &error)) << error;
  EXPECT_TRUE(ValidateJson(store.JsonNames(), &error)) << error;
  EXPECT_EQ(store.JsonText("nope"), "");
  // Histogram points carry the percentile fields; counters don't.
  EXPECT_NE(store.JsonText("h").find("\"p99\""), std::string::npos);
  EXPECT_EQ(store.JsonText("c").find("\"p99\""), std::string::npos);
}

TEST(TimeSeriesStoreTest, NamesAndCounts) {
  TimeSeriesStore store(4);
  EXPECT_EQ(store.samples_taken(), 0u);
  store.Sample({Counter("a", 1), Counter("b", 2)}, 1);
  store.Sample({Counter("a", 2), Counter("b", 3)}, 2);
  EXPECT_EQ(store.samples_taken(), 2u);
  EXPECT_EQ(store.series_count(), 2u);
  const std::vector<std::string> names = store.Names();
  ASSERT_EQ(names.size(), 2u);
  EXPECT_EQ(names[0], "a");
  EXPECT_EQ(names[1], "b");
  store.Clear();
  EXPECT_EQ(store.series_count(), 0u);
  EXPECT_EQ(store.samples_taken(), 0u);
}

TEST(TimeSeriesStoreTest, ConcurrentSamplersAndReaders) {
  TimeSeriesStore store(16);
  constexpr int kThreads = 4;
  constexpr int kIters = 500;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&store, t] {
      for (int i = 0; i < kIters; ++i) {
        store.Sample({Counter("shared", i), Gauge("g" + std::to_string(t), i)},
                     i + 1);
        if (i % 50 == 0) {
          (void)store.Series("shared");
          (void)store.JsonText("shared");
          (void)store.Names();
        }
      }
    });
  }
  for (std::thread& th : threads) th.join();
  EXPECT_EQ(store.samples_taken(),
            static_cast<uint64_t>(kThreads) * kIters);
  auto series = store.Series("shared");
  ASSERT_TRUE(series.has_value());
  EXPECT_EQ(series->points.size(), 16u);
}

TEST(TelemetryStatusTextTest, ListsOnlyActiveMetrics) {
  MetricsRegistry registry;
  registry.GetCounter("quiet_total");
  registry.GetCounter("busy_total")->Increment(7);
  registry.GetHistogram("empty_hist");
  registry.GetHistogram("used_hist")->Record(100);
  const std::string text = TelemetryStatusText(registry);
  EXPECT_NE(text.find("busy_total = 7"), std::string::npos);
  EXPECT_NE(text.find("used_hist"), std::string::npos);
  EXPECT_EQ(text.find("quiet_total"), std::string::npos);
  EXPECT_EQ(text.find("empty_hist"), std::string::npos);
}

}  // namespace
}  // namespace obs
}  // namespace expdb
