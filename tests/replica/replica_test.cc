// Loosely-coupled synchronization (experiment C5 substrate): the
// expiration-aware protocols must serve exact reads with bounded traffic;
// the naive baseline trades traffic against staleness.

#include <gtest/gtest.h>

#include "replica/protocol.h"
#include "testing/workload.h"

namespace expdb {
namespace {

using namespace algebra;  // NOLINT

Timestamp T(int64_t t) { return Timestamp(t); }

class ReplicaTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Relation* r = db_.CreateRelation(
                         "R", Schema({{"x", ValueType::kInt64}})).value();
    for (int i = 0; i < 20; ++i) {
      ASSERT_TRUE(r->Insert(Tuple{i}, T(1 + (i * 3) % 17)).ok());
    }
    Relation* s = db_.CreateRelation(
                         "S", Schema({{"x", ValueType::kInt64}})).value();
    for (int i = 0; i < 10; ++i) {
      ASSERT_TRUE(s->Insert(Tuple{i}, T(1 + (i * 5) % 13)).ok());
    }
  }
  Database db_;
};

TEST_F(ReplicaTest, ServerValidatesAndServes) {
  ReplicationServer server(&db_);
  ASSERT_TRUE(server.RegisterQuery("q", Base("R")).ok());
  EXPECT_EQ(server.RegisterQuery("q", Base("R")).code(),
            StatusCode::kAlreadyExists);
  EXPECT_EQ(server.RegisterQuery("bad", Base("missing")).code(),
            StatusCode::kNotFound);
  SimulatedNetwork net;
  auto result = server.Fetch("q", T(0), &net);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(net.stats().messages, 1u);
  EXPECT_EQ(net.stats().tuples_transferred, result->relation.size());
  EXPECT_FALSE(server.Fetch("nope", T(0), &net).ok());
}

TEST_F(ReplicaTest, NetworkCostModel) {
  SimulatedNetwork net(NetworkCostModel{100.0, 2.0});
  net.CountMessage(10);
  EXPECT_EQ(net.stats().messages, 1u);
  EXPECT_EQ(net.stats().tuples_transferred, 10u);
  EXPECT_DOUBLE_EQ(net.stats().latency_units, 120.0);
  net.Reset();
  EXPECT_EQ(net.stats().messages, 0u);
}

TEST_F(ReplicaTest, ExpirationAwareMonotonicFetchesOnce) {
  SimulationConfig cfg;
  cfg.protocol = SyncProtocol::kExpirationAware;
  cfg.horizon = 40;
  auto report = RunSyncSimulation(
      db_, {{"q", Project(Base("R"), {0})}}, cfg);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->client.fetches, 1u);       // subscribe only
  EXPECT_EQ(report->stale_reads, 0u);          // always exact
  EXPECT_EQ(report->exact_reads, 41u);
  EXPECT_EQ(report->network.messages, 1u);
}

TEST_F(ReplicaTest, NaivePollingIsStaleBetweenPolls) {
  SimulationConfig cfg;
  cfg.protocol = SyncProtocol::kNaivePeriodic;
  cfg.horizon = 16;
  cfg.poll_interval = 8;
  auto report = RunSyncSimulation(db_, {{"q", Base("R")}}, cfg);
  ASSERT_TRUE(report.ok());
  // Polls at 0, 8, 16 -> 3 fetches; with ~17 expiry instants in between,
  // most intermediate reads are stale.
  EXPECT_EQ(report->client.fetches, 3u);
  EXPECT_GT(report->stale_reads, 5u);
}

TEST_F(ReplicaTest, ExpirationAwareNonMonotonicRefetchesOnInvalidation) {
  SimulationConfig cfg;
  cfg.protocol = SyncProtocol::kExpirationAware;
  cfg.horizon = 20;
  auto report = RunSyncSimulation(
      db_, {{"diff", Difference(Base("R"), Base("S"))}}, cfg);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->stale_reads, 0u);
  EXPECT_GT(report->client.fetches, 1u);  // invalidations forced refetches
}

TEST_F(ReplicaTest, PatchedDifferenceNeverRefetches) {
  SimulationConfig cfg;
  cfg.protocol = SyncProtocol::kExpirationAwarePatch;
  cfg.horizon = 25;
  auto report = RunSyncSimulation(
      db_, {{"diff", Difference(Base("R"), Base("S"))}}, cfg);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->stale_reads, 0u);
  EXPECT_EQ(report->client.fetches, 1u);  // helper absorbed everything
  EXPECT_EQ(report->network.messages, 1u);
}

TEST_F(ReplicaTest, PatchProtocolTradesUpFrontTuplesForMessages) {
  // The paper's "classic trade-off": the patch fetch ships extra helper
  // tuples up front, but saves all later round trips.
  auto run = [&](SyncProtocol protocol) {
    SimulationConfig cfg;
    cfg.protocol = protocol;
    cfg.horizon = 25;
    return RunSyncSimulation(
               db_, {{"diff", Difference(Base("R"), Base("S"))}}, cfg)
        .value();
  };
  auto aware = run(SyncProtocol::kExpirationAware);
  auto patch = run(SyncProtocol::kExpirationAwarePatch);
  EXPECT_LT(patch.network.messages, aware.network.messages);
  EXPECT_EQ(patch.stale_reads, 0u);
  EXPECT_EQ(aware.stale_reads, 0u);
}

TEST_F(ReplicaTest, ClientErrorsSurface) {
  ReplicationServer server(&db_);
  ASSERT_TRUE(server.RegisterQuery("q", Base("R")).ok());
  SimulatedNetwork net;
  ReplicationClient client(&server, &net, {});
  EXPECT_EQ(client.Read("q", T(0)).status().code(), StatusCode::kNotFound);
  ASSERT_TRUE(client.Subscribe("q", T(0)).ok());
  EXPECT_EQ(client.Subscribe("q", T(0)).code(), StatusCode::kAlreadyExists);
}

TEST_F(ReplicaTest, PropertyEveryProtocolScoredAgainstGroundTruth) {
  // Randomized end-to-end check over a bigger database.
  Rng rng(77);
  Database db;
  testing::RelationSpec spec;
  spec.num_tuples = 150;
  spec.arity = 2;
  spec.value_domain = 10;
  spec.ttl_min = 1;
  spec.ttl_max = 40;
  ASSERT_TRUE(testing::FillDatabase(&db, rng, spec, 2).ok());
  std::vector<std::pair<std::string, ExpressionPtr>> queries = {
      {"proj", Project(Base("R0"), {0})},
      {"diff", Difference(Project(Base("R0"), {0, 1}),
                          Project(Base("R1"), {0, 1}))}};

  for (SyncProtocol protocol : {SyncProtocol::kExpirationAware,
                                SyncProtocol::kExpirationAwarePatch}) {
    SimulationConfig cfg;
    cfg.protocol = protocol;
    cfg.horizon = 45;
    auto report = RunSyncSimulation(db, queries, cfg);
    ASSERT_TRUE(report.ok());
    EXPECT_EQ(report->stale_reads, 0u) << SyncProtocolToString(protocol);
  }
}

TEST(TraceParentHeaderTest, SerializeParseRoundTrip) {
  const TraceParentHeader original{0x0123456789abcdefULL, 0xfedcba9876543210ULL};
  const std::string wire = original.Serialize();
  EXPECT_EQ(wire.size(), 33u);
  EXPECT_EQ(wire, "0123456789abcdef-fedcba9876543210");
  const TraceParentHeader parsed = TraceParentHeader::Parse(wire);
  EXPECT_EQ(parsed.trace_id, original.trace_id);
  EXPECT_EQ(parsed.span_id, original.span_id);
}

TEST(TraceParentHeaderTest, InactiveContextSerializesEmpty) {
  EXPECT_EQ(TraceParentHeader{}.Serialize(), "");
  EXPECT_FALSE(TraceParentHeader::Parse("").ToContext().active());
}

TEST(TraceParentHeaderTest, MalformedWireParsesInactive) {
  for (const char* bad :
       {"short", "0123456789abcdefXfedcba9876543210",  // wrong separator
        "0123456789abcdeZ-fedcba9876543210",           // non-hex digit
        "0123456789abcdef-fedcba987654321",            // too short
        "0123456789abcdef-fedcba98765432100"}) {       // too long
    EXPECT_FALSE(TraceParentHeader::Parse(bad).ToContext().active()) << bad;
  }
}

TEST(TraceParentHeaderTest, CaptureReflectsCurrentContext) {
  EXPECT_EQ(TraceParentHeader::Capture().trace_id, 0u);
  obs::TraceContextScope scope(obs::TraceContext{7, 9});
  const TraceParentHeader h = TraceParentHeader::Capture();
  EXPECT_EQ(h.trace_id, 7u);
  EXPECT_EQ(h.span_id, 9u);
}

TEST_F(ReplicaTest, ServerSpansStitchUnderClientRequestSpan) {
  obs::TraceRecorder& rec = obs::TraceRecorder::Global();
  rec.Clear();
  const bool was_enabled = rec.enabled();
  rec.set_enabled(true);

  ReplicationServer server(&db_);
  ASSERT_TRUE(server.RegisterQuery("q", Base("R")).ok());
  SimulatedNetwork net;
  ReplicationClient client(&server, &net, {});
  uint64_t root_trace = 0;
  {
    obs::ScopedSpan root("test.request");
    root_trace = root.trace_id();
    ASSERT_TRUE(client.Subscribe("q", T(0)).ok());
  }
  rec.set_enabled(was_enabled);

  // One connected tree: the client fetch span is a child of the request
  // span's trace, and the server fetch span hangs off the client fetch
  // span via the traceparent header carried in the message.
  uint64_t client_fetch = 0;
  for (const obs::SpanRecord& s : rec.Snapshot()) {
    if (s.name == "replica.client.fetch") {
      client_fetch = s.id;
      EXPECT_EQ(s.trace_id, root_trace);
    }
  }
  ASSERT_NE(client_fetch, 0u);
  bool saw_server_span = false;
  for (const obs::SpanRecord& s : rec.Snapshot()) {
    if (s.name != "replica.server.fetch") continue;
    saw_server_span = true;
    EXPECT_EQ(s.parent_id, client_fetch);
    EXPECT_EQ(s.trace_id, root_trace);
  }
  EXPECT_TRUE(saw_server_span);
  rec.Clear();
}

}  // namespace
}  // namespace expdb
