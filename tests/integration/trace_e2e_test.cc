// End-to-end tracing: one request that fetches a replica-backed snapshot,
// loads it through the SQL facade, and runs a morsel-parallel query must
// produce ONE connected span tree — session statements, planner, executor
// workers, replica client, and replica server all stitched under the
// request span, with no orphan roots anywhere.

#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "obs/trace.h"
#include "replica/protocol.h"
#include "sql/session.h"

namespace expdb {
namespace {

using namespace algebra;  // NOLINT

void Exec(sql::Session& s, const std::string& stmt) {
  auto r = s.Execute(stmt);
  ASSERT_TRUE(r.ok()) << stmt << " -> " << r.status().ToString();
}

TEST(TraceE2ETest, SingleRequestYieldsOneConnectedSpanTree) {
  obs::TraceRecorder& rec = obs::TraceRecorder::Global();
  rec.Clear();
  rec.set_enabled(true);

  // Replica source: a server publishing query "q" over R.
  Database source;
  Relation* r =
      source.CreateRelation("R", Schema({{"x", ValueType::kInt64}})).value();
  constexpr int kRows = 4096;  // >= 2 x parallel_min_morsel: the scan splits
  for (int i = 0; i < kRows; ++i) {
    ASSERT_TRUE(r->Insert(Tuple{i}, Timestamp::Infinity()).ok());
  }
  ReplicationServer server(&source);
  ASSERT_TRUE(server.RegisterQuery("q", Base("R")).ok());
  SimulatedNetwork net;
  ReplicationClient client(&server, &net, {});

  sql::Session session;
  uint64_t root_id = 0;
  uint64_t root_trace = 0;
  {
    obs::ScopedSpan request("request.query");  // the end-to-end request
    root_id = request.id();
    root_trace = request.trace_id();

    // 1. Replica fetch: client -> simulated network -> server.
    ASSERT_TRUE(client.Subscribe("q", Timestamp(0)).ok());
    auto fetched = client.Read("q", Timestamp(0));
    ASSERT_TRUE(fetched.ok());
    ASSERT_EQ(fetched->size(), static_cast<size_t>(kRows));

    // 2. Load the fetched snapshot into the session: the local table is
    //    literally backed by what the replica protocol shipped.
    Exec(session, "CREATE TABLE backed (x INT)");
    std::string values;
    size_t in_chunk = 0;
    for (const auto& [tuple, texp] : fetched->SortedEntries()) {
      (void)texp;
      if (in_chunk > 0) values += ", ";
      values += "(" + std::to_string(tuple.values()[0].AsInt64()) + ")";
      if (++in_chunk == 512) {
        Exec(session, "INSERT INTO backed VALUES " + values);
        values.clear();
        in_chunk = 0;
      }
    }
    if (in_chunk > 0) Exec(session, "INSERT INTO backed VALUES " + values);

    // 3. Morsel-parallel query through the SQL facade.
    Exec(session, "SET parallelism = 4");
    auto result = session.Execute("SELECT x FROM backed WHERE x < 100");
    ASSERT_TRUE(result.ok());
  }

  const std::vector<obs::SpanRecord> spans = rec.Snapshot();
  std::set<uint64_t> ids;
  for (const obs::SpanRecord& s : spans) {
    if (s.trace_id == root_trace) ids.insert(s.id);
  }
  ASSERT_FALSE(ids.empty());

  // Connectivity: exactly one root (the request span itself); every other
  // span's parent resolves within the same trace — no orphan roots.
  std::set<std::string> names;
  std::set<uint32_t> morsel_tids;
  size_t roots = 0;
  size_t morsel_spans = 0;
  for (const obs::SpanRecord& s : spans) {
    if (s.trace_id != root_trace) continue;
    names.insert(s.name);
    if (s.parent_id == 0) {
      ++roots;
      EXPECT_EQ(s.id, root_id) << s.name << " is an orphan root";
    } else {
      EXPECT_EQ(ids.count(s.parent_id), 1u)
          << s.name << " #" << s.id << " has a dangling parent";
    }
    if (std::string(s.name) == "eval.morsel") {
      ++morsel_spans;
      morsel_tids.insert(s.tid);
    }
  }
  EXPECT_EQ(roots, 1u);

  // The one tree spans every layer of the stack.
  for (const char* expected :
       {"sql.statement", "plan.plan", "eval.root", "eval.morsel",
        "replica.client.fetch", "replica.server.fetch"}) {
    EXPECT_EQ(names.count(expected), 1u) << "missing span: " << expected;
  }
  EXPECT_GT(morsel_spans, 1u);  // the scan really split into morsels
  // Typically several worker threads participate; on a single-CPU machine
  // the caller may drain every morsel itself, so only assert the sound
  // lower bound (the cross-thread inheritance proper is pinned down by
  // ParallelForTest.HelperTasksInheritTheCallersTraceContext).
  EXPECT_GE(morsel_tids.size(), 1u);
  rec.Clear();
}

}  // namespace
}  // namespace expdb
