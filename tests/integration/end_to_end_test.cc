// Cross-module integration tests: the expiration manager, view manager,
// triggers, SQL session, and replication substrate working together; plus
// a randomized soak test holding every view maintenance mode to the
// ground truth of recomputation across an entire timeline.

#include <gtest/gtest.h>

#include "expiration/expiration_queue.h"
#include "replica/protocol.h"
#include "sql/session.h"
#include "testing/workload.h"
#include "view/view_manager.h"

namespace expdb {
namespace {

using namespace algebra;  // NOLINT

Timestamp T(int64_t t) { return Timestamp(t); }

TEST(EndToEndTest, TriggersViewsAndExpirationCooperate) {
  ExpirationManager em;
  (void)em.CreateRelation("events", Schema({{"id", ValueType::kInt64},
                                            {"sev", ValueType::kInt64}}));
  ViewManager views(&em.db());

  std::vector<int64_t> expired_ids;
  em.AddTrigger([&](const ExpirationEvent& e) {
    expired_ids.push_back(e.tuple.at(0).AsInt64());
  });

  ASSERT_TRUE(em.Insert("events", Tuple{1, 5}, T(4)).ok());
  ASSERT_TRUE(em.Insert("events", Tuple{2, 9}, T(8)).ok());
  ASSERT_TRUE(em.Insert("events", Tuple{3, 9}, T(12)).ok());

  auto severe = Select(Base("events"),
                       Predicate::Compare(Operand::Column(1),
                                          ComparisonOp::kGe,
                                          Operand::Constant(Value(7))));
  ASSERT_TRUE(views.CreateView("severe", severe, {}, em.Now()).ok());

  ASSERT_TRUE(em.AdvanceTo(T(9)).ok());
  ASSERT_TRUE(views.AdvanceAllTo(em.Now()).ok());
  EXPECT_EQ(expired_ids, (std::vector<int64_t>{1, 2}));

  // The view — never recomputed — matches the physically-cleaned base.
  auto rows = views.Read("severe", em.Now()).MoveValue();
  EXPECT_EQ(rows.size(), 1u);
  EXPECT_TRUE(rows.Contains(Tuple{3, 9}));
  EXPECT_EQ(views.GetView("severe").value()->stats().recomputations, 0u);
}

TEST(EndToEndTest, ReplicatedViewOfSqlManagedData) {
  // Data managed through SQL; a remote client replicates a registered
  // query and stays exact through pure expiration.
  sql::Session session;
  ASSERT_TRUE(session.Execute("CREATE TABLE stock (sku INT, qty INT)").ok());
  ASSERT_TRUE(
      session.Execute("INSERT INTO stock VALUES (1, 5) EXPIRE AT 6").ok());
  ASSERT_TRUE(
      session.Execute("INSERT INTO stock VALUES (2, 9) EXPIRE AT 14").ok());

  ReplicationServer server(&session.db());
  ASSERT_TRUE(server.RegisterQuery("stock_all", Base("stock")).ok());
  SimulatedNetwork net;
  ReplicationClient client(&server, &net,
                           {SyncProtocol::kExpirationAware, 10});
  ASSERT_TRUE(client.Subscribe("stock_all", T(0)).ok());

  for (int64_t t : {0, 5, 6, 10, 14}) {
    auto local = client.Read("stock_all", T(t)).MoveValue();
    auto truth = Evaluate(Base("stock"), session.db(), T(t)).MoveValue();
    EXPECT_TRUE(SameTupleSet(local, truth.relation)) << "at " << t;
  }
  EXPECT_EQ(net.stats().messages, 1u);  // monotonic: single transfer
}

// The soak test: random database, random expressions, every maintenance
// mode, every instant — reads must always equal recomputation (with
// Schrödinger move policies, at the *served* time).
struct SoakConfig {
  uint64_t seed;
  RefreshMode mode;
  AggregateExpirationMode agg_mode;
};

class SoakTest : public ::testing::TestWithParam<SoakConfig> {};

TEST_P(SoakTest, EveryReadMatchesRecomputation) {
  const SoakConfig& cfg = GetParam();
  Rng rng(cfg.seed);
  Database db;
  testing::RelationSpec spec;
  spec.num_tuples = 70;
  spec.arity = 2;
  spec.value_domain = 6;
  spec.ttl_min = 1;
  spec.ttl_max = 24;
  spec.infinite_fraction = 0.05;
  ASSERT_TRUE(testing::FillDatabase(&db, rng, spec, 3).ok());

  testing::ExpressionSpec espec;
  espec.max_depth = 4;
  espec.allow_nonmonotonic = true;

  for (int trial = 0; trial < 5; ++trial) {
    ExpressionPtr e = testing::MakeRandomExpression(rng, db, espec);
    if (cfg.mode == RefreshMode::kPatchDifference &&
        e->kind() != ExprKind::kDifference) {
      // Patch mode needs a difference root; build one over the base
      // relations with a varying projection for diversity.
      std::vector<size_t> cols =
          trial % 2 == 0 ? std::vector<size_t>{0} : std::vector<size_t>{0, 1};
      e = Difference(Project(Base("R0"), cols), Project(Base("R1"), cols));
    }
    MaterializedView::Options opts;
    opts.mode = cfg.mode;
    opts.eval.aggregate_mode = cfg.agg_mode;
    opts.move_policy = MovePolicy::kRecompute;
    MaterializedView view(e, opts);
    ASSERT_TRUE(view.Initialize(db, T(0)).ok()) << e->ToString();

    for (int64_t t = 0; t <= 26; ++t) {
      Timestamp served_at;
      auto rows = view.Read(db, T(t), &served_at);
      ASSERT_TRUE(rows.ok()) << rows.status().ToString();
      EvalOptions eval_opts;
      eval_opts.aggregate_mode = cfg.agg_mode;
      auto truth = Evaluate(e, db, served_at, eval_opts);
      ASSERT_TRUE(truth.ok());
      EXPECT_TRUE(
          Relation::ContentsEqualAt(*rows, truth->relation, served_at))
          << "mode " << RefreshModeToString(cfg.mode) << " diverges at "
          << t << "\n  " << e->ToString();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Modes, SoakTest,
    ::testing::Values(
        SoakConfig{501, RefreshMode::kEagerRecompute,
                   AggregateExpirationMode::kConservative},
        SoakConfig{502, RefreshMode::kEagerRecompute,
                   AggregateExpirationMode::kContributingSet},
        SoakConfig{503, RefreshMode::kEagerRecompute,
                   AggregateExpirationMode::kExact},
        SoakConfig{504, RefreshMode::kLazyRecompute,
                   AggregateExpirationMode::kContributingSet},
        SoakConfig{505, RefreshMode::kLazyRecompute,
                   AggregateExpirationMode::kExact},
        SoakConfig{506, RefreshMode::kSchrodinger,
                   AggregateExpirationMode::kExact},
        SoakConfig{507, RefreshMode::kSchrodinger,
                   AggregateExpirationMode::kContributingSet},
        SoakConfig{508, RefreshMode::kPatchDifference,
                   AggregateExpirationMode::kContributingSet}),
    [](const ::testing::TestParamInfo<SoakConfig>& info) {
      std::string name =
          std::string(RefreshModeToString(info.param.mode)) + "_" +
          std::string(AggregateExpirationModeToString(info.param.agg_mode)) +
          "_" + std::to_string(info.param.seed);
      // gtest parameter names must be alphanumeric.
      std::erase_if(name, [](char c) { return c == '-'; });
      return name;
    });

TEST(EndToEndTest, SqlScriptFullLifecycle) {
  // A compact end-to-end ExpSQL script exercising DDL, TTL inserts,
  // views in several modes, time, and staleness.
  sql::Session s;
  auto results = s.ExecuteScript(R"sql(
    CREATE TABLE readings (zone INT, temp INT);
    INSERT INTO readings VALUES (1, 20), (1, 24), (2, 30) TTL 10;
    INSERT INTO readings VALUES (2, 34) TTL 20;
    CREATE VIEW zone_avg WITH (agg = exact) AS
      SELECT zone, AVG(temp) FROM readings GROUP BY zone;
    CREATE VIEW hot_zones AS SELECT zone FROM readings WHERE temp >= 30;
    ADVANCE TIME 5;
    SELECT * FROM zone_avg;
    SELECT * FROM hot_zones;
    ADVANCE TIME 10;
    SELECT * FROM zone_avg;
  )sql");
  ASSERT_TRUE(results.ok()) << results.status().ToString();
  // After 15 ticks only <2,34> survives: zone_avg = {<2, 34.0>}.
  const sql::ExecResult& last = results->back();
  ASSERT_TRUE(last.relation.has_value());
  EXPECT_EQ(last.relation->CountUnexpiredAt(last.served_at), 1u);
  EXPECT_TRUE(last.relation->Contains(Tuple{2, 34.0}));
}

}  // namespace
}  // namespace expdb
