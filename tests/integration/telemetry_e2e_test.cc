// The telemetry acceptance scenario end to end (ISSUE 10,
// docs/OBSERVABILITY.md §9): with maintenance paused, inserts plus
// ADVANCE TIME build an expired-tuple backlog; the background telemetry
// thread samples it into the rings, the health model degrades — observed
// through both SHOW HEALTH and a live /healthz fetch over the embedded
// HTTP endpoint — then maintenance resumes, drains the backlog, and
// health recovers. Concurrent query sessions hammer the engine the whole
// time, so under TSan this also proves the sampler takes the right
// locks.

#include <atomic>
#include <chrono>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "engine/engine.h"
#include "engine/maintenance.h"
#include "engine/telemetry.h"
#include "obs/http_endpoint.h"
#include "obs/validate.h"
#include "sql/session.h"

namespace expdb {
namespace {

sql::ExecResult MustExec(sql::Session& s, const std::string& stmt) {
  auto r = s.Execute(stmt);
  EXPECT_TRUE(r.ok()) << stmt << " -> " << r.status().ToString();
  return r.ok() ? r.MoveValue() : sql::ExecResult{};
}

/// Polls `predicate` every 2ms until it holds or the deadline passes.
bool WaitFor(const std::function<bool()>& predicate,
             std::chrono::seconds timeout = std::chrono::seconds(60)) {
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  while (std::chrono::steady_clock::now() < deadline) {
    if (predicate()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  return predicate();
}

TEST(TelemetryE2eTest, BacklogDegradesHealthAndMaintenanceRecoversIt) {
  engine::EngineOptions options;
  // Lazy removal with auto-compaction disabled: expired tuples stay
  // stored until a maintenance pass, so pausing maintenance builds a
  // real backlog.
  options.expiration.policy = RemovalPolicy::kLazy;
  options.expiration.lazy_compaction_threshold = 0;
  auto eng = std::make_shared<engine::Engine>(options);

  sql::Session s(eng);
  MustExec(s, "CREATE TABLE readings (id INT, v INT)");
  MustExec(s, "INSERT INTO readings VALUES (0, 0) EXPIRE NEVER");

  // Thresholds small enough for a test-sized backlog.
  engine::HealthThresholds thresholds;
  thresholds.backlog_degraded = 20;
  thresholds.backlog_unhealthy = 100000;
  eng->telemetry().set_thresholds(thresholds);

  // Background telemetry on a tight cadence, plus the live endpoint.
  eng->telemetry().set_interval_ms(5);
  ASSERT_TRUE(eng->telemetry().running());
  auto port = eng->StartHttpEndpoint(0);
  ASSERT_TRUE(port.ok()) << port.status().ToString();

  // Maintenance exists but is paused: the drain agent is off duty.
  eng->maintenance().set_interval_ms(5);
  eng->maintenance().Pause();

  // Concurrent read sessions run for the whole scenario — sampling must
  // coexist with queries (this is the TSan meat of the test).
  std::atomic<bool> stop_readers{false};
  std::atomic<uint64_t> reads{0};
  std::vector<std::thread> readers;
  for (int t = 0; t < 2; ++t) {
    readers.emplace_back([eng, &stop_readers, &reads] {
      sql::Session reader(eng);
      while (!stop_readers.load(std::memory_order_relaxed)) {
        auto r = reader.Execute("SELECT * FROM readings");
        EXPECT_TRUE(r.ok()) << r.status().ToString();
        reads.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  // Build the backlog: 30 expired tuples, well over backlog_degraded.
  for (int batch = 0; batch < 3; ++batch) {
    std::string insert = "INSERT INTO readings VALUES ";
    for (int i = 0; i < 10; ++i) {
      if (i > 0) insert += ", ";
      insert += "(" + std::to_string(batch * 10 + i + 1) + ", 0)";
    }
    MustExec(s, insert + " TTL 1");
    MustExec(s, "ADVANCE TIME 2");
  }

  // The sampler must observe the backlog and degrade health.
  ASSERT_TRUE(WaitFor([&] {
    return eng->telemetry().CurrentHealth().state ==
           engine::HealthState::kDegraded;
  })) << eng->telemetry().CurrentHealth().ToString();

  // Observed via SQL...
  auto health = MustExec(s, "SHOW HEALTH");
  EXPECT_NE(health.message.find("degraded"), std::string::npos)
      << health.message;
  EXPECT_NE(health.message.find("backlog"), std::string::npos);

  // ...and via a live fetch against the embedded endpoint. Degraded
  // still returns 200: only unhealthy flips the health checker.
  std::string error;
  auto healthz = obs::HttpGet("127.0.0.1", port.value(), "/healthz", &error);
  ASSERT_TRUE(healthz.has_value()) << error;
  EXPECT_EQ(healthz->status, 200);
  EXPECT_TRUE(obs::ValidateJson(healthz->body, &error)) << error;
  EXPECT_NE(healthz->body.find("degraded"), std::string::npos)
      << healthz->body;

  // The backlog series in the rings actually rose: its first retained
  // point is below its maximum.
  auto backlog_series =
      eng->telemetry().series().Series("expdb_telemetry_expired_backlog");
  ASSERT_TRUE(backlog_series.has_value());
  double max_seen = 0;
  for (const obs::TimeSeriesPoint& p : backlog_series->points) {
    if (p.value > max_seen) max_seen = p.value;
  }
  EXPECT_GE(max_seen, 20.0);

  // /metrics over the wire validates and carries the pressure gauges.
  auto metrics = obs::HttpGet("127.0.0.1", port.value(), "/metrics", &error);
  ASSERT_TRUE(metrics.has_value()) << error;
  EXPECT_TRUE(obs::ValidatePrometheusText(metrics->body, &error)) << error;
  EXPECT_NE(metrics->body.find("expdb_telemetry_expired_backlog"),
            std::string::npos);

  // Resume maintenance: the backlog drains, health recovers.
  eng->maintenance().Resume();
  ASSERT_TRUE(WaitFor([&] {
    return eng->telemetry().CurrentHealth().state ==
           engine::HealthState::kHealthy;
  })) << eng->telemetry().CurrentHealth().ToString();

  health = MustExec(s, "SHOW HEALTH");
  EXPECT_NE(health.message.find("healthy"), std::string::npos)
      << health.message;
  healthz = obs::HttpGet("127.0.0.1", port.value(), "/healthz", &error);
  ASSERT_TRUE(healthz.has_value()) << error;
  EXPECT_EQ(healthz->status, 200);
  EXPECT_NE(healthz->body.find("healthy"), std::string::npos);

  stop_readers.store(true, std::memory_order_relaxed);
  for (std::thread& th : readers) th.join();
  EXPECT_GT(reads.load(), 0u);

  // Reads stayed correct throughout: only the EXPIRE NEVER tuple is
  // visible at the end.
  auto final_read = MustExec(s, "SELECT * FROM readings");
  ASSERT_TRUE(final_read.relation.has_value());
  EXPECT_EQ(final_read.relation->CountUnexpiredAt(s.Now()), 1u);

  eng->StopHttpEndpoint();
  eng->telemetry().Stop();
  eng->maintenance().Stop();
}

TEST(TelemetryE2eTest, TimeseriesEndpointServesRingsLive) {
  engine::EngineOptions options;
  options.start_telemetry = true;
  options.telemetry_interval_ms = 5;
  auto eng = std::make_shared<engine::Engine>(options);
  sql::Session s(eng);
  MustExec(s, "CREATE TABLE t (x INT)");
  MustExec(s, "INSERT INTO t VALUES (1) TTL 100");

  auto port = eng->StartHttpEndpoint(0);
  ASSERT_TRUE(port.ok()) << port.status().ToString();
  ASSERT_TRUE(WaitFor([&] { return eng->telemetry().ticks() >= 2; }));

  std::string error;
  auto names = obs::HttpGet("127.0.0.1", port.value(), "/timeseries", &error);
  ASSERT_TRUE(names.has_value()) << error;
  EXPECT_TRUE(obs::ValidateJson(names->body, &error)) << error;
  EXPECT_NE(names->body.find("expdb_telemetry_live_tuples"),
            std::string::npos);

  auto series = obs::HttpGet(
      "127.0.0.1", port.value(),
      "/timeseries?metric=expdb_telemetry_live_tuples", &error);
  ASSERT_TRUE(series.has_value()) << error;
  EXPECT_EQ(series->status, 200);
  EXPECT_TRUE(obs::ValidateJson(series->body, &error)) << error;
  EXPECT_NE(series->body.find("\"points\""), std::string::npos);

  auto vars = obs::HttpGet("127.0.0.1", port.value(), "/vars", &error);
  ASSERT_TRUE(vars.has_value()) << error;
  EXPECT_TRUE(obs::ValidateJson(vars->body, &error)) << error;
}

}  // namespace
}  // namespace expdb
