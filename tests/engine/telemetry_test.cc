// TelemetryService tests: expiration-pressure gauges from the segmented
// storage, the rule-based health model and its transitions, the MONITOR
// SQL surface, SHOW HEALTH, and the HandleHttp router
// (docs/OBSERVABILITY.md §9).

#include "engine/telemetry.h"

#include <chrono>
#include <memory>
#include <string>
#include <thread>

#include <gtest/gtest.h>

#include "engine/engine.h"
#include "engine/maintenance.h"
#include "obs/log.h"
#include "obs/validate.h"
#include "sql/session.h"

namespace expdb {
namespace engine {
namespace {

sql::ExecResult MustExec(sql::Session& s, const std::string& stmt) {
  auto r = s.Execute(stmt);
  EXPECT_TRUE(r.ok()) << stmt << " -> " << r.status().ToString();
  return r.ok() ? r.MoveValue() : sql::ExecResult{};
}

/// An engine under lazy removal with automatic compaction disabled, so
/// expired tuples pile into a backlog only maintenance can drain —
/// exactly the pressure the telemetry gauges exist to expose.
std::shared_ptr<Engine> LazyEngine() {
  EngineOptions options;
  options.expiration.policy = RemovalPolicy::kLazy;
  options.expiration.lazy_compaction_threshold = 0;  // disables auto-compact
  return std::make_shared<Engine>(options);
}

TEST(TelemetryTest, SampleOncePopulatesPressureGauges) {
  auto eng = LazyEngine();
  sql::Session s(eng);
  MustExec(s, "CREATE TABLE t (x INT)");
  MustExec(s, "INSERT INTO t VALUES (1), (2), (3) TTL 5");
  MustExec(s, "INSERT INTO t VALUES (4) EXPIRE NEVER");
  MustExec(s, "ADVANCE TIME 10");

  TelemetryService& tel = eng->telemetry();
  tel.SampleOnce();
  EXPECT_EQ(tel.ticks(), 1u);

  obs::MetricsRegistry& r = obs::MetricsRegistry::Global();
  // 3 tuples expired at TTL 5 are still stored (lazy, no compaction).
  EXPECT_EQ(r.GetGauge("expdb_telemetry_expired_backlog")->value(), 3);
  EXPECT_EQ(r.GetGauge("expdb_telemetry_live_tuples")->value(), 1);
  // The registry sample runs in the same tick after the gauges update,
  // so the ring already retains a point for them.
  EXPECT_TRUE(tel.series().Series("expdb_telemetry_expired_backlog")
                  .has_value());

  // Maintenance drains the backlog; the next tick must see it.
  eng->maintenance().RunOnce();
  tel.SampleOnce();
  EXPECT_EQ(r.GetGauge("expdb_telemetry_expired_backlog")->value(), 0);
  EXPECT_EQ(r.GetGauge("expdb_telemetry_live_tuples")->value(), 1);
  EXPECT_GE(r.GetGauge("expdb_telemetry_maintenance_lag_ms")->value(), 0);
}

TEST(TelemetryTest, ExpirationHorizonTracksNextExpiry) {
  auto eng = LazyEngine();
  sql::Session s(eng);
  MustExec(s, "CREATE TABLE t (x INT)");
  MustExec(s, "INSERT INTO t VALUES (1) TTL 7");
  MustExec(s, "INSERT INTO t VALUES (2) TTL 20");

  TelemetryService& tel = eng->telemetry();
  tel.SampleOnce();
  obs::MetricsRegistry& r = obs::MetricsRegistry::Global();
  EXPECT_EQ(r.GetGauge("expdb_telemetry_expiration_horizon_ticks")->value(),
            7);

  // Nothing expiring: the horizon reports -1, not 0 (0 would read as
  // "expiring now").
  MustExec(s, "CREATE TABLE u (x INT)");
  MustExec(s, "ADVANCE TIME 25");
  eng->maintenance().RunOnce();
  tel.SampleOnce();
  EXPECT_EQ(r.GetGauge("expdb_telemetry_expiration_horizon_ticks")->value(),
            -1);
}

TEST(TelemetryTest, HealthDegradesOnBacklogAndRecovers) {
  auto eng = LazyEngine();
  sql::Session s(eng);
  MustExec(s, "CREATE TABLE t (x INT)");

  TelemetryService& tel = eng->telemetry();
  HealthThresholds t;
  t.backlog_degraded = 3;
  t.backlog_unhealthy = 1000;
  tel.set_thresholds(t);

  tel.SampleOnce();
  EXPECT_EQ(tel.CurrentHealth().state, HealthState::kHealthy);

  MustExec(s, "INSERT INTO t VALUES (1), (2), (3), (4) TTL 5");
  MustExec(s, "ADVANCE TIME 10");
  tel.SampleOnce();
  HealthReport report = tel.CurrentHealth();
  EXPECT_EQ(report.state, HealthState::kDegraded);
  ASSERT_FALSE(report.reasons.empty());
  EXPECT_NE(report.reasons[0].find("backlog"), std::string::npos);

  eng->maintenance().RunOnce();
  tel.SampleOnce();
  EXPECT_EQ(tel.CurrentHealth().state, HealthState::kHealthy);
}

TEST(TelemetryTest, HealthUnhealthyAboveUnhealthyThreshold) {
  auto eng = LazyEngine();
  sql::Session s(eng);
  MustExec(s, "CREATE TABLE t (x INT)");
  TelemetryService& tel = eng->telemetry();
  HealthThresholds t;
  t.backlog_degraded = 1;
  t.backlog_unhealthy = 2;
  tel.set_thresholds(t);
  MustExec(s, "INSERT INTO t VALUES (1), (2), (3) TTL 1");
  MustExec(s, "ADVANCE TIME 5");
  tel.SampleOnce();
  EXPECT_EQ(tel.CurrentHealth().state, HealthState::kUnhealthy);
}

TEST(TelemetryTest, RisingBacklogDegradesBeforeAbsoluteThreshold) {
  auto eng = LazyEngine();
  sql::Session s(eng);
  MustExec(s, "CREATE TABLE t (x INT)");
  TelemetryService& tel = eng->telemetry();
  HealthThresholds t;
  t.backlog_degraded = 1'000'000;  // never hit absolutely
  t.backlog_unhealthy = 2'000'000;
  t.backlog_growth_windows = 3;
  tel.set_thresholds(t);

  // Four samples with a strictly rising backlog: 1, 2, 3, 4.
  for (int i = 1; i <= 4; ++i) {
    MustExec(s, "INSERT INTO t VALUES (" + std::to_string(i) + ") TTL 1");
    MustExec(s, "ADVANCE TIME 2");
    tel.SampleOnce();
  }
  HealthReport report = tel.CurrentHealth();
  EXPECT_EQ(report.state, HealthState::kDegraded);
  ASSERT_FALSE(report.reasons.empty());
  EXPECT_NE(report.reasons[0].find("rising"), std::string::npos);
}

TEST(TelemetryTest, HealthTransitionEmitsEvent) {
  auto eng = LazyEngine();
  sql::Session s(eng);
  MustExec(s, "CREATE TABLE t (x INT)");
  TelemetryService& tel = eng->telemetry();
  HealthThresholds t;
  t.backlog_degraded = 1;
  tel.set_thresholds(t);

  obs::EventLog& log = obs::EventLog::Global();
  log.Clear();
  log.set_enabled(true);
  tel.SampleOnce();  // healthy -> healthy: no transition event

  MustExec(s, "INSERT INTO t VALUES (1) TTL 1");
  MustExec(s, "ADVANCE TIME 5");
  tel.SampleOnce();  // healthy -> degraded: transition event

  bool saw_transition = false;
  for (const obs::LogEvent& e : log.Snapshot()) {
    if (e.event == "health_transition") {
      saw_transition = true;
      EXPECT_EQ(e.severity, obs::LogSeverity::kWarn);
    }
  }
  EXPECT_TRUE(saw_transition);
  log.set_enabled(false);
  log.Clear();
}

TEST(TelemetryTest, CurrentHealthEvaluatesWhenNeverTicked) {
  auto eng = LazyEngine();
  sql::Session s(eng);
  MustExec(s, "CREATE TABLE t (x INT)");
  TelemetryService& tel = eng->telemetry();
  HealthThresholds t;
  t.backlog_degraded = 1;
  tel.set_thresholds(t);
  MustExec(s, "INSERT INTO t VALUES (1) TTL 1");
  MustExec(s, "ADVANCE TIME 5");
  // No tick has run; CurrentHealth must not answer "healthy" from thin
  // air but evaluate synchronously.
  EXPECT_EQ(tel.CurrentHealth().state, HealthState::kDegraded);
  EXPECT_GE(tel.ticks(), 1u);
}

TEST(TelemetryTest, BackgroundThreadSamplesOnCadence) {
  auto eng = LazyEngine();
  TelemetryService& tel = eng->telemetry();
  tel.set_interval_ms(2);
  EXPECT_TRUE(tel.running());
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (tel.ticks() < 3 && std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  EXPECT_GE(tel.ticks(), 3u);
  tel.Stop();
  EXPECT_FALSE(tel.running());
  tel.Stop();  // idempotent
}

TEST(TelemetryTest, MonitorSqlSurface) {
  auto eng = LazyEngine();
  sql::Session s(eng);
  MustExec(s, "CREATE TABLE t (x INT)");
  MustExec(s, "INSERT INTO t VALUES (1) TTL 5");
  eng->telemetry().SampleOnce();

  auto status = MustExec(s, "MONITOR STATUS");
  EXPECT_NE(status.message.find("telemetry:"), std::string::npos)
      << status.message;
  EXPECT_NE(status.message.find("health:"), std::string::npos);
  EXPECT_NE(status.message.find("event log:"), std::string::npos);

  auto thresholds = MustExec(s, "MONITOR THRESHOLDS");
  EXPECT_NE(thresholds.message.find("backlog_degraded"), std::string::npos);
  EXPECT_NE(thresholds.message.find("maintenance_lag_factor"),
            std::string::npos);

  auto history = MustExec(s, "MONITOR HISTORY expdb_telemetry_live_tuples");
  ASSERT_TRUE(history.relation.has_value());
  EXPECT_GE(history.relation->size(), 1u);

  auto missing = s.Execute("MONITOR HISTORY no_such_metric");
  ASSERT_FALSE(missing.ok());
  EXPECT_NE(missing.status().ToString().find("never sampled"),
            std::string::npos);

  auto bad = s.Execute("MONITOR FROBNICATE");
  ASSERT_FALSE(bad.ok());
  EXPECT_NE(bad.status().ToString().find("STATUS, HISTORY"),
            std::string::npos);
}

TEST(TelemetryTest, ShowHealthAndSetInterval) {
  auto eng = LazyEngine();
  sql::Session s(eng);
  MustExec(s, "CREATE TABLE t (x INT)");
  auto health = MustExec(s, "SHOW HEALTH");
  EXPECT_NE(health.message.find("healthy"), std::string::npos)
      << health.message;

  MustExec(s, "SET telemetry_interval_ms = 5");
  EXPECT_EQ(eng->telemetry().interval_ms(), 5);
  EXPECT_TRUE(eng->telemetry().running());
}

TEST(TelemetryTest, HandleHttpRoutes) {
  auto eng = LazyEngine();
  sql::Session s(eng);
  MustExec(s, "CREATE TABLE t (x INT)");
  MustExec(s, "INSERT INTO t VALUES (1) TTL 5");
  TelemetryService& tel = eng->telemetry();
  tel.SampleOnce();

  std::string error;
  obs::HttpResponse metrics = tel.HandleHttp({"GET", "/metrics", ""});
  EXPECT_EQ(metrics.status, 200);
  EXPECT_TRUE(obs::ValidatePrometheusText(metrics.body, &error)) << error;
  EXPECT_NE(metrics.body.find("expdb_telemetry_expired_backlog"),
            std::string::npos);

  obs::HttpResponse healthz = tel.HandleHttp({"GET", "/healthz", ""});
  EXPECT_EQ(healthz.status, 200);
  EXPECT_EQ(healthz.content_type, "application/json");
  EXPECT_TRUE(obs::ValidateJson(healthz.body, &error)) << error;
  EXPECT_NE(healthz.body.find("\"status\""), std::string::npos);

  obs::HttpResponse vars = tel.HandleHttp({"GET", "/vars", ""});
  EXPECT_TRUE(obs::ValidateJson(vars.body, &error)) << error;

  obs::HttpResponse names = tel.HandleHttp({"GET", "/timeseries", ""});
  EXPECT_EQ(names.status, 200);
  EXPECT_TRUE(obs::ValidateJson(names.body, &error)) << error;

  obs::HttpResponse series = tel.HandleHttp(
      {"GET", "/timeseries", "metric=expdb_telemetry_expired_backlog"});
  EXPECT_EQ(series.status, 200);
  EXPECT_TRUE(obs::ValidateJson(series.body, &error)) << error;

  obs::HttpResponse unknown =
      tel.HandleHttp({"GET", "/timeseries", "metric=nope"});
  EXPECT_EQ(unknown.status, 404);
  EXPECT_TRUE(obs::ValidateJson(unknown.body, &error)) << error;

  obs::HttpResponse lost = tel.HandleHttp({"GET", "/nope", ""});
  EXPECT_EQ(lost.status, 404);
}

TEST(TelemetryTest, UnhealthyHealthzReturns503) {
  auto eng = LazyEngine();
  sql::Session s(eng);
  MustExec(s, "CREATE TABLE t (x INT)");
  TelemetryService& tel = eng->telemetry();
  HealthThresholds t;
  t.backlog_degraded = 1;
  t.backlog_unhealthy = 2;
  tel.set_thresholds(t);
  MustExec(s, "INSERT INTO t VALUES (1), (2), (3) TTL 1");
  MustExec(s, "ADVANCE TIME 5");
  tel.SampleOnce();
  obs::HttpResponse healthz = tel.HandleHttp({"GET", "/healthz", ""});
  EXPECT_EQ(healthz.status, 503);
  EXPECT_NE(healthz.body.find("unhealthy"), std::string::npos);
}

TEST(TelemetryTest, EngineHttpEndpointLifecycle) {
  auto eng = LazyEngine();
  sql::Session s(eng);
  MustExec(s, "CREATE TABLE t (x INT)");

  EXPECT_EQ(eng->http_port(), 0);
  auto port = eng->StartHttpEndpoint(0);
  ASSERT_TRUE(port.ok()) << port.status().ToString();
  EXPECT_GT(port.value(), 0);
  EXPECT_EQ(eng->http_port(), port.value());
  // Idempotent while running.
  auto again = eng->StartHttpEndpoint(0);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again.value(), port.value());

  std::string error;
  auto resp = obs::HttpGet("127.0.0.1", port.value(), "/healthz", &error);
  ASSERT_TRUE(resp.has_value()) << error;
  EXPECT_EQ(resp->status, 200);

  eng->StopHttpEndpoint();
  EXPECT_EQ(eng->http_port(), 0);
}

TEST(TelemetryTest, SetHttpPortSqlSurface) {
  auto eng = LazyEngine();
  sql::Session s(eng);
  // SET http_port = 0 stops (no-op when never started).
  auto stop = MustExec(s, "SET http_port = 0");
  EXPECT_NE(stop.message.find("stopped"), std::string::npos);
  EXPECT_EQ(eng->http_port(), 0);

  auto bad = s.Execute("SET http_port = 99999");
  ASSERT_FALSE(bad.ok());

  auto unknown = s.Execute("SET no_such_setting = 1");
  ASSERT_FALSE(unknown.ok());
  EXPECT_NE(unknown.status().ToString().find("telemetry_interval_ms"),
            std::string::npos)
      << unknown.status().ToString();
  EXPECT_NE(unknown.status().ToString().find("http_port"), std::string::npos);
}

}  // namespace
}  // namespace engine
}  // namespace expdb
