// Multi-threaded engine stress tests (docs/CONCURRENCY.md).
//
// The correctness argument: this workload's writes are commutative
// (distinct-value inserts into shared tables), so whatever interleaving
// the scheduler picks, the final database state must be *set-identical*
// to a serial replay of the same statements. Readers run concurrently
// and assert internal consistency of every result they see; a DDL
// thread creates and drops scratch tables to exercise the exclusive
// path against live snapshots.

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <memory>
#include <numeric>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "engine/engine.h"
#include "engine/session_manager.h"
#include "sql/session.h"

namespace expdb {
namespace engine {
namespace {

sql::ExecResult MustExec(sql::Session& s, const std::string& stmt) {
  auto r = s.Execute(stmt);
  EXPECT_TRUE(r.ok()) << stmt << " -> " << r.status().ToString();
  return r.ok() ? r.MoveValue() : sql::ExecResult{};
}

/// The unexpired x-values of a `SELECT x FROM ...` result, sorted.
std::vector<int64_t> SortedValues(const sql::ExecResult& r) {
  std::vector<int64_t> out;
  if (!r.relation.has_value()) return out;
  for (const auto& entry : r.relation->entries()) {
    if (entry.texp > r.served_at) out.push_back(entry.tuple[0].AsInt64());
  }
  std::sort(out.begin(), out.end());
  return out;
}

// 8 threads — 4 writers, 2 readers, 1 DDL churner, 1 maintenance-style
// meta thread — against one engine; the final state must equal a serial
// replay of the writers' statements.
TEST(ConcurrencyStressTest, MixedWorkloadMatchesSerialReplay) {
  constexpr int kWriters = 4;
  constexpr int kOpsPerWriter = 64;

  auto eng = std::make_shared<Engine>();
  SessionManager manager(eng);
  {
    auto setup = manager.OpenSession();
    MustExec(*setup, "CREATE TABLE t (x INT)");
  }

  // Each writer's statement list, also replayed serially afterwards.
  std::vector<std::vector<std::string>> scripts(kWriters);
  for (int w = 0; w < kWriters; ++w) {
    for (int i = 0; i < kOpsPerWriter; ++i) {
      scripts[w].push_back("INSERT INTO t VALUES (" +
                           std::to_string(w * 1000 + i) + ")");
    }
  }

  std::atomic<bool> stop{false};
  std::vector<std::thread> threads;
  for (int w = 0; w < kWriters; ++w) {
    threads.emplace_back([&, w] {
      auto s = manager.OpenSession();
      for (const std::string& stmt : scripts[w]) MustExec(*s, stmt);
    });
  }
  for (int r = 0; r < 2; ++r) {
    threads.emplace_back([&] {
      auto s = manager.OpenSession();
      while (!stop.load(std::memory_order_acquire)) {
        // Any point-in-time read is fine; it must just never fail and
        // never contain a duplicate (all inserted values are distinct).
        auto res = MustExec(*s, "SELECT x FROM t");
        std::vector<int64_t> values = SortedValues(res);
        EXPECT_TRUE(std::adjacent_find(values.begin(), values.end()) ==
                    values.end());
      }
    });
  }
  threads.emplace_back([&] {  // DDL churn: exclusive lock vs snapshots
    auto s = manager.OpenSession();
    for (int i = 0; !stop.load(std::memory_order_acquire) && i < 64; ++i) {
      const std::string name = "scratch_" + std::to_string(i);
      MustExec(*s, "CREATE TABLE " + name + " (y INT)");
      MustExec(*s, "INSERT INTO " + name + " VALUES (1)");
      MustExec(*s, "SELECT * FROM " + name);
      MustExec(*s, "DROP TABLE " + name);
    }
  });
  threads.emplace_back([&] {  // meta thread: status reads + manual passes
    auto s = manager.OpenSession();
    while (!stop.load(std::memory_order_acquire)) {
      MustExec(*s, "MAINTENANCE STATUS");
      MustExec(*s, "MAINTENANCE RUN");
    }
  });

  for (int w = 0; w < kWriters; ++w) threads[w].join();
  stop.store(true, std::memory_order_release);
  for (size_t i = kWriters; i < threads.size(); ++i) threads[i].join();

  // Serial replay into a fresh private engine.
  sql::Session serial;
  MustExec(serial, "CREATE TABLE t (x INT)");
  for (const auto& script : scripts) {
    for (const std::string& stmt : script) MustExec(serial, stmt);
  }

  auto concurrent_session = manager.OpenSession();
  std::vector<int64_t> concurrent =
      SortedValues(MustExec(*concurrent_session, "SELECT x FROM t"));
  std::vector<int64_t> replayed =
      SortedValues(MustExec(serial, "SELECT x FROM t"));
  ASSERT_EQ(concurrent.size(),
            static_cast<size_t>(kWriters * kOpsPerWriter));
  EXPECT_EQ(concurrent, replayed);
}

// Regression for torn reads through the shared result cache: one writer
// appends 1..N in order while readers repeatedly SELECT through the
// cache. Every observed result must be an exact prefix {1..k} — a
// result assembled half-before/half-after an insert, or a cache entry
// filled from a torn scan, would break the prefix property.
TEST(ConcurrencyStressTest, ResultCacheNeverServesTornReads) {
  constexpr int64_t kRows = 256;

  auto eng = std::make_shared<Engine>();
  SessionManager manager(eng);
  {
    auto setup = manager.OpenSession();
    MustExec(*setup, "CREATE TABLE t (x INT)");
    MustExec(*setup, "SET result_cache_bytes = 1048576");
  }

  std::atomic<bool> done{false};
  std::vector<std::thread> readers;
  for (int r = 0; r < 3; ++r) {
    readers.emplace_back([&] {
      auto s = manager.OpenSession();
      while (!done.load(std::memory_order_acquire)) {
        std::vector<int64_t> values =
            SortedValues(MustExec(*s, "SELECT x FROM t"));
        // Prefix property: k values seen => they are exactly 1..k.
        const auto k = static_cast<int64_t>(values.size());
        const int64_t sum =
            std::accumulate(values.begin(), values.end(), int64_t{0});
        EXPECT_EQ(sum, k * (k + 1) / 2)
            << "torn read: " << k << " rows whose sum is " << sum;
        if (k > 0) {
          EXPECT_EQ(values.back(), k);
        }
      }
    });
  }

  {
    auto writer = manager.OpenSession();
    for (int64_t i = 1; i <= kRows; ++i) {
      MustExec(*writer, "INSERT INTO t VALUES (" + std::to_string(i) + ")");
    }
  }
  done.store(true, std::memory_order_release);
  for (auto& t : readers) t.join();

  auto check = manager.OpenSession();
  EXPECT_EQ(SortedValues(MustExec(*check, "SELECT x FROM t")).size(),
            static_cast<size_t>(kRows));
}

}  // namespace
}  // namespace engine
}  // namespace expdb
