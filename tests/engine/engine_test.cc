// Engine facade tests: epoch-versioned snapshots, shared caches and
// prepared statements across sessions, write-wait accounting, and the
// SessionManager (docs/CONCURRENCY.md).

#include "engine/engine.h"

#include <chrono>
#include <memory>
#include <optional>
#include <thread>

#include <gtest/gtest.h>

#include "engine/session_manager.h"
#include "sql/session.h"

namespace expdb {
namespace engine {
namespace {

sql::ExecResult MustExec(sql::Session& s, const std::string& stmt) {
  auto r = s.Execute(stmt);
  EXPECT_TRUE(r.ok()) << stmt << " -> " << r.status().ToString();
  return r.ok() ? r.MoveValue() : sql::ExecResult{};
}

size_t RowsAt(const sql::ExecResult& r) {
  EXPECT_TRUE(r.relation.has_value());
  return r.relation.has_value() ? r.relation->CountUnexpiredAt(r.served_at)
                                : 0;
}

TEST(EngineTest, DmlBumpsTheCatalogEpoch) {
  sql::Session s;
  MustExec(s, "CREATE TABLE t (x INT)");
  const uint64_t before = s.db().epoch();
  MustExec(s, "INSERT INTO t VALUES (1)");
  const uint64_t after_insert = s.db().epoch();
  EXPECT_GT(after_insert, before);
  MustExec(s, "DELETE FROM t WHERE x = 1");
  EXPECT_GT(s.db().epoch(), after_insert);
}

TEST(EngineTest, SnapshotPinsTheObservedEpoch) {
  auto eng = std::make_shared<Engine>();
  sql::Session s(eng);
  MustExec(s, "CREATE TABLE t (x INT)");
  MustExec(s, "INSERT INTO t VALUES (1)");

  Engine::Snapshot snap = eng->OpenSnapshot({"t"});
  EXPECT_EQ(snap.epoch(), eng->db().epoch());
  EXPECT_GE(eng->snapshots_opened(), 1u);
}

TEST(EngineTest, SessionsShareOneDatabase) {
  auto eng = std::make_shared<Engine>();
  sql::Session a(eng);
  sql::Session b(eng);
  MustExec(a, "CREATE TABLE t (x INT)");
  MustExec(a, "INSERT INTO t VALUES (1), (2), (3)");
  EXPECT_EQ(RowsAt(MustExec(b, "SELECT * FROM t")), 3u);
}

TEST(EngineTest, PreparedStatementsAreSharedAcrossSessions) {
  auto eng = std::make_shared<Engine>();
  sql::Session a(eng);
  sql::Session b(eng);
  MustExec(a, "CREATE TABLE t (x INT)");
  MustExec(a, "INSERT INTO t VALUES (1), (2), (3)");
  MustExec(a, "PREPARE pt AS SELECT * FROM t WHERE x = $1");
  EXPECT_EQ(eng->prepared_count(), 1u);
  // Session b never prepared anything, yet can execute a's statement.
  EXPECT_EQ(RowsAt(MustExec(b, "EXECUTE pt (2)")), 1u);
}

TEST(EngineTest, DdlDropsPreparedStatementsReadingTheTable) {
  auto eng = std::make_shared<Engine>();
  sql::Session s(eng);
  MustExec(s, "CREATE TABLE t (x INT)");
  MustExec(s, "PREPARE pt AS SELECT * FROM t");
  ASSERT_EQ(eng->prepared_count(), 1u);
  MustExec(s, "DROP TABLE t");
  EXPECT_EQ(eng->prepared_count(), 0u);
}

TEST(EngineTest, StatementCacheIsSharedAcrossSessions) {
  auto eng = std::make_shared<Engine>();
  sql::Session a(eng);
  sql::Session b(eng);
  MustExec(a, "CREATE TABLE t (x INT)");
  MustExec(a, "INSERT INTO t VALUES (1), (2)");
  // a's normalized SELECT populates the shared skeleton cache; the same
  // shape from b must hit it.
  MustExec(a, "SELECT * FROM t WHERE x = 1");
  const uint64_t hits_before = eng->stmt_cache().hits();
  MustExec(b, "SELECT * FROM t WHERE x = 2");
  EXPECT_GT(eng->stmt_cache().hits(), hits_before);
}

TEST(EngineTest, ContendedWritersCountWriteWaits) {
  auto eng = std::make_shared<Engine>();
  sql::Session s(eng);
  MustExec(s, "CREATE TABLE t (x INT)");

  std::optional<Engine::Snapshot> snap = eng->OpenSnapshot({"t"});
  const uint64_t waits_before = eng->write_waits();
  std::thread writer([&] {
    Engine::WriteGuard guard = eng->LockWrite("t");  // blocks on the snapshot
  });
  // The writer's try_lock fails while the snapshot holds the reader
  // lock; the contended path bumps the counter before blocking.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (eng->write_waits() == waits_before &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_GT(eng->write_waits(), waits_before);
  snap.reset();  // release the readers; the writer proceeds
  writer.join();
}

TEST(SessionManagerTest, TracksLiveSessionsWeakly) {
  SessionManager manager(std::make_shared<Engine>());
  auto a = manager.OpenSession();
  auto b = manager.OpenSession();
  EXPECT_EQ(manager.active_sessions(), 2u);
  EXPECT_EQ(manager.opened_total(), 2u);

  MustExec(*a, "CREATE TABLE t (x INT)");
  MustExec(*b, "INSERT INTO t VALUES (7)");
  EXPECT_EQ(RowsAt(MustExec(*a, "SELECT * FROM t")), 1u);

  b.reset();  // dropping the shared_ptr retires the session
  EXPECT_EQ(manager.active_sessions(), 1u);
  EXPECT_EQ(manager.opened_total(), 2u);
}

}  // namespace
}  // namespace engine
}  // namespace expdb
