// MaintenanceService tests: synchronous passes, the background thread as
// the sole agent of physical removal under lazy expiration, and the
// MAINTENANCE SQL surface (docs/CONCURRENCY.md).

#include "engine/maintenance.h"

#include <chrono>
#include <memory>
#include <string>
#include <thread>

#include <gtest/gtest.h>

#include "engine/engine.h"
#include "sql/session.h"

namespace expdb {
namespace engine {
namespace {

sql::ExecResult MustExec(sql::Session& s, const std::string& stmt) {
  auto r = s.Execute(stmt);
  EXPECT_TRUE(r.ok()) << stmt << " -> " << r.status().ToString();
  return r.ok() ? r.MoveValue() : sql::ExecResult{};
}

/// An engine under lazy removal with automatic compaction disabled: only
/// an explicit Compact — i.e. a maintenance pass — physically removes.
std::shared_ptr<Engine> LazyEngine() {
  EngineOptions options;
  options.expiration.policy = RemovalPolicy::kLazy;
  options.expiration.lazy_compaction_threshold = 0;  // disables auto-compact
  return std::make_shared<Engine>(options);
}

/// Physical tuple count of `name`, read race-free under a snapshot.
size_t PhysicalSize(Engine& eng, const std::string& name) {
  Engine::Snapshot snap = eng.OpenSnapshot({name});
  auto rel = eng.db().GetRelation(name);
  return rel.ok() ? rel.value()->size() : 0;
}

TEST(MaintenanceTest, RunOnceCompactsLazilyExpiredTuples) {
  auto eng = LazyEngine();
  sql::Session s(eng);
  MustExec(s, "CREATE TABLE t (x INT)");
  MustExec(s, "INSERT INTO t VALUES (1), (2), (3) TTL 5");
  MustExec(s, "INSERT INTO t VALUES (4) EXPIRE NEVER");
  MustExec(s, "ADVANCE TIME 10");

  // Lazy policy with auto-compaction disabled: the expired tuples are
  // invisible to queries but still physically stored.
  EXPECT_EQ(PhysicalSize(*eng, "t"), 4u);

  EXPECT_EQ(eng->maintenance().RunOnce(), 3u);
  EXPECT_EQ(PhysicalSize(*eng, "t"), 1u);
  EXPECT_EQ(eng->maintenance().tuples_removed(), 3u);
  EXPECT_GE(eng->maintenance().runs(), 1u);
}

// The acceptance-criteria scenario: a session inserts expiring tuples
// and advances time; no session ever calls RemoveExpired/Compact, yet a
// query loop observes the expired tuples physically disappear because
// the background MaintenanceService removes them.
TEST(MaintenanceTest, BackgroundThreadAloneRemovesExpiredTuples) {
  auto eng = LazyEngine();
  sql::Session s(eng);
  MustExec(s, "CREATE TABLE t (x INT)");
  MustExec(s, "INSERT INTO t VALUES (1), (2), (3) TTL 5");
  MustExec(s, "INSERT INTO t VALUES (4) EXPIRE NEVER");
  MustExec(s, "ADVANCE TIME 10");
  ASSERT_EQ(PhysicalSize(*eng, "t"), 4u);

  // Configuring a cadence starts the service.
  MustExec(s, "SET maintenance_interval_ms = 2");
  EXPECT_TRUE(eng->maintenance().running());

  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  size_t physical = PhysicalSize(*eng, "t");
  while (physical != 1 && std::chrono::steady_clock::now() < deadline) {
    // The query loop: reads stay correct throughout (expired tuples are
    // invisible whether or not they are still stored).
    EXPECT_EQ(MustExec(s, "SELECT * FROM t")
                  .relation->CountUnexpiredAt(s.Now()),
              1u);
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    physical = PhysicalSize(*eng, "t");
  }
  EXPECT_EQ(physical, 1u);
  EXPECT_EQ(eng->maintenance().tuples_removed(), 3u);

  eng->maintenance().Stop();
  EXPECT_FALSE(eng->maintenance().running());
}

TEST(MaintenanceTest, PauseSkipsPassesUntilResume) {
  auto eng = LazyEngine();
  sql::Session s(eng);
  MustExec(s, "CREATE TABLE t (x INT)");
  eng->maintenance().set_interval_ms(1);
  ASSERT_TRUE(eng->maintenance().running());

  eng->maintenance().Pause();
  EXPECT_TRUE(eng->maintenance().paused());
  const uint64_t runs_at_pause = eng->maintenance().runs();

  MustExec(s, "INSERT INTO t VALUES (1) TTL 2");
  MustExec(s, "ADVANCE TIME 5");
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  // Paused: no new passes, the expired tuple stays stored.
  EXPECT_EQ(eng->maintenance().runs(), runs_at_pause);
  EXPECT_EQ(PhysicalSize(*eng, "t"), 1u);

  eng->maintenance().Resume();
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (PhysicalSize(*eng, "t") != 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  EXPECT_EQ(PhysicalSize(*eng, "t"), 0u);
}

TEST(MaintenanceTest, SqlSurface) {
  auto eng = LazyEngine();
  sql::Session s(eng);
  MustExec(s, "CREATE TABLE t (x INT)");
  MustExec(s, "INSERT INTO t VALUES (1), (2) TTL 5");
  MustExec(s, "ADVANCE TIME 10");

  auto status = MustExec(s, "MAINTENANCE STATUS");
  EXPECT_NE(status.message.find("maintenance: stopped"), std::string::npos)
      << status.message;

  auto run = MustExec(s, "MAINTENANCE RUN");
  EXPECT_NE(run.message.find("removed 2 tuples"), std::string::npos)
      << run.message;

  MustExec(s, "MAINTENANCE RESUME");
  EXPECT_TRUE(eng->maintenance().running());
  status = MustExec(s, "MAINTENANCE STATUS");
  EXPECT_NE(status.message.find("running"), std::string::npos)
      << status.message;

  MustExec(s, "MAINTENANCE PAUSE");
  EXPECT_TRUE(eng->maintenance().paused());
  status = MustExec(s, "MAINTENANCE STATUS");
  EXPECT_NE(status.message.find("paused"), std::string::npos)
      << status.message;

  auto bad = s.Execute("MAINTENANCE FROBNICATE");
  ASSERT_FALSE(bad.ok());
  EXPECT_NE(bad.status().ToString().find("STATUS, PAUSE, RESUME, or RUN"),
            std::string::npos)
      << bad.status().ToString();
}

TEST(MaintenanceTest, SetIntervalClampsAndReconfigures) {
  auto eng = LazyEngine();
  sql::Session s(eng);
  MustExec(s, "SET maintenance_interval_ms = 7");
  EXPECT_EQ(eng->maintenance().interval_ms(), 7);
  EXPECT_TRUE(eng->maintenance().running());
  // 0 is clamped to the 1ms minimum rather than busy-spinning.
  MustExec(s, "SET maintenance_interval_ms = 0");
  EXPECT_EQ(eng->maintenance().interval_ms(), 1);
}

}  // namespace
}  // namespace engine
}  // namespace expdb
