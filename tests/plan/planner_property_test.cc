// Planner optimizations are invisible in the results.
//
// The expiration algebra's results are sets, so every planner decision —
// constant folding, constant-false elision, expired-subtree pruning,
// build-side selection, common-subtree reuse, morsel parallelism — must
// produce exactly the same MaterializedResult (tuples, per-tuple texps,
// texp(e), validity) as the unoptimized plan, at every τ. The Sec. 3.1
// rewrite pass is held to the paper's weaker-but-precise contract:
// identical contents and per-tuple texps at every instant, texp(e) only
// ever grows. Swept over random databases and expression shapes, checked
// against the naive reference evaluator as an independent anchor.

#include <algorithm>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/eval.h"
#include "plan/executor.h"
#include "plan/plan.h"
#include "plan/planner.h"
#include "testing/workload.h"
#include "tests/support/reference_eval.h"

namespace expdb {
namespace {

using plan::ExecutePlan;
using plan::ExecutePlanDifferenceRoot;
using plan::PhysicalPlanPtr;
using plan::Planner;
using plan::PlannerOptions;

std::vector<Relation::Entry> SortedEntries(const Relation& r) {
  std::vector<Relation::Entry> out = r.entries();
  std::sort(out.begin(), out.end(),
            [](const Relation::Entry& a, const Relation::Entry& b) {
              if (!(a.tuple == b.tuple)) return a.tuple < b.tuple;
              return a.texp < b.texp;
            });
  return out;
}

void ExpectSameEntries(const Relation& expected, const Relation& actual,
                       const std::string& context) {
  ASSERT_EQ(expected.size(), actual.size()) << context;
  const auto lhs = SortedEntries(expected);
  const auto rhs = SortedEntries(actual);
  for (size_t i = 0; i < lhs.size(); ++i) {
    ASSERT_TRUE(lhs[i].tuple == rhs[i].tuple)
        << context << "\ntuple #" << i << ": " << lhs[i].tuple.ToString()
        << " vs " << rhs[i].tuple.ToString();
    ASSERT_EQ(lhs[i].texp, rhs[i].texp)
        << context << "\ntexp of " << lhs[i].tuple.ToString();
  }
}

void ExpectIdentical(const MaterializedResult& expected,
                     const MaterializedResult& actual,
                     const std::string& context) {
  EXPECT_EQ(expected.texp, actual.texp) << context;
  EXPECT_EQ(expected.materialized_at, actual.materialized_at) << context;
  EXPECT_EQ(expected.validity, actual.validity) << context;
  ExpectSameEntries(expected.relation, actual.relation, context);
}

/// Every optimization switched off: the plan is a 1:1 physical transcript
/// of the logical expression.
PlannerOptions BaselineOptions(const EvalOptions& eval) {
  PlannerOptions opts;
  opts.fold_constants = false;
  opts.prune_expired = false;
  opts.choose_build_side = false;
  opts.detect_common_subtrees = false;
  opts.eval = eval;
  return opts;
}

/// A handful of sweep instants: every distinct expiration boundary plus
/// time zero and a point past the last one (everything expired).
std::vector<Timestamp> SweepTimes(const Database& db) {
  std::vector<Timestamp> times = testing::InterestingTimes(db);
  std::vector<Timestamp> out = {Timestamp(0)};
  const size_t stride = std::max<size_t>(1, times.size() / 5);
  for (size_t i = 0; i < times.size(); i += stride) out.push_back(times[i]);
  if (!times.empty()) out.push_back(Timestamp(times.back().ticks() + 1));
  return out;
}

struct Config {
  uint64_t seed;
  size_t num_tuples;
  size_t max_depth;
  int64_t value_domain;
  AggregateExpirationMode mode;
  bool compute_validity;
};

class PlannerPropertyTest : public ::testing::TestWithParam<Config> {
 protected:
  void Fill(Database* db, Rng& rng) {
    const Config& cfg = GetParam();
    testing::RelationSpec rspec;
    rspec.num_tuples = cfg.num_tuples;
    rspec.arity = 2;
    rspec.value_domain = cfg.value_domain;
    rspec.ttl_min = 1;
    rspec.ttl_max = 30;
    rspec.infinite_fraction = 0.1;
    ASSERT_TRUE(testing::FillDatabase(db, rng, rspec, 3).ok());
  }

  EvalOptions Eval() const {
    EvalOptions eval;
    eval.aggregate_mode = GetParam().mode;
    eval.compute_validity = GetParam().compute_validity;
    return eval;
  }
};

TEST_P(PlannerPropertyTest, OptimizedPlanMatchesBaselinePlan) {
  Rng rng(GetParam().seed);
  Database db;
  Fill(&db, rng);

  testing::ExpressionSpec espec;
  espec.max_depth = GetParam().max_depth;
  espec.allow_nonmonotonic = true;

  const EvalOptions eval = Eval();
  EvalOptions par_eval = eval;
  par_eval.parallelism = 4;
  par_eval.parallel_min_morsel = 1;

  const std::vector<Timestamp> taus = SweepTimes(db);
  for (int trial = 0; trial < 6; ++trial) {
    ExpressionPtr e = testing::MakeRandomExpression(rng, db, espec);
    auto baseline_plan = Planner::Plan(e, db, BaselineOptions(eval));
    ASSERT_TRUE(baseline_plan.ok())
        << baseline_plan.status().ToString() << "\n" << e->ToString();
    PlannerOptions on = PlannerOptions{};
    on.eval = eval;
    auto optimized_plan = Planner::Plan(e, db, on);
    ASSERT_TRUE(optimized_plan.ok()) << optimized_plan.status().ToString();

    for (const Timestamp& tau : taus) {
      const std::string context =
          "expression: " + e->ToString() +
          "\ntau: " + std::to_string(tau.ticks());
      auto baseline = ExecutePlan(**baseline_plan, db, tau, eval);
      ASSERT_TRUE(baseline.ok()) << baseline.status().ToString() << "\n"
                                 << context;
      auto optimized = ExecutePlan(**optimized_plan, db, tau, eval);
      ASSERT_TRUE(optimized.ok()) << optimized.status().ToString();
      ExpectIdentical(*baseline, *optimized, context + "\n(serial)");
      // The same cached optimized plan, executed morsel-parallel.
      auto parallel = ExecutePlan(**optimized_plan, db, tau, par_eval);
      ASSERT_TRUE(parallel.ok()) << parallel.status().ToString();
      ExpectIdentical(*baseline, *parallel, context + "\n(parallel)");
    }
  }
}

TEST_P(PlannerPropertyTest, RewrittenPlanPreservesContentsAndGrowsTexp) {
  Rng rng(GetParam().seed * 31 + 7);
  Database db;
  Fill(&db, rng);

  testing::ExpressionSpec espec;
  espec.max_depth = GetParam().max_depth;
  espec.allow_nonmonotonic = true;

  const EvalOptions eval = Eval();
  const std::vector<Timestamp> taus = SweepTimes(db);
  for (int trial = 0; trial < 6; ++trial) {
    ExpressionPtr e = testing::MakeRandomExpression(rng, db, espec);
    PlannerOptions plain;
    plain.eval = eval;
    PlannerOptions rewrite = plain;
    rewrite.apply_rewrites = true;
    auto plain_plan = Planner::Plan(e, db, plain);
    ASSERT_TRUE(plain_plan.ok()) << plain_plan.status().ToString();
    auto rewritten_plan = Planner::Plan(e, db, rewrite);
    ASSERT_TRUE(rewritten_plan.ok()) << rewritten_plan.status().ToString();

    for (const Timestamp& tau : taus) {
      const std::string context =
          "expression: " + e->ToString() + "\nrewritten: " +
          (*rewritten_plan)->planned_expr()->ToString() +
          "\ntau: " + std::to_string(tau.ticks());
      auto plain_result = ExecutePlan(**plain_plan, db, tau, eval);
      ASSERT_TRUE(plain_result.ok()) << plain_result.status().ToString();
      auto rewritten_result = ExecutePlan(**rewritten_plan, db, tau, eval);
      ASSERT_TRUE(rewritten_result.ok())
          << rewritten_result.status().ToString();
      // Contents and per-tuple texps are preserved exactly...
      ExpectSameEntries(plain_result->relation, rewritten_result->relation,
                        context);
      // ...while the expression-level expiration time can only grow
      // (Sec. 3.1: the rewrites postpone recomputation).
      EXPECT_GE(rewritten_result->texp, plain_result->texp) << context;
    }
  }
}

TEST_P(PlannerPropertyTest, MatchesTheNaiveReferenceEvaluator) {
  // The reference evaluator implements Eq. (8) aggregation literally, so
  // anchor the comparison in conservative mode.
  Rng rng(GetParam().seed * 131 + 17);
  Database db;
  Fill(&db, rng);

  testing::ExpressionSpec espec;
  espec.max_depth = GetParam().max_depth;
  espec.allow_nonmonotonic = true;

  EvalOptions eval;
  eval.aggregate_mode = AggregateExpirationMode::kConservative;

  const std::vector<Timestamp> taus = SweepTimes(db);
  for (int trial = 0; trial < 4; ++trial) {
    ExpressionPtr e = testing::MakeRandomExpression(rng, db, espec);
    PlannerOptions on;
    on.eval = eval;
    auto plan = Planner::Plan(e, db, on);
    ASSERT_TRUE(plan.ok()) << plan.status().ToString();
    for (const Timestamp& tau : taus) {
      auto reference = testing::ReferenceEval(e, db, tau);
      ASSERT_TRUE(reference.ok()) << reference.status().ToString();
      auto result = ExecutePlan(**plan, db, tau, eval);
      ASSERT_TRUE(result.ok()) << result.status().ToString();
      ExpectSameEntries(*reference, result->relation,
                        "expression: " + e->ToString() +
                            "\ntau: " + std::to_string(tau.ticks()));
    }
  }
}

TEST_P(PlannerPropertyTest, DifferenceRootHelperIsOptimizationInvariant) {
  Rng rng(GetParam().seed * 977 + 5);
  Database db;
  const Config& cfg = GetParam();
  testing::RelationSpec rspec;
  rspec.num_tuples = cfg.num_tuples;
  rspec.arity = 2;
  // A small domain forces common tuples, hence criticals in the helper.
  rspec.value_domain = std::min<int64_t>(cfg.value_domain, 6);
  rspec.ttl_min = 1;
  rspec.ttl_max = 30;
  rspec.infinite_fraction = 0.1;
  ASSERT_TRUE(testing::FillDatabase(&db, rng, rspec, 3).ok());

  const EvalOptions eval = Eval();
  const std::vector<ExpressionPtr> roots = {
      Expression::MakeDifference(Expression::MakeBase("R0"),
                                 Expression::MakeBase("R1")),
      Expression::MakeDifference(
          Expression::MakeUnion(Expression::MakeBase("R0"),
                                Expression::MakeBase("R1")),
          Expression::MakeBase("R2")),
  };

  for (const ExpressionPtr& e : roots) {
    auto baseline_plan = Planner::Plan(e, db, BaselineOptions(eval));
    ASSERT_TRUE(baseline_plan.ok()) << baseline_plan.status().ToString();
    PlannerOptions on;
    on.eval = eval;
    auto optimized_plan = Planner::Plan(e, db, on);
    ASSERT_TRUE(optimized_plan.ok()) << optimized_plan.status().ToString();

    for (const Timestamp& tau : SweepTimes(db)) {
      const std::string context = "difference root: " + e->ToString() +
                                  "\ntau: " +
                                  std::to_string(tau.ticks());
      auto baseline = ExecutePlanDifferenceRoot(**baseline_plan, db, tau,
                                                eval);
      ASSERT_TRUE(baseline.ok()) << baseline.status().ToString();
      auto optimized = ExecutePlanDifferenceRoot(**optimized_plan, db, tau,
                                                 eval);
      ASSERT_TRUE(optimized.ok()) << optimized.status().ToString();
      ExpectIdentical(baseline->result, optimized->result, context);
      EXPECT_EQ(baseline->common_count, optimized->common_count) << context;
      EXPECT_EQ(baseline->children_texp, optimized->children_texp)
          << context;
      ASSERT_EQ(baseline->helper.size(), optimized->helper.size())
          << context;
      for (size_t i = 0; i < baseline->helper.size(); ++i) {
        EXPECT_TRUE(baseline->helper[i] == optimized->helper[i])
            << context << "\nhelper entry #" << i;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, PlannerPropertyTest,
    ::testing::Values(
        Config{201, 60, 3, 6, AggregateExpirationMode::kConservative, false},
        Config{202, 60, 4, 4, AggregateExpirationMode::kContributingSet,
               true},
        Config{203, 120, 3, 12, AggregateExpirationMode::kExact, false},
        Config{204, 40, 5, 3, AggregateExpirationMode::kContributingSet,
               false},
        Config{205, 200, 2, 25, AggregateExpirationMode::kExact, true}),
    [](const ::testing::TestParamInfo<Config>& info) {
      return "seed" + std::to_string(info.param.seed) + "_" +
             std::string(AggregateExpirationModeToString(info.param.mode)
                             .substr(0, 4)) +
             "_n" + std::to_string(info.param.num_tuples) +
             (info.param.compute_validity ? "_validity" : "");
    });

}  // namespace
}  // namespace expdb
