// Planner structure and annotation semantics: node ids, plan-time schema
// validation (interpreter-compatible status codes), constant folding,
// constant-false elision, expired-subtree pruning, build-side selection,
// and common-subtree detection — each checked both structurally on the
// PhysicalPlan and behaviorally through ExecutePlan.

#include <gtest/gtest.h>

#include "core/eval.h"
#include "core/expression.h"
#include "obs/metrics.h"
#include "plan/executor.h"
#include "plan/plan.h"
#include "plan/planner.h"

namespace expdb {
namespace {

using namespace algebra;  // NOLINT
using plan::PhysicalPlanPtr;
using plan::Planner;
using plan::PlannerOptions;
using plan::PlanNode;
using plan::PlanOp;
using plan::PlanProfile;

Timestamp T(int64_t t) { return Timestamp(t); }

double CounterValue(const char* name) {
  return obs::MetricsRegistry::Global().GetCounter(name)->value();
}

class PlannerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Relation* r = db_.CreateRelation(
                         "R", Schema({{"a", ValueType::kInt64},
                                      {"b", ValueType::kInt64}}))
                      .value();
    ASSERT_TRUE(r->Insert(Tuple{1, 10}, T(5)).ok());
    ASSERT_TRUE(r->Insert(Tuple{2, 20}, T(10)).ok());
    ASSERT_TRUE(r->Insert(Tuple{3, 30}, Timestamp::Infinity()).ok());

    Relation* s = db_.CreateRelation(
                         "S", Schema({{"x", ValueType::kInt64},
                                      {"y", ValueType::kInt64}}))
                      .value();
    ASSERT_TRUE(s->Insert(Tuple{1, 10}, T(8)).ok());

    // A relation whose every tuple expires by time 4.
    Relation* dead = db_.CreateRelation(
                            "Dead", Schema({{"a", ValueType::kInt64},
                                            {"b", ValueType::kInt64}}))
                         .value();
    ASSERT_TRUE(dead->Insert(Tuple{7, 70}, T(3)).ok());
    ASSERT_TRUE(dead->Insert(Tuple{8, 80}, T(4)).ok());
  }

  PhysicalPlanPtr Plan(const ExpressionPtr& e, PlannerOptions opts = {}) {
    auto p = Planner::Plan(e, db_, opts);
    EXPECT_TRUE(p.ok()) << p.status().ToString();
    return p.MoveValue();
  }

  Database db_;
};

TEST_F(PlannerTest, AssignsPreorderIdsAndOps) {
  auto e = Select(Product(Base("R"), Base("S")),
                  Predicate::ColumnsEqual(0, 2));
  // Folding leaves the predicate; the tree is Filter(CrossProduct(R, S)).
  PhysicalPlanPtr p = Plan(e);
  ASSERT_EQ(p->node_count(), 4u);
  const PlanNode& root = p->root();
  EXPECT_EQ(root.id, 1u);
  EXPECT_EQ(root.op, PlanOp::kFilter);
  ASSERT_NE(root.left, nullptr);
  EXPECT_EQ(root.left->id, 2u);
  EXPECT_EQ(root.left->op, PlanOp::kCrossProduct);
  EXPECT_EQ(root.left->left->id, 3u);
  EXPECT_EQ(root.left->left->op, PlanOp::kScan);
  EXPECT_EQ(root.left->right->id, 4u);
  EXPECT_EQ(root.left->right->op, PlanOp::kScan);
  // Scan cardinalities come from the catalog.
  EXPECT_DOUBLE_EQ(root.left->left->est_rows, 3.0);
  EXPECT_DOUBLE_EQ(root.left->right->est_rows, 1.0);
  EXPECT_DOUBLE_EQ(root.left->est_rows, 3.0);
}

TEST_F(PlannerTest, PlanTimeValidationMatchesInterpreterCodes) {
  // Unknown relation -> NotFound at plan time.
  auto missing = Planner::Plan(Base("NoSuch"), db_);
  ASSERT_FALSE(missing.ok());
  EXPECT_EQ(missing.status().code(), StatusCode::kNotFound);

  // Out-of-range predicate column -> the interpreter's validation error.
  auto bad = Planner::Plan(
      Select(Base("R"), Predicate::ColumnEquals(7, Value(int64_t{1}))),
      db_);
  ASSERT_FALSE(bad.ok());

  // Union-incompatible arms -> TypeError, as Evaluate raised.
  auto r3 = db_.CreateRelation("W", Schema({{"a", ValueType::kInt64}}));
  ASSERT_TRUE(r3.ok());
  auto incompatible = Planner::Plan(Union(Base("R"), Base("W")), db_);
  ASSERT_FALSE(incompatible.ok());
  EXPECT_EQ(incompatible.status().code(), StatusCode::kTypeError);

  // Null expression keeps the exact facade message.
  auto null_plan = Planner::Plan(nullptr, db_);
  ASSERT_FALSE(null_plan.ok());
  EXPECT_EQ(null_plan.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(PlannerTest, ConstantTruePredicateIsElided) {
  // sigma_true(R) plans as a bare scan; results are unchanged.
  auto e = Select(Base("R"),
                  Predicate::Compare(Operand::Constant(Value(int64_t{1})),
                                     ComparisonOp::kLt,
                                     Operand::Constant(Value(int64_t{2}))));
  PhysicalPlanPtr p = Plan(e);
  EXPECT_EQ(p->root().op, PlanOp::kScan);
  EXPECT_EQ(p->node_count(), 1u);

  auto result = plan::ExecutePlan(*p, db_, T(0));
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->relation.size(), 3u);

  // With folding disabled the filter node stays.
  PlannerOptions no_fold;
  no_fold.fold_constants = false;
  PhysicalPlanPtr unfolded = Plan(e, no_fold);
  EXPECT_EQ(unfolded->root().op, PlanOp::kFilter);
  auto unfolded_result = plan::ExecutePlan(*unfolded, db_, T(0));
  ASSERT_TRUE(unfolded_result.ok());
  EXPECT_EQ(unfolded_result->relation.size(), 3u);
}

TEST_F(PlannerTest, ConstantFalseFilterOverMonotonicInputIsElided) {
  auto e = Select(Base("R"),
                  Predicate::Compare(Operand::Constant(Value(int64_t{2})),
                                     ComparisonOp::kLt,
                                     Operand::Constant(Value(int64_t{1}))));
  PhysicalPlanPtr p = Plan(e);
  EXPECT_TRUE(p->root().const_false);
  EXPECT_DOUBLE_EQ(p->root().est_rows, 0.0);

  PlanProfile profile;
  auto result = plan::ExecutePlan(*p, db_, T(0), {}, &profile);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->relation.size(), 0u);
  EXPECT_TRUE(result->texp.IsInfinite());  // empty monotonic result
  EXPECT_TRUE(profile.at(1).pruned);
  // The scan below was never executed.
  EXPECT_EQ(profile.at(2).calls, 0u);
}

TEST_F(PlannerTest, ConstantFalseOverNonMonotonicIsNotElided) {
  // sigma_false(R - S) must keep the finite texp of the difference; the
  // planner leaves it to the executor (which still runs the subtree).
  auto e = Select(Difference(Base("R"), Base("S")),
                  Predicate::Literal(false));
  PhysicalPlanPtr p = Plan(e);
  EXPECT_FALSE(p->root().const_false);

  auto via_plan = plan::ExecutePlan(*p, db_, T(0));
  auto via_facade = Evaluate(e, db_, T(0));
  ASSERT_TRUE(via_plan.ok());
  ASSERT_TRUE(via_facade.ok());
  EXPECT_EQ(via_plan->relation.size(), 0u);
  EXPECT_EQ(via_plan->texp, via_facade->texp);
}

TEST_F(PlannerTest, ExpiredSubtreePruningSkipsExecution) {
  const double pruned_before =
      CounterValue("expdb_plan_pruned_subtrees_total");
  auto e = Select(Base("Dead"), Predicate::ColumnEquals(0, Value(int64_t{7})));
  PhysicalPlanPtr p = Plan(e);

  // Before the bound: normal execution.
  PlanProfile before;
  auto live = plan::ExecutePlan(*p, db_, T(0), {}, &before);
  ASSERT_TRUE(live.ok());
  EXPECT_EQ(live->relation.size(), 1u);
  EXPECT_FALSE(before.at(1).pruned);

  // At tau >= max texp the whole subtree is pruned: the scan never runs,
  // and the result is the exact empty relation with texp = infinity.
  PlanProfile after;
  auto dead = plan::ExecutePlan(*p, db_, T(4), {}, &after);
  ASSERT_TRUE(dead.ok());
  EXPECT_EQ(dead->relation.size(), 0u);
  EXPECT_TRUE(dead->texp.IsInfinite());
  EXPECT_EQ(dead->validity, IntervalSet::From(T(4)));
  EXPECT_TRUE(after.at(1).pruned);
  EXPECT_EQ(after.at(2).calls, 0u);
  EXPECT_GE(CounterValue("expdb_plan_pruned_subtrees_total"),
            pruned_before + 1.0);

  // Parity with the facade at the pruned time.
  auto facade = Evaluate(e, db_, T(4));
  ASSERT_TRUE(facade.ok());
  EXPECT_EQ(facade->relation.size(), 0u);
  EXPECT_EQ(facade->texp, dead->texp);
}

TEST_F(PlannerTest, PruningIsRecheckedPerExecution) {
  // The bound is computed against the live database at execution time, so
  // a cached plan sees tuples inserted after planning.
  Relation* dead = db_.GetRelation("Dead").value();
  auto e = Base("Dead");
  PhysicalPlanPtr p = Plan(e);
  auto empty = plan::ExecutePlan(*p, db_, T(10));
  ASSERT_TRUE(empty.ok());
  EXPECT_EQ(empty->relation.size(), 0u);

  ASSERT_TRUE(dead->Insert(Tuple{9, 90}, T(50)).ok());
  auto revived = plan::ExecutePlan(*p, db_, T(10));
  ASSERT_TRUE(revived.ok());
  EXPECT_EQ(revived->relation.size(), 1u);
  EXPECT_TRUE(revived->relation.Contains(Tuple{9, 90}));
}

TEST_F(PlannerTest, BuildSideFollowsEstimatedCardinality) {
  // |R| = 3 > |S| = 1: build on the smaller left requires l < r, so with
  // R on the left the classic build-right stays; with S on the left the
  // planner flips the build side.
  Predicate p = Predicate::ColumnsEqual(0, 2);
  PhysicalPlanPtr big_left = Plan(Join(Base("R"), Base("S"), p));
  EXPECT_FALSE(big_left->root().build_left);
  PhysicalPlanPtr small_left = Plan(Join(Base("S"), Base("R"), p));
  EXPECT_TRUE(small_left->root().build_left);

  // Either build side produces the identical result set.
  auto r1 = plan::ExecutePlan(*big_left, db_, T(0));
  auto r2 = plan::ExecutePlan(*small_left, db_, T(0));
  ASSERT_TRUE(r1.ok());
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(r1->relation.size(), 1u);
  EXPECT_EQ(r2->relation.size(), 1u);
  EXPECT_TRUE(r1->relation.Contains(Tuple{1, 10, 1, 10}));
  EXPECT_TRUE(r2->relation.Contains(Tuple{1, 10, 1, 10}));
  // Join texp: min of the matched pair (5 vs 8).
  EXPECT_EQ(*r1->relation.GetTexp(Tuple{1, 10, 1, 10}), T(5));
  EXPECT_EQ(*r2->relation.GetTexp(Tuple{1, 10, 1, 10}), T(5));

  PlannerOptions fixed;
  fixed.choose_build_side = false;
  EXPECT_FALSE(Plan(Join(Base("S"), Base("R"), p), fixed)->root().build_left);
}

TEST_F(PlannerTest, CommonSubtreesAreDetectedAndReused) {
  const double reuses_before = CounterValue("expdb_plan_cse_reuses_total");
  // The same filtered scan feeds both union arms.
  auto shared = Select(Base("R"), Predicate::Compare(
                                      Operand::Column(1), ComparisonOp::kGe,
                                      Operand::Constant(Value(int64_t{10}))));
  auto e = Union(shared, shared);
  PhysicalPlanPtr p = Plan(e);
  ASSERT_EQ(p->root().op, PlanOp::kUnionMerge);
  EXPECT_GE(p->root().left->cse_id, 0);
  EXPECT_EQ(p->root().left->cse_id, p->root().right->cse_id);

  PlanProfile profile;
  auto result = plan::ExecutePlan(*p, db_, T(0), {}, &profile);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->relation.size(), 3u);
  // Second occurrence was served from the per-execution cache.
  EXPECT_TRUE(profile.at(p->root().right->id).reused);
  EXPECT_FALSE(profile.at(p->root().left->id).reused);
  EXPECT_GE(CounterValue("expdb_plan_cse_reuses_total"),
            reuses_before + 1.0);

  // Leaves are never CSE'd (a scan is cheaper than a result copy).
  PhysicalPlanPtr leaves = Plan(Union(Base("R"), Base("R")));
  EXPECT_EQ(leaves->root().left->cse_id, -1);
  EXPECT_EQ(leaves->root().right->cse_id, -1);
}

TEST_F(PlannerTest, FacadeMatchesDirectPlanExecute) {
  auto e = Project(Select(Product(Base("R"), Base("S")),
                          Predicate::ColumnsEqual(0, 2)),
                   {0, 1});
  PhysicalPlanPtr p = Plan(e);
  for (int64_t tau : {0, 5, 8, 10, 12}) {
    auto direct = plan::ExecutePlan(*p, db_, T(tau));
    auto facade = Evaluate(e, db_, T(tau));
    ASSERT_TRUE(direct.ok());
    ASSERT_TRUE(facade.ok());
    EXPECT_EQ(direct->relation.size(), facade->relation.size());
    EXPECT_EQ(direct->texp, facade->texp);
    EXPECT_TRUE(
        Relation::EqualAt(direct->relation, facade->relation, T(tau)));
  }
}

TEST_F(PlannerTest, DifferenceRootRequiresDifferenceOrAntiJoin) {
  auto bad = EvaluateDifferenceRoot(Base("R"), db_, T(0));
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kInvalidArgument);

  PhysicalPlanPtr p = Plan(Base("R"));
  auto direct_bad = plan::ExecutePlanDifferenceRoot(*p, db_, T(0));
  ASSERT_FALSE(direct_bad.ok());
  EXPECT_EQ(direct_bad.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(PlannerTest, ParallelAnnotationRespectsOptions) {
  PlannerOptions serial;
  serial.eval.parallelism = 1;
  EXPECT_FALSE(Plan(Base("R"), serial)->root().parallel);

  PlannerOptions parallel;
  parallel.eval.parallelism = 4;
  parallel.eval.parallel_min_morsel = 1;
  EXPECT_TRUE(Plan(Base("R"), parallel)->root().parallel);

  // Below the morsel cutoff the scan is annotated serial.
  PlannerOptions big_morsel;
  big_morsel.eval.parallelism = 4;
  big_morsel.eval.parallel_min_morsel = 1024;
  EXPECT_FALSE(Plan(Base("R"), big_morsel)->root().parallel);
}

}  // namespace
}  // namespace expdb
