// EXPLAIN rendering: golden physical-plan strings for representative
// plans, one golden per Sec. 3.1 rewrite rule (the rule name must appear
// in the plan header and the rewritten structure in the tree), profile
// rendering for EXPLAIN ANALYZE, and the SQL-level EXPLAIN [PLAN|ANALYZE]
// statements end to end.

#include <gtest/gtest.h>

#include "core/expression.h"
#include "plan/executor.h"
#include "plan/plan.h"
#include "plan/planner.h"
#include "sql/session.h"

namespace expdb {
namespace {

using namespace algebra;  // NOLINT
using plan::PhysicalPlanPtr;
using plan::Planner;
using plan::PlannerOptions;
using plan::PlanProfile;

Timestamp T(int64_t t) { return Timestamp(t); }

bool Contains(const std::string& haystack, const std::string& needle) {
  return haystack.find(needle) != std::string::npos;
}

class ExplainTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Relation* r = db_.CreateRelation(
                         "R", Schema({{"a", ValueType::kInt64},
                                      {"b", ValueType::kInt64}}))
                      .value();
    ASSERT_TRUE(r->Insert(Tuple{1, 10}, T(5)).ok());
    ASSERT_TRUE(r->Insert(Tuple{2, 20}, T(10)).ok());
    ASSERT_TRUE(r->Insert(Tuple{3, 30}, Timestamp::Infinity()).ok());

    Relation* r2 = db_.CreateRelation(
                          "R2", Schema({{"a", ValueType::kInt64},
                                        {"b", ValueType::kInt64}}))
                       .value();
    ASSERT_TRUE(r2->Insert(Tuple{2, 20}, T(7)).ok());

    Relation* s = db_.CreateRelation(
                         "S", Schema({{"x", ValueType::kInt64},
                                      {"y", ValueType::kInt64}}))
                      .value();
    ASSERT_TRUE(s->Insert(Tuple{1, 10}, T(8)).ok());
  }

  PhysicalPlanPtr Plan(const ExpressionPtr& e, PlannerOptions opts = {}) {
    auto p = Planner::Plan(e, db_, opts);
    EXPECT_TRUE(p.ok()) << p.status().ToString();
    return p.MoveValue();
  }

  /// Plans with the Sec. 3.1 rewrite pass enabled.
  PhysicalPlanPtr Rewritten(const ExpressionPtr& e) {
    PlannerOptions opts;
    opts.apply_rewrites = true;
    return Plan(e, opts);
  }

  Database db_;
};

// --- golden plan strings --------------------------------------------------

TEST_F(ExplainTest, GoldenFilterOverScan) {
  auto e = Select(Base("R"), Predicate::Compare(Operand::Column(1),
                                                ComparisonOp::kGe,
                                                Operand::Constant(
                                                    Value(int64_t{20}))));
  EXPECT_EQ(Plan(e)->ToString(),
            "PhysicalPlan nodes=2\n"
            "#1 Filter [$2 >= 20, est=1] [incremental]\n"
            "  #2 Scan [R, est=3] [incremental]\n");
}

TEST_F(ExplainTest, GoldenHashJoinShowsBuildSide) {
  auto e = Join(Base("R"), Base("S"), Predicate::ColumnsEqual(0, 2));
  // |R| = 3 > |S| = 1: build on the (smaller) right side.
  EXPECT_EQ(Plan(e)->ToString(),
            "PhysicalPlan nodes=3\n"
            "#1 HashJoin [$1 = $3, build=right, est=3] [incremental]\n"
            "  #2 Scan [R, est=3] [incremental]\n"
            "  #3 Scan [S, est=1] [incremental]\n");
}

TEST_F(ExplainTest, GoldenAggregateAndProject) {
  auto agg = Aggregate(Base("R"), {0}, AggregateFunction::Sum(1));
  EXPECT_EQ(Plan(agg)->ToString(),
            "PhysicalPlan nodes=2\n"
            "#1 HashAggregate [group=$1, f=sum_2, est=3] [incremental]\n"
            "  #2 Scan [R, est=3] [incremental]\n");

  auto proj = Project(Base("R"), {1, 0});
  EXPECT_EQ(Plan(proj)->ToString(),
            "PhysicalPlan nodes=2\n"
            "#1 Project [cols=$2,$1, est=3] [incremental]\n"
            "  #2 Scan [R, est=3] [incremental]\n");
}

TEST_F(ExplainTest, GoldenCommonSubtreeAnnotation) {
  auto shared =
      Select(Base("R"), Predicate::ColumnEquals(0, Value(int64_t{2})));
  auto e = Union(shared, shared);
  const std::string rendered = Plan(e)->ToString();
  // Both occurrences of the repeated subtree carry the same cse group.
  EXPECT_TRUE(Contains(rendered, "#2 Filter [$1 = 2, est=1, cse=#0]"))
      << rendered;
  EXPECT_TRUE(Contains(rendered, "#4 Filter [$1 = 2, est=1, cse=#0]"))
      << rendered;
}

// --- EXPLAIN ANALYZE profile rendering ------------------------------------

TEST_F(ExplainTest, AnalyzeRendersPerNodeStats) {
  auto e = Select(Base("R"), Predicate::Compare(Operand::Column(1),
                                                ComparisonOp::kGe,
                                                Operand::Constant(
                                                    Value(int64_t{20}))));
  PhysicalPlanPtr p = Plan(e);
  PlanProfile profile;
  auto result = plan::ExecutePlan(*p, db_, T(0), {}, &profile);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const std::string rendered = p->ToString(&profile);
  EXPECT_TRUE(Contains(rendered, " total_time=")) << rendered;
  // Filter keeps {(2,20), (3,30)}; the scan feeds all three tuples.
  EXPECT_TRUE(Contains(
      rendered, "#1 Filter [$2 >= 20, est=1] [incremental] (rows=2, "))
      << rendered;
  EXPECT_TRUE(
      Contains(rendered, "#2 Scan [R, est=3] [incremental] (rows=3, "))
      << rendered;
  EXPECT_TRUE(Contains(rendered, "calls=1)")) << rendered;
}

TEST_F(ExplainTest, AnalyzeRendersSegmentPruning) {
  // R is segmented (CreateRelation default) with texps {5, 10, ∞} and the
  // default bucket width 8: segments [0,8), [8,16), ∞. Adding texp=12
  // makes the middle one a straddler at τ=10, so one execution shows all
  // three segment outcomes: ∞ fully live, [8,16) checked per-tuple,
  // [0,8) pruned without touching a tuple.
  Relation* r = db_.GetRelation("R").value();
  ASSERT_TRUE(r->Insert(Tuple{4, 40}, T(12)).ok());

  auto e = Base("R");
  PhysicalPlanPtr p = Plan(e);
  PlanProfile profile;
  auto result = plan::ExecutePlan(*p, db_, T(10), {}, &profile);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->relation.size(), 2u);  // {3,30}@inf and {4,40}@12
  const std::string rendered = p->ToString(&profile);
  EXPECT_TRUE(Contains(rendered, "(rows=2, ")) << rendered;
  EXPECT_TRUE(Contains(rendered, "[segments: 1/1/1]")) << rendered;

  // Plain EXPLAIN (no profile) never renders segment counters.
  EXPECT_FALSE(Contains(p->ToString(), "[segments:"));
}

TEST_F(ExplainTest, AnalyzeOmitsSegmentsForFlatRelations) {
  // Derived/scratch relations registered via PutRelation keep flat
  // storage; their scans are not partition-aware and must not render a
  // segment line even under ANALYZE.
  Relation flat(Schema({{"a", ValueType::kInt64}}));
  ASSERT_TRUE(flat.Insert(Tuple{1}, T(30)).ok());
  ASSERT_TRUE(db_.PutRelation("F", std::move(flat)).ok());

  auto e = Base("F");
  PhysicalPlanPtr p = Plan(e);
  PlanProfile profile;
  auto result = plan::ExecutePlan(*p, db_, T(0), {}, &profile);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const std::string rendered = p->ToString(&profile);
  EXPECT_TRUE(Contains(rendered, "(rows=1, ")) << rendered;
  EXPECT_FALSE(Contains(rendered, "[segments:")) << rendered;
}

// --- one golden per rewrite rule ------------------------------------------

TEST_F(ExplainTest, RewriteMergeSelects) {
  auto p2 = Predicate::Compare(Operand::Column(1), ComparisonOp::kGe,
                               Operand::Constant(Value(int64_t{20})));
  auto e = Select(Select(Base("R"), Predicate::ColumnEquals(
                                        0, Value(int64_t{2}))),
                  p2);
  EXPECT_EQ(Rewritten(e)->ToString(),
            "PhysicalPlan nodes=2 rewrites: merge-selectsx1\n"
            "#1 Filter [($1 = 2 and $2 >= 20), est=1] [incremental]\n"
            "  #2 Scan [R, est=3] [incremental]\n");
}

TEST_F(ExplainTest, RewriteSelectIntoJoin) {
  auto e = Select(Join(Base("R"), Base("S"), Predicate::ColumnsEqual(0, 2)),
                  Predicate::ColumnEquals(1, Value(int64_t{10})));
  const std::string rendered = Rewritten(e)->ToString();
  EXPECT_TRUE(Contains(rendered, "rewrites: select-into-joinx1"))
      << rendered;
  EXPECT_TRUE(Contains(rendered, "#1 HashJoin [($1 = $3 and $2 = 10)"))
      << rendered;
}

TEST_F(ExplainTest, RewriteSelectThroughSetOp) {
  auto e = Select(Union(Base("R"), Base("R2")),
                  Predicate::ColumnEquals(0, Value(int64_t{2})));
  const std::string rendered = Rewritten(e)->ToString();
  EXPECT_TRUE(Contains(rendered, "rewrites: select-through-set-opx1"))
      << rendered;
  // σp(l ∪ r) became σp(l) ∪ σp(r).
  EXPECT_TRUE(Contains(rendered, "#1 Union")) << rendered;
  EXPECT_TRUE(Contains(rendered, "#2 Filter [$1 = 2")) << rendered;
  EXPECT_TRUE(Contains(rendered, "#4 Filter [$1 = 2")) << rendered;
}

TEST_F(ExplainTest, RewriteSelectThroughDifference) {
  auto e = Select(Difference(Base("R"), Base("R2")),
                  Predicate::ColumnEquals(0, Value(int64_t{2})));
  const std::string rendered = Rewritten(e)->ToString();
  EXPECT_TRUE(
      Contains(rendered, "rewrites: select-through-differencex1"))
      << rendered;
  EXPECT_TRUE(Contains(rendered, "#1 HashDifference")) << rendered;
  EXPECT_TRUE(Contains(rendered, "#2 Filter [$1 = 2")) << rendered;
  EXPECT_TRUE(Contains(rendered, "#4 Filter [$1 = 2")) << rendered;
}

TEST_F(ExplainTest, RewriteSelectThroughProject) {
  auto e = Select(Project(Base("R"), {1}),
                  Predicate::ColumnEquals(0, Value(int64_t{20})));
  const std::string rendered = Rewritten(e)->ToString();
  EXPECT_TRUE(Contains(rendered, "rewrites: select-through-projectx1"))
      << rendered;
  // The selection moved below the projection, remapped to column b.
  EXPECT_TRUE(Contains(rendered, "#1 Project [cols=$2")) << rendered;
  EXPECT_TRUE(Contains(rendered, "#2 Filter [$2 = 20")) << rendered;
}

TEST_F(ExplainTest, RewriteSelectThroughAggregate) {
  auto e = Select(Aggregate(Base("R"), {0}, AggregateFunction::Sum(1)),
                  Predicate::ColumnEquals(0, Value(int64_t{2})));
  const std::string rendered = Rewritten(e)->ToString();
  EXPECT_TRUE(
      Contains(rendered, "rewrites: select-through-aggregatex1"))
      << rendered;
  EXPECT_TRUE(Contains(rendered, "#1 HashAggregate [group=$1, f=sum_2"))
      << rendered;
  EXPECT_TRUE(Contains(rendered, "#2 Filter [$1 = 2")) << rendered;
}

TEST_F(ExplainTest, RewriteProductToJoin) {
  // The only conjunct spans both sides: nothing pushable, but the cross
  // predicate still upgrades the product to a (hash-eligible) join.
  auto e = Select(Product(Base("R"), Base("S")),
                  Predicate::ColumnsEqual(0, 2));
  const std::string rendered = Rewritten(e)->ToString();
  EXPECT_TRUE(Contains(rendered, "rewrites: product-to-joinx1"))
      << rendered;
  EXPECT_TRUE(Contains(rendered, "#1 HashJoin [$1 = $3")) << rendered;
}

TEST_F(ExplainTest, RewriteSelectThroughProduct) {
  // One left-only conjunct plus one cross conjunct: the left conjunct is
  // pushed into R and the cross conjunct becomes the join predicate.
  auto p = Predicate::ColumnsEqual(0, 2).And(
      Predicate::ColumnEquals(1, Value(int64_t{10})));
  auto e = Select(Product(Base("R"), Base("S")), p);
  const std::string rendered = Rewritten(e)->ToString();
  EXPECT_TRUE(Contains(rendered, "select-through-productx1")) << rendered;
  EXPECT_TRUE(Contains(rendered, "#1 HashJoin [$1 = $3")) << rendered;
  EXPECT_TRUE(Contains(rendered, "Filter [$2 = 10")) << rendered;
}

TEST_F(ExplainTest, RewriteMergeProjects) {
  auto e = Project(Project(Base("R"), {1, 0}), {1});
  EXPECT_EQ(Rewritten(e)->ToString(),
            "PhysicalPlan nodes=2 rewrites: merge-projectsx1\n"
            "#1 Project [cols=$1, est=3] [incremental]\n"
            "  #2 Scan [R, est=3] [incremental]\n");
}

// --- SQL: EXPLAIN [PLAN | ANALYZE] SELECT ... -----------------------------

class SqlExplainTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto script = session_.ExecuteScript(
        "CREATE TABLE t (x INT, y INT);"
        "INSERT INTO t VALUES (1, 10), (2, 20) TTL 5;"
        "INSERT INTO t VALUES (3, 30)");
    ASSERT_TRUE(script.ok()) << script.status().ToString();
  }

  std::string Explain(const std::string& stmt) {
    auto r = session_.Execute(stmt);
    EXPECT_TRUE(r.ok()) << stmt << " -> " << r.status().ToString();
    return r.ok() ? r->message : std::string();
  }

  sql::Session session_;
};

TEST_F(SqlExplainTest, ExplainSelectRendersThePhysicalPlan) {
  const std::string rendered = Explain("EXPLAIN SELECT * FROM t");
  EXPECT_EQ(rendered.rfind("PhysicalPlan nodes=", 0), 0u) << rendered;
  EXPECT_TRUE(Contains(rendered, "Scan [t, est=3]")) << rendered;
}

TEST_F(SqlExplainTest, ExplainPlanIsTheExplicitSpelling) {
  EXPECT_EQ(Explain("EXPLAIN PLAN SELECT * FROM t"),
            Explain("EXPLAIN SELECT * FROM t"));
}

TEST_F(SqlExplainTest, ExplainAnalyzeAddsExecutionStats) {
  const std::string rendered =
      Explain("EXPLAIN ANALYZE SELECT x FROM t WHERE x >= 2");
  EXPECT_TRUE(Contains(rendered, " total_time=")) << rendered;
  EXPECT_TRUE(Contains(rendered, "(rows=")) << rendered;
  EXPECT_TRUE(Contains(rendered, "calls=1)")) << rendered;
  EXPECT_TRUE(Contains(rendered, "Scan [t")) << rendered;
}

TEST_F(SqlExplainTest, ExplainSeesTheSamePredicateAsTheSelect) {
  const std::string rendered = Explain("EXPLAIN SELECT * FROM t WHERE x = 2");
  EXPECT_TRUE(Contains(rendered, "Filter [$1 = 2")) << rendered;
}

TEST_F(SqlExplainTest, ExplainOverViewsPlansAgainstTheViewCatalog) {
  auto mk = session_.Execute(
      "CREATE VIEW v AS SELECT x FROM t WHERE x >= 2");
  ASSERT_TRUE(mk.ok()) << mk.status().ToString();
  const std::string rendered = Explain("EXPLAIN SELECT * FROM v");
  EXPECT_EQ(rendered.rfind("PhysicalPlan nodes=", 0), 0u) << rendered;
  EXPECT_TRUE(Contains(rendered, "Scan [v")) << rendered;
}

TEST_F(SqlExplainTest, ExplainRejectsNonSelectTargets) {
  auto r = session_.Execute("EXPLAIN DELETE FROM t");
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(Contains(r.status().ToString(), "EXPLAIN"))
      << r.status().ToString();
}

}  // namespace
}  // namespace expdb
