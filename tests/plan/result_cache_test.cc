// Two-tier cache regressions (plan layer): parameterized plan
// instantiation, result-cache hit/patch/miss outcomes, broken delta
// history (Relation::Clear), expiry passage, and LRU byte-budget
// eviction.

#include "plan/cache.h"

#include <gtest/gtest.h>

#include "core/expression.h"
#include "plan/executor.h"
#include "plan/planner.h"

namespace expdb {
namespace plan {
namespace {

using namespace algebra;  // NOLINT

Timestamp T(int64_t t) { return Timestamp(t); }

Value V(int64_t v) { return Value(v); }

class ResultCacheTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Relation* r =
        db_.CreateRelation("R", Schema({{"a", ValueType::kInt64}})).value();
    ASSERT_TRUE(r->Insert(Tuple{1}, T(10)).ok());
    ASSERT_TRUE(r->Insert(Tuple{2}, T(20)).ok());
    ASSERT_TRUE(r->Insert(Tuple{3}, Timestamp::Infinity()).ok());
  }

  /// σ_{a >= $1}(R): one parameter slot.
  ExpressionPtr ParamExpr() const {
    return Select(Base("R"),
                  Predicate::Compare(Operand::Column(0), ComparisonOp::kGe,
                                     Operand::Parameter(0)));
  }

  PhysicalPlanPtr ParamPlan() {
    return Planner::Plan(ParamExpr(), db_, PlannerOptions{}).value();
  }

  /// Executes σ_{a >= arg}(R) at `now` (capturing node state) and fills
  /// `cache` under `key`.
  void Fill(ResultCache* cache, const std::string& key, int64_t arg,
            Timestamp now) {
    PhysicalPlanPtr bound = InstantiatePlan(ParamPlan(), {V(arg)}).value();
    NodeCapture capture;
    MaterializedResult result =
        ExecutePlan(*bound, db_, now, bound->options().eval, nullptr,
                    &capture)
            .value();
    cache->Insert(key, std::move(bound), &capture, std::move(result), db_,
                  now);
  }

  Database db_;
};

TEST_F(ResultCacheTest, BindExpressionParameters) {
  ExpressionPtr expr = ParamExpr();
  EXPECT_EQ(ExpressionParameterCount(expr), 1u);
  auto bound = BindExpressionParameters(expr, {V(2)});
  ASSERT_TRUE(bound.ok()) << bound.status().ToString();
  EXPECT_EQ(ExpressionParameterCount(bound.value()), 0u);
  // A parameter index beyond the argument vector is an error, not UB.
  EXPECT_FALSE(BindExpressionParameters(expr, {}).ok());
}

TEST_F(ResultCacheTest, InstantiatePlanBindsArguments) {
  PhysicalPlanPtr skeleton = ParamPlan();
  auto ge2 = InstantiatePlan(skeleton, {V(2)});
  ASSERT_TRUE(ge2.ok()) << ge2.status().ToString();
  auto res2 = ExecutePlan(*ge2.value(), db_, T(0));
  ASSERT_TRUE(res2.ok());
  EXPECT_EQ(res2->relation.size(), 2u);

  // The same skeleton instantiates again with different arguments.
  auto ge3 = InstantiatePlan(skeleton, {V(3)});
  ASSERT_TRUE(ge3.ok());
  auto res3 = ExecutePlan(*ge3.value(), db_, T(0));
  ASSERT_TRUE(res3.ok());
  EXPECT_EQ(res3->relation.size(), 1u);
}

TEST_F(ResultCacheTest, UnchangedBasesHit) {
  ResultCache cache;
  Fill(&cache, "k", 1, T(0));
  auto hit = cache.Lookup("k", db_, T(5));
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->relation.CountUnexpiredAt(T(5)), 3u);
  // In-place expiry: the same entry serves a later instant with fewer
  // live tuples (Theorems 1-2), still without execution.
  auto later = cache.Lookup("k", db_, T(15));
  ASSERT_TRUE(later.has_value());
  EXPECT_EQ(later->relation.CountUnexpiredAt(T(15)), 2u);
  EXPECT_EQ(cache.stats().hits, 2u);
  EXPECT_EQ(cache.stats().patches, 0u);
}

TEST_F(ResultCacheTest, DriftedCursorPatchesThroughDeltas) {
  ResultCache cache;
  Fill(&cache, "k", 1, T(0));
  Relation* r = db_.GetRelation("R").value();
  ASSERT_TRUE(r->Insert(Tuple{4}, Timestamp::Infinity()).ok());
  auto hit = cache.Lookup("k", db_, T(5));
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->relation.CountUnexpiredAt(T(5)), 4u);
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_EQ(cache.stats().patches, 1u);
  // The patch refreshed the cursors: the next lookup is a plain hit.
  ASSERT_TRUE(cache.Lookup("k", db_, T(6)).has_value());
  EXPECT_EQ(cache.stats().patches, 1u);
}

// Regression (issue satellite): Relation::Clear() breaks delta history —
// a cached result over the cleared base must invalidate, not serve the
// pre-Clear tuples.
TEST_F(ResultCacheTest, ClearedBaseInvalidatesInsteadOfServingStale) {
  ResultCache cache;
  Fill(&cache, "k", 1, T(0));
  Relation* r = db_.GetRelation("R").value();
  r->Clear();
  ASSERT_TRUE(r->Insert(Tuple{7}, Timestamp::Infinity()).ok());
  EXPECT_FALSE(cache.Lookup("k", db_, T(1)).has_value());
  EXPECT_EQ(cache.stats().misses, 1u);
  EXPECT_EQ(cache.stats().entries, 0u);  // dropped, not retried forever
}

TEST_F(ResultCacheTest, RecreatedBaseMissesOnInstanceId) {
  ResultCache cache;
  Fill(&cache, "k", 1, T(0));
  ASSERT_TRUE(db_.DropRelation("R").ok());
  Relation* r =
      db_.CreateRelation("R", Schema({{"a", ValueType::kInt64}})).value();
  ASSERT_TRUE(r->Insert(Tuple{9}, Timestamp::Infinity()).ok());
  EXPECT_FALSE(cache.Lookup("k", db_, T(1)).has_value());
}

TEST_F(ResultCacheTest, LapsedEntryMisses) {
  // R -exp S has a finite texp: tuple 1 of S expires at 5, so the cached
  // difference is only valid on [0, 5).
  Relation* s =
      db_.CreateRelation("S", Schema({{"a", ValueType::kInt64}})).value();
  ASSERT_TRUE(s->Insert(Tuple{1}, T(5)).ok());
  PhysicalPlanPtr plan =
      Planner::Plan(Difference(Base("R"), Base("S")), db_, PlannerOptions{})
          .value();
  NodeCapture capture;
  MaterializedResult result =
      ExecutePlan(*plan, db_, T(0), plan->options().eval, nullptr, &capture)
          .value();
  ASSERT_EQ(result.texp, T(5));
  ResultCache cache;
  cache.Insert("k", std::move(plan), &capture, std::move(result), db_,
               T(0));
  EXPECT_TRUE(cache.Lookup("k", db_, T(4)).has_value());
  EXPECT_FALSE(cache.Lookup("k", db_, T(6)).has_value());
  EXPECT_EQ(cache.stats().entries, 0u);
}

TEST_F(ResultCacheTest, LruEvictionUnderByteBudget) {
  ResultCache cache;
  Fill(&cache, "k1", 1, T(0));
  const size_t one_entry = cache.stats().bytes;
  ASSERT_GT(one_entry, 0u);
  cache.set_max_bytes(one_entry + one_entry / 2);  // room for one and a half
  Fill(&cache, "k2", 2, T(0));
  EXPECT_EQ(cache.stats().entries, 1u);
  EXPECT_GE(cache.stats().evictions, 1u);
  EXPECT_FALSE(cache.Lookup("k1", db_, T(1)).has_value());
  EXPECT_TRUE(cache.Lookup("k2", db_, T(1)).has_value());
}

TEST_F(ResultCacheTest, ZeroBudgetDisablesTheCache) {
  ResultCache cache;
  cache.set_max_bytes(0);
  EXPECT_FALSE(cache.enabled());
  Fill(&cache, "k", 1, T(0));
  EXPECT_EQ(cache.stats().entries, 0u);
  EXPECT_FALSE(cache.Lookup("k", db_, T(1)).has_value());
}

TEST_F(ResultCacheTest, StatementCacheLruAndInvalidation) {
  StatementCache cache(2);
  auto prepared = [&](const std::string& fp) {
    PreparedPlan p;
    p.plan = ParamPlan();
    p.param_count = 1;
    p.fingerprint = fp;
    return p;
  };
  cache.Insert("a", prepared("a"));
  cache.Insert("b", prepared("b"));
  EXPECT_TRUE(cache.Lookup("a").has_value());  // refreshes a over b
  cache.Insert("c", prepared("c"));            // evicts b (LRU)
  EXPECT_FALSE(cache.Lookup("b").has_value());
  EXPECT_TRUE(cache.Lookup("a").has_value());
  EXPECT_TRUE(cache.Lookup("c").has_value());
  // Every skeleton reads R: DDL on R empties the cache.
  cache.InvalidateBase("R");
  EXPECT_EQ(cache.size(), 0u);
}

}  // namespace
}  // namespace plan
}  // namespace expdb
