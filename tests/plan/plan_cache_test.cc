// Plan caching regressions: a materialized view plans (and, when opted
// in, rewrites) exactly once no matter how many times it recomputes; a
// replica server plans at registration and serves every fetch from the
// cached plan. Verified through the process-wide plan metrics
// (expdb_plan_plans_total / _rewrite_passes_total / _cache_hits_total).

#include <gtest/gtest.h>

#include "core/expression.h"
#include "obs/metrics.h"
#include "plan/plan.h"
#include "replica/server.h"
#include "view/materialized_view.h"

namespace expdb {
namespace {

using namespace algebra;  // NOLINT

Timestamp T(int64_t t) { return Timestamp(t); }

uint64_t Metric(const char* name) {
  return obs::MetricsRegistry::Global().GetCounter(name)->value();
}

/// R = {1, 2} (never expiring), S = {1 @5, 2 @9}: R −exp S is empty until
/// time 5, then grows a tuple at each of the two invalidation instants —
/// two eager maintenance recomputations by time 10.
class PlanCacheTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Relation* r =
        db_.CreateRelation("R", Schema({{"a", ValueType::kInt64}})).value();
    ASSERT_TRUE(r->Insert(Tuple{1}, Timestamp::Infinity()).ok());
    ASSERT_TRUE(r->Insert(Tuple{2}, Timestamp::Infinity()).ok());
    Relation* s =
        db_.CreateRelation("S", Schema({{"a", ValueType::kInt64}})).value();
    ASSERT_TRUE(s->Insert(Tuple{1}, T(5)).ok());
    ASSERT_TRUE(s->Insert(Tuple{2}, T(9)).ok());
  }

  /// σ_{$1 >= 1}(R −exp S): the Select root gives the Sec. 3.1 rewriter
  /// something to do (select-through-difference).
  ExpressionPtr ViewExpr() const {
    return Select(Difference(Base("R"), Base("S")),
                  Predicate::Compare(Operand::Column(0), ComparisonOp::kGe,
                                     Operand::Constant(Value(int64_t{1}))));
  }

  Database db_;
};

TEST_F(PlanCacheTest, ViewRewritesOncePerPlanNotPerRecompute) {
  const uint64_t plans0 = Metric("expdb_plan_plans_total");
  const uint64_t rewrites0 = Metric("expdb_plan_rewrite_passes_total");
  const uint64_t hits0 = Metric("expdb_plan_cache_hits_total");

  MaterializedView::Options opts;
  opts.mode = RefreshMode::kEagerRecompute;
  opts.rewrite_plan = true;
  MaterializedView view(ViewExpr(), opts);
  ASSERT_TRUE(view.Initialize(db_, T(0)).ok());
  ASSERT_TRUE(view.AdvanceTo(db_, T(6)).ok());   // recompute at texp 5
  ASSERT_TRUE(view.AdvanceTo(db_, T(10)).ok());  // recompute at texp 9
  auto read = view.Read(db_, T(10));
  ASSERT_TRUE(read.ok()) << read.status().ToString();
  EXPECT_EQ(read->size(), 2u);  // both S tuples have expired

  // Maintenance recomputations (Initialize's first materialization is not
  // counted as maintenance): one per invalidation instant.
  const uint64_t recomputes = view.stats().recomputations;
  EXPECT_EQ(recomputes, 2u);

  // One plan, one rewrite pass — and every recomputation after the first
  // materialization was a cache hit. This is the regression the
  // cached-plan refactor bought: before it, the rewrite ran on every
  // recomputation.
  EXPECT_EQ(Metric("expdb_plan_plans_total") - plans0, 1u);
  EXPECT_EQ(Metric("expdb_plan_rewrite_passes_total") - rewrites0, 1u);
  EXPECT_EQ(Metric("expdb_plan_cache_hits_total") - hits0, recomputes);

  // The cached plan really is the rewritten one.
  ASSERT_NE(view.plan(), nullptr);
  EXPECT_EQ(view.plan()->rewrites().rule_applications.count(
                "select-through-difference"),
            1u);
}

TEST_F(PlanCacheTest, ViewWithoutOptInNeverRewrites) {
  const uint64_t rewrites0 = Metric("expdb_plan_rewrite_passes_total");

  MaterializedView::Options opts;
  opts.mode = RefreshMode::kEagerRecompute;  // rewrite_plan stays false
  MaterializedView view(ViewExpr(), opts);
  ASSERT_TRUE(view.Initialize(db_, T(0)).ok());
  ASSERT_TRUE(view.AdvanceTo(db_, T(10)).ok());

  EXPECT_EQ(Metric("expdb_plan_rewrite_passes_total") - rewrites0, 0u);
  ASSERT_NE(view.plan(), nullptr);
  EXPECT_EQ(view.plan()->rewrites().total(), 0u);
}

TEST_F(PlanCacheTest, MarkStaleReplansOnlyOnCardinalityDrift) {
  const uint64_t plans0 = Metric("expdb_plan_plans_total");
  const uint64_t replans0 = Metric("expdb_view_replans_total");

  MaterializedView view(ViewExpr(), {});
  ASSERT_TRUE(view.Initialize(db_, T(0)).ok());
  EXPECT_EQ(Metric("expdb_plan_plans_total") - plans0, 1u);

  // A stale round without cardinality drift keeps the cached plan: the
  // estimates behind the performance annotations are still within 2× of
  // the planned snapshot, and dropping the plan would also discard the
  // delta-propagation state for no benefit.
  view.MarkStale();
  EXPECT_NE(view.plan(), nullptr);
  ASSERT_TRUE(view.AdvanceTo(db_, T(1)).ok());
  EXPECT_EQ(Metric("expdb_plan_plans_total") - plans0, 1u);
  EXPECT_EQ(Metric("expdb_view_replans_total") - replans0, 0u);

  // Grow R to 2× its plan-time cardinality (2 → 4 tuples): the next
  // maintenance point re-plans and counts it.
  Relation* r = db_.GetRelation("R").value();
  ASSERT_TRUE(r->Insert(Tuple{3}, Timestamp::Infinity()).ok());
  ASSERT_TRUE(r->Insert(Tuple{4}, Timestamp::Infinity()).ok());
  view.MarkStale();
  ASSERT_TRUE(view.AdvanceTo(db_, T(2)).ok());
  EXPECT_EQ(Metric("expdb_plan_plans_total") - plans0, 2u);
  EXPECT_EQ(Metric("expdb_view_replans_total") - replans0, 1u);
  EXPECT_NE(view.plan(), nullptr);
}

TEST_F(PlanCacheTest, ReplicaServerServesFetchesFromTheCachedPlan) {
  ReplicationServer server(&db_);
  const uint64_t plans0 = Metric("expdb_plan_plans_total");
  const uint64_t hits0 = Metric("expdb_plan_cache_hits_total");

  ASSERT_TRUE(server.RegisterQuery("q", ViewExpr()).ok());
  EXPECT_EQ(Metric("expdb_plan_plans_total") - plans0, 1u);

  for (int i = 0; i < 3; ++i) {
    auto r = server.Fetch("q", T(6), nullptr);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    EXPECT_EQ(r->relation.size(), 1u);  // {1} reappeared at time 5
  }
  EXPECT_EQ(Metric("expdb_plan_plans_total") - plans0, 1u);
  EXPECT_EQ(Metric("expdb_plan_cache_hits_total") - hits0, 3u);
}

TEST_F(PlanCacheTest, ReplicaRegistrationValidatesAtPlanTime) {
  ReplicationServer server(&db_);
  // Unknown relation: the plan-time schema pass rejects it immediately.
  EXPECT_EQ(server.RegisterQuery("bad", Base("NoSuch")).code(),
            StatusCode::kNotFound);
  EXPECT_FALSE(server.HasQuery("bad"));

  ASSERT_TRUE(server.RegisterQuery("q", Base("R")).ok());
  EXPECT_EQ(server.RegisterQuery("q", Base("R")).code(),
            StatusCode::kAlreadyExists);
  EXPECT_EQ(server.Fetch("nope", T(0), nullptr).status().code(),
            StatusCode::kNotFound);
}

TEST_F(PlanCacheTest, ReplicaHelperFetchUsesTheCachedDifferencePlan) {
  ReplicationServer server(&db_);
  ASSERT_TRUE(
      server.RegisterQuery("d", Difference(Base("R"), Base("S"))).ok());
  auto r = server.FetchWithHelper("d", T(0), nullptr);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  // Both R tuples outlive their S counterparts: two Theorem 3 criticals.
  EXPECT_EQ(r->helper.size(), 2u);

  // Non-difference roots keep the evaluator's exact error.
  ASSERT_TRUE(server.RegisterQuery("scan", Base("R")).ok());
  auto bad = server.FetchWithHelper("scan", T(0), nullptr);
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace expdb
