#include "expiration/clock.h"

#include <gtest/gtest.h>

namespace expdb {
namespace {

TEST(LogicalClockTest, StartsAtZeroByDefault) {
  LogicalClock clock;
  EXPECT_EQ(clock.Now(), Timestamp::Zero());
}

TEST(LogicalClockTest, StartsAtGivenTime) {
  LogicalClock clock(Timestamp(42));
  EXPECT_EQ(clock.Now(), Timestamp(42));
}

TEST(LogicalClockTest, AdvanceAccumulates) {
  LogicalClock clock;
  ASSERT_TRUE(clock.Advance(5).ok());
  ASSERT_TRUE(clock.Advance(3).ok());
  EXPECT_EQ(clock.Now(), Timestamp(8));
  ASSERT_TRUE(clock.Advance(0).ok());  // no-op allowed
  EXPECT_EQ(clock.Now(), Timestamp(8));
}

TEST(LogicalClockTest, RejectsNegativeAdvance) {
  LogicalClock clock;
  EXPECT_EQ(clock.Advance(-1).code(), StatusCode::kInvalidArgument);
}

TEST(LogicalClockTest, AdvanceToAbsolute) {
  LogicalClock clock;
  ASSERT_TRUE(clock.AdvanceTo(Timestamp(10)).ok());
  EXPECT_EQ(clock.Now(), Timestamp(10));
  ASSERT_TRUE(clock.AdvanceTo(Timestamp(10)).ok());  // same time ok
}

TEST(LogicalClockTest, TimeNeverFlowsBackwards) {
  LogicalClock clock(Timestamp(10));
  EXPECT_EQ(clock.AdvanceTo(Timestamp(9)).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(clock.Now(), Timestamp(10));
}

TEST(LogicalClockTest, CannotReachInfinity) {
  LogicalClock clock;
  EXPECT_EQ(clock.AdvanceTo(Timestamp::Infinity()).code(),
            StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace expdb
