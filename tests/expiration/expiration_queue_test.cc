// Eager vs. lazy physical removal (paper Sec. 3.2): eager removes and
// fires triggers the moment tuples expire; lazy keeps them invisible and
// compacts in batches. Both must never let an expired tuple be observed.

#include "expiration/expiration_queue.h"

#include <gtest/gtest.h>

namespace expdb {
namespace {

Timestamp T(int64_t t) { return Timestamp(t); }

Schema OneInt() { return Schema({{"x", ValueType::kInt64}}); }

TEST(ExpirationManagerTest, EagerRemovesOnAdvance) {
  ExpirationManager em;
  ASSERT_TRUE(em.CreateRelation("t", OneInt()).ok());
  ASSERT_TRUE(em.Insert("t", Tuple{1}, T(5)).ok());
  ASSERT_TRUE(em.Insert("t", Tuple{2}, T(10)).ok());
  ASSERT_TRUE(em.AdvanceTo(T(5)).ok());
  const Relation* rel = em.db().GetRelation("t").value();
  EXPECT_EQ(rel->size(), 1u);  // <1> physically gone at its texp
  EXPECT_FALSE(rel->Contains(Tuple{1}));
  EXPECT_EQ(em.stats().removed, 1u);
}

TEST(ExpirationManagerTest, LazyKeepsInvisibleUntilCompaction) {
  ExpirationManagerOptions opts;
  opts.policy = RemovalPolicy::kLazy;
  opts.lazy_compaction_threshold = 0;  // manual compaction only
  ExpirationManager em(opts);
  ASSERT_TRUE(em.CreateRelation("t", OneInt()).ok());
  ASSERT_TRUE(em.Insert("t", Tuple{1}, T(5)).ok());
  ASSERT_TRUE(em.AdvanceTo(T(8)).ok());
  const Relation* rel = em.db().GetRelation("t").value();
  // Physically present but invisible through expτ.
  EXPECT_EQ(rel->size(), 1u);
  EXPECT_EQ(rel->CountUnexpiredAt(em.Now()), 0u);
  // Compaction removes it.
  EXPECT_EQ(em.Compact(), 1u);
  EXPECT_EQ(rel->size(), 0u);
}

TEST(ExpirationManagerTest, LazyAutoCompactsPastThreshold) {
  ExpirationManagerOptions opts;
  opts.policy = RemovalPolicy::kLazy;
  opts.lazy_compaction_threshold = 0.4;
  ExpirationManager em(opts);
  ASSERT_TRUE(em.CreateRelation("t", OneInt()).ok());
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(em.Insert("t", Tuple{i}, T(i < 5 ? 5 : 100)).ok());
  }
  // At time 5, half the table is expired (> 40%): auto-compaction.
  ASSERT_TRUE(em.AdvanceTo(T(5)).ok());
  EXPECT_EQ(em.db().GetRelation("t").value()->size(), 5u);
  EXPECT_GE(em.stats().compactions, 1u);
}

TEST(ExpirationManagerTest, TriggersFireInExpirationOrder) {
  ExpirationManager em;
  ASSERT_TRUE(em.CreateRelation("t", OneInt()).ok());
  ASSERT_TRUE(em.Insert("t", Tuple{3}, T(9)).ok());
  ASSERT_TRUE(em.Insert("t", Tuple{1}, T(4)).ok());
  ASSERT_TRUE(em.Insert("t", Tuple{2}, T(6)).ok());
  std::vector<std::pair<Tuple, Timestamp>> fired;
  em.AddTrigger([&](const ExpirationEvent& e) {
    fired.emplace_back(e.tuple, e.texp);
    EXPECT_EQ(e.relation, "t");
  });
  ASSERT_TRUE(em.AdvanceTo(T(10)).ok());
  ASSERT_EQ(fired.size(), 3u);
  EXPECT_EQ(fired[0].first, Tuple{1});
  EXPECT_EQ(fired[1].first, Tuple{2});
  EXPECT_EQ(fired[2].first, Tuple{3});
  EXPECT_EQ(em.stats().triggers_fired, 3u);
}

TEST(ExpirationManagerTest, LazyTriggersFireAtCompaction) {
  ExpirationManagerOptions opts;
  opts.policy = RemovalPolicy::kLazy;
  opts.lazy_compaction_threshold = 0;
  ExpirationManager em(opts);
  ASSERT_TRUE(em.CreateRelation("t", OneInt()).ok());
  ASSERT_TRUE(em.Insert("t", Tuple{2}, T(6)).ok());
  ASSERT_TRUE(em.Insert("t", Tuple{1}, T(4)).ok());
  std::vector<Tuple> fired;
  em.AddTrigger([&](const ExpirationEvent& e) { fired.push_back(e.tuple); });
  ASSERT_TRUE(em.AdvanceTo(T(10)).ok());
  EXPECT_TRUE(fired.empty());  // deferred
  em.Compact();
  // Still in expiration order within the batch.
  ASSERT_EQ(fired.size(), 2u);
  EXPECT_EQ(fired[0], Tuple{1});
  EXPECT_EQ(fired[1], Tuple{2});
}

TEST(ExpirationManagerTest, StaleHeapEntriesAfterLifetimeExtension) {
  ExpirationManager em;
  ASSERT_TRUE(em.CreateRelation("t", OneInt()).ok());
  ASSERT_TRUE(em.Insert("t", Tuple{1}, T(5)).ok());
  // Re-insert with a longer lifetime: relation keeps max texp = 12.
  ASSERT_TRUE(em.Insert("t", Tuple{1}, T(12)).ok());
  ASSERT_TRUE(em.AdvanceTo(T(6)).ok());
  // The @5 heap entry is stale; the tuple must survive.
  EXPECT_TRUE(em.db().GetRelation("t").value()->Contains(Tuple{1}));
  EXPECT_GE(em.stats().stale_heap_entries, 1u);
  ASSERT_TRUE(em.AdvanceTo(T(12)).ok());
  EXPECT_FALSE(em.db().GetRelation("t").value()->Contains(Tuple{1}));
}

TEST(ExpirationManagerTest, StaleHeapEntriesAfterErase) {
  ExpirationManager em;
  ASSERT_TRUE(em.CreateRelation("t", OneInt()).ok());
  ASSERT_TRUE(em.Insert("t", Tuple{1}, T(5)).ok());
  em.db().GetRelation("t").value()->Erase(Tuple{1});
  size_t fired = 0;
  em.AddTrigger([&](const ExpirationEvent&) { ++fired; });
  ASSERT_TRUE(em.AdvanceTo(T(6)).ok());
  EXPECT_EQ(fired, 0u);  // no ghost trigger for the erased tuple
}

TEST(ExpirationManagerTest, InsertRejectsPastExpiration) {
  ExpirationManager em;
  ASSERT_TRUE(em.CreateRelation("t", OneInt()).ok());
  ASSERT_TRUE(em.AdvanceTo(T(10)).ok());
  EXPECT_EQ(em.Insert("t", Tuple{1}, T(10)).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(em.Insert("t", Tuple{1}, T(3)).code(),
            StatusCode::kInvalidArgument);
  EXPECT_TRUE(em.Insert("t", Tuple{1}, T(11)).ok());
}

TEST(ExpirationManagerTest, InsertWithTtl) {
  ExpirationManager em;
  ASSERT_TRUE(em.CreateRelation("t", OneInt()).ok());
  ASSERT_TRUE(em.AdvanceTo(T(5)).ok());
  ASSERT_TRUE(em.InsertWithTtl("t", Tuple{1}, 7).ok());
  EXPECT_EQ(em.db().GetRelation("t").value()->GetTexp(Tuple{1}), T(12));
  EXPECT_EQ(em.InsertWithTtl("t", Tuple{2}, 0).code(),
            StatusCode::kInvalidArgument);
}

TEST(ExpirationManagerTest, InfiniteTuplesNeverEnterTheQueue) {
  ExpirationManager em;
  ASSERT_TRUE(em.CreateRelation("t", OneInt()).ok());
  ASSERT_TRUE(em.Insert("t", Tuple{1}, Timestamp::Infinity()).ok());
  EXPECT_EQ(em.queue_size(), 0u);
  ASSERT_TRUE(em.AdvanceTo(T(1'000'000)).ok());
  EXPECT_TRUE(em.db().GetRelation("t").value()->Contains(Tuple{1}));
}

TEST(ExpirationManagerTest, TimeCannotMoveBackwards) {
  ExpirationManager em;
  ASSERT_TRUE(em.AdvanceTo(T(5)).ok());
  EXPECT_FALSE(em.AdvanceTo(T(4)).ok());
  EXPECT_FALSE(em.Advance(-1).ok());
}

TEST(ExpirationManagerTest, EagerAndLazyConvergeToSameVisibleState) {
  auto run = [](RemovalPolicy policy) {
    ExpirationManagerOptions opts;
    opts.policy = policy;
    ExpirationManager em(opts);
    EXPECT_TRUE(em.CreateRelation("t", OneInt()).ok());
    for (int i = 0; i < 50; ++i) {
      EXPECT_TRUE(em.Insert("t", Tuple{i}, T(1 + (i * 7) % 20)).ok());
    }
    std::vector<Tuple> visible;
    EXPECT_TRUE(em.AdvanceTo(T(10)).ok());
    em.db().GetRelation("t").value()->ForEachUnexpired(
        em.Now(), [&](const Tuple& t, Timestamp) { visible.push_back(t); });
    std::sort(visible.begin(), visible.end());
    return visible;
  };
  EXPECT_EQ(run(RemovalPolicy::kEager), run(RemovalPolicy::kLazy));
}

}  // namespace
}  // namespace expdb
