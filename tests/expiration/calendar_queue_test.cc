// CalendarQueue unit and model-based tests: ring/overflow placement,
// in-order delivery, big jumps, window sliding, and a randomized
// comparison against a sorted-multimap reference model.

#include "expiration/calendar_queue.h"

#include <gtest/gtest.h>

#include <map>

#include "common/rng.h"
#include "expiration/expiration_queue.h"

namespace expdb {
namespace {

Timestamp T(int64_t t) { return Timestamp(t); }

using Queue = CalendarQueue<int>;

std::vector<std::pair<int64_t, int>> Drain(Queue& q, int64_t to) {
  std::vector<std::pair<int64_t, int>> out;
  q.AdvanceTo(T(to), [&](Timestamp texp, int& payload) {
    out.emplace_back(texp.ticks(), payload);
  });
  return out;
}

TEST(CalendarQueueTest, DeliversInOrder) {
  Queue q(T(0), 8);
  ASSERT_TRUE(q.Schedule(T(5), 50));
  ASSERT_TRUE(q.Schedule(T(2), 20));
  ASSERT_TRUE(q.Schedule(T(9), 90));   // beyond ring -> overflow
  ASSERT_TRUE(q.Schedule(T(300), 3000));  // far overflow
  EXPECT_EQ(q.size(), 4u);
  auto due = Drain(q, 10);
  EXPECT_EQ(due, (std::vector<std::pair<int64_t, int>>{
                     {2, 20}, {5, 50}, {9, 90}}));
  EXPECT_EQ(q.size(), 1u);
  EXPECT_EQ(Drain(q, 299).size(), 0u);
  EXPECT_EQ(Drain(q, 300),
            (std::vector<std::pair<int64_t, int>>{{300, 3000}}));
  EXPECT_TRUE(q.empty());
}

TEST(CalendarQueueTest, RejectsPastAndInfinite) {
  Queue q(T(10), 8);
  EXPECT_FALSE(q.Schedule(T(10), 1));  // not strictly in the future
  EXPECT_FALSE(q.Schedule(T(3), 1));
  EXPECT_FALSE(q.Schedule(Timestamp::Infinity(), 1));
  EXPECT_TRUE(q.Schedule(T(11), 1));
}

TEST(CalendarQueueTest, EqualTimesKeepInsertionOrder) {
  Queue q(T(0), 16);
  for (int i = 0; i < 5; ++i) ASSERT_TRUE(q.Schedule(T(7), i));
  auto due = Drain(q, 7);
  ASSERT_EQ(due.size(), 5u);
  for (int i = 0; i < 5; ++i) EXPECT_EQ(due[i].second, i);
}

TEST(CalendarQueueTest, JumpFarPastRing) {
  Queue q(T(0), 4);
  ASSERT_TRUE(q.Schedule(T(1), 1));
  ASSERT_TRUE(q.Schedule(T(3), 3));
  ASSERT_TRUE(q.Schedule(T(17), 17));
  ASSERT_TRUE(q.Schedule(T(90), 90));
  auto due = Drain(q, 50);  // one jump across many ring revolutions
  EXPECT_EQ(due, (std::vector<std::pair<int64_t, int>>{
                     {1, 1}, {3, 3}, {17, 17}}));
  EXPECT_EQ(q.size(), 1u);
  EXPECT_EQ(q.NextExpiration(), T(90));
}

TEST(CalendarQueueTest, SchedulingAfterAdvancesLandsCorrectly) {
  Queue q(T(0), 4);
  EXPECT_TRUE(Drain(q, 100).empty());
  ASSERT_TRUE(q.Schedule(T(101), 1));
  ASSERT_TRUE(q.Schedule(T(104), 4));  // exactly at window edge
  ASSERT_TRUE(q.Schedule(T(105), 5));  // just beyond
  EXPECT_EQ(Drain(q, 105),
            (std::vector<std::pair<int64_t, int>>{
                {101, 1}, {104, 4}, {105, 5}}));
}

TEST(CalendarQueueTest, NextExpirationTracksMinimum) {
  Queue q(T(0), 8);
  EXPECT_FALSE(q.NextExpiration().has_value());
  ASSERT_TRUE(q.Schedule(T(50), 1));
  EXPECT_EQ(q.NextExpiration(), T(50));
  ASSERT_TRUE(q.Schedule(T(3), 2));
  EXPECT_EQ(q.NextExpiration(), T(3));
}

class CalendarQueueModelTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CalendarQueueModelTest, MatchesSortedModel) {
  Rng rng(GetParam());
  const size_t ring = 1 + static_cast<size_t>(rng.UniformInt(0, 30));
  Queue q(T(0), ring);
  std::multimap<int64_t, int> model;
  int64_t now = 0;
  int next_payload = 0;
  for (int step = 0; step < 400; ++step) {
    if (rng.Bernoulli(0.6)) {
      int64_t texp = now + 1 + rng.UniformInt(0, 60);
      ASSERT_TRUE(q.Schedule(T(texp), next_payload));
      model.emplace(texp, next_payload);
      ++next_payload;
    } else {
      int64_t to = now + rng.UniformInt(0, 40);
      auto due = Drain(q, to);
      // Model: everything with texp <= to, in texp order.
      std::vector<std::pair<int64_t, int>> expected;
      auto end = model.upper_bound(to);
      for (auto it = model.begin(); it != end; ++it) {
        expected.emplace_back(it->first, it->second);
      }
      model.erase(model.begin(), end);
      // Compare as multisets per timestamp (insertion order within a
      // timestamp is stable for the per-tick path; the jump path only
      // guarantees texp order).
      ASSERT_EQ(due.size(), expected.size()) << "step " << step;
      for (size_t i = 0; i < due.size(); ++i) {
        EXPECT_EQ(due[i].first, expected[i].first) << "step " << step;
      }
      now = std::max(now, to);
    }
    EXPECT_EQ(q.size(), model.size());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CalendarQueueModelTest,
                         ::testing::Range<uint64_t>(700, 712));

TEST(ExpirationManagerCalendarTest, BehavesLikeHeapIndex) {
  auto run = [](ExpirationIndex index) {
    ExpirationManagerOptions opts;
    opts.index = index;
    opts.calendar_ring_size = 16;
    ExpirationManager em(opts);
    EXPECT_TRUE(
        em.CreateRelation("t", Schema({{"x", ValueType::kInt64}})).ok());
    std::vector<std::pair<Tuple, Timestamp>> fired;
    em.AddTrigger([&](const ExpirationEvent& e) {
      fired.emplace_back(e.tuple, e.texp);
    });
    Rng rng(99);
    for (int i = 0; i < 200; ++i) {
      EXPECT_TRUE(
          em.Insert("t", Tuple{i}, Timestamp(1 + rng.UniformInt(0, 50)))
              .ok());
    }
    // Lifetime extension makes one entry stale.
    EXPECT_TRUE(em.Insert("t", Tuple{0}, Timestamp(200)).ok());
    for (int64_t t = 5; t <= 60; t += 5) {
      EXPECT_TRUE(em.AdvanceTo(Timestamp(t)).ok());
    }
    return std::pair(fired.size(),
                     em.db().GetRelation("t").value()->size());
  };
  auto heap = run(ExpirationIndex::kBinaryHeap);
  auto calendar = run(ExpirationIndex::kCalendarQueue);
  EXPECT_EQ(heap, calendar);
}

}  // namespace
}  // namespace expdb
