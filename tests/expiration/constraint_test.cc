#include "expiration/constraint.h"

#include <gtest/gtest.h>

namespace expdb {
namespace {

Timestamp T(int64_t t) { return Timestamp(t); }

TEST(ConstraintTest, RowConstraintAcceptsAndRejects) {
  ConstraintSet cs;
  cs.AddRowConstraint("deg_range", "Pol",
                      Predicate::Compare(Operand::Column(1),
                                         ComparisonOp::kLe,
                                         Operand::Constant(Value(100))));
  EXPECT_TRUE(cs.CheckInsert("Pol", Tuple{1, 50}).ok());
  Status bad = cs.CheckInsert("Pol", Tuple{1, 150});
  EXPECT_EQ(bad.code(), StatusCode::kConstraintViolation);
  // Constraints are per-relation: other relations unaffected.
  EXPECT_TRUE(cs.CheckInsert("El", Tuple{1, 150}).ok());
}

TEST(ConstraintTest, MultipleRowConstraintsAllApply) {
  ConstraintSet cs;
  cs.AddRowConstraint("pos", "t",
                      Predicate::Compare(Operand::Column(0),
                                         ComparisonOp::kGe,
                                         Operand::Constant(Value(0))));
  cs.AddRowConstraint("small", "t",
                      Predicate::Compare(Operand::Column(0),
                                         ComparisonOp::kLt,
                                         Operand::Constant(Value(10))));
  EXPECT_TRUE(cs.CheckInsert("t", Tuple{5}).ok());
  EXPECT_FALSE(cs.CheckInsert("t", Tuple{-1}).ok());
  EXPECT_FALSE(cs.CheckInsert("t", Tuple{10}).ok());
  EXPECT_EQ(cs.size(), 2u);
}

TEST(ConstraintTest, MinCardinalityViolatedByExpiration) {
  // The constraint that only time can break: |expτ(R)| >= k.
  Database db;
  Relation* rel = db.CreateRelation(
                         "sessions", Schema({{"id", ValueType::kInt64}}))
                      .value();
  ASSERT_TRUE(rel->Insert(Tuple{1}, T(5)).ok());
  ASSERT_TRUE(rel->Insert(Tuple{2}, T(10)).ok());

  ConstraintSet cs;
  cs.AddMinCardinality("quorum", "sessions", 2);

  EXPECT_TRUE(cs.CheckCardinalities(db, T(0)).empty());
  // At time 5, <1> is expired: quorum broken purely by time passing.
  auto violations = cs.CheckCardinalities(db, T(5));
  ASSERT_EQ(violations.size(), 1u);
  EXPECT_EQ(violations[0].constraint_name, "quorum");
  EXPECT_EQ(violations[0].relation, "sessions");
}

TEST(ConstraintTest, MinCardinalityOnMissingRelationReports) {
  ConstraintSet cs;
  cs.AddMinCardinality("c", "ghost", 1);
  Database db;
  auto violations = cs.CheckCardinalities(db, T(0));
  ASSERT_EQ(violations.size(), 1u);
  EXPECT_NE(violations[0].detail.find("does not exist"), std::string::npos);
}

TEST(ConstraintTest, EmptySetAcceptsEverything) {
  ConstraintSet cs;
  EXPECT_TRUE(cs.CheckInsert("any", Tuple{1, 2, 3}).ok());
  Database db;
  EXPECT_TRUE(cs.CheckCardinalities(db, T(0)).empty());
  EXPECT_EQ(cs.size(), 0u);
}

}  // namespace
}  // namespace expdb
