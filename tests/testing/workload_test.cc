// Tests for the synthetic workload generator itself: the property tests
// and benchmarks lean on its guarantees (determinism, spec conformance,
// well-typedness of generated expressions).

#include "testing/workload.h"

#include <gtest/gtest.h>

#include "core/eval.h"

namespace expdb {
namespace testing {
namespace {

TEST(WorkloadTest, RelationRespectsSpec) {
  Rng rng(1);
  RelationSpec spec;
  spec.num_tuples = 200;
  spec.arity = 3;
  spec.value_domain = 5;
  spec.ttl_min = 2;
  spec.ttl_max = 9;
  Relation rel = MakeRandomRelation(rng, spec, Timestamp(100));
  EXPECT_EQ(rel.schema().arity(), 3u);
  EXPECT_LE(rel.size(), 200u);  // duplicates merge under set semantics
  EXPECT_GT(rel.size(), 0u);
  rel.ForEach([&](const Tuple& t, Timestamp texp) {
    for (const Value& v : t.values()) {
      ASSERT_TRUE(v.is_int64());
      EXPECT_GE(v.AsInt64(), 0);
      EXPECT_LT(v.AsInt64(), 5);
    }
    EXPECT_GE(texp, Timestamp(102));
    EXPECT_LE(texp, Timestamp(109));
  });
}

TEST(WorkloadTest, InfiniteFraction) {
  Rng rng(2);
  RelationSpec spec;
  spec.num_tuples = 500;
  spec.arity = 1;
  spec.value_domain = 1000;
  spec.infinite_fraction = 0.5;
  Relation rel = MakeRandomRelation(rng, spec);
  size_t infinite = 0;
  rel.ForEach([&](const Tuple&, Timestamp texp) {
    if (texp.IsInfinite()) ++infinite;
  });
  EXPECT_GT(infinite, rel.size() / 4);
  EXPECT_LT(infinite, 3 * rel.size() / 4);
}

TEST(WorkloadTest, DeterministicForSeed) {
  RelationSpec spec;
  spec.num_tuples = 50;
  Rng a(7), b(7);
  Relation ra = MakeRandomRelation(a, spec);
  Relation rb = MakeRandomRelation(b, spec);
  EXPECT_TRUE(Relation::EqualAt(ra, rb, Timestamp::Zero()));
  EXPECT_EQ(ra.size(), rb.size());
}

TEST(WorkloadTest, FillDatabaseCreatesNamedRelations) {
  Rng rng(3);
  Database db;
  RelationSpec spec;
  spec.num_tuples = 10;
  ASSERT_TRUE(FillDatabase(&db, rng, spec, 3, "T").ok());
  EXPECT_EQ(db.RelationNames(),
            (std::vector<std::string>{"T0", "T1", "T2"}));
}

TEST(WorkloadTest, GeneratedExpressionsAlwaysTypeCheckAndEvaluate) {
  Rng rng(4);
  Database db;
  RelationSpec rspec;
  rspec.num_tuples = 30;
  rspec.arity = 2;
  rspec.value_domain = 5;
  ASSERT_TRUE(FillDatabase(&db, rng, rspec, 3).ok());

  ExpressionSpec espec;
  espec.max_depth = 6;
  espec.allow_nonmonotonic = true;
  for (int i = 0; i < 200; ++i) {
    ExpressionPtr e = MakeRandomExpression(rng, db, espec);
    ASSERT_NE(e, nullptr);
    auto schema = e->InferSchema(db);
    ASSERT_TRUE(schema.ok())
        << schema.status().ToString() << "\n" << e->ToString();
    auto result = Evaluate(e, db, Timestamp(1));
    ASSERT_TRUE(result.ok())
        << result.status().ToString() << "\n" << e->ToString();
    EXPECT_EQ(result->relation.schema().arity(), schema->arity());
  }
}

TEST(WorkloadTest, MonotonicSpecNeverGeneratesNonMonotonic) {
  Rng rng(5);
  Database db;
  RelationSpec rspec;
  rspec.num_tuples = 10;
  ASSERT_TRUE(FillDatabase(&db, rng, rspec, 2).ok());
  ExpressionSpec espec;
  espec.max_depth = 6;
  espec.allow_nonmonotonic = false;
  for (int i = 0; i < 100; ++i) {
    EXPECT_TRUE(MakeRandomExpression(rng, db, espec)->IsMonotonic());
  }
}

TEST(WorkloadTest, InterestingTimesSortedDistinctFinite) {
  Rng rng(6);
  Database db;
  RelationSpec spec;
  spec.num_tuples = 100;
  spec.ttl_min = 1;
  spec.ttl_max = 10;
  spec.infinite_fraction = 0.2;
  ASSERT_TRUE(FillDatabase(&db, rng, spec, 2).ok());
  auto times = InterestingTimes(db);
  EXPECT_FALSE(times.empty());
  for (size_t i = 0; i < times.size(); ++i) {
    EXPECT_TRUE(times[i].IsFinite());
    if (i > 0) {
      EXPECT_LT(times[i - 1], times[i]);
    }
  }
}

}  // namespace
}  // namespace testing
}  // namespace expdb
