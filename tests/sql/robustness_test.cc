// SQL robustness: malformed, truncated, and randomized inputs must
// produce Status errors — never crashes — and must leave the session
// fully usable afterwards.

#include <gtest/gtest.h>

#include "common/rng.h"
#include "sql/session.h"

namespace expdb {
namespace sql {
namespace {

TEST(SqlRobustnessTest, MalformedStatementsReturnErrors) {
  Session s;
  const char* bad[] = {
      "",
      "   ",
      "SELECT",
      "SELECT FROM",
      "SELECT * FROM",
      "SELECT * FORM t",
      "CREATE",
      "CREATE TABLE",
      "CREATE TABLE t",
      "CREATE TABLE t (",
      "CREATE TABLE t (x)",
      "CREATE TABLE t (x INT",
      "INSERT t VALUES (1)",
      "INSERT INTO t",
      "INSERT INTO t VALUES",
      "INSERT INTO t VALUES (",
      "INSERT INTO t VALUES (1",
      "INSERT INTO t VALUES (1) TTL",
      "INSERT INTO t VALUES (1) EXPIRE",
      "INSERT INTO t VALUES (1) EXPIRE AT 'soon'",
      "DROP",
      "DROP DATABASE x",
      "ADVANCE",
      "ADVANCE TIME",
      "SHOW",
      "SHOW ME",
      "DELETE t",
      "SELECT * FROM t WHERE",
      "SELECT * FROM t WHERE x",
      "SELECT * FROM t WHERE x =",
      "SELECT * FROM t WHERE x = = 1",
      "SELECT * FROM t GROUP",
      "SELECT * FROM t UNION",
      "SELECT COUNT( FROM t",
      "CREATE VIEW v AS",
      "CREATE VIEW v WITH () AS SELECT * FROM t",
      "CREATE VIEW v WITH (mode) AS SELECT * FROM t",
      "'unterminated",
      "SELECT * FROM t;;;; extra",
      "((((((((",
      "SELECT * FROM t WHERE (((x = 1)",
  };
  for (const char* stmt : bad) {
    auto r = s.Execute(stmt);
    EXPECT_FALSE(r.ok()) << "accepted malformed input: " << stmt;
  }
  // Session is still healthy.
  EXPECT_TRUE(s.Execute("CREATE TABLE t (x INT)").ok());
  EXPECT_TRUE(s.Execute("INSERT INTO t VALUES (1)").ok());
  EXPECT_TRUE(s.Execute("SELECT * FROM t").ok());
}

TEST(SqlRobustnessTest, SemanticErrorsDoNotCorruptState) {
  Session s;
  ASSERT_TRUE(s.Execute("CREATE TABLE t (x INT)").ok());
  const char* bad[] = {
      "SELECT * FROM ghost",
      "SELECT ghost FROM t",
      "INSERT INTO ghost VALUES (1)",
      "INSERT INTO t VALUES ('wrong')",
      "INSERT INTO t VALUES (1, 2)",
      "SELECT x FROM t GROUP BY ghost",
      "SELECT SUM(x) FROM t GROUP BY ghost",
      "SELECT x FROM t UNION SELECT x, x FROM t",
      "CREATE TABLE t (y INT)",   // duplicate
      "DROP VIEW nope",
      "DELETE FROM ghost",
  };
  for (const char* stmt : bad) {
    EXPECT_FALSE(s.Execute(stmt).ok()) << stmt;
  }
  ASSERT_TRUE(s.Execute("INSERT INTO t VALUES (7)").ok());
  auto r = s.Execute("SELECT * FROM t");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->relation->CountUnexpiredAt(r->served_at), 1u);
}

TEST(SqlRobustnessTest, RandomPrintableGarbageNeverCrashes) {
  Session s;
  ASSERT_TRUE(s.Execute("CREATE TABLE t (x INT)").ok());
  Rng rng(424242);
  const std::string alphabet =
      "abcXYZ019 '\",.*()=<>!;-_\n\tSELECTFROMWHEREINSERT";
  for (int trial = 0; trial < 2000; ++trial) {
    std::string garbage;
    const int len = static_cast<int>(rng.UniformInt(1, 60));
    for (int i = 0; i < len; ++i) {
      garbage += alphabet[static_cast<size_t>(
          rng.UniformInt(0, static_cast<int64_t>(alphabet.size()) - 1))];
    }
    // Must return, with either outcome, and never throw or crash.
    auto result = s.Execute(garbage);
    (void)result;
  }
  EXPECT_TRUE(s.Execute("SELECT * FROM t").ok());
}

TEST(SqlRobustnessTest, DeeplyNestedPredicatesParse) {
  Session s;
  ASSERT_TRUE(s.Execute("CREATE TABLE t (x INT)").ok());
  ASSERT_TRUE(s.Execute("INSERT INTO t VALUES (5)").ok());
  std::string stmt = "SELECT * FROM t WHERE ";
  for (int i = 0; i < 200; ++i) stmt += "(";
  stmt += "x = 5";
  for (int i = 0; i < 200; ++i) stmt += ")";
  auto r = s.Execute(stmt);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->relation->CountUnexpiredAt(r->served_at), 1u);
}

TEST(SqlRobustnessTest, LongScriptsAndManyStatements) {
  Session s;
  std::string script = "CREATE TABLE t (x INT);";
  for (int i = 0; i < 500; ++i) {
    script += "INSERT INTO t VALUES (" + std::to_string(i) + ") TTL " +
              std::to_string(1 + i % 50) + ";";
  }
  script += "SELECT COUNT(*) AS n FROM t;";
  auto results = s.ExecuteScript(script);
  ASSERT_TRUE(results.ok());
  const auto& last = results->back();
  EXPECT_TRUE(last.relation->Contains(Tuple{500}));
}

}  // namespace
}  // namespace sql
}  // namespace expdb
