// SQL-facing tests for the two-tier cache pipeline: PREPARE/EXECUTE,
// normalized-literal plan sharing, result-cache hit/patch/miss behavior
// (pinned through the process metrics: a hit performs zero plan-node
// executions), CACHE STATS/CLEAR, SET result_cache_bytes, DDL
// invalidation, and a cached-vs-fresh set-identity sweep across
// operators, time, and a tiny eviction budget.

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "obs/metrics.h"
#include "sql/session.h"

namespace expdb {
namespace sql {
namespace {

ExecResult MustExec(Session& s, const std::string& stmt) {
  auto r = s.Execute(stmt);
  EXPECT_TRUE(r.ok()) << stmt << " -> " << r.status().ToString();
  return r.ok() ? r.MoveValue() : ExecResult{};
}

size_t RowsAt(const ExecResult& r) {
  EXPECT_TRUE(r.relation.has_value());
  return r.relation.has_value() ? r.relation->CountUnexpiredAt(r.served_at)
                                : 0;
}

uint64_t Metric(const char* name) {
  return obs::MetricsRegistry::Global().GetCounter(name)->value();
}

void MakeTable(Session& s) {
  MustExec(s, "CREATE TABLE t (x INT, name STRING)");
  MustExec(s, "INSERT INTO t VALUES (1, 'a'), (2, 'b'), (3, 'c')");
}

// The headline acceptance check: a warm result-cache hit re-executes
// nothing — no root evaluation, no operator node, just a lookup.
TEST(ResultCacheSessionTest, HitPerformsZeroPlanNodeExecutions) {
  Session s;
  MakeTable(s);
  MustExec(s, "SELECT * FROM t WHERE x >= 2");  // fill
  const uint64_t evals0 = Metric("expdb_eval_evaluations_total");
  const uint64_t ops0 = Metric("expdb_eval_operators_total");
  const uint64_t hits0 = Metric("expdb_result_cache_hits_total");
  auto r = MustExec(s, "SELECT * FROM t WHERE x >= 2");
  EXPECT_EQ(RowsAt(r), 2u);
  EXPECT_EQ(r.message, "ok (cached)");
  EXPECT_EQ(Metric("expdb_result_cache_hits_total") - hits0, 1u);
  EXPECT_EQ(Metric("expdb_eval_evaluations_total"), evals0);
  EXPECT_EQ(Metric("expdb_eval_operators_total"), ops0);
}

TEST(ResultCacheSessionTest, LiteralsShareOnePlanSkeleton) {
  Session s;
  MakeTable(s);
  const uint64_t plans0 = Metric("expdb_plan_plans_total");
  const uint64_t hits0 = Metric("expdb_plan_cache_hits_total");
  EXPECT_EQ(RowsAt(MustExec(s, "SELECT * FROM t WHERE x = 1")), 1u);
  EXPECT_EQ(RowsAt(MustExec(s, "SELECT * FROM t WHERE x = 2")), 1u);
  // Different literals, one skeleton: the second statement plans nothing.
  EXPECT_EQ(Metric("expdb_plan_plans_total") - plans0, 1u);
  EXPECT_EQ(Metric("expdb_plan_cache_hits_total") - hits0, 1u);
}

TEST(ResultCacheSessionTest, PrepareExecute) {
  Session s;
  MakeTable(s);
  auto p = MustExec(s, "PREPARE q AS SELECT name FROM t WHERE x >= $1");
  EXPECT_NE(p.message.find("1 parameter"), std::string::npos) << p.message;

  auto r = MustExec(s, "EXECUTE q (2)");
  EXPECT_EQ(RowsAt(r), 2u);
  ASSERT_TRUE(r.relation.has_value());
  EXPECT_EQ(r.relation->schema().attribute(0).name, "name");
  EXPECT_EQ(RowsAt(MustExec(s, "EXECUTE q (3)")), 1u);

  // Re-executing with the same argument is a result-cache hit.
  const uint64_t hits0 = Metric("expdb_result_cache_hits_total");
  EXPECT_EQ(RowsAt(MustExec(s, "EXECUTE q (2)")), 2u);
  EXPECT_EQ(Metric("expdb_result_cache_hits_total") - hits0, 1u);
}

TEST(ResultCacheSessionTest, PrepareExecuteErrors) {
  Session s;
  MakeTable(s);
  MustExec(s, "PREPARE q AS SELECT * FROM t WHERE x = $1");
  EXPECT_FALSE(s.Execute("EXECUTE q (1, 2)").ok());  // arity mismatch
  EXPECT_FALSE(s.Execute("EXECUTE q").ok());
  EXPECT_FALSE(s.Execute("EXECUTE nosuch (1)").ok());
  // $n parameters only make sense under PREPARE.
  EXPECT_FALSE(s.Execute("SELECT * FROM t WHERE x = $1").ok());
  // A parameter index must be positive.
  EXPECT_FALSE(s.Execute("PREPARE bad AS SELECT * FROM t WHERE x = $0").ok());

  // Re-PREPARE replaces silently.
  auto p = MustExec(s, "PREPARE q AS SELECT * FROM t");
  EXPECT_NE(p.message.find("re-prepared"), std::string::npos) << p.message;
  EXPECT_EQ(RowsAt(MustExec(s, "EXECUTE q")), 3u);
}

TEST(ResultCacheSessionTest, PrepareRejectsViews) {
  Session s;
  MakeTable(s);
  MustExec(s, "CREATE VIEW v AS SELECT x FROM t");
  EXPECT_FALSE(s.Execute("PREPARE q AS SELECT * FROM v").ok());
}

TEST(ResultCacheSessionTest, ViewReadsBypassTheResultCache) {
  Session s;
  MakeTable(s);
  MustExec(s, "CREATE VIEW v AS SELECT x FROM t WHERE x >= 2");
  const uint64_t hits0 = Metric("expdb_result_cache_hits_total");
  // Both the canonical view read and a view-in-FROM query take the
  // uncached paths; results stay correct and nothing is served from the
  // result cache.
  EXPECT_EQ(RowsAt(MustExec(s, "SELECT * FROM v")), 2u);
  EXPECT_EQ(RowsAt(MustExec(s, "SELECT x FROM v WHERE x = 3")), 1u);
  EXPECT_EQ(RowsAt(MustExec(s, "SELECT x FROM v WHERE x = 3")), 1u);
  EXPECT_EQ(Metric("expdb_result_cache_hits_total"), hits0);
}

TEST(ResultCacheSessionTest, InsertAndDeletePatchTheCachedResult) {
  Session s;
  MakeTable(s);
  EXPECT_EQ(RowsAt(MustExec(s, "SELECT * FROM t WHERE x >= 1")), 3u);
  const uint64_t patches0 = Metric("expdb_result_cache_patches_total");
  MustExec(s, "INSERT INTO t VALUES (4, 'd')");
  EXPECT_EQ(RowsAt(MustExec(s, "SELECT * FROM t WHERE x >= 1")), 4u);
  EXPECT_EQ(Metric("expdb_result_cache_patches_total") - patches0, 1u);
  MustExec(s, "DELETE FROM t WHERE x = 1");
  EXPECT_EQ(RowsAt(MustExec(s, "SELECT * FROM t WHERE x >= 1")), 3u);
  EXPECT_EQ(Metric("expdb_result_cache_patches_total") - patches0, 2u);
}

TEST(ResultCacheSessionTest, TimePassingComputedExpiryRecomputes) {
  Session s;
  MustExec(s, "CREATE TABLE r (a INT)");
  MustExec(s, "CREATE TABLE q (a INT)");
  MustExec(s, "INSERT INTO r VALUES (1), (2)");
  MustExec(s, "INSERT INTO q VALUES (1) TTL 5");
  // texp(r -exp q) = 5: tuple 1 reappears when q's copy expires.
  const std::string sel = "SELECT a FROM r EXCEPT SELECT a FROM q";
  EXPECT_EQ(RowsAt(MustExec(s, sel)), 1u);
  const uint64_t hits0 = Metric("expdb_result_cache_hits_total");
  EXPECT_EQ(RowsAt(MustExec(s, sel)), 1u);  // warm hit before the expiry
  EXPECT_EQ(Metric("expdb_result_cache_hits_total") - hits0, 1u);
  MustExec(s, "ADVANCE TIME TO 6");
  // Past the computed expiration the entry has lapsed: recompute, and the
  // difference now includes the reappeared tuple.
  EXPECT_EQ(RowsAt(MustExec(s, sel)), 2u);
  EXPECT_EQ(Metric("expdb_result_cache_hits_total") - hits0, 1u);
}

// Regression (issue satellite): Relation::Clear() breaks delta history;
// the session must recompute, not serve the pre-Clear tuples.
TEST(ResultCacheSessionTest, ClearedBaseDoesNotServeStale) {
  Session s;
  MakeTable(s);
  EXPECT_EQ(RowsAt(MustExec(s, "SELECT * FROM t")), 3u);
  s.db().GetRelation("t").value()->Clear();
  EXPECT_EQ(RowsAt(MustExec(s, "SELECT * FROM t")), 0u);
}

TEST(ResultCacheSessionTest, CacheStatsAndClear) {
  Session s;
  MakeTable(s);
  MustExec(s, "SELECT * FROM t");
  MustExec(s, "SELECT * FROM t");
  auto stats = MustExec(s, "CACHE STATS");
  EXPECT_NE(stats.message.find("statement cache: 1 plans"),
            std::string::npos)
      << stats.message;
  EXPECT_NE(stats.message.find("result cache: 1 entries"),
            std::string::npos)
      << stats.message;
  MustExec(s, "PREPARE q AS SELECT * FROM t");
  MustExec(s, "CACHE CLEAR");
  auto cleared = MustExec(s, "CACHE STATS");
  EXPECT_NE(cleared.message.find("statement cache: 0 plans"),
            std::string::npos)
      << cleared.message;
  EXPECT_NE(cleared.message.find("result cache: 0 entries"),
            std::string::npos)
      << cleared.message;
  // CACHE CLEAR keeps prepared statements — only the caches drop.
  EXPECT_NE(cleared.message.find("prepared statements: 1"),
            std::string::npos)
      << cleared.message;
  EXPECT_EQ(RowsAt(MustExec(s, "EXECUTE q")), 3u);
}

TEST(ResultCacheSessionTest, SetResultCacheBytes) {
  Session s;
  MakeTable(s);
  MustExec(s, "SET result_cache_bytes = 0");
  const uint64_t hits0 = Metric("expdb_result_cache_hits_total");
  EXPECT_EQ(RowsAt(MustExec(s, "SELECT * FROM t")), 3u);
  EXPECT_EQ(RowsAt(MustExec(s, "SELECT * FROM t")), 3u);
  EXPECT_EQ(Metric("expdb_result_cache_hits_total"), hits0);  // disabled

  EXPECT_FALSE(s.Execute("SET result_cache_bytes = 'lots'").ok());

  MustExec(s, "SET result_cache_bytes = 1048576");
  EXPECT_EQ(RowsAt(MustExec(s, "SELECT * FROM t")), 3u);  // fill
  EXPECT_EQ(RowsAt(MustExec(s, "SELECT * FROM t")), 3u);  // hit
  EXPECT_EQ(Metric("expdb_result_cache_hits_total") - hits0, 1u);
}

TEST(ResultCacheSessionTest, DdlInvalidatesCachedPlansAndResults) {
  Session s;
  MustExec(s, "CREATE TABLE t (x INT)");
  MustExec(s, "INSERT INTO t VALUES (1)");
  EXPECT_EQ(RowsAt(MustExec(s, "SELECT * FROM t")), 1u);
  EXPECT_EQ(RowsAt(MustExec(s, "SELECT * FROM t")), 1u);  // warm
  MustExec(s, "PREPARE p AS SELECT * FROM t");
  MustExec(s, "DROP TABLE t");
  // The prepared statement read the dropped table: it is gone too.
  EXPECT_FALSE(s.Execute("EXECUTE p").ok());
  // Same name, different schema: nothing stale may serve.
  MustExec(s, "CREATE TABLE t (name STRING)");
  MustExec(s, "INSERT INTO t VALUES ('a'), ('b')");
  auto r = MustExec(s, "SELECT * FROM t");
  EXPECT_EQ(RowsAt(r), 2u);
  ASSERT_TRUE(r.relation.has_value());
  EXPECT_EQ(r.relation->schema().attribute(0).name, "name");
}

// Issue satellite: cached-vs-fresh set identity. A cached session and a
// cache-disabled session replay the same script; every SELECT must agree
// exactly — tuples and texps (Relation::EqualAt) — across operators,
// mutations, time advancing past computed expiries, and a final phase
// under a tiny byte budget that forces LRU eviction mid-sweep.
TEST(ResultCacheSessionTest, CachedMatchesFreshAcrossOperatorsAndTime) {
  Session cached;
  Session fresh;
  MustExec(fresh, "SET result_cache_bytes = 0");
  auto both = [&](const std::string& stmt) {
    MustExec(cached, stmt);
    MustExec(fresh, stmt);
  };
  const std::vector<std::string> queries = {
      "SELECT * FROM r",
      "SELECT b FROM r WHERE a >= 2",
      "SELECT * FROM r WHERE a = 1 OR a = 4",
      "SELECT DISTINCT b FROM r",
      "SELECT a, COUNT(*) FROM r GROUP BY a",
      "SELECT a, SUM(a) AS total FROM r GROUP BY a",
      "SELECT a FROM r UNION SELECT a FROM s",
      "SELECT a FROM r INTERSECT SELECT a FROM s",
      "SELECT a FROM r EXCEPT SELECT a FROM s",
      "SELECT r.b, s.a FROM r, s WHERE r.a = s.a",
  };
  auto sweep = [&](const std::string& where) {
    for (const std::string& q : queries) {
      auto c = MustExec(cached, q);
      auto f = MustExec(fresh, q);
      ASSERT_TRUE(c.relation.has_value() && f.relation.has_value());
      EXPECT_EQ(c.served_at, f.served_at) << where << ": " << q;
      EXPECT_TRUE(
          Relation::EqualAt(*c.relation, *f.relation, c.served_at))
          << where << ": " << q;
    }
  };

  both("CREATE TABLE r (a INT, b STRING)");
  both("CREATE TABLE s (a INT)");
  both("INSERT INTO r VALUES (1, 'x'), (2, 'y') TTL 4");
  both("INSERT INTO r VALUES (2, 'z'), (3, 'w') EXPIRE NEVER");
  both("INSERT INTO s VALUES (1) TTL 6");
  both("INSERT INTO s VALUES (3), (5) EXPIRE NEVER");
  sweep("initial");
  sweep("warm");  // second pass: cached side serves hits

  both("ADVANCE TIME 3");
  sweep("t=3");
  both("INSERT INTO r VALUES (4, 'v') TTL 5");
  both("DELETE FROM s WHERE a = 5");
  sweep("t=3 after mutations");

  both("ADVANCE TIME 4");  // past the TTL-4 tuples and s's TTL 6
  sweep("t=7");

  // Tiny budget: entries evict under churn, correctness must hold.
  MustExec(cached, "SET result_cache_bytes = 2048");
  both("INSERT INTO r VALUES (5, 'u') TTL 9");
  sweep("tiny budget");
  both("ADVANCE TIME 3");
  sweep("tiny budget t=10");
}

}  // namespace
}  // namespace sql
}  // namespace expdb
