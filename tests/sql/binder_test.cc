// Binder unit tests: name resolution (qualified, unqualified, aliased,
// ambiguous), lowering shapes (join formation, aggregate chains, set
// ops), and error reporting.

#include "sql/binder.h"

#include <gtest/gtest.h>

#include "core/eval.h"
#include "sql/parser.h"

namespace expdb {
namespace sql {
namespace {

class BinderTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(db_.CreateRelation("pol", Schema({{"uid", ValueType::kInt64},
                                                  {"deg", ValueType::kInt64}}))
                    .ok());
    ASSERT_TRUE(db_.CreateRelation("el", Schema({{"uid", ValueType::kInt64},
                                                 {"deg", ValueType::kInt64}}))
                    .ok());
  }

  Result<BoundSelect> Bind(const std::string& sql) {
    auto stmt = ParseStatement(sql);
    EXPECT_TRUE(stmt.ok()) << stmt.status().ToString();
    return BindSelect(std::get<SelectStatement>(*stmt), db_);
  }

  Database db_;
};

TEST_F(BinderTest, StarSelectsWholeRelation) {
  auto bound = Bind("SELECT * FROM pol");
  ASSERT_TRUE(bound.ok());
  EXPECT_EQ(bound->expr->kind(), ExprKind::kBase);
  EXPECT_EQ(bound->column_names,
            (std::vector<std::string>{"uid", "deg"}));
}

TEST_F(BinderTest, ColumnListBecomesProjection) {
  auto bound = Bind("SELECT deg, uid FROM pol");
  ASSERT_TRUE(bound.ok());
  EXPECT_EQ(bound->expr->kind(), ExprKind::kProject);
  EXPECT_EQ(bound->expr->projection(), (std::vector<size_t>{1, 0}));
}

TEST_F(BinderTest, AliasRenamesOutput) {
  auto bound = Bind("SELECT uid AS who FROM pol");
  ASSERT_TRUE(bound.ok());
  EXPECT_EQ(bound->column_names, (std::vector<std::string>{"who"}));
}

TEST_F(BinderTest, TwoTableWhereBecomesJoinNode) {
  auto bound = Bind("SELECT pol.uid FROM pol, el WHERE pol.uid = el.uid");
  ASSERT_TRUE(bound.ok());
  ASSERT_EQ(bound->expr->kind(), ExprKind::kProject);
  EXPECT_EQ(bound->expr->left()->kind(), ExprKind::kJoin);
}

TEST_F(BinderTest, QualifiedNamesUseTableAliases) {
  auto bound =
      Bind("SELECT p.uid FROM pol p, el e WHERE p.deg = e.deg");
  ASSERT_TRUE(bound.ok());
  // Original table name no longer resolves once aliased.
  auto bad = Bind("SELECT pol.uid FROM pol p, el e WHERE p.deg = e.deg");
  EXPECT_FALSE(bad.ok());
}

TEST_F(BinderTest, UnqualifiedAmbiguityDetected) {
  EXPECT_EQ(Bind("SELECT uid FROM pol, el").status().code(),
            StatusCode::kInvalidArgument);
  // Qualification resolves it.
  EXPECT_TRUE(Bind("SELECT pol.uid FROM pol, el").ok());
}

TEST_F(BinderTest, UnknownColumnAndTable) {
  EXPECT_EQ(Bind("SELECT ghost FROM pol").status().code(),
            StatusCode::kNotFound);
  EXPECT_EQ(Bind("SELECT uid FROM ghost").status().code(),
            StatusCode::kNotFound);
}

TEST_F(BinderTest, SelfJoinThroughAliases) {
  auto bound = Bind(
      "SELECT a.uid FROM pol a, pol b WHERE a.uid = b.deg");
  ASSERT_TRUE(bound.ok());
  auto result = Evaluate(bound->expr, db_, Timestamp(0));
  ASSERT_TRUE(result.ok());
}

TEST_F(BinderTest, AggregateChainShape) {
  auto bound = Bind(
      "SELECT deg, COUNT(*), SUM(uid) FROM pol GROUP BY deg");
  ASSERT_TRUE(bound.ok());
  // π over agg over agg over base.
  const Expression* n = bound->expr.get();
  ASSERT_EQ(n->kind(), ExprKind::kProject);
  EXPECT_EQ(n->projection(), (std::vector<size_t>{1, 2, 3}));
  n = n->left().get();
  ASSERT_EQ(n->kind(), ExprKind::kAggregate);
  EXPECT_EQ(n->aggregate().kind, AggregateKind::kSum);
  n = n->left().get();
  ASSERT_EQ(n->kind(), ExprKind::kAggregate);
  EXPECT_EQ(n->aggregate().kind, AggregateKind::kCount);
  EXPECT_EQ(n->left()->kind(), ExprKind::kBase);
  EXPECT_EQ(bound->column_names,
            (std::vector<std::string>{"deg", "count", "sum_1"}));
}

TEST_F(BinderTest, GroupByUnknownColumn) {
  EXPECT_FALSE(Bind("SELECT COUNT(*) FROM pol GROUP BY ghost").ok());
}

TEST_F(BinderTest, SetOpsLowerToAlgebraNodes) {
  auto u = Bind("SELECT uid FROM pol UNION SELECT uid FROM el");
  ASSERT_TRUE(u.ok());
  EXPECT_EQ(u->expr->kind(), ExprKind::kUnion);
  auto i = Bind("SELECT uid FROM pol INTERSECT SELECT uid FROM el");
  ASSERT_TRUE(i.ok());
  EXPECT_EQ(i->expr->kind(), ExprKind::kIntersect);
  auto d = Bind("SELECT uid FROM pol EXCEPT SELECT uid FROM el");
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(d->expr->kind(), ExprKind::kDifference);
  EXPECT_FALSE(d->expr->IsMonotonic());
}

TEST_F(BinderTest, ThreeTableFromBuildsProductChain) {
  auto bound = Bind("SELECT pol.uid FROM pol, el, pol x WHERE pol.deg = 5");
  ASSERT_TRUE(bound.ok());
  // project -> select -> product(product(pol, el), x)
  const Expression* n = bound->expr.get();
  ASSERT_EQ(n->kind(), ExprKind::kProject);
  n = n->left().get();
  ASSERT_EQ(n->kind(), ExprKind::kSelect);
  n = n->left().get();
  ASSERT_EQ(n->kind(), ExprKind::kProduct);
  EXPECT_EQ(n->left()->kind(), ExprKind::kProduct);
}

TEST_F(BinderTest, StarWithGroupByRejected) {
  EXPECT_EQ(Bind("SELECT * FROM pol GROUP BY deg").status().code(),
            StatusCode::kInvalidArgument);
}

TEST_F(BinderTest, BindWhereStandalone) {
  auto stmt = ParseStatement("SELECT * FROM pol WHERE deg >= 30");
  ASSERT_TRUE(stmt.ok());
  const auto& select = std::get<SelectStatement>(*stmt);
  ASSERT_NE(select.where, nullptr);
  auto pred = BindWhere(*select.where, select.from, db_);
  ASSERT_TRUE(pred.ok());
  EXPECT_TRUE(pred->Evaluate(Tuple{1, 35}));
  EXPECT_FALSE(pred->Evaluate(Tuple{1, 25}));
}

}  // namespace
}  // namespace sql
}  // namespace expdb
