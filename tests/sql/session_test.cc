// End-to-end ExpSQL session tests: DDL, expiring inserts, transparent
// queries, ADVANCE TIME, views with every maintenance mode, and the paper's
// running example driven purely through SQL.

#include "sql/session.h"

#include <cstdio>
#include <fstream>
#include <sstream>

#include <gtest/gtest.h>

#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "obs/validate.h"

namespace expdb {
namespace sql {
namespace {

ExecResult MustExec(Session& s, const std::string& stmt) {
  auto r = s.Execute(stmt);
  EXPECT_TRUE(r.ok()) << stmt << " -> " << r.status().ToString();
  return r.ok() ? r.MoveValue() : ExecResult{};
}

size_t RowsAt(const ExecResult& r) {
  EXPECT_TRUE(r.relation.has_value());
  return r.relation.has_value()
             ? r.relation->CountUnexpiredAt(r.served_at)
             : 0;
}

TEST(SessionTest, CreateInsertSelect) {
  Session s;
  MustExec(s, "CREATE TABLE t (x INT, name STRING)");
  MustExec(s, "INSERT INTO t VALUES (1, 'a'), (2, 'b')");
  auto r = MustExec(s, "SELECT * FROM t");
  EXPECT_EQ(RowsAt(r), 2u);
  EXPECT_EQ(r.relation->schema().attribute(0).name, "x");
}

TEST(SessionTest, ExpirationIsTransparentToQueries) {
  Session s;
  MustExec(s, "CREATE TABLE t (x INT)");
  MustExec(s, "INSERT INTO t VALUES (1) TTL 5");
  MustExec(s, "INSERT INTO t VALUES (2) TTL 10");
  MustExec(s, "INSERT INTO t VALUES (3) EXPIRE NEVER");
  EXPECT_EQ(RowsAt(MustExec(s, "SELECT * FROM t")), 3u);
  MustExec(s, "ADVANCE TIME 5");
  EXPECT_EQ(RowsAt(MustExec(s, "SELECT * FROM t")), 2u);
  MustExec(s, "ADVANCE TIME TO 10");
  EXPECT_EQ(RowsAt(MustExec(s, "SELECT * FROM t")), 1u);
  MustExec(s, "ADVANCE TIME 1000000");
  EXPECT_EQ(RowsAt(MustExec(s, "SELECT * FROM t")), 1u);  // EXPIRE NEVER
}

TEST(SessionTest, ExpireAtAbsolute) {
  Session s;
  MustExec(s, "CREATE TABLE t (x INT)");
  MustExec(s, "ADVANCE TIME 5");
  MustExec(s, "INSERT INTO t VALUES (1) EXPIRE AT 8");
  // Inserting with an expiration in the past is rejected.
  EXPECT_FALSE(s.Execute("INSERT INTO t VALUES (2) EXPIRE AT 3").ok());
  MustExec(s, "ADVANCE TIME 3");
  EXPECT_EQ(RowsAt(MustExec(s, "SELECT * FROM t")), 0u);
}

TEST(SessionTest, WhereAndProjection) {
  Session s;
  MustExec(s, "CREATE TABLE pol (uid INT, deg INT)");
  MustExec(s, "INSERT INTO pol VALUES (1, 25), (2, 25), (3, 35)");
  auto r = MustExec(s, "SELECT uid FROM pol WHERE deg = 25");
  EXPECT_EQ(RowsAt(r), 2u);
  auto dedup = MustExec(s, "SELECT deg FROM pol");
  EXPECT_EQ(RowsAt(dedup), 2u);  // set semantics: {25, 35}
}

TEST(SessionTest, JoinThroughSql) {
  Session s;
  MustExec(s, "CREATE TABLE a (x INT, y INT)");
  MustExec(s, "CREATE TABLE b (x INT, z INT)");
  MustExec(s, "INSERT INTO a VALUES (1, 10), (2, 20)");
  MustExec(s, "INSERT INTO b VALUES (1, 100), (3, 300)");
  auto r = MustExec(
      s, "SELECT a.y, b.z FROM a, b WHERE a.x = b.x");
  EXPECT_EQ(RowsAt(r), 1u);
  EXPECT_TRUE(r.relation->Contains(Tuple{10, 100}));
}

TEST(SessionTest, AmbiguousColumnRejected) {
  Session s;
  MustExec(s, "CREATE TABLE a (x INT)");
  MustExec(s, "CREATE TABLE b (x INT)");
  auto r = s.Execute("SELECT x FROM a, b WHERE x = 1");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST(SessionTest, GroupByCountMatchesFigure3a) {
  Session s;
  MustExec(s, "CREATE TABLE pol (uid INT, deg INT)");
  MustExec(s, "INSERT INTO pol VALUES (1, 25) EXPIRE AT 10");
  MustExec(s, "INSERT INTO pol VALUES (2, 25) EXPIRE AT 15");
  MustExec(s, "INSERT INTO pol VALUES (3, 35) EXPIRE AT 10");
  auto r = MustExec(s, "SELECT deg, COUNT(*) FROM pol GROUP BY deg");
  EXPECT_EQ(RowsAt(r), 2u);
  EXPECT_TRUE(r.relation->Contains(Tuple{25, 2}));
  EXPECT_TRUE(r.relation->Contains(Tuple{35, 1}));
}

TEST(SessionTest, MultipleAggregates) {
  Session s;
  MustExec(s, "CREATE TABLE t (k INT, v INT)");
  MustExec(s, "INSERT INTO t VALUES (1, 10), (1, 20), (2, 5)");
  auto r = MustExec(
      s, "SELECT k, SUM(v), AVG(v), MIN(v) FROM t GROUP BY k");
  EXPECT_EQ(RowsAt(r), 2u);
  EXPECT_TRUE(r.relation->Contains(Tuple{1, 30, 15.0, 10}));
  EXPECT_TRUE(r.relation->Contains(Tuple{2, 5, 5.0, 5}));
}

TEST(SessionTest, GlobalAggregateWithoutGroupBy) {
  Session s;
  MustExec(s, "CREATE TABLE t (v INT)");
  MustExec(s, "INSERT INTO t VALUES (1), (2), (3)");
  auto r = MustExec(s, "SELECT COUNT(*) AS n FROM t");
  EXPECT_EQ(RowsAt(r), 1u);
  EXPECT_TRUE(r.relation->Contains(Tuple{3}));
  EXPECT_EQ(r.relation->schema().attribute(0).name, "n");
}

TEST(SessionTest, BareColumnOutsideGroupByRejected) {
  Session s;
  MustExec(s, "CREATE TABLE t (k INT, v INT)");
  EXPECT_FALSE(s.Execute("SELECT v, COUNT(*) FROM t GROUP BY k").ok());
}

TEST(SessionTest, SetOperations) {
  Session s;
  MustExec(s, "CREATE TABLE a (x INT)");
  MustExec(s, "CREATE TABLE b (x INT)");
  MustExec(s, "INSERT INTO a VALUES (1), (2), (3)");
  MustExec(s, "INSERT INTO b VALUES (2), (3), (4)");
  EXPECT_EQ(RowsAt(MustExec(
                s, "SELECT x FROM a UNION SELECT x FROM b")),
            4u);
  EXPECT_EQ(RowsAt(MustExec(
                s, "SELECT x FROM a INTERSECT SELECT x FROM b")),
            2u);
  EXPECT_EQ(RowsAt(MustExec(
                s, "SELECT x FROM a EXCEPT SELECT x FROM b")),
            1u);
}

TEST(SessionTest, PaperDifferenceThroughSql) {
  // Figures 3(b)-(d) driven via SQL.
  Session s;
  MustExec(s, "CREATE TABLE pol (uid INT, deg INT)");
  MustExec(s, "CREATE TABLE el (uid INT, deg INT)");
  MustExec(s, "INSERT INTO pol VALUES (1, 25) EXPIRE AT 10");
  MustExec(s, "INSERT INTO pol VALUES (2, 25) EXPIRE AT 15");
  MustExec(s, "INSERT INTO pol VALUES (3, 35) EXPIRE AT 10");
  MustExec(s, "INSERT INTO el VALUES (1, 75) EXPIRE AT 5");
  MustExec(s, "INSERT INTO el VALUES (2, 85) EXPIRE AT 3");
  MustExec(s, "INSERT INTO el VALUES (4, 90) EXPIRE AT 2");
  const std::string q =
      "SELECT uid FROM pol EXCEPT SELECT uid FROM el";
  EXPECT_EQ(RowsAt(MustExec(s, q)), 1u);   // {<3>}
  MustExec(s, "ADVANCE TIME 3");
  EXPECT_EQ(RowsAt(MustExec(s, q)), 2u);   // {<2>, <3>}
  MustExec(s, "ADVANCE TIME 2");
  EXPECT_EQ(RowsAt(MustExec(s, q)), 3u);   // {<1>, <2>, <3>}
}

TEST(SessionTest, MaterializedViewLifecycle) {
  Session s;
  MustExec(s, "CREATE TABLE t (x INT)");
  MustExec(s, "INSERT INTO t VALUES (1) TTL 5");
  MustExec(s, "INSERT INTO t VALUES (2) TTL 10");
  auto created = MustExec(s, "CREATE VIEW v AS SELECT x FROM t");
  EXPECT_NE(created.message.find("monotonic"), std::string::npos);
  EXPECT_EQ(RowsAt(MustExec(s, "SELECT * FROM v")), 2u);
  MustExec(s, "ADVANCE TIME 7");
  EXPECT_EQ(RowsAt(MustExec(s, "SELECT * FROM v")), 1u);
  MustExec(s, "DROP VIEW v");
  EXPECT_FALSE(s.Execute("SELECT * FROM v").ok());  // now unknown table
}

TEST(SessionTest, ViewWithPatchMode) {
  Session s;
  MustExec(s, "CREATE TABLE r (x INT)");
  MustExec(s, "CREATE TABLE q (x INT)");
  MustExec(s, "INSERT INTO r VALUES (1) EXPIRE AT 10");
  MustExec(s, "INSERT INTO q VALUES (1) EXPIRE AT 4");
  MustExec(s,
           "CREATE VIEW v WITH (mode = patch) AS "
           "SELECT x FROM r EXCEPT SELECT x FROM q");
  EXPECT_EQ(RowsAt(MustExec(s, "SELECT * FROM v")), 0u);
  MustExec(s, "ADVANCE TIME 5");
  // The critical tuple <1> was patched in, not recomputed.
  EXPECT_EQ(RowsAt(MustExec(s, "SELECT * FROM v")), 1u);
  EXPECT_EQ(s.views().GetView("v").value()->stats().recomputations, 0u);
  EXPECT_EQ(s.views().GetView("v").value()->stats().patches_applied, 1u);
}

TEST(SessionTest, ViewWithAggModeOption) {
  Session s;
  MustExec(s, "CREATE TABLE t (k INT, v INT)");
  MustExec(s, "INSERT INTO t VALUES (1, 5) EXPIRE AT 20");
  MustExec(s, "INSERT INTO t VALUES (1, 9) EXPIRE AT 10");
  MustExec(s,
           "CREATE VIEW m WITH (agg = contributing) AS "
           "SELECT k, MIN(v) FROM t GROUP BY k");
  // min = 5 is held by the tuple living to 20: view valid past 10.
  EXPECT_TRUE(s.views().GetView("m").value()->texp().IsInfinite());
  MustExec(s, "ADVANCE TIME 12");
  auto r = MustExec(s, "SELECT * FROM m");
  EXPECT_TRUE(r.relation->Contains(Tuple{1, 5}));
  EXPECT_EQ(s.views().GetView("m").value()->stats().recomputations, 0u);
}

TEST(SessionTest, ComplexQueriesOverViewsWork) {
  Session s;
  MustExec(s, "CREATE TABLE t (x INT, y INT)");
  MustExec(s, "INSERT INTO t VALUES (1, 10), (2, 20), (3, 30) TTL 8");
  MustExec(s, "INSERT INTO t VALUES (4, 40) TTL 20");
  MustExec(s, "CREATE VIEW v AS SELECT x, y FROM t");
  // Filtering a view.
  auto filtered = MustExec(s, "SELECT x FROM v WHERE y >= 20");
  EXPECT_EQ(RowsAt(filtered), 3u);
  // Joining a view against a base table.
  MustExec(s, "CREATE TABLE names (x INT, name STRING)");
  MustExec(s, "INSERT INTO names VALUES (2, 'bob'), (4, 'dana')");
  auto joined = MustExec(
      s, "SELECT name FROM v, names WHERE v.x = names.x");
  EXPECT_EQ(RowsAt(joined), 2u);
  // Aggregating a view.
  auto agg = MustExec(s, "SELECT COUNT(*) FROM v");
  EXPECT_TRUE(agg.relation->Contains(Tuple{4}));
  // View contents respect expiration in derived queries too.
  MustExec(s, "ADVANCE TIME 10");
  auto later = MustExec(s, "SELECT COUNT(*) FROM v");
  EXPECT_TRUE(later.relation->Contains(Tuple{1}));
}

TEST(SessionTest, SetOpMixingViewAndTable) {
  Session s;
  MustExec(s, "CREATE TABLE a (x INT)");
  MustExec(s, "CREATE TABLE b (x INT)");
  MustExec(s, "INSERT INTO a VALUES (1), (2)");
  MustExec(s, "INSERT INTO b VALUES (2), (3)");
  MustExec(s, "CREATE VIEW va AS SELECT x FROM a");
  auto r = MustExec(s, "SELECT x FROM va UNION SELECT x FROM b");
  EXPECT_EQ(RowsAt(r), 3u);
}

TEST(SessionTest, ViewDefinitionsAreRewrittenForIndependence) {
  // The session runs the Sec. 3.1 rewriter over every view definition.
  // Observable effect here: σq(σp(R)) collapses to a single merged
  // selection, and a filtered EXCEPT keeps its per-arm pushed form, so
  // texp(e) reflects only the criticals that survive the filters.
  Session s;
  ASSERT_TRUE(s.Execute("CREATE TABLE r (x INT)").ok());
  ASSERT_TRUE(s.Execute("CREATE TABLE q (x INT)").ok());
  ASSERT_TRUE(s.Execute("INSERT INTO r VALUES (1) EXPIRE AT 20").ok());
  ASSERT_TRUE(s.Execute("INSERT INTO q VALUES (1) EXPIRE AT 4").ok());
  ASSERT_TRUE(s.Execute("INSERT INTO r VALUES (10) EXPIRE AT 20").ok());
  ASSERT_TRUE(s.Execute("INSERT INTO q VALUES (10) EXPIRE AT 6").ok());
  ASSERT_TRUE(
      s.Execute("CREATE VIEW v WITH (mode = lazy) AS "
                "SELECT x FROM r WHERE x >= 5 "
                "EXCEPT SELECT x FROM q WHERE x >= 5")
          .ok());
  MaterializedView* v = s.views().GetView("v").value();
  EXPECT_EQ(v->expression()->kind(), ExprKind::kDifference);
  // Only <10> (q-expiry 6) is critical after the filter; <1>'s q-expiry
  // at 4 is irrelevant.
  EXPECT_EQ(v->texp(), Timestamp(6));
}

TEST(SessionTest, ViewWithToleranceOption) {
  Session s;
  MustExec(s, "CREATE TABLE t (k INT, v INT)");
  MustExec(s, "INSERT INTO t VALUES (1, 3) EXPIRE AT 10");
  MustExec(s, "INSERT INTO t VALUES (1, 7) EXPIRE AT 20");
  MustExec(s, "INSERT INTO t VALUES (1, 100) EXPIRE AT 30");
  MustExec(s,
           "CREATE VIEW strict_sum AS SELECT k, SUM(v) FROM t GROUP BY k");
  MustExec(s,
           "CREATE VIEW approx_sum WITH (tolerance = 5) AS "
           "SELECT k, SUM(v) FROM t GROUP BY k");
  // Exact view dies at the first drift (10); the ε = 5 view tolerates the
  // 3-unit drift and lives until 20.
  EXPECT_EQ(s.views().GetView("strict_sum").value()->texp(), Timestamp(10));
  EXPECT_EQ(s.views().GetView("approx_sum").value()->texp(), Timestamp(20));
  EXPECT_FALSE(
      s.Execute(
           "CREATE VIEW bad WITH (tolerance = 'x') AS SELECT k FROM t")
          .ok());
}

TEST(SessionTest, UnknownViewOptionRejected) {
  Session s;
  MustExec(s, "CREATE TABLE t (x INT)");
  EXPECT_FALSE(
      s.Execute("CREATE VIEW v WITH (mode = warp) AS SELECT x FROM t")
          .ok());
  EXPECT_FALSE(
      s.Execute("CREATE VIEW v WITH (frobnicate = 1) AS SELECT x FROM t")
          .ok());
}

TEST(SessionTest, DeleteRespectsVisibility) {
  Session s;
  MustExec(s, "CREATE TABLE t (x INT)");
  MustExec(s, "INSERT INTO t VALUES (1) TTL 3");
  MustExec(s, "INSERT INTO t VALUES (2), (3)");
  MustExec(s, "ADVANCE TIME 5");
  auto r = MustExec(s, "DELETE FROM t WHERE x >= 2");
  EXPECT_NE(r.message.find("2 rows"), std::string::npos);
  EXPECT_EQ(RowsAt(MustExec(s, "SELECT * FROM t")), 0u);
}

TEST(SessionTest, ShowStatements) {
  Session s;
  MustExec(s, "CREATE TABLE t (x INT)");
  MustExec(s, "CREATE VIEW v AS SELECT x FROM t");
  EXPECT_NE(MustExec(s, "SHOW TABLES").message.find("t"),
            std::string::npos);
  EXPECT_NE(MustExec(s, "SHOW VIEWS").message.find("v"),
            std::string::npos);
  MustExec(s, "ADVANCE TIME 4");
  EXPECT_NE(MustExec(s, "SHOW TIME").message.find("4"), std::string::npos);
}

TEST(SessionTest, ExecuteScriptStopsAtFirstError) {
  Session s;
  auto r = s.ExecuteScript(
      "CREATE TABLE t (x INT);"
      "INSERT INTO t VALUES ('wrong type');"
      "INSERT INTO t VALUES (1)");
  EXPECT_FALSE(r.ok());
  // The table exists, the bad insert failed, the third never ran.
  EXPECT_EQ(RowsAt(MustExec(s, "SELECT * FROM t")), 0u);
}

TEST(SessionTest, FormatExecResultRendersTable) {
  Session s;
  MustExec(s, "CREATE TABLE t (x INT)");
  MustExec(s, "INSERT INTO t VALUES (7) TTL 9");
  auto r = MustExec(s, "SELECT * FROM t");
  std::string text = FormatExecResult(r);
  EXPECT_NE(text.find("x"), std::string::npos);
  EXPECT_NE(text.find("7"), std::string::npos);
  EXPECT_NE(text.find("1 row"), std::string::npos);
  auto msg = MustExec(s, "SHOW TIME");
  EXPECT_EQ(FormatExecResult(msg), msg.message + "\n");
}

TEST(SessionTest, LazyExpirationPolicySession) {
  Session::Options opts;
  opts.expiration.policy = RemovalPolicy::kLazy;
  opts.expiration.lazy_compaction_threshold = 0;
  Session s(opts);
  MustExec(s, "CREATE TABLE t (x INT)");
  MustExec(s, "INSERT INTO t VALUES (1) TTL 2");
  MustExec(s, "ADVANCE TIME 5");
  // Physically present, logically invisible.
  EXPECT_EQ(s.db().GetRelation("t").value()->size(), 1u);
  EXPECT_EQ(RowsAt(MustExec(s, "SELECT * FROM t")), 0u);
}

// --- STATS meta-command (docs/OBSERVABILITY.md) --------------------------

TEST(SessionStatsTest, StatsRendersMetricsRelationEndToEnd) {
  Session s;
  MustExec(s, "CREATE TABLE t (x INT)");
  MustExec(s, "INSERT INTO t VALUES (1), (2) TTL 9");
  MustExec(s, "SELECT * FROM t");
  auto r = MustExec(s, "STATS");
  ASSERT_TRUE(r.relation.has_value());
  // Schema: metric STRING, type STRING, value DOUBLE.
  ASSERT_EQ(r.relation->schema().arity(), 3u);
  EXPECT_EQ(r.relation->schema().attribute(0).name, "metric");
  EXPECT_EQ(r.relation->schema().attribute(1).name, "type");
  EXPECT_EQ(r.relation->schema().attribute(2).name, "value");
  // The snapshot spans all five subsystems with >= 12 distinct metrics,
  // and histogram metrics expand to _count/_sum/_p50/_p95/_p99 rows.
  std::map<std::string, double> rows;
  bool eval = false, expiration = false, view = false, replica = false,
       sql_seen = false, p99_seen = false;
  for (const auto& [tuple, texp] : r.relation->SortedEntries()) {
    const std::string& name = tuple.values()[0].AsString();
    rows[name] = tuple.values()[2].AsDouble();
    if (name.rfind("expdb_eval_", 0) == 0) eval = true;
    if (name.rfind("expdb_expiration_", 0) == 0) expiration = true;
    if (name.rfind("expdb_view_", 0) == 0) view = true;
    if (name.rfind("expdb_replica_", 0) == 0) replica = true;
    if (name.rfind("expdb_sql_", 0) == 0) sql_seen = true;
    if (name.size() > 4 && name.substr(name.size() - 4) == "_p99") {
      p99_seen = true;
    }
  }
  EXPECT_GE(rows.size(), 12u);
  EXPECT_TRUE(eval);
  EXPECT_TRUE(expiration);
  EXPECT_TRUE(view);
  EXPECT_TRUE(replica);
  EXPECT_TRUE(sql_seen);
  EXPECT_TRUE(p99_seen);
  // The statements this test executed are themselves visible.
  EXPECT_GE(rows["expdb_sql_statements_total"], 4.0);
  EXPECT_GE(rows["expdb_eval_evaluations_total"], 1.0);
  EXPECT_GE(rows["expdb_expiration_inserted_total"], 2.0);
  // And the whole thing renders through the printer.
  std::string text = FormatExecResult(r);
  EXPECT_NE(text.find("expdb_sql_statements_total"), std::string::npos);
  EXPECT_NE(text.find("metric"), std::string::npos);
}

TEST(SessionStatsTest, StatsPrometheusAndJsonExporters) {
  Session s;
  MustExec(s, "CREATE TABLE t (x INT)");
  auto prom = MustExec(s, "STATS PROMETHEUS");
  EXPECT_FALSE(prom.relation.has_value());
  EXPECT_NE(prom.message.find("# TYPE"), std::string::npos);
  EXPECT_NE(prom.message.find("expdb_sql_statements_total"),
            std::string::npos);
  auto json = MustExec(s, "STATS JSON");
  EXPECT_EQ(json.message.front(), '[');
  EXPECT_NE(json.message.find("\"expdb_view_count\""), std::string::npos);
}

TEST(SessionStatsTest, ExplainStatsIncludesSpans) {
  Session s;
  MustExec(s, "CREATE TABLE t (x INT)");
  MustExec(s, "INSERT INTO t VALUES (1) TTL 5");
  MustExec(s, "SELECT * FROM t");
  auto r = MustExec(s, "EXPLAIN STATS");
  EXPECT_FALSE(r.relation.has_value());
  EXPECT_NE(r.message.find("expdb_eval_evaluations_total"),
            std::string::npos);
  EXPECT_NE(r.message.find("recent spans"), std::string::npos);
  // The session keeps the global recorder enabled, so the statements
  // above produced sql.statement spans.
  EXPECT_NE(r.message.find("sql.statement"), std::string::npos);
}

TEST(SessionStatsTest, StatsResetZeroesAndErrorsAreCounted) {
  Session s;
  MustExec(s, "STATS RESET");  // zeroes everything, itself included
  MustExec(s, "CREATE TABLE t (x INT)");
  EXPECT_FALSE(s.Execute("SELECT * FROM missing_table").ok());
  EXPECT_FALSE(s.Execute("THIS IS NOT SQL").ok());
  auto r = MustExec(s, "STATS");
  std::map<std::string, double> rows;
  for (const auto& [tuple, texp] : r.relation->SortedEntries()) {
    rows[tuple.values()[0].AsString()] = tuple.values()[2].AsDouble();
  }
  EXPECT_DOUBLE_EQ(rows["expdb_sql_errors_total"], 2.0);
  // CREATE + 2 failures + STATS = 4 statements counted since the reset
  // (STATS RESET counted itself, then zeroed the counter).
  EXPECT_DOUBLE_EQ(rows["expdb_sql_statements_total"], 4.0);
}

TEST(SessionStatsTest, StatsParseErrors) {
  Session s;
  EXPECT_FALSE(s.Execute("STATS SIDEWAYS").ok());
  EXPECT_FALSE(s.Execute("EXPLAIN SELECT").ok());
}

// --- SET / TRACE / event log -----------------------------------------------

TEST(SessionSetTest, SlowQueryThresholdCountsSlowStatements) {
  Session s;
  obs::Counter* slow =
      obs::MetricsRegistry::Global().GetCounter("expdb_sql_slow_queries_total");
  const uint64_t before = slow->value();
  MustExec(s, "CREATE TABLE t (x INT)");
  EXPECT_EQ(slow->value(), before);  // threshold disabled by default
  MustExec(s, "SET slow_query_ns = 0");
  MustExec(s, "SELECT * FROM t");
  EXPECT_GE(slow->value(), before + 1);
  MustExec(s, "SET slow_query_ns = off");
  const uint64_t after_off = slow->value();
  MustExec(s, "SELECT * FROM t");
  EXPECT_EQ(slow->value(), after_off);
}

TEST(SessionSetTest, SlowQueryEmitsEventWhenLogEnabled) {
  Session s;
  obs::EventLog& log = obs::EventLog::Global();
  const bool was_enabled = log.enabled();
  log.Clear();
  MustExec(s, "SET event_log = on");
  MustExec(s, "SET slow_query_ns = 0");
  MustExec(s, "CREATE TABLE t (x INT)");
  bool saw = false;
  for (const auto& e : log.Snapshot()) {
    if (e.component == "sql" && e.event == "slow_query") {
      saw = true;
      EXPECT_EQ(e.severity, obs::LogSeverity::kWarn);
      EXPECT_NE(e.trace_id, 0u);  // emitted under the statement's span
    }
  }
  EXPECT_TRUE(saw);
  log.set_enabled(was_enabled);
  log.Clear();
}

TEST(SessionSetTest, SetValidationErrors) {
  Session s;
  MustExec(s, "SET parallelism = 4");
  MustExec(s, "SET parallelism = 0");  // 0 = hardware concurrency
  EXPECT_FALSE(s.Execute("SET parallelism = 'lots'").ok());
  EXPECT_FALSE(s.Execute("SET slow_query_ns = 'fast'").ok());
  EXPECT_FALSE(s.Execute("SET event_log = sideways").ok());
  EXPECT_FALSE(s.Execute("SET warp_speed = 9").ok());
}

TEST(SessionSetTest, ParallelQueriesStillCorrectAfterSetParallelism) {
  Session s;
  MustExec(s, "CREATE TABLE t (x INT)");
  std::string insert = "INSERT INTO t VALUES (0)";
  for (int i = 1; i < 200; ++i) insert += ", (" + std::to_string(i) + ")";
  MustExec(s, insert);
  EXPECT_EQ(RowsAt(MustExec(s, "SELECT * FROM t")), 200u);
  MustExec(s, "SET parallelism = 4");
  EXPECT_EQ(RowsAt(MustExec(s, "SELECT * FROM t")), 200u);
  EXPECT_EQ(RowsAt(MustExec(s, "SELECT x FROM t WHERE x = 7")), 1u);
}

TEST(SessionSetTest, EventLogToggleAndSink) {
  Session s;
  obs::EventLog& log = obs::EventLog::Global();
  const bool was_enabled = log.enabled();
  MustExec(s, "SET event_log = on");
  EXPECT_TRUE(log.enabled());
  MustExec(s, "SET event_log = off");
  EXPECT_FALSE(log.enabled());
  const std::string path = ::testing::TempDir() + "/expdb_session_events.jsonl";
  MustExec(s, "SET event_log_path = '" + path + "'");
  EXPECT_TRUE(log.HasSink());
  EXPECT_TRUE(log.enabled());  // attaching a sink switches the log on
  MustExec(s, "SET event_log_path = off");
  EXPECT_FALSE(log.HasSink());
  EXPECT_FALSE(s.Execute("SET event_log_path = '/nonexistent-dir/x/e.jsonl'")
                   .ok());
  log.set_enabled(was_enabled);
  log.Clear();
  std::remove(path.c_str());
}

TEST(SessionSetTest, ViewMaintenanceEmitsEvents) {
  Session s;
  obs::EventLog& log = obs::EventLog::Global();
  const bool was_enabled = log.enabled();
  log.Clear();
  log.set_enabled(true);
  MustExec(s, "CREATE TABLE t (x INT)");
  MustExec(s, "INSERT INTO t VALUES (1) TTL 5");
  MustExec(s, "CREATE VIEW v AS SELECT x FROM t");
  MustExec(s, "INSERT INTO t VALUES (2) TTL 7");
  MustExec(s, "ADVANCE TIME 5");
  EXPECT_EQ(RowsAt(MustExec(s, "SELECT * FROM v")), 1u);
  bool saw_view_event = false;
  for (const auto& e : log.Snapshot()) {
    if (e.component == "view") {
      saw_view_event = true;
      // Every view event names the view it belongs to.
      bool named = false;
      for (const auto& [k, v] : e.fields) {
        if (k == "view" && v == "v") named = true;
      }
      EXPECT_TRUE(named) << e.ToJson();
    }
  }
  EXPECT_TRUE(saw_view_event);
  log.set_enabled(was_enabled);
  log.Clear();
}

TEST(SessionTraceTest, TraceShowWithNoTracesReportsNone) {
  Session s;
  obs::TraceRecorder::Global().Clear();
  auto r = MustExec(s, "TRACE SHOW");
  EXPECT_NE(r.message.find("no completed traces"), std::string::npos);
}

TEST(SessionTraceTest, TraceShowRendersMostRecentCompletedTrace) {
  Session s;
  obs::TraceRecorder::Global().Clear();
  MustExec(s, "TRACE ON");
  MustExec(s, "CREATE TABLE t (x INT)");
  MustExec(s, "INSERT INTO t VALUES (1), (2)");
  MustExec(s, "SELECT * FROM t");
  auto r = MustExec(s, "TRACE SHOW");
  EXPECT_NE(r.message.find("trace #"), std::string::npos);
  EXPECT_NE(r.message.find("sql.statement"), std::string::npos);
  MustExec(s, "TRACE OFF");
  EXPECT_FALSE(obs::TraceRecorder::Global().enabled());
  MustExec(s, "TRACE ON");  // leave it as the Session constructor set it
}

TEST(SessionTraceTest, TraceExportWritesValidChromeTraceJson) {
  Session s;
  MustExec(s, "CREATE TABLE t (x INT)");
  MustExec(s, "INSERT INTO t VALUES (1), (2)");
  MustExec(s, "SELECT * FROM t");
  const std::string path = ::testing::TempDir() + "/expdb_trace_export.json";
  auto r = MustExec(s, "TRACE EXPORT '" + path + "'");
  EXPECT_NE(r.message.find("trace exported to " + path), std::string::npos);
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream buffer;
  buffer << in.rdbuf();
  const std::string contents = buffer.str();
  std::string error;
  EXPECT_TRUE(obs::ValidateJson(contents, &error)) << error;
  EXPECT_NE(contents.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(contents.find("sql.statement"), std::string::npos);
  std::remove(path.c_str());
}

TEST(SessionTraceTest, TraceExportToUnwritablePathFails) {
  Session s;
  EXPECT_FALSE(s.Execute("TRACE EXPORT '/nonexistent-dir/x/t.json'").ok());
}

TEST(SessionTraceTest, ExplainAnalyzeAggregatesTracedOperatorSpans) {
  Session s;
  MustExec(s, "CREATE TABLE t (x INT)");
  MustExec(s, "INSERT INTO t VALUES (1), (2), (3)");
  auto r = MustExec(s, "EXPLAIN ANALYZE SELECT * FROM t WHERE x = 2");
  EXPECT_NE(r.message.find("traced operator spans"), std::string::npos);
  EXPECT_NE(r.message.find("node #"), std::string::npos);
}

}  // namespace
}  // namespace sql
}  // namespace expdb
