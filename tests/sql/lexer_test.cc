#include "sql/lexer.h"

#include <gtest/gtest.h>

namespace expdb {
namespace sql {
namespace {

std::vector<Token> MustLex(const std::string& in) {
  auto r = Lex(in);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return r.MoveValue();
}

TEST(LexerTest, EmptyInputYieldsEnd) {
  auto tokens = MustLex("");
  ASSERT_EQ(tokens.size(), 1u);
  EXPECT_EQ(tokens[0].type, TokenType::kEnd);
}

TEST(LexerTest, KeywordsAreCaseInsensitiveAndNormalized) {
  auto tokens = MustLex("select SeLeCt SELECT");
  ASSERT_EQ(tokens.size(), 4u);
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(tokens[i].type, TokenType::kKeyword);
    EXPECT_EQ(tokens[i].text, "SELECT");
  }
}

TEST(LexerTest, IdentifiersKeepCase) {
  auto tokens = MustLex("myTable _x a1");
  EXPECT_EQ(tokens[0].type, TokenType::kIdentifier);
  EXPECT_EQ(tokens[0].text, "myTable");
  EXPECT_EQ(tokens[1].text, "_x");
  EXPECT_EQ(tokens[2].text, "a1");
}

TEST(LexerTest, IntegerLiterals) {
  auto tokens = MustLex("42 -7 0");
  EXPECT_EQ(tokens[0].type, TokenType::kInteger);
  EXPECT_EQ(tokens[0].int_value, 42);
  EXPECT_EQ(tokens[1].int_value, -7);
  EXPECT_EQ(tokens[2].int_value, 0);
}

TEST(LexerTest, DoubleLiterals) {
  auto tokens = MustLex("2.5 -0.25");
  EXPECT_EQ(tokens[0].type, TokenType::kDouble);
  EXPECT_DOUBLE_EQ(tokens[0].double_value, 2.5);
  EXPECT_DOUBLE_EQ(tokens[1].double_value, -0.25);
}

TEST(LexerTest, StringLiteralsWithEscapes) {
  auto tokens = MustLex("'hello' 'it''s'");
  EXPECT_EQ(tokens[0].type, TokenType::kString);
  EXPECT_EQ(tokens[0].text, "hello");
  EXPECT_EQ(tokens[1].text, "it's");
}

TEST(LexerTest, UnterminatedStringFails) {
  EXPECT_EQ(Lex("'oops").status().code(), StatusCode::kParseError);
}

TEST(LexerTest, SymbolsAndOperators) {
  auto tokens = MustLex("( ) , ; . * = != <= >= < > <>");
  std::vector<std::string> expected = {"(", ")", ",", ";", ".", "*", "=",
                                       "!=", "<=", ">=", "<", ">", "!="};
  ASSERT_EQ(tokens.size(), expected.size() + 1);
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(tokens[i].type, TokenType::kSymbol);
    EXPECT_EQ(tokens[i].text, expected[i]) << "token " << i;
  }
}

TEST(LexerTest, CommentsIgnoredToEndOfLine) {
  auto tokens = MustLex("select -- this is a comment\n 42");
  ASSERT_EQ(tokens.size(), 3u);
  EXPECT_EQ(tokens[0].text, "SELECT");
  EXPECT_EQ(tokens[1].int_value, 42);
}

TEST(LexerTest, MinusBeforeDigitIsNegativeLiteral) {
  auto tokens = MustLex("-5");
  EXPECT_EQ(tokens[0].type, TokenType::kInteger);
  EXPECT_EQ(tokens[0].int_value, -5);
}

TEST(LexerTest, UnexpectedCharacterFails) {
  EXPECT_EQ(Lex("select @").status().code(), StatusCode::kParseError);
}

TEST(LexerTest, FullStatement) {
  auto tokens = MustLex(
      "INSERT INTO sessions VALUES (1, 'key') TTL 30;");
  // INSERT INTO sessions VALUES ( 1 , 'key' ) TTL 30 ; <end>
  ASSERT_EQ(tokens.size(), 13u);
  EXPECT_EQ(tokens[0].text, "INSERT");
  EXPECT_EQ(tokens[2].text, "sessions");
  EXPECT_EQ(tokens[2].type, TokenType::kIdentifier);
  EXPECT_EQ(tokens[9].text, "TTL");
  EXPECT_EQ(tokens[10].int_value, 30);
}

}  // namespace
}  // namespace sql
}  // namespace expdb
