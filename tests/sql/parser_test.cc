#include "sql/parser.h"

#include <gtest/gtest.h>

namespace expdb {
namespace sql {
namespace {

template <typename T>
T MustParseAs(const std::string& in) {
  auto r = ParseStatement(in);
  EXPECT_TRUE(r.ok()) << in << " -> " << r.status().ToString();
  T* stmt = std::get_if<T>(&r.value());
  EXPECT_NE(stmt, nullptr) << in << " parsed to a different statement kind";
  return *stmt;
}

TEST(ParserTest, CreateTable) {
  auto stmt = MustParseAs<CreateTableStatement>(
      "CREATE TABLE pol (uid INT, deg INT, name STRING, score DOUBLE)");
  EXPECT_EQ(stmt.name, "pol");
  ASSERT_EQ(stmt.columns.size(), 4u);
  EXPECT_EQ(stmt.columns[0].name, "uid");
  EXPECT_EQ(stmt.columns[0].type, ValueType::kInt64);
  EXPECT_EQ(stmt.columns[2].type, ValueType::kString);
  EXPECT_EQ(stmt.columns[3].type, ValueType::kDouble);
}

TEST(ParserTest, CreateTableRejectsBadTypes) {
  EXPECT_EQ(ParseStatement("CREATE TABLE t (x BLOB)").status().code(),
            StatusCode::kParseError);
}

TEST(ParserTest, InsertWithTtl) {
  auto stmt = MustParseAs<InsertStatement>(
      "INSERT INTO pol VALUES (1, 25), (2, 30) TTL 10");
  EXPECT_EQ(stmt.table, "pol");
  ASSERT_EQ(stmt.rows.size(), 2u);
  EXPECT_EQ(stmt.rows[0], (std::vector<Value>{Value(1), Value(25)}));
  EXPECT_EQ(stmt.ttl, 10);
  EXPECT_FALSE(stmt.expire_at.has_value());
}

TEST(ParserTest, InsertExpireAt) {
  auto stmt =
      MustParseAs<InsertStatement>("INSERT INTO t VALUES (1) EXPIRE AT 99");
  EXPECT_EQ(stmt.expire_at, Timestamp(99));
}

TEST(ParserTest, InsertExpireNever) {
  auto stmt =
      MustParseAs<InsertStatement>("INSERT INTO t VALUES (1) EXPIRE NEVER");
  ASSERT_TRUE(stmt.expire_at.has_value());
  EXPECT_TRUE(stmt.expire_at->IsInfinite());
}

TEST(ParserTest, InsertDefaultNoExpiration) {
  auto stmt = MustParseAs<InsertStatement>(
      "INSERT INTO t VALUES (1, 'x', 2.5)");
  EXPECT_FALSE(stmt.ttl.has_value());
  EXPECT_FALSE(stmt.expire_at.has_value());
  EXPECT_EQ(stmt.rows[0][1], Value("x"));
  EXPECT_EQ(stmt.rows[0][2], Value(2.5));
}

TEST(ParserTest, InsertRejectsNonPositiveTtl) {
  EXPECT_FALSE(ParseStatement("INSERT INTO t VALUES (1) TTL 0").ok());
  EXPECT_FALSE(ParseStatement("INSERT INTO t VALUES (1) TTL -5").ok());
}

TEST(ParserTest, SelectStarFromTable) {
  auto stmt = MustParseAs<SelectStatement>("SELECT * FROM pol");
  ASSERT_EQ(stmt.items.size(), 1u);
  EXPECT_EQ(stmt.items[0].kind, SelectItem::Kind::kStar);
  ASSERT_EQ(stmt.from.size(), 1u);
  EXPECT_EQ(stmt.from[0].name, "pol");
  EXPECT_EQ(stmt.where, nullptr);
}

TEST(ParserTest, SelectColumnsWithAliases) {
  auto stmt = MustParseAs<SelectStatement>(
      "SELECT uid AS user, deg FROM pol AS p");
  ASSERT_EQ(stmt.items.size(), 2u);
  EXPECT_EQ(stmt.items[0].column.column, "uid");
  EXPECT_EQ(stmt.items[0].alias, "user");
  EXPECT_EQ(stmt.from[0].alias, "p");
  EXPECT_EQ(stmt.from[0].EffectiveName(), "p");
}

TEST(ParserTest, SelectQualifiedColumnsAndJoin) {
  auto stmt = MustParseAs<SelectStatement>(
      "SELECT p.uid FROM pol p, el e WHERE p.uid = e.uid AND p.deg > 20");
  ASSERT_EQ(stmt.from.size(), 2u);
  EXPECT_EQ(stmt.items[0].column.table, "p");
  ASSERT_NE(stmt.where, nullptr);
  EXPECT_EQ(stmt.where->kind, BoolExpr::Kind::kAnd);
  EXPECT_EQ(stmt.where->left->kind, BoolExpr::Kind::kCompare);
  EXPECT_EQ(stmt.where->left->lhs.column.table, "p");
  EXPECT_EQ(stmt.where->left->rhs.column.table, "e");
}

TEST(ParserTest, WhereOperatorPrecedenceOrBindsLooser) {
  auto stmt = MustParseAs<SelectStatement>(
      "SELECT * FROM t WHERE a = 1 OR b = 2 AND c = 3");
  // OR at the top: (a=1) OR ((b=2) AND (c=3)).
  EXPECT_EQ(stmt.where->kind, BoolExpr::Kind::kOr);
  EXPECT_EQ(stmt.where->right->kind, BoolExpr::Kind::kAnd);
}

TEST(ParserTest, WhereParenthesesAndNot) {
  auto stmt = MustParseAs<SelectStatement>(
      "SELECT * FROM t WHERE NOT (a = 1 OR b = 2)");
  EXPECT_EQ(stmt.where->kind, BoolExpr::Kind::kNot);
  EXPECT_EQ(stmt.where->left->kind, BoolExpr::Kind::kOr);
}

TEST(ParserTest, GroupByWithAggregates) {
  auto stmt = MustParseAs<SelectStatement>(
      "SELECT deg, COUNT(*), SUM(deg) AS total FROM pol GROUP BY deg");
  ASSERT_EQ(stmt.items.size(), 3u);
  EXPECT_EQ(stmt.items[1].kind, SelectItem::Kind::kAggregate);
  EXPECT_EQ(stmt.items[1].aggregate, AggregateKind::kCount);
  EXPECT_TRUE(stmt.items[1].aggregate_star);
  EXPECT_EQ(stmt.items[2].aggregate, AggregateKind::kSum);
  EXPECT_EQ(stmt.items[2].alias, "total");
  ASSERT_EQ(stmt.group_by.size(), 1u);
  EXPECT_EQ(stmt.group_by[0].column, "deg");
}

TEST(ParserTest, AllAggregateFunctions) {
  auto stmt = MustParseAs<SelectStatement>(
      "SELECT MIN(a), MAX(a), SUM(a), AVG(a), COUNT(a) FROM t");
  EXPECT_EQ(stmt.items[0].aggregate, AggregateKind::kMin);
  EXPECT_EQ(stmt.items[1].aggregate, AggregateKind::kMax);
  EXPECT_EQ(stmt.items[2].aggregate, AggregateKind::kSum);
  EXPECT_EQ(stmt.items[3].aggregate, AggregateKind::kAvg);
  EXPECT_EQ(stmt.items[4].aggregate, AggregateKind::kCount);
  EXPECT_FALSE(stmt.items[4].aggregate_star);
}

TEST(ParserTest, OnlyCountTakesStar) {
  EXPECT_FALSE(ParseStatement("SELECT SUM(*) FROM t").ok());
}

TEST(ParserTest, SetOperations) {
  auto stmt = MustParseAs<SelectStatement>(
      "SELECT a FROM t UNION SELECT a FROM s EXCEPT SELECT a FROM u");
  EXPECT_EQ(stmt.set_op, SelectStatement::SetOp::kUnion);
  ASSERT_NE(stmt.set_rhs, nullptr);
  EXPECT_EQ(stmt.set_rhs->set_op, SelectStatement::SetOp::kExcept);
  auto i = MustParseAs<SelectStatement>(
      "SELECT a FROM t INTERSECT SELECT a FROM s");
  EXPECT_EQ(i.set_op, SelectStatement::SetOp::kIntersect);
}

TEST(ParserTest, CreateViewWithOptions) {
  auto stmt = MustParseAs<CreateViewStatement>(
      "CREATE MATERIALIZED VIEW v WITH (mode = patch, move = backward) "
      "AS SELECT a FROM t EXCEPT SELECT a FROM s");
  EXPECT_EQ(stmt.name, "v");
  EXPECT_TRUE(stmt.materialized);
  EXPECT_EQ(stmt.options.at("mode"), "patch");
  EXPECT_EQ(stmt.options.at("move"), "backward");
  EXPECT_EQ(stmt.select.set_op, SelectStatement::SetOp::kExcept);
}

TEST(ParserTest, DropStatements) {
  auto t = MustParseAs<DropStatement>("DROP TABLE pol");
  EXPECT_FALSE(t.is_view);
  EXPECT_EQ(t.name, "pol");
  auto v = MustParseAs<DropStatement>("DROP VIEW vw");
  EXPECT_TRUE(v.is_view);
}

TEST(ParserTest, AdvanceTime) {
  auto rel = MustParseAs<AdvanceStatement>("ADVANCE TIME 5");
  EXPECT_EQ(rel.amount, 5);
  EXPECT_FALSE(rel.absolute);
  auto abs = MustParseAs<AdvanceStatement>("ADVANCE TIME TO 99");
  EXPECT_EQ(abs.amount, 99);
  EXPECT_TRUE(abs.absolute);
  EXPECT_FALSE(ParseStatement("ADVANCE TIME -3").ok());
}

TEST(ParserTest, ShowStatements) {
  EXPECT_EQ(MustParseAs<ShowStatement>("SHOW TABLES").what,
            ShowStatement::What::kTables);
  EXPECT_EQ(MustParseAs<ShowStatement>("SHOW VIEWS").what,
            ShowStatement::What::kViews);
  EXPECT_EQ(MustParseAs<ShowStatement>("SHOW TIME").what,
            ShowStatement::What::kTime);
}

TEST(ParserTest, DeleteWithAndWithoutWhere) {
  auto all = MustParseAs<DeleteStatement>("DELETE FROM t");
  EXPECT_EQ(all.where, nullptr);
  auto some = MustParseAs<DeleteStatement>("DELETE FROM t WHERE x = 3");
  ASSERT_NE(some.where, nullptr);
}

TEST(ParserTest, TrailingSemicolonAccepted) {
  EXPECT_TRUE(ParseStatement("SELECT * FROM t;").ok());
}

TEST(ParserTest, TrailingGarbageRejected) {
  EXPECT_FALSE(ParseStatement("SELECT * FROM t garbage garbage").ok());
  EXPECT_FALSE(ParseStatement("DROP TABLE t extra").ok());
}

TEST(ParserTest, ParseScriptSplitsOnSemicolons) {
  auto r = ParseScript(
      "CREATE TABLE t (x INT);\n"
      "INSERT INTO t VALUES (1) TTL 5;\n"
      "-- a comment line\n"
      "SELECT * FROM t;");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->size(), 3u);
}

TEST(ParserTest, ParseScriptRespectsSemicolonsInStrings) {
  auto r = ParseScript("INSERT INTO t VALUES ('a;b'); SELECT * FROM t");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r->size(), 2u);
  const auto& insert = std::get<InsertStatement>((*r)[0]);
  EXPECT_EQ(insert.rows[0][0], Value("a;b"));
}

TEST(ParserTest, EmptyStatementsRejected) {
  EXPECT_FALSE(ParseStatement("").ok());
  EXPECT_FALSE(ParseStatement("   ;").ok());
}

TEST(ParserTest, ParseSet) {
  auto r = ParseStatement("SET slow_query_ns = 1000000");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  const auto& set = std::get<SetStatement>(*r);
  EXPECT_EQ(set.name, "slow_query_ns");
  EXPECT_EQ(set.value, Value(int64_t{1000000}));

  r = ParseStatement("SET event_log = ON");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(std::get<SetStatement>(*r).value, Value("on"));

  r = ParseStatement("SET event_log_path = '/tmp/events.jsonl'");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(std::get<SetStatement>(*r).value, Value("/tmp/events.jsonl"));

  EXPECT_FALSE(ParseStatement("SET").ok());
  EXPECT_FALSE(ParseStatement("SET x").ok());
  EXPECT_FALSE(ParseStatement("SET x = ").ok());
}

TEST(ParserTest, ParseTrace) {
  auto r = ParseStatement("TRACE ON");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(std::get<TraceStatement>(*r).what, TraceStatement::What::kOn);

  r = ParseStatement("trace off");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(std::get<TraceStatement>(*r).what, TraceStatement::What::kOff);

  r = ParseStatement("TRACE SHOW");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(std::get<TraceStatement>(*r).what, TraceStatement::What::kShow);

  r = ParseStatement("TRACE EXPORT '/tmp/trace.json'");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  const auto& exp = std::get<TraceStatement>(*r);
  EXPECT_EQ(exp.what, TraceStatement::What::kExport);
  EXPECT_EQ(exp.path, "/tmp/trace.json");

  EXPECT_FALSE(ParseStatement("TRACE").ok());
  EXPECT_FALSE(ParseStatement("TRACE SIDEWAYS").ok());
  EXPECT_FALSE(ParseStatement("TRACE EXPORT").ok());
  EXPECT_FALSE(ParseStatement("TRACE EXPORT unquoted").ok());
}

}  // namespace
}  // namespace sql
}  // namespace expdb
