// SET-knob validation: every integer-valued setting rejects negative and
// non-numeric values with a uniform error that echoes the offending
// value (docs/SQL.md).

#include <string>

#include <gtest/gtest.h>

#include "engine/maintenance.h"
#include "sql/session.h"

namespace expdb {
namespace sql {
namespace {

void ExpectRejected(Session& s, const std::string& stmt,
                    const std::string& echoed_value) {
  auto r = s.Execute(stmt);
  ASSERT_FALSE(r.ok()) << stmt << " unexpectedly succeeded";
  const std::string msg = r.status().ToString();
  EXPECT_NE(msg.find("non-negative integer"), std::string::npos) << msg;
  EXPECT_NE(msg.find(echoed_value), std::string::npos)
      << msg << " does not echo " << echoed_value;
}

TEST(SetValidationTest, RejectsNegativeValues) {
  Session s;
  ExpectRejected(s, "SET slow_query_ns = -5", "-5");
  ExpectRejected(s, "SET parallelism = -1", "-1");
  ExpectRejected(s, "SET result_cache_bytes = -1024", "-1024");
  ExpectRejected(s, "SET maintenance_interval_ms = -10", "-10");
}

TEST(SetValidationTest, RejectsNonNumericValues) {
  Session s;
  ExpectRejected(s, "SET slow_query_ns = fast", "fast");
  ExpectRejected(s, "SET parallelism = 'many'", "many");
  ExpectRejected(s, "SET result_cache_bytes = huge", "huge");
  ExpectRejected(s, "SET maintenance_interval_ms = soon", "soon");
}

TEST(SetValidationTest, RejectsFractionalValues) {
  Session s;
  ExpectRejected(s, "SET slow_query_ns = 1.5", "1.5");
  ExpectRejected(s, "SET parallelism = 2.5", "2.5");
  ExpectRejected(s, "SET result_cache_bytes = 0.5", "0.5");
  ExpectRejected(s, "SET maintenance_interval_ms = 3.5", "3.5");
}

TEST(SetValidationTest, AcceptsValidValues) {
  Session s;
  EXPECT_TRUE(s.Execute("SET slow_query_ns = 1000").ok());
  EXPECT_TRUE(s.Execute("SET slow_query_ns = off").ok());
  EXPECT_TRUE(s.Execute("SET parallelism = 0").ok());
  EXPECT_TRUE(s.Execute("SET result_cache_bytes = 0").ok());
  EXPECT_TRUE(s.Execute("SET result_cache_bytes = 65536").ok());
  EXPECT_TRUE(s.Execute("SET maintenance_interval_ms = 50").ok());
  s.engine().maintenance().Stop();  // the SET above started the thread
}

TEST(SetValidationTest, UnknownSettingListsTheKnownOnes) {
  Session s;
  auto r = s.Execute("SET warp_speed = 9");
  ASSERT_FALSE(r.ok());
  const std::string msg = r.status().ToString();
  EXPECT_NE(msg.find("unknown setting 'warp_speed'"), std::string::npos)
      << msg;
  EXPECT_NE(msg.find("maintenance_interval_ms"), std::string::npos) << msg;
}

}  // namespace
}  // namespace sql
}  // namespace expdb
