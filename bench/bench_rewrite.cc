// Ablation for the paper's Sec. 3.1 claim: rewriting query plans to push
// selections below non-monotonic operators "reduce[s] the set {t | t ∈ R
// ∧ t ∈ S ∧ texp_R(t) > texp_S(t)}, which causes recomputations".
//
// Workload: σ_{b >= cutoff}(R −exp S) with the selectivity swept via
// `cutoff`. Measured per plan (original vs. rewritten):
//  * criticals            — size of the recomputation-causing set;
//  * texp_e               — how long the materialization stays exact;
//  * recomputes_per_run   — eager-view recomputations over the horizon;
//  * evaluation wall time.
//
// Expected shape: the rewritten plan's critical set shrinks proportionally
// to the selectivity, its texp(e) is never earlier, and maintenance cost
// drops accordingly; at selectivity 100% the two plans coincide.

#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "core/rewrite.h"
#include "view/materialized_view.h"

namespace {

using namespace expdb;

constexpr int64_t kHorizon = 96;
constexpr int64_t kValueDomain = 100;

Schema TwoInt() {
  return Schema({{"a", ValueType::kInt64}, {"b", ValueType::kInt64}});
}

Database MakeDb(int64_t n, uint64_t seed) {
  Rng rng(seed);
  Database db;
  Relation r(TwoInt()), s(TwoInt());
  for (int64_t i = 0; i < n; ++i) {
    const int64_t b = rng.UniformInt(0, kValueDomain - 1);
    (void)r.Insert(Tuple{i, b}, Timestamp(1 + rng.UniformInt(0, kHorizon - 2)));
    if (i % 2 == 0) {  // half the tuples overlap
      (void)s.Insert(Tuple{i, b},
                     Timestamp(1 + rng.UniformInt(0, kHorizon - 2)));
    }
  }
  (void)db.PutRelation("R", std::move(r));
  (void)db.PutRelation("S", std::move(s));
  return db;
}

ExpressionPtr MakePlan(int64_t cutoff) {
  using namespace algebra;
  return Select(Difference(Base("R"), Base("S")),
                Predicate::Compare(Operand::Column(1), ComparisonOp::kGe,
                                   Operand::Constant(Value(cutoff))));
}

void Run(benchmark::State& state, bool rewrite) {
  const int64_t n = 1 << 12;
  // selectivity_pct% of tuples survive the selection.
  const int64_t selectivity_pct = state.range(0);
  const int64_t cutoff =
      kValueDomain - (kValueDomain * selectivity_pct) / 100;
  Database db = MakeDb(n, 77);
  ExpressionPtr plan = MakePlan(cutoff);
  RewriteReport report;
  if (rewrite) {
    plan = RewriteForIndependence(plan, db, &report).MoveValue();
  }

  uint64_t recomputes = 0;
  Timestamp texp_e;
  size_t criticals = 0;
  for (auto _ : state) {
    // Criticals of the (possibly pushed-down) difference root.
    const ExpressionPtr& diff_root =
        plan->kind() == ExprKind::kDifference ? plan : plan->left();
    if (diff_root->kind() == ExprKind::kDifference) {
      auto analyzed =
          EvaluateDifferenceRoot(diff_root, db, Timestamp::Zero());
      if (!analyzed.ok()) {
        state.SkipWithError(analyzed.status().ToString().c_str());
      }
      criticals = analyzed->helper.size();
    }
    auto materialized = Evaluate(plan, db, Timestamp::Zero());
    if (!materialized.ok()) {
      state.SkipWithError(materialized.status().ToString().c_str());
    }
    texp_e = materialized->texp;

    MaterializedView view(plan, {});
    Status st = view.Initialize(db, Timestamp::Zero());
    if (!st.ok()) state.SkipWithError(st.ToString().c_str());
    for (int64_t t = 0; t <= kHorizon; ++t) {
      auto rows = view.Read(db, Timestamp(t));
      if (!rows.ok()) state.SkipWithError(rows.status().ToString().c_str());
      benchmark::DoNotOptimize(rows->size());
    }
    recomputes += view.stats().recomputations;
  }
  state.counters["selectivity_pct"] =
      benchmark::Counter(static_cast<double>(selectivity_pct));
  state.counters["criticals"] =
      benchmark::Counter(static_cast<double>(criticals));
  state.counters["texp_e"] = benchmark::Counter(
      texp_e.IsInfinite() ? static_cast<double>(kHorizon + 1)
                          : static_cast<double>(texp_e.ticks()));
  state.counters["recomputes_per_run"] = benchmark::Counter(
      static_cast<double>(recomputes) /
      static_cast<double>(state.iterations()));
  state.SetLabel(rewrite ? "rewritten: σ pushed below −"
                         : "original: σ above −");
}

void BM_OriginalPlan(benchmark::State& state) { Run(state, false); }
void BM_RewrittenPlan(benchmark::State& state) { Run(state, true); }

void Args(benchmark::internal::Benchmark* b) {
  for (int64_t sel : {5, 25, 50, 75, 100}) b->Arg(sel);
  b->Unit(benchmark::kMillisecond);
}

BENCHMARK(BM_OriginalPlan)->Apply(Args);
BENCHMARK(BM_RewrittenPlan)->Apply(Args);

}  // namespace

BENCHMARK_MAIN();
