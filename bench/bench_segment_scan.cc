// Expiration-partitioned storage (claim C14): scans skip expired data at
// segment granularity, and expiration drains whole segments in O(1) each.
//
// Two axes:
//
//   ScanExpired/(n, expired%, segmented)
//     A full scan of n tuples with the given fraction already expired at
//     scan time. Flat storage pays the per-tuple `texp > τ` check for
//     every stored tuple, dead or alive; segmented storage compares
//     segment bounds against τ once, copies fully-live segments without
//     per-tuple checks, and never touches fully-expired ones. The claim:
//     ≥2× at ≥50% expired, growing with the expired fraction.
//
//   ExpirationDrain/(n, survivors)
//     Physically remove every expired tuple from an n-tuple relation with
//     the given survivor count. Flat storage straddles (one segment holds
//     dead and live alike), so the drain swap-erases tuple by tuple and
//     re-derives bounds over survivors — O(n). Segmented storage drops
//     the fully-expired segments whole — O(segments + straddler width),
//     independent of how many survivors sit above the horizon.
//
// Texps are uniform over [1, 1024], so with the default bucket geometry
// an expired fraction f turns into ~f of the segments being fully
// expired plus one straddler. See EXPERIMENTS.md C14 and
// docs/PERFORMANCE.md §8.

#include <benchmark/benchmark.h>

#include <optional>

#include "common/rng.h"
#include "core/eval.h"
#include "relational/database.h"

namespace {

using namespace expdb;

constexpr int64_t kHorizon = 1024;

Schema TwoInts() {
  return Schema({{"a", ValueType::kInt64}, {"b", ValueType::kInt64}});
}

/// n distinct tuples, texps uniform over [1, kHorizon].
Relation MakeRelation(int64_t n, bool segmented) {
  Relation r(TwoInts());
  if (segmented) r.SetSegmented();
  r.Reserve(static_cast<size_t>(n));
  Rng rng(7);
  for (int64_t i = 0; i < n; ++i) {
    r.InsertUnchecked(Tuple{i, i % 97},
                      Timestamp(rng.UniformInt(1, kHorizon)));
  }
  return r;
}

void BM_ScanExpired(benchmark::State& state) {
  const int64_t n = state.range(0);
  const int64_t expired_pct = state.range(1);
  const bool segmented = state.range(2) != 0;

  Database db;
  if (db.PutRelation("R", MakeRelation(n, segmented)).ok() && segmented) {
    // PutRelation registers flat storage; flip the stored copy.
    db.GetRelation("R").value()->SetSegmented();
  }
  const Timestamp tau(expired_pct * kHorizon / 100);
  const ExpressionPtr scan = algebra::Base("R");

  size_t live = 0;
  for (auto _ : state) {
    auto result = Evaluate(scan, db, tau);
    if (!result.ok()) state.SkipWithError(result.status().ToString().c_str());
    live = result->relation.size();
    benchmark::DoNotOptimize(result);
  }
  state.counters["live_tuples"] =
      benchmark::Counter(static_cast<double>(live));
  state.counters["stored_tuples_per_s"] = benchmark::Counter(
      static_cast<double>(n) * static_cast<double>(state.iterations()),
      benchmark::Counter::kIsRate);
  state.SetLabel((segmented ? "segmented, " : "flat,      ") +
                 std::to_string(expired_pct) + "% expired");
}

void BM_ExpirationDrain(benchmark::State& state) {
  const int64_t survivors = state.range(0);
  const bool segmented = state.range(1) != 0;
  // Fixed dead set, variable survivor count: the flat drain scales with
  // survivors (it rebuilds the lone segment around them); the segment
  // drain does not (survivor segments are never touched).
  const int64_t dead = 1 << 14;

  Relation templ(TwoInts());
  if (segmented) templ.SetSegmented();
  templ.Reserve(static_cast<size_t>(dead + survivors));
  Rng rng(11);
  for (int64_t i = 0; i < dead; ++i) {
    templ.InsertUnchecked(Tuple{i, 0},
                          Timestamp(rng.UniformInt(1, kHorizon)));
  }
  for (int64_t i = 0; i < survivors; ++i) {
    templ.InsertUnchecked(
        Tuple{dead + i, 1},
        Timestamp(kHorizon + rng.UniformInt(1, kHorizon)));
  }

  size_t removed = 0;
  std::optional<Relation> victim;
  for (auto _ : state) {
    state.PauseTiming();
    // Fresh copy each round, built (and the previous round's survivors
    // torn down) off the clock: the timed region is the drain alone.
    victim.emplace(templ);
    state.ResumeTiming();
    removed = victim->DropExpired(Timestamp(kHorizon)).tuples;
    benchmark::DoNotOptimize(*victim);
  }
  state.counters["removed"] =
      benchmark::Counter(static_cast<double>(removed));
  state.SetLabel((segmented ? "segmented, " : "flat,      ") +
                 std::to_string(survivors) + " survivors");
}

void ScanArgs(benchmark::internal::Benchmark* b) {
  for (int64_t n : {int64_t{1} << 14, int64_t{1} << 17}) {
    for (int64_t pct : {0, 50, 90}) {
      for (int64_t segmented : {0, 1}) {
        b->Args({n, pct, segmented});
      }
    }
  }
}

void DrainArgs(benchmark::internal::Benchmark* b) {
  for (int64_t survivors :
       {int64_t{0}, int64_t{1} << 12, int64_t{1} << 14, int64_t{1} << 16}) {
    for (int64_t segmented : {0, 1}) {
      b->Args({survivors, segmented});
    }
  }
}

BENCHMARK(BM_ScanExpired)->Apply(ScanArgs)->ArgNames({"n", "pct", "seg"});
BENCHMARK(BM_ExpirationDrain)
    ->Apply(DrainArgs)
    ->ArgNames({"survivors", "seg"});

}  // namespace

BENCHMARK_MAIN();
