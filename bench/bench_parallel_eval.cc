// Morsel-parallel evaluation: serial vs. 2/4/8 workers on the operators
// the engine parallelizes (selection scan, hash join build+probe,
// aggregate replay, projection dedup).
//
// Args are (tuples, workers) with workers = 1 meaning the serial path
// (EvalOptions default). Speedup is bounded by the machine: on a 1-CPU
// container all worker counts collapse onto one core and the numbers
// measure scheduling overhead, not scaling — see docs/PERFORMANCE.md and
// the EXPERIMENTS.md section for how to read them.

#include <benchmark/benchmark.h>

#include "core/eval.h"
#include "testing/workload.h"

namespace {

using namespace expdb;

Database MakeDb(int64_t n, uint64_t seed) {
  Rng rng(seed);
  Database db;
  testing::RelationSpec spec;
  spec.num_tuples = static_cast<size_t>(n);
  spec.arity = 2;
  spec.value_domain = std::max<int64_t>(4, n / 8);
  spec.ttl_min = 1;
  spec.ttl_max = 100;
  spec.infinite_fraction = 0.0;
  (void)testing::FillDatabase(&db, rng, spec, 2);
  return db;
}

void RunExpr(benchmark::State& state, const ExpressionPtr& expr) {
  const int64_t n = state.range(0);
  const size_t workers = static_cast<size_t>(state.range(1));
  Database db = MakeDb(n, 42);
  EvalOptions opts;
  opts.parallelism = workers;
  size_t out_tuples = 0;
  for (auto _ : state) {
    auto result = Evaluate(expr, db, Timestamp(0), opts);
    if (!result.ok()) state.SkipWithError(result.status().ToString().c_str());
    out_tuples = result->relation.size();
    benchmark::DoNotOptimize(result);
  }
  state.counters["out_tuples"] =
      benchmark::Counter(static_cast<double>(out_tuples));
  state.counters["tuples_per_s"] = benchmark::Counter(
      static_cast<double>(n) * static_cast<double>(state.iterations()),
      benchmark::Counter::kIsRate);
  state.SetLabel(workers == 1 ? "serial"
                              : std::to_string(workers) + " workers");
}

void BM_ParallelSelect(benchmark::State& state) {
  RunExpr(state,
          algebra::Select(algebra::Base("R0"),
                          Predicate::Compare(Operand::Column(1),
                                             ComparisonOp::kGe,
                                             Operand::Constant(Value(2)))));
}

void BM_ParallelHashJoin(benchmark::State& state) {
  RunExpr(state, algebra::Join(algebra::Base("R0"), algebra::Base("R1"),
                               Predicate::ColumnsEqual(0, 2)));
}

void BM_ParallelProject(benchmark::State& state) {
  RunExpr(state, algebra::Project(algebra::Base("R0"), {1}));
}

void BM_ParallelAggregate(benchmark::State& state) {
  RunExpr(state, algebra::Aggregate(algebra::Base("R0"), {0},
                                    AggregateFunction::Sum(1)));
}

void ParallelArgs(benchmark::internal::Benchmark* b) {
  for (int64_t n : {int64_t{1} << 14, int64_t{1} << 16, int64_t{1} << 18}) {
    for (int64_t workers : {1, 2, 4, 8}) {
      b->Args({n, workers});
    }
  }
}

BENCHMARK(BM_ParallelSelect)->Apply(ParallelArgs)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_ParallelHashJoin)
    ->Apply(ParallelArgs)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_ParallelProject)
    ->Apply(ParallelArgs)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_ParallelAggregate)
    ->Apply(ParallelArgs)
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
