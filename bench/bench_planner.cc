// Claim C9 — the plan/execute split pays for itself.
//
// Scenarios (EXPERIMENTS.md C9, docs/PERFORMANCE.md §5):
//   * PlanOnly            — Planner::Plan cost by expression depth.
//   * FacadeSmallQuery vs CachedPlanSmallQuery — the <5 % budget for
//     plan-then-execute on small point queries, and what caching the
//     plan buys on the same query.
//   * ViewRefresh{Cached,Replanned} — a maintenance loop executing a
//     cached (rewritten) plan vs. re-planning every refresh, the
//     pre-refactor behavior.
//   * PrunedVsUnprunedExpired — expired-subtree pruning as the expired
//     fraction of a union's branches grows (args: tuples, expired%).
//   * CseOnVsOff          — common-subtree reuse on a self-union.

#include <string>

#include <benchmark/benchmark.h>

#include "core/eval.h"
#include "plan/executor.h"
#include "plan/planner.h"
#include "testing/workload.h"

namespace {

using namespace expdb;  // NOLINT
using algebra::Base;
using algebra::Difference;
using algebra::Join;
using algebra::Project;
using algebra::Select;
using algebra::Union;

Database MakeDb(int64_t n, uint64_t seed, double infinite_fraction = 0.0,
                size_t relations = 2) {
  Rng rng(seed);
  Database db;
  testing::RelationSpec spec;
  spec.num_tuples = static_cast<size_t>(n);
  spec.arity = 2;
  spec.value_domain = std::max<int64_t>(4, n / 8);
  spec.ttl_min = 1;
  spec.ttl_max = 100;
  spec.infinite_fraction = infinite_fraction;
  (void)testing::FillDatabase(&db, rng, spec, relations);
  return db;
}

Predicate PointPredicate() {
  return Predicate::ColumnEquals(0, Value(int64_t{3}));
}

// --- planning cost --------------------------------------------------------

void BM_PlanOnly(benchmark::State& state) {
  Database db = MakeDb(1024, 42);
  ExpressionPtr e = Base("R0");
  for (int64_t d = 0; d < state.range(0); ++d) {
    e = Select(Union(e, Base("R1")), PointPredicate());
  }
  for (auto _ : state) {
    auto plan = plan::Planner::Plan(e, db);
    if (!plan.ok()) state.SkipWithError(plan.status().ToString().c_str());
    benchmark::DoNotOptimize(plan);
  }
  state.SetLabel("depth " + std::to_string(e->Depth()));
}
BENCHMARK(BM_PlanOnly)->Arg(1)->Arg(4)->Arg(16);

// --- plan-then-execute overhead on small point queries --------------------

void BM_FacadeSmallQuery(benchmark::State& state) {
  Database db = MakeDb(state.range(0), 42);
  ExpressionPtr e = Select(Base("R0"), PointPredicate());
  for (auto _ : state) {
    auto r = Evaluate(e, db, Timestamp(0));  // plans on every call
    if (!r.ok()) state.SkipWithError(r.status().ToString().c_str());
    benchmark::DoNotOptimize(r);
  }
  state.SetLabel("plan per call");
}
BENCHMARK(BM_FacadeSmallQuery)->Arg(64)->Arg(1024)->Arg(16384);

void BM_CachedPlanSmallQuery(benchmark::State& state) {
  Database db = MakeDb(state.range(0), 42);
  ExpressionPtr e = Select(Base("R0"), PointPredicate());
  plan::PhysicalPlanPtr plan = plan::Planner::Plan(e, db).value();
  for (auto _ : state) {
    auto r = plan::ExecutePlan(*plan, db, Timestamp(0));
    if (!r.ok()) state.SkipWithError(r.status().ToString().c_str());
    benchmark::DoNotOptimize(r);
  }
  state.SetLabel("cached plan");
}
BENCHMARK(BM_CachedPlanSmallQuery)->Arg(64)->Arg(1024)->Arg(16384);

// --- cached-plan view refresh vs. re-planning every refresh ---------------

void BM_ViewRefreshCached(benchmark::State& state) {
  Database db = MakeDb(state.range(0), 42);
  ExpressionPtr e = Select(Difference(Base("R0"), Base("R1")),
                           Predicate::Compare(Operand::Column(1),
                                              ComparisonOp::kGe,
                                              Operand::Constant(
                                                  Value(int64_t{1}))));
  plan::PlannerOptions opts;
  opts.apply_rewrites = true;  // the pass runs once, here
  plan::PhysicalPlanPtr plan = plan::Planner::Plan(e, db, opts).value();
  Timestamp tau(0);
  for (auto _ : state) {
    auto r = plan::ExecutePlanDifferenceRoot(*plan, db, tau);
    if (!r.ok()) state.SkipWithError(r.status().ToString().c_str());
    benchmark::DoNotOptimize(r);
    tau = Timestamp((tau.ticks() + 1) % 100);  // a moving refresh clock
  }
  state.SetLabel("cached rewritten plan");
}
BENCHMARK(BM_ViewRefreshCached)->Arg(1024)->Arg(16384);

void BM_ViewRefreshReplanned(benchmark::State& state) {
  Database db = MakeDb(state.range(0), 42);
  ExpressionPtr e = Select(Difference(Base("R0"), Base("R1")),
                           Predicate::Compare(Operand::Column(1),
                                              ComparisonOp::kGe,
                                              Operand::Constant(
                                                  Value(int64_t{1}))));
  plan::PlannerOptions opts;
  opts.apply_rewrites = true;  // pre-refactor: rewrite on every refresh
  Timestamp tau(0);
  for (auto _ : state) {
    auto plan = plan::Planner::Plan(e, db, opts);
    if (!plan.ok()) state.SkipWithError(plan.status().ToString().c_str());
    auto r = plan::ExecutePlanDifferenceRoot(**plan, db, tau);
    if (!r.ok()) state.SkipWithError(r.status().ToString().c_str());
    benchmark::DoNotOptimize(r);
    tau = Timestamp((tau.ticks() + 1) % 100);
  }
  state.SetLabel("replan every refresh");
}
BENCHMARK(BM_ViewRefreshReplanned)->Arg(1024)->Arg(16384);

// --- expired-subtree pruning ----------------------------------------------

/// Union of a never-expiring branch and an all-expiring branch, queried
/// after the second branch has fully expired. Args: (tuples, prune 0/1).
void BM_PrunedVsUnprunedExpired(benchmark::State& state) {
  const int64_t n = state.range(0);
  const bool prune = state.range(1) != 0;
  Database db = MakeDb(n, 42, /*infinite_fraction=*/1.0, /*relations=*/1);
  {
    // R1: every tuple expired by tau = 100 (ttl_max).
    Rng rng(43);
    testing::RelationSpec spec;
    spec.num_tuples = static_cast<size_t>(n);
    spec.arity = 2;
    spec.value_domain = std::max<int64_t>(4, n / 8);
    spec.ttl_min = 1;
    spec.ttl_max = 100;
    (void)testing::FillDatabase(&db, rng, spec, 1, "Expired");
  }
  ExpressionPtr e = Select(Union(Base("R0"), Base("Expired0")),
                           PointPredicate());
  plan::PlannerOptions opts;
  opts.prune_expired = prune;
  plan::PhysicalPlanPtr plan = plan::Planner::Plan(e, db, opts).value();
  const Timestamp tau(200);  // the Expired0 branch is entirely dead
  for (auto _ : state) {
    auto r = plan::ExecutePlan(*plan, db, tau);
    if (!r.ok()) state.SkipWithError(r.status().ToString().c_str());
    benchmark::DoNotOptimize(r);
  }
  state.SetLabel(prune ? "prune on" : "prune off");
}
BENCHMARK(BM_PrunedVsUnprunedExpired)
    ->Args({4096, 0})
    ->Args({4096, 1})
    ->Args({65536, 0})
    ->Args({65536, 1});

// --- common-subtree reuse --------------------------------------------------

/// π over a self-union of the same join subtree. Args: (tuples, cse 0/1).
void BM_CseOnVsOff(benchmark::State& state) {
  const bool cse = state.range(1) != 0;
  Database db = MakeDb(state.range(0), 42);
  ExpressionPtr shared =
      Project(Join(Base("R0"), Base("R1"), Predicate::ColumnsEqual(0, 2)),
              {0, 1});
  ExpressionPtr e = Union(shared, shared);
  plan::PlannerOptions opts;
  opts.detect_common_subtrees = cse;
  plan::PhysicalPlanPtr plan = plan::Planner::Plan(e, db, opts).value();
  for (auto _ : state) {
    auto r = plan::ExecutePlan(*plan, db, Timestamp(0));
    if (!r.ok()) state.SkipWithError(r.status().ToString().c_str());
    benchmark::DoNotOptimize(r);
  }
  state.SetLabel(cse ? "cse on" : "cse off");
}
BENCHMARK(BM_CseOnVsOff)
    ->Args({4096, 0})
    ->Args({4096, 1})
    ->Args({32768, 0})
    ->Args({32768, 1});

}  // namespace

BENCHMARK_MAIN();
