// Reproduces Table 2: the lifetime case analysis of e = R −exp S. Builds
// one tuple per case, evaluates the difference, and verifies the
// per-tuple expiration time texp_*(t) and its contribution to texp(e):
//
//   (1)  t ∈ R ∧ t ∉ S                       texp_*(t) = texp_R(t), ∞
//   (2)  t ∉ R ∧ t ∈ S                       n.a., ∞
//   (3a) t in both, texp_R(t) > texp_S(t)    n.a., texp(e) <= texp_S(t)
//   (3b) t in both, texp_R(t) <= texp_S(t)   n.a., ∞

#include <cstdio>

#include "bench/paper_db.h"
#include "core/difference.h"
#include "core/eval.h"

using namespace expdb;

int main(int argc, char** argv) {
  ReproFlags flags(argc, argv);
  std::printf("=== Table 2: Lifetime analysis of e = R - S ===\n\n");

  Relation r(Schema({{"x", ValueType::kInt64}}));
  Relation s(Schema({{"x", ValueType::kInt64}}));
  // Case (1): <1> only in R.
  (void)r.Insert(Tuple{1}, Timestamp(10));
  // Case (2): <2> only in S.
  (void)s.Insert(Tuple{2}, Timestamp(7));
  // Case (3a): <3> in both, texp_R = 20 > texp_S = 8 (critical).
  (void)r.Insert(Tuple{3}, Timestamp(20));
  (void)s.Insert(Tuple{3}, Timestamp(8));
  // Case (3b): <4> in both, texp_R = 5 <= texp_S = 9.
  (void)r.Insert(Tuple{4}, Timestamp(5));
  (void)s.Insert(Tuple{4}, Timestamp(9));

  DifferenceAnalysis a = AnalyzeDifference(r, s);

  std::printf("case (1): t = <1>, in R only\n");
  std::printf("  texp_*(<1>) = %s (= texp_R), contributes inf to texp(e)\n",
              a.result.GetTexp(Tuple{1})->ToString().c_str());
  Check(a.result.GetTexp(Tuple{1}) == Timestamp(10), "texp_*(<1>) = 10");

  std::printf("case (2): t = <2>, in S only: disregarded\n");
  Check(!a.result.Contains(Tuple{2}), "<2> not in result");

  std::printf("case (3a): t = <3>, texp_R = 20 > texp_S = 8: critical\n");
  Check(!a.result.Contains(Tuple{3}), "<3> not in result yet");
  Check(a.critical.size() == 1 && a.critical[0].tuple == Tuple{3},
        "<3> queued to re-appear");
  std::printf("  re-appears at texp_S = %s, then expires at texp_R = %s\n",
              a.critical[0].appears_at.ToString().c_str(),
              a.critical[0].expires_at.ToString().c_str());
  Check(a.critical[0].appears_at == Timestamp(8) &&
            a.critical[0].expires_at == Timestamp(20),
        "window [texp_S, texp_R) = [8, 20)");

  std::printf("case (3b): t = <4>, texp_R = 5 <= texp_S = 9: harmless\n");
  Check(!a.result.Contains(Tuple{4}), "<4> not in result");

  std::printf("\ntau_R = min{texp_S(t) | critical t} = %s\n",
              a.tau_r.ToString().c_str());
  Check(a.tau_r == Timestamp(8), "tau_R = 8 (the 3a instant)");

  // texp(e) through the evaluator (Eq. 11 with the texp_S correction).
  Database db;
  (void)db.PutRelation("R", std::move(r));
  (void)db.PutRelation("S", std::move(s));
  auto e = algebra::Difference(algebra::Base("R"), algebra::Base("S"));
  auto result = Evaluate(e, db, Timestamp(0)).MoveValue();
  std::printf("texp(e) = %s\n", result.texp.ToString().c_str());
  Check(result.texp == Timestamp(8),
        "texp(e) = min(texp(R), texp(S), tau_R) = 8");

  // And the exact Schrödinger validity (Sec. 3.4.2): invalid only during
  // [8, 20); valid again after every critical tuple expired from R.
  EvalOptions opts;
  opts.compute_validity = true;
  auto with_validity = Evaluate(e, db, Timestamp(0), opts).MoveValue();
  std::printf("validity I(e) = %s\n",
              with_validity.validity.ToString().c_str());
  Check(with_validity.validity.Contains(Timestamp(7)) &&
            !with_validity.validity.Contains(Timestamp(8)) &&
            !with_validity.validity.Contains(Timestamp(19)) &&
            with_validity.validity.Contains(Timestamp(20)),
        "I(e) = [0, 8) U [20, inf)");

  std::printf("\nTable 2 reproduced.\n");
  return 0;
}
