// Experiment C3 (Sec. 3.4.2, Theorem 3): maintaining a materialized
// difference by recomputation versus by priority-queue patching, sweeping
// the overlap fraction |R ∩ S| / |R| that controls how many critical
// tuples exist.
//
// Expected shape: recomputation cost grows with the number of critical
// instants (≈ overlap), while the patched view does zero recomputations at
// O(|R ∩ S|) extra memory — the paper's "classic trade-off ... between
// saving future communication and time/space".

#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "view/materialized_view.h"

namespace {

using namespace expdb;

constexpr int64_t kHorizon = 96;

Schema TwoInt() {
  return Schema({{"k", ValueType::kInt64}, {"v", ValueType::kInt64}});
}

/// Builds R and S with a controlled overlap fraction; overlapping tuples
/// get texp_R > texp_S with probability 1/2 (i.e. are critical).
Database MakeDb(int64_t n, double overlap, uint64_t seed) {
  Rng rng(seed);
  Database db;
  Relation r(TwoInt()), s(TwoInt());
  for (int64_t i = 0; i < n; ++i) {
    Timestamp tr(1 + rng.UniformInt(0, kHorizon - 2));
    (void)r.Insert(Tuple{i, i % 7}, tr);
    if (rng.UniformDouble() < overlap) {
      Timestamp ts(1 + rng.UniformInt(0, kHorizon - 2));
      (void)s.Insert(Tuple{i, i % 7}, ts);
    } else {
      (void)s.Insert(Tuple{i + n, i % 7},
                     Timestamp(1 + rng.UniformInt(0, kHorizon - 2)));
    }
  }
  (void)db.PutRelation("R", std::move(r));
  (void)db.PutRelation("S", std::move(s));
  return db;
}

void Run(benchmark::State& state, RefreshMode mode) {
  const int64_t n = 1 << 12;
  const double overlap = static_cast<double>(state.range(0)) / 100.0;
  Database db = MakeDb(n, overlap, 5150);
  auto expr = algebra::Difference(algebra::Base("R"), algebra::Base("S"));

  uint64_t recomputes = 0, patches = 0, helper_size = 0;
  for (auto _ : state) {
    MaterializedView::Options opts;
    opts.mode = mode;
    MaterializedView view(expr, opts);
    Status st = view.Initialize(db, Timestamp::Zero());
    if (!st.ok()) state.SkipWithError(st.ToString().c_str());
    helper_size = view.pending_patches();
    for (int64_t t = 0; t <= kHorizon; ++t) {
      auto result = view.Read(db, Timestamp(t));
      if (!result.ok()) state.SkipWithError(result.status().ToString().c_str());
      benchmark::DoNotOptimize(result->size());
    }
    recomputes += view.stats().recomputations;
    patches += view.stats().patches_applied;
  }
  const double iters = static_cast<double>(state.iterations());
  state.counters["overlap_pct"] =
      benchmark::Counter(static_cast<double>(state.range(0)));
  state.counters["recomputes_per_run"] =
      benchmark::Counter(static_cast<double>(recomputes) / iters);
  state.counters["patches_per_run"] =
      benchmark::Counter(static_cast<double>(patches) / iters);
  state.counters["helper_queue_size"] =
      benchmark::Counter(static_cast<double>(helper_size));
  state.SetLabel(std::string(RefreshModeToString(mode)));
}

void BM_EagerRecompute(benchmark::State& state) {
  Run(state, RefreshMode::kEagerRecompute);
}
void BM_PatchDifference(benchmark::State& state) {
  Run(state, RefreshMode::kPatchDifference);
}

void Args(benchmark::internal::Benchmark* b) {
  for (int64_t overlap : {0, 25, 50, 75, 100}) b->Arg(overlap);
  b->Unit(benchmark::kMillisecond);
}

BENCHMARK(BM_EagerRecompute)->Apply(Args);
BENCHMARK(BM_PatchDifference)->Apply(Args);

}  // namespace

BENCHMARK_MAIN();
