// Reproduces Table 1: neutral subsets with respect to the standard SQL
// aggregate functions. For each function the binary constructs a partition
// containing a non-trivial neutral subset and shows that the
// contributing-set expiration time (Table 1) strictly improves on the
// conservative Eq. (8) bound while remaining exact (equal to the Eq. (9)
// ν-replay), plus the paper's two special cases: count strictly follows
// Eq. (8), and C = ∅ extends the lifetime to the partition maximum.

#include <cstdio>
#include <memory>
#include <vector>

#include "bench/paper_db.h"
#include "core/aggregate.h"

using namespace expdb;

namespace {

struct Case {
  const char* label;
  AggregateFunction f;
  // (value, texp) pairs forming one partition.
  std::vector<std::pair<int64_t, int64_t>> rows;
  const char* neutral_rule;
};

void RunCase(const Case& c) {
  std::vector<std::unique_ptr<Tuple>> storage;
  std::vector<PartitionEntry> partition;
  std::printf("%s  (neutral: %s)\n  partition P = {", c.label,
              c.neutral_rule);
  for (size_t i = 0; i < c.rows.size(); ++i) {
    storage.push_back(std::make_unique<Tuple>(Tuple{c.rows[i].first}));
    partition.push_back({storage.back().get(), Timestamp(c.rows[i].second)});
    std::printf("%s%lld@%lld", i ? ", " : "",
                static_cast<long long>(c.rows[i].first),
                static_cast<long long>(c.rows[i].second));
  }
  auto cons = AnalyzePartition(partition, c.f,
                               AggregateExpirationMode::kConservative)
                  .value();
  auto contrib = AnalyzePartition(partition, c.f,
                                  AggregateExpirationMode::kContributingSet)
                     .value();
  auto exact =
      AnalyzePartition(partition, c.f, AggregateExpirationMode::kExact)
          .value();
  std::printf("}\n  %s(P) = %s; Eq.(8) texp = %s; Table-1 texp = %s; "
              "exact nu = %s; partition death = %s\n",
              c.f.ToString().c_str(), cons.value.ToString().c_str(),
              cons.change_cap.ToString().c_str(),
              contrib.change_cap.ToString().c_str(),
              exact.change_cap.ToString().c_str(),
              cons.death.ToString().c_str());
  Check(contrib.change_cap == exact.change_cap,
        "Table 1 closed form equals the Eq. (9) replay");
  Check(contrib.change_cap >= cons.change_cap,
        "Table 1 never worse than Eq. (8)");
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  ReproFlags flags(argc, argv);
  std::printf("=== Table 1: Neutral subsets per aggregate function ===\n\n");

  RunCase({"min_1: non-minimal tuples are neutral",
           AggregateFunction::Min(0),
           {{5, 20}, {9, 10}, {7, 12}},
           "t(i) > f(P), or a min holder that is not the last to expire"});
  RunCase({"min_1: early-expiring min holders are neutral",
           AggregateFunction::Min(0),
           {{5, 10}, {5, 25}, {9, 30}},
           "t(i) > f(P), or a min holder that is not the last to expire"});
  RunCase({"max_1: analogous structure",
           AggregateFunction::Max(0),
           {{9, 20}, {5, 10}, {8, 12}},
           "t(i) < f(P), or a max holder that is not the last to expire"});
  RunCase({"sum_1: a time slice summing to zero is neutral",
           AggregateFunction::Sum(0),
           {{3, 10}, {-3, 10}, {7, 20}},
           "sum over N = 0"});
  RunCase({"avg_1: a slice with the partition's average is neutral",
           AggregateFunction::Avg(0),
           {{3, 10}, {5, 10}, {4, 20}},
           "sum over N = (|N|/|P|) * sum over P"});
  RunCase({"count: only the empty set is neutral (strictly Eq. 8)",
           AggregateFunction::Count(),
           {{1, 10}, {2, 20}},
           "N = empty set"});
  RunCase({"sum_1, C = empty: all zeros, value valid until P expires",
           AggregateFunction::Sum(0),
           {{0, 10}, {0, 20}, {0, 30}},
           "sum over N = 0 (every slice neutral)"});

  std::printf("Table 1 reproduced.\n");
  return 0;
}
