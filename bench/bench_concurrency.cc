// Concurrent-engine benchmark — read scaling across threads, with and
// without the background MaintenanceService (EXPERIMENTS.md "Concurrent
// engine"; docs/CONCURRENCY.md).
//
// Scenarios:
//   * SnapshotReadScaling — N threads, each with its own sql::Session
//     over one shared engine, running the same selective point query
//     (result cache off, so every read does real scan work under its
//     snapshot's shared locks). Reader scaling 1 -> 2 -> 4 threads.
//   * WarmCacheReadScaling — the same with the shared result cache
//     warm: reads collapse to cache lookups, so this axis measures the
//     locking overhead itself rather than scan work.
//   * ReadScalingWithMaintenance — SnapshotReadScaling while the
//     MaintenanceService takes the engine exclusively every millisecond;
//     the delta against SnapshotReadScaling is the cost of background
//     housekeeping to foreground readers.
//
// NOTE on expectations: aggregate throughput can only exceed the
// single-thread number when the host has more than one core. CI
// containers with a single CPU show flat (or slightly degraded)
// scaling; that is the scheduler, not the locks — see EXPERIMENTS.md.

#include <memory>
#include <string>

#include <benchmark/benchmark.h>

#include "engine/engine.h"
#include "engine/maintenance.h"
#include "sql/session.h"

namespace {

using namespace expdb;  // NOLINT

constexpr const char* kPointQuery = "SELECT * FROM t WHERE v = 3";
constexpr int64_t kRows = 8192;

void Must(const Result<sql::ExecResult>& r, benchmark::State& state) {
  if (!r.ok()) state.SkipWithError(r.status().ToString().c_str());
}

/// An engine with t(k INT, v INT): kRows rows, v uniform over 97
/// values, expirations far in the future.
std::shared_ptr<engine::Engine> SetupEngine(bool result_cache,
                                            bool maintenance) {
  auto eng = std::make_shared<engine::Engine>();
  sql::Session s(eng);
  (void)s.Execute("CREATE TABLE t (k INT, v INT)");
  Relation* r = s.db().GetRelation("t").value();
  for (int64_t i = 0; i < kRows; ++i) {
    (void)r->Insert(Tuple{i, i % 97}, Timestamp(1000000 + i));
  }
  if (!result_cache) (void)s.Execute("SET result_cache_bytes = 0");
  if (maintenance) (void)s.Execute("SET maintenance_interval_ms = 1");
  return eng;
}

/// One engine per scenario, created on first use (magic-static, so
/// every benchmark thread sees a fully built engine).
const std::shared_ptr<engine::Engine>& ScanEngine() {
  static std::shared_ptr<engine::Engine> eng = SetupEngine(false, false);
  return eng;
}
const std::shared_ptr<engine::Engine>& CachedEngine() {
  static std::shared_ptr<engine::Engine> eng = SetupEngine(true, false);
  return eng;
}
const std::shared_ptr<engine::Engine>& MaintainedEngine() {
  static std::shared_ptr<engine::Engine> eng = SetupEngine(false, true);
  return eng;
}

/// Each benchmark thread opens its own Session over the shared engine
/// and hammers the point query; items/s aggregates across threads.
void RunReads(const std::shared_ptr<engine::Engine>& eng,
              benchmark::State& state) {
  sql::Session s(eng);
  for (auto _ : state) {
    auto r = s.Execute(kPointQuery);
    Must(r, state);
    benchmark::DoNotOptimize(r);
  }
  state.SetItemsProcessed(state.iterations());
}

void BM_SnapshotReadScaling(benchmark::State& state) {
  RunReads(ScanEngine(), state);
  state.SetLabel("result cache off; full scan per read");
}
BENCHMARK(BM_SnapshotReadScaling)
    ->Threads(1)
    ->Threads(2)
    ->Threads(4)
    ->UseRealTime();

void BM_WarmCacheReadScaling(benchmark::State& state) {
  RunReads(CachedEngine(), state);
  state.SetLabel("warm shared result cache; lock overhead axis");
}
BENCHMARK(BM_WarmCacheReadScaling)
    ->Threads(1)
    ->Threads(2)
    ->Threads(4)
    ->UseRealTime();

void BM_ReadScalingWithMaintenance(benchmark::State& state) {
  RunReads(MaintainedEngine(), state);
  state.SetLabel("1ms background maintenance cadence");
}
BENCHMARK(BM_ReadScalingWithMaintenance)
    ->Threads(1)
    ->Threads(2)
    ->Threads(4)
    ->UseRealTime();

/// The cost of one synchronous maintenance pass over an engine with
/// nothing expired: the floor every background cadence pays.
void BM_MaintenancePassEmpty(benchmark::State& state) {
  const std::shared_ptr<engine::Engine>& eng = ScanEngine();
  for (auto _ : state) {
    benchmark::DoNotOptimize(eng->maintenance().RunOnce());
  }
}
BENCHMARK(BM_MaintenancePassEmpty);

}  // namespace

BENCHMARK_MAIN();
