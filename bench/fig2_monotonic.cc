// Reproduces Figure 2: monotonic expressions over the Figure 1 database —
// the base relations (a)(b), the projection πexp_2(Pol) at times 0 and 10
// (c)(d), and the join Pol ⋈exp_{1=3} El at times 0, 3, and 5 (e)(f)(g) —
// verifying that the materialized-at-0 results, expired in place, coincide
// with recomputation (Theorem 1).

#include <cstdio>

#include "bench/paper_db.h"
#include "core/eval.h"
#include "relational/printer.h"

int main(int argc, char** argv) {
  using namespace expdb;
  using namespace expdb::algebra;
  std::printf("=== Figure 2: Example monotonic expressions ===\n\n");

  Database db = MakePaperDatabase();

  auto show = [&](const char* caption, const ExpressionPtr& e, int64_t tau) {
    auto result = Evaluate(e, db, Timestamp(tau)).MoveValue();
    std::printf("%s  —  %s at time %lld\n%s\n", caption,
                e->ToString().c_str(), static_cast<long long>(tau),
                PrintTuples(result.relation, Timestamp(tau)).c_str());
    return result;
  };

  std::printf("(a) Relation Pol at time 0\n%s\n",
              PrintTuples(*db.GetRelation("Pol").value(), Timestamp(0))
                  .c_str());
  std::printf("(b) Relation El at time 0\n%s\n",
              PrintTuples(*db.GetRelation("El").value(), Timestamp(0))
                  .c_str());

  auto proj = Project(Base("Pol"), {1});
  auto proj0 = show("(c)", proj, 0);
  Check(proj0.relation.size() == 2 &&
            proj0.relation.GetTexp(Tuple{25}) == Timestamp(15) &&
            proj0.relation.GetTexp(Tuple{35}) == Timestamp(10),
        "(c) = {<25>@15, <35>@10} (max of duplicates, Formula 3)");
  auto proj10 = show("(d)", proj, 10);
  Check(proj10.relation.size() == 1 &&
            proj10.relation.Contains(Tuple{25}),
        "(d) = {<25>}");
  Check(Relation::EqualAt(proj0.relation, proj10.relation, Timestamp(10)),
        "(d) equals (c) expired in place (Theorem 1)");

  auto join = Join(Base("Pol"), Base("El"), Predicate::ColumnsEqual(0, 2));
  auto join0 = show("(e)", join, 0);
  Check(join0.relation.size() == 2 &&
            join0.relation.GetTexp(Tuple{1, 25, 1, 75}) == Timestamp(5) &&
            join0.relation.GetTexp(Tuple{2, 25, 2, 85}) == Timestamp(3),
        "(e) = {<1,25,1,75>@5, <2,25,2,85>@3}");
  auto join3 = show("(f)", join, 3);
  Check(join3.relation.size() == 1 &&
            join3.relation.Contains(Tuple{1, 25, 1, 75}),
        "(f) = {<1,25,1,75>}");
  auto join5 = show("(g)", join, 5);
  Check(join5.relation.empty(), "(g) the query is empty");
  for (int64_t tau : {0, 1, 2, 3, 4, 5, 10, 15}) {
    auto fresh = Evaluate(join, db, Timestamp(tau)).MoveValue();
    Check(Relation::EqualAt(join0.relation, fresh.relation, Timestamp(tau)),
          ("join materialized at 0 == recomputed at " + std::to_string(tau))
              .c_str());
  }
  std::printf("\nFigure 2 reproduced.\n");
  MaybeDumpStats(argc, argv);
  return 0;
}
