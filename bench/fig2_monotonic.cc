// Reproduces Figure 2: monotonic expressions over the Figure 1 database —
// the base relations (a)(b), the projection πexp_2(Pol) at times 0 and 10
// (c)(d), and the join Pol ⋈exp_{1=3} El at times 0, 3, and 5 (e)(f)(g) —
// verifying that the materialized-at-0 results, expired in place, coincide
// with recomputation (Theorem 1).
//
// The materializations are held as ViewManager views (not ad-hoc
// Evaluate() results), so the Theorem 1 claim is checked against the
// engine's real maintenance machinery — and the `--stats` dump shows the
// run's view metrics (reads served from the materialization, zero
// recomputations) alongside the evaluator counters.

#include <cstdio>

#include "bench/paper_db.h"
#include "core/eval.h"
#include "plan/executor.h"
#include "plan/planner.h"
#include "relational/printer.h"
#include "view/view_manager.h"

int main(int argc, char** argv) {
  using namespace expdb;
  ReproFlags flags(argc, argv);
  using namespace expdb::algebra;
  std::printf("=== Figure 2: Example monotonic expressions ===\n\n");

  Database db = MakePaperDatabase();
  ViewManager views(&db);

  std::printf("(a) Relation Pol at time 0\n%s\n",
              PrintTuples(*db.GetRelation("Pol").value(), Timestamp(0))
                  .c_str());
  std::printf("(b) Relation El at time 0\n%s\n",
              PrintTuples(*db.GetRelation("El").value(), Timestamp(0))
                  .c_str());

  auto show = [&](const char* caption, const char* view, int64_t tau) {
    Relation r = views.Read(view, Timestamp(tau)).MoveValue();
    std::printf("%s  —  %s at time %lld\n%s\n", caption,
                views.GetView(view).value()->expression()->ToString().c_str(),
                static_cast<long long>(tau),
                PrintTuples(r, Timestamp(tau)).c_str());
    return r;
  };

  // (c)(d) The projection, materialized once at time 0 and expired in
  // place from then on.
  auto proj = Project(Base("Pol"), {1});
  Check(views.CreateView("proj_pol", proj, {}, Timestamp(0)).ok(),
        "πexp_2(Pol) materialized as a view at time 0");
  Relation proj0 = show("(c)", "proj_pol", 0);
  Check(proj0.size() == 2 &&
            proj0.GetTexp(Tuple{25}) == Timestamp(15) &&
            proj0.GetTexp(Tuple{35}) == Timestamp(10),
        "(c) = {<25>@15, <35>@10} (max of duplicates, Formula 3)");
  Relation proj10 = show("(d)", "proj_pol", 10);
  Check(proj10.size() == 1 && proj10.Contains(Tuple{25}), "(d) = {<25>}");
  Check(Relation::EqualAt(proj0, proj10, Timestamp(10)),
        "(d) equals (c) expired in place (Theorem 1)");

  // (e)(f)(g) The join, also materialized once at time 0. Reads sweep
  // forward in time (views only move forward) and are checked against an
  // independent recomputation at each instant.
  auto join = Join(Base("Pol"), Base("El"), Predicate::ColumnsEqual(0, 2));
  Check(views.CreateView("pol_el", join, {}, Timestamp(0)).ok(),
        "Pol ⋈exp El materialized as a view at time 0");
  for (int64_t tau : {0, 1, 2, 3, 4, 5, 10, 15}) {
    Relation at_tau = views.Read("pol_el", Timestamp(tau)).MoveValue();
    if (tau == 0) {
      std::printf("(e)  —  %s at time 0\n%s\n", join->ToString().c_str(),
                  PrintTuples(at_tau, Timestamp(0)).c_str());
      Check(at_tau.size() == 2 &&
                at_tau.GetTexp(Tuple{1, 25, 1, 75}) == Timestamp(5) &&
                at_tau.GetTexp(Tuple{2, 25, 2, 85}) == Timestamp(3),
            "(e) = {<1,25,1,75>@5, <2,25,2,85>@3}");
    } else if (tau == 3) {
      std::printf("(f)  —  at time 3\n%s\n",
                  PrintTuples(at_tau, Timestamp(3)).c_str());
      Check(at_tau.size() == 1 && at_tau.Contains(Tuple{1, 25, 1, 75}),
            "(f) = {<1,25,1,75>}");
    } else if (tau == 5) {
      std::printf("(g)  —  at time 5\n%s\n",
                  PrintTuples(at_tau, Timestamp(5)).c_str());
      Check(at_tau.empty(), "(g) the query is empty");
    }
    auto fresh = Evaluate(join, db, Timestamp(tau)).MoveValue();
    Check(Relation::EqualAt(at_tau, fresh.relation, Timestamp(tau)),
          ("join materialized at 0 == recomputed at " + std::to_string(tau))
              .c_str());
  }

  // The crux of Theorem 1, straight from the maintenance counters: every
  // read of both monotonic views was served from the materialization.
  const ViewStats totals = views.TotalStats();
  Check(totals.recomputations == 0,
        "monotonic views never recomputed (Theorem 1)");
  Check(totals.reads == totals.reads_from_materialization,
        "every read served from the time-0 materialization");

  // Storage-level view of (f): repartition El on a fine texp grid
  // (width 2: {<4,90>@2, <2,85>@3} land in one segment, <1,75>@5 in
  // another) and profile the join at time 3 — the earlier segment's
  // bound says every tuple in it is expired, so the scan prunes it
  // whole without a single per-tuple check, which EXPLAIN ANALYZE
  // surfaces as a nonzero pruned-segment count.
  {
    db.GetRelation("El").value()->SetSegmented({/*bucket_width=*/2,
                                                /*max_segments=*/64});
    auto plan = plan::Planner::Plan(join, db).MoveValue();
    plan::PlanProfile profile;
    Check(plan::ExecutePlan(*plan, db, Timestamp(3), {}, &profile).ok(),
          "join executes with profiling at time 3");
    std::printf("\nEXPLAIN ANALYZE  —  %s at time 3\n%s\n",
                join->ToString().c_str(), plan->ToString(&profile).c_str());
    uint64_t pruned = 0;
    for (const auto& n : profile.nodes) pruned += n.segs_pruned;
    Check(pruned > 0,
          "the El scan pruned its fully-expired segment without a "
          "per-tuple check");
  }

  std::printf("\nFigure 2 reproduced.\n");
  return 0;
}
