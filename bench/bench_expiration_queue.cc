// Experiment C4 (paper Sec. 3.2): eager versus lazy physical removal.
//
// Expected shape: lazy removal wins on raw advance/insert throughput
// (batched compaction amortizes removal and skips the per-tuple priority
// queue), eager wins on trigger latency (triggers fire the instant a
// tuple expires) and keeps relations physically smaller between
// compactions.

#include <benchmark/benchmark.h>

#include "expiration/expiration_queue.h"
#include "common/rng.h"

namespace {

using namespace expdb;

Schema TwoInt() {
  return Schema({{"k", ValueType::kInt64}, {"v", ValueType::kInt64}});
}

/// Insert n tuples with uniform TTLs, then advance tick-by-tick through
/// the full horizon so every tuple expires.
void RunChurn(benchmark::State& state, RemovalPolicy policy,
              ExpirationIndex index = ExpirationIndex::kBinaryHeap) {
  const int64_t n = state.range(0);
  const int64_t horizon = 128;
  for (auto _ : state) {
    state.PauseTiming();
    ExpirationManagerOptions opts;
    opts.policy = policy;
    opts.index = index;
    opts.lazy_compaction_threshold = 0.5;
    ExpirationManager em(opts);
    (void)em.CreateRelation("t", TwoInt());
    Rng rng(7);
    state.ResumeTiming();

    for (int64_t i = 0; i < n; ++i) {
      benchmark::DoNotOptimize(
          em.Insert("t", Tuple{i, rng.UniformInt(0, 99)},
                    Timestamp(1 + rng.UniformInt(0, horizon - 2))));
    }
    for (int64_t t = 1; t < horizon; ++t) {
      benchmark::DoNotOptimize(em.AdvanceTo(Timestamp(t)));
    }
    if (policy == RemovalPolicy::kLazy) em.Compact();

    state.PauseTiming();
    state.counters["removed"] =
        benchmark::Counter(static_cast<double>(em.stats().removed));
    state.counters["heap_pops"] =
        benchmark::Counter(static_cast<double>(em.stats().heap_pops));
    state.counters["compactions"] =
        benchmark::Counter(static_cast<double>(em.stats().compactions));
    state.ResumeTiming();
  }
  state.counters["tuples_per_s"] = benchmark::Counter(
      static_cast<double>(n) * static_cast<double>(state.iterations()),
      benchmark::Counter::kIsRate);
  std::string label(RemovalPolicyToString(policy));
  if (policy == RemovalPolicy::kEager) {
    label += "/" + std::string(ExpirationIndexToString(index));
  }
  state.SetLabel(label);
}

void BM_ChurnEager(benchmark::State& state) {
  RunChurn(state, RemovalPolicy::kEager);
}
void BM_ChurnEagerCalendar(benchmark::State& state) {
  RunChurn(state, RemovalPolicy::kEager, ExpirationIndex::kCalendarQueue);
}
void BM_ChurnLazy(benchmark::State& state) {
  RunChurn(state, RemovalPolicy::kLazy);
}

BENCHMARK(BM_ChurnEager)->Range(1 << 10, 1 << 17)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_ChurnEagerCalendar)
    ->Range(1 << 10, 1 << 17)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_ChurnLazy)->Range(1 << 10, 1 << 17)->Unit(benchmark::kMillisecond);

/// Trigger latency: how many ticks after the true expiration instant the
/// trigger observes the removal (0 under eager; up to the compaction
/// delay under lazy).
void RunTriggerLatency(benchmark::State& state, RemovalPolicy policy,
                       double threshold) {
  const int64_t n = state.range(0);
  const int64_t horizon = 256;
  double total_latency = 0;
  uint64_t fired = 0;
  for (auto _ : state) {
    ExpirationManagerOptions opts;
    opts.policy = policy;
    opts.lazy_compaction_threshold = threshold;
    ExpirationManager em(opts);
    (void)em.CreateRelation("t", TwoInt());
    em.AddTrigger([&](const ExpirationEvent& e) {
      total_latency += static_cast<double>(e.removed_at.ticks() -
                                           e.texp.ticks());
      ++fired;
    });
    Rng rng(11);
    for (int64_t i = 0; i < n; ++i) {
      benchmark::DoNotOptimize(
          em.Insert("t", Tuple{i, 0},
                    Timestamp(1 + rng.UniformInt(0, horizon - 2))));
    }
    for (int64_t t = 1; t < horizon; ++t) {
      benchmark::DoNotOptimize(em.AdvanceTo(Timestamp(t)));
    }
    em.Compact();
  }
  state.counters["mean_trigger_delay_ticks"] = benchmark::Counter(
      fired == 0 ? 0.0 : total_latency / static_cast<double>(fired));
  state.SetLabel(std::string(RemovalPolicyToString(policy)));
}

void BM_TriggerLatencyEager(benchmark::State& state) {
  RunTriggerLatency(state, RemovalPolicy::kEager, 0.5);
}
void BM_TriggerLatencyLazy(benchmark::State& state) {
  RunTriggerLatency(state, RemovalPolicy::kLazy, 0.5);
}

BENCHMARK(BM_TriggerLatencyEager)->Arg(1 << 13)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_TriggerLatencyLazy)->Arg(1 << 13)->Unit(benchmark::kMillisecond);

/// Scan throughput as the physically-stored expired fraction grows (the
/// price lazy removal pays on reads).
void BM_ScanWithExpiredFraction(benchmark::State& state) {
  const int64_t n = 1 << 16;
  const double expired_fraction =
      static_cast<double>(state.range(0)) / 100.0;
  Relation rel(TwoInt());
  Rng rng(13);
  const int64_t n_expired = static_cast<int64_t>(n * expired_fraction);
  for (int64_t i = 0; i < n; ++i) {
    // Expired tuples get texp <= 50; live ones texp > 50.
    Timestamp texp = i < n_expired
                         ? Timestamp(1 + rng.UniformInt(0, 49))
                         : Timestamp(51 + rng.UniformInt(0, 49));
    (void)rel.Insert(Tuple{i, 0}, texp);
  }
  const Timestamp now(50);
  for (auto _ : state) {
    size_t live = 0;
    rel.ForEachUnexpired(now, [&](const Tuple&, Timestamp) { ++live; });
    benchmark::DoNotOptimize(live);
  }
  state.counters["expired_pct"] =
      benchmark::Counter(static_cast<double>(state.range(0)));
  state.counters["tuples_per_s"] = benchmark::Counter(
      static_cast<double>(n) * static_cast<double>(state.iterations()),
      benchmark::Counter::kIsRate);
}

BENCHMARK(BM_ScanWithExpiredFraction)
    ->Arg(0)
    ->Arg(25)
    ->Arg(50)
    ->Arg(75)
    ->Arg(90)
    ->Unit(benchmark::kMicrosecond);

}  // namespace

BENCHMARK_MAIN();
