// Ablation for the paper's future-work extension implemented in ExpDB:
// maintaining aggregate values with an absolute error bound ε. Sweeping ε
// (as a percentage of the expected per-partition aggregate magnitude)
// measures how much tolerated staleness buys in view lifetime and
// maintenance cost.
//
// Expected shape: recomputations decrease monotonically in ε; ε = 0
// coincides with the exact (Eq. 9) analysis; sum/avg benefit smoothly,
// count benefits in integer steps.

#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "view/materialized_view.h"

namespace {

using namespace expdb;

constexpr int64_t kHorizon = 96;
constexpr int64_t kGroups = 32;
constexpr int64_t kValueMax = 100;

Database MakeDb(int64_t n, uint64_t seed) {
  Rng rng(seed);
  Database db;
  Relation r(Schema({{"k", ValueType::kInt64}, {"v", ValueType::kInt64}}));
  for (int64_t i = 0; i < n; ++i) {
    (void)r.Insert(
        Tuple{rng.UniformInt(0, kGroups - 1), rng.UniformInt(0, kValueMax)},
        Timestamp(1 + rng.UniformInt(0, kHorizon - 2)));
  }
  (void)db.PutRelation("R", std::move(r));
  return db;
}

void Run(benchmark::State& state, AggregateFunction f) {
  const int64_t n = 1 << 12;
  const double tolerance = static_cast<double>(state.range(0));
  Database db = MakeDb(n, 909);
  auto expr = algebra::Aggregate(algebra::Base("R"), {0}, f);

  uint64_t recomputes = 0;
  for (auto _ : state) {
    MaterializedView::Options opts;
    opts.eval.aggregate_mode = AggregateExpirationMode::kExact;
    opts.eval.aggregate_tolerance = tolerance;
    MaterializedView view(expr, opts);
    Status st = view.Initialize(db, Timestamp::Zero());
    if (!st.ok()) state.SkipWithError(st.ToString().c_str());
    for (int64_t t = 0; t <= kHorizon; ++t) {
      auto rows = view.Read(db, Timestamp(t));
      if (!rows.ok()) state.SkipWithError(rows.status().ToString().c_str());
      benchmark::DoNotOptimize(rows->size());
    }
    recomputes += view.stats().recomputations;
  }
  state.counters["tolerance"] = benchmark::Counter(tolerance);
  state.counters["recomputes_per_run"] = benchmark::Counter(
      static_cast<double>(recomputes) /
      static_cast<double>(state.iterations()));
  state.SetLabel(f.ToString());
}

void BM_ApproxSum(benchmark::State& state) {
  Run(state, AggregateFunction::Sum(1));
}
void BM_ApproxAvg(benchmark::State& state) {
  Run(state, AggregateFunction::Avg(1));
}
void BM_ApproxCount(benchmark::State& state) {
  Run(state, AggregateFunction::Count());
}

void SumArgs(benchmark::internal::Benchmark* b) {
  // Per-group sums are ~ (4096/32) * 50 = 6400; sweep ε across magnitudes.
  for (int64_t eps : {0, 64, 640, 3200, 6400}) b->Arg(eps);
  b->Unit(benchmark::kMillisecond);
}
void AvgArgs(benchmark::internal::Benchmark* b) {
  for (int64_t eps : {0, 1, 5, 25, 50}) b->Arg(eps);
  b->Unit(benchmark::kMillisecond);
}
void CountArgs(benchmark::internal::Benchmark* b) {
  for (int64_t eps : {0, 1, 8, 32, 128}) b->Arg(eps);
  b->Unit(benchmark::kMillisecond);
}

BENCHMARK(BM_ApproxSum)->Apply(SumArgs);
BENCHMARK(BM_ApproxAvg)->Apply(AvgArgs);
BENCHMARK(BM_ApproxCount)->Apply(CountArgs);

}  // namespace

BENCHMARK_MAIN();
