// Reproduces Figure 3: non-monotonic expressions over the Figure 1
// database — (a) the histogram πexp_{2,3}(aggexp_{{2},count}(Pol)), whose
// materialization is invalid from time 10, and (b)-(d) the difference
// πexp_1(Pol) −exp πexp_1(El), which *grows* as tuples expire from El and
// is invalid from time 3 onwards.

#include <cstdio>

#include "bench/paper_db.h"
#include "core/eval.h"
#include "relational/printer.h"

int main(int argc, char** argv) {
  using namespace expdb;
  using namespace expdb::algebra;
  std::printf("=== Figure 3: Some non-monotonic expressions ===\n\n");

  Database db = MakePaperDatabase();

  // (a) The histogram.
  auto hist = Project(
      Aggregate(Base("Pol"), {1}, AggregateFunction::Count()), {1, 2});
  auto hist0 = Evaluate(hist, db, Timestamp(0)).MoveValue();
  std::printf("(a) %s at time 0\n%s\n", hist->ToString().c_str(),
              PrintTuples(hist0.relation, Timestamp(0)).c_str());
  Check(hist0.relation.Contains(Tuple{25, 2}) &&
            hist0.relation.Contains(Tuple{35, 1}),
        "(a) = {<25,2>, <35,1>}");
  Check(hist0.relation.GetTexp(Tuple{25, 2}) == Timestamp(10),
        "<25,2> expires at 10 per Eq. (8)");
  Check(hist0.texp == Timestamp(10),
        "texp(e) = 10: invalid from time 10 on (should contain <25,1>)");
  auto hist10 = Evaluate(hist, db, Timestamp(10)).MoveValue();
  Check(hist10.relation.size() == 1 &&
            hist10.relation.Contains(Tuple{25, 1}),
        "recomputation at 10 = {<25,1>}, never materialized");
  Check(!Relation::ContentsEqualAt(hist0.relation, hist10.relation,
                                   Timestamp(10)),
        "the expired materialization is indeed invalid at 10");

  // (b)-(d) The growing difference.
  auto diff =
      Difference(Project(Base("Pol"), {0}), Project(Base("El"), {0}));
  auto diff0 = Evaluate(diff, db, Timestamp(0)).MoveValue();
  std::printf("(b) %s at time 0\n%s\n", diff->ToString().c_str(),
              PrintTuples(diff0.relation, Timestamp(0)).c_str());
  Check(diff0.relation.size() == 1 && diff0.relation.Contains(Tuple{3}),
        "(b) = {<3>}");
  Check(diff0.texp == Timestamp(3),
        "texp(e) = 3: the expression is invalid from time 3 onwards");

  auto diff3 = Evaluate(diff, db, Timestamp(3)).MoveValue();
  std::printf("(c) at time 3\n%s\n",
              PrintTuples(diff3.relation, Timestamp(3)).c_str());
  Check(diff3.relation.size() == 2 && diff3.relation.Contains(Tuple{2}),
        "(c) = {<2>, <3>} — the result grew");

  auto diff5 = Evaluate(diff, db, Timestamp(5)).MoveValue();
  std::printf("(d) at time 5\n%s\n",
              PrintTuples(diff5.relation, Timestamp(5)).c_str());
  Check(diff5.relation.size() == 3 && diff5.relation.Contains(Tuple{1}),
        "(d) = {<1>, <2>, <3>} — grew monotonically before time 10");

  Check(!Relation::ContentsEqualAt(diff0.relation, diff3.relation,
                                   Timestamp(3)),
        "the materialization at 0 misses <2> at time 3: invalid");

  std::printf("\nFigure 3 reproduced.\n");
  MaybeDumpStats(argc, argv);
  return 0;
}
