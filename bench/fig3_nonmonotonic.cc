// Reproduces Figure 3: non-monotonic expressions over the Figure 1
// database — (a) the histogram πexp_{2,3}(aggexp_{{2},count}(Pol)), whose
// materialization is invalid from time 10, and (b)-(d) the difference
// πexp_1(Pol) −exp πexp_1(El), which *grows* as tuples expire from El and
// is invalid from time 3 onwards.
//
// Both results are held as ViewManager views: the histogram as a lazy
// view that recomputes exactly when its texp(e) lapses, the difference as
// a Theorem 3 patch view that grows in place without any recomputation.
// `--stats` then shows the run's view metrics next to the evaluator
// counters.

#include <cstdio>

#include "bench/paper_db.h"
#include "core/eval.h"
#include "plan/executor.h"
#include "plan/planner.h"
#include "relational/printer.h"
#include "view/view_manager.h"

int main(int argc, char** argv) {
  using namespace expdb;
  ReproFlags flags(argc, argv);
  using namespace expdb::algebra;
  std::printf("=== Figure 3: Some non-monotonic expressions ===\n\n");

  Database db = MakePaperDatabase();
  ViewManager views(&db);

  // (a) The histogram, as a lazy view: valid until texp(e), recomputed by
  // the first read past it.
  auto hist = Project(
      Aggregate(Base("Pol"), {1}, AggregateFunction::Count()), {1, 2});
  MaterializedView::Options lazy;
  lazy.mode = RefreshMode::kLazyRecompute;
  Check(views.CreateView("hist", hist, lazy, Timestamp(0)).ok(),
        "histogram materialized as a lazy view at time 0");
  MaterializedView* hist_view = views.GetView("hist").value();
  Relation hist0 = views.Read("hist", Timestamp(0)).MoveValue();
  std::printf("(a) %s at time 0\n%s\n", hist->ToString().c_str(),
              PrintTuples(hist0, Timestamp(0)).c_str());
  Check(hist0.Contains(Tuple{25, 2}) && hist0.Contains(Tuple{35, 1}),
        "(a) = {<25,2>, <35,1>}");
  Check(hist0.GetTexp(Tuple{25, 2}) == Timestamp(10),
        "<25,2> expires at 10 per Eq. (8)");
  Check(hist_view->texp() == Timestamp(10),
        "texp(e) = 10: invalid from time 10 on (should contain <25,1>)");
  Relation hist10 = views.Read("hist", Timestamp(10)).MoveValue();
  Check(hist10.size() == 1 && hist10.Contains(Tuple{25, 1}),
        "read at 10 = {<25,1>}, recomputed lazily");
  Check(hist_view->stats().recomputations == 1,
        "exactly one recomputation, at the texp(e) = 10 lapse");
  Check(!Relation::ContentsEqualAt(hist0, hist10, Timestamp(10)),
        "the expired materialization is indeed invalid at 10");

  // (b)-(d) The growing difference. The plain expression is invalid from
  // time 3 on...
  auto diff =
      Difference(Project(Base("Pol"), {0}), Project(Base("El"), {0}));
  auto diff0 = Evaluate(diff, db, Timestamp(0)).MoveValue();
  Check(diff0.texp == Timestamp(3),
        "texp(e) = 3: the expression is invalid from time 3 onwards");

  // ...but as a Theorem 3 patch view the expiring helper tuples are
  // inserted in place and the view becomes maintenance-free.
  MaterializedView::Options patch;
  patch.mode = RefreshMode::kPatchDifference;
  Check(views.CreateView("pol_minus_el", diff, patch, Timestamp(0)).ok(),
        "difference materialized as a Theorem 3 patch view at time 0");
  MaterializedView* diff_view = views.GetView("pol_minus_el").value();
  Check(diff_view->texp().IsInfinite(),
        "patched, the view never invalidates: texp = ∞ (Theorem 3)");

  Relation diffr0 = views.Read("pol_minus_el", Timestamp(0)).MoveValue();
  std::printf("(b) %s at time 0\n%s\n", diff->ToString().c_str(),
              PrintTuples(diffr0, Timestamp(0)).c_str());
  Check(diffr0.size() == 1 && diffr0.Contains(Tuple{3}), "(b) = {<3>}");

  Relation diffr3 = views.Read("pol_minus_el", Timestamp(3)).MoveValue();
  std::printf("(c) at time 3\n%s\n",
              PrintTuples(diffr3, Timestamp(3)).c_str());
  Check(diffr3.size() == 2 && diffr3.Contains(Tuple{2}),
        "(c) = {<2>, <3>} — the result grew");

  Relation diffr5 = views.Read("pol_minus_el", Timestamp(5)).MoveValue();
  std::printf("(d) at time 5\n%s\n",
              PrintTuples(diffr5, Timestamp(5)).c_str());
  Check(diffr5.size() == 3 && diffr5.Contains(Tuple{1}),
        "(d) = {<1>, <2>, <3>} — grew monotonically before time 10");

  Check(!Relation::ContentsEqualAt(diffr0, diffr3, Timestamp(3)),
        "the materialization at 0 misses <2> at time 3: invalid");
  Check(diff_view->stats().recomputations == 0 &&
            diff_view->stats().patches_applied >= 2,
        "the growth came from helper patches, not recomputation");

  // The (c) instant, seen by the storage layer: repartition El on a fine
  // texp grid (width 2) so <4,90>@2 and <2,85>@3 share a segment that is
  // fully expired at time 3 while <1,75>@5 stays live in its own — a
  // profiled recomputation of the difference then prunes the dead
  // segment at segment granularity, visible as a nonzero pruned count
  // in EXPLAIN ANALYZE.
  {
    db.GetRelation("El").value()->SetSegmented({/*bucket_width=*/2,
                                                /*max_segments=*/64});
    auto plan = plan::Planner::Plan(diff, db).MoveValue();
    plan::PlanProfile profile;
    Check(plan::ExecutePlan(*plan, db, Timestamp(3), {}, &profile).ok(),
          "difference executes with profiling at time 3");
    std::printf("\nEXPLAIN ANALYZE  —  %s at time 3\n%s\n",
                diff->ToString().c_str(), plan->ToString(&profile).c_str());
    uint64_t pruned = 0;
    for (const auto& n : profile.nodes) pruned += n.segs_pruned;
    Check(pruned > 0,
          "the El scan pruned its fully-expired segment without a "
          "per-tuple check");
  }

  std::printf("\nFigure 3 reproduced.\n");
  return 0;
}
