// Observability overhead: the cost of the obs wiring on the evaluation
// hot path (docs/OBSERVABILITY.md "overhead budget").
//
// Compares Evaluate() with EvalOptions::enable_metrics on (the default:
// per-operator counters + tuple counts, spans disabled-recorder) against
// the uninstrumented path, over selection, join, and difference trees at
// several relation sizes. A third variant enables the global trace
// recorder to price full span recording.
//
// Acceptance: the counter-only overhead stays under 5% on non-trivial
// inputs; see EXPERIMENTS.md C7 for recorded numbers.
//
// A second family prices the end-to-end SQL statement path with tracing
// and the structured event log switched on (EXPERIMENTS.md C11), plus
// EventLog::Emit micro-costs to attribute those numbers.

#include <benchmark/benchmark.h>

#include "core/eval.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "sql/session.h"
#include "testing/workload.h"

namespace {

using namespace expdb;

Database MakeDb(int64_t n, uint64_t seed) {
  Rng rng(seed);
  Database db;
  testing::RelationSpec spec;
  spec.num_tuples = static_cast<size_t>(n);
  spec.arity = 2;
  spec.value_domain = std::max<int64_t>(4, n / 8);
  spec.ttl_min = 1;
  spec.ttl_max = 1 << 20;  // effectively everything alive
  (void)testing::FillDatabase(&db, rng, spec, 2);
  return db;
}

ExpressionPtr MakeExpr(const std::string& kind) {
  using namespace algebra;
  if (kind == "select") {
    return Select(Base("R0"), Predicate::ColumnEquals(0, Value(int64_t{1})));
  }
  if (kind == "join") {
    return Join(Base("R0"), Base("R1"), Predicate::ColumnsEqual(0, 2));
  }
  return Difference(Base("R0"), Base("R1"));
}

void RunEval(benchmark::State& state, const std::string& kind,
             bool metrics, bool tracing) {
  const int64_t n = state.range(0);
  Database db = MakeDb(n, 7);
  ExpressionPtr expr = MakeExpr(kind);
  EvalOptions opts;
  opts.enable_metrics = metrics;
  obs::TraceRecorder::Global().set_enabled(tracing);
  uint64_t tuples = 0;
  for (auto _ : state) {
    auto result = Evaluate(expr, db, Timestamp(1), opts);
    if (!result.ok()) {
      state.SkipWithError(result.status().ToString().c_str());
      break;
    }
    tuples += result.value().relation.size();
    benchmark::DoNotOptimize(result.value());
  }
  obs::TraceRecorder::Global().set_enabled(false);
  state.SetItemsProcessed(static_cast<int64_t>(tuples));
  state.counters["tuples_out"] =
      benchmark::Counter(static_cast<double>(tuples),
                         benchmark::Counter::kAvgIterations);
}

void BM_Eval_Uninstrumented(benchmark::State& state,
                            const std::string& kind) {
  RunEval(state, kind, /*metrics=*/false, /*tracing=*/false);
}
void BM_Eval_Counters(benchmark::State& state, const std::string& kind) {
  RunEval(state, kind, /*metrics=*/true, /*tracing=*/false);
}
void BM_Eval_CountersAndTracing(benchmark::State& state,
                                const std::string& kind) {
  RunEval(state, kind, /*metrics=*/true, /*tracing=*/true);
}

// End-to-end SQL statement cost with the observability features a session
// can switch on: plain (recorder and event log off), full span recording
// (TRACE ON), and the event log with slow_query_ns = 0 so every statement
// both records spans into the ring and emits a structured event.
void RunSessionStatement(benchmark::State& state, bool tracing, bool log) {
  sql::Session s;
  (void)s.Execute("CREATE TABLE t (x INT, y INT)");
  std::string insert = "INSERT INTO t VALUES (0, 0)";
  for (int i = 1; i < 512; ++i) {
    insert +=
        ", (" + std::to_string(i) + ", " + std::to_string(i % 16) + ")";
  }
  (void)s.Execute(insert);
  if (log) (void)s.Execute("SET slow_query_ns = 0");
  obs::TraceRecorder::Global().set_enabled(tracing);
  obs::EventLog::Global().set_enabled(log);
  for (auto _ : state) {
    auto r = s.Execute("SELECT x FROM t WHERE y = 3");
    if (!r.ok()) {
      state.SkipWithError(r.status().ToString().c_str());
      break;
    }
    auto result = r.MoveValue();
    benchmark::DoNotOptimize(result);
  }
  obs::TraceRecorder::Global().set_enabled(false);
  obs::EventLog::Global().set_enabled(false);
  obs::EventLog::Global().Clear();
}

void BM_SqlStatement_Plain(benchmark::State& state) {
  RunSessionStatement(state, /*tracing=*/false, /*log=*/false);
}
void BM_SqlStatement_Tracing(benchmark::State& state) {
  RunSessionStatement(state, /*tracing=*/true, /*log=*/false);
}
void BM_SqlStatement_EventLog(benchmark::State& state) {
  RunSessionStatement(state, /*tracing=*/false, /*log=*/true);
}
void BM_SqlStatement_TracingAndEventLog(benchmark::State& state) {
  RunSessionStatement(state, /*tracing=*/true, /*log=*/true);
}

// Micro-costs of the primitives themselves, to attribute whatever the
// macro numbers show: bare counter, parented chain, histogram record,
// disabled and enabled spans, and event-log emission.
void BM_Counter_Increment(benchmark::State& state) {
  obs::Counter c;
  for (auto _ : state) {
    c.Increment();
    benchmark::DoNotOptimize(c);
  }
}
void BM_Counter_ParentChainIncrement(benchmark::State& state) {
  obs::Counter root;
  obs::Counter mid(&root);
  obs::Counter leaf(&mid);
  for (auto _ : state) {
    leaf.Increment();
    benchmark::DoNotOptimize(leaf);
  }
}
void BM_Histogram_Record(benchmark::State& state) {
  obs::Histogram h;
  int64_t v = 1;
  for (auto _ : state) {
    h.Record(v);
    v = (v * 2 + 1) & 0xfffff;
    benchmark::DoNotOptimize(h);
  }
}
void BM_ScopedSpan_Disabled(benchmark::State& state) {
  obs::TraceRecorder rec(64);  // disabled: two branches, no clock reads
  for (auto _ : state) {
    obs::ScopedSpan span("bench.noop", nullptr, &rec);
    benchmark::DoNotOptimize(span);
  }
}
void BM_ScopedSpan_Enabled(benchmark::State& state) {
  obs::TraceRecorder rec(64);
  rec.set_enabled(true);
  for (auto _ : state) {
    obs::ScopedSpan span("bench.recorded", nullptr, &rec);
    benchmark::DoNotOptimize(span);
  }
}
void BM_EventLog_EmitDisabled(benchmark::State& state) {
  obs::EventLog log(64);  // disabled: one branch, no allocation
  for (auto _ : state) {
    log.Emit(obs::LogSeverity::kInfo, "bench", "noop");
    benchmark::ClobberMemory();
  }
}
void BM_EventLog_EmitEnabled(benchmark::State& state) {
  obs::EventLog log(64);
  log.set_enabled(true);
  for (auto _ : state) {
    log.Emit(obs::LogSeverity::kInfo, "bench", "recorded",
             {{"k", "v"}, {"n", "42"}});
    benchmark::ClobberMemory();
  }
}
void BM_EventLog_EmitToSink(benchmark::State& state) {
  obs::EventLog log(64);
  log.set_enabled(true);
  std::string error;
  if (!log.OpenSink("/dev/null", &error)) {
    state.SkipWithError(error.c_str());
    return;
  }
  for (auto _ : state) {
    log.Emit(obs::LogSeverity::kInfo, "bench", "sunk",
             {{"k", "v"}, {"n", "42"}});
    benchmark::ClobberMemory();
  }
  log.CloseSink();
}

void RegisterAll() {
  for (const char* kind : {"select", "join", "difference"}) {
    const std::string k(kind);
    benchmark::RegisterBenchmark(("eval_uninstrumented/" + k).c_str(),
                                 BM_Eval_Uninstrumented, k)
        ->Arg(256)
        ->Arg(2048);
    benchmark::RegisterBenchmark(("eval_counters/" + k).c_str(),
                                 BM_Eval_Counters, k)
        ->Arg(256)
        ->Arg(2048);
    benchmark::RegisterBenchmark(("eval_counters_tracing/" + k).c_str(),
                                 BM_Eval_CountersAndTracing, k)
        ->Arg(256)
        ->Arg(2048);
  }
  benchmark::RegisterBenchmark("sql_statement_plain", BM_SqlStatement_Plain);
  benchmark::RegisterBenchmark("sql_statement_tracing",
                               BM_SqlStatement_Tracing);
  benchmark::RegisterBenchmark("sql_statement_event_log",
                               BM_SqlStatement_EventLog);
  benchmark::RegisterBenchmark("sql_statement_tracing_event_log",
                               BM_SqlStatement_TracingAndEventLog);
  benchmark::RegisterBenchmark("counter_increment", BM_Counter_Increment);
  benchmark::RegisterBenchmark("counter_parent_chain_increment",
                               BM_Counter_ParentChainIncrement);
  benchmark::RegisterBenchmark("histogram_record", BM_Histogram_Record);
  benchmark::RegisterBenchmark("scoped_span_disabled",
                               BM_ScopedSpan_Disabled);
  benchmark::RegisterBenchmark("scoped_span_enabled", BM_ScopedSpan_Enabled);
  benchmark::RegisterBenchmark("event_log_emit_disabled",
                               BM_EventLog_EmitDisabled);
  benchmark::RegisterBenchmark("event_log_emit_enabled",
                               BM_EventLog_EmitEnabled);
  benchmark::RegisterBenchmark("event_log_emit_to_sink",
                               BM_EventLog_EmitToSink);
}

}  // namespace

int main(int argc, char** argv) {
  RegisterAll();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
