// The paper's running-example database (Figure 1), shared by the
// figure/table reproduction binaries.

#ifndef EXPDB_BENCH_PAPER_DB_H_
#define EXPDB_BENCH_PAPER_DB_H_

#include <cstdio>
#include <cstdlib>
#include <string>
#include <string_view>

#include "obs/metrics.h"
#include "obs/timeseries.h"
#include "obs/trace.h"
#include "relational/database.h"

namespace expdb {

/// Builds the Figure 1 database: Pol = {<1,25>@10, <2,25>@15, <3,35>@10},
/// El = {<1,75>@5, <2,85>@3, <4,90>@2}.
inline Database MakePaperDatabase() {
  Database db;
  Relation* pol =
      db.CreateRelation("Pol", Schema({{"UID", ValueType::kInt64},
                                       {"Deg", ValueType::kInt64}}))
          .value();
  (void)pol->Insert(Tuple{1, 25}, Timestamp(10));
  (void)pol->Insert(Tuple{2, 25}, Timestamp(15));
  (void)pol->Insert(Tuple{3, 35}, Timestamp(10));
  Relation* el =
      db.CreateRelation("El", Schema({{"UID", ValueType::kInt64},
                                      {"Deg", ValueType::kInt64}}))
          .value();
  (void)el->Insert(Tuple{1, 75}, Timestamp(5));
  (void)el->Insert(Tuple{2, 85}, Timestamp(3));
  (void)el->Insert(Tuple{4, 90}, Timestamp(2));
  return db;
}

/// Verification helper: prints PASS/FAIL and aborts the reproduction
/// binary with a non-zero exit code on mismatch.
inline void Check(bool ok, const char* what) {
  std::printf("  [%s] %s\n", ok ? "OK" : "MISMATCH", what);
  if (!ok) std::exit(1);
}

/// Observability flags shared by every reproduction binary — construct
/// one at the top of main() and the flags work uniformly:
///
///   --stats          append the process-wide metrics snapshot
///                    (Prometheus text) after the repro has verified
///   --trace <file>   record spans for the whole run and export them as
///                    Chrome trace-event JSON on the way out
///   --telemetry      take one telemetry sample on the way out and dump
///                    a MONITOR STATUS-style snapshot (active metrics
///                    with counter values; docs/OBSERVABILITY.md §9)
///
/// The destructor emits everything in flag order (stats, telemetry,
/// trace), so output lands after the repro's own PASS/FAIL lines.
class ReproFlags {
 public:
  ReproFlags(int argc, char** argv) {
    for (int i = 1; i < argc; ++i) {
      const std::string_view arg(argv[i]);
      if (arg == "--stats") {
        stats_ = true;
      } else if (arg == "--telemetry") {
        telemetry_ = true;
      } else if (arg == "--trace" && i + 1 < argc) {
        trace_path_ = argv[++i];
      }
    }
    if (trace_path_.empty()) return;
    obs::TraceRecorder::Global().Clear();
    obs::TraceRecorder::Global().set_enabled(true);
  }

  ~ReproFlags() {
    if (stats_) {
      std::printf("\n=== metrics (--stats) ===\n%s",
                  obs::MetricsRegistry::Global().PrometheusText().c_str());
    }
    if (telemetry_) {
      // One sample into a fresh ring gives the per-metric derivation a
      // data point; the status text then lists every active metric.
      obs::TimeSeriesStore store;
      store.Sample(obs::MetricsRegistry::Global().Snapshot(),
                   obs::SteadyNowNs());
      std::printf(
          "\n=== telemetry (--telemetry) ===\n%zu metrics sampled\n%s",
          store.series_count(),
          obs::TelemetryStatusText(obs::MetricsRegistry::Global()).c_str());
    }
    if (trace_path_.empty()) return;
    obs::TraceRecorder& rec = obs::TraceRecorder::Global();
    rec.set_enabled(false);
    const std::string json = obs::ChromeTraceJson(rec.Snapshot());
    std::FILE* f = std::fopen(trace_path_.c_str(), "w");
    if (f == nullptr) {
      std::printf("  [WARN] --trace: cannot open %s\n", trace_path_.c_str());
      return;
    }
    std::fwrite(json.data(), 1, json.size(), f);
    std::fclose(f);
    std::printf("\n=== trace (--trace) ===\nwrote %zu spans to %s\n",
                rec.Snapshot().size(), trace_path_.c_str());
  }

  ReproFlags(const ReproFlags&) = delete;
  ReproFlags& operator=(const ReproFlags&) = delete;

 private:
  bool stats_ = false;
  bool telemetry_ = false;
  std::string trace_path_;
};

}  // namespace expdb

#endif  // EXPDB_BENCH_PAPER_DB_H_
