// The paper's running-example database (Figure 1), shared by the
// figure/table reproduction binaries.

#ifndef EXPDB_BENCH_PAPER_DB_H_
#define EXPDB_BENCH_PAPER_DB_H_

#include <cstdio>
#include <cstdlib>
#include <string>
#include <string_view>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "relational/database.h"

namespace expdb {

/// Builds the Figure 1 database: Pol = {<1,25>@10, <2,25>@15, <3,35>@10},
/// El = {<1,75>@5, <2,85>@3, <4,90>@2}.
inline Database MakePaperDatabase() {
  Database db;
  Relation* pol =
      db.CreateRelation("Pol", Schema({{"UID", ValueType::kInt64},
                                       {"Deg", ValueType::kInt64}}))
          .value();
  (void)pol->Insert(Tuple{1, 25}, Timestamp(10));
  (void)pol->Insert(Tuple{2, 25}, Timestamp(15));
  (void)pol->Insert(Tuple{3, 35}, Timestamp(10));
  Relation* el =
      db.CreateRelation("El", Schema({{"UID", ValueType::kInt64},
                                      {"Deg", ValueType::kInt64}}))
          .value();
  (void)el->Insert(Tuple{1, 75}, Timestamp(5));
  (void)el->Insert(Tuple{2, 85}, Timestamp(3));
  (void)el->Insert(Tuple{4, 90}, Timestamp(2));
  return db;
}

/// Verification helper: prints PASS/FAIL and aborts the reproduction
/// binary with a non-zero exit code on mismatch.
inline void Check(bool ok, const char* what) {
  std::printf("  [%s] %s\n", ok ? "OK" : "MISMATCH", what);
  if (!ok) std::exit(1);
}

/// `--stats` support for the reproduction binaries: when the flag is
/// present on the command line, append the process-wide metrics
/// snapshot (Prometheus text exposition, docs/OBSERVABILITY.md) after
/// the reproduction has verified — showing what the run cost in
/// operator evaluations, view recomputations, and so on.
inline void MaybeDumpStats(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::string_view(argv[i]) == "--stats") {
      std::printf("\n=== metrics (--stats) ===\n%s",
                  obs::MetricsRegistry::Global().PrometheusText().c_str());
      return;
    }
  }
}

/// `--trace <file>` support for the reproduction binaries: construct at
/// the top of main(). When the flag is present, span recording is
/// enabled for the whole run and the destructor exports the recorded
/// spans as Chrome trace-event JSON (load the file in Perfetto or
/// chrome://tracing) to the given path on the way out.
class TraceGuard {
 public:
  TraceGuard(int argc, char** argv) {
    for (int i = 1; i + 1 < argc; ++i) {
      if (std::string_view(argv[i]) == "--trace") {
        path_ = argv[i + 1];
        break;
      }
    }
    if (path_.empty()) return;
    obs::TraceRecorder::Global().Clear();
    obs::TraceRecorder::Global().set_enabled(true);
  }

  ~TraceGuard() {
    if (path_.empty()) return;
    obs::TraceRecorder& rec = obs::TraceRecorder::Global();
    rec.set_enabled(false);
    const std::string json = obs::ChromeTraceJson(rec.Snapshot());
    std::FILE* f = std::fopen(path_.c_str(), "w");
    if (f == nullptr) {
      std::printf("  [WARN] --trace: cannot open %s\n", path_.c_str());
      return;
    }
    std::fwrite(json.data(), 1, json.size(), f);
    std::fclose(f);
    std::printf("\n=== trace (--trace) ===\nwrote %zu spans to %s\n",
                rec.Snapshot().size(), path_.c_str());
  }

  TraceGuard(const TraceGuard&) = delete;
  TraceGuard& operator=(const TraceGuard&) = delete;

 private:
  std::string path_;
};

}  // namespace expdb

#endif  // EXPDB_BENCH_PAPER_DB_H_
