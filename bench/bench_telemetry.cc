// Claim C15 — live telemetry is cheap enough to leave on.
//
// Scenarios (EXPERIMENTS.md C15, docs/OBSERVABILITY.md §9):
//   * RegistrySampleIntoRings — the pure obs-layer cost of one sampling
//     tick (registry snapshot + ring append) as the ring capacity grows;
//     ring size must not change the per-tick cost materially.
//   * TelemetryTick — one full TelemetryService::SampleOnce against a
//     populated engine: pressure gauges (segment occupancy walk),
//     registry sample, health evaluation.
//   * TelemetryTickManyRelations — the same tick with the relation count
//     as the axis; the occupancy walk is the only per-relation term.
//   * QueryNoTelemetry vs QueryWithTelemetry — steady-state SELECT
//     throughput with the sampler off vs sampling at a 1s cadence on a
//     background thread; the <2% overhead claim. The baseline parks a
//     dormant thread so both sides run under glibc malloc's
//     multi-threaded mode (see ParkedThread below);
//     QuerySingleThreadedProcess records the never-threaded fast path
//     for attribution, and QueryWithFastTelemetry bounds an aggressive
//     10ms cadence.

#include <condition_variable>
#include <mutex>
#include <string>
#include <thread>

#include <benchmark/benchmark.h>

#include "engine/engine.h"
#include "engine/telemetry.h"
#include "obs/metrics.h"
#include "obs/timeseries.h"
#include "sql/session.h"

namespace {

using namespace expdb;  // NOLINT

void Must(const Result<sql::ExecResult>& r, benchmark::State& state) {
  if (!r.ok()) state.SkipWithError(r.status().ToString().c_str());
}

/// t(k INT, v INT): n rows with staggered far-future expirations, plus
/// some registry traffic so the sampled snapshot is representative.
void FillTable(sql::Session& s, int64_t n, benchmark::State& state) {
  Must(s.Execute("CREATE TABLE t (k INT, v INT)"), state);
  Relation* r = s.db().GetRelation("t").value();
  for (int64_t i = 0; i < n; ++i) {
    if (!r->Insert(Tuple{i, i % 97}, Timestamp(1000000 + i)).ok()) {
      state.SkipWithError("fill failed");
      return;
    }
  }
}

/// One tick of the obs layer alone: snapshot the process-global registry
/// (dozens of counters/gauges/histograms by this point in the process)
/// and fold it into rings of the given capacity.
void BM_RegistrySampleIntoRings(benchmark::State& state) {
  obs::TimeSeriesStore store(static_cast<size_t>(state.range(0)));
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
  int64_t t_ns = 0;
  for (auto _ : state) {
    t_ns += 1'000'000'000;
    store.Sample(registry.Snapshot(), t_ns);
  }
  state.SetLabel(std::to_string(store.series_count()) + " series");
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RegistrySampleIntoRings)->Arg(64)->Arg(256)->Arg(1024)->Arg(4096);

void BM_TelemetryTick(benchmark::State& state) {
  sql::Session s;
  FillTable(s, state.range(0), state);
  engine::TelemetryService& telemetry = s.engine().telemetry();
  for (auto _ : state) {
    telemetry.SampleOnce();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TelemetryTick)->Arg(1024)->Arg(65536);

void BM_TelemetryTickManyRelations(benchmark::State& state) {
  sql::Session s;
  for (int64_t i = 0; i < state.range(0); ++i) {
    Must(s.Execute("CREATE TABLE t" + std::to_string(i) + " (x INT)"), state);
    Must(s.Execute("INSERT INTO t" + std::to_string(i) +
                   " VALUES (1) TTL 1000000"),
         state);
  }
  engine::TelemetryService& telemetry = s.engine().telemetry();
  for (auto _ : state) {
    telemetry.SampleOnce();
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
  state.SetLabel("relations scanned per tick");
}
BENCHMARK(BM_TelemetryTickManyRelations)->Arg(4)->Arg(32)->Arg(128);

constexpr const char* kPointQuery = "SELECT * FROM t WHERE v = 3";

/// A dormant thread parked on a condition variable for the benchmark's
/// lifetime. The no-telemetry baseline holds one because glibc malloc
/// permanently leaves its single-threaded fast path the moment a process
/// ever spawns a thread (~30% on this allocation-heavy query path,
/// measured — and it persists after the thread joins). Any real engine
/// deployment is already multi-threaded (maintenance, sessions), so C15
/// compares telemetry against that regime, not against a fast path no
/// server ever runs in. BM_QuerySingleThreadedProcess documents the
/// malloc effect itself; keep it FIRST so the process is still
/// thread-free when it runs.
class ParkedThread {
 public:
  ParkedThread()
      : thread_([this] {
          std::unique_lock<std::mutex> lock(mu_);
          cv_.wait(lock, [this] { return stop_; });
        }) {}
  ~ParkedThread() {
    {
      std::lock_guard<std::mutex> guard(mu_);
      stop_ = true;
    }
    cv_.notify_all();
    thread_.join();
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
  std::thread thread_;
};

/// The query path while the process has never spawned a thread: glibc
/// malloc's single-threaded fast path. Not the C15 baseline — no engine
/// deployment is single-threaded — but recorded so the gap to
/// BM_QueryNoTelemetry is attributed to malloc, not to telemetry.
void BM_QuerySingleThreadedProcess(benchmark::State& state) {
  sql::Session s;
  FillTable(s, state.range(0), state);
  Must(s.Execute("SET result_cache_bytes = 0"), state);
  for (auto _ : state) {
    auto r = s.Execute(kPointQuery);
    Must(r, state);
    benchmark::DoNotOptimize(r);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_QuerySingleThreadedProcess)->Arg(8192);

/// Steady-state SELECT throughput, sampler off — the C15 baseline. The
/// result cache is disabled so every iteration exercises the full
/// plan/execute path the overhead claim is about.
void BM_QueryNoTelemetry(benchmark::State& state) {
  ParkedThread parked;
  sql::Session s;
  FillTable(s, state.range(0), state);
  Must(s.Execute("SET result_cache_bytes = 0"), state);
  for (auto _ : state) {
    auto r = s.Execute(kPointQuery);
    Must(r, state);
    benchmark::DoNotOptimize(r);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_QueryNoTelemetry)->Arg(8192)->Arg(65536);

/// The same workload with the background sampler live at the default 1s
/// production cadence. C15: throughput within 2% of the baseline.
void BM_QueryWithTelemetry(benchmark::State& state) {
  sql::Session s;
  FillTable(s, state.range(0), state);
  Must(s.Execute("SET result_cache_bytes = 0"), state);
  Must(s.Execute("SET telemetry_interval_ms = 1000"), state);
  for (auto _ : state) {
    auto r = s.Execute(kPointQuery);
    Must(r, state);
    benchmark::DoNotOptimize(r);
  }
  state.counters["ticks"] =
      static_cast<double>(s.engine().telemetry().ticks());
  s.engine().telemetry().Stop();
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_QueryWithTelemetry)->Arg(8192)->Arg(65536);

/// An aggressive 10ms cadence — 100 ticks/s against the same workload,
/// so the per-tick cost is visible in the per-query time rather than
/// amortized into nothing. Bounds the worst sane configuration.
void BM_QueryWithFastTelemetry(benchmark::State& state) {
  sql::Session s;
  FillTable(s, state.range(0), state);
  Must(s.Execute("SET result_cache_bytes = 0"), state);
  Must(s.Execute("SET telemetry_interval_ms = 10"), state);
  for (auto _ : state) {
    auto r = s.Execute(kPointQuery);
    Must(r, state);
    benchmark::DoNotOptimize(r);
  }
  state.counters["ticks"] =
      static_cast<double>(s.engine().telemetry().ticks());
  s.engine().telemetry().Stop();
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_QueryWithFastTelemetry)->Arg(8192);

}  // namespace

BENCHMARK_MAIN();
