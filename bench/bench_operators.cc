// Operator microbenchmarks: throughput of every algebra operator, with
// finite expiration times ("expiring") versus the all-∞ degenerate case
// ("textbook"). The gap between the two is the cost of expiration
// awareness — per the paper's design it should be a small constant factor
// (an extra min/max per emitted tuple plus the expτ filter).

#include <benchmark/benchmark.h>

#include "core/eval.h"
#include "testing/workload.h"

namespace {

using namespace expdb;

/// Builds a two-relation database; `expiring` controls finite TTLs.
Database MakeDb(int64_t n, bool expiring, uint64_t seed) {
  Rng rng(seed);
  Database db;
  testing::RelationSpec spec;
  spec.num_tuples = static_cast<size_t>(n);
  spec.arity = 2;
  spec.value_domain = std::max<int64_t>(4, n / 8);
  spec.ttl_min = 1;
  spec.ttl_max = 100;
  spec.infinite_fraction = expiring ? 0.0 : 1.0;
  (void)testing::FillDatabase(&db, rng, spec, 2);
  return db;
}

void RunExpr(benchmark::State& state, const ExpressionPtr& expr) {
  const int64_t n = state.range(0);
  const bool expiring = state.range(1) != 0;
  Database db = MakeDb(n, expiring, 42);
  size_t out_tuples = 0;
  // Evaluate at time 0: every tuple is live in both variants, so the
  // measured delta is purely the expiration bookkeeping (texp min/max
  // propagation), not a smaller input.
  for (auto _ : state) {
    auto result = Evaluate(expr, db, Timestamp(0));
    if (!result.ok()) state.SkipWithError(result.status().ToString().c_str());
    out_tuples = result->relation.size();
    benchmark::DoNotOptimize(result);
  }
  state.counters["out_tuples"] =
      benchmark::Counter(static_cast<double>(out_tuples));
  state.counters["tuples_per_s"] = benchmark::Counter(
      static_cast<double>(n) * static_cast<double>(state.iterations()),
      benchmark::Counter::kIsRate);
  state.SetLabel(expiring ? "expiring" : "textbook");
}

void BM_Select(benchmark::State& state) {
  RunExpr(state,
          algebra::Select(algebra::Base("R0"),
                          Predicate::Compare(Operand::Column(1),
                                             ComparisonOp::kGe,
                                             Operand::Constant(Value(2)))));
}

void BM_Project(benchmark::State& state) {
  RunExpr(state, algebra::Project(algebra::Base("R0"), {1}));
}

void BM_HashJoin(benchmark::State& state) {
  RunExpr(state, algebra::Join(algebra::Base("R0"), algebra::Base("R1"),
                               Predicate::ColumnsEqual(0, 2)));
}

void BM_Union(benchmark::State& state) {
  RunExpr(state, algebra::Union(algebra::Base("R0"), algebra::Base("R1")));
}

void BM_Intersect(benchmark::State& state) {
  RunExpr(state,
          algebra::Intersect(algebra::Base("R0"), algebra::Base("R1")));
}

void BM_Difference(benchmark::State& state) {
  RunExpr(state,
          algebra::Difference(algebra::Base("R0"), algebra::Base("R1")));
}

void BM_AggregateCount(benchmark::State& state) {
  RunExpr(state, algebra::Aggregate(algebra::Base("R0"), {0},
                                    AggregateFunction::Count()));
}

void BM_AggregateSum(benchmark::State& state) {
  RunExpr(state, algebra::Aggregate(algebra::Base("R0"), {0},
                                    AggregateFunction::Sum(1)));
}

void BM_SemiJoin(benchmark::State& state) {
  RunExpr(state, algebra::SemiJoin(algebra::Base("R0"), algebra::Base("R1"),
                                   Predicate::ColumnsEqual(0, 2)));
}

void BM_AntiJoin(benchmark::State& state) {
  RunExpr(state, algebra::AntiJoin(algebra::Base("R0"), algebra::Base("R1"),
                                   Predicate::ColumnsEqual(0, 2)));
}

void Args(benchmark::internal::Benchmark* b) {
  for (int64_t n : {1 << 10, 1 << 13, 1 << 16}) {
    b->Args({n, 0});
    b->Args({n, 1});
  }
  b->Unit(benchmark::kMicrosecond);
}

BENCHMARK(BM_Select)->Apply(Args);
BENCHMARK(BM_Project)->Apply(Args);
BENCHMARK(BM_HashJoin)->Apply(Args);
BENCHMARK(BM_Union)->Apply(Args);
BENCHMARK(BM_Intersect)->Apply(Args);
BENCHMARK(BM_Difference)->Apply(Args);
BENCHMARK(BM_AggregateCount)->Apply(Args);
BENCHMARK(BM_AggregateSum)->Apply(Args);
BENCHMARK(BM_SemiJoin)->Apply(Args);
BENCHMARK(BM_AntiJoin)->Apply(Args);

}  // namespace

BENCHMARK_MAIN();
