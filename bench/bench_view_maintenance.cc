// Experiment C1 (Theorems 1-2 operationalized): maintaining materialized
// views by in-place expiration versus recomputing them.
//
// Strategies compared over a time horizon with a read every tick:
//  * recompute-every-tick  — the no-expiration-times baseline;
//  * expiration-aware view — materialize once, expire in place, recompute
//    only when texp(e) passes (never, for monotonic expressions).
//
// Expected shape: for monotonic views the expiration-aware strategy does
// ZERO recomputations regardless of horizon, so its advantage grows
// linearly with the horizon; for non-monotonic views recomputations drop
// from one-per-tick to one-per-invalidation.

#include <benchmark/benchmark.h>

#include "testing/workload.h"
#include "view/materialized_view.h"

namespace {

using namespace expdb;

constexpr int64_t kHorizon = 64;

Database MakeDb(int64_t n, uint64_t seed) {
  Rng rng(seed);
  Database db;
  testing::RelationSpec spec;
  spec.num_tuples = static_cast<size_t>(n);
  spec.arity = 2;
  spec.value_domain = std::max<int64_t>(4, n / 16);
  spec.ttl_min = 1;
  spec.ttl_max = kHorizon;
  (void)testing::FillDatabase(&db, rng, spec, 2);
  return db;
}

ExpressionPtr MakeExpr(const std::string& kind) {
  using namespace algebra;
  if (kind == "join") {
    return Project(Join(Base("R0"), Base("R1"),
                        Predicate::ColumnsEqual(0, 2)),
                   {0, 1, 3});
  }
  if (kind == "agg") {
    return Aggregate(Base("R0"), {0}, AggregateFunction::Sum(1));
  }
  return Difference(Project(Base("R0"), {0, 1}),
                    Project(Base("R1"), {0, 1}));
}

void RunBaseline(benchmark::State& state, const std::string& kind) {
  const int64_t n = state.range(0);
  Database db = MakeDb(n, 99);
  ExpressionPtr expr = MakeExpr(kind);
  uint64_t recomputes = 0;
  for (auto _ : state) {
    for (int64_t t = 0; t <= kHorizon; ++t) {
      auto result = Evaluate(expr, db, Timestamp(t));
      if (!result.ok()) {
        state.SkipWithError(result.status().ToString().c_str());
      }
      benchmark::DoNotOptimize(result->relation.size());
      ++recomputes;
    }
  }
  state.counters["recomputes_per_run"] = benchmark::Counter(
      static_cast<double>(recomputes) /
      static_cast<double>(state.iterations()));
  state.SetLabel("baseline:recompute-every-tick");
}

void RunView(benchmark::State& state, const std::string& kind) {
  const int64_t n = state.range(0);
  Database db = MakeDb(n, 99);
  ExpressionPtr expr = MakeExpr(kind);
  uint64_t recomputes = 0;
  for (auto _ : state) {
    MaterializedView view(expr, {});
    Status st = view.Initialize(db, Timestamp::Zero());
    if (!st.ok()) state.SkipWithError(st.ToString().c_str());
    for (int64_t t = 0; t <= kHorizon; ++t) {
      auto result = view.Read(db, Timestamp(t));
      if (!result.ok()) state.SkipWithError(result.status().ToString().c_str());
      benchmark::DoNotOptimize(result->size());
    }
    recomputes += view.stats().recomputations;
  }
  state.counters["recomputes_per_run"] = benchmark::Counter(
      static_cast<double>(recomputes) /
      static_cast<double>(state.iterations()));
  state.SetLabel("expiration-aware view");
}

void BM_JoinBaseline(benchmark::State& state) { RunBaseline(state, "join"); }
void BM_JoinView(benchmark::State& state) { RunView(state, "join"); }
void BM_AggBaseline(benchmark::State& state) { RunBaseline(state, "agg"); }
void BM_AggView(benchmark::State& state) { RunView(state, "agg"); }
void BM_DiffBaseline(benchmark::State& state) { RunBaseline(state, "diff"); }
void BM_DiffView(benchmark::State& state) { RunView(state, "diff"); }

#define VIEW_ARGS Range(1 << 10, 1 << 14)->Unit(benchmark::kMillisecond)
BENCHMARK(BM_JoinBaseline)->VIEW_ARGS;
BENCHMARK(BM_JoinView)->VIEW_ARGS;
BENCHMARK(BM_AggBaseline)->VIEW_ARGS;
BENCHMARK(BM_AggView)->VIEW_ARGS;
BENCHMARK(BM_DiffBaseline)->VIEW_ARGS;
BENCHMARK(BM_DiffView)->VIEW_ARGS;

}  // namespace

BENCHMARK_MAIN();
