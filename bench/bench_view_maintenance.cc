// Experiment C1 (Theorems 1-2 operationalized): maintaining materialized
// views by in-place expiration versus recomputing them.
//
// Strategies compared over a time horizon with a read every tick:
//  * recompute-every-tick  — the no-expiration-times baseline;
//  * expiration-aware view — materialize once, expire in place, recompute
//    only when texp(e) passes (never, for monotonic expressions).
//
// Expected shape: for monotonic views the expiration-aware strategy does
// ZERO recomputations regardless of horizon, so its advantage grows
// linearly with the horizon; for non-monotonic views recomputations drop
// from one-per-tick to one-per-invalidation.
//
// Experiment C10 (update-rate axis): when base relations receive explicit
// updates, a stale view is maintained either by full recomputation or by
// pushing the recorded base deltas through its cached physical plan
// (Options::incremental). BM_UpdateRound{Delta,Recompute} sweep the
// updates-per-round fraction (‰ of the base) at fixed base sizes: the
// delta path is O(|delta|) and wins at small fractions, recomputation is
// O(|base|) and catches up as the fraction grows — the crossover is
// recorded in EXPERIMENTS.md C10.

#include <benchmark/benchmark.h>

#include "testing/workload.h"
#include "view/materialized_view.h"

namespace {

using namespace expdb;

constexpr int64_t kHorizon = 64;

Database MakeDb(int64_t n, uint64_t seed) {
  Rng rng(seed);
  Database db;
  testing::RelationSpec spec;
  spec.num_tuples = static_cast<size_t>(n);
  spec.arity = 2;
  spec.value_domain = std::max<int64_t>(4, n / 16);
  spec.ttl_min = 1;
  spec.ttl_max = kHorizon;
  (void)testing::FillDatabase(&db, rng, spec, 2);
  return db;
}

ExpressionPtr MakeExpr(const std::string& kind) {
  using namespace algebra;
  if (kind == "join") {
    return Project(Join(Base("R0"), Base("R1"),
                        Predicate::ColumnsEqual(0, 2)),
                   {0, 1, 3});
  }
  if (kind == "agg") {
    return Aggregate(Base("R0"), {0}, AggregateFunction::Sum(1));
  }
  return Difference(Project(Base("R0"), {0, 1}),
                    Project(Base("R1"), {0, 1}));
}

void RunBaseline(benchmark::State& state, const std::string& kind) {
  const int64_t n = state.range(0);
  Database db = MakeDb(n, 99);
  ExpressionPtr expr = MakeExpr(kind);
  uint64_t recomputes = 0;
  for (auto _ : state) {
    for (int64_t t = 0; t <= kHorizon; ++t) {
      auto result = Evaluate(expr, db, Timestamp(t));
      if (!result.ok()) {
        state.SkipWithError(result.status().ToString().c_str());
      }
      benchmark::DoNotOptimize(result->relation.size());
      ++recomputes;
    }
  }
  state.counters["recomputes_per_run"] = benchmark::Counter(
      static_cast<double>(recomputes) /
      static_cast<double>(state.iterations()));
  state.SetLabel("baseline:recompute-every-tick");
}

void RunView(benchmark::State& state, const std::string& kind) {
  const int64_t n = state.range(0);
  Database db = MakeDb(n, 99);
  ExpressionPtr expr = MakeExpr(kind);
  uint64_t recomputes = 0;
  for (auto _ : state) {
    MaterializedView view(expr, {});
    Status st = view.Initialize(db, Timestamp::Zero());
    if (!st.ok()) state.SkipWithError(st.ToString().c_str());
    for (int64_t t = 0; t <= kHorizon; ++t) {
      auto result = view.Read(db, Timestamp(t));
      if (!result.ok()) state.SkipWithError(result.status().ToString().c_str());
      benchmark::DoNotOptimize(result->size());
    }
    recomputes += view.stats().recomputations;
  }
  state.counters["recomputes_per_run"] = benchmark::Counter(
      static_cast<double>(recomputes) /
      static_cast<double>(state.iterations()));
  state.SetLabel("expiration-aware view");
}

/// One maintenance round under explicit updates: mutate `per_mille`‰ of
/// the (never-expiring) base, mark the view stale, and bring it current.
/// `incremental` selects delta propagation vs full recomputation; the
/// expressions and update streams are identical, so real_time compares
/// the two maintenance strategies head to head.
void RunUpdateRound(benchmark::State& state, bool incremental) {
  const int64_t n = state.range(0);
  const int64_t per_mille = state.range(1);
  Rng rng(4242);
  Database db;
  testing::RelationSpec spec;
  spec.num_tuples = static_cast<size_t>(n);
  spec.arity = 2;
  spec.value_domain = std::max<int64_t>(4, n / 16);
  // All-infinite lifetimes isolate the update axis: nothing expires, so
  // every maintenance round is driven purely by the explicit mutations.
  spec.infinite_fraction = 1.0;
  if (!testing::FillDatabase(&db, rng, spec, 2).ok()) {
    state.SkipWithError("FillDatabase failed");
    return;
  }
  using namespace algebra;
  ExpressionPtr expr = Project(
      Join(Base("R0"), Base("R1"), Predicate::ColumnsEqual(0, 2)),
      {0, 1, 3});

  MaterializedView::Options opts;
  opts.incremental = incremental;
  MaterializedView view(expr, opts);
  Status st = view.Initialize(db, Timestamp::Zero());
  if (!st.ok()) {
    state.SkipWithError(st.ToString().c_str());
    return;
  }

  // A live-tuple pool makes erase victims O(1) to pick; each update is an
  // erase of one existing tuple plus an insert of a fresh one, keeping
  // the base cardinality stable (and the ≥2× replan heuristic quiet).
  std::vector<Tuple> live;
  for (const Relation::Entry& e : db.GetRelation("R0").value()->entries()) {
    live.push_back(e.tuple);
  }
  const int64_t updates =
      std::max<int64_t>(1, n * per_mille / 1000);

  auto round = [&]() {
    for (int64_t i = 0; i < updates; ++i) {
      const size_t victim = static_cast<size_t>(
          rng.UniformInt(0, static_cast<int64_t>(live.size()) - 1));
      (void)db.Erase("R0", live[victim]);
      Tuple fresh{rng.UniformInt(0, spec.value_domain - 1),
                  rng.UniformInt(0, 1'000'000'000)};
      live[victim] = fresh;
      (void)db.Insert("R0", std::move(fresh), Timestamp::Infinity());
    }
    view.MarkStale();
    Status rst = view.AdvanceTo(db, Timestamp(1));
    if (!rst.ok()) state.SkipWithError(rst.ToString().c_str());
    benchmark::DoNotOptimize(view.result().relation.size());
  };

  // Two untimed warmup rounds: incremental seeding is demand-driven, so
  // the first stale round recomputes and seeds; the timed loop below
  // then measures steady-state maintenance rounds for both strategies.
  round();
  round();

  for (auto _ : state) round();
  state.counters["updates_per_round"] =
      benchmark::Counter(static_cast<double>(updates));
  state.counters["delta_applies"] = benchmark::Counter(
      static_cast<double>(view.stats().delta_applies));
  state.counters["delta_fallbacks"] = benchmark::Counter(
      static_cast<double>(view.stats().delta_fallbacks));
  state.SetLabel(incremental ? "delta-propagation" : "full-recompute");
}

void BM_JoinBaseline(benchmark::State& state) { RunBaseline(state, "join"); }
void BM_JoinView(benchmark::State& state) { RunView(state, "join"); }
void BM_AggBaseline(benchmark::State& state) { RunBaseline(state, "agg"); }
void BM_AggView(benchmark::State& state) { RunView(state, "agg"); }
void BM_DiffBaseline(benchmark::State& state) { RunBaseline(state, "diff"); }
void BM_DiffView(benchmark::State& state) { RunView(state, "diff"); }

void BM_UpdateRoundDelta(benchmark::State& state) {
  RunUpdateRound(state, /*incremental=*/true);
}
void BM_UpdateRoundRecompute(benchmark::State& state) {
  RunUpdateRound(state, /*incremental=*/false);
}

#define VIEW_ARGS Range(1 << 10, 1 << 14)->Unit(benchmark::kMillisecond)
BENCHMARK(BM_JoinBaseline)->VIEW_ARGS;
BENCHMARK(BM_JoinView)->VIEW_ARGS;
BENCHMARK(BM_AggBaseline)->VIEW_ARGS;
BENCHMARK(BM_AggView)->VIEW_ARGS;
BENCHMARK(BM_DiffBaseline)->VIEW_ARGS;
BENCHMARK(BM_DiffView)->VIEW_ARGS;

// The C10 update-rate axis: {base size} × {updates per round, ‰}. The 1‰
// and 10‰ (0.1% / 1%) points are where the delta path should dominate;
// 100‰–300‰ bracket the crossover back to full recomputation.
#define UPDATE_ARGS                                              \
  ArgsProduct({{1 << 14, 100000}, {1, 10, 100, 300}})            \
      ->Unit(benchmark::kMillisecond)
BENCHMARK(BM_UpdateRoundDelta)->UPDATE_ARGS;
BENCHMARK(BM_UpdateRoundRecompute)->UPDATE_ARGS;

}  // namespace

BENCHMARK_MAIN();
