// Experiment C5 (Sec. 1, motivating claim): in a loosely-coupled setting,
// expiration-aware synchronization lowers transaction volume and network
// traffic while improving consistency of replicated query results.
//
// The simulated client reads subscribed query results every tick for the
// horizon; protocols compared:
//  * naive-periodic(k)        — re-pull every k ticks; stale in between;
//  * expiration-aware         — pull once + local expiry; re-pull only at
//                               texp(e);
//  * expiration-aware-patch   — additionally ship the Theorem 3 helper.
//
// Expected shape: naive trades staleness against traffic along k and
// never reaches zero staleness; the expiration-aware protocols are
// always exact with a small constant number of messages.

#include <benchmark/benchmark.h>

#include "replica/protocol.h"
#include "testing/workload.h"

namespace {

using namespace expdb;

constexpr int64_t kHorizon = 128;

Database MakeDb(int64_t n, uint64_t seed) {
  Rng rng(seed);
  Database db;
  testing::RelationSpec spec;
  spec.num_tuples = static_cast<size_t>(n);
  spec.arity = 2;
  spec.value_domain = std::max<int64_t>(8, n / 8);
  spec.ttl_min = 1;
  spec.ttl_max = kHorizon;
  (void)testing::FillDatabase(&db, rng, spec, 2);
  return db;
}

std::vector<std::pair<std::string, ExpressionPtr>> MakeQueries() {
  using namespace algebra;
  return {
      {"profile", Project(Base("R0"), {0, 1})},
      {"matches", Join(Base("R0"), Base("R1"),
                       Predicate::ColumnsEqual(0, 2))},
      {"only_in_r0", Difference(Project(Base("R0"), {0, 1}),
                                Project(Base("R1"), {0, 1}))},
  };
}

void Run(benchmark::State& state, SyncProtocol protocol) {
  const int64_t n = state.range(0);
  // poll_interval is only meaningful for the naive protocol; clamp the
  // placeholder 0 the other protocols pass.
  const int64_t poll = std::max<int64_t>(1, state.range(1));
  Database db = MakeDb(n, 2026);
  auto queries = MakeQueries();

  SimulationReport report;
  for (auto _ : state) {
    SimulationConfig cfg;
    cfg.protocol = protocol;
    cfg.horizon = kHorizon;
    cfg.read_interval = 1;
    cfg.poll_interval = poll;
    auto r = RunSyncSimulation(db, queries, cfg);
    if (!r.ok()) state.SkipWithError(r.status().ToString().c_str());
    report = r.MoveValue();
    benchmark::DoNotOptimize(report);
  }
  state.counters["messages"] =
      benchmark::Counter(static_cast<double>(report.network.messages));
  state.counters["tuples_transferred"] = benchmark::Counter(
      static_cast<double>(report.network.tuples_transferred));
  state.counters["latency_units"] =
      benchmark::Counter(report.network.latency_units);
  state.counters["stale_reads"] =
      benchmark::Counter(static_cast<double>(report.stale_reads));
  state.counters["exact_reads"] =
      benchmark::Counter(static_cast<double>(report.exact_reads));
  std::string label(SyncProtocolToString(protocol));
  if (protocol == SyncProtocol::kNaivePeriodic) {
    label += "/poll=" + std::to_string(poll);
  }
  state.SetLabel(label);
}

void BM_NaivePeriodic(benchmark::State& state) {
  Run(state, SyncProtocol::kNaivePeriodic);
}
void BM_ExpirationAware(benchmark::State& state) {
  Run(state, SyncProtocol::kExpirationAware);
}
void BM_ExpirationAwarePatch(benchmark::State& state) {
  Run(state, SyncProtocol::kExpirationAwarePatch);
}

void NaiveArgs(benchmark::internal::Benchmark* b) {
  for (int64_t n : {1 << 10, 1 << 13}) {
    for (int64_t poll : {1, 8, 32}) b->Args({n, poll});
  }
  b->Unit(benchmark::kMillisecond);
}
void AwareArgs(benchmark::internal::Benchmark* b) {
  for (int64_t n : {1 << 10, 1 << 13}) b->Args({n, 0});
  b->Unit(benchmark::kMillisecond);
}

BENCHMARK(BM_NaivePeriodic)->Apply(NaiveArgs);
BENCHMARK(BM_ExpirationAware)->Apply(AwareArgs);
BENCHMARK(BM_ExpirationAwarePatch)->Apply(AwareArgs);

}  // namespace

BENCHMARK_MAIN();
