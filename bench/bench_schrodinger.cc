// Experiment C6 (Sec. 3.3-3.4): Schrödinger's cat semantics. Validity
// intervals let a materialized non-monotonic view answer queries without
// recomputation whenever the query time falls inside a valid interval —
// including the intervals *after* invalid windows close, which a single
// expiration time cannot express.
//
// Compared on identical read schedules:
//  * lazy single-texp view — recomputes at the first read past texp(e);
//  * Schrödinger + recompute — recomputes only for reads inside gaps;
//  * Schrödinger + move-backward / move-forward — never recomputes,
//    serving nearby valid times instead.

#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "view/materialized_view.h"

namespace {

using namespace expdb;

constexpr int64_t kHorizon = 96;

Schema TwoInt() {
  return Schema({{"k", ValueType::kInt64}, {"v", ValueType::kInt64}});
}

Database MakeDb(int64_t n, uint64_t seed, int64_t overlap_one_in,
                bool narrow_windows) {
  Rng rng(seed);
  Database db;
  Relation r(TwoInt()), s(TwoInt());
  for (int64_t i = 0; i < n; ++i) {
    const Timestamp texp_r(1 + rng.UniformInt(0, kHorizon - 2));
    (void)r.Insert(Tuple{i, i % 5}, texp_r);
    if (i % overlap_one_in == 0) {  // controls critical density
      // Narrow windows: the S copy expires 2 ticks before the R copy,
      // so the invalid window [texp_S, texp_R) is only 2 ticks wide —
      // easy to slip between occasional reads.
      Timestamp texp_s =
          narrow_windows
              ? Timestamp(std::max<int64_t>(1, texp_r.ticks() - 2))
              : Timestamp(1 + rng.UniformInt(0, kHorizon - 2));
      (void)s.Insert(Tuple{i, i % 5}, texp_s);
    }
  }
  (void)db.PutRelation("R", std::move(r));
  (void)db.PutRelation("S", std::move(s));
  return db;
}

void Run(benchmark::State& state, RefreshMode mode, MovePolicy policy) {
  const int64_t n = state.range(0);
  // range(1): 1 = dense criticals (25% overlap, wide overlapping invalid
  // windows) — single texp and intervals largely coincide; 2 = sparse,
  // 2-tick-wide windows with long valid stretches between them, where a
  // single texp forces recomputation at the first read past it but the
  // interval set knows the window has already closed. Reads arrive every
  // 5 ticks.
  const bool sparse = state.range(1) == 2;
  Database db = MakeDb(n, 31337, sparse ? 64 : 4, sparse);
  auto expr = algebra::Difference(algebra::Base("R"), algebra::Base("S"));

  uint64_t recomputes = 0, from_mat = 0, moved = 0, reads = 0;
  for (auto _ : state) {
    MaterializedView::Options opts;
    opts.mode = mode;
    opts.move_policy = policy;
    MaterializedView view(expr, opts);
    Status st = view.Initialize(db, Timestamp::Zero());
    if (!st.ok()) state.SkipWithError(st.ToString().c_str());
    for (int64_t i = 0; i <= kHorizon; i += 5) {
      Timestamp t(i);
      auto result = view.Read(db, t);
      if (!result.ok()) state.SkipWithError(result.status().ToString().c_str());
      benchmark::DoNotOptimize(result->size());
    }
    recomputes += view.stats().recomputations;
    from_mat += view.stats().reads_from_materialization;
    moved += view.stats().reads_moved_backward +
             view.stats().reads_moved_forward;
    reads += view.stats().reads;
  }
  const double iters = static_cast<double>(state.iterations());
  state.counters["recomputes_per_run"] =
      benchmark::Counter(static_cast<double>(recomputes) / iters);
  state.counters["reads_from_materialization_pct"] = benchmark::Counter(
      reads == 0 ? 0.0
                 : 100.0 * static_cast<double>(from_mat) /
                       static_cast<double>(reads));
  state.counters["reads_moved_per_run"] =
      benchmark::Counter(static_cast<double>(moved) / iters);
  std::string label(RefreshModeToString(mode));
  if (mode == RefreshMode::kSchrodinger) {
    label += "/" + std::string(MovePolicyToString(policy));
  }
  label += sparse ? " sparse-criticals" : " dense-criticals";
  state.SetLabel(label);
}

void BM_LazySingleTexp(benchmark::State& state) {
  Run(state, RefreshMode::kLazyRecompute, MovePolicy::kRecompute);
}
void BM_SchrodingerRecompute(benchmark::State& state) {
  Run(state, RefreshMode::kSchrodinger, MovePolicy::kRecompute);
}
void BM_SchrodingerMoveBackward(benchmark::State& state) {
  Run(state, RefreshMode::kSchrodinger, MovePolicy::kMoveBackward);
}
void BM_SchrodingerMoveForward(benchmark::State& state) {
  Run(state, RefreshMode::kSchrodinger, MovePolicy::kMoveForward);
}

void SchArgs(benchmark::internal::Benchmark* b) {
  for (int64_t n : {1 << 10, 1 << 13}) {
    b->Args({n, 1});  // dense criticals
    b->Args({n, 2});  // sparse criticals
  }
  b->Unit(benchmark::kMillisecond);
}
BENCHMARK(BM_LazySingleTexp)->Apply(SchArgs);
BENCHMARK(BM_SchrodingerRecompute)->Apply(SchArgs);
BENCHMARK(BM_SchrodingerMoveBackward)->Apply(SchArgs);
BENCHMARK(BM_SchrodingerMoveForward)->Apply(SchArgs);

}  // namespace

BENCHMARK_MAIN();
