// Experiment C2 (Sec. 2.6.1, Table 1): how far the contributing-set and
// exact (ν) expiration modes extend aggregate-view lifetimes over the
// conservative Eq. (8) bound.
//
// Metrics per mode, over a group-by workload with a maintenance loop:
//  * recomputes_per_run — times the materialized aggregate view had to be
//    recomputed across the horizon (lower is better);
//  * mean_tuple_lifetime — average lifetime assigned to result tuples.
//
// Expected shape: conservative recomputes most; contributing-set == exact
// for the standard aggregates (they are the same bound, computed two
// ways); min/max/sum/avg benefit, count cannot (the paper: count strictly
// follows Eq. 8). Skewed TTLs and more duplicates widen the gap.

#include <benchmark/benchmark.h>

#include "testing/workload.h"
#include "view/materialized_view.h"

namespace {

using namespace expdb;

constexpr int64_t kHorizon = 96;

Database MakeDb(int64_t n, int64_t groups, double zipf_skew,
                uint64_t seed) {
  Rng rng(seed);
  Database db;
  testing::RelationSpec spec;
  spec.num_tuples = static_cast<size_t>(n);
  spec.arity = 2;
  spec.value_domain = groups;
  spec.ttl_min = 1;
  spec.ttl_max = kHorizon;
  spec.ttl_zipf_skew = zipf_skew;
  (void)testing::FillDatabase(&db, rng, spec, 1);
  return db;
}

AggregateFunction FunctionByIndex(int64_t i) {
  switch (i) {
    case 0:
      return AggregateFunction::Min(1);
    case 1:
      return AggregateFunction::Max(1);
    case 2:
      return AggregateFunction::Sum(1);
    case 3:
      return AggregateFunction::Avg(1);
    default:
      return AggregateFunction::Count();
  }
}

void RunMode(benchmark::State& state, AggregateExpirationMode mode) {
  const int64_t n = 1 << 12;
  const int64_t groups = state.range(0);
  const AggregateFunction f = FunctionByIndex(state.range(1));
  Database db = MakeDb(n, groups, 0.0, 1234);
  auto expr = algebra::Aggregate(algebra::Base("R0"), {0}, f);

  uint64_t recomputes = 0;
  double lifetime_sum = 0;
  uint64_t lifetime_count = 0;
  for (auto _ : state) {
    MaterializedView::Options opts;
    opts.eval.aggregate_mode = mode;
    MaterializedView view(expr, opts);
    Status st = view.Initialize(db, Timestamp::Zero());
    if (!st.ok()) state.SkipWithError(st.ToString().c_str());
    // Record the lifetimes assigned at first materialization.
    view.result().relation.ForEach([&](const Tuple&, Timestamp texp) {
      if (texp.IsFinite()) {
        lifetime_sum += static_cast<double>(texp.ticks());
        ++lifetime_count;
      }
    });
    for (int64_t t = 0; t <= kHorizon; ++t) {
      auto result = view.Read(db, Timestamp(t));
      if (!result.ok()) state.SkipWithError(result.status().ToString().c_str());
      benchmark::DoNotOptimize(result->size());
    }
    recomputes += view.stats().recomputations;
  }
  state.counters["recomputes_per_run"] = benchmark::Counter(
      static_cast<double>(recomputes) /
      static_cast<double>(state.iterations()));
  state.counters["mean_tuple_lifetime"] = benchmark::Counter(
      lifetime_count == 0 ? 0
                          : lifetime_sum / static_cast<double>(lifetime_count));
  state.SetLabel(f.ToString() + "/" +
                 std::string(AggregateExpirationModeToString(mode)));
}

void BM_Conservative(benchmark::State& state) {
  RunMode(state, AggregateExpirationMode::kConservative);
}
void BM_ContributingSet(benchmark::State& state) {
  RunMode(state, AggregateExpirationMode::kContributingSet);
}
void BM_Exact(benchmark::State& state) {
  RunMode(state, AggregateExpirationMode::kExact);
}

void Args(benchmark::internal::Benchmark* b) {
  for (int64_t groups : {16, 256}) {
    for (int64_t f = 0; f < 5; ++f) b->Args({groups, f});
  }
  b->Unit(benchmark::kMillisecond);
}

BENCHMARK(BM_Conservative)->Apply(Args);
BENCHMARK(BM_ContributingSet)->Apply(Args);
BENCHMARK(BM_Exact)->Apply(Args);

}  // namespace

BENCHMARK_MAIN();
