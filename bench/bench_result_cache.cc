// Claim C12 — the expiration-stamped result cache turns warm repeats
// into lookups.
//
// Scenarios (EXPERIMENTS.md C12, docs/PERFORMANCE.md §7):
//   * SelectUncached vs SelectWarmCache — the same selective point query
//     through the full SQL path with the result cache off vs warm; the
//     >=10x warm-hit claim.
//   * ExecutePreparedWarm — EXECUTE on a prepared statement, warm cache:
//     no parsing of the query text, no planning, no execution.
//   * SelectPatchedHit — one insert + one delete between lookups, so
//     every SELECT is served by delta-patching the cached entry rather
//     than recomputing.
//   * SelectColdPlans vs SelectSharedSkeleton — tier 1 in isolation
//     (result cache off): re-planning every statement vs rotating
//     literals through one cached skeleton.

#include <string>

#include <benchmark/benchmark.h>

#include "sql/session.h"

namespace {

using namespace expdb;  // NOLINT

constexpr const char* kPointQuery = "SELECT * FROM t WHERE v = 3";

void Must(const Result<sql::ExecResult>& r, benchmark::State& state) {
  if (!r.ok()) state.SkipWithError(r.status().ToString().c_str());
}

/// t(k INT, v INT): n rows, v uniform over 97 values, expirations far in
/// the future (the cache is exercised, never lapsed, during the run).
void FillTable(sql::Session& s, int64_t n, benchmark::State& state) {
  Must(s.Execute("CREATE TABLE t (k INT, v INT)"), state);
  Relation* r = s.db().GetRelation("t").value();
  for (int64_t i = 0; i < n; ++i) {
    if (!r->Insert(Tuple{i, i % 97}, Timestamp(1000000 + i)).ok()) {
      state.SkipWithError("fill failed");
      return;
    }
  }
}

void BM_SelectUncached(benchmark::State& state) {
  sql::Session s;
  FillTable(s, state.range(0), state);
  Must(s.Execute("SET result_cache_bytes = 0"), state);
  for (auto _ : state) {
    auto r = s.Execute(kPointQuery);
    Must(r, state);
    benchmark::DoNotOptimize(r);
  }
  state.SetLabel("plan + execute per call");
}
BENCHMARK(BM_SelectUncached)->Arg(1024)->Arg(8192)->Arg(65536);

void BM_SelectWarmCache(benchmark::State& state) {
  sql::Session s;
  FillTable(s, state.range(0), state);
  Must(s.Execute(kPointQuery), state);  // fill both tiers
  for (auto _ : state) {
    auto r = s.Execute(kPointQuery);
    Must(r, state);
    benchmark::DoNotOptimize(r);
  }
  state.SetLabel("warm result-cache hit");
}
BENCHMARK(BM_SelectWarmCache)->Arg(1024)->Arg(8192)->Arg(65536);

void BM_ExecutePreparedWarm(benchmark::State& state) {
  sql::Session s;
  FillTable(s, state.range(0), state);
  Must(s.Execute("PREPARE q AS SELECT * FROM t WHERE v = $1"), state);
  Must(s.Execute("EXECUTE q (3)"), state);  // fill
  for (auto _ : state) {
    auto r = s.Execute("EXECUTE q (3)");
    Must(r, state);
    benchmark::DoNotOptimize(r);
  }
  state.SetLabel("prepared, warm hit");
}
BENCHMARK(BM_ExecutePreparedWarm)->Arg(8192);

void BM_SelectPatchedHit(benchmark::State& state) {
  sql::Session s;
  FillTable(s, state.range(0), state);
  Must(s.Execute(kPointQuery), state);
  for (auto _ : state) {
    Must(s.Execute("INSERT INTO t VALUES (999999999, 3)"), state);
    auto in = s.Execute(kPointQuery);  // patched in
    Must(in, state);
    Must(s.Execute("DELETE FROM t WHERE k = 999999999"), state);
    auto out = s.Execute(kPointQuery);  // patched out
    Must(out, state);
    benchmark::DoNotOptimize(out);
  }
  state.SetLabel("2 patches + 2 mutations per iteration");
}
BENCHMARK(BM_SelectPatchedHit)->Arg(8192);

void BM_SelectColdPlans(benchmark::State& state) {
  sql::Session s;
  FillTable(s, state.range(0), state);
  Must(s.Execute("SET result_cache_bytes = 0"), state);
  for (auto _ : state) {
    Must(s.Execute("CACHE CLEAR"), state);  // forces a fresh plan
    auto r = s.Execute(kPointQuery);
    Must(r, state);
    benchmark::DoNotOptimize(r);
  }
  state.SetLabel("re-planned every call");
}
BENCHMARK(BM_SelectColdPlans)->Arg(512);

void BM_SelectSharedSkeleton(benchmark::State& state) {
  sql::Session s;
  FillTable(s, state.range(0), state);
  Must(s.Execute("SET result_cache_bytes = 0"), state);
  Must(s.Execute(kPointQuery), state);  // plan the skeleton once
  int64_t v = 0;
  for (auto _ : state) {
    // Rotating literals: every statement is a tier-1 hit (one skeleton),
    // never a tier-2 hit (different arguments).
    auto r = s.Execute("SELECT * FROM t WHERE v = " + std::to_string(v));
    v = (v + 1) % 97;
    Must(r, state);
    benchmark::DoNotOptimize(r);
  }
  state.SetLabel("one skeleton, rotating literals");
}
BENCHMARK(BM_SelectSharedSkeleton)->Arg(512);

}  // namespace

BENCHMARK_MAIN();
