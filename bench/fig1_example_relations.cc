// Reproduces Figure 1: the example relations Pol (politics) and El
// (elections) of the personalised news service at time 0, with their
// per-tuple expiration times.

#include <cstdio>

#include "bench/paper_db.h"
#include "relational/printer.h"

int main(int argc, char** argv) {
  using namespace expdb;
  ReproFlags flags(argc, argv);
  std::printf("=== Figure 1: Example relations at time 0 ===\n\n");

  Database db = MakePaperDatabase();

  PrintOptions opts;
  opts.caption = "(a) Politics table Pol";
  std::printf("%s\n",
              PrintRelation(*db.GetRelation("Pol").value(), opts).c_str());
  opts.caption = "(b) Elections table El";
  std::printf("%s\n",
              PrintRelation(*db.GetRelation("El").value(), opts).c_str());

  const Relation* pol = db.GetRelation("Pol").value();
  const Relation* el = db.GetRelation("El").value();
  Check(pol->GetTexp(Tuple{1, 25}) == Timestamp(10), "texp(Pol<1,25>) = 10");
  Check(pol->GetTexp(Tuple{2, 25}) == Timestamp(15), "texp(Pol<2,25>) = 15");
  Check(pol->GetTexp(Tuple{3, 35}) == Timestamp(10), "texp(Pol<3,35>) = 10");
  Check(el->GetTexp(Tuple{1, 75}) == Timestamp(5), "texp(El<1,75>) = 5");
  Check(el->GetTexp(Tuple{2, 85}) == Timestamp(3), "texp(El<2,85>) = 3");
  Check(el->GetTexp(Tuple{4, 90}) == Timestamp(2), "texp(El<4,90>) = 2");
  std::printf("\nFigure 1 reproduced.\n");
  return 0;
}
