# CMake generated Testfile for 
# Source directory: /root/repo/tests/expiration
# Build directory: /root/repo/build/tests/expiration
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/expiration/clock_test[1]_include.cmake")
include("/root/repo/build/tests/expiration/expiration_queue_test[1]_include.cmake")
include("/root/repo/build/tests/expiration/constraint_test[1]_include.cmake")
include("/root/repo/build/tests/expiration/calendar_queue_test[1]_include.cmake")
