file(REMOVE_RECURSE
  "CMakeFiles/expiration_queue_test.dir/expiration_queue_test.cc.o"
  "CMakeFiles/expiration_queue_test.dir/expiration_queue_test.cc.o.d"
  "expiration_queue_test"
  "expiration_queue_test.pdb"
  "expiration_queue_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/expiration_queue_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
