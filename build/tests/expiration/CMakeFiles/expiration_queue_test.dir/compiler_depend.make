# Empty compiler generated dependencies file for expiration_queue_test.
# This may be replaced when dependencies are built.
