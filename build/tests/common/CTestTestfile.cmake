# CMake generated Testfile for 
# Source directory: /root/repo/tests/common
# Build directory: /root/repo/build/tests/common
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common/timestamp_test[1]_include.cmake")
include("/root/repo/build/tests/common/value_test[1]_include.cmake")
include("/root/repo/build/tests/common/status_test[1]_include.cmake")
include("/root/repo/build/tests/common/str_util_test[1]_include.cmake")
include("/root/repo/build/tests/common/rng_test[1]_include.cmake")
include("/root/repo/build/tests/common/thread_pool_test[1]_include.cmake")
