# CMake generated Testfile for 
# Source directory: /root/repo/tests/obs
# Build directory: /root/repo/build/tests/obs
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/obs/metrics_test[1]_include.cmake")
include("/root/repo/build/tests/obs/trace_test[1]_include.cmake")
