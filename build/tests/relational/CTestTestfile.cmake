# CMake generated Testfile for 
# Source directory: /root/repo/tests/relational
# Build directory: /root/repo/build/tests/relational
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/relational/schema_test[1]_include.cmake")
include("/root/repo/build/tests/relational/tuple_test[1]_include.cmake")
include("/root/repo/build/tests/relational/relation_test[1]_include.cmake")
include("/root/repo/build/tests/relational/database_test[1]_include.cmake")
include("/root/repo/build/tests/relational/printer_test[1]_include.cmake")
