# CMake generated Testfile for 
# Source directory: /root/repo/tests/sql
# Build directory: /root/repo/build/tests/sql
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/sql/lexer_test[1]_include.cmake")
include("/root/repo/build/tests/sql/parser_test[1]_include.cmake")
include("/root/repo/build/tests/sql/session_test[1]_include.cmake")
include("/root/repo/build/tests/sql/binder_test[1]_include.cmake")
include("/root/repo/build/tests/sql/robustness_test[1]_include.cmake")
