# CMake generated Testfile for 
# Source directory: /root/repo/tests/view
# Build directory: /root/repo/build/tests/view
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/view/materialized_view_test[1]_include.cmake")
include("/root/repo/build/tests/view/difference_patcher_test[1]_include.cmake")
include("/root/repo/build/tests/view/schrodinger_test[1]_include.cmake")
include("/root/repo/build/tests/view/view_manager_test[1]_include.cmake")
include("/root/repo/build/tests/view/staleness_test[1]_include.cmake")
