file(REMOVE_RECURSE
  "CMakeFiles/schrodinger_test.dir/schrodinger_test.cc.o"
  "CMakeFiles/schrodinger_test.dir/schrodinger_test.cc.o.d"
  "schrodinger_test"
  "schrodinger_test.pdb"
  "schrodinger_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/schrodinger_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
