# Empty compiler generated dependencies file for schrodinger_test.
# This may be replaced when dependencies are built.
