# Empty compiler generated dependencies file for difference_patcher_test.
# This may be replaced when dependencies are built.
