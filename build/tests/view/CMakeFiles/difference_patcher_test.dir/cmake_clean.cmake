file(REMOVE_RECURSE
  "CMakeFiles/difference_patcher_test.dir/difference_patcher_test.cc.o"
  "CMakeFiles/difference_patcher_test.dir/difference_patcher_test.cc.o.d"
  "difference_patcher_test"
  "difference_patcher_test.pdb"
  "difference_patcher_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/difference_patcher_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
