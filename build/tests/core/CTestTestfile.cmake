# CMake generated Testfile for 
# Source directory: /root/repo/tests/core
# Build directory: /root/repo/build/tests/core
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/core/paper_examples_test[1]_include.cmake")
include("/root/repo/build/tests/core/interval_set_test[1]_include.cmake")
include("/root/repo/build/tests/core/predicate_test[1]_include.cmake")
include("/root/repo/build/tests/core/aggregate_test[1]_include.cmake")
include("/root/repo/build/tests/core/expression_test[1]_include.cmake")
include("/root/repo/build/tests/core/eval_operators_test[1]_include.cmake")
include("/root/repo/build/tests/core/difference_test[1]_include.cmake")
include("/root/repo/build/tests/core/monotonic_property_test[1]_include.cmake")
include("/root/repo/build/tests/core/texp_property_test[1]_include.cmake")
include("/root/repo/build/tests/core/validity_property_test[1]_include.cmake")
include("/root/repo/build/tests/core/aggregate_modes_property_test[1]_include.cmake")
include("/root/repo/build/tests/core/rewrite_test[1]_include.cmake")
include("/root/repo/build/tests/core/approx_aggregate_test[1]_include.cmake")
include("/root/repo/build/tests/core/interval_set_property_test[1]_include.cmake")
include("/root/repo/build/tests/core/validity_composition_test[1]_include.cmake")
include("/root/repo/build/tests/core/semi_anti_join_test[1]_include.cmake")
include("/root/repo/build/tests/core/differential_eval_test[1]_include.cmake")
include("/root/repo/build/tests/core/parallel_eval_property_test[1]_include.cmake")
