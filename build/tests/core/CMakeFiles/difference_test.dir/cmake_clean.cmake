file(REMOVE_RECURSE
  "CMakeFiles/difference_test.dir/difference_test.cc.o"
  "CMakeFiles/difference_test.dir/difference_test.cc.o.d"
  "difference_test"
  "difference_test.pdb"
  "difference_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/difference_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
