# Empty compiler generated dependencies file for interval_set_property_test.
# This may be replaced when dependencies are built.
