# Empty compiler generated dependencies file for aggregate_modes_property_test.
# This may be replaced when dependencies are built.
