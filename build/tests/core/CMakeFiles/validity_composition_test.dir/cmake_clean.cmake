file(REMOVE_RECURSE
  "CMakeFiles/validity_composition_test.dir/validity_composition_test.cc.o"
  "CMakeFiles/validity_composition_test.dir/validity_composition_test.cc.o.d"
  "validity_composition_test"
  "validity_composition_test.pdb"
  "validity_composition_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/validity_composition_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
