# Empty dependencies file for validity_composition_test.
# This may be replaced when dependencies are built.
