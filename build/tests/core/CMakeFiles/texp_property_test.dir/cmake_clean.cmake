file(REMOVE_RECURSE
  "CMakeFiles/texp_property_test.dir/texp_property_test.cc.o"
  "CMakeFiles/texp_property_test.dir/texp_property_test.cc.o.d"
  "texp_property_test"
  "texp_property_test.pdb"
  "texp_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/texp_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
