# Empty dependencies file for texp_property_test.
# This may be replaced when dependencies are built.
