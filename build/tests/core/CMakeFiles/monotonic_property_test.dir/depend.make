# Empty dependencies file for monotonic_property_test.
# This may be replaced when dependencies are built.
