file(REMOVE_RECURSE
  "CMakeFiles/monotonic_property_test.dir/monotonic_property_test.cc.o"
  "CMakeFiles/monotonic_property_test.dir/monotonic_property_test.cc.o.d"
  "monotonic_property_test"
  "monotonic_property_test.pdb"
  "monotonic_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/monotonic_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
