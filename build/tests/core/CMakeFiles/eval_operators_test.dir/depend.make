# Empty dependencies file for eval_operators_test.
# This may be replaced when dependencies are built.
