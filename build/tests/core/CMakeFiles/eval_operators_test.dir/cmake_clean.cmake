file(REMOVE_RECURSE
  "CMakeFiles/eval_operators_test.dir/eval_operators_test.cc.o"
  "CMakeFiles/eval_operators_test.dir/eval_operators_test.cc.o.d"
  "eval_operators_test"
  "eval_operators_test.pdb"
  "eval_operators_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eval_operators_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
