file(REMOVE_RECURSE
  "CMakeFiles/differential_eval_test.dir/differential_eval_test.cc.o"
  "CMakeFiles/differential_eval_test.dir/differential_eval_test.cc.o.d"
  "differential_eval_test"
  "differential_eval_test.pdb"
  "differential_eval_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/differential_eval_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
