# Empty compiler generated dependencies file for differential_eval_test.
# This may be replaced when dependencies are built.
