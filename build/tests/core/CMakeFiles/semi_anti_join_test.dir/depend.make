# Empty dependencies file for semi_anti_join_test.
# This may be replaced when dependencies are built.
