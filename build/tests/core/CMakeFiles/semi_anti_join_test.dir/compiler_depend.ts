# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for semi_anti_join_test.
