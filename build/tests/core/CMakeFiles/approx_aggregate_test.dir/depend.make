# Empty dependencies file for approx_aggregate_test.
# This may be replaced when dependencies are built.
