file(REMOVE_RECURSE
  "CMakeFiles/approx_aggregate_test.dir/approx_aggregate_test.cc.o"
  "CMakeFiles/approx_aggregate_test.dir/approx_aggregate_test.cc.o.d"
  "approx_aggregate_test"
  "approx_aggregate_test.pdb"
  "approx_aggregate_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/approx_aggregate_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
