# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("obs")
subdirs("relational")
subdirs("core")
subdirs("view")
subdirs("expiration")
subdirs("sql")
subdirs("replica")
subdirs("integration")
subdirs("testing")
