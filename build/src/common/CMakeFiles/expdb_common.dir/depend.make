# Empty dependencies file for expdb_common.
# This may be replaced when dependencies are built.
