file(REMOVE_RECURSE
  "libexpdb_common.a"
)
