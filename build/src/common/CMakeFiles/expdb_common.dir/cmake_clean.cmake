file(REMOVE_RECURSE
  "CMakeFiles/expdb_common.dir/rng.cc.o"
  "CMakeFiles/expdb_common.dir/rng.cc.o.d"
  "CMakeFiles/expdb_common.dir/status.cc.o"
  "CMakeFiles/expdb_common.dir/status.cc.o.d"
  "CMakeFiles/expdb_common.dir/str_util.cc.o"
  "CMakeFiles/expdb_common.dir/str_util.cc.o.d"
  "CMakeFiles/expdb_common.dir/thread_pool.cc.o"
  "CMakeFiles/expdb_common.dir/thread_pool.cc.o.d"
  "CMakeFiles/expdb_common.dir/timestamp.cc.o"
  "CMakeFiles/expdb_common.dir/timestamp.cc.o.d"
  "CMakeFiles/expdb_common.dir/value.cc.o"
  "CMakeFiles/expdb_common.dir/value.cc.o.d"
  "libexpdb_common.a"
  "libexpdb_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/expdb_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
