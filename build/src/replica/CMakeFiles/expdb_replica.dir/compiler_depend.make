# Empty compiler generated dependencies file for expdb_replica.
# This may be replaced when dependencies are built.
