file(REMOVE_RECURSE
  "CMakeFiles/expdb_replica.dir/client.cc.o"
  "CMakeFiles/expdb_replica.dir/client.cc.o.d"
  "CMakeFiles/expdb_replica.dir/protocol.cc.o"
  "CMakeFiles/expdb_replica.dir/protocol.cc.o.d"
  "CMakeFiles/expdb_replica.dir/server.cc.o"
  "CMakeFiles/expdb_replica.dir/server.cc.o.d"
  "libexpdb_replica.a"
  "libexpdb_replica.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/expdb_replica.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
