file(REMOVE_RECURSE
  "libexpdb_replica.a"
)
