# Empty dependencies file for expdb_sql.
# This may be replaced when dependencies are built.
