file(REMOVE_RECURSE
  "libexpdb_sql.a"
)
