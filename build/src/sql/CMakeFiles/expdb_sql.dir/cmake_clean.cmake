file(REMOVE_RECURSE
  "CMakeFiles/expdb_sql.dir/binder.cc.o"
  "CMakeFiles/expdb_sql.dir/binder.cc.o.d"
  "CMakeFiles/expdb_sql.dir/lexer.cc.o"
  "CMakeFiles/expdb_sql.dir/lexer.cc.o.d"
  "CMakeFiles/expdb_sql.dir/parser.cc.o"
  "CMakeFiles/expdb_sql.dir/parser.cc.o.d"
  "CMakeFiles/expdb_sql.dir/session.cc.o"
  "CMakeFiles/expdb_sql.dir/session.cc.o.d"
  "libexpdb_sql.a"
  "libexpdb_sql.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/expdb_sql.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
