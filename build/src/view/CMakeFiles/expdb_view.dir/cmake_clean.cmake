file(REMOVE_RECURSE
  "CMakeFiles/expdb_view.dir/materialized_view.cc.o"
  "CMakeFiles/expdb_view.dir/materialized_view.cc.o.d"
  "CMakeFiles/expdb_view.dir/view_manager.cc.o"
  "CMakeFiles/expdb_view.dir/view_manager.cc.o.d"
  "libexpdb_view.a"
  "libexpdb_view.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/expdb_view.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
