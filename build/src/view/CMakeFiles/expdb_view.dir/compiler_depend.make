# Empty compiler generated dependencies file for expdb_view.
# This may be replaced when dependencies are built.
