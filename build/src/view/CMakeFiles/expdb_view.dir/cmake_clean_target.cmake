file(REMOVE_RECURSE
  "libexpdb_view.a"
)
