# Empty compiler generated dependencies file for expdb_testing.
# This may be replaced when dependencies are built.
