file(REMOVE_RECURSE
  "libexpdb_testing.a"
)
