file(REMOVE_RECURSE
  "CMakeFiles/expdb_testing.dir/workload.cc.o"
  "CMakeFiles/expdb_testing.dir/workload.cc.o.d"
  "libexpdb_testing.a"
  "libexpdb_testing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/expdb_testing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
