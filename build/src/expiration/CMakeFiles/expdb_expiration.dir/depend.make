# Empty dependencies file for expdb_expiration.
# This may be replaced when dependencies are built.
