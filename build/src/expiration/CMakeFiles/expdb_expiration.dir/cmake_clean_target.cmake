file(REMOVE_RECURSE
  "libexpdb_expiration.a"
)
