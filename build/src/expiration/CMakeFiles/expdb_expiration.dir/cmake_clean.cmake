file(REMOVE_RECURSE
  "CMakeFiles/expdb_expiration.dir/clock.cc.o"
  "CMakeFiles/expdb_expiration.dir/clock.cc.o.d"
  "CMakeFiles/expdb_expiration.dir/constraint.cc.o"
  "CMakeFiles/expdb_expiration.dir/constraint.cc.o.d"
  "CMakeFiles/expdb_expiration.dir/expiration_queue.cc.o"
  "CMakeFiles/expdb_expiration.dir/expiration_queue.cc.o.d"
  "libexpdb_expiration.a"
  "libexpdb_expiration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/expdb_expiration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
