file(REMOVE_RECURSE
  "libexpdb_core.a"
)
