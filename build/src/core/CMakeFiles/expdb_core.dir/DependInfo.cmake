
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/aggregate.cc" "src/core/CMakeFiles/expdb_core.dir/aggregate.cc.o" "gcc" "src/core/CMakeFiles/expdb_core.dir/aggregate.cc.o.d"
  "/root/repo/src/core/difference.cc" "src/core/CMakeFiles/expdb_core.dir/difference.cc.o" "gcc" "src/core/CMakeFiles/expdb_core.dir/difference.cc.o.d"
  "/root/repo/src/core/eval.cc" "src/core/CMakeFiles/expdb_core.dir/eval.cc.o" "gcc" "src/core/CMakeFiles/expdb_core.dir/eval.cc.o.d"
  "/root/repo/src/core/expression.cc" "src/core/CMakeFiles/expdb_core.dir/expression.cc.o" "gcc" "src/core/CMakeFiles/expdb_core.dir/expression.cc.o.d"
  "/root/repo/src/core/interval_set.cc" "src/core/CMakeFiles/expdb_core.dir/interval_set.cc.o" "gcc" "src/core/CMakeFiles/expdb_core.dir/interval_set.cc.o.d"
  "/root/repo/src/core/join_key_index.cc" "src/core/CMakeFiles/expdb_core.dir/join_key_index.cc.o" "gcc" "src/core/CMakeFiles/expdb_core.dir/join_key_index.cc.o.d"
  "/root/repo/src/core/predicate.cc" "src/core/CMakeFiles/expdb_core.dir/predicate.cc.o" "gcc" "src/core/CMakeFiles/expdb_core.dir/predicate.cc.o.d"
  "/root/repo/src/core/rewrite.cc" "src/core/CMakeFiles/expdb_core.dir/rewrite.cc.o" "gcc" "src/core/CMakeFiles/expdb_core.dir/rewrite.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/expdb_common.dir/DependInfo.cmake"
  "/root/repo/build/src/relational/CMakeFiles/expdb_relational.dir/DependInfo.cmake"
  "/root/repo/build/src/obs/CMakeFiles/expdb_obs.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
