file(REMOVE_RECURSE
  "CMakeFiles/expdb_core.dir/aggregate.cc.o"
  "CMakeFiles/expdb_core.dir/aggregate.cc.o.d"
  "CMakeFiles/expdb_core.dir/difference.cc.o"
  "CMakeFiles/expdb_core.dir/difference.cc.o.d"
  "CMakeFiles/expdb_core.dir/eval.cc.o"
  "CMakeFiles/expdb_core.dir/eval.cc.o.d"
  "CMakeFiles/expdb_core.dir/expression.cc.o"
  "CMakeFiles/expdb_core.dir/expression.cc.o.d"
  "CMakeFiles/expdb_core.dir/interval_set.cc.o"
  "CMakeFiles/expdb_core.dir/interval_set.cc.o.d"
  "CMakeFiles/expdb_core.dir/join_key_index.cc.o"
  "CMakeFiles/expdb_core.dir/join_key_index.cc.o.d"
  "CMakeFiles/expdb_core.dir/predicate.cc.o"
  "CMakeFiles/expdb_core.dir/predicate.cc.o.d"
  "CMakeFiles/expdb_core.dir/rewrite.cc.o"
  "CMakeFiles/expdb_core.dir/rewrite.cc.o.d"
  "libexpdb_core.a"
  "libexpdb_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/expdb_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
