# Empty dependencies file for expdb_core.
# This may be replaced when dependencies are built.
