file(REMOVE_RECURSE
  "libexpdb_relational.a"
)
