# Empty dependencies file for expdb_relational.
# This may be replaced when dependencies are built.
