file(REMOVE_RECURSE
  "CMakeFiles/expdb_relational.dir/database.cc.o"
  "CMakeFiles/expdb_relational.dir/database.cc.o.d"
  "CMakeFiles/expdb_relational.dir/printer.cc.o"
  "CMakeFiles/expdb_relational.dir/printer.cc.o.d"
  "CMakeFiles/expdb_relational.dir/relation.cc.o"
  "CMakeFiles/expdb_relational.dir/relation.cc.o.d"
  "CMakeFiles/expdb_relational.dir/schema.cc.o"
  "CMakeFiles/expdb_relational.dir/schema.cc.o.d"
  "CMakeFiles/expdb_relational.dir/tuple.cc.o"
  "CMakeFiles/expdb_relational.dir/tuple.cc.o.d"
  "libexpdb_relational.a"
  "libexpdb_relational.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/expdb_relational.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
