file(REMOVE_RECURSE
  "CMakeFiles/expdb_obs.dir/metrics.cc.o"
  "CMakeFiles/expdb_obs.dir/metrics.cc.o.d"
  "CMakeFiles/expdb_obs.dir/trace.cc.o"
  "CMakeFiles/expdb_obs.dir/trace.cc.o.d"
  "libexpdb_obs.a"
  "libexpdb_obs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/expdb_obs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
