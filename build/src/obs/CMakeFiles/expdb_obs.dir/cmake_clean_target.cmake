file(REMOVE_RECURSE
  "libexpdb_obs.a"
)
