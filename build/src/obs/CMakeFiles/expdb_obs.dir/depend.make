# Empty dependencies file for expdb_obs.
# This may be replaced when dependencies are built.
