# Empty dependencies file for session_manager.
# This may be replaced when dependencies are built.
