file(REMOVE_RECURSE
  "CMakeFiles/session_manager.dir/session_manager.cpp.o"
  "CMakeFiles/session_manager.dir/session_manager.cpp.o.d"
  "session_manager"
  "session_manager.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/session_manager.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
