# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;15;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_news_service "/root/repo/build/examples/news_service")
set_tests_properties(example_news_service PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;16;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_session_manager "/root/repo/build/examples/session_manager")
set_tests_properties(example_session_manager PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_sensor_monitor "/root/repo/build/examples/sensor_monitor")
set_tests_properties(example_sensor_monitor PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_sql_shell "/root/repo/build/examples/sql_shell")
set_tests_properties(example_sql_shell PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;19;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_access_control "/root/repo/build/examples/access_control")
set_tests_properties(example_access_control PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;20;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(repro_fig1 "/root/repo/build/bench/fig1_example_relations")
set_tests_properties(repro_fig1 PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;22;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(repro_fig2 "/root/repo/build/bench/fig2_monotonic")
set_tests_properties(repro_fig2 PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;23;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(repro_fig3 "/root/repo/build/bench/fig3_nonmonotonic")
set_tests_properties(repro_fig3 PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;24;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(repro_table1 "/root/repo/build/bench/table1_neutral_sets")
set_tests_properties(repro_table1 PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;25;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(repro_table2 "/root/repo/build/bench/table2_difference_lifetime")
set_tests_properties(repro_table2 PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;26;add_test;/root/repo/examples/CMakeLists.txt;0;")
