file(REMOVE_RECURSE
  "CMakeFiles/bench_difference_patch.dir/bench_difference_patch.cc.o"
  "CMakeFiles/bench_difference_patch.dir/bench_difference_patch.cc.o.d"
  "bench_difference_patch"
  "bench_difference_patch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_difference_patch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
