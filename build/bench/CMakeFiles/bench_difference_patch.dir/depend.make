# Empty dependencies file for bench_difference_patch.
# This may be replaced when dependencies are built.
