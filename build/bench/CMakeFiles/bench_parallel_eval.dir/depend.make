# Empty dependencies file for bench_parallel_eval.
# This may be replaced when dependencies are built.
