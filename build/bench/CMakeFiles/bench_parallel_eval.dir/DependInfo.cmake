
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_parallel_eval.cc" "bench/CMakeFiles/bench_parallel_eval.dir/bench_parallel_eval.cc.o" "gcc" "bench/CMakeFiles/bench_parallel_eval.dir/bench_parallel_eval.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/testing/CMakeFiles/expdb_testing.dir/DependInfo.cmake"
  "/root/repo/build/src/sql/CMakeFiles/expdb_sql.dir/DependInfo.cmake"
  "/root/repo/build/src/expiration/CMakeFiles/expdb_expiration.dir/DependInfo.cmake"
  "/root/repo/build/src/view/CMakeFiles/expdb_view.dir/DependInfo.cmake"
  "/root/repo/build/src/replica/CMakeFiles/expdb_replica.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/expdb_core.dir/DependInfo.cmake"
  "/root/repo/build/src/obs/CMakeFiles/expdb_obs.dir/DependInfo.cmake"
  "/root/repo/build/src/relational/CMakeFiles/expdb_relational.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/expdb_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
