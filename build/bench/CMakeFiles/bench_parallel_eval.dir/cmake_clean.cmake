file(REMOVE_RECURSE
  "CMakeFiles/bench_parallel_eval.dir/bench_parallel_eval.cc.o"
  "CMakeFiles/bench_parallel_eval.dir/bench_parallel_eval.cc.o.d"
  "bench_parallel_eval"
  "bench_parallel_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_parallel_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
