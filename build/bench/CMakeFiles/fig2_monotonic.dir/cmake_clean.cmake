file(REMOVE_RECURSE
  "CMakeFiles/fig2_monotonic.dir/fig2_monotonic.cc.o"
  "CMakeFiles/fig2_monotonic.dir/fig2_monotonic.cc.o.d"
  "fig2_monotonic"
  "fig2_monotonic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_monotonic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
