# Empty compiler generated dependencies file for fig2_monotonic.
# This may be replaced when dependencies are built.
