# Empty compiler generated dependencies file for table1_neutral_sets.
# This may be replaced when dependencies are built.
