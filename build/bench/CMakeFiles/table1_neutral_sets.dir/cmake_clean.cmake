file(REMOVE_RECURSE
  "CMakeFiles/table1_neutral_sets.dir/table1_neutral_sets.cc.o"
  "CMakeFiles/table1_neutral_sets.dir/table1_neutral_sets.cc.o.d"
  "table1_neutral_sets"
  "table1_neutral_sets.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_neutral_sets.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
