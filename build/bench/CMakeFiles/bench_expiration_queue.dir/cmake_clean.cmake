file(REMOVE_RECURSE
  "CMakeFiles/bench_expiration_queue.dir/bench_expiration_queue.cc.o"
  "CMakeFiles/bench_expiration_queue.dir/bench_expiration_queue.cc.o.d"
  "bench_expiration_queue"
  "bench_expiration_queue.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_expiration_queue.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
