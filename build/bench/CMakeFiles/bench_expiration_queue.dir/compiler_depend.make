# Empty compiler generated dependencies file for bench_expiration_queue.
# This may be replaced when dependencies are built.
