file(REMOVE_RECURSE
  "CMakeFiles/bench_schrodinger.dir/bench_schrodinger.cc.o"
  "CMakeFiles/bench_schrodinger.dir/bench_schrodinger.cc.o.d"
  "bench_schrodinger"
  "bench_schrodinger.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_schrodinger.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
