# Empty dependencies file for bench_schrodinger.
# This may be replaced when dependencies are built.
