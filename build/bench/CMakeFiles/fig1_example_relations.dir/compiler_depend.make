# Empty compiler generated dependencies file for fig1_example_relations.
# This may be replaced when dependencies are built.
