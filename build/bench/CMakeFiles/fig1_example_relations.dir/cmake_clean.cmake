file(REMOVE_RECURSE
  "CMakeFiles/fig1_example_relations.dir/fig1_example_relations.cc.o"
  "CMakeFiles/fig1_example_relations.dir/fig1_example_relations.cc.o.d"
  "fig1_example_relations"
  "fig1_example_relations.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_example_relations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
