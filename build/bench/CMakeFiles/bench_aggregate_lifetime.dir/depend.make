# Empty dependencies file for bench_aggregate_lifetime.
# This may be replaced when dependencies are built.
