file(REMOVE_RECURSE
  "CMakeFiles/bench_aggregate_lifetime.dir/bench_aggregate_lifetime.cc.o"
  "CMakeFiles/bench_aggregate_lifetime.dir/bench_aggregate_lifetime.cc.o.d"
  "bench_aggregate_lifetime"
  "bench_aggregate_lifetime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_aggregate_lifetime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
