file(REMOVE_RECURSE
  "CMakeFiles/bench_approx_aggregate.dir/bench_approx_aggregate.cc.o"
  "CMakeFiles/bench_approx_aggregate.dir/bench_approx_aggregate.cc.o.d"
  "bench_approx_aggregate"
  "bench_approx_aggregate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_approx_aggregate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
