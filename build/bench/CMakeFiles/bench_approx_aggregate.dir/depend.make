# Empty dependencies file for bench_approx_aggregate.
# This may be replaced when dependencies are built.
