# Empty dependencies file for bench_view_maintenance.
# This may be replaced when dependencies are built.
