file(REMOVE_RECURSE
  "CMakeFiles/bench_view_maintenance.dir/bench_view_maintenance.cc.o"
  "CMakeFiles/bench_view_maintenance.dir/bench_view_maintenance.cc.o.d"
  "bench_view_maintenance"
  "bench_view_maintenance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_view_maintenance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
