# Empty compiler generated dependencies file for fig3_nonmonotonic.
# This may be replaced when dependencies are built.
