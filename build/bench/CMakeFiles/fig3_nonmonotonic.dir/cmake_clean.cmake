file(REMOVE_RECURSE
  "CMakeFiles/fig3_nonmonotonic.dir/fig3_nonmonotonic.cc.o"
  "CMakeFiles/fig3_nonmonotonic.dir/fig3_nonmonotonic.cc.o.d"
  "fig3_nonmonotonic"
  "fig3_nonmonotonic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_nonmonotonic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
