# Empty dependencies file for table2_difference_lifetime.
# This may be replaced when dependencies are built.
