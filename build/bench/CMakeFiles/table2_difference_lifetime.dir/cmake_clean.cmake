file(REMOVE_RECURSE
  "CMakeFiles/table2_difference_lifetime.dir/table2_difference_lifetime.cc.o"
  "CMakeFiles/table2_difference_lifetime.dir/table2_difference_lifetime.cc.o.d"
  "table2_difference_lifetime"
  "table2_difference_lifetime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_difference_lifetime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
