// Quickstart: the ExpDB C++ API in one file.
//
//   1. create relations and insert tuples with expiration times;
//   2. build an algebra expression and evaluate it — queries are
//      expiration-transparent;
//   3. materialize it as a view that maintains itself as time passes;
//   4. watch a non-monotonic view know when it must recompute.
//
// Build & run:  ./build/examples/quickstart

#include <cstdio>

#include "core/eval.h"
#include "relational/printer.h"
#include "view/materialized_view.h"

using namespace expdb;
using namespace expdb::algebra;

int main() {
  std::printf("== ExpDB quickstart ==\n\n");

  // --- 1. Base data with expiration times --------------------------------
  Database db;
  Relation* users =
      db.CreateRelation("users", Schema({{"id", ValueType::kInt64},
                                         {"score", ValueType::kInt64}}))
          .value();
  // A tuple's third argument is its expiration time: the instant it
  // ceases to be current. Timestamp::Infinity() = never expires.
  (void)users->Insert(Tuple{1, 10}, Timestamp(5));
  (void)users->Insert(Tuple{2, 20}, Timestamp(12));
  (void)users->Insert(Tuple{3, 30}, Timestamp::Infinity());

  PrintOptions popts;
  popts.caption = "users at time 0:";
  std::printf("%s\n", PrintRelation(*users, popts).c_str());

  // --- 2. Query, transparently -------------------------------------------
  // σ_{score >= 15}(users): no mention of expiration anywhere.
  auto query = Select(Base("users"),
                      Predicate::Compare(Operand::Column(1),
                                         ComparisonOp::kGe,
                                         Operand::Constant(Value(15))));
  auto at0 = Evaluate(query, db, Timestamp(0)).MoveValue();
  std::printf("%s at time 0:\n%s\n", query->ToString().c_str(),
              PrintTuples(at0.relation, Timestamp(0)).c_str());

  // --- 3. Materialize and let it age -------------------------------------
  MaterializedView view(query, {});
  (void)view.Initialize(db, Timestamp(0));
  // Monotonic expression: texp(e) = ∞, the view NEVER recomputes.
  std::printf("view texp(e) = %s (monotonic => maintenance-free)\n\n",
              view.texp().ToString().c_str());
  for (int64_t t : {0, 6, 13}) {
    auto rows = view.Read(db, Timestamp(t)).MoveValue();
    std::printf("view at time %lld:\n%s\n", static_cast<long long>(t),
                PrintTuples(rows, Timestamp(t)).c_str());
  }
  std::printf("recomputations so far: %llu\n\n",
              static_cast<unsigned long long>(view.stats().recomputations));

  // --- 4. A non-monotonic view knows its own deadline --------------------
  Relation* banned =
      db.CreateRelation("banned", Schema({{"id", ValueType::kInt64},
                                          {"score", ValueType::kInt64}}))
          .value();
  (void)banned->Insert(Tuple{2, 20}, Timestamp(8));  // ban lifts at 8

  auto active = Difference(Base("users"), Base("banned"));
  auto diff = Evaluate(active, db, Timestamp(0)).MoveValue();
  std::printf("%s at time 0:\n%s", active->ToString().c_str(),
              PrintTuples(diff.relation, Timestamp(0)).c_str());
  std::printf(
      "texp(e) = %s: user 2's ban lifts at 8 while the row lives to 12,\n"
      "so the materialization must be refreshed (or patched) then.\n",
      diff.texp.ToString().c_str());

  // The Theorem 3 patching view handles that without recomputation:
  MaterializedView::Options patch_opts;
  patch_opts.mode = RefreshMode::kPatchDifference;
  MaterializedView patched(active, patch_opts);
  (void)patched.Initialize(db, Timestamp(0));
  auto at9 = patched.Read(db, Timestamp(9)).MoveValue();
  std::printf("\npatched view at time 9 (user 2 re-appeared, 0 recomputes):\n%s",
              PrintTuples(at9, Timestamp(9)).c_str());
  std::printf("patches applied: %llu, recomputations: %llu\n",
              static_cast<unsigned long long>(patched.stats().patches_applied),
              static_cast<unsigned long long>(
                  patched.stats().recomputations));
  return 0;
}
