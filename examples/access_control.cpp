// Access control with short-lived suspensions (the paper's "short-lived
// credentials and keys in cryptographic protocols" use case).
//
// `grants(user, resource)` holds credentials with lease expirations;
// `suspensions(user, reason)` holds temporary suspensions. The effective
// access list is an anti-join — grants whose user has NO live suspension —
// maintained by Theorem 3 patching: when a user's last suspension lapses,
// their grant re-appears in the materialized list automatically, with
// zero recomputation and zero queries against the base tables.
//
// Build & run:  ./build/examples/access_control

#include <cstdio>

#include "core/eval.h"
#include "relational/printer.h"
#include "view/materialized_view.h"

using namespace expdb;
using namespace expdb::algebra;

int main() {
  std::printf("== Credential store with expiring suspensions ==\n\n");

  Database db;
  Relation* grants =
      db.CreateRelation("grants", Schema({{"user", ValueType::kString},
                                          {"resource", ValueType::kString}}))
          .value();
  (void)grants->Insert(Tuple{"alice", "prod-db"}, Timestamp(100));
  (void)grants->Insert(Tuple{"bob", "prod-db"}, Timestamp(60));
  (void)grants->Insert(Tuple{"carol", "billing"}, Timestamp(80));

  Relation* suspensions =
      db.CreateRelation("suspensions",
                        Schema({{"user", ValueType::kString},
                                {"reason", ValueType::kString}}))
          .value();
  // Bob is suspended twice; the later one governs re-admission.
  (void)suspensions->Insert(Tuple{"bob", "mfa-reset"}, Timestamp(10));
  (void)suspensions->Insert(Tuple{"bob", "incident-42"}, Timestamp(25));
  (void)suspensions->Insert(Tuple{"carol", "leave"}, Timestamp(15));

  // grants ▷_{user = user} suspensions.
  auto active = AntiJoin(Base("grants"), Base("suspensions"),
                         Predicate::ColumnsEqual(0, 2));
  std::printf("access list = %s\n\n", active->ToString().c_str());

  MaterializedView::Options opts;
  opts.mode = RefreshMode::kPatchDifference;  // works for anti-join roots
  MaterializedView view(active, opts);
  (void)view.Initialize(db, Timestamp(0));
  std::printf("view lifetime: texp = %s (patched: maintenance-free)\n",
              view.texp().ToString().c_str());
  std::printf("pending re-admissions in the helper queue: %zu\n\n",
              view.pending_patches());

  for (int64_t t : {0, 12, 20, 30, 70}) {
    auto rows = view.Read(db, Timestamp(t)).MoveValue();
    std::printf("t=%-3lld access list:\n%s\n", static_cast<long long>(t),
                PrintTuples(rows, Timestamp(t)).c_str());
  }

  std::printf(
      "carol re-admitted at 15, bob at 25 (his LAST suspension), bob's\n"
      "lease itself lapses at 60 — all via patching and expiry:\n"
      "recomputations = %llu, patches applied = %llu\n",
      static_cast<unsigned long long>(view.stats().recomputations),
      static_cast<unsigned long long>(view.stats().patches_applied));
  return 0;
}
