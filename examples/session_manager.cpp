// Automatic HTTP-session management (one of the paper's flagship use
// cases: "automatic session management in HTTP servers, short-lived
// credentials and keys"). Sessions are tuples with a TTL; touching a
// session slides its expiration (re-insertion keeps the max texp);
// logout deletes eagerly; a trigger audits every timeout; and a
// minimum-cardinality constraint watches a worker pool that only time
// can violate.
//
// Build & run:  ./build/examples/session_manager

#include <cstdio>

#include "expiration/constraint.h"
#include "expiration/expiration_queue.h"
#include "relational/printer.h"

using namespace expdb;

namespace {

constexpr int64_t kSessionTtl = 30;

void Login(ExpirationManager& em, int64_t user, const char* token) {
  (void)em.InsertWithTtl("sessions", Tuple{user, token}, kSessionTtl);
  std::printf("  [t=%s] login  user=%lld token=%s (expires %s)\n",
              em.Now().ToString().c_str(), static_cast<long long>(user),
              token, (em.Now() + kSessionTtl).ToString().c_str());
}

// Sliding expiration: activity re-arms the TTL (Relation keeps max texp).
void Touch(ExpirationManager& em, int64_t user, const char* token) {
  (void)em.InsertWithTtl("sessions", Tuple{user, token}, kSessionTtl);
  std::printf("  [t=%s] touch  user=%lld (now expires %s)\n",
              em.Now().ToString().c_str(), static_cast<long long>(user),
              (em.Now() + kSessionTtl).ToString().c_str());
}

bool IsAuthenticated(const ExpirationManager& em, int64_t user,
                     const char* token) {
  return em.db()
      .GetRelation("sessions")
      .value()
      ->ContainsUnexpired(Tuple{user, token}, em.Now());
}

}  // namespace

int main() {
  std::printf("== Automatic session management ==\n\n");

  ExpirationManager em;  // eager removal: audit log is real-time
  (void)em.CreateRelation("sessions",
                          Schema({{"user", ValueType::kInt64},
                                  {"token", ValueType::kString}}));
  (void)em.CreateRelation("workers",
                          Schema({{"id", ValueType::kInt64}}));

  size_t timeouts = 0;
  em.AddTrigger([&](const ExpirationEvent& e) {
    if (e.relation != "sessions") return;
    ++timeouts;
    std::printf("  [t=%s] TIMEOUT user=%s — session reaped automatically\n",
                e.texp.ToString().c_str(),
                e.tuple.at(0).ToString().c_str());
  });

  // Heartbeat leases for a worker pool: quorum of 2 required.
  ConstraintSet constraints;
  constraints.AddMinCardinality("worker_quorum", "workers", 2);
  (void)em.Insert("workers", Tuple{100}, Timestamp(40));
  (void)em.Insert("workers", Tuple{101}, Timestamp(55));

  Login(em, 1, "tok-aaa");
  Login(em, 2, "tok-bbb");

  (void)em.AdvanceTo(Timestamp(20));
  Touch(em, 1, "tok-aaa");  // user 1 is active: now expires at 50
  std::printf("  [t=20] user 2 authenticated: %s\n",
              IsAuthenticated(em, 2, "tok-bbb") ? "yes" : "no");

  (void)em.AdvanceTo(Timestamp(35));  // user 2 timed out at 30
  std::printf("  [t=35] user 1 authenticated: %s (touched at 20)\n",
              IsAuthenticated(em, 1, "tok-aaa") ? "yes" : "no");
  std::printf("  [t=35] user 2 authenticated: %s (timed out)\n",
              IsAuthenticated(em, 2, "tok-bbb") ? "yes" : "no");

  // No code deleted user 2's session: expiration did. The paper's point —
  // "leaner application code, lower transaction volume".
  (void)em.AdvanceTo(Timestamp(45));  // worker 100's lease lapsed at 40
  auto violations = constraints.CheckCardinalities(em.db(), em.Now());
  for (const ConstraintViolation& v : violations) {
    std::printf("  [t=%s] CONSTRAINT '%s' on %s violated: %s\n",
                em.Now().ToString().c_str(), v.constraint_name.c_str(),
                v.relation.c_str(), v.detail.c_str());
  }

  (void)em.AdvanceTo(Timestamp(60));
  std::printf("\nfinal state at t=60:\n%s",
              PrintRelation(*em.db().GetRelation("sessions").value(),
                            {true, em.Now(), true, "sessions"})
                  .c_str());
  std::printf("\nsessions reaped by expiration: %zu (explicit DELETEs "
              "issued: 0)\n",
              timeouts);
  return 0;
}
