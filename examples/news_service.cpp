// The paper's motivating scenario (Sec. 2.1): a dynamic, personalised
// news service. User profiles are pairs <UID, Deg(ree of interest)>
// stored per topic; expiration times bound how long an expressed interest
// remains in effect. The engine keeps materialized views — a
// cross-topic match list and an interest histogram — in synchrony with
// the profiles purely through expiration, and uses a trigger to ask users
// to renew profiles the moment they lapse.
//
// Build & run:  ./build/examples/news_service

#include <cstdio>

#include "expiration/expiration_queue.h"
#include "relational/printer.h"
#include "view/view_manager.h"

using namespace expdb;
using namespace expdb::algebra;

int main() {
  std::printf("== Personalised news service (paper Sec. 2.1) ==\n\n");

  ExpirationManager em;  // eager: renewal prompts fire immediately
  Schema profile({{"UID", ValueType::kInt64}, {"Deg", ValueType::kInt64}});
  (void)em.CreateRelation("Pol", profile);  // politics: long-lived interest
  (void)em.CreateRelation("El", profile);   // elections: short-lived

  // Renewal prompts: fire the instant a profile lapses.
  em.AddTrigger([](const ExpirationEvent& e) {
    std::printf("  [trigger t=%s] profile %s in '%s' lapsed — asking user "
                "%s to renew\n",
                e.texp.ToString().c_str(), e.tuple.ToString().c_str(),
                e.relation.c_str(), e.tuple.at(0).ToString().c_str());
  });

  // Figure 1's data, loaded through the expiration manager.
  (void)em.Insert("Pol", Tuple{1, 25}, Timestamp(10));
  (void)em.Insert("Pol", Tuple{2, 25}, Timestamp(15));
  (void)em.Insert("Pol", Tuple{3, 35}, Timestamp(10));
  (void)em.Insert("El", Tuple{1, 75}, Timestamp(5));
  (void)em.Insert("El", Tuple{2, 85}, Timestamp(3));
  (void)em.Insert("El", Tuple{4, 90}, Timestamp(2));

  ViewManager views(&em.db());

  // View 1 (monotonic): users interested in BOTH politics and elections,
  // the join of Figure 2(e). Never needs recomputation.
  auto both = Join(Base("Pol"), Base("El"), Predicate::ColumnsEqual(0, 2));
  (void)views.CreateView("both_topics", both, {}, em.Now());

  // View 2 (non-monotonic): the Figure 3(a) histogram of politics
  // interest degrees, with contributing-set expiration.
  MaterializedView::Options agg_opts;
  agg_opts.eval.aggregate_mode = AggregateExpirationMode::kContributingSet;
  auto histogram = Project(
      Aggregate(Base("Pol"), {1}, AggregateFunction::Count()), {1, 2});
  (void)views.CreateView("pol_histogram", histogram, agg_opts, em.Now());

  // View 3 (non-monotonic, patched): users interested in politics but NOT
  // in elections — maintained by Theorem 3 patching, zero recomputation.
  MaterializedView::Options patch_opts;
  patch_opts.mode = RefreshMode::kPatchDifference;
  auto pol_only =
      Difference(Project(Base("Pol"), {0}), Project(Base("El"), {0}));
  (void)views.CreateView("pol_only", pol_only, patch_opts, em.Now());

  for (int64_t t : {0, 3, 5, 10, 15}) {
    std::printf("---- time %lld ----\n", static_cast<long long>(t));
    (void)em.AdvanceTo(Timestamp(t));
    (void)views.AdvanceAllTo(em.Now());
    for (const std::string& name :
         {std::string("both_topics"), std::string("pol_histogram"),
          std::string("pol_only")}) {
      auto rows = views.Read(name, em.Now()).MoveValue();
      std::printf("%s:\n%s", name.c_str(),
                  PrintTuples(rows, em.Now()).c_str());
    }
    std::printf("\n");
  }

  std::printf("maintenance summary:\n");
  for (const std::string& name : views.ViewNames()) {
    const MaterializedView* v = views.GetView(name).value();
    std::printf("  %-14s mode=%-16s recomputations=%llu patches=%llu\n",
                name.c_str(), RefreshModeToString(v->mode()).data(),
                static_cast<unsigned long long>(v->stats().recomputations),
                static_cast<unsigned long long>(v->stats().patches_applied));
  }
  std::printf("tuples expired and removed: %llu, renewal prompts: %llu\n",
              static_cast<unsigned long long>(em.stats().removed),
              static_cast<unsigned long long>(em.stats().triggers_fired));
  return 0;
}
