// Sensor monitoring over intermittent links (the paper's "temperature or
// location samples" use case). A field gateway holds a materialized
// per-zone average-temperature view computed from samples whose validity
// is bounded at insertion; the view ages in place while the uplink is
// down. The example contrasts the three aggregate expiration modes and
// shows Schrödinger move-backward reads ("a slightly outdated result")
// when the gateway is queried inside an invalid window.
//
// Build & run:  ./build/examples/sensor_monitor

#include <cstdio>

#include "common/rng.h"
#include "relational/printer.h"
#include "view/materialized_view.h"

using namespace expdb;
using namespace expdb::algebra;

int main() {
  std::printf("== Zone temperature monitoring ==\n\n");

  Database db;
  Relation* samples =
      db.CreateRelation("samples", Schema({{"zone", ValueType::kInt64},
                                           {"temp", ValueType::kInt64}}))
          .value();
  // Each sample is valid for a sensor-specified window.
  Rng rng(4711);
  for (int64_t zone = 0; zone < 4; ++zone) {
    for (int i = 0; i < 6; ++i) {
      (void)samples->Insert(
          Tuple{zone, 15 + rng.UniformInt(0, 14)},
          Timestamp(5 + rng.UniformInt(0, 55)));
    }
  }

  auto avg_view_expr = Project(
      Aggregate(Base("samples"), {0}, AggregateFunction::Avg(1)), {0, 2});

  // How long can the gateway serve the view without re-contacting the
  // sensors? Depends on the expiration mode.
  for (auto mode : {AggregateExpirationMode::kConservative,
                    AggregateExpirationMode::kContributingSet,
                    AggregateExpirationMode::kExact}) {
    EvalOptions opts;
    opts.aggregate_mode = mode;
    auto result = Evaluate(avg_view_expr, db, Timestamp(0), opts)
                      .MoveValue();
    std::printf("mode %-16s -> view valid until texp(e) = %s\n",
                AggregateExpirationModeToString(mode).data(),
                result.texp.ToString().c_str());
  }

  // Materialize with exact mode + Schrödinger semantics.
  MaterializedView::Options opts;
  opts.mode = RefreshMode::kSchrodinger;
  opts.move_policy = MovePolicy::kMoveBackward;
  opts.eval.aggregate_mode = AggregateExpirationMode::kExact;
  MaterializedView view(avg_view_expr, opts);
  (void)view.Initialize(db, Timestamp(0));
  std::printf("\nSchrodinger validity I(e) = %s\n\n",
              view.validity().ToString().c_str());

  std::printf("uplink goes down; gateway keeps answering:\n");
  for (int64_t t = 0; t <= 60; t += 12) {
    Timestamp served_at;
    auto rows = view.Read(db, Timestamp(t), &served_at).MoveValue();
    std::printf("query at t=%-3lld served as of t=%-3s %s:\n%s",
                static_cast<long long>(t), served_at.ToString().c_str(),
                served_at == Timestamp(t) ? "(exact)   " : "(outdated)",
                PrintTuples(rows, served_at).c_str());
  }
  std::printf(
      "\nreads: %llu, served from materialization: %llu, moved backward: "
      "%llu, recomputations: %llu\n",
      static_cast<unsigned long long>(view.stats().reads),
      static_cast<unsigned long long>(
          view.stats().reads_from_materialization),
      static_cast<unsigned long long>(view.stats().reads_moved_backward),
      static_cast<unsigned long long>(view.stats().recomputations));
  return 0;
}
