// CI observability artifact generator + conformance gate (wired into
// .github/workflows/ci.yml): runs one traced, morsel-parallel SQL query
// plus a replica sync round with the event log on, writes the trace
// (Chrome trace-event JSON, Perfetto-loadable), the Prometheus metrics
// scrape, and the structured event log as artifacts, and exits non-zero
// if any output fails its conformance checker — a regression in an
// exporter fails the build, not the dashboard. It also starts the
// embedded HTTP observability endpoint on an ephemeral port and fetches
// /metrics and /healthz over a real socket, so the wire-level surface is
// gated alongside the in-process exporters.
//
// Usage: trace_artifacts [output-dir]   (default: current directory)

#include <cstdio>
#include <fstream>
#include <string>

#include "engine/telemetry.h"
#include "obs/http_endpoint.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "obs/validate.h"
#include "replica/protocol.h"
#include "sql/session.h"

namespace {

using namespace expdb;
using namespace expdb::algebra;

bool WriteFile(const std::string& path, const std::string& contents) {
  std::ofstream f(path, std::ios::trunc);
  if (!f) return false;
  f << contents;
  f.close();
  return static_cast<bool>(f);
}

int Fail(const std::string& what) {
  std::fprintf(stderr, "FAIL: %s\n", what.c_str());
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string dir = argc > 1 ? argv[1] : ".";
  obs::TraceRecorder& rec = obs::TraceRecorder::Global();
  obs::EventLog& log = obs::EventLog::Global();
  rec.Clear();
  rec.set_enabled(true);
  log.set_enabled(true);

  // 1. A traced, morsel-parallel query through the SQL facade, with the
  //    slow-query threshold at zero so every statement also logs.
  sql::Session session;
  auto exec = [&](const std::string& stmt) {
    auto r = session.Execute(stmt);
    if (!r.ok()) {
      std::fprintf(stderr, "statement failed: %s -> %s\n", stmt.c_str(),
                   r.status().ToString().c_str());
    }
    return r.ok();
  };
  if (!exec("SET slow_query_ns = 0")) return 1;
  if (!exec("SET parallelism = 4")) return 1;
  if (!exec("CREATE TABLE readings (sensor INT, v INT)")) return 1;
  for (int chunk = 0; chunk < 8; ++chunk) {
    std::string insert = "INSERT INTO readings VALUES";
    for (int i = 0; i < 512; ++i) {
      const int row = chunk * 512 + i;
      insert += (i == 0 ? " (" : ", (") + std::to_string(row % 32) + ", " +
                std::to_string(row) + ")";
    }
    insert += " TTL " + std::to_string(100 + chunk * 50);
    if (!exec(insert)) return 1;
  }
  if (!exec("CREATE VIEW hot AS SELECT sensor FROM readings WHERE v = 7")) {
    return 1;
  }
  if (!exec("SELECT sensor, COUNT(*) FROM readings GROUP BY sensor")) return 1;
  if (!exec("ADVANCE TIME 150")) return 1;  // expire chunk 0, age the view
  if (!exec("SELECT * FROM hot")) return 1;

  // 1b. The two-tier cache pipeline: a repeated SELECT (fill + hit), a
  //     prepared statement served warm, and a patched entry after an
  //     insert — so the expdb_result_cache_* metrics and cache_patch
  //     events land in the artifacts below.
  if (!exec("SELECT v FROM readings WHERE sensor = 3")) return 1;
  if (!exec("SELECT v FROM readings WHERE sensor = 3")) return 1;  // hit
  if (!exec("PREPARE hot_sensor AS SELECT v FROM readings WHERE sensor = $1")) {
    return 1;
  }
  if (!exec("EXECUTE hot_sensor (5)")) return 1;
  if (!exec("EXECUTE hot_sensor (5)")) return 1;  // hit
  if (!exec("INSERT INTO readings VALUES (3, 4096) TTL 500")) return 1;
  if (!exec("SELECT v FROM readings WHERE sensor = 3")) return 1;  // patch

  // 1c. The live observability endpoint: one telemetry tick to populate
  //     the pressure gauges and health verdict, then fetch /metrics and
  //     /healthz over a real socket on an ephemeral port — the HTTP
  //     surface is conformance-gated the same way the in-process
  //     exporters are, and the fetched bodies become artifacts too.
  {
    engine::TelemetryService& telemetry = session.engine().telemetry();
    telemetry.SampleOnce();
    auto port = session.engine().StartHttpEndpoint(0);
    if (!port.ok()) return Fail(port.status().ToString());
    std::string error;
    auto metrics_resp =
        obs::HttpGet("127.0.0.1", port.value(), "/metrics", &error);
    if (!metrics_resp.has_value()) return Fail("GET /metrics: " + error);
    if (metrics_resp->status != 200) {
      return Fail("GET /metrics returned " +
                  std::to_string(metrics_resp->status));
    }
    if (!obs::ValidatePrometheusText(metrics_resp->body, &error)) {
      return Fail("fetched /metrics body: " + error);
    }
    if (metrics_resp->body.find("expdb_telemetry_expired_backlog") ==
        std::string::npos) {
      return Fail("/metrics is missing expdb_telemetry_expired_backlog");
    }
    if (!WriteFile(dir + "/http_metrics.prom", metrics_resp->body)) {
      return Fail("cannot write " + dir + "/http_metrics.prom");
    }
    auto healthz = obs::HttpGet("127.0.0.1", port.value(), "/healthz", &error);
    if (!healthz.has_value()) return Fail("GET /healthz: " + error);
    if (healthz->status != 200) {
      return Fail("GET /healthz returned " + std::to_string(healthz->status) +
                  ": " + healthz->body);
    }
    if (!obs::ValidateJson(healthz->body, &error)) {
      return Fail("fetched /healthz body: " + error);
    }
    if (!WriteFile(dir + "/healthz.json", healthz->body)) {
      return Fail("cannot write " + dir + "/healthz.json");
    }
    session.engine().StopHttpEndpoint();
  }

  // 2. A replica sync round so client/server fetch spans and re-fetch
  //    decision events land in the same artifacts.
  {
    Database db;
    Relation* r =
        db.CreateRelation("R", Schema({{"x", ValueType::kInt64}})).value();
    for (int i = 0; i < 64; ++i) {
      (void)r->Insert(Tuple{i}, Timestamp(1 + (i * 3) % 40));
    }
    SimulationConfig cfg;
    cfg.protocol = SyncProtocol::kExpirationAware;
    cfg.horizon = 30;
    auto report = RunSyncSimulation(db, {{"q", Base("R")}}, cfg);
    if (!report.ok()) return Fail(report.status().ToString());
  }

  rec.set_enabled(false);
  log.set_enabled(false);

  // 3. Export and self-validate each artifact.
  std::string error;

  const std::string trace_json = obs::ChromeTraceJson(rec.Snapshot());
  if (!obs::ValidateJson(trace_json, &error)) {
    return Fail("trace JSON: " + error);
  }
  if (!WriteFile(dir + "/trace.json", trace_json)) {
    return Fail("cannot write " + dir + "/trace.json");
  }

  const std::string prom = obs::MetricsRegistry::Global().PrometheusText();
  if (!obs::ValidatePrometheusText(prom, &error)) {
    return Fail("Prometheus exposition: " + error);
  }
  // The cache workload above must surface in the scrape: a conformant
  // exposition that silently lost the result-cache metrics still fails.
  for (const char* metric :
       {"expdb_result_cache_hits_total", "expdb_result_cache_misses_total",
        "expdb_result_cache_patches_total",
        "expdb_result_cache_evictions_total", "expdb_result_cache_bytes",
        "expdb_result_cache_lookup_latency_ns",
        "expdb_plan_cache_hits_total"}) {
    if (prom.find(metric) == std::string::npos) {
      return Fail(std::string("metrics.prom is missing ") + metric);
    }
  }
  if (!WriteFile(dir + "/metrics.prom", prom)) {
    return Fail("cannot write " + dir + "/metrics.prom");
  }

  const std::string events = log.JsonlText();
  if (!obs::ValidateJsonLines(events, &error)) {
    return Fail("event log JSONL: " + error);
  }
  if (!WriteFile(dir + "/events.jsonl", events)) {
    return Fail("cannot write " + dir + "/events.jsonl");
  }

  std::printf("trace_artifacts: %zu spans, %zu events -> %s/{trace.json,"
              "metrics.prom,events.jsonl,http_metrics.prom,healthz.json} "
              "(all conformance checks passed)\n",
              rec.Snapshot().size(), log.Snapshot().size(), dir.c_str());
  return 0;
}
