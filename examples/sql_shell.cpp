// ExpSQL shell: an interactive (or piped) REPL over an embedded ExpDB
// session. Statements end with ';'. When stdin is exhausted without any
// input (e.g. launched with no script), a self-contained demo runs the
// paper's running example.
//
//   ./build/examples/sql_shell                # demo, then exit
//   ./build/examples/sql_shell < script.sql   # run a script
//   echo "SHOW TABLES;" | ./build/examples/sql_shell

#include <cstdio>
#include <iostream>
#include <string>

#include "sql/session.h"

using namespace expdb;
using namespace expdb::sql;

namespace {

const char* kDemoScript = R"sql(
CREATE TABLE pol (uid INT, deg INT);
CREATE TABLE el  (uid INT, deg INT);
INSERT INTO pol VALUES (1, 25) EXPIRE AT 10;
INSERT INTO pol VALUES (2, 25) EXPIRE AT 15;
INSERT INTO pol VALUES (3, 35) EXPIRE AT 10;
INSERT INTO el VALUES (1, 75) EXPIRE AT 5;
INSERT INTO el VALUES (2, 85) EXPIRE AT 3;
INSERT INTO el VALUES (4, 90) EXPIRE AT 2;
CREATE VIEW both_topics AS
  SELECT pol.uid, pol.deg, el.deg FROM pol, el WHERE pol.uid = el.uid;
CREATE VIEW pol_only WITH (mode = patch) AS
  SELECT uid FROM pol EXCEPT SELECT uid FROM el;
SELECT * FROM both_topics;
SELECT deg, COUNT(*) FROM pol GROUP BY deg;
ADVANCE TIME 3;
SELECT * FROM pol_only;
ADVANCE TIME 2;
SELECT * FROM pol_only;
SHOW VIEWS;
SHOW TIME;
)sql";

void RunStatement(Session& session, const std::string& text) {
  auto result = session.Execute(text);
  if (result.ok()) {
    std::fputs(FormatExecResult(*result).c_str(), stdout);
  } else {
    std::printf("error: %s\n", result.status().ToString().c_str());
  }
}

}  // namespace

int main() {
  Session session;
  std::string buffer;
  std::string line;
  bool saw_input = false;

  std::printf("ExpSQL shell — statements end with ';' (Ctrl-D to exit)\n");
  while (std::getline(std::cin, line)) {
    saw_input = true;
    buffer += line + "\n";
    // Execute every complete statement in the buffer.
    size_t pos;
    while ((pos = buffer.find(';')) != std::string::npos) {
      std::string stmt = buffer.substr(0, pos);
      buffer.erase(0, pos + 1);
      if (stmt.find_first_not_of(" \t\r\n") == std::string::npos) continue;
      RunStatement(session, stmt);
    }
  }
  if (!buffer.empty() &&
      buffer.find_first_not_of(" \t\r\n") != std::string::npos) {
    RunStatement(session, buffer);
  }

  if (!saw_input) {
    std::printf("\n(no input — running the built-in paper demo)\n\n");
    auto results = session.ExecuteScript(kDemoScript);
    if (!results.ok()) {
      std::printf("demo error: %s\n", results.status().ToString().c_str());
      return 1;
    }
    for (const ExecResult& r : *results) {
      std::fputs(FormatExecResult(r).c_str(), stdout);
    }
  }
  return 0;
}
