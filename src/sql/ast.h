// Parsed representation of ExpSQL statements.
//
// ExpSQL is the paper's "incorporate expiration into the SQL framework"
// future-work item: a compact SQL dialect whose only expiration-specific
// surface is on INSERT (EXPIRE AT t / TTL n / EXPIRE NEVER) and on time
// control (ADVANCE TIME) — queries are entirely expiration-transparent,
// as the paper mandates.

#ifndef EXPDB_SQL_AST_H_
#define EXPDB_SQL_AST_H_

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <variant>
#include <vector>

#include "common/timestamp.h"
#include "common/value.h"
#include "core/aggregate.h"
#include "core/predicate.h"
#include "relational/schema.h"

namespace expdb {
namespace sql {

/// \brief A possibly table-qualified column name.
struct ColumnRef {
  std::string table;  ///< empty when unqualified
  std::string column;

  std::string ToString() const {
    return table.empty() ? column : table + "." + column;
  }
};

/// \brief One side of a comparison in WHERE: a column, a literal
/// constant, or a statement parameter ($n, 1-based in the SQL text,
/// 0-based here) supplied by PREPARE/EXECUTE or literal normalization.
struct ScalarOperand {
  bool is_column = false;
  bool is_parameter = false;
  ColumnRef column;
  Value constant;
  size_t parameter_index = 0;  ///< is_parameter only
};

/// \brief Boolean expression tree of a WHERE clause.
struct BoolExpr;
using BoolExprPtr = std::shared_ptr<BoolExpr>;

struct BoolExpr {
  enum class Kind { kCompare, kAnd, kOr, kNot };
  Kind kind = Kind::kCompare;
  // kCompare
  ScalarOperand lhs;
  ComparisonOp op = ComparisonOp::kEq;
  ScalarOperand rhs;
  // kAnd / kOr / kNot (kNot uses only `left`)
  BoolExprPtr left;
  BoolExprPtr right;
};

/// \brief One item of a SELECT list.
struct SelectItem {
  enum class Kind { kStar, kColumn, kAggregate };
  Kind kind = Kind::kStar;
  ColumnRef column;  ///< kColumn, or the aggregate's argument
  AggregateKind aggregate = AggregateKind::kCount;  ///< kAggregate
  bool aggregate_star = false;                      ///< COUNT(*)
  std::string alias;                                ///< AS name (optional)
};

/// \brief A FROM item: a base table, view, or aliased table.
struct TableRef {
  std::string name;
  std::string alias;  ///< empty = use `name`

  const std::string& EffectiveName() const {
    return alias.empty() ? name : alias;
  }
};

/// \brief SELECT ... [set-op SELECT ...].
struct SelectStatement {
  bool distinct = false;
  std::vector<SelectItem> items;
  std::vector<TableRef> from;
  BoolExprPtr where;                  ///< null = none
  std::vector<ColumnRef> group_by;

  enum class SetOp { kNone, kUnion, kIntersect, kExcept };
  SetOp set_op = SetOp::kNone;
  std::shared_ptr<SelectStatement> set_rhs;  ///< non-null iff set_op != kNone
};

struct CreateTableStatement {
  std::string name;
  std::vector<Attribute> columns;
};

/// INSERT INTO t VALUES (...), (...) [EXPIRE AT n | TTL n | EXPIRE NEVER].
struct InsertStatement {
  std::string table;
  std::vector<std::vector<Value>> rows;
  std::optional<int64_t> ttl;            ///< relative lifetime
  std::optional<Timestamp> expire_at;    ///< absolute expiration
};

/// CREATE [MATERIALIZED] VIEW v [WITH (key = value, ...)] AS SELECT ...
/// Options: mode = eager|lazy|schrodinger|patch, move = recompute|
/// backward|forward, agg = conservative|contributing|exact.
struct CreateViewStatement {
  std::string name;
  bool materialized = true;
  std::map<std::string, std::string> options;
  SelectStatement select;
};

struct DropStatement {
  bool is_view = false;
  std::string name;
};

/// ADVANCE TIME n (relative) or ADVANCE TIME TO n (absolute).
struct AdvanceStatement {
  int64_t amount = 0;
  bool absolute = false;
};

struct ShowStatement {
  enum class What { kTables, kViews, kTime, kHealth };
  What what = What::kTables;
};

struct DeleteStatement {
  std::string table;
  BoolExprPtr where;  ///< null = delete all
};

/// STATS [PROMETHEUS | JSON | RESET] and EXPLAIN STATS: the observability
/// meta-command (docs/OBSERVABILITY.md). STATS renders the process-wide
/// metrics snapshot as a relation; PROMETHEUS/JSON return the exporter
/// text instead; RESET zeroes every metric; EXPLAIN STATS appends the
/// most recent trace spans.
struct StatsStatement {
  enum class Format { kTable, kPrometheus, kJson };
  Format format = Format::kTable;
  bool explain = false;  ///< EXPLAIN STATS: include recent trace spans
  bool reset = false;    ///< STATS RESET: zero all metrics
};

/// EXPLAIN [PLAN] SELECT ... renders the optimized physical plan without
/// executing it; EXPLAIN ANALYZE SELECT ... executes the query and
/// annotates each plan node with observed row counts, wall time, and call
/// counts (fed from the node-id-tagged obs:: spans).
struct ExplainStatement {
  enum class What { kPlan, kAnalyze };
  What what = What::kPlan;
  SelectStatement select;
};

/// SET <name> = <value>: session observability/runtime knobs
/// (slow_query_ns, parallelism, event_log, event_log_path — see
/// docs/SQL.md). The value is an integer, double, string, or bare word.
struct SetStatement {
  std::string name;  ///< lower-cased setting name
  Value value;
};

/// TRACE ON | OFF | SHOW | EXPORT '<file>': controls the process-wide
/// span recorder; SHOW renders the most recent completed trace as a
/// tree; EXPORT writes every retained span as Chrome trace-event JSON.
struct TraceStatement {
  enum class What { kOn, kOff, kShow, kExport };
  What what = What::kShow;
  std::string path;  ///< kExport only
};

/// PREPARE name AS SELECT ...: plans the (possibly $n-parameterized)
/// statement once; later EXECUTEs bind arguments into the cached skeleton.
struct PrepareStatement {
  std::string name;
  SelectStatement select;
};

/// EXECUTE name [(arg, ...)]: runs a prepared statement with literal
/// argument values bound to its $1..$n parameters.
struct ExecutePreparedStatement {
  std::string name;
  std::vector<Value> args;
};

/// CACHE STATS | CLEAR: the two-tier statement/result cache meta-command
/// (docs/SQL.md). STATS renders hit/miss/patch/eviction counts and byte
/// usage; CLEAR drops both tiers (prepared statements survive).
struct CacheStatement {
  enum class What { kStats, kClear };
  What what = What::kStats;
};

/// MAINTENANCE STATUS | PAUSE | RESUME | RUN: controls the engine's
/// background maintenance service (docs/CONCURRENCY.md). STATUS reports
/// the thread state and counters; PAUSE/RESUME gate the cadence; RUN
/// executes one synchronous pass on the calling session's thread.
struct MaintenanceStatement {
  enum class What { kStatus, kPause, kResume, kRun };
  What what = What::kStatus;
};

/// MONITOR STATUS | HISTORY <metric> | THRESHOLDS: the telemetry
/// meta-command (docs/OBSERVABILITY.md §9). STATUS reports the sampler
/// state, health verdict, event-log sink state, and active metrics;
/// HISTORY renders one metric's time-series ring as a relation;
/// THRESHOLDS lists the health model's rules.
struct MonitorStatement {
  enum class What { kStatus, kHistory, kThresholds };
  What what = What::kStatus;
  std::string metric;  ///< kHistory only
};

/// \brief Any parsed statement.
using Statement =
    std::variant<SelectStatement, CreateTableStatement, InsertStatement,
                 CreateViewStatement, DropStatement, AdvanceStatement,
                 ShowStatement, DeleteStatement, StatsStatement,
                 ExplainStatement, SetStatement, TraceStatement,
                 PrepareStatement, ExecutePreparedStatement, CacheStatement,
                 MaintenanceStatement, MonitorStatement>;

}  // namespace sql
}  // namespace expdb

#endif  // EXPDB_SQL_AST_H_
