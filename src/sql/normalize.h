// Statement normalization for the two-tier cache (docs/PERFORMANCE.md §7):
// literal-parameterization plus canonical fingerprinting, so `WHERE id = 7`
// and `WHERE id = 9` resolve to one plan skeleton with one parameter slot.

#ifndef EXPDB_SQL_NORMALIZE_H_
#define EXPDB_SQL_NORMALIZE_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "common/value.h"
#include "sql/ast.h"

namespace expdb {
namespace sql {

/// \brief A literal-parameterized statement plus its extracted arguments.
struct NormalizedSelect {
  /// The statement with every WHERE literal replaced by a $n parameter.
  SelectStatement select;
  /// The extracted literals, in parameter order.
  std::vector<Value> args;
  /// Canonical fingerprint of `select` (type-tagged parameter slots, so
  /// `x = 7` and `x = 'abc'` get distinct plan skeletons).
  std::string fingerprint;
};

/// \brief True iff the statement references a $n parameter anywhere
/// (including set-operation branches).
bool SelectHasParameters(const SelectStatement& stmt);

/// \brief Normalizes a literal SELECT: extracts every WHERE constant into
/// an argument slot and fingerprints the residual skeleton. Fails on
/// statements that already contain explicit $n parameters (those flow
/// through PREPARE, not normalization).
Result<NormalizedSelect> NormalizeSelect(const SelectStatement& stmt);

/// \brief Canonical fingerprint of a (possibly $n-parameterized)
/// statement: a whitespace-free rendering covering the select list
/// (aliases included), FROM, WHERE, GROUP BY, and set operations.
/// Explicit parameters render distinctly from normalized literal slots.
std::string FingerprintSelect(const SelectStatement& stmt);

}  // namespace sql
}  // namespace expdb

#endif  // EXPDB_SQL_NORMALIZE_H_
