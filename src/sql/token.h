// Tokens of the ExpSQL surface language.

#ifndef EXPDB_SQL_TOKEN_H_
#define EXPDB_SQL_TOKEN_H_

#include <cstdint>
#include <string>
#include <string_view>

namespace expdb {
namespace sql {

enum class TokenType {
  kEnd,         // end of input
  kIdentifier,  // bare identifier (case preserved)
  kKeyword,     // recognized keyword (normalized upper-case in `text`)
  kInteger,     // integer literal
  kDouble,      // floating literal
  kString,      // 'quoted' string literal (quotes stripped)
  kSymbol,      // punctuation / operator, in `text`: ( ) , ; . * = != < <= > >=
};

std::string_view TokenTypeToString(TokenType type);

/// \brief One lexed token with its source position (1-based column).
struct Token {
  TokenType type = TokenType::kEnd;
  std::string text;      // normalized text (keywords upper-cased)
  int64_t int_value = 0; // kInteger
  double double_value = 0.0;  // kDouble
  size_t position = 0;   // byte offset in the statement, for diagnostics

  bool IsKeyword(std::string_view kw) const {
    return type == TokenType::kKeyword && text == kw;
  }
  bool IsSymbol(std::string_view s) const {
    return type == TokenType::kSymbol && text == s;
  }

  std::string ToString() const;
};

}  // namespace sql
}  // namespace expdb

#endif  // EXPDB_SQL_TOKEN_H_
