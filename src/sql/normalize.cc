#include "sql/normalize.h"

#include <functional>
#include <utility>

#include "core/aggregate.h"

namespace expdb {
namespace sql {

namespace {

bool BoolHasParameters(const BoolExpr* e) {
  if (e == nullptr) return false;
  switch (e->kind) {
    case BoolExpr::Kind::kCompare:
      return e->lhs.is_parameter || e->rhs.is_parameter;
    case BoolExpr::Kind::kAnd:
    case BoolExpr::Kind::kOr:
      return BoolHasParameters(e->left.get()) ||
             BoolHasParameters(e->right.get());
    case BoolExpr::Kind::kNot:
      return BoolHasParameters(e->left.get());
  }
  return false;
}

/// Deep-copies a WHERE tree, turning every literal operand into the next
/// parameter slot and appending its value to `args`.
BoolExprPtr ParameterizeBool(const BoolExpr* e, std::vector<Value>* args) {
  if (e == nullptr) return nullptr;
  auto copy = std::make_shared<BoolExpr>(*e);
  switch (e->kind) {
    case BoolExpr::Kind::kCompare: {
      auto parameterize = [&](ScalarOperand* o) {
        if (o->is_column || o->is_parameter) return;
        o->is_parameter = true;
        o->parameter_index = args->size();
        args->push_back(std::move(o->constant));
        o->constant = Value();
      };
      parameterize(&copy->lhs);
      parameterize(&copy->rhs);
      break;
    }
    case BoolExpr::Kind::kAnd:
    case BoolExpr::Kind::kOr:
      copy->left = ParameterizeBool(e->left.get(), args);
      copy->right = ParameterizeBool(e->right.get(), args);
      break;
    case BoolExpr::Kind::kNot:
      copy->left = ParameterizeBool(e->left.get(), args);
      break;
  }
  return copy;
}

char TypeTag(ValueType type) {
  switch (type) {
    case ValueType::kNull:
      return 'n';
    case ValueType::kInt64:
      return 'i';
    case ValueType::kDouble:
      return 'd';
    case ValueType::kString:
      return 's';
  }
  return '?';
}

/// `type_of` maps a normalized slot back to its literal's type tag;
/// explicit ($n in the source text) parameters have no recorded type and
/// render with the distinct 'p' tag.
void RenderOperand(const ScalarOperand& o, const std::vector<Value>* args,
                   std::string* out) {
  if (o.is_column) {
    *out += "c:" + o.column.ToString();
    return;
  }
  if (o.is_parameter) {
    const char tag = (args != nullptr && o.parameter_index < args->size())
                         ? TypeTag((*args)[o.parameter_index].type())
                         : 'p';
    *out += "?";
    *out += tag;
    *out += std::to_string(o.parameter_index);
    return;
  }
  // Residual literal (fingerprinting a non-normalized statement): render
  // the value itself, type-tagged.
  *out += "l";
  *out += TypeTag(o.constant.type());
  *out += ":" + o.constant.ToString();
}

void RenderBool(const BoolExpr* e, const std::vector<Value>* args,
                std::string* out) {
  if (e == nullptr) return;
  switch (e->kind) {
    case BoolExpr::Kind::kCompare:
      *out += "(";
      RenderOperand(e->lhs, args, out);
      *out += ComparisonOpToString(e->op);
      RenderOperand(e->rhs, args, out);
      *out += ")";
      break;
    case BoolExpr::Kind::kAnd:
    case BoolExpr::Kind::kOr:
      *out += e->kind == BoolExpr::Kind::kAnd ? "(and " : "(or ";
      RenderBool(e->left.get(), args, out);
      *out += " ";
      RenderBool(e->right.get(), args, out);
      *out += ")";
      break;
    case BoolExpr::Kind::kNot:
      *out += "(not ";
      RenderBool(e->left.get(), args, out);
      *out += ")";
      break;
  }
}

void RenderSelect(const SelectStatement& stmt, const std::vector<Value>* args,
                  std::string* out) {
  *out += stmt.distinct ? "SELECT DISTINCT " : "SELECT ";
  for (size_t i = 0; i < stmt.items.size(); ++i) {
    if (i > 0) *out += ",";
    const SelectItem& item = stmt.items[i];
    switch (item.kind) {
      case SelectItem::Kind::kStar:
        *out += "*";
        break;
      case SelectItem::Kind::kColumn:
        *out += item.column.ToString();
        break;
      case SelectItem::Kind::kAggregate:
        *out += AggregateKindToString(item.aggregate);
        *out += "(";
        *out += item.aggregate_star ? "*" : item.column.ToString();
        *out += ")";
        break;
    }
    // Aliases shape the output column names, which are cached with the
    // plan skeleton — they must participate in the key.
    if (!item.alias.empty()) *out += "|" + item.alias;
  }
  *out += " FROM ";
  for (size_t i = 0; i < stmt.from.size(); ++i) {
    if (i > 0) *out += ",";
    *out += stmt.from[i].name;
    if (!stmt.from[i].alias.empty()) *out += "|" + stmt.from[i].alias;
  }
  if (stmt.where != nullptr) {
    *out += " WHERE ";
    RenderBool(stmt.where.get(), args, out);
  }
  if (!stmt.group_by.empty()) {
    *out += " GROUP BY ";
    for (size_t i = 0; i < stmt.group_by.size(); ++i) {
      if (i > 0) *out += ",";
      *out += stmt.group_by[i].ToString();
    }
  }
  if (stmt.set_op != SelectStatement::SetOp::kNone &&
      stmt.set_rhs != nullptr) {
    switch (stmt.set_op) {
      case SelectStatement::SetOp::kUnion:
        *out += " UNION ";
        break;
      case SelectStatement::SetOp::kIntersect:
        *out += " INTERSECT ";
        break;
      case SelectStatement::SetOp::kExcept:
        *out += " EXCEPT ";
        break;
      case SelectStatement::SetOp::kNone:
        break;
    }
    RenderSelect(*stmt.set_rhs, args, out);
  }
}

}  // namespace

bool SelectHasParameters(const SelectStatement& stmt) {
  if (BoolHasParameters(stmt.where.get())) return true;
  return stmt.set_rhs != nullptr && SelectHasParameters(*stmt.set_rhs);
}

Result<NormalizedSelect> NormalizeSelect(const SelectStatement& stmt) {
  if (SelectHasParameters(stmt)) {
    return Status::InvalidArgument(
        "$n parameters are only valid in PREPARE ... AS SELECT");
  }
  NormalizedSelect out;
  // Shallow copy, then rebuild each WHERE tree (set-op branches included)
  // with literals hoisted into the shared argument vector.
  std::function<SelectStatement(const SelectStatement&)> normalize =
      [&](const SelectStatement& s) {
        SelectStatement copy = s;
        copy.where = ParameterizeBool(s.where.get(), &out.args);
        if (s.set_rhs != nullptr) {
          copy.set_rhs =
              std::make_shared<SelectStatement>(normalize(*s.set_rhs));
        }
        return copy;
      };
  out.select = normalize(stmt);
  std::string fp;
  RenderSelect(out.select, &out.args, &fp);
  out.fingerprint = std::move(fp);
  return out;
}

std::string FingerprintSelect(const SelectStatement& stmt) {
  std::string fp;
  RenderSelect(stmt, /*args=*/nullptr, &fp);
  return fp;
}

}  // namespace sql
}  // namespace expdb
