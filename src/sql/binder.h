// Binder: lowers a parsed SELECT into an expiration-time algebra
// expression against a database's schemas.

#ifndef EXPDB_SQL_BINDER_H_
#define EXPDB_SQL_BINDER_H_

#include <string>
#include <vector>

#include "core/expression.h"
#include "relational/database.h"
#include "sql/ast.h"

namespace expdb {
namespace sql {

/// \brief A bound SELECT: the algebra expression plus the output column
/// names (AS aliases applied).
struct BoundSelect {
  ExpressionPtr expr;
  std::vector<std::string> column_names;
};

/// \brief Binds `select` against the base relations of `db`.
///
/// Lowering rules:
///  * FROM a, b [WHERE p] with two tables becomes a ⋈exp_p b (the
///    evaluator picks a hash join for equality conjuncts); other shapes
///    become product chains with a σexp on top.
///  * GROUP BY k, aggregates become chained aggexp nodes followed by a
///    πexp onto the grouping and aggregate columns — exactly the paper's
///    Figure 3(a) shape.
///  * DISTINCT is a no-op: the algebra has set semantics throughout.
Result<BoundSelect> BindSelect(const SelectStatement& select,
                               const Database& db);

/// \brief Lowers a WHERE tree to a core Predicate over `schema`, given the
/// FROM tables that produced it (for qualified-name resolution).
Result<Predicate> BindWhere(const BoolExpr& expr,
                            const std::vector<TableRef>& from,
                            const Database& db);

}  // namespace sql
}  // namespace expdb

#endif  // EXPDB_SQL_BINDER_H_
