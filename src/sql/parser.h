// Recursive-descent parser for ExpSQL.

#ifndef EXPDB_SQL_PARSER_H_
#define EXPDB_SQL_PARSER_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "sql/ast.h"

namespace expdb {
namespace sql {

/// \brief Parses a single statement (optionally ';'-terminated).
Result<Statement> ParseStatement(const std::string& input);

/// \brief Splits a script on top-level ';' and parses each statement.
/// Empty statements are skipped.
Result<std::vector<Statement>> ParseScript(const std::string& input);

}  // namespace sql
}  // namespace expdb

#endif  // EXPDB_SQL_PARSER_H_
