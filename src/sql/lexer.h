// Lexer: turns ExpSQL text into a token stream.

#ifndef EXPDB_SQL_LEXER_H_
#define EXPDB_SQL_LEXER_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "sql/token.h"

namespace expdb {
namespace sql {

/// \brief Tokenizes a statement. The returned vector always ends with a
/// kEnd token. Keywords are case-insensitive and normalized to upper case;
/// identifiers keep their case. `--` starts a comment to end of line.
Result<std::vector<Token>> Lex(const std::string& input);

/// \brief True iff `word` (upper-cased) is a reserved ExpSQL keyword.
bool IsReservedKeyword(const std::string& upper);

}  // namespace sql
}  // namespace expdb

#endif  // EXPDB_SQL_LEXER_H_
