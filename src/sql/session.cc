#include "sql/session.h"

#include <algorithm>
#include <set>
#include <unordered_set>

#include <fstream>

#include "common/str_util.h"
#include "core/rewrite.h"
#include "engine/maintenance.h"
#include "engine/telemetry.h"
#include "obs/log.h"
#include "obs/trace.h"
#include "plan/delta.h"
#include "plan/executor.h"
#include "plan/planner.h"
#include "relational/printer.h"
#include "sql/binder.h"
#include "sql/normalize.h"
#include "sql/parser.h"

namespace expdb {
namespace sql {

namespace {

// Attribute names in a relation must be unique; disambiguate SQL output
// names (e.g. two count(*) columns) with ".2", ".3", ...
std::vector<std::string> UniquifyNames(std::vector<std::string> names) {
  std::unordered_set<std::string> seen;
  for (std::string& name : names) {
    std::string candidate = name;
    int suffix = 2;
    while (!seen.insert(candidate).second) {
      candidate = name + "." + std::to_string(suffix++);
    }
    name = candidate;
  }
  return names;
}

Result<MaterializedView::Options> ViewOptionsFrom(
    const std::map<std::string, std::string>& options,
    const EvalOptions& base_eval) {
  MaterializedView::Options out;
  out.eval = base_eval;
  for (const auto& [key, value] : options) {
    if (key == "mode") {
      if (value == "eager") {
        out.mode = RefreshMode::kEagerRecompute;
      } else if (value == "lazy") {
        out.mode = RefreshMode::kLazyRecompute;
      } else if (value == "schrodinger") {
        out.mode = RefreshMode::kSchrodinger;
      } else if (value == "patch") {
        out.mode = RefreshMode::kPatchDifference;
      } else {
        return Status::InvalidArgument(
            "unknown view mode '" + value +
            "' (expected eager, lazy, schrodinger, patch)");
      }
    } else if (key == "move") {
      if (value == "recompute") {
        out.move_policy = MovePolicy::kRecompute;
      } else if (value == "backward") {
        out.move_policy = MovePolicy::kMoveBackward;
      } else if (value == "forward") {
        out.move_policy = MovePolicy::kMoveForward;
      } else {
        return Status::InvalidArgument(
            "unknown move policy '" + value +
            "' (expected recompute, backward, forward)");
      }
    } else if (key == "agg") {
      if (value == "conservative") {
        out.eval.aggregate_mode = AggregateExpirationMode::kConservative;
      } else if (value == "contributing") {
        out.eval.aggregate_mode = AggregateExpirationMode::kContributingSet;
      } else if (value == "exact") {
        out.eval.aggregate_mode = AggregateExpirationMode::kExact;
      } else {
        return Status::InvalidArgument(
            "unknown aggregate mode '" + value +
            "' (expected conservative, contributing, exact)");
      }
    } else if (key == "tolerance") {
      auto eps = ParseDouble(value);
      if (!eps.has_value() || *eps < 0) {
        return Status::InvalidArgument(
            "tolerance must be a non-negative number, got '" + value + "'");
      }
      out.eval.aggregate_tolerance = *eps;
    } else {
      return Status::InvalidArgument("unknown view option '" + key + "'");
    }
  }
  return out;
}

}  // namespace

std::string FormatExecResult(const ExecResult& result) {
  if (!result.relation.has_value()) return result.message + "\n";
  PrintOptions opts;
  opts.at = result.served_at;
  opts.filter_expired = true;
  std::string out = PrintRelation(*result.relation, opts);
  const size_t rows = result.relation->CountUnexpiredAt(result.served_at);
  out += "(" + std::to_string(rows) + (rows == 1 ? " row" : " rows") +
         " at time " + result.served_at.ToString() + ")\n";
  return out;
}

Session::Session(Options options)
    : Session(std::make_shared<engine::Engine>(
                  engine::EngineOptions{options.expiration}),
              options) {}

Session::Session(std::shared_ptr<engine::Engine> engine)
    : Session(std::move(engine), Options{}) {}

Session::Session(std::shared_ptr<engine::Engine> engine, Options options)
    : engine_(std::move(engine)),
      eval_options_(options.eval),
      rewrite_views_(options.rewrite_views) {
  obs::MetricsRegistry& r = obs::MetricsRegistry::Global();
  statements_metric_ = r.GetCounter("expdb_sql_statements_total");
  errors_metric_ = r.GetCounter("expdb_sql_errors_total");
  slow_queries_metric_ = r.GetCounter("expdb_sql_slow_queries_total");
  statement_latency_ = r.GetHistogram("expdb_sql_statement_latency_ns");
  // A session is an interactive endpoint: keep the span ring buffer warm
  // so EXPLAIN STATS has recent spans to show. (Bounded cost — the
  // recorder is a fixed-size ring; see docs/OBSERVABILITY.md.)
  obs::TraceRecorder::Global().set_enabled(true);
}

Result<ExecResult> Session::ExecuteCounted(const Statement& stmt) {
  obs::ScopedSpan span("sql.statement", statement_latency_);
  statements_metric_->Increment();
  Result<ExecResult> r = ExecuteStatement(stmt);
  if (!r.ok()) errors_metric_->Increment();
  if (slow_query_threshold_ns_ >= 0) {
    const int64_t elapsed = span.ElapsedNs();
    if (elapsed >= slow_query_threshold_ns_) {
      slow_queries_metric_->Increment();
      obs::EventLog& log = obs::EventLog::Global();
      if (log.enabled()) {
        log.Emit(obs::LogSeverity::kWarn, "sql", "slow_query",
                 {{"elapsed_ns", std::to_string(elapsed)},
                  {"threshold_ns", std::to_string(slow_query_threshold_ns_)},
                  {"status", r.ok() ? "ok" : "error"}});
      }
    }
  }
  return r;
}

Result<ExecResult> Session::Execute(const std::string& statement) {
  auto parsed = ParseStatement(statement);
  if (!parsed.ok()) {
    statements_metric_->Increment();
    errors_metric_->Increment();
    return parsed.status();
  }
  return ExecuteCounted(parsed.value());
}

Result<std::vector<ExecResult>> Session::ExecuteScript(
    const std::string& script) {
  auto parsed = ParseScript(script);
  if (!parsed.ok()) {
    statements_metric_->Increment();
    errors_metric_->Increment();
    return parsed.status();
  }
  std::vector<ExecResult> out;
  out.reserve(parsed.value().size());
  for (const Statement& stmt : parsed.value()) {
    EXPDB_ASSIGN_OR_RETURN(ExecResult r, ExecuteCounted(stmt));
    out.push_back(std::move(r));
  }
  return out;
}

Result<ExecResult> Session::ExecuteStatement(const Statement& stmt) {
  return std::visit(
      [this](const auto& s) -> Result<ExecResult> {
        using T = std::decay_t<decltype(s)>;
        if constexpr (std::is_same_v<T, SelectStatement>) {
          return ExecuteSelect(s);
        } else if constexpr (std::is_same_v<T, CreateTableStatement>) {
          return ExecuteCreateTable(s);
        } else if constexpr (std::is_same_v<T, InsertStatement>) {
          return ExecuteInsert(s);
        } else if constexpr (std::is_same_v<T, CreateViewStatement>) {
          return ExecuteCreateView(s);
        } else if constexpr (std::is_same_v<T, DropStatement>) {
          return ExecuteDrop(s);
        } else if constexpr (std::is_same_v<T, AdvanceStatement>) {
          return ExecuteAdvance(s);
        } else if constexpr (std::is_same_v<T, ShowStatement>) {
          return ExecuteShow(s);
        } else if constexpr (std::is_same_v<T, DeleteStatement>) {
          return ExecuteDelete(s);
        } else if constexpr (std::is_same_v<T, StatsStatement>) {
          return ExecuteStats(s);
        } else if constexpr (std::is_same_v<T, SetStatement>) {
          return ExecuteSet(s);
        } else if constexpr (std::is_same_v<T, TraceStatement>) {
          return ExecuteTrace(s);
        } else if constexpr (std::is_same_v<T, PrepareStatement>) {
          return ExecutePrepare(s);
        } else if constexpr (std::is_same_v<T, ExecutePreparedStatement>) {
          return ExecuteRunPrepared(s);
        } else if constexpr (std::is_same_v<T, CacheStatement>) {
          return ExecuteCache(s);
        } else if constexpr (std::is_same_v<T, MaintenanceStatement>) {
          return ExecuteMaintenance(s);
        } else if constexpr (std::is_same_v<T, MonitorStatement>) {
          return ExecuteMonitor(s);
        } else {
          return ExecuteExplain(s);
        }
      },
      stmt);
}

namespace {

// Collects every FROM table name across a set-operation tree.
void CollectFromNames(const SelectStatement& stmt,
                      std::set<std::string>* out) {
  for (const TableRef& ref : stmt.from) out->insert(ref.name);
  if (stmt.set_rhs != nullptr) CollectFromNames(*stmt.set_rhs, out);
}

}  // namespace

Result<ExecResult> Session::ExecuteSelect(const SelectStatement& stmt) {
  // View-or-base classification runs before any lock is taken; a DDL
  // statement racing in between can at worst turn the execution below
  // into a clean NotFound/bind error (never a torn read — the locks are
  // held across all data access).
  ViewManager& views = engine_->views();

  // Fast path for the canonical view read, preserving Schrödinger
  // served-at semantics: SELECT * FROM v. View reads run under the
  // engine's exclusive lock: maintenance may rewrite the materialization
  // in place.
  if (stmt.from.size() == 1 && views.HasView(stmt.from[0].name) &&
      stmt.items.size() == 1 &&
      stmt.items[0].kind == SelectItem::Kind::kStar &&
      stmt.where == nullptr && stmt.group_by.empty() &&
      stmt.set_op == SelectStatement::SetOp::kNone) {
    engine::Engine::ExclusiveGuard guard = engine_->LockExclusive();
    const Timestamp now = Now();
    ExecResult out;
    out.served_at = now;
    EXPDB_ASSIGN_OR_RETURN(
        Relation rel, views.Read(stmt.from[0].name, now, &out.served_at));
    auto names = engine_->GetViewColumns(stmt.from[0].name);
    if (names.has_value()) {
      EXPDB_RETURN_NOT_OK(rel.RenameAttributes(UniquifyNames(*names)));
    }
    out.relation = std::move(rel);
    out.message = "view " + stmt.from[0].name;
    return out;
  }

  std::set<std::string> from_names;
  CollectFromNames(stmt, &from_names);
  bool any_view = false;
  for (const std::string& name : from_names) {
    if (views.HasView(name)) any_view = true;
  }

  // Cached pipeline for base-table-only statements: open a read snapshot
  // over the FROM relations (concurrent writers to them block; writers to
  // other relations and other readers proceed), then normalize the
  // literals away, reuse (or plan once) the skeleton, and try the result
  // cache. Views bind against a point-in-time scratch catalog whose
  // contents a delta cursor cannot track, so they take the uncached path
  // below.
  if (!any_view) {
    engine::Engine::Snapshot snap = engine_->OpenSnapshot(from_names);
    const Timestamp now = Now();
    EXPDB_ASSIGN_OR_RETURN(NormalizedSelect norm, NormalizeSelect(stmt));
    std::optional<plan::PreparedPlan> skeleton =
        engine_->stmt_cache().Lookup(norm.fingerprint);
    if (!skeleton.has_value()) {
      plan::PreparedPlan fresh;
      EXPDB_ASSIGN_OR_RETURN(BoundSelect bound,
                             BindSelect(norm.select, db()));
      EXPDB_ASSIGN_OR_RETURN(
          fresh.plan,
          plan::Planner::Plan(bound.expr, db(), MakePlannerOptions()));
      fresh.param_count = norm.args.size();
      fresh.fingerprint = norm.fingerprint;
      fresh.column_names = std::move(bound.column_names);
      engine_->stmt_cache().Insert(norm.fingerprint, fresh);
      skeleton = std::move(fresh);
    }
    return ExecutePlannedSelect(*skeleton, norm.args, now);
  }

  // Uncached path: bind against a scratch catalog holding the referenced
  // views' current contents. Exclusive — view reads can rewrite
  // materializations.
  engine::Engine::ExclusiveGuard guard = engine_->LockExclusive();
  const Timestamp now = Now();
  Database scratch;
  EXPDB_ASSIGN_OR_RETURN(const Database* bind_db,
                         ResolveCatalog(stmt, now, &scratch));
  EXPDB_ASSIGN_OR_RETURN(BoundSelect bound, BindSelect(stmt, *bind_db));
  EXPDB_ASSIGN_OR_RETURN(MaterializedResult result,
                         Evaluate(bound.expr, *bind_db, now, eval_options_));
  EXPDB_RETURN_NOT_OK(result.relation.RenameAttributes(
      UniquifyNames(bound.column_names)));
  ExecResult out;
  out.relation = std::move(result.relation);
  out.served_at = now;
  out.message = "ok";
  return out;
}

plan::PlannerOptions Session::MakePlannerOptions() const {
  // Expiration-aware optimizations on, Sec. 3.1 rewrites off — the facade
  // default. EXPLAIN, SELECT, and PREPARE all plan with these, so the
  // rendered EXPLAIN plan is the one a SELECT runs.
  plan::PlannerOptions popts;
  popts.eval = eval_options_;
  return popts;
}

Result<ExecResult> Session::ExecutePlannedSelect(
    const plan::PreparedPlan& prepared, const std::vector<Value>& args,
    Timestamp now) {
  plan::ResultCache& result_cache = engine_->result_cache();
  const std::string key = plan::ResultCacheKey(prepared.fingerprint, args);
  if (result_cache.enabled()) {
    std::optional<MaterializedResult> cached =
        result_cache.Lookup(key, db(), now);
    if (cached.has_value()) {
      // Theorems 1–2: letting the materialization expire in place
      // reproduces recomputation at every instant before its texp, so a
      // hit is served with zero operator executions.
      ExecResult out;
      out.relation = cached->relation.UnexpiredAt(now);
      out.served_at = now;
      out.message = "ok (cached)";
      return out;
    }
  }
  EXPDB_ASSIGN_OR_RETURN(plan::PhysicalPlanPtr bound,
                         plan::InstantiatePlan(prepared.plan, args));
  // Capturing copies every node's output; pay for it only when the filled
  // entry could actually be delta-patched later.
  plan::NodeCapture capture;
  plan::NodeCapture* capture_ptr =
      result_cache.enabled() && plan::PlanSupportsDelta(*bound, eval_options_)
          ? &capture
          : nullptr;
  EXPDB_ASSIGN_OR_RETURN(MaterializedResult result,
                         plan::ExecutePlan(*bound, db(), now, eval_options_,
                                           nullptr, capture_ptr));
  EXPDB_RETURN_NOT_OK(result.relation.RenameAttributes(
      UniquifyNames(prepared.column_names)));
  ExecResult out;
  out.relation = result.relation;
  out.served_at = now;
  out.message = "ok";
  if (result_cache.enabled()) {
    result_cache.Insert(key, std::move(bound), capture_ptr,
                        std::move(result), db(), now);
  }
  return out;
}

Result<ExecResult> Session::ExecutePrepare(const PrepareStatement& stmt) {
  // A prepared plan outlives any point-in-time scratch catalog, so views
  // cannot appear in its FROM clause.
  std::set<std::string> from_names;
  CollectFromNames(stmt.select, &from_names);
  for (const std::string& name : from_names) {
    if (engine_->views().HasView(name)) {
      return Status::InvalidArgument("PREPARE cannot reference view '" +
                                     name + "'; prepared plans bind to base "
                                     "tables only");
    }
  }
  // Binding and planning read schemas and statistics: snapshot the FROM
  // relations for a consistent read.
  engine::Engine::Snapshot snap = engine_->OpenSnapshot(from_names);
  EXPDB_ASSIGN_OR_RETURN(BoundSelect bound, BindSelect(stmt.select, db()));
  plan::PreparedPlan prepared;
  EXPDB_ASSIGN_OR_RETURN(
      prepared.plan,
      plan::Planner::Plan(bound.expr, db(), MakePlannerOptions()));
  prepared.param_count = plan::ExpressionParameterCount(bound.expr);
  prepared.fingerprint = FingerprintSelect(stmt.select);
  prepared.column_names = std::move(bound.column_names);
  const size_t params = prepared.param_count;
  const bool replaced = engine_->PutPrepared(stmt.name, std::move(prepared));
  return ExecResult{"statement " + stmt.name +
                        (replaced ? " re-prepared (" : " prepared (") +
                        std::to_string(params) +
                        (params == 1 ? " parameter)" : " parameters)"),
                    std::nullopt, Now()};
}

Result<ExecResult> Session::ExecuteRunPrepared(
    const ExecutePreparedStatement& stmt) {
  std::optional<plan::PreparedPlan> prepared = engine_->GetPrepared(stmt.name);
  if (!prepared.has_value()) {
    return Status::NotFound("no prepared statement named '" + stmt.name +
                            "'");
  }
  if (stmt.args.size() != prepared->param_count) {
    return Status::InvalidArgument(
        "EXECUTE " + stmt.name + " expects " +
        std::to_string(prepared->param_count) +
        (prepared->param_count == 1 ? " argument, got "
                                    : " arguments, got ") +
        std::to_string(stmt.args.size()));
  }
  engine::Engine::Snapshot snap =
      engine_->OpenSnapshot(prepared->plan->planned_expr()->BaseRelationNames());
  return ExecutePlannedSelect(*prepared, stmt.args, Now());
}

Result<ExecResult> Session::ExecuteCache(const CacheStatement& stmt) {
  plan::StatementCache& stmt_cache = engine_->stmt_cache();
  if (stmt.what == CacheStatement::What::kClear) {
    stmt_cache.Clear();
    engine_->result_cache().Clear();
    return ExecResult{"caches cleared (prepared statements kept)",
                      std::nullopt, Now()};
  }
  const plan::ResultCache::Stats rs = engine_->result_cache().stats();
  std::string msg =
      "statement cache: " + std::to_string(stmt_cache.size()) +
      " plans, " + std::to_string(stmt_cache.hits()) + " hits, " +
      std::to_string(stmt_cache.misses()) + " misses";
  msg += "\nresult cache: " + std::to_string(rs.entries) + " entries, " +
         std::to_string(rs.bytes) + " / " + std::to_string(rs.max_bytes) +
         " bytes, " + std::to_string(rs.hits) + " hits (" +
         std::to_string(rs.patches) + " patched), " +
         std::to_string(rs.misses) + " misses, " +
         std::to_string(rs.evictions) + " evictions";
  msg += "\nprepared statements: " + std::to_string(engine_->prepared_count());
  return ExecResult{std::move(msg), std::nullopt, Now()};
}

Result<ExecResult> Session::ExecuteMaintenance(
    const MaintenanceStatement& stmt) {
  engine::MaintenanceService& service = engine_->maintenance();
  switch (stmt.what) {
    case MaintenanceStatement::What::kStatus:
      return ExecResult{service.StatusString(), std::nullopt, Now()};
    case MaintenanceStatement::What::kPause:
      service.Pause();
      return ExecResult{"maintenance paused", std::nullopt, Now()};
    case MaintenanceStatement::What::kResume:
      service.Resume();
      return ExecResult{"maintenance resumed (interval " +
                            std::to_string(service.interval_ms()) + "ms)",
                        std::nullopt, Now()};
    case MaintenanceStatement::What::kRun: {
      const size_t removed = service.RunOnce();
      return ExecResult{"maintenance pass removed " +
                            std::to_string(removed) +
                            (removed == 1 ? " tuple" : " tuples"),
                        std::nullopt, Now()};
    }
  }
  return Status::Internal("unknown MAINTENANCE statement");
}

namespace {

/// Renders one telemetry ring as a relation (t_ns INT, value, delta,
/// rate, p50, p95, p99 DOUBLE, count INT), oldest point first. The
/// non-applicable columns (rate for gauges, percentiles for counters)
/// hold zero rather than varying the schema per metric kind.
Relation TimeSeriesToRelation(const obs::TimeSeries& series) {
  Schema schema = Schema::Make({Attribute{"t_ns", ValueType::kInt64},
                                Attribute{"value", ValueType::kDouble},
                                Attribute{"delta", ValueType::kDouble},
                                Attribute{"rate", ValueType::kDouble},
                                Attribute{"p50", ValueType::kDouble},
                                Attribute{"p95", ValueType::kDouble},
                                Attribute{"p99", ValueType::kDouble},
                                Attribute{"count", ValueType::kInt64}})
                      .value();
  Relation rel(std::move(schema));
  for (const obs::TimeSeriesPoint& p : series.points) {
    rel.InsertUnchecked(
        Tuple({Value(p.t_ns), Value(p.value), Value(p.delta), Value(p.rate),
               Value(p.p50), Value(p.p95), Value(p.p99),
               Value(static_cast<int64_t>(p.count))}),
        Timestamp::Infinity());
  }
  return rel;
}

}  // namespace

Result<ExecResult> Session::ExecuteMonitor(const MonitorStatement& stmt) {
  engine::TelemetryService& telemetry = engine_->telemetry();
  switch (stmt.what) {
    case MonitorStatement::What::kStatus:
      return ExecResult{telemetry.StatusString(), std::nullopt, Now()};
    case MonitorStatement::What::kThresholds:
      return ExecResult{telemetry.ThresholdsString(), std::nullopt, Now()};
    case MonitorStatement::What::kHistory: {
      const std::optional<obs::TimeSeries> series =
          telemetry.series().Series(stmt.metric);
      if (!series.has_value()) {
        return Status::NotFound(
            "no telemetry history for metric '" + stmt.metric +
            "' (never sampled; is the telemetry service running? try "
            "SET telemetry_interval_ms)");
      }
      std::string kind = "counter";
      if (series->kind == obs::MetricSnapshot::Kind::kGauge) kind = "gauge";
      if (series->kind == obs::MetricSnapshot::Kind::kHistogram) {
        kind = "histogram";
      }
      ExecResult out;
      out.message = stmt.metric + " (" + kind + ", " +
                    std::to_string(series->points.size()) +
                    " points retained)";
      out.relation = TimeSeriesToRelation(*series);
      out.served_at = Now();
      return out;
    }
  }
  return Status::Internal("unknown MONITOR statement");
}

Result<const Database*> Session::ResolveCatalog(const SelectStatement& stmt,
                                                Timestamp now,
                                                Database* scratch) {
  ViewManager& views = engine_->views();
  std::set<std::string> from_names;
  CollectFromNames(stmt, &from_names);
  bool any_view = false;
  for (const std::string& name : from_names) {
    if (views.HasView(name)) any_view = true;
  }
  if (!any_view) return &db();
  for (const std::string& name : from_names) {
    if (views.HasView(name)) {
      EXPDB_ASSIGN_OR_RETURN(Relation rel, views.Read(name, now));
      auto rename = engine_->GetViewColumns(name);
      if (rename.has_value()) {
        EXPDB_RETURN_NOT_OK(
            rel.RenameAttributes(UniquifyNames(*rename)));
      }
      EXPDB_RETURN_NOT_OK(scratch->PutRelation(name, std::move(rel)));
    } else {
      EXPDB_ASSIGN_OR_RETURN(const Relation* base, db().GetRelation(name));
      EXPDB_RETURN_NOT_OK(scratch->PutRelation(name, *base));
    }
  }
  return scratch;
}

Result<ExecResult> Session::ExecuteExplain(const ExplainStatement& stmt) {
  // Exclusive: EXPLAIN may resolve views (rewriting materializations) and
  // ANALYZE executes the plan against the live catalog.
  engine::Engine::ExclusiveGuard lock = engine_->LockExclusive();
  const Timestamp now = Now();
  Database scratch;
  EXPDB_ASSIGN_OR_RETURN(const Database* bind_db,
                         ResolveCatalog(stmt.select, now, &scratch));
  EXPDB_ASSIGN_OR_RETURN(BoundSelect bound,
                         BindSelect(stmt.select, *bind_db));
  EXPDB_ASSIGN_OR_RETURN(
      plan::PhysicalPlanPtr plan,
      plan::Planner::Plan(bound.expr, *bind_db, MakePlannerOptions()));
  ExecResult out;
  out.served_at = now;
  if (stmt.what == ExplainStatement::What::kPlan) {
    out.message = plan->ToString();
    return out;
  }
  plan::PlanProfile profile;
  EXPDB_RETURN_NOT_OK(
      plan::ExecutePlan(*plan, *bind_db, now, eval_options_, &profile)
          .status());
  out.message = plan->ToString(&profile);
  // When tracing is on, the operator spans the execution just recorded
  // all carry this statement's trace id and a PlanNode-id tag: aggregate
  // them per node so ANALYZE shows where the wall time went and how many
  // worker threads each operator fanned out to.
  obs::TraceRecorder& recorder = obs::TraceRecorder::Global();
  const uint64_t trace_id = obs::CurrentTraceContext().trace_id;
  if (recorder.enabled() && trace_id != 0) {
    std::map<uint64_t, std::pair<size_t, int64_t>> by_node;  // spans, ns
    std::map<uint64_t, std::set<uint32_t>> node_tids;
    for (const obs::SpanRecord& s : recorder.Snapshot()) {
      if (s.trace_id != trace_id || s.tag == 0) continue;
      auto& agg = by_node[s.tag];
      ++agg.first;
      agg.second += s.duration_ns;
      node_tids[s.tag].insert(s.tid);
    }
    if (!by_node.empty()) {
      out.message += "\ntraced operator spans (trace #" +
                     std::to_string(trace_id) + "):";
      for (const auto& [tag, agg] : by_node) {
        const size_t threads = node_tids[tag].size();
        out.message += "\n  node #" + std::to_string(tag) + ": " +
                       std::to_string(agg.first) +
                       (agg.first == 1 ? " span, " : " spans, ") +
                       std::to_string(agg.second) + "ns on " +
                       std::to_string(threads) +
                       (threads == 1 ? " thread" : " threads");
      }
    }
  }
  return out;
}

Result<ExecResult> Session::ExecuteCreateTable(
    const CreateTableStatement& stmt) {
  EXPDB_ASSIGN_OR_RETURN(Schema schema, Schema::Make(stmt.columns));
  engine::Engine::ExclusiveGuard lock = engine_->LockExclusive();
  EXPDB_ASSIGN_OR_RETURN(
      Relation * rel,
      engine_->expiration().CreateRelation(stmt.name, std::move(schema)));
  // Pre-enable delta tracking: view maintenance and the result cache both
  // need cursors over this relation, and enabling at CREATE time keeps
  // cursor history anchored at the table's birth.
  rel->EnableDeltaTracking();
  // A plan cached before this CREATE bound a different (since-dropped)
  // schema under the same name.
  engine_->InvalidateCachesFor(stmt.name);
  return ExecResult{"table " + stmt.name + " created", std::nullopt, Now()};
}

Result<ExecResult> Session::ExecuteInsert(const InsertStatement& stmt) {
  // Writer protocol: engine shared + the target relation exclusive.
  // Readers of other relations and writers to other relations proceed
  // concurrently; releasing the guard bumps the catalog epoch.
  engine::Engine::WriteGuard guard = engine_->LockWrite(stmt.table);
  const Timestamp now = Now();
  Timestamp texp = Timestamp::Infinity();
  if (stmt.expire_at.has_value()) {
    texp = *stmt.expire_at;
  } else if (stmt.ttl.has_value()) {
    texp = now + *stmt.ttl;
  }
  size_t inserted = 0;
  for (const std::vector<Value>& row : stmt.rows) {
    Tuple tuple(row);
    EXPDB_RETURN_NOT_OK(
        engine_->constraints().CheckInsert(stmt.table, tuple));
    EXPDB_RETURN_NOT_OK(
        engine_->expiration().Insert(stmt.table, std::move(tuple), texp));
    ++inserted;
  }
  // Explicit inserts break views' expiration-only maintenance contract;
  // mark dependents stale (they rebuild at their next read). Thread-safe
  // under the engine's shared lock.
  engine_->views().NotifyBaseChanged(stmt.table);
  std::string lifetime =
      texp.IsInfinite() ? std::string("no expiration")
                        : ("expire at " + texp.ToString());
  return ExecResult{std::to_string(inserted) +
                        (inserted == 1 ? " row" : " rows") +
                        " inserted into " + stmt.table + " (" + lifetime +
                        ")",
                    std::nullopt, now};
}

Result<ExecResult> Session::ExecuteCreateView(
    const CreateViewStatement& stmt) {
  engine::Engine::ExclusiveGuard lock = engine_->LockExclusive();
  EXPDB_ASSIGN_OR_RETURN(BoundSelect bound, BindSelect(stmt.select, db()));
  if (rewrite_views_) {
    // Sec. 3.1: push selections below non-monotonic operators so the
    // materialization stays independently maintainable longer.
    EXPDB_ASSIGN_OR_RETURN(bound.expr,
                           RewriteForIndependence(bound.expr, db()));
  }
  EXPDB_ASSIGN_OR_RETURN(MaterializedView::Options options,
                         ViewOptionsFrom(stmt.options, eval_options_));
  EXPDB_ASSIGN_OR_RETURN(
      MaterializedView * view,
      engine_->views().CreateView(stmt.name, bound.expr, options, Now()));
  engine_->SetViewColumns(stmt.name, bound.column_names);
  std::string monotonic =
      bound.expr->IsMonotonic()
          ? "monotonic: maintenance-free"
          : ("non-monotonic: texp = " + view->texp().ToString());
  return ExecResult{"view " + stmt.name + " created (" +
                        std::string(RefreshModeToString(options.mode)) +
                        ", " + monotonic + ")",
                    std::nullopt, Now()};
}

Result<ExecResult> Session::ExecuteDrop(const DropStatement& stmt) {
  engine::Engine::ExclusiveGuard lock = engine_->LockExclusive();
  ViewManager& views = engine_->views();
  if (stmt.is_view) {
    EXPDB_RETURN_NOT_OK(views.DropView(stmt.name));
    engine_->EraseViewColumns(stmt.name);
    return ExecResult{"view " + stmt.name + " dropped", std::nullopt, Now()};
  }
  // A table with dependent views cannot be dropped out from under them.
  for (const std::string& vname : views.ViewNames()) {
    MaterializedView* view = views.GetView(vname).value();
    if (view->expression()->BaseRelationNames().count(stmt.name) > 0) {
      return Status::InvalidArgument("table " + stmt.name +
                                     " is used by view " + vname +
                                     "; drop the view first");
    }
  }
  EXPDB_RETURN_NOT_OK(db().DropRelation(stmt.name));
  engine_->InvalidateCachesFor(stmt.name);
  return ExecResult{"table " + stmt.name + " dropped", std::nullopt, Now()};
}

Result<ExecResult> Session::ExecuteAdvance(const AdvanceStatement& stmt) {
  // ADVANCE TIME mutates arbitrary relations (eager drains, lazy
  // compaction) and refreshes views: total isolation.
  engine::Engine::ExclusiveGuard lock = engine_->LockExclusive();
  ExpirationManager& expiration = engine_->expiration();
  if (stmt.absolute) {
    EXPDB_RETURN_NOT_OK(expiration.AdvanceTo(Timestamp(stmt.amount)));
  } else {
    EXPDB_RETURN_NOT_OK(expiration.Advance(stmt.amount));
  }
  EXPDB_RETURN_NOT_OK(engine_->views().AdvanceAllTo(Now()));
  return ExecResult{"time is " + Now().ToString(), std::nullopt, Now()};
}

Result<ExecResult> Session::ExecuteShow(const ShowStatement& stmt) {
  switch (stmt.what) {
    case ShowStatement::What::kTables: {
      // Catalog-wide consistent read: snapshot every relation.
      engine::Engine::Snapshot snap = engine_->OpenSnapshotAll();
      std::string msg = "tables:";
      for (const std::string& name : db().RelationNames()) {
        const Relation* rel = db().GetRelation(name).value();
        msg += "\n  " + name + " " + rel->schema().ToString() + " [" +
               std::to_string(rel->CountUnexpiredAt(Now())) + " live]";
      }
      return ExecResult{std::move(msg), std::nullopt, Now()};
    }
    case ShowStatement::What::kViews: {
      // View metadata only (no base-table access): the engine's shared
      // lock keeps DDL and maintenance out while the list renders.
      engine::Engine::Snapshot snap = engine_->OpenSnapshot({});
      ViewManager& views = engine_->views();
      std::string msg = "views:";
      for (const std::string& name : views.ViewNames()) {
        auto view = views.GetView(name);
        if (!view.ok()) continue;  // dropped between list and lookup
        MaterializedView* v = view.value();
        msg += "\n  " + name + " [" +
               std::string(RefreshModeToString(v->mode())) +
               ", texp = " + v->texp().ToString() + "] " +
               v->expression()->ToString();
      }
      return ExecResult{std::move(msg), std::nullopt, Now()};
    }
    case ShowStatement::What::kTime:
      return ExecResult{"time is " + Now().ToString(), std::nullopt, Now()};
    case ShowStatement::What::kHealth:
      // CurrentHealth evaluates synchronously when the sampler never
      // ticked, so this always reflects the actual engine.
      return ExecResult{engine_->telemetry().CurrentHealth().ToString(),
                        std::nullopt, Now()};
  }
  return Status::Internal("unknown SHOW statement");
}

Result<ExecResult> Session::ExecuteDelete(const DeleteStatement& stmt) {
  engine::Engine::WriteGuard guard = engine_->LockWrite(stmt.table);
  EXPDB_ASSIGN_OR_RETURN(Relation * rel, db().GetRelation(stmt.table));
  std::optional<Predicate> pred;
  if (stmt.where != nullptr) {
    EXPDB_ASSIGN_OR_RETURN(
        Predicate p, BindWhere(*stmt.where, {TableRef{stmt.table, ""}}, db()));
    pred = std::move(p);
  }
  size_t deleted = 0;
  for (const auto& [tuple, texp] : rel->SortedEntries()) {
    if (texp <= Now()) continue;  // already expired: not visible to DELETE
    if (!pred.has_value() || pred->Evaluate(tuple)) {
      rel->Erase(tuple);
      ++deleted;
    }
  }
  if (deleted > 0) engine_->views().NotifyBaseChanged(stmt.table);
  return ExecResult{std::to_string(deleted) +
                        (deleted == 1 ? " row" : " rows") + " deleted from " +
                        stmt.table,
                    std::nullopt, Now()};
}

namespace {

/// Renders the metrics snapshot as a relation (metric STRING, type
/// STRING, value DOUBLE). Histograms expand to five rows:
/// <name>_count/_sum/_p50/_p95/_p99.
Relation SnapshotToRelation(const std::vector<obs::MetricSnapshot>& snap) {
  Schema schema =
      Schema::Make({Attribute{"metric", ValueType::kString},
                    Attribute{"type", ValueType::kString},
                    Attribute{"value", ValueType::kDouble}})
          .value();
  Relation rel(std::move(schema));
  for (const obs::MetricSnapshot& m : snap) {
    const std::string type(m.KindName());
    auto add = [&](const std::string& name, double value) {
      rel.InsertUnchecked(Tuple({Value(name), Value(type), Value(value)}),
                          Timestamp::Infinity());
    };
    if (m.kind == obs::MetricSnapshot::Kind::kHistogram) {
      add(m.name + "_count", static_cast<double>(m.count));
      add(m.name + "_sum", static_cast<double>(m.sum));
      add(m.name + "_p50", m.p50);
      add(m.name + "_p95", m.p95);
      add(m.name + "_p99", m.p99);
    } else {
      add(m.name, m.value);
    }
  }
  return rel;
}

}  // namespace

Result<ExecResult> Session::ExecuteStats(const StatsStatement& stmt) {
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
  if (stmt.reset) {
    registry.ResetAll();
    obs::TraceRecorder::Global().Clear();
    return ExecResult{"metrics reset", std::nullopt, Now()};
  }
  switch (stmt.format) {
    case StatsStatement::Format::kPrometheus:
      return ExecResult{registry.PrometheusText(), std::nullopt, Now()};
    case StatsStatement::Format::kJson:
      return ExecResult{registry.JsonText(), std::nullopt, Now()};
    case StatsStatement::Format::kTable:
      break;
  }
  Relation rel = SnapshotToRelation(registry.Snapshot());
  if (!stmt.explain) {
    ExecResult out;
    out.message = "metrics (" + std::to_string(registry.MetricCount()) +
                  " registered)";
    out.relation = std::move(rel);
    out.served_at = Now();
    return out;
  }
  // EXPLAIN STATS: the table rendered as text plus the most recent spans
  // from the global trace ring.
  PrintOptions popts;
  popts.show_texp = false;
  popts.at = Now();
  popts.filter_expired = false;
  std::string msg = PrintRelation(rel, popts);
  obs::TraceRecorder& recorder = obs::TraceRecorder::Global();
  std::vector<obs::SpanRecord> spans = recorder.Snapshot();
  constexpr size_t kMaxSpans = 16;
  const size_t begin = spans.size() > kMaxSpans ? spans.size() - kMaxSpans : 0;
  msg += "recent spans (" + std::to_string(spans.size() - begin) + " of " +
         std::to_string(recorder.total_recorded()) + " recorded):";
  if (begin == spans.size()) msg += "\n  (none)";
  for (size_t i = begin; i < spans.size(); ++i) {
    const obs::SpanRecord& s = spans[i];
    msg += "\n  #" + std::to_string(s.id) +
           (s.parent_id != 0 ? " <- #" + std::to_string(s.parent_id) : "") +
           " " + s.name + " " + std::to_string(s.duration_ns) + "ns";
  }
  return ExecResult{std::move(msg), std::nullopt, Now()};
}

namespace {

Result<bool> ParseOnOff(const Value& v, const std::string& name) {
  if (v.is_int64()) return v.AsInt64() != 0;
  if (v.is_string()) {
    const std::string& s = v.AsString();
    if (s == "on" || s == "true" || s == "1") return true;
    if (s == "off" || s == "false" || s == "0") return false;
  }
  return Status::InvalidArgument("SET " + name + " expects on or off, got '" +
                                 v.ToString() + "'");
}

/// Shared validation for every integer-valued setting: rejects
/// non-integers (strings, doubles) and negative values with one uniform,
/// value-echoing error shape. `meaning` completes the sentence "expects
/// a non-negative integer ...".
Result<int64_t> ExpectNonNegativeInt(const SetStatement& stmt,
                                     const std::string& meaning) {
  if (!stmt.value.is_int64() || stmt.value.AsInt64() < 0) {
    return Status::InvalidArgument(
        "SET " + stmt.name + " expects a non-negative integer " + meaning +
        ", got '" + stmt.value.ToString() + "'");
  }
  return stmt.value.AsInt64();
}

}  // namespace

Result<ExecResult> Session::ExecuteSet(const SetStatement& stmt) {
  if (stmt.name == "slow_query_ns") {
    if (stmt.value.is_string() && stmt.value.AsString() == "off") {
      slow_query_threshold_ns_ = -1;
      return ExecResult{"slow_query_ns off", std::nullopt, Now()};
    }
    EXPDB_ASSIGN_OR_RETURN(
        slow_query_threshold_ns_,
        ExpectNonNegativeInt(stmt, "nanosecond threshold (or off)"));
  } else if (stmt.name == "parallelism") {
    EXPDB_ASSIGN_OR_RETURN(
        const int64_t n,
        ExpectNonNegativeInt(stmt, "(0 = hardware concurrency)"));
    eval_options_.parallelism = static_cast<size_t>(n);
  } else if (stmt.name == "result_cache_bytes") {
    EXPDB_ASSIGN_OR_RETURN(
        const int64_t bytes,
        ExpectNonNegativeInt(stmt,
                             "byte budget (0 disables the result cache)"));
    engine_->result_cache().set_max_bytes(static_cast<size_t>(bytes));
  } else if (stmt.name == "maintenance_interval_ms") {
    EXPDB_ASSIGN_OR_RETURN(
        const int64_t ms,
        ExpectNonNegativeInt(stmt, "millisecond interval"));
    // Configuring a cadence starts the background service (0 is clamped
    // to the 1ms minimum inside the service).
    engine_->maintenance().set_interval_ms(ms);
  } else if (stmt.name == "event_log") {
    EXPDB_ASSIGN_OR_RETURN(bool on, ParseOnOff(stmt.value, "event_log"));
    obs::EventLog::Global().set_enabled(on);
  } else if (stmt.name == "event_log_path") {
    if (!stmt.value.is_string()) {
      return Status::InvalidArgument(
          "SET event_log_path expects a quoted file path or off");
    }
    const std::string& path = stmt.value.AsString();
    obs::EventLog& log = obs::EventLog::Global();
    if (path.empty() || path == "off") {
      log.CloseSink();
      return ExecResult{"event log sink closed", std::nullopt, Now()};
    }
    std::string error;
    if (!log.OpenSink(path, &error)) {
      return Status::InvalidArgument("cannot open event log sink: " + error);
    }
    // Attaching a sink implies the caller wants events; enable the log so
    // SET event_log_path = '...' works as a one-statement switch-on.
    log.set_enabled(true);
  } else if (stmt.name == "telemetry_interval_ms") {
    EXPDB_ASSIGN_OR_RETURN(
        const int64_t ms,
        ExpectNonNegativeInt(stmt, "millisecond interval"));
    // Configuring a cadence starts the telemetry sampler (0 is clamped
    // to the 1ms minimum inside the service), mirroring
    // maintenance_interval_ms.
    engine_->telemetry().set_interval_ms(ms);
  } else if (stmt.name == "http_port") {
    EXPDB_ASSIGN_OR_RETURN(
        const int64_t port,
        ExpectNonNegativeInt(stmt, "port (0 stops the endpoint)"));
    if (port > 65535) {
      return Status::InvalidArgument("SET http_port expects a port <= 65535");
    }
    // SQL-side 0 means "stop" (the programmatic Start(0) ephemeral-port
    // form stays available to embedders and tests).
    if (port == 0) {
      engine_->StopHttpEndpoint();
      return ExecResult{"http endpoint stopped", std::nullopt, Now()};
    }
    EXPDB_ASSIGN_OR_RETURN(const int bound,
                           engine_->StartHttpEndpoint(static_cast<int>(port)));
    return ExecResult{"http endpoint listening on 127.0.0.1:" +
                          std::to_string(bound),
                      std::nullopt, Now()};
  } else {
    return Status::InvalidArgument(
        "unknown setting '" + stmt.name +
        "' (expected slow_query_ns, parallelism, result_cache_bytes, "
        "maintenance_interval_ms, telemetry_interval_ms, http_port, "
        "event_log, event_log_path)");
  }
  return ExecResult{"set " + stmt.name + " = " + stmt.value.ToString(),
                    std::nullopt, Now()};
}

namespace {

/// Renders one trace's spans as an indented tree (children sorted by
/// start time; spans whose parent never made it into the ring render as
/// roots rather than disappearing).
std::string RenderTraceTree(const std::vector<obs::SpanRecord>& spans) {
  std::map<uint64_t, size_t> index;
  for (size_t i = 0; i < spans.size(); ++i) index[spans[i].id] = i;
  std::map<uint64_t, std::vector<size_t>> children;
  std::vector<size_t> roots;
  for (size_t i = 0; i < spans.size(); ++i) {
    if (spans[i].parent_id != 0 && index.count(spans[i].parent_id) > 0) {
      children[spans[i].parent_id].push_back(i);
    } else {
      roots.push_back(i);
    }
  }
  auto by_start = [&](size_t a, size_t b) {
    return spans[a].start_ns < spans[b].start_ns;
  };
  std::sort(roots.begin(), roots.end(), by_start);
  for (auto& [id, kids] : children) {
    std::sort(kids.begin(), kids.end(), by_start);
  }
  std::string out;
  // Explicit stack (span index, depth) to avoid recursion on deep trees.
  std::vector<std::pair<size_t, int>> stack;
  for (auto it = roots.rbegin(); it != roots.rend(); ++it) {
    stack.push_back({*it, 1});
  }
  while (!stack.empty()) {
    auto [i, depth] = stack.back();
    stack.pop_back();
    const obs::SpanRecord& s = spans[i];
    out += "\n" + std::string(static_cast<size_t>(depth) * 2, ' ') + s.name +
           " #" + std::to_string(s.id) + " " +
           std::to_string(s.duration_ns) + "ns [tid " +
           std::to_string(s.tid) + "]";
    if (s.tag != 0) out += " (node #" + std::to_string(s.tag) + ")";
    auto kids = children.find(s.id);
    if (kids != children.end()) {
      for (auto kit = kids->second.rbegin(); kit != kids->second.rend();
           ++kit) {
        stack.push_back({*kit, depth + 1});
      }
    }
  }
  return out;
}

}  // namespace

Result<ExecResult> Session::ExecuteTrace(const TraceStatement& stmt) {
  obs::TraceRecorder& recorder = obs::TraceRecorder::Global();
  switch (stmt.what) {
    case TraceStatement::What::kOn:
      recorder.set_enabled(true);
      return ExecResult{"tracing on", std::nullopt, Now()};
    case TraceStatement::What::kOff:
      recorder.set_enabled(false);
      return ExecResult{"tracing off", std::nullopt, Now()};
    case TraceStatement::What::kShow: {
      const std::vector<obs::SpanRecord> spans = recorder.Snapshot();
      // The TRACE SHOW statement itself runs under a live trace; show the
      // most recent *completed* one instead.
      const uint64_t current = obs::CurrentTraceContext().trace_id;
      uint64_t target = 0;  // trace ids are span ids: larger = newer
      for (const obs::SpanRecord& s : spans) {
        if (s.trace_id != current && s.trace_id > target) {
          target = s.trace_id;
        }
      }
      if (target == 0) {
        return ExecResult{"no completed traces recorded", std::nullopt,
                          Now()};
      }
      std::vector<obs::SpanRecord> trace_spans;
      for (const obs::SpanRecord& s : spans) {
        if (s.trace_id == target) trace_spans.push_back(s);
      }
      std::string msg = "trace #" + std::to_string(target) + " (" +
                        std::to_string(trace_spans.size()) +
                        (trace_spans.size() == 1 ? " span)" : " spans)");
      msg += RenderTraceTree(trace_spans);
      return ExecResult{std::move(msg), std::nullopt, Now()};
    }
    case TraceStatement::What::kExport: {
      const std::vector<obs::SpanRecord> spans = recorder.Snapshot();
      std::ofstream file(stmt.path, std::ios::trunc);
      if (!file) {
        return Status::InvalidArgument("cannot open '" + stmt.path +
                                       "' for writing");
      }
      file << obs::ChromeTraceJson(spans);
      file.close();
      if (!file) {
        return Status::InvalidArgument("failed writing '" + stmt.path + "'");
      }
      return ExecResult{"trace exported to " + stmt.path + " (" +
                            std::to_string(spans.size()) +
                            (spans.size() == 1 ? " span)" : " spans)"),
                        std::nullopt, Now()};
    }
  }
  return Status::Internal("unknown TRACE statement");
}

}  // namespace sql
}  // namespace expdb
