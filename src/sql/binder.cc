#include "sql/binder.h"

#include <algorithm>
#include <optional>

namespace expdb {
namespace sql {

namespace {

/// Name-resolution scope: the concatenated attributes of the FROM clause.
class Scope {
 public:
  static Result<Scope> Build(const std::vector<TableRef>& from,
                             const Database& db) {
    Scope scope;
    if (from.empty()) {
      return Status::InvalidArgument("FROM clause must name a table");
    }
    for (const TableRef& ref : from) {
      EXPDB_ASSIGN_OR_RETURN(const Relation* rel, db.GetRelation(ref.name));
      for (size_t i = 0; i < rel->schema().arity(); ++i) {
        scope.entries_.push_back({ref.EffectiveName(),
                                  rel->schema().attribute(i).name,
                                  scope.entries_.size()});
      }
    }
    return scope;
  }

  Result<size_t> Resolve(const ColumnRef& col) const {
    std::optional<size_t> found;
    for (const Entry& e : entries_) {
      if (e.column != col.column) continue;
      if (!col.table.empty() && e.table != col.table) continue;
      if (found.has_value()) {
        return Status::InvalidArgument("ambiguous column '" +
                                       col.ToString() + "'");
      }
      found = e.index;
    }
    if (!found.has_value()) {
      return Status::NotFound("unknown column '" + col.ToString() + "'");
    }
    return *found;
  }

  size_t size() const { return entries_.size(); }

  const std::string& ColumnName(size_t i) const {
    return entries_[i].column;
  }

 private:
  struct Entry {
    std::string table;
    std::string column;
    size_t index;
  };
  std::vector<Entry> entries_;
};

Result<Predicate> LowerBool(const BoolExpr& e, const Scope& scope) {
  switch (e.kind) {
    case BoolExpr::Kind::kCompare: {
      auto lower_operand = [&](const ScalarOperand& o) -> Result<Operand> {
        if (o.is_parameter) return Operand::Parameter(o.parameter_index);
        if (!o.is_column) return Operand::Constant(o.constant);
        EXPDB_ASSIGN_OR_RETURN(size_t idx, scope.Resolve(o.column));
        return Operand::Column(idx);
      };
      EXPDB_ASSIGN_OR_RETURN(Operand lhs, lower_operand(e.lhs));
      EXPDB_ASSIGN_OR_RETURN(Operand rhs, lower_operand(e.rhs));
      return Predicate::Compare(std::move(lhs), e.op, std::move(rhs));
    }
    case BoolExpr::Kind::kAnd: {
      EXPDB_ASSIGN_OR_RETURN(Predicate l, LowerBool(*e.left, scope));
      EXPDB_ASSIGN_OR_RETURN(Predicate r, LowerBool(*e.right, scope));
      return l.And(r);
    }
    case BoolExpr::Kind::kOr: {
      EXPDB_ASSIGN_OR_RETURN(Predicate l, LowerBool(*e.left, scope));
      EXPDB_ASSIGN_OR_RETURN(Predicate r, LowerBool(*e.right, scope));
      return l.Or(r);
    }
    case BoolExpr::Kind::kNot: {
      EXPDB_ASSIGN_OR_RETURN(Predicate inner, LowerBool(*e.left, scope));
      return inner.Not();
    }
  }
  return Status::Internal("unknown boolean expression kind");
}

Result<BoundSelect> BindSimpleSelect(const SelectStatement& select,
                                     const Database& db) {
  EXPDB_ASSIGN_OR_RETURN(Scope scope, Scope::Build(select.from, db));

  // FROM: base relations, joined.
  ExpressionPtr plan;
  std::optional<Predicate> where;
  if (select.where != nullptr) {
    EXPDB_ASSIGN_OR_RETURN(Predicate p, LowerBool(*select.where, scope));
    where = std::move(p);
  }

  if (select.from.size() == 2 && where.has_value()) {
    // Two-table join: give the evaluator a join node so equality
    // predicates take the hash path.
    plan = algebra::Join(algebra::Base(select.from[0].name),
                         algebra::Base(select.from[1].name), *where);
    where.reset();
  } else {
    plan = algebra::Base(select.from[0].name);
    for (size_t i = 1; i < select.from.size(); ++i) {
      plan = algebra::Product(plan, algebra::Base(select.from[i].name));
    }
    if (where.has_value()) {
      plan = algebra::Select(plan, *where);
      where.reset();
    }
  }

  const bool has_aggregate = std::any_of(
      select.items.begin(), select.items.end(), [](const SelectItem& it) {
        return it.kind == SelectItem::Kind::kAggregate;
      });

  BoundSelect out;

  if (!has_aggregate && select.group_by.empty()) {
    // Plain projection.
    bool star_only =
        select.items.size() == 1 &&
        select.items[0].kind == SelectItem::Kind::kStar;
    if (star_only) {
      out.expr = plan;
      for (size_t i = 0; i < scope.size(); ++i) {
        out.column_names.push_back(scope.ColumnName(i));
      }
      return out;
    }
    std::vector<size_t> indices;
    for (const SelectItem& item : select.items) {
      if (item.kind == SelectItem::Kind::kStar) {
        for (size_t i = 0; i < scope.size(); ++i) {
          indices.push_back(i);
          out.column_names.push_back(scope.ColumnName(i));
        }
        continue;
      }
      EXPDB_ASSIGN_OR_RETURN(size_t idx, scope.Resolve(item.column));
      indices.push_back(idx);
      out.column_names.push_back(
          item.alias.empty() ? item.column.column : item.alias);
    }
    out.expr = algebra::Project(plan, std::move(indices));
    return out;
  }

  // Aggregation path (the paper's Figure 3(a) shape).
  std::vector<size_t> group_indices;
  for (const ColumnRef& col : select.group_by) {
    EXPDB_ASSIGN_OR_RETURN(size_t idx, scope.Resolve(col));
    group_indices.push_back(idx);
  }

  // Chain one aggexp node per aggregate item; each appends one column.
  size_t next_appended = scope.size();
  std::vector<size_t> final_indices;
  std::vector<std::string> final_names;
  for (const SelectItem& item : select.items) {
    switch (item.kind) {
      case SelectItem::Kind::kStar:
        return Status::InvalidArgument(
            "SELECT * cannot be combined with GROUP BY/aggregates");
      case SelectItem::Kind::kColumn: {
        EXPDB_ASSIGN_OR_RETURN(size_t idx, scope.Resolve(item.column));
        if (std::find(group_indices.begin(), group_indices.end(), idx) ==
            group_indices.end()) {
          return Status::InvalidArgument(
              "column '" + item.column.ToString() +
              "' must appear in GROUP BY or inside an aggregate");
        }
        final_indices.push_back(idx);
        final_names.push_back(
            item.alias.empty() ? item.column.column : item.alias);
        break;
      }
      case SelectItem::Kind::kAggregate: {
        AggregateFunction f;
        f.kind = item.aggregate;
        if (!item.aggregate_star) {
          EXPDB_ASSIGN_OR_RETURN(size_t idx, scope.Resolve(item.column));
          f.attr = idx;
        } else {
          f = AggregateFunction::Count();
        }
        plan = algebra::Aggregate(plan, group_indices, f);
        final_indices.push_back(next_appended++);
        final_names.push_back(item.alias.empty() ? f.ToString()
                                                 : item.alias);
        break;
      }
    }
  }

  out.expr = algebra::Project(plan, std::move(final_indices));
  out.column_names = std::move(final_names);
  return out;
}

}  // namespace

Result<Predicate> BindWhere(const BoolExpr& expr,
                            const std::vector<TableRef>& from,
                            const Database& db) {
  EXPDB_ASSIGN_OR_RETURN(Scope scope, Scope::Build(from, db));
  return LowerBool(expr, scope);
}

Result<BoundSelect> BindSelect(const SelectStatement& select,
                               const Database& db) {
  EXPDB_ASSIGN_OR_RETURN(BoundSelect lhs, BindSimpleSelect(select, db));
  if (select.set_op == SelectStatement::SetOp::kNone) return lhs;

  EXPDB_ASSIGN_OR_RETURN(BoundSelect rhs, BindSelect(*select.set_rhs, db));
  BoundSelect out;
  out.column_names = lhs.column_names;
  switch (select.set_op) {
    case SelectStatement::SetOp::kUnion:
      out.expr = algebra::Union(lhs.expr, rhs.expr);
      break;
    case SelectStatement::SetOp::kIntersect:
      out.expr = algebra::Intersect(lhs.expr, rhs.expr);
      break;
    case SelectStatement::SetOp::kExcept:
      out.expr = algebra::Difference(lhs.expr, rhs.expr);
      break;
    case SelectStatement::SetOp::kNone:
      break;
  }
  return out;
}

}  // namespace sql
}  // namespace expdb
