// Session: an embedded ExpSQL endpoint — a statement executor bound to a
// shared engine (database + expiration management + materialized views).

#ifndef EXPDB_SQL_SESSION_H_
#define EXPDB_SQL_SESSION_H_

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "engine/engine.h"
#include "expiration/constraint.h"
#include "expiration/expiration_queue.h"
#include "obs/metrics.h"
#include "plan/cache.h"
#include "plan/planner.h"
#include "sql/ast.h"
#include "view/view_manager.h"

namespace expdb {
namespace sql {

/// \brief Outcome of executing one statement.
struct ExecResult {
  /// Human-readable summary ("1 row inserted", "time is 5", ...).
  std::string message;
  /// Result rows for SELECT (filtered through expτ at `served_at`).
  std::optional<Relation> relation;
  /// The time the result reflects. Equal to the session time except for
  /// Schrödinger views with move-backward/-forward policies.
  Timestamp served_at;
};

/// \brief Renders an ExecResult as a table (or the message) for a REPL.
std::string FormatExecResult(const ExecResult& result);

/// \brief One embedded database session.
///
/// All reads are expiration-transparent: queries never see expired tuples
/// and never mention expiration. Expiration surfaces only in INSERT
/// (EXPIRE AT / TTL), ADVANCE TIME, and triggers — exactly the paper's
/// interface contract.
///
/// Concurrency (docs/CONCURRENCY.md): sessions sharing one
/// engine::Engine may Execute concurrently from different threads. Each
/// statement acquires the engine locks it needs — SELECTs over base
/// tables open a read Snapshot, INSERT/DELETE take the target relation's
/// writer lock, DDL / ADVANCE TIME / view reads take the engine
/// exclusively. A single Session object itself is not a synchronization
/// domain: use one Session per thread (settings like SET parallelism are
/// session-local and unsynchronized). Constraint registration via
/// constraints() is a setup-time operation — do it before going
/// concurrent.
class Session {
 public:
  struct Options {
    ExpirationManagerOptions expiration;
    EvalOptions eval;
    /// Apply the Sec. 3.1 independence-extending rewrites to every view
    /// definition (never changes results; can only delay recomputation).
    bool rewrite_views = true;
  };

  Session() : Session(Options{}) {}

  /// \brief A standalone session owning a private engine (the embedded
  /// single-user setup every example and most tests use).
  explicit Session(Options options);

  /// \brief A session attached to a shared engine. `options.expiration`
  /// is ignored (the engine already owns its database); eval/rewrite
  /// knobs stay per-session.
  Session(std::shared_ptr<engine::Engine> engine, Options options);
  explicit Session(std::shared_ptr<engine::Engine> engine);

  /// \brief Parses and executes one statement.
  Result<ExecResult> Execute(const std::string& statement);

  /// \brief Executes a ';'-separated script; stops at the first error.
  Result<std::vector<ExecResult>> ExecuteScript(const std::string& script);

  Database& db() { return engine_->db(); }
  const Database& db() const { return engine_->db(); }
  Timestamp Now() const { return engine_->Now(); }
  ExpirationManager& expiration() { return engine_->expiration(); }
  ViewManager& views() { return engine_->views(); }
  ConstraintSet& constraints() { return engine_->constraints(); }
  engine::Engine& engine() { return *engine_; }
  const std::shared_ptr<engine::Engine>& engine_ptr() const {
    return engine_;
  }

 private:
  /// Executes one parsed statement with the sql.statement span and the
  /// expdb_sql_* statement/error counters applied.
  Result<ExecResult> ExecuteCounted(const Statement& stmt);
  Result<ExecResult> ExecuteStatement(const Statement& stmt);
  Result<ExecResult> ExecuteSelect(const SelectStatement& stmt);
  Result<ExecResult> ExecuteCreateTable(const CreateTableStatement& stmt);
  Result<ExecResult> ExecuteInsert(const InsertStatement& stmt);
  Result<ExecResult> ExecuteCreateView(const CreateViewStatement& stmt);
  Result<ExecResult> ExecuteDrop(const DropStatement& stmt);
  Result<ExecResult> ExecuteAdvance(const AdvanceStatement& stmt);
  Result<ExecResult> ExecuteShow(const ShowStatement& stmt);
  Result<ExecResult> ExecuteDelete(const DeleteStatement& stmt);
  Result<ExecResult> ExecuteStats(const StatsStatement& stmt);
  Result<ExecResult> ExecuteExplain(const ExplainStatement& stmt);
  Result<ExecResult> ExecuteSet(const SetStatement& stmt);
  Result<ExecResult> ExecuteTrace(const TraceStatement& stmt);
  Result<ExecResult> ExecutePrepare(const PrepareStatement& stmt);
  Result<ExecResult> ExecuteRunPrepared(const ExecutePreparedStatement& stmt);
  Result<ExecResult> ExecuteCache(const CacheStatement& stmt);
  Result<ExecResult> ExecuteMaintenance(const MaintenanceStatement& stmt);
  Result<ExecResult> ExecuteMonitor(const MonitorStatement& stmt);

  /// The planner options every facade execution path uses: the session's
  /// EvalOptions, expiration-aware optimizations on, Sec. 3.1 rewrites
  /// off. Shared by SELECT, PREPARE, and EXPLAIN so the rendered EXPLAIN
  /// plan is the one a plain SELECT runs.
  plan::PlannerOptions MakePlannerOptions() const;

  /// The shared tail of every cached execution (normalized SELECT and
  /// EXECUTE): result-cache lookup, then on a miss InstantiatePlan +
  /// ExecutePlan (capturing node state when the plan is
  /// incrementalizable) and a result-cache fill. The caller must hold a
  /// Snapshot covering the plan's base relations.
  Result<ExecResult> ExecutePlannedSelect(const plan::PreparedPlan& prepared,
                                          const std::vector<Value>& args,
                                          Timestamp now);

  /// When `stmt` references views, fills `scratch` with the referenced
  /// views' current contents (renamed to their declared columns) plus
  /// copies of the referenced base tables, and returns `scratch`;
  /// otherwise returns the live database. Shared by SELECT and EXPLAIN,
  /// both under the engine's exclusive lock.
  Result<const Database*> ResolveCatalog(const SelectStatement& stmt,
                                         Timestamp now, Database* scratch);

  /// The engine this session executes against. Private to this session
  /// for the Options ctor; shared between sessions for the engine ctor.
  std::shared_ptr<engine::Engine> engine_;
  EvalOptions eval_options_;
  bool rewrite_views_ = true;
  // Process-wide SQL metrics (registry-owned; see docs/OBSERVABILITY.md).
  obs::Counter* statements_metric_;
  obs::Counter* errors_metric_;
  obs::Counter* slow_queries_metric_;
  obs::Histogram* statement_latency_;
  /// SET slow_query_ns: statements at or above this wall time bump
  /// expdb_sql_slow_queries_total and emit a "slow_query" event. Negative
  /// disables (the default).
  int64_t slow_query_threshold_ns_ = -1;
};

}  // namespace sql
}  // namespace expdb

#endif  // EXPDB_SQL_SESSION_H_
