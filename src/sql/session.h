// Session: an embedded ExpSQL endpoint — a database with expiration
// management, materialized views, and a statement executor.

#ifndef EXPDB_SQL_SESSION_H_
#define EXPDB_SQL_SESSION_H_

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "expiration/constraint.h"
#include "expiration/expiration_queue.h"
#include "obs/metrics.h"
#include "plan/cache.h"
#include "plan/planner.h"
#include "sql/ast.h"
#include "view/view_manager.h"

namespace expdb {
namespace sql {

/// \brief Outcome of executing one statement.
struct ExecResult {
  /// Human-readable summary ("1 row inserted", "time is 5", ...).
  std::string message;
  /// Result rows for SELECT (filtered through expτ at `served_at`).
  std::optional<Relation> relation;
  /// The time the result reflects. Equal to the session time except for
  /// Schrödinger views with move-backward/-forward policies.
  Timestamp served_at;
};

/// \brief Renders an ExecResult as a table (or the message) for a REPL.
std::string FormatExecResult(const ExecResult& result);

/// \brief One embedded database session.
///
/// All reads are expiration-transparent: queries never see expired tuples
/// and never mention expiration. Expiration surfaces only in INSERT
/// (EXPIRE AT / TTL), ADVANCE TIME, and triggers — exactly the paper's
/// interface contract.
class Session {
 public:
  struct Options {
    ExpirationManagerOptions expiration;
    EvalOptions eval;
    /// Apply the Sec. 3.1 independence-extending rewrites to every view
    /// definition (never changes results; can only delay recomputation).
    bool rewrite_views = true;
  };

  Session() : Session(Options{}) {}
  explicit Session(Options options);

  /// \brief Parses and executes one statement.
  Result<ExecResult> Execute(const std::string& statement);

  /// \brief Executes a ';'-separated script; stops at the first error.
  Result<std::vector<ExecResult>> ExecuteScript(const std::string& script);

  Database& db() { return expiration_.db(); }
  const Database& db() const { return expiration_.db(); }
  Timestamp Now() const { return expiration_.Now(); }
  ExpirationManager& expiration() { return expiration_; }
  ViewManager& views() { return views_; }
  ConstraintSet& constraints() { return constraints_; }

 private:
  /// Executes one parsed statement with the sql.statement span and the
  /// expdb_sql_* statement/error counters applied.
  Result<ExecResult> ExecuteCounted(const Statement& stmt);
  Result<ExecResult> ExecuteStatement(const Statement& stmt);
  Result<ExecResult> ExecuteSelect(const SelectStatement& stmt);
  Result<ExecResult> ExecuteCreateTable(const CreateTableStatement& stmt);
  Result<ExecResult> ExecuteInsert(const InsertStatement& stmt);
  Result<ExecResult> ExecuteCreateView(const CreateViewStatement& stmt);
  Result<ExecResult> ExecuteDrop(const DropStatement& stmt);
  Result<ExecResult> ExecuteAdvance(const AdvanceStatement& stmt);
  Result<ExecResult> ExecuteShow(const ShowStatement& stmt);
  Result<ExecResult> ExecuteDelete(const DeleteStatement& stmt);
  Result<ExecResult> ExecuteStats(const StatsStatement& stmt);
  Result<ExecResult> ExecuteExplain(const ExplainStatement& stmt);
  Result<ExecResult> ExecuteSet(const SetStatement& stmt);
  Result<ExecResult> ExecuteTrace(const TraceStatement& stmt);
  Result<ExecResult> ExecutePrepare(const PrepareStatement& stmt);
  Result<ExecResult> ExecuteRunPrepared(const ExecutePreparedStatement& stmt);
  Result<ExecResult> ExecuteCache(const CacheStatement& stmt);

  /// The planner options every facade execution path uses: the session's
  /// EvalOptions, expiration-aware optimizations on, Sec. 3.1 rewrites
  /// off. Shared by SELECT, PREPARE, and EXPLAIN so the rendered EXPLAIN
  /// plan is the one a plain SELECT runs.
  plan::PlannerOptions MakePlannerOptions() const;

  /// The shared tail of every cached execution (normalized SELECT and
  /// EXECUTE): result-cache lookup, then on a miss InstantiatePlan +
  /// ExecutePlan (capturing node state when the plan is
  /// incrementalizable) and a result-cache fill.
  Result<ExecResult> ExecutePlannedSelect(const plan::PreparedPlan& prepared,
                                          const std::vector<Value>& args,
                                          Timestamp now);

  /// DDL on `table`: drops dependent entries from both cache tiers and
  /// every prepared statement reading it.
  void InvalidateCachesFor(const std::string& table);

  /// When `stmt` references views, fills `scratch` with the referenced
  /// views' current contents (renamed to their declared columns) plus
  /// copies of the referenced base tables, and returns `scratch`;
  /// otherwise returns the live database. Shared by SELECT and EXPLAIN.
  Result<const Database*> ResolveCatalog(const SelectStatement& stmt,
                                         Timestamp now, Database* scratch);

  ExpirationManager expiration_;
  ViewManager views_;
  ConstraintSet constraints_;
  EvalOptions eval_options_;
  bool rewrite_views_ = true;
  /// Output column names recorded at CREATE VIEW time, applied when the
  /// view is read back.
  std::map<std::string, std::vector<std::string>> view_columns_;
  /// Tier 1: parameterized plan skeletons keyed by normalized statement
  /// fingerprint (docs/PERFORMANCE.md §7).
  plan::StatementCache stmt_cache_;
  /// Tier 2: expiration-stamped materialized results.
  plan::ResultCache result_cache_;
  /// PREPARE name AS SELECT ... — explicit prepared statements. Distinct
  /// from the fingerprint-keyed statement cache (names are user-chosen;
  /// re-PREPARE replaces silently).
  std::map<std::string, plan::PreparedPlan> prepared_;
  // Process-wide SQL metrics (registry-owned; see docs/OBSERVABILITY.md).
  obs::Counter* statements_metric_;
  obs::Counter* errors_metric_;
  obs::Counter* slow_queries_metric_;
  obs::Histogram* statement_latency_;
  /// SET slow_query_ns: statements at or above this wall time bump
  /// expdb_sql_slow_queries_total and emit a "slow_query" event. Negative
  /// disables (the default).
  int64_t slow_query_threshold_ns_ = -1;
};

}  // namespace sql
}  // namespace expdb

#endif  // EXPDB_SQL_SESSION_H_
