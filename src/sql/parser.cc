#include "sql/parser.h"

#include "common/str_util.h"
#include "sql/lexer.h"

namespace expdb {
namespace sql {

namespace {

/// Token-stream cursor with convenience accept/expect helpers.
class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<Statement> ParseOne() {
    EXPDB_ASSIGN_OR_RETURN(Statement stmt, ParseStatementInner());
    AcceptSymbol(";");
    if (!AtEnd()) {
      return Status::ParseError("trailing input after statement: " +
                                Peek().ToString());
    }
    return stmt;
  }

 private:
  const Token& Peek(size_t k = 0) const {
    const size_t i = pos_ + k;
    return i < tokens_.size() ? tokens_[i] : tokens_.back();
  }
  bool AtEnd() const { return Peek().type == TokenType::kEnd; }
  const Token& Advance() { return tokens_[pos_++]; }

  bool AcceptKeyword(std::string_view kw) {
    if (Peek().IsKeyword(kw)) {
      ++pos_;
      return true;
    }
    return false;
  }
  bool AcceptSymbol(std::string_view s) {
    if (Peek().IsSymbol(s)) {
      ++pos_;
      return true;
    }
    return false;
  }
  Status ExpectKeyword(std::string_view kw) {
    if (!AcceptKeyword(kw)) {
      return Status::ParseError("expected " + std::string(kw) + ", got " +
                                Peek().ToString());
    }
    return Status::OK();
  }
  Status ExpectSymbol(std::string_view s) {
    if (!AcceptSymbol(s)) {
      return Status::ParseError("expected '" + std::string(s) + "', got " +
                                Peek().ToString());
    }
    return Status::OK();
  }
  Result<std::string> ExpectIdentifier(std::string_view what) {
    if (Peek().type != TokenType::kIdentifier) {
      return Status::ParseError("expected " + std::string(what) + ", got " +
                                Peek().ToString());
    }
    return Advance().text;
  }
  Result<int64_t> ExpectInteger(std::string_view what) {
    if (Peek().type != TokenType::kInteger) {
      return Status::ParseError("expected " + std::string(what) + ", got " +
                                Peek().ToString());
    }
    return Advance().int_value;
  }

  Result<Statement> ParseStatementInner() {
    if (Peek().IsKeyword("SELECT")) {
      EXPDB_ASSIGN_OR_RETURN(SelectStatement s, ParseSelect());
      return Statement(std::move(s));
    }
    if (AcceptKeyword("CREATE")) return ParseCreate();
    if (AcceptKeyword("INSERT")) return ParseInsert();
    if (AcceptKeyword("DROP")) return ParseDrop();
    if (AcceptKeyword("ADVANCE")) return ParseAdvance();
    if (AcceptKeyword("SHOW")) return ParseShow();
    if (AcceptKeyword("DELETE")) return ParseDelete();
    if (AcceptKeyword("STATS")) return ParseStats(/*explain=*/false);
    if (AcceptKeyword("EXPLAIN")) {
      if (AcceptKeyword("STATS")) return ParseStats(/*explain=*/true);
      return ParseExplain();
    }
    if (AcceptKeyword("SET")) return ParseSet();
    if (AcceptKeyword("TRACE")) return ParseTrace();
    if (AcceptKeyword("PREPARE")) return ParsePrepare();
    if (AcceptKeyword("EXECUTE")) return ParseExecute();
    if (AcceptKeyword("CACHE")) return ParseCache();
    if (AcceptKeyword("MAINTENANCE")) return ParseMaintenance();
    if (AcceptKeyword("MONITOR")) return ParseMonitor();
    return Status::ParseError("expected a statement, got " +
                              Peek().ToString());
  }

  // PREPARE name AS SELECT ... ($n placeholders allowed in WHERE).
  Result<Statement> ParsePrepare() {
    PrepareStatement out;
    EXPDB_ASSIGN_OR_RETURN(out.name, ExpectIdentifier("statement name"));
    EXPDB_RETURN_NOT_OK(ExpectKeyword("AS"));
    if (!Peek().IsKeyword("SELECT")) {
      return Status::ParseError("expected SELECT after PREPARE ... AS, got " +
                                Peek().ToString());
    }
    EXPDB_ASSIGN_OR_RETURN(out.select, ParseSelect());
    return Statement(std::move(out));
  }

  // EXECUTE name [(literal, ...)].
  Result<Statement> ParseExecute() {
    ExecutePreparedStatement out;
    EXPDB_ASSIGN_OR_RETURN(out.name, ExpectIdentifier("statement name"));
    if (AcceptSymbol("(")) {
      if (!AcceptSymbol(")")) {
        do {
          const Token& t = Peek();
          if (t.type == TokenType::kInteger) {
            out.args.emplace_back(t.int_value);
          } else if (t.type == TokenType::kDouble) {
            out.args.emplace_back(t.double_value);
          } else if (t.type == TokenType::kString) {
            out.args.emplace_back(t.text);
          } else {
            return Status::ParseError(
                "expected a literal argument, got " + t.ToString());
          }
          Advance();
        } while (AcceptSymbol(","));
        EXPDB_RETURN_NOT_OK(ExpectSymbol(")"));
      }
    }
    return Statement(std::move(out));
  }

  // CACHE STATS | CLEAR (CLEAR is a bare identifier, kept unreserved).
  Result<Statement> ParseCache() {
    CacheStatement out;
    if (AcceptKeyword("STATS")) {
      out.what = CacheStatement::What::kStats;
      return Statement(std::move(out));
    }
    if (Peek().type == TokenType::kIdentifier &&
        AsciiEqualsIgnoreCase(Peek().text, "CLEAR")) {
      Advance();
      out.what = CacheStatement::What::kClear;
      return Statement(std::move(out));
    }
    return Status::ParseError("expected STATS or CLEAR after CACHE, got " +
                              Peek().ToString());
  }

  // MAINTENANCE STATUS | PAUSE | RESUME | RUN (the subcommands are bare
  // identifiers, kept unreserved like CACHE CLEAR).
  Result<Statement> ParseMaintenance() {
    MaintenanceStatement out;
    if (Peek().type == TokenType::kIdentifier) {
      if (AsciiEqualsIgnoreCase(Peek().text, "STATUS")) {
        Advance();
        out.what = MaintenanceStatement::What::kStatus;
        return Statement(std::move(out));
      }
      if (AsciiEqualsIgnoreCase(Peek().text, "PAUSE")) {
        Advance();
        out.what = MaintenanceStatement::What::kPause;
        return Statement(std::move(out));
      }
      if (AsciiEqualsIgnoreCase(Peek().text, "RESUME")) {
        Advance();
        out.what = MaintenanceStatement::What::kResume;
        return Statement(std::move(out));
      }
      if (AsciiEqualsIgnoreCase(Peek().text, "RUN")) {
        Advance();
        out.what = MaintenanceStatement::What::kRun;
        return Statement(std::move(out));
      }
    }
    return Status::ParseError(
        "expected STATUS, PAUSE, RESUME, or RUN after MAINTENANCE, got " +
        Peek().ToString());
  }

  // MONITOR STATUS | HISTORY <metric> | THRESHOLDS (subcommands are
  // bare identifiers, kept unreserved like the MAINTENANCE ones).
  Result<Statement> ParseMonitor() {
    MonitorStatement out;
    if (Peek().type == TokenType::kIdentifier) {
      if (AsciiEqualsIgnoreCase(Peek().text, "STATUS")) {
        Advance();
        out.what = MonitorStatement::What::kStatus;
        return Statement(std::move(out));
      }
      if (AsciiEqualsIgnoreCase(Peek().text, "HISTORY")) {
        Advance();
        out.what = MonitorStatement::What::kHistory;
        EXPDB_ASSIGN_OR_RETURN(out.metric, ExpectIdentifier("metric name"));
        return Statement(std::move(out));
      }
      if (AsciiEqualsIgnoreCase(Peek().text, "THRESHOLDS")) {
        Advance();
        out.what = MonitorStatement::What::kThresholds;
        return Statement(std::move(out));
      }
    }
    return Status::ParseError(
        "expected STATUS, HISTORY <metric>, or THRESHOLDS after MONITOR, "
        "got " +
        Peek().ToString());
  }

  // SET name = value (value: integer, double, string, or bare word).
  Result<Statement> ParseSet() {
    SetStatement out;
    EXPDB_ASSIGN_OR_RETURN(out.name, ExpectIdentifier("setting name"));
    out.name = AsciiToLower(out.name);
    EXPDB_RETURN_NOT_OK(ExpectSymbol("="));
    const Token& t = Peek();
    switch (t.type) {
      case TokenType::kInteger:
        out.value = Value(t.int_value);
        break;
      case TokenType::kDouble:
        out.value = Value(t.double_value);
        break;
      case TokenType::kString:
        out.value = Value(t.text);
        break;
      case TokenType::kIdentifier:
      case TokenType::kKeyword:
        // Bare words (on, off, ...) become strings; keywords too, so
        // e.g. SET event_log = RESET does not confuse the lexer.
        out.value = Value(AsciiToLower(t.text));
        break;
      default:
        return Status::ParseError("expected a setting value, got " +
                                  t.ToString());
    }
    Advance();
    return Statement(std::move(out));
  }

  // TRACE ON | OFF | SHOW | EXPORT '<file>'. ON/OFF/EXPORT are bare
  // identifiers (kept unreserved); SHOW is already a keyword.
  Result<Statement> ParseTrace() {
    TraceStatement out;
    if (AcceptKeyword("SHOW")) {
      out.what = TraceStatement::What::kShow;
      return Statement(std::move(out));
    }
    if (Peek().type == TokenType::kIdentifier) {
      if (AsciiEqualsIgnoreCase(Peek().text, "ON")) {
        Advance();
        out.what = TraceStatement::What::kOn;
        return Statement(std::move(out));
      }
      if (AsciiEqualsIgnoreCase(Peek().text, "OFF")) {
        Advance();
        out.what = TraceStatement::What::kOff;
        return Statement(std::move(out));
      }
      if (AsciiEqualsIgnoreCase(Peek().text, "EXPORT")) {
        Advance();
        out.what = TraceStatement::What::kExport;
        if (Peek().type != TokenType::kString) {
          return Status::ParseError(
              "expected a quoted file path after TRACE EXPORT, got " +
              Peek().ToString());
        }
        out.path = Advance().text;
        return Statement(std::move(out));
      }
    }
    return Status::ParseError(
        "expected ON, OFF, SHOW, or EXPORT after TRACE, got " +
        Peek().ToString());
  }

  // EXPLAIN [PLAN | ANALYZE] SELECT ... (bare EXPLAIN means PLAN).
  Result<Statement> ParseExplain() {
    ExplainStatement out;
    if (Peek().type == TokenType::kIdentifier) {
      if (AsciiEqualsIgnoreCase(Peek().text, "PLAN")) {
        Advance();
        out.what = ExplainStatement::What::kPlan;
      } else if (AsciiEqualsIgnoreCase(Peek().text, "ANALYZE")) {
        Advance();
        out.what = ExplainStatement::What::kAnalyze;
      }
    }
    if (!Peek().IsKeyword("SELECT")) {
      return Status::ParseError(
          "expected PLAN, ANALYZE, STATS, or SELECT after EXPLAIN, got " +
          Peek().ToString());
    }
    EXPDB_ASSIGN_OR_RETURN(out.select, ParseSelect());
    return Statement(std::move(out));
  }

  // STATS [PROMETHEUS | JSON | RESET]; EXPLAIN STATS takes no modifier.
  Result<Statement> ParseStats(bool explain) {
    StatsStatement out;
    out.explain = explain;
    if (!explain && AcceptKeyword("RESET")) {
      out.reset = true;
      return Statement(std::move(out));
    }
    if (!explain && Peek().type == TokenType::kIdentifier) {
      if (AsciiEqualsIgnoreCase(Peek().text, "PROMETHEUS")) {
        Advance();
        out.format = StatsStatement::Format::kPrometheus;
      } else if (AsciiEqualsIgnoreCase(Peek().text, "JSON")) {
        Advance();
        out.format = StatsStatement::Format::kJson;
      } else {
        return Status::ParseError(
            "expected PROMETHEUS, JSON, or RESET after STATS, got " +
            Peek().ToString());
      }
    }
    return Statement(std::move(out));
  }

  // SELECT ... [UNION|INTERSECT|EXCEPT SELECT ...]
  Result<SelectStatement> ParseSelect() {
    EXPDB_RETURN_NOT_OK(ExpectKeyword("SELECT"));
    SelectStatement out;
    out.distinct = AcceptKeyword("DISTINCT");

    // Select list.
    do {
      EXPDB_ASSIGN_OR_RETURN(SelectItem item, ParseSelectItem());
      out.items.push_back(std::move(item));
    } while (AcceptSymbol(","));

    EXPDB_RETURN_NOT_OK(ExpectKeyword("FROM"));
    do {
      TableRef ref;
      EXPDB_ASSIGN_OR_RETURN(ref.name, ExpectIdentifier("table name"));
      if (AcceptKeyword("AS")) {
        EXPDB_ASSIGN_OR_RETURN(ref.alias, ExpectIdentifier("alias"));
      } else if (Peek().type == TokenType::kIdentifier) {
        ref.alias = Advance().text;
      }
      out.from.push_back(std::move(ref));
    } while (AcceptSymbol(","));

    if (AcceptKeyword("WHERE")) {
      EXPDB_ASSIGN_OR_RETURN(out.where, ParseBoolExpr());
    }
    if (AcceptKeyword("GROUP")) {
      EXPDB_RETURN_NOT_OK(ExpectKeyword("BY"));
      do {
        EXPDB_ASSIGN_OR_RETURN(ColumnRef col, ParseColumnRef());
        out.group_by.push_back(std::move(col));
      } while (AcceptSymbol(","));
    }

    if (AcceptKeyword("UNION")) {
      out.set_op = SelectStatement::SetOp::kUnion;
    } else if (AcceptKeyword("INTERSECT")) {
      out.set_op = SelectStatement::SetOp::kIntersect;
    } else if (AcceptKeyword("EXCEPT")) {
      out.set_op = SelectStatement::SetOp::kExcept;
    }
    if (out.set_op != SelectStatement::SetOp::kNone) {
      EXPDB_ASSIGN_OR_RETURN(SelectStatement rhs, ParseSelect());
      out.set_rhs = std::make_shared<SelectStatement>(std::move(rhs));
    }
    return out;
  }

  Result<SelectItem> ParseSelectItem() {
    SelectItem item;
    if (AcceptSymbol("*")) {
      item.kind = SelectItem::Kind::kStar;
      return item;
    }
    // Aggregate?
    for (auto [kw, kind] :
         {std::pair{"MIN", AggregateKind::kMin},
          std::pair{"MAX", AggregateKind::kMax},
          std::pair{"SUM", AggregateKind::kSum},
          std::pair{"COUNT", AggregateKind::kCount},
          std::pair{"AVG", AggregateKind::kAvg}}) {
      if (Peek().IsKeyword(kw) && Peek(1).IsSymbol("(")) {
        Advance();  // keyword
        Advance();  // (
        item.kind = SelectItem::Kind::kAggregate;
        item.aggregate = kind;
        if (AcceptSymbol("*")) {
          if (kind != AggregateKind::kCount) {
            return Status::ParseError("only COUNT may take *");
          }
          item.aggregate_star = true;
        } else {
          EXPDB_ASSIGN_OR_RETURN(item.column, ParseColumnRef());
        }
        EXPDB_RETURN_NOT_OK(ExpectSymbol(")"));
        if (AcceptKeyword("AS")) {
          EXPDB_ASSIGN_OR_RETURN(item.alias, ExpectIdentifier("alias"));
        }
        return item;
      }
    }
    item.kind = SelectItem::Kind::kColumn;
    EXPDB_ASSIGN_OR_RETURN(item.column, ParseColumnRef());
    if (AcceptKeyword("AS")) {
      EXPDB_ASSIGN_OR_RETURN(item.alias, ExpectIdentifier("alias"));
    }
    return item;
  }

  Result<ColumnRef> ParseColumnRef() {
    ColumnRef col;
    EXPDB_ASSIGN_OR_RETURN(col.column, ExpectIdentifier("column name"));
    if (AcceptSymbol(".")) {
      col.table = std::move(col.column);
      EXPDB_ASSIGN_OR_RETURN(col.column, ExpectIdentifier("column name"));
    }
    return col;
  }

  // Boolean expressions: OR < AND < NOT < comparison.
  Result<BoolExprPtr> ParseBoolExpr() { return ParseOr(); }

  Result<BoolExprPtr> ParseOr() {
    EXPDB_ASSIGN_OR_RETURN(BoolExprPtr lhs, ParseAnd());
    while (AcceptKeyword("OR")) {
      EXPDB_ASSIGN_OR_RETURN(BoolExprPtr rhs, ParseAnd());
      auto node = std::make_shared<BoolExpr>();
      node->kind = BoolExpr::Kind::kOr;
      node->left = std::move(lhs);
      node->right = std::move(rhs);
      lhs = std::move(node);
    }
    return lhs;
  }

  Result<BoolExprPtr> ParseAnd() {
    EXPDB_ASSIGN_OR_RETURN(BoolExprPtr lhs, ParseNot());
    while (AcceptKeyword("AND")) {
      EXPDB_ASSIGN_OR_RETURN(BoolExprPtr rhs, ParseNot());
      auto node = std::make_shared<BoolExpr>();
      node->kind = BoolExpr::Kind::kAnd;
      node->left = std::move(lhs);
      node->right = std::move(rhs);
      lhs = std::move(node);
    }
    return lhs;
  }

  Result<BoolExprPtr> ParseNot() {
    if (AcceptKeyword("NOT")) {
      EXPDB_ASSIGN_OR_RETURN(BoolExprPtr inner, ParseNot());
      auto node = std::make_shared<BoolExpr>();
      node->kind = BoolExpr::Kind::kNot;
      node->left = std::move(inner);
      return node;
    }
    if (AcceptSymbol("(")) {
      EXPDB_ASSIGN_OR_RETURN(BoolExprPtr inner, ParseBoolExpr());
      EXPDB_RETURN_NOT_OK(ExpectSymbol(")"));
      return inner;
    }
    return ParseComparison();
  }

  Result<BoolExprPtr> ParseComparison() {
    auto node = std::make_shared<BoolExpr>();
    node->kind = BoolExpr::Kind::kCompare;
    EXPDB_ASSIGN_OR_RETURN(node->lhs, ParseScalarOperand());
    const Token& op = Peek();
    if (op.IsSymbol("=")) {
      node->op = ComparisonOp::kEq;
    } else if (op.IsSymbol("!=")) {
      node->op = ComparisonOp::kNe;
    } else if (op.IsSymbol("<")) {
      node->op = ComparisonOp::kLt;
    } else if (op.IsSymbol("<=")) {
      node->op = ComparisonOp::kLe;
    } else if (op.IsSymbol(">")) {
      node->op = ComparisonOp::kGt;
    } else if (op.IsSymbol(">=")) {
      node->op = ComparisonOp::kGe;
    } else {
      return Status::ParseError("expected comparison operator, got " +
                                op.ToString());
    }
    Advance();
    EXPDB_ASSIGN_OR_RETURN(node->rhs, ParseScalarOperand());
    return node;
  }

  Result<ScalarOperand> ParseScalarOperand() {
    ScalarOperand out;
    const Token& t = Peek();
    switch (t.type) {
      case TokenType::kInteger:
        out.constant = Value(t.int_value);
        Advance();
        return out;
      case TokenType::kDouble:
        out.constant = Value(t.double_value);
        Advance();
        return out;
      case TokenType::kString:
        out.constant = Value(t.text);
        Advance();
        return out;
      case TokenType::kIdentifier: {
        out.is_column = true;
        EXPDB_ASSIGN_OR_RETURN(out.column, ParseColumnRef());
        return out;
      }
      case TokenType::kSymbol:
        if (t.text == "$") {
          Advance();
          EXPDB_ASSIGN_OR_RETURN(int64_t idx,
                                 ExpectInteger("parameter number"));
          if (idx < 1) {
            return Status::ParseError("parameter numbers start at $1");
          }
          out.is_parameter = true;
          out.parameter_index = static_cast<size_t>(idx - 1);
          return out;
        }
        return Status::ParseError(
            "expected a column, literal, or $n parameter, got " +
            t.ToString());
      default:
        return Status::ParseError(
            "expected a column, literal, or $n parameter, got " +
            t.ToString());
    }
  }

  Result<Statement> ParseCreate() {
    if (AcceptKeyword("TABLE")) return ParseCreateTable();
    bool materialized = AcceptKeyword("MATERIALIZED");
    if (AcceptKeyword("VIEW")) return ParseCreateView(materialized);
    return Status::ParseError("expected TABLE or VIEW after CREATE, got " +
                              Peek().ToString());
  }

  Result<Statement> ParseCreateTable() {
    CreateTableStatement out;
    EXPDB_ASSIGN_OR_RETURN(out.name, ExpectIdentifier("table name"));
    EXPDB_RETURN_NOT_OK(ExpectSymbol("("));
    do {
      Attribute attr;
      EXPDB_ASSIGN_OR_RETURN(attr.name, ExpectIdentifier("column name"));
      if (AcceptKeyword("INT")) {
        attr.type = ValueType::kInt64;
      } else if (AcceptKeyword("DOUBLE")) {
        attr.type = ValueType::kDouble;
      } else if (AcceptKeyword("STRING")) {
        attr.type = ValueType::kString;
      } else {
        return Status::ParseError(
            "expected column type (INT, DOUBLE, STRING), got " +
            Peek().ToString());
      }
      out.columns.push_back(std::move(attr));
    } while (AcceptSymbol(","));
    EXPDB_RETURN_NOT_OK(ExpectSymbol(")"));
    return Statement(std::move(out));
  }

  Result<Statement> ParseCreateView(bool materialized) {
    CreateViewStatement out;
    out.materialized = materialized;
    EXPDB_ASSIGN_OR_RETURN(out.name, ExpectIdentifier("view name"));
    if (AcceptKeyword("WITH")) {
      EXPDB_RETURN_NOT_OK(ExpectSymbol("("));
      do {
        EXPDB_ASSIGN_OR_RETURN(std::string key,
                               ExpectIdentifier("option name"));
        EXPDB_RETURN_NOT_OK(ExpectSymbol("="));
        std::string value;
        if (Peek().type == TokenType::kIdentifier ||
            Peek().type == TokenType::kString ||
            Peek().type == TokenType::kInteger ||
            Peek().type == TokenType::kDouble) {
          value = Advance().text;
        } else {
          return Status::ParseError("expected option value, got " +
                                    Peek().ToString());
        }
        out.options[AsciiToLower(key)] = AsciiToLower(value);
      } while (AcceptSymbol(","));
      EXPDB_RETURN_NOT_OK(ExpectSymbol(")"));
    }
    EXPDB_RETURN_NOT_OK(ExpectKeyword("AS"));
    EXPDB_ASSIGN_OR_RETURN(out.select, ParseSelect());
    return Statement(std::move(out));
  }

  Result<Statement> ParseInsert() {
    EXPDB_RETURN_NOT_OK(ExpectKeyword("INTO"));
    InsertStatement out;
    EXPDB_ASSIGN_OR_RETURN(out.table, ExpectIdentifier("table name"));
    EXPDB_RETURN_NOT_OK(ExpectKeyword("VALUES"));
    do {
      EXPDB_RETURN_NOT_OK(ExpectSymbol("("));
      std::vector<Value> row;
      do {
        const Token& t = Peek();
        if (t.type == TokenType::kInteger) {
          row.emplace_back(t.int_value);
        } else if (t.type == TokenType::kDouble) {
          row.emplace_back(t.double_value);
        } else if (t.type == TokenType::kString) {
          row.emplace_back(t.text);
        } else {
          return Status::ParseError("expected a literal, got " +
                                    t.ToString());
        }
        Advance();
      } while (AcceptSymbol(","));
      EXPDB_RETURN_NOT_OK(ExpectSymbol(")"));
      out.rows.push_back(std::move(row));
    } while (AcceptSymbol(","));

    if (AcceptKeyword("EXPIRE")) {
      if (AcceptKeyword("NEVER")) {
        out.expire_at = Timestamp::Infinity();
      } else {
        EXPDB_RETURN_NOT_OK(ExpectKeyword("AT"));
        EXPDB_ASSIGN_OR_RETURN(int64_t at, ExpectInteger("expiration time"));
        if (at < 0) return Status::ParseError("EXPIRE AT must be >= 0");
        out.expire_at = Timestamp(at);
      }
    } else if (AcceptKeyword("TTL")) {
      EXPDB_ASSIGN_OR_RETURN(int64_t ttl, ExpectInteger("ttl"));
      if (ttl <= 0) return Status::ParseError("TTL must be positive");
      out.ttl = ttl;
    }
    return Statement(std::move(out));
  }

  Result<Statement> ParseDrop() {
    DropStatement out;
    if (AcceptKeyword("TABLE")) {
      out.is_view = false;
    } else if (AcceptKeyword("VIEW")) {
      out.is_view = true;
    } else {
      return Status::ParseError("expected TABLE or VIEW after DROP, got " +
                                Peek().ToString());
    }
    EXPDB_ASSIGN_OR_RETURN(out.name, ExpectIdentifier("name"));
    return Statement(std::move(out));
  }

  Result<Statement> ParseAdvance() {
    EXPDB_RETURN_NOT_OK(ExpectKeyword("TIME"));
    AdvanceStatement out;
    if (Peek().type == TokenType::kIdentifier &&
        AsciiEqualsIgnoreCase(Peek().text, "TO")) {
      Advance();
      out.absolute = true;
    }
    EXPDB_ASSIGN_OR_RETURN(out.amount, ExpectInteger("time amount"));
    if (out.amount < 0) {
      return Status::ParseError("time amount must be >= 0");
    }
    return Statement(std::move(out));
  }

  Result<Statement> ParseShow() {
    ShowStatement out;
    if (AcceptKeyword("TABLES")) {
      out.what = ShowStatement::What::kTables;
    } else if (AcceptKeyword("VIEWS")) {
      out.what = ShowStatement::What::kViews;
    } else if (AcceptKeyword("TIME")) {
      out.what = ShowStatement::What::kTime;
    } else if (Peek().type == TokenType::kIdentifier &&
               AsciiEqualsIgnoreCase(Peek().text, "HEALTH")) {
      // HEALTH stays a bare identifier (unreserved, like CACHE CLEAR).
      Advance();
      out.what = ShowStatement::What::kHealth;
    } else {
      return Status::ParseError(
          "expected TABLES, VIEWS, TIME, or HEALTH after SHOW, got " +
          Peek().ToString());
    }
    return Statement(std::move(out));
  }

  Result<Statement> ParseDelete() {
    EXPDB_RETURN_NOT_OK(ExpectKeyword("FROM"));
    DeleteStatement out;
    EXPDB_ASSIGN_OR_RETURN(out.table, ExpectIdentifier("table name"));
    if (AcceptKeyword("WHERE")) {
      EXPDB_ASSIGN_OR_RETURN(out.where, ParseBoolExpr());
    }
    return Statement(std::move(out));
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

}  // namespace

Result<Statement> ParseStatement(const std::string& input) {
  EXPDB_ASSIGN_OR_RETURN(std::vector<Token> tokens, Lex(input));
  return Parser(std::move(tokens)).ParseOne();
}

Result<std::vector<Statement>> ParseScript(const std::string& input) {
  // Split on ';' outside string literals, then parse each piece.
  std::vector<Statement> out;
  std::string current;
  bool in_string = false;
  for (size_t i = 0; i < input.size(); ++i) {
    const char c = input[i];
    if (c == '\'') in_string = !in_string;
    if (c == ';' && !in_string) {
      bool blank = current.find_first_not_of(" \t\r\n") == std::string::npos;
      if (!blank) {
        EXPDB_ASSIGN_OR_RETURN(Statement stmt, ParseStatement(current));
        out.push_back(std::move(stmt));
      }
      current.clear();
    } else {
      current += c;
    }
  }
  bool blank = current.find_first_not_of(" \t\r\n") == std::string::npos;
  if (!blank) {
    EXPDB_ASSIGN_OR_RETURN(Statement stmt, ParseStatement(current));
    out.push_back(std::move(stmt));
  }
  return out;
}

}  // namespace sql
}  // namespace expdb
