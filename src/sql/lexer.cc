#include "sql/lexer.h"

#include <array>
#include <cctype>

#include "common/str_util.h"

namespace expdb {
namespace sql {

std::string_view TokenTypeToString(TokenType type) {
  switch (type) {
    case TokenType::kEnd:
      return "end";
    case TokenType::kIdentifier:
      return "identifier";
    case TokenType::kKeyword:
      return "keyword";
    case TokenType::kInteger:
      return "integer";
    case TokenType::kDouble:
      return "double";
    case TokenType::kString:
      return "string";
    case TokenType::kSymbol:
      return "symbol";
  }
  return "?";
}

std::string Token::ToString() const {
  if (type == TokenType::kEnd) return "<end>";
  return std::string(TokenTypeToString(type)) + " '" + text + "'";
}

namespace {

constexpr std::array kKeywords = {
    "SELECT",  "FROM",   "WHERE",     "GROUP",   "BY",      "AND",
    "OR",      "NOT",    "AS",        "CREATE",  "TABLE",   "VIEW",
    "MATERIALIZED",      "INSERT",    "INTO",    "VALUES",  "EXPIRE",
    "AT",      "TTL",    "UNION",     "INTERSECT",          "EXCEPT",
    "DROP",    "SHOW",   "TABLES",    "VIEWS",   "TIME",    "ADVANCE",
    "DELETE",  "MIN",    "MAX",       "SUM",     "COUNT",   "AVG",
    "INT",     "DOUBLE", "STRING",    "WITH",    "NEVER",   "TRIGGERS",
    "DISTINCT",          "STATS",     "EXPLAIN", "RESET",   "SET",
    "TRACE",   "PREPARE", "EXECUTE",  "CACHE",   "MAINTENANCE",
    "MONITOR"};

}  // namespace

bool IsReservedKeyword(const std::string& upper) {
  for (const char* kw : kKeywords) {
    if (upper == kw) return true;
  }
  return false;
}

Result<std::vector<Token>> Lex(const std::string& input) {
  std::vector<Token> out;
  size_t i = 0;
  const size_t n = input.size();

  auto peek = [&](size_t k = 0) -> char {
    return i + k < n ? input[i + k] : '\0';
  };

  while (i < n) {
    const char c = input[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    // Comments: -- to end of line.
    if (c == '-' && peek(1) == '-') {
      while (i < n && input[i] != '\n') ++i;
      continue;
    }
    const size_t start = i;

    // Numbers (integers and doubles), including a leading '-' when it
    // cannot be a binary operator (we only use '-' in literals).
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '-' && std::isdigit(static_cast<unsigned char>(peek(1))))) {
      size_t j = i + (c == '-' ? 1 : 0);
      bool is_double = false;
      while (j < n && (std::isdigit(static_cast<unsigned char>(input[j])) ||
                       input[j] == '.')) {
        if (input[j] == '.') {
          if (is_double) break;  // second dot terminates the number
          is_double = true;
        }
        ++j;
      }
      std::string text = input.substr(i, j - i);
      Token t;
      t.position = start;
      t.text = text;
      if (is_double) {
        auto v = ParseDouble(text);
        if (!v) {
          return Status::ParseError("malformed number '" + text + "'");
        }
        t.type = TokenType::kDouble;
        t.double_value = *v;
      } else {
        auto v = ParseInt64(text);
        if (!v) {
          return Status::ParseError("malformed integer '" + text + "'");
        }
        t.type = TokenType::kInteger;
        t.int_value = *v;
      }
      out.push_back(std::move(t));
      i = j;
      continue;
    }

    // Identifiers and keywords.
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      size_t j = i;
      while (j < n && (std::isalnum(static_cast<unsigned char>(input[j])) ||
                       input[j] == '_')) {
        ++j;
      }
      std::string word = input.substr(i, j - i);
      std::string upper = AsciiToUpper(word);
      Token t;
      t.position = start;
      if (IsReservedKeyword(upper)) {
        t.type = TokenType::kKeyword;
        t.text = std::move(upper);
      } else {
        t.type = TokenType::kIdentifier;
        t.text = std::move(word);
      }
      out.push_back(std::move(t));
      i = j;
      continue;
    }

    // String literals.
    if (c == '\'') {
      std::string text;
      size_t j = i + 1;
      bool closed = false;
      while (j < n) {
        if (input[j] == '\'' && j + 1 < n && input[j + 1] == '\'') {
          text += '\'';  // '' escapes a quote
          j += 2;
          continue;
        }
        if (input[j] == '\'') {
          closed = true;
          ++j;
          break;
        }
        text += input[j++];
      }
      if (!closed) {
        return Status::ParseError("unterminated string literal at offset " +
                                  std::to_string(start));
      }
      Token t;
      t.position = start;
      t.type = TokenType::kString;
      t.text = std::move(text);
      out.push_back(std::move(t));
      i = j;
      continue;
    }

    // Multi-character operators first.
    auto two = input.substr(i, 2);
    if (two == "!=" || two == "<=" || two == ">=" || two == "<>") {
      Token t;
      t.position = start;
      t.type = TokenType::kSymbol;
      t.text = (two == "<>") ? "!=" : two;
      out.push_back(std::move(t));
      i += 2;
      continue;
    }
    if (std::string_view("(),;.*=<>$").find(c) != std::string_view::npos) {
      Token t;
      t.position = start;
      t.type = TokenType::kSymbol;
      t.text = std::string(1, c);
      out.push_back(std::move(t));
      ++i;
      continue;
    }

    return Status::ParseError("unexpected character '" + std::string(1, c) +
                              "' at offset " + std::to_string(start));
  }

  Token end;
  end.type = TokenType::kEnd;
  end.position = n;
  out.push_back(std::move(end));
  return out;
}

}  // namespace sql
}  // namespace expdb
