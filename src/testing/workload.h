// Synthetic workload generation for property tests and benchmarks.
//
// Every experiment in EXPERIMENTS.md draws its data through this module
// from explicit seeds, making all reported numbers reproducible. Small
// value domains are deliberate defaults: they force duplicate tuples,
// shared projections, difference criticals, and multi-slice aggregate
// partitions — the interesting paths of the expiration algebra.

#ifndef EXPDB_TESTING_WORKLOAD_H_
#define EXPDB_TESTING_WORKLOAD_H_

#include <string>
#include <vector>

#include "common/rng.h"
#include "core/expression.h"
#include "relational/database.h"

namespace expdb {
namespace testing {

/// Shape of one synthetic relation.
struct RelationSpec {
  size_t num_tuples = 100;
  size_t arity = 2;
  /// Attribute values drawn uniformly from [0, value_domain).
  int64_t value_domain = 20;
  /// Tuple lifetimes drawn from [ttl_min, ttl_max] relative to the base
  /// time...
  int64_t ttl_min = 1;
  int64_t ttl_max = 50;
  /// ...except this fraction of tuples, which never expire.
  double infinite_fraction = 0.0;
  /// When > 0, lifetimes are Zipf-skewed toward ttl_min instead of
  /// uniform.
  double ttl_zipf_skew = 0.0;
};

/// \brief Generates a random relation (all-int64 schema, attribute names
/// a1..ak) whose tuples expire at base + ttl.
Relation MakeRandomRelation(Rng& rng, const RelationSpec& spec,
                            Timestamp base = Timestamp::Zero());

/// \brief Creates `count` relations named prefix0..prefix{count-1}, all
/// with the spec's shape (hence union-compatible with one another).
Status FillDatabase(Database* db, Rng& rng, const RelationSpec& spec,
                    size_t count, const std::string& prefix = "R",
                    Timestamp base = Timestamp::Zero());

/// Shape of a random algebra expression.
struct ExpressionSpec {
  /// Maximum tree depth (1 = a bare base relation).
  size_t max_depth = 4;
  /// Allow the non-monotonic operators (−exp, aggexp).
  bool allow_nonmonotonic = false;
  /// Bound on intermediate arity (products/joins stop growing past it).
  size_t max_arity = 6;
};

/// \brief Generates a random well-typed expression over the relations in
/// `db` (which must all be int64-typed, as FillDatabase produces).
ExpressionPtr MakeRandomExpression(Rng& rng, const Database& db,
                                   const ExpressionSpec& spec);

/// \brief All finite expiration times occurring in the database, sorted
/// and deduplicated — the interesting τ values for a sweep.
std::vector<Timestamp> InterestingTimes(const Database& db);

}  // namespace testing
}  // namespace expdb

#endif  // EXPDB_TESTING_WORKLOAD_H_
