#include "testing/workload.h"

#include <algorithm>
#include <cassert>
#include <optional>
#include <set>

namespace expdb {
namespace testing {

namespace {

Schema IntSchema(size_t arity, const std::string& prefix = "a") {
  std::vector<Attribute> attrs;
  attrs.reserve(arity);
  for (size_t i = 0; i < arity; ++i) {
    attrs.push_back({prefix + std::to_string(i + 1), ValueType::kInt64});
  }
  return Schema(std::move(attrs));
}

}  // namespace

Relation MakeRandomRelation(Rng& rng, const RelationSpec& spec,
                            Timestamp base) {
  assert(spec.arity >= 1);
  assert(spec.ttl_min >= 1 && spec.ttl_min <= spec.ttl_max);
  Relation out(IntSchema(spec.arity));
  std::optional<ZipfDistribution> zipf;
  if (spec.ttl_zipf_skew > 0) {
    zipf.emplace(spec.ttl_max - spec.ttl_min + 1, spec.ttl_zipf_skew);
  }
  for (size_t i = 0; i < spec.num_tuples; ++i) {
    std::vector<Value> values;
    values.reserve(spec.arity);
    for (size_t j = 0; j < spec.arity; ++j) {
      values.emplace_back(rng.UniformInt(0, spec.value_domain - 1));
    }
    Timestamp texp;
    if (spec.infinite_fraction > 0 && rng.Bernoulli(spec.infinite_fraction)) {
      texp = Timestamp::Infinity();
    } else if (zipf.has_value()) {
      texp = base + (spec.ttl_min + zipf->Sample(rng) - 1);
    } else {
      texp = base + rng.UniformInt(spec.ttl_min, spec.ttl_max);
    }
    // Set semantics: duplicates keep the max texp, so the generated
    // relation may hold fewer than num_tuples distinct tuples.
    Status st = out.Insert(Tuple(std::move(values)), texp);
    assert(st.ok());
    (void)st;
  }
  return out;
}

Status FillDatabase(Database* db, Rng& rng, const RelationSpec& spec,
                    size_t count, const std::string& prefix,
                    Timestamp base) {
  for (size_t i = 0; i < count; ++i) {
    EXPDB_RETURN_NOT_OK(db->PutRelation(prefix + std::to_string(i),
                                        MakeRandomRelation(rng, spec, base)));
  }
  return Status::OK();
}

namespace {

/// Recursive generator tracking the output arity and column types of each
/// subtree (types matter: avg produces double columns, and set operations
/// require union compatibility).
class ExprGen {
 public:
  struct Typed {
    ExpressionPtr expr;
    std::vector<ValueType> types;
    size_t arity() const { return types.size(); }
  };

  ExprGen(Rng& rng, const Database& db, const ExpressionSpec& spec)
      : rng_(rng), db_(db), spec_(spec), names_(db.RelationNames()) {}

  Typed Gen(size_t depth) {
    if (depth <= 1 || names_.empty()) return GenBase();
    // Pick an operator; weights tilt toward structure-preserving ops so
    // deep trees stay cheap to evaluate.
    const int64_t roll =
        rng_.UniformInt(0, spec_.allow_nonmonotonic ? 11 : 7);
    switch (roll) {
      case 0:
      case 1:
        return GenSelect(depth);
      case 2:
        return GenProject(depth);
      case 3:
        return GenUnionLike(depth, ExprKind::kUnion);
      case 4:
        return GenUnionLike(depth, ExprKind::kIntersect);
      case 5:
        return GenJoin(depth);
      case 6:
        return GenBase();
      case 7:
        return GenSemiOrAntiJoin(depth, /*anti=*/false);
      case 8:
      case 9:
        return GenUnionLike(depth, ExprKind::kDifference);
      case 10:
        return GenSemiOrAntiJoin(depth, /*anti=*/true);
      default:
        return GenAggregate(depth);
    }
  }

 private:
  Typed GenBase() {
    const std::string& name = names_[static_cast<size_t>(
        rng_.UniformInt(0, static_cast<int64_t>(names_.size()) - 1))];
    const Relation* rel = db_.GetRelation(name).value();
    std::vector<ValueType> types;
    for (const Attribute& a : rel->schema().attributes()) {
      types.push_back(a.type);
    }
    return {algebra::Base(name), std::move(types)};
  }

  size_t RandomIndex(size_t arity) {
    return static_cast<size_t>(
        rng_.UniformInt(0, static_cast<int64_t>(arity) - 1));
  }

  Predicate RandomPredicate(size_t arity) {
    // Mix of correlated (j = k style, plus inequalities) and uncorrelated
    // (j op constant) atoms, sometimes ∧/∨-combined.
    auto atom = [&]() {
      const size_t i = RandomIndex(arity);
      const ComparisonOp op = static_cast<ComparisonOp>(rng_.UniformInt(0, 5));
      if (rng_.Bernoulli(0.5) && arity >= 2) {
        return Predicate::Compare(Operand::Column(i), op,
                                  Operand::Column(RandomIndex(arity)));
      }
      return Predicate::Compare(
          Operand::Column(i), op,
          Operand::Constant(Value(rng_.UniformInt(0, 19))));
    };
    Predicate p = atom();
    const int extra = static_cast<int>(rng_.UniformInt(0, 2));
    for (int k = 0; k < extra; ++k) {
      p = rng_.Bernoulli(0.5) ? p.And(atom()) : p.Or(atom());
    }
    return p;
  }

  Typed GenSelect(size_t depth) {
    Typed child = Gen(depth - 1);
    return {algebra::Select(child.expr, RandomPredicate(child.arity())),
            child.types};
  }

  Typed GenProject(size_t depth) {
    Typed child = Gen(depth - 1);
    const size_t out_arity = static_cast<size_t>(
        rng_.UniformInt(1, static_cast<int64_t>(child.arity())));
    std::vector<size_t> cols;
    std::vector<ValueType> types;
    for (size_t i = 0; i < out_arity; ++i) {
      cols.push_back(RandomIndex(child.arity()));
      types.push_back(child.types[cols.back()]);
    }
    return {algebra::Project(child.expr, std::move(cols)),
            std::move(types)};
  }

  /// Coerces `e` to exactly the wanted column types by projecting: for
  /// each wanted type, picks some column of `e` with that type (columns
  /// may repeat). Returns nullopt when `e` lacks a needed type entirely.
  std::optional<Typed> CoerceTypes(const Typed& e,
                                   const std::vector<ValueType>& want) {
    bool identical = e.types == want;
    if (identical) return e;
    std::vector<size_t> cols;
    cols.reserve(want.size());
    for (ValueType t : want) {
      std::vector<size_t> candidates;
      for (size_t i = 0; i < e.types.size(); ++i) {
        if (e.types[i] == t) candidates.push_back(i);
      }
      if (candidates.empty()) return std::nullopt;
      cols.push_back(candidates[static_cast<size_t>(rng_.UniformInt(
          0, static_cast<int64_t>(candidates.size()) - 1))]);
    }
    return Typed{algebra::Project(e.expr, std::move(cols)), want};
  }

  Typed GenUnionLike(size_t depth, ExprKind kind) {
    Typed left = Gen(depth - 1);
    Typed right = Gen(depth - 1);
    std::optional<Typed> coerced = CoerceTypes(right, left.types);
    if (!coerced.has_value()) {
      // The right side cannot supply the needed column types (e.g. the
      // left ends in an avg column): degrade to a selection.
      return {algebra::Select(left.expr, RandomPredicate(left.arity())),
              left.types};
    }
    switch (kind) {
      case ExprKind::kUnion:
        return {algebra::Union(left.expr, coerced->expr), left.types};
      case ExprKind::kIntersect:
        return {algebra::Intersect(left.expr, coerced->expr), left.types};
      default:
        return {algebra::Difference(left.expr, coerced->expr), left.types};
    }
  }

  Typed GenJoin(size_t depth) {
    Typed left = Gen(depth - 1);
    Typed right = Gen(depth - 1);
    if (left.arity() + right.arity() > spec_.max_arity) {
      // Too wide: degrade to a select to keep arity in bounds.
      return {algebra::Select(left.expr, RandomPredicate(left.arity())),
              left.types};
    }
    std::vector<ValueType> types = left.types;
    types.insert(types.end(), right.types.begin(), right.types.end());
    if (rng_.Bernoulli(0.3)) {
      return {algebra::Product(left.expr, right.expr), std::move(types)};
    }
    const size_t li = RandomIndex(left.arity());
    const size_t ri = left.arity() + RandomIndex(right.arity());
    return {algebra::Join(left.expr, right.expr,
                          Predicate::ColumnsEqual(li, ri)),
            std::move(types)};
  }

  Typed GenSemiOrAntiJoin(size_t depth, bool anti) {
    Typed left = Gen(depth - 1);
    Typed right = Gen(depth - 1);
    const size_t li = RandomIndex(left.arity());
    const size_t ri = left.arity() + RandomIndex(right.arity());
    Predicate p = Predicate::ColumnsEqual(li, ri);
    if (anti) {
      return {algebra::AntiJoin(left.expr, right.expr, std::move(p)),
              left.types};
    }
    return {algebra::SemiJoin(left.expr, right.expr, std::move(p)),
            left.types};
  }

  Typed GenAggregate(size_t depth) {
    Typed child = Gen(depth - 1);
    std::vector<size_t> group_by;
    const size_t n_group = static_cast<size_t>(rng_.UniformInt(
        0, static_cast<int64_t>(std::min<size_t>(child.arity(), 2))));
    std::set<size_t> chosen;
    while (chosen.size() < n_group) {
      chosen.insert(RandomIndex(child.arity()));
    }
    group_by.assign(chosen.begin(), chosen.end());

    // Numeric attribute for the numeric aggregates; count needs none.
    std::vector<size_t> numeric;
    for (size_t i = 0; i < child.arity(); ++i) {
      if (child.types[i] != ValueType::kString) numeric.push_back(i);
    }
    AggregateFunction f = AggregateFunction::Count();
    if (!numeric.empty()) {
      const size_t attr = numeric[static_cast<size_t>(rng_.UniformInt(
          0, static_cast<int64_t>(numeric.size()) - 1))];
      switch (rng_.UniformInt(0, 4)) {
        case 0:
          f = AggregateFunction::Min(attr);
          break;
        case 1:
          f = AggregateFunction::Max(attr);
          break;
        case 2:
          f = AggregateFunction::Sum(attr);
          break;
        case 3:
          f = AggregateFunction::Count();
          break;
        default:
          f = AggregateFunction::Avg(attr);
          break;
      }
    }
    std::vector<ValueType> types = child.types;
    types.push_back(f.ResultType(
        f.kind == AggregateKind::kCount ? ValueType::kInt64
                                        : child.types[f.attr]));
    return {algebra::Aggregate(child.expr, std::move(group_by), f),
            std::move(types)};
  }

  Rng& rng_;
  const Database& db_;
  const ExpressionSpec& spec_;
  std::vector<std::string> names_;
};

}  // namespace

ExpressionPtr MakeRandomExpression(Rng& rng, const Database& db,
                                   const ExpressionSpec& spec) {
  ExprGen gen(rng, db, spec);
  return gen.Gen(spec.max_depth).expr;
}


std::vector<Timestamp> InterestingTimes(const Database& db) {
  std::set<Timestamp> times;
  for (const std::string& name : db.RelationNames()) {
    db.GetRelation(name).value()->ForEach(
        [&](const Tuple&, Timestamp texp) {
          if (texp.IsFinite()) times.insert(texp);
        });
  }
  return std::vector<Timestamp>(times.begin(), times.end());
}

}  // namespace testing
}  // namespace expdb
