#include "plan/executor.h"

#include <algorithm>
#include <map>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/thread_pool.h"
#include "core/join_key_index.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace expdb {
namespace plan {

namespace {

/// Indexed by ExprKind. Keep in sync with core/expression.h.
constexpr const char* kOpMetricNames[] = {
    "base",      "select",    "project",   "product",
    "union",     "join",      "intersect", "difference",
    "aggregate", "semi_join", "anti_join"};
constexpr const char* kOpSpanNames[] = {
    "eval.base",      "eval.select",    "eval.project",   "eval.product",
    "eval.union",     "eval.join",      "eval.intersect", "eval.difference",
    "eval.aggregate", "eval.semi_join", "eval.anti_join"};
constexpr size_t kNumOpKinds =
    sizeof(kOpMetricNames) / sizeof(kOpMetricNames[0]);

/// Registry handles for operator evaluation, resolved once per process so
/// the per-node cost is bare atomic increments. Metric names are kept from
/// the pre-planner interpreter (expdb_eval_*) — dashboards and STATS
/// output are unchanged by the refactor.
struct EvalMetricSet {
  obs::Counter* evaluations;
  obs::Counter* operators;
  obs::Counter* tuples_out;
  obs::Counter* per_op[kNumOpKinds];
  obs::Histogram* latency;
  // Parallel runtime (docs/PERFORMANCE.md).
  obs::Counter* parallel_loops;
  obs::Counter* parallel_morsels;
  obs::Counter* parallel_fallbacks;
  obs::Histogram* morsel_latency;
  // Planner-pipeline execution effects (docs/PLANNER.md).
  obs::Counter* pruned_subtrees;
  obs::Counter* cse_reuses;
  // Expiration-partitioned scans (docs/PERFORMANCE.md §8).
  obs::Counter* segment_pruned;
  obs::Counter* segment_checked;

  static const EvalMetricSet& Get() {
    static const EvalMetricSet* set = [] {
      auto* s = new EvalMetricSet();
      obs::MetricsRegistry& r = obs::MetricsRegistry::Global();
      s->evaluations = r.GetCounter("expdb_eval_evaluations_total",
                                    "Root-level expression evaluations");
      s->operators = r.GetCounter("expdb_eval_operators_total",
                                  "Operator nodes evaluated (all kinds)");
      s->tuples_out = r.GetCounter("expdb_eval_tuples_out_total",
                                   "Tuples produced by operator nodes");
      for (size_t i = 0; i < kNumOpKinds; ++i) {
        s->per_op[i] =
            r.GetCounter("expdb_eval_op_" + std::string(kOpMetricNames[i]) +
                             "_total",
                         "Evaluations of this operator kind");
      }
      s->latency = r.GetHistogram("expdb_eval_latency_ns",
                                  "Root evaluation wall time (ns)");
      s->parallel_loops =
          r.GetCounter("expdb_eval_parallel_loops_total",
                       "Operator scans executed as parallel morsel loops");
      s->parallel_morsels =
          r.GetCounter("expdb_eval_parallel_morsels_total",
                       "Morsels processed by parallel operator scans");
      s->parallel_fallbacks = r.GetCounter(
          "expdb_eval_parallel_fallback_total",
          "Parallel-eligible scans run serially (below morsel cutoff)");
      s->morsel_latency = r.GetHistogram(
          "expdb_eval_parallel_morsel_latency_ns",
          "Per-morsel wall time of parallel operator scans (ns)");
      s->pruned_subtrees = r.GetCounter(
          "expdb_plan_pruned_subtrees_total",
          "Plan subtrees skipped because every input was expired");
      s->cse_reuses = r.GetCounter(
          "expdb_plan_cse_reuses_total",
          "Plan nodes served from the common-subtree cache");
      s->segment_pruned = r.GetCounter(
          "expdb_segment_pruned_total",
          "Storage segments skipped by scans (fully expired at τ)");
      s->segment_checked = r.GetCounter(
          "expdb_segment_checked_total",
          "Storage segments scanned with per-tuple texp checks (straddle τ)");
      return s;
    }();
    return *set;
  }
};

/// Drives the operator scan loops: serial inline when the executor runs
/// with one worker, morsel-parallel on the shared pool otherwise, with
/// `expdb_eval_parallel_*` counters and per-morsel latencies wired in.
class MorselRunner {
 public:
  MorselRunner(size_t workers, size_t min_morsel, bool metrics)
      : workers_(workers),
        min_morsel_(min_morsel > 0 ? min_morsel : 1),
        metrics_(metrics) {}

  bool parallel() const { return workers_ > 1; }
  size_t workers() const { return workers_; }
  size_t min_morsel() const { return min_morsel_; }

  /// Runs body over [0, n) in dynamic morsels (serial when not parallel).
  void Run(size_t n, const std::function<void(size_t, size_t)>& body) const {
    if (!parallel()) {
      body(0, n);
      return;
    }
    ParallelForOptions opts;
    opts.parallelism = workers_;
    opts.min_morsel_size = min_morsel_;
    RunWith(n, opts, body);
  }

  /// Runs body over [0, k) one index per morsel — the static partition
  /// phases (scatter chunks, partition merges) where each index is a
  /// coarse task that must not be subdivided.
  void RunTasks(size_t k,
                const std::function<void(size_t, size_t)>& body) const {
    if (!parallel()) {
      body(0, k);
      return;
    }
    ParallelForOptions opts;
    opts.parallelism = workers_;
    opts.min_morsel_size = 1;
    opts.max_morsels_per_worker = 1;
    RunWith(k, opts, body);
  }

  /// Morsel-parallel emit: `emit` appends result entries for the input
  /// range to its output vector; per-morsel locals are concatenated under
  /// a mutex (once per morsel, not per tuple). Serial mode emits straight
  /// into the result with zero overhead.
  std::vector<Relation::Entry> Collect(
      size_t n, const std::function<void(size_t, size_t,
                                         std::vector<Relation::Entry>*)>&
                    emit) const {
    std::vector<Relation::Entry> out;
    if (!parallel()) {
      emit(0, n, &out);
      return out;
    }
    std::mutex mu;
    Run(n, [&](size_t begin, size_t end) {
      std::vector<Relation::Entry> local;
      emit(begin, end, &local);
      if (local.empty()) return;
      std::lock_guard<std::mutex> lock(mu);
      out.insert(out.end(), std::make_move_iterator(local.begin()),
                 std::make_move_iterator(local.end()));
    });
    return out;
  }

 private:
  void RunWith(size_t n, const ParallelForOptions& opts,
               const std::function<void(size_t, size_t)>& body) const {
    if (!metrics_) {
      ParallelFor(n, opts, body);
      return;
    }
    const EvalMetricSet& m = EvalMetricSet::Get();
    const ParallelForStats stats =
        ParallelFor(n, opts, [&](size_t begin, size_t end) {
          // Under tracing each morsel is a child span of the enclosing
          // operator span — on helper threads too, via the context that
          // ParallelFor installs. Untraced, this is the same two clock
          // reads as before, feeding the morsel-latency histogram.
          obs::ScopedSpan span("eval.morsel", m.morsel_latency);
          body(begin, end);
        });
    if (stats.parallel) {
      m.parallel_loops->Increment();
      m.parallel_morsels->Increment(stats.morsels);
    } else {
      m.parallel_fallbacks->Increment();
    }
  }

  size_t workers_;
  size_t min_morsel_;
  bool metrics_;
};

/// Executes a PhysicalPlan. Holds the per-execution state: the database
/// snapshot, τ, execution options, live expired-subtree bounds, and the
/// common-subtree result cache.
class PlanExecutor {
 public:
  PlanExecutor(const PhysicalPlan& plan, const Database& db, Timestamp tau,
               const EvalOptions& options, PlanProfile* profile,
               NodeCapture* capture)
      : plan_(plan),
        db_(db),
        tau_(tau),
        options_(options),
        runner_(ResolveWorkers(options.parallelism),
                options.parallel_min_morsel, options.enable_metrics),
        profile_(profile),
        capture_(capture) {
    if (plan_.options().prune_expired) {
      bounds_.assign(plan_.node_count() + 1, Timestamp::Infinity());
      ComputeBound(plan_.root());
    }
  }

  /// Per-node wrapper: expired-subtree pruning, constant-false elision,
  /// common-subtree reuse, metrics/span/profile accounting, dispatch.
  Result<MaterializedResult> Exec(const PlanNode& n) {
    const bool metrics = options_.enable_metrics;
    PlanProfile::NodeStats* stats =
        profile_ != nullptr ? &profile_->at(n.id) : nullptr;
    if (stats != nullptr) ++stats->calls;

    // Expired-subtree prune: every base tuple below n has
    // texp <= texp_upper_bound <= τ, so all scans are empty; by induction
    // over the operator rules every node above empty inputs produces the
    // empty relation with texp = ∞ and validity [τ, ∞) — returning that
    // directly is exact. Constant-false filters over monotonic subtrees
    // are elided by the same argument.
    if (n.const_false ||
        (!bounds_.empty() && bounds_[n.id] <= tau_)) {
      if (stats != nullptr) stats->pruned = true;
      if (metrics && !n.const_false) {
        EvalMetricSet::Get().pruned_subtrees->Increment();
      }
      MaterializedResult empty = EmptyResult(n);
      if (capture_ != nullptr) {
        capture_->nodes[n.id] = {empty, /*pruned=*/true, /*reused=*/false};
      }
      return empty;
    }

    // Common-subtree reuse: an identical subtree already materialized in
    // this execution — copy its result instead of recomputing.
    if (n.cse_id >= 0) {
      auto it = cse_cache_.find(n.cse_id);
      if (it != cse_cache_.end()) {
        if (stats != nullptr) {
          stats->reused = true;
          stats->rows += it->second.relation.size();
        }
        if (metrics) EvalMetricSet::Get().cse_reuses->Increment();
        if (capture_ != nullptr) {
          capture_->nodes[n.id] = {it->second, /*pruned=*/false,
                                   /*reused=*/true};
        }
        return it->second;
      }
    }

    const int64_t t0 = stats != nullptr ? obs::SteadyNowNs() : 0;
    Result<MaterializedResult> r = [&]() -> Result<MaterializedResult> {
      if (!metrics) return ExecNode(n);
      const size_t k = static_cast<size_t>(n.expr->kind());
      const EvalMetricSet& m = EvalMetricSet::Get();
      m.operators->Increment();
      if (k < kNumOpKinds) m.per_op[k]->Increment();
      obs::ScopedSpan span(k < kNumOpKinds ? kOpSpanNames[k] : "eval.op",
                           /*tag=*/n.id, /*latency=*/nullptr);
      Result<MaterializedResult> rr = ExecNode(n);
      if (rr.ok()) m.tuples_out->Increment(rr.value().relation.size());
      return rr;
    }();
    if (stats != nullptr) {
      stats->wall_ns += obs::SteadyNowNs() - t0;
      if (r.ok()) stats->rows += r.value().relation.size();
    }
    if (r.ok() && n.cse_id >= 0) cse_cache_[n.cse_id] = r.value();
    if (r.ok() && capture_ != nullptr) {
      capture_->nodes[n.id] = {r.value(), /*pruned=*/false,
                               /*reused=*/false};
    }
    return r;
  }

  Result<DifferenceEvalResult> ExecDifference(const PlanNode& n) {
    EXPDB_ASSIGN_OR_RETURN(MaterializedResult l, Exec(*n.left));
    EXPDB_ASSIGN_OR_RETURN(MaterializedResult r, Exec(*n.right));
    DifferenceAnalysis analysis = AnalyzeDifference(
        l.relation, r.relation, runner_.workers(), runner_.min_morsel());

    DifferenceEvalResult out;
    out.result.relation = std::move(analysis.result);
    out.result.materialized_at = tau_;
    // Eq. (11) with the texp_S correction (see difference.h): the
    // expression dies when either argument dies or the first critical
    // tuple should re-appear.
    out.result.texp = Timestamp::Min({l.texp, r.texp, analysis.tau_r});
    if (options_.compute_validity) {
      IntervalSet v = l.validity.Intersect(r.validity);
      for (const Interval& iv : analysis.invalid_windows.intervals()) {
        v.Subtract(iv);
      }
      out.result.validity = std::move(v);
    } else {
      out.result.validity = IntervalSet(tau_, out.result.texp);
    }
    out.helper = std::move(analysis.critical);
    out.common_count = analysis.common_count;
    out.children_texp = Timestamp::Min(l.texp, r.texp);
    return out;
  }

  /// ▷exp: the difference analysis generalized from tuple equality to an
  /// arbitrary match predicate. A left tuple with surviving matches is
  /// suppressed; it must re-appear when its *last* match expires, so the
  /// critical window is [max matching texp_S, texp_R).
  Result<DifferenceEvalResult> ExecAntiJoin(const PlanNode& n) {
    EXPDB_ASSIGN_OR_RETURN(MaterializedResult l, Exec(*n.left));
    EXPDB_ASSIGN_OR_RETURN(MaterializedResult r, Exec(*n.right));
    const size_t n_left = l.relation.schema().arity();
    JoinKeyIndex index(r.relation, n.expr->predicate(), n_left,
                       runner_.workers());

    struct AntiLocal {
      std::vector<Relation::Entry> result;
      std::vector<DifferencePatchEntry> helper;
      IntervalSet invalid;
      size_t common = 0;
      Timestamp tau_r = Timestamp::Infinity();
    };
    const std::vector<Relation::Entry>& lin = l.relation.entries();
    auto scan = [&](size_t begin, size_t end, AntiLocal* local) {
      for (size_t i = begin; i < end; ++i) {
        const Relation::Entry& le = lin[i];
        std::optional<Timestamp> last_match = index.MaxMatchTexp(le.tuple);
        if (!last_match.has_value()) {
          local->result.push_back(le);
          continue;
        }
        ++local->common;
        if (le.texp > *last_match) {
          local->helper.push_back({le.tuple, *last_match, le.texp});
          local->invalid.Add(*last_match, le.texp);
          local->tau_r = Timestamp::Min(local->tau_r, *last_match);
        }
      }
    };

    AntiLocal total;
    if (!runner_.parallel()) {
      scan(0, lin.size(), &total);
    } else {
      std::mutex mu;
      runner_.Run(lin.size(), [&](size_t begin, size_t end) {
        AntiLocal local;
        scan(begin, end, &local);
        std::lock_guard<std::mutex> lock(mu);
        total.result.insert(total.result.end(),
                            std::make_move_iterator(local.result.begin()),
                            std::make_move_iterator(local.result.end()));
        total.helper.insert(total.helper.end(),
                            std::make_move_iterator(local.helper.begin()),
                            std::make_move_iterator(local.helper.end()));
        for (const Interval& iv : local.invalid.intervals()) {
          total.invalid.Add(iv);
        }
        total.common += local.common;
        total.tau_r = Timestamp::Min(total.tau_r, local.tau_r);
      });
    }
    std::sort(total.helper.begin(), total.helper.end(),
              [](const DifferencePatchEntry& a,
                 const DifferencePatchEntry& b) {
                if (a.appears_at != b.appears_at) {
                  return a.appears_at < b.appears_at;
                }
                return a.tuple < b.tuple;
              });

    DifferenceEvalResult out;
    out.result.relation = Relation::FromEntriesUnchecked(
        l.relation.schema(), std::move(total.result));
    out.helper = std::move(total.helper);
    out.common_count = total.common;
    out.result.materialized_at = tau_;
    out.result.texp = Timestamp::Min({l.texp, r.texp, total.tau_r});
    if (options_.compute_validity) {
      IntervalSet v = l.validity.Intersect(r.validity);
      for (const Interval& iv : total.invalid.intervals()) v.Subtract(iv);
      out.result.validity = std::move(v);
    } else {
      out.result.validity = IntervalSet(tau_, out.result.texp);
    }
    out.children_texp = Timestamp::Min(l.texp, r.texp);
    return out;
  }

 private:
  Result<MaterializedResult> ExecNode(const PlanNode& n) {
    switch (n.op) {
      case PlanOp::kScan:
        return ExecScan(n);
      case PlanOp::kFilter:
        return ExecFilter(n);
      case PlanOp::kProject:
        return ExecProject(n);
      case PlanOp::kCrossProduct:
        return ExecProduct(n);
      case PlanOp::kUnionMerge:
        return ExecUnion(n);
      case PlanOp::kHashJoin:
        return ExecJoin(n);
      case PlanOp::kHashIntersect:
        return ExecIntersect(n);
      case PlanOp::kHashDifference: {
        EXPDB_ASSIGN_OR_RETURN(DifferenceEvalResult diff, ExecDifference(n));
        return std::move(diff.result);
      }
      case PlanOp::kHashAggregate:
        return ExecAggregate(n);
      case PlanOp::kHashSemiJoin:
        return ExecSemiJoin(n);
      case PlanOp::kHashAntiJoin: {
        EXPDB_ASSIGN_OR_RETURN(DifferenceEvalResult anti, ExecAntiJoin(n));
        return std::move(anti.result);
      }
    }
    return Status::Internal("unknown plan operator");
  }

  Result<MaterializedResult> ExecScan(const PlanNode& n) {
    EXPDB_ASSIGN_OR_RETURN(const Relation* rel,
                           db_.GetRelation(n.expr->relation_name()));
    // Segment-at-a-time scan: classify each storage segment once against τ
    // via its [min_texp, max_texp] bounds. Fully-expired segments are
    // skipped without touching their entries, fully-live segments are bulk
    // copied with no per-tuple texp check, and only segments straddling τ
    // pay the classic filter. Flat relations are one segment, so the same
    // loop covers both storage modes (and a flat all-live relation gets
    // the bulk-copy fast path too). Morsels never span segments — each
    // segment parallelizes internally when large enough — so the
    // live/straddling decision is made once per segment, not per tuple.
    uint64_t segs_live = 0, segs_checked = 0, segs_pruned = 0;
    std::vector<Relation::Entry> kept;
    kept.reserve(rel->size());
    const size_t nsegs = rel->SegmentCount();
    for (size_t si = 0; si < nsegs; ++si) {
      const Relation::SegmentView seg = rel->GetSegment(si);
      if (seg.size == 0) continue;
      if (seg.max_texp <= tau_) {
        ++segs_pruned;
        continue;
      }
      const bool all_live = seg.min_texp > tau_;
      all_live ? ++segs_live : ++segs_checked;
      if (runner_.parallel() && seg.size >= 2 * runner_.min_morsel()) {
        std::vector<Relation::Entry> part = runner_.Collect(
            seg.size, [&](size_t begin, size_t end,
                          std::vector<Relation::Entry>* outv) {
              if (all_live) {
                outv->insert(outv->end(), seg.data + begin, seg.data + end);
                return;
              }
              for (size_t i = begin; i < end; ++i) {
                if (seg.data[i].texp > tau_) outv->push_back(seg.data[i]);
              }
            });
        kept.insert(kept.end(), std::make_move_iterator(part.begin()),
                    std::make_move_iterator(part.end()));
      } else if (all_live) {
        kept.insert(kept.end(), seg.data, seg.data + seg.size);
      } else {
        for (size_t i = 0; i < seg.size; ++i) {
          if (seg.data[i].texp > tau_) kept.push_back(seg.data[i]);
        }
      }
    }
    if (profile_ != nullptr) {
      PlanProfile::NodeStats& s = profile_->at(n.id);
      s.segs_live += segs_live;
      s.segs_checked += segs_checked;
      s.segs_pruned += segs_pruned;
    }
    if (options_.enable_metrics && rel->segmented()) {
      const EvalMetricSet& m = EvalMetricSet::Get();
      if (segs_pruned > 0) m.segment_pruned->Increment(segs_pruned);
      if (segs_checked > 0) m.segment_checked->Increment(segs_checked);
    }
    MaterializedResult out;
    out.relation =
        Relation::FromEntriesUnchecked(rel->schema(), std::move(kept));
    return Monotonic(std::move(out));
  }

  Result<MaterializedResult> ExecFilter(const PlanNode& n) {
    EXPDB_ASSIGN_OR_RETURN(MaterializedResult child, Exec(*n.left));
    const Predicate& p = n.expr->predicate();
    const std::vector<Relation::Entry>& in = child.relation.entries();
    // Eq. (1): result tuples retain their expiration times. A selection
    // of a set is a set, so the kept entries are loaded index-direct.
    std::vector<Relation::Entry> kept = runner_.Collect(
        in.size(),
        [&](size_t begin, size_t end, std::vector<Relation::Entry>* outv) {
          for (size_t i = begin; i < end; ++i) {
            if (p.Evaluate(in[i].tuple)) {
              outv->push_back(in[i]);
            }
          }
        });
    MaterializedResult out;
    out.relation = Relation::FromEntriesUnchecked(child.relation.schema(),
                                                  std::move(kept));
    return Inherit(std::move(out), child);
  }

  Result<MaterializedResult> ExecProject(const PlanNode& n) {
    EXPDB_ASSIGN_OR_RETURN(MaterializedResult child, Exec(*n.left));
    Schema schema = n.schema;
    const std::vector<size_t>& attrs = n.expr->projection();
    MaterializedResult out;
    if (!runner_.parallel()) {
      out.relation = Relation(std::move(schema));
      for (const Relation::Entry& en : child.relation.entries()) {
        // Eq. (3): a tuple gets the max expiration time of its duplicates.
        out.relation.MergeMaxUnchecked(en.tuple.Project(attrs), en.texp);
      }
    } else {
      const std::vector<Relation::Entry>& in = child.relation.entries();
      std::vector<Relation::Entry> projected = runner_.Collect(
          in.size(),
          [&](size_t begin, size_t end, std::vector<Relation::Entry>* outv) {
            outv->reserve(end - begin);
            for (size_t i = begin; i < end; ++i) {
              outv->push_back({in[i].tuple.Project(attrs), in[i].texp});
            }
          });
      out.relation = MergeMaxParallel(std::move(schema), {&projected});
    }
    return Inherit(std::move(out), child);
  }

  Result<MaterializedResult> ExecProduct(const PlanNode& n) {
    EXPDB_ASSIGN_OR_RETURN(MaterializedResult l, Exec(*n.left));
    EXPDB_ASSIGN_OR_RETURN(MaterializedResult r, Exec(*n.right));
    const std::vector<Relation::Entry>& lin = l.relation.entries();
    const std::vector<Relation::Entry>& rin = r.relation.entries();
    // Distinct (lt, rt) pairs concatenate to distinct tuples, so the
    // output is duplicate-free by construction.
    std::vector<Relation::Entry> entries = runner_.Collect(
        lin.size(),
        [&](size_t begin, size_t end, std::vector<Relation::Entry>* outv) {
          outv->reserve((end - begin) * rin.size());
          for (size_t i = begin; i < end; ++i) {
            for (const Relation::Entry& re : rin) {
              // Eq. (2): min lifetime of the participating tuples.
              outv->push_back({lin[i].tuple.Concat(re.tuple),
                               Timestamp::Min(lin[i].texp, re.texp)});
            }
          }
        });
    MaterializedResult out;
    out.relation = Relation::FromEntriesUnchecked(
        l.relation.schema().Concat(r.relation.schema()), std::move(entries));
    return Combine(std::move(out), l, r);
  }

  Result<MaterializedResult> ExecUnion(const PlanNode& n) {
    EXPDB_ASSIGN_OR_RETURN(MaterializedResult l, Exec(*n.left));
    EXPDB_ASSIGN_OR_RETURN(MaterializedResult r, Exec(*n.right));
    MaterializedResult out;
    if (!runner_.parallel()) {
      out.relation = std::move(l.relation);
      // Eq. (4): tuples in both sides get the max of the two texps.
      for (const Relation::Entry& en : r.relation.entries()) {
        out.relation.MergeMaxUnchecked(en.tuple, en.texp);
      }
    } else {
      out.relation = MergeMaxParallel(
          l.relation.schema(),
          {&l.relation.entries(), &r.relation.entries()});
    }
    return Combine(std::move(out), l, r);
  }

  Result<MaterializedResult> ExecJoin(const PlanNode& n) {
    EXPDB_ASSIGN_OR_RETURN(MaterializedResult l, Exec(*n.left));
    EXPDB_ASSIGN_OR_RETURN(MaterializedResult r, Exec(*n.right));
    const Schema joined = l.relation.schema().Concat(r.relation.schema());
    const Predicate& p = n.expr->predicate();
    const size_t n_left = l.relation.schema().arity();
    const size_t n_right = r.relation.schema().arity();

    // Hash-join fast path on top-level cross-side equalities; semantics
    // coincide with the paper's rewrite σ_{p'}(R ×exp S) because the full
    // predicate is re-checked on every candidate pair — except when the
    // index proves the key comparison already covers the predicate.
    //
    // The planner picks the build side by estimated cardinality
    // (n.build_left): the build-on-left variant indexes the left input
    // under the mirrored predicate and probes with right tuples, emitting
    // the same concatenated-in-left-order pairs — the output set is
    // identical either way.
    std::vector<Relation::Entry> entries;
    if (n.build_left) {
      std::map<size_t, size_t> mirror;
      for (size_t i = 0; i < n_left; ++i) mirror[i] = n_right + i;
      for (size_t j = 0; j < n_right; ++j) mirror[n_left + j] = j;
      EXPDB_ASSIGN_OR_RETURN(Predicate mirrored, p.RemapColumns(mirror));
      JoinKeyIndex index(l.relation, mirrored, n_right, runner_.workers());
      const bool covered = index.predicate_covered();
      const std::vector<Relation::Entry>& rin = r.relation.entries();
      entries = runner_.Collect(
          rin.size(),
          [&](size_t begin, size_t end, std::vector<Relation::Entry>* outv) {
            for (size_t i = begin; i < end; ++i) {
              const Relation::Entry& re = rin[i];
              const JoinKeyIndex::Group* group = index.Probe(re.tuple);
              if (group == nullptr) continue;
              for (const JoinKeyIndex::Candidate& c : group->candidates) {
                Tuple joined_tuple = c.tuple->Concat(re.tuple);
                if (covered || p.Evaluate(joined_tuple)) {
                  outv->push_back({std::move(joined_tuple),
                                   Timestamp::Min(c.texp, re.texp)});
                }
              }
            }
          });
    } else {
      JoinKeyIndex index(r.relation, p, n_left, runner_.workers());
      const bool covered = index.predicate_covered();
      const std::vector<Relation::Entry>& lin = l.relation.entries();
      entries = runner_.Collect(
          lin.size(),
          [&](size_t begin, size_t end, std::vector<Relation::Entry>* outv) {
            for (size_t i = begin; i < end; ++i) {
              const Relation::Entry& le = lin[i];
              const JoinKeyIndex::Group* group = index.Probe(le.tuple);
              if (group == nullptr) continue;
              for (const JoinKeyIndex::Candidate& c : group->candidates) {
                Tuple joined_tuple = le.tuple.Concat(*c.tuple);
                if (covered || p.Evaluate(joined_tuple)) {
                  outv->push_back({std::move(joined_tuple),
                                   Timestamp::Min(le.texp, c.texp)});
                }
              }
            }
          });
    }
    MaterializedResult out;
    out.relation = Relation::FromEntriesUnchecked(joined, std::move(entries));
    return Combine(std::move(out), l, r);
  }

  Result<MaterializedResult> ExecIntersect(const PlanNode& n) {
    EXPDB_ASSIGN_OR_RETURN(MaterializedResult l, Exec(*n.left));
    EXPDB_ASSIGN_OR_RETURN(MaterializedResult r, Exec(*n.right));
    const std::vector<Relation::Entry>& lin = l.relation.entries();
    std::vector<Relation::Entry> entries = runner_.Collect(
        lin.size(),
        [&](size_t begin, size_t end, std::vector<Relation::Entry>* outv) {
          for (size_t i = begin; i < end; ++i) {
            auto rtexp = r.relation.GetTexp(lin[i].tuple);
            // Eq. (6): minima of the expiration times of the participating
            // tuples (inherited from the inner ×exp of the rewrite).
            if (rtexp.has_value()) {
              outv->push_back(
                  {lin[i].tuple, Timestamp::Min(lin[i].texp, *rtexp)});
            }
          }
        });
    MaterializedResult out;
    out.relation = Relation::FromEntriesUnchecked(l.relation.schema(),
                                                  std::move(entries));
    return Combine(std::move(out), l, r);
  }

  /// ⋉exp: π_{R}(R ⋈exp_p S) with the derived expiration min(texp_R(r),
  /// max{texp_S(s) | s matches r}) — the projection's max-of-duplicates
  /// over the join's min-of-pairs. Monotonic.
  Result<MaterializedResult> ExecSemiJoin(const PlanNode& n) {
    EXPDB_ASSIGN_OR_RETURN(MaterializedResult l, Exec(*n.left));
    EXPDB_ASSIGN_OR_RETURN(MaterializedResult r, Exec(*n.right));
    const size_t n_left = l.relation.schema().arity();
    JoinKeyIndex index(r.relation, n.expr->predicate(), n_left,
                       runner_.workers());

    const std::vector<Relation::Entry>& lin = l.relation.entries();
    std::vector<Relation::Entry> entries = runner_.Collect(
        lin.size(),
        [&](size_t begin, size_t end, std::vector<Relation::Entry>* outv) {
          for (size_t i = begin; i < end; ++i) {
            std::optional<Timestamp> last_match =
                index.MaxMatchTexp(lin[i].tuple);
            if (last_match.has_value()) {
              outv->push_back(
                  {lin[i].tuple, Timestamp::Min(lin[i].texp, *last_match)});
            }
          }
        });
    MaterializedResult out;
    out.relation = Relation::FromEntriesUnchecked(l.relation.schema(),
                                                  std::move(entries));
    return Combine(std::move(out), l, r);
  }

  Result<MaterializedResult> ExecAggregate(const PlanNode& n) {
    EXPDB_ASSIGN_OR_RETURN(MaterializedResult child, Exec(*n.left));
    Schema schema = n.schema;  // inferred (and validated) at plan time
    const AggregateFunction& f = n.expr->aggregate();

    // Stable storage for partition entries: the child's dense entry array
    // does not move while PartitionEntry pointers reference it.
    const std::vector<Relation::Entry>& entries = child.relation.entries();
    const std::vector<size_t>& gb = n.expr->group_by();

    // φexp (Eq. 7): partitioning by equality on the grouping attributes
    // (SQL GROUP BY), hashing/comparing the key columns in place — no key
    // tuple is materialized.
    struct KeyHash {
      const std::vector<size_t>* cols;
      size_t operator()(const Tuple* t) const {
        return t->HashOfColumns(*cols);
      }
    };
    struct KeyEq {
      const std::vector<size_t>* cols;
      bool operator()(const Tuple* a, const Tuple* b) const {
        for (size_t c : *cols) {
          if (a->at(c) != b->at(c)) return false;
        }
        return true;
      }
    };
    using GroupMap = std::unordered_map<const Tuple*,
                                        std::vector<PartitionEntry>, KeyHash,
                                        KeyEq>;

    struct AggLocal {
      std::vector<Relation::Entry> result;
      Timestamp texp_cap = Timestamp::Infinity();
      /// (change_cap, death) of partitions that invalidate the expression.
      std::vector<std::pair<Timestamp, Timestamp>> invalid;
      Status status = Status::OK();
    };
    auto replay_groups = [&](const GroupMap& groups, AggLocal* local) {
      for (const auto& [key, partition] : groups) {
        Result<PartitionAnalysis> analyzed =
            options_.aggregate_tolerance > 0
                ? AnalyzeApproxPartition(partition, f,
                                         options_.aggregate_tolerance)
                : AnalyzePartition(partition, f, options_.aggregate_mode);
        if (!analyzed.ok()) {
          local->status = analyzed.status();
          return;
        }
        const PartitionAnalysis& analysis = analyzed.value();
        for (const PartitionEntry& entry : partition) {
          // Eq. (8)/(9) with the source-tuple cap (see aggregate.h): the
          // result tuple dies with its source tuple or when the
          // partition's aggregate value changes, whichever is earlier.
          local->result.push_back(
              {entry.tuple->Append(analysis.value),
               Timestamp::Min(entry.texp, analysis.change_cap)});
        }
        if (analysis.invalidates_expression) {
          local->texp_cap =
              Timestamp::Min(local->texp_cap, analysis.change_cap);
          local->invalid.emplace_back(analysis.change_cap, analysis.death);
        }
      }
    };

    AggLocal total;
    const size_t P = runner_.parallel() &&
                             entries.size() >= 2 * runner_.min_morsel()
                         ? runner_.workers()
                         : 1;
    if (P == 1) {
      GroupMap groups(16, KeyHash{&gb}, KeyEq{&gb});
      for (const Relation::Entry& en : entries) {
        groups[&en.tuple].push_back({&en.tuple, en.texp});
      }
      replay_groups(groups, &total);
    } else {
      // Phase 1 — scatter: P static chunks route entry pointers into
      // per-chunk, per-partition buckets by group-key hash (chunks are
      // independent, no synchronization).
      std::vector<std::vector<std::vector<const Relation::Entry*>>> scat(
          P, std::vector<std::vector<const Relation::Entry*>>(P));
      const size_t chunk = (entries.size() + P - 1) / P;
      runner_.RunTasks(P, [&](size_t cb, size_t ce) {
        for (size_t c = cb; c < ce; ++c) {
          const size_t begin = std::min(c * chunk, entries.size());
          const size_t end = std::min(begin + chunk, entries.size());
          for (size_t i = begin; i < end; ++i) {
            scat[c][entries[i].tuple.HashOfColumns(gb) % P].push_back(
                &entries[i]);
          }
        }
      });
      // Phase 2 — per-partition replay: every group lands wholly inside
      // one partition, so partitions replay independently in parallel.
      std::mutex mu;
      runner_.RunTasks(P, [&](size_t pb, size_t pe) {
        for (size_t p = pb; p < pe; ++p) {
          GroupMap groups(16, KeyHash{&gb}, KeyEq{&gb});
          for (size_t c = 0; c < P; ++c) {
            for (const Relation::Entry* en : scat[c][p]) {
              groups[&en->tuple].push_back({&en->tuple, en->texp});
            }
          }
          AggLocal local;
          replay_groups(groups, &local);
          std::lock_guard<std::mutex> lock(mu);
          total.result.insert(total.result.end(),
                              std::make_move_iterator(local.result.begin()),
                              std::make_move_iterator(local.result.end()));
          total.texp_cap = Timestamp::Min(total.texp_cap, local.texp_cap);
          total.invalid.insert(total.invalid.end(), local.invalid.begin(),
                               local.invalid.end());
          if (total.status.ok() && !local.status.ok()) {
            total.status = local.status;
          }
        }
      });
    }
    EXPDB_RETURN_NOT_OK(total.status);

    MaterializedResult out;
    // Source tuples are unique and each contributes one result tuple.
    out.relation = Relation::FromEntriesUnchecked(std::move(schema),
                                                  std::move(total.result));
    Timestamp texp_e = Timestamp::Min(child.texp, total.texp_cap);
    out.texp = texp_e;
    if (options_.compute_validity) {
      IntervalSet validity = child.validity;
      // The partition's contribution is wrong from the change until the
      // partition has fully expired; afterwards both the materialization
      // and recomputation are empty for it.
      for (const auto& [cap, death] : total.invalid) {
        validity.Subtract(cap, death);
      }
      out.validity = std::move(validity);
    } else {
      out.validity = IntervalSet(tau_, texp_e);
    }
    out.materialized_at = tau_;
    return out;
  }

  /// Hash-partitioned parallel max-merge (πexp/∪exp duplicate rule): the
  /// concatenated sources are scattered by tuple hash into one partition
  /// per worker, each partition merges its tuples independently, and the
  /// disjoint partition results concatenate into the output relation.
  Relation MergeMaxParallel(
      Schema schema,
      std::vector<const std::vector<Relation::Entry>*> sources) const {
    size_t total = 0;
    for (const auto* s : sources) total += s->size();
    const size_t P = runner_.workers();

    auto at = [&](size_t g) -> const Relation::Entry& {
      for (const auto* s : sources) {
        if (g < s->size()) return (*s)[g];
        g -= s->size();
      }
      // Unreachable for g < total.
      return sources.back()->back();
    };

    // Phase 1 — scatter by hash % P from P static chunks.
    std::vector<std::vector<std::vector<const Relation::Entry*>>> scat(
        P, std::vector<std::vector<const Relation::Entry*>>(P));
    const size_t chunk = (total + P - 1) / P;
    runner_.RunTasks(P, [&](size_t cb, size_t ce) {
      for (size_t c = cb; c < ce; ++c) {
        const size_t begin = std::min(c * chunk, total);
        const size_t end = std::min(begin + chunk, total);
        for (size_t g = begin; g < end; ++g) {
          const Relation::Entry& en = at(g);
          scat[c][en.tuple.Hash() % P].push_back(&en);
        }
      }
    });

    // Phase 2 — per-partition merge under the max rule. Equal tuples
    // always hash to the same partition, so partitions are disjoint.
    struct PtrHash {
      size_t operator()(const Tuple* t) const { return t->Hash(); }
    };
    struct PtrEq {
      bool operator()(const Tuple* a, const Tuple* b) const {
        return *a == *b;
      }
    };
    std::vector<std::vector<Relation::Entry>> parts(P);
    runner_.RunTasks(P, [&](size_t pb, size_t pe) {
      for (size_t p = pb; p < pe; ++p) {
        std::unordered_map<const Tuple*, Timestamp, PtrHash, PtrEq> merged;
        for (size_t c = 0; c < P; ++c) {
          for (const Relation::Entry* en : scat[c][p]) {
            auto [it, inserted] = merged.try_emplace(&en->tuple, en->texp);
            if (!inserted) {
              it->second = Timestamp::Max(it->second, en->texp);
            }
          }
        }
        parts[p].reserve(merged.size());
        for (const auto& [tuple, texp] : merged) {
          parts[p].push_back({*tuple, texp});
        }
      }
    });

    std::vector<Relation::Entry> out;
    out.reserve(total);
    for (std::vector<Relation::Entry>& part : parts) {
      out.insert(out.end(), std::make_move_iterator(part.begin()),
                 std::make_move_iterator(part.end()));
    }
    return Relation::FromEntriesUnchecked(std::move(schema), std::move(out));
  }

  // --- texp(e) / validity composition helpers -----------------------------

  /// Monotonic leaf: texp(e) = ∞, valid from τ on.
  MaterializedResult Monotonic(MaterializedResult out) {
    out.materialized_at = tau_;
    out.texp = Timestamp::Infinity();
    out.validity = IntervalSet::From(tau_);
    return out;
  }

  /// Unary monotonic operator: texp and validity pass through (Sec. 2.3).
  MaterializedResult Inherit(MaterializedResult out,
                             const MaterializedResult& child) {
    out.materialized_at = tau_;
    out.texp = child.texp;
    out.validity = options_.compute_validity ? child.validity
                                             : IntervalSet(tau_, out.texp);
    return out;
  }

  /// Binary monotonic operator: texp(e) = min of the arguments' texps
  /// (Sec. 2.3); validity is the intersection.
  MaterializedResult Combine(MaterializedResult out,
                             const MaterializedResult& l,
                             const MaterializedResult& r) {
    out.materialized_at = tau_;
    out.texp = Timestamp::Min(l.texp, r.texp);
    out.validity = options_.compute_validity
                       ? l.validity.Intersect(r.validity)
                       : IntervalSet(tau_, out.texp);
    return out;
  }

  /// The empty materialization an elided subtree stands for (exact — see
  /// the prune argument in Exec()).
  MaterializedResult EmptyResult(const PlanNode& n) const {
    MaterializedResult out;
    out.relation = Relation(n.schema);
    out.materialized_at = tau_;
    out.texp = Timestamp::Infinity();
    out.validity = IntervalSet::From(tau_);
    return out;
  }

  /// Live texp upper bound of the subtree at `n`: max over its scans'
  /// Relation::texp_upper_bound(). Computed per execution so cached plans
  /// see fresh data and the current τ.
  Timestamp ComputeBound(const PlanNode& n) {
    Timestamp bound = Timestamp::Zero();
    if (n.op == PlanOp::kScan) {
      auto rel = db_.GetRelation(n.expr->relation_name());
      // Unknown relation: don't prune — let execution surface the error.
      bound = rel.ok() ? (*rel)->texp_upper_bound() : Timestamp::Infinity();
    } else {
      if (n.left != nullptr) {
        bound = Timestamp::Max(bound, ComputeBound(*n.left));
      }
      if (n.right != nullptr) {
        bound = Timestamp::Max(bound, ComputeBound(*n.right));
      }
    }
    bounds_[n.id] = bound;
    return bound;
  }

  const PhysicalPlan& plan_;
  const Database& db_;
  Timestamp tau_;
  EvalOptions options_;
  MorselRunner runner_;
  PlanProfile* profile_;
  NodeCapture* capture_;
  /// Per-node live texp upper bounds (empty when pruning is off).
  std::vector<Timestamp> bounds_;
  /// Results of already-materialized common subtrees, by cse_id.
  std::unordered_map<int32_t, MaterializedResult> cse_cache_;
};

}  // namespace

size_t ResolveWorkers(size_t parallelism) {
  if (parallelism == 1) return 1;
  if (parallelism == 0) {
    return std::max<size_t>(2, std::thread::hardware_concurrency());
  }
  return parallelism;
}

Result<MaterializedResult> ExecutePlan(const PhysicalPlan& plan,
                                       const Database& db, Timestamp tau,
                                       const EvalOptions& options,
                                       PlanProfile* profile,
                                       NodeCapture* capture) {
  PlanExecutor executor(plan, db, tau, options, profile, capture);
  auto run = [&]() -> Result<MaterializedResult> {
    if (profile != nullptr) {
      profile->Resize(plan.node_count());
      const int64_t t0 = obs::SteadyNowNs();
      Result<MaterializedResult> r = executor.Exec(plan.root());
      profile->total_ns = obs::SteadyNowNs() - t0;
      return r;
    }
    return executor.Exec(plan.root());
  };
  if (!options.enable_metrics) return run();
  const EvalMetricSet& m = EvalMetricSet::Get();
  m.evaluations->Increment();
  obs::ScopedSpan span("eval.root", m.latency);
  return run();
}

Result<DifferenceEvalResult> ExecutePlanDifferenceRoot(
    const PhysicalPlan& plan, const Database& db, Timestamp tau,
    const EvalOptions& options, PlanProfile* profile,
    NodeCapture* capture) {
  const PlanNode& root = plan.root();
  if (root.op != PlanOp::kHashDifference &&
      root.op != PlanOp::kHashAntiJoin) {
    return Status::InvalidArgument(
        "ExecutePlanDifferenceRoot requires a difference or anti-join root");
  }
  PlanExecutor executor(plan, db, tau, options, profile, capture);
  auto run = [&]() -> Result<DifferenceEvalResult> {
    PlanProfile::NodeStats* stats = nullptr;
    int64_t t0 = 0;
    if (profile != nullptr) {
      profile->Resize(plan.node_count());
      stats = &profile->at(root.id);
      ++stats->calls;
      t0 = obs::SteadyNowNs();
    }
    Result<DifferenceEvalResult> r =
        root.op == PlanOp::kHashAntiJoin ? executor.ExecAntiJoin(root)
                                         : executor.ExecDifference(root);
    if (profile != nullptr) {
      const int64_t elapsed = obs::SteadyNowNs() - t0;
      stats->wall_ns += elapsed;
      profile->total_ns = elapsed;
      if (r.ok()) stats->rows += r.value().result.relation.size();
    }
    return r;
  };
  // The root does not go through Exec() on this entry point, so its
  // materialization is captured here (children are captured by Exec).
  auto finish = [&](Result<DifferenceEvalResult> r) {
    if (r.ok() && capture != nullptr) {
      capture->nodes[root.id] = {r.value().result, /*pruned=*/false,
                                 /*reused=*/false};
    }
    return r;
  };
  if (!options.enable_metrics) return finish(run());
  const size_t k = static_cast<size_t>(root.expr->kind());
  const EvalMetricSet& m = EvalMetricSet::Get();
  m.evaluations->Increment();
  m.operators->Increment();
  if (k < kNumOpKinds) m.per_op[k]->Increment();
  obs::ScopedSpan span("eval.root", m.latency);
  Result<DifferenceEvalResult> r = run();
  if (r.ok()) m.tuples_out->Increment(r.value().result.relation.size());
  return finish(std::move(r));
}

}  // namespace plan
}  // namespace expdb
