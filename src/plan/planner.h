// Planner: logical algebra Expression -> optimized PhysicalPlan.
//
// Planning runs (1) the Sec. 3.1 algebraic rewrite rules (opt-in — they
// preserve contents and per-tuple texps but can grow texp(e)), (2) the
// expiration-aware optimizations: constant-predicate folding, constant-
// false filter elision over monotonic subtrees, expired-subtree pruning
// via Relation::texp_upper_bound() (decided at execution time against the
// live τ), hash-join build/probe side selection by estimated cardinality,
// and common-subtree detection; then (3) annotates nodes with the
// parallelism/morsel decisions implied by EvalOptions. Schema inference
// and predicate validation happen here, so a returned plan executes
// without re-validation; planning errors carry the same status codes the
// former interpreter raised at evaluation time.

#ifndef EXPDB_PLAN_PLANNER_H_
#define EXPDB_PLAN_PLANNER_H_

#include "common/result.h"
#include "plan/plan.h"
#include "relational/database.h"

namespace expdb {
namespace plan {

class Planner {
 public:
  /// \brief Plans `expr` against the schemas and cardinalities of `db`.
  /// The plan holds shared ownership of the (possibly rewritten/folded)
  /// expression; it stays valid as long as the plan does and may be
  /// executed against any database with compatible schemas.
  static Result<PhysicalPlanPtr> Plan(const ExpressionPtr& expr,
                                      const Database& db,
                                      const PlannerOptions& options = {});
};

}  // namespace plan
}  // namespace expdb

#endif  // EXPDB_PLAN_PLANNER_H_
