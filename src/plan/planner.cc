#include "plan/planner.h"

#include <algorithm>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "plan/executor.h"

namespace expdb {
namespace plan {

namespace {

/// Registry handles for the planning pipeline, resolved once per process.
struct PlanMetricSet {
  obs::Counter* plans;
  obs::Counter* rewrite_passes;
  obs::Histogram* latency;

  static const PlanMetricSet& Get() {
    static const PlanMetricSet* set = [] {
      auto* s = new PlanMetricSet();
      obs::MetricsRegistry& r = obs::MetricsRegistry::Global();
      s->plans = r.GetCounter("expdb_plan_plans_total",
                              "Physical plans produced by the planner");
      s->rewrite_passes =
          r.GetCounter("expdb_plan_rewrite_passes_total",
                       "Sec. 3.1 rewrite passes run during planning");
      s->latency = r.GetHistogram("expdb_plan_latency_ns",
                                  "Planning wall time (ns)");
      return s;
    }();
    return *set;
  }
};

/// Bottom-up constant folding over the expression's predicates: folds each
/// predicate, drops σ_true(e) nodes entirely, and rebuilds the (immutable)
/// tree. Per-tuple evaluation is unchanged — folding only precomputes
/// constant subformulas — so the planned expression is set-identical to
/// the source at every τ.
ExpressionPtr FoldPredicates(const ExpressionPtr& e) {
  switch (e->kind()) {
    case ExprKind::kBase:
      return e;
    case ExprKind::kSelect: {
      ExpressionPtr child = FoldPredicates(e->left());
      Predicate folded = e->predicate().FoldConstants();
      if (const std::optional<bool> lit = folded.AsLiteral();
          lit.has_value() && *lit) {
        return child;  // σ_true(e) = e
      }
      return Expression::MakeSelect(std::move(child), std::move(folded));
    }
    case ExprKind::kProject:
      return Expression::MakeProject(FoldPredicates(e->left()),
                                     e->projection());
    case ExprKind::kProduct:
      return Expression::MakeProduct(FoldPredicates(e->left()),
                                     FoldPredicates(e->right()));
    case ExprKind::kUnion:
      return Expression::MakeUnion(FoldPredicates(e->left()),
                                   FoldPredicates(e->right()));
    case ExprKind::kJoin:
      return Expression::MakeJoin(FoldPredicates(e->left()),
                                  FoldPredicates(e->right()),
                                  e->predicate().FoldConstants());
    case ExprKind::kIntersect:
      return Expression::MakeIntersect(FoldPredicates(e->left()),
                                       FoldPredicates(e->right()));
    case ExprKind::kDifference:
      return Expression::MakeDifference(FoldPredicates(e->left()),
                                        FoldPredicates(e->right()));
    case ExprKind::kAggregate:
      return Expression::MakeAggregate(FoldPredicates(e->left()),
                                       e->group_by(), e->aggregate());
    case ExprKind::kSemiJoin:
      return Expression::MakeSemiJoin(FoldPredicates(e->left()),
                                      FoldPredicates(e->right()),
                                      e->predicate().FoldConstants());
    case ExprKind::kAntiJoin:
      return Expression::MakeAntiJoin(FoldPredicates(e->left()),
                                      FoldPredicates(e->right()),
                                      e->predicate().FoldConstants());
  }
  return e;
}

/// Builds the physical tree: preorder ids, plan-time schema inference
/// (which validates predicates, projections, union compatibility, and
/// aggregate inputs with the interpreter's status codes), cardinality
/// estimates, build-side selection, and parallelism annotations.
class Builder {
 public:
  Builder(const Database& db, const PlannerOptions& options)
      : db_(db),
        options_(options),
        workers_(ResolveWorkers(options.eval.parallelism)) {}

  Result<std::unique_ptr<PlanNode>> Build(const ExpressionPtr& e) {
    auto node = std::make_unique<PlanNode>();
    node->id = next_id_++;
    node->op = PlanOpForKind(e->kind());
    node->expr = e;
    EXPDB_ASSIGN_OR_RETURN(node->schema, e->InferSchema(db_));
    if (e->left() != nullptr) {
      EXPDB_ASSIGN_OR_RETURN(node->left, Build(e->left()));
    }
    if (e->right() != nullptr) {
      EXPDB_ASSIGN_OR_RETURN(node->right, Build(e->right()));
    }
    Annotate(node.get());
    return node;
  }

  uint32_t node_count() const { return next_id_ - 1; }

 private:
  void Annotate(PlanNode* n) {
    const double l = n->left != nullptr ? n->left->est_rows : 0.0;
    const double r = n->right != nullptr ? n->right->est_rows : 0.0;
    double input = l + r;
    switch (n->op) {
      case PlanOp::kScan: {
        auto rel = db_.GetRelation(n->expr->relation_name());
        n->est_rows = rel.ok() ? static_cast<double>((*rel)->size()) : 0.0;
        // Segmented base relations let the scan classify whole segments
        // against τ via their [min_texp, max_texp] bounds.
        n->partition_aware = rel.ok() && (*rel)->segmented();
        input = n->est_rows;
        break;
      }
      case PlanOp::kFilter:
        // Textbook 1/3 selectivity; a constant-false predicate over a
        // monotonic input produces exactly nothing (and the executor can
        // skip the subtree — exact because the elided child contributes
        // texp = ∞ and validity [τ, ∞)).
        if (options_.fold_constants) {
          const std::optional<bool> lit = n->expr->predicate().AsLiteral();
          if (lit.has_value() && !*lit && n->expr->left()->IsMonotonic()) {
            n->const_false = true;
          }
        }
        n->est_rows = n->const_false ? 0.0 : l / 3.0;
        input = l;
        break;
      case PlanOp::kProject:
      case PlanOp::kHashAggregate:
        n->est_rows = l;  // one output tuple per (surviving) source tuple
        input = l;
        break;
      case PlanOp::kCrossProduct:
        n->est_rows = l * r;
        input = l;
        break;
      case PlanOp::kUnionMerge:
        n->est_rows = l + r;
        break;
      case PlanOp::kHashJoin:
        n->est_rows = std::max(l, r);
        // Build the hash table on the estimated-smaller input; probe with
        // the larger. Ties keep the classic build-on-right.
        n->build_left = options_.choose_build_side && l < r;
        input = n->build_left ? r : l;
        break;
      case PlanOp::kHashIntersect:
        n->est_rows = std::min(l, r);
        input = l;
        break;
      case PlanOp::kHashDifference:
      case PlanOp::kHashSemiJoin:
      case PlanOp::kHashAntiJoin:
        n->est_rows = l / 2.0;
        input = l;
        break;
    }
    // Display-only annotation: would the operator's probe/scan loop go
    // morsel-parallel under the plan's EvalOptions? The executor keeps
    // the dynamic per-input decision (exact parity with the interpreter).
    n->parallel =
        workers_ > 1 &&
        input >= 2.0 * static_cast<double>(std::max<size_t>(
                           1, options_.eval.parallel_min_morsel));
  }

  const Database& db_;
  const PlannerOptions& options_;
  const size_t workers_;
  uint32_t next_id_ = 1;
};

/// Common-subtree detection: non-leaf subtrees with an identical algebra
/// signature (post-rewrite, post-fold) are grouped; the executor
/// materializes the first occurrence and reuses the result for the rest.
/// Exact: identical subexpressions against the same database at the same
/// τ produce identical MaterializedResults.
void AssignCommonSubtrees(PlanNode* root) {
  std::unordered_map<std::string, size_t> counts;
  std::vector<PlanNode*> preorder;
  std::vector<PlanNode*> stack = {root};
  while (!stack.empty()) {
    PlanNode* n = stack.back();
    stack.pop_back();
    preorder.push_back(n);
    // Push right first so preorder comes out left-to-right.
    if (n->right != nullptr) stack.push_back(n->right.get());
    if (n->left != nullptr) stack.push_back(n->left.get());
  }
  for (PlanNode* n : preorder) {
    if (n->left != nullptr) ++counts[n->expr->ToString()];
  }
  std::unordered_map<std::string, int32_t> ids;
  int32_t next = 0;
  for (PlanNode* n : preorder) {
    if (n == root || n->left == nullptr) continue;
    const std::string sig = n->expr->ToString();
    auto it = counts.find(sig);
    if (it == counts.end() || it->second < 2) continue;
    auto [id_it, inserted] = ids.try_emplace(sig, next);
    if (inserted) ++next;
    n->cse_id = id_it->second;
  }
}

}  // namespace

Result<PhysicalPlanPtr> Planner::Plan(const ExpressionPtr& expr,
                                      const Database& db,
                                      const PlannerOptions& options) {
  if (expr == nullptr) {
    return Status::InvalidArgument("null expression");
  }
  const PlanMetricSet& m = PlanMetricSet::Get();
  m.plans->Increment();
  obs::ScopedSpan span("plan.plan", m.latency);

  ExpressionPtr planned = expr;
  RewriteReport report;
  if (options.apply_rewrites) {
    m.rewrite_passes->Increment();
    EXPDB_ASSIGN_OR_RETURN(planned,
                           RewriteForIndependence(planned, db, &report));
    if (options.rewrite_report != nullptr) {
      *options.rewrite_report = report;
    }
  }
  if (options.fold_constants) planned = FoldPredicates(planned);

  Builder builder(db, options);
  EXPDB_ASSIGN_OR_RETURN(std::unique_ptr<PlanNode> root,
                         builder.Build(planned));
  if (options.detect_common_subtrees) AssignCommonSubtrees(root.get());

  PlannerOptions stored = options;
  stored.rewrite_report = nullptr;  // not owned by the plan
  return PhysicalPlanPtr(std::make_shared<PhysicalPlan>(
      std::move(root), builder.node_count(), expr, std::move(planned),
      std::move(report), stored));
}

}  // namespace plan
}  // namespace expdb
