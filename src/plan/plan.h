// PhysicalPlan: the typed operator tree produced by the Planner and
// consumed by the executor (docs/PLANNER.md).
//
// The engine's classic split — logical plan (the algebra Expression),
// rule-based optimizer (core/rewrite.cc plus the expiration-aware rules in
// planner.cc), physical operators (this tree) — replaces the former
// single-pass recursive interpreter. Every node carries a stable id
// (preorder, root = 1) so EXPLAIN ANALYZE can join per-node row counts and
// latencies (obs:: spans tagged with the id) back onto the rendered tree,
// and so cached plans (materialized views, replica queries) stay
// addressable across recomputations.

#ifndef EXPDB_PLAN_PLAN_H_
#define EXPDB_PLAN_PLAN_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/eval.h"
#include "core/expression.h"
#include "core/rewrite.h"
#include "relational/schema.h"

namespace expdb {
namespace plan {

/// The physical operator implementing an algebra node. One-to-one with
/// ExprKind today (ExpDB has a single physical algorithm per operator:
/// hash-based for the matching operators, morsel scans for the rest);
/// the indirection is what lets future alternatives (sort-merge join,
/// streaming aggregate) slot in per node.
enum class PlanOp {
  kScan,            ///< base-relation scan of expτ(R)
  kFilter,          ///< σexp_p morsel scan
  kProject,         ///< πexp hash duplicate-merge
  kCrossProduct,    ///< ×exp nested loop
  kUnionMerge,      ///< ∪exp hash max-merge
  kHashJoin,        ///< ⋈exp_p build/probe hash join
  kHashIntersect,   ///< ∩exp hash lookup
  kHashDifference,  ///< −exp with critical-tuple analysis (Theorem 3)
  kHashAggregate,   ///< aggexp hash grouping + partition replay
  kHashSemiJoin,    ///< ⋉exp hash lookup
  kHashAntiJoin,    ///< ▷exp with critical-match analysis
};

std::string_view PlanOpName(PlanOp op);

/// The physical operator chosen for an algebra node kind.
PlanOp PlanOpForKind(ExprKind kind);

/// \brief One node of a physical plan.
struct PlanNode {
  /// Stable node id: preorder over the plan tree, root = 1. Used as the
  /// span tag for EXPLAIN ANALYZE and as the PlanProfile index.
  uint32_t id = 0;
  PlanOp op = PlanOp::kScan;
  /// The (post-rewrite, post-fold) algebra subtree this node implements.
  /// Supplies the operator arguments: predicate(), projection(),
  /// group_by(), aggregate(), relation_name().
  ExpressionPtr expr;
  /// Output schema, inferred at plan time (plan-time validation: schema
  /// errors surface from Planner::Plan with the same status codes the
  /// interpreter produced at evaluation time).
  Schema schema;
  std::unique_ptr<PlanNode> left;
  std::unique_ptr<PlanNode> right;

  // --- optimizer annotations ---------------------------------------------
  /// Estimated output cardinality (relation sizes at plan time, textbook
  /// selectivity heuristics). Advisory: drives build/probe side selection
  /// and the EXPLAIN display only.
  double est_rows = 0.0;
  /// kHashJoin only: true = build the hash table on the left (estimated
  /// smaller) input and probe with the right, via the mirrored predicate.
  /// False is the classic build-on-right default.
  bool build_left = false;
  /// Common-subtree group (>= 0 when this subtree occurs more than once in
  /// the plan; -1 otherwise). The executor evaluates one occurrence and
  /// reuses the materialization for the rest.
  int32_t cse_id = -1;
  /// Filter whose predicate folded to constant false over a monotonic
  /// subtree: the executor skips the subtree and returns the empty result
  /// (exact — see planner.cc for the texp/validity argument).
  bool const_false = false;
  /// Annotation: whether this node's scan loop is expected to run
  /// morsel-parallel under the plan's EvalOptions (workers > 1 and the
  /// estimated input clears 2 x parallel_min_morsel). Display only — the
  /// executor keeps the dynamic per-input decision for exact behavioral
  /// parity with the interpreter.
  bool parallel = false;
  /// kScan only: the scanned base relation uses expiration-partitioned
  /// (segmented) storage, so the scan classifies whole segments against τ
  /// instead of checking texp per tuple. EXPLAIN ANALYZE reports the
  /// per-segment outcome as `[segments: live/checked/pruned]`.
  bool partition_aware = false;
};

/// \brief Per-node execution statistics for EXPLAIN ANALYZE, indexed by
/// PlanNode::id (slot 0 unused).
struct PlanProfile {
  struct NodeStats {
    uint64_t calls = 0;    ///< executions of this node
    uint64_t rows = 0;     ///< tuples produced (cumulative over calls)
    int64_t wall_ns = 0;   ///< wall time inside the node, children included
    bool pruned = false;   ///< expired-subtree prune short-circuited it
    bool reused = false;   ///< served from the common-subtree cache
    // Scan nodes over segmented storage: per-segment classification
    // against τ (cumulative over calls). live = fully-live segments
    // copied without per-tuple texp checks, checked = segments straddling
    // τ (per-tuple filter), seg_pruned = fully-expired segments skipped.
    uint64_t segs_live = 0;
    uint64_t segs_checked = 0;
    uint64_t segs_pruned = 0;
  };
  std::vector<NodeStats> nodes;
  int64_t total_ns = 0;

  void Resize(uint32_t node_count) { nodes.assign(node_count + 1, {}); }
  NodeStats& at(uint32_t id) { return nodes[id]; }
  const NodeStats& at(uint32_t id) const { return nodes[id]; }
};

/// \brief Options consumed by Planner::Plan.
struct PlannerOptions {
  /// Run the Sec. 3.1 algebraic rewrites (core/rewrite.cc) before
  /// physical planning. Off by default: rewrites preserve contents and
  /// per-tuple texps but may *grow* texp(e), so the drop-in Evaluate()
  /// facade keeps the un-rewritten expression; the SQL and view layers
  /// opt in (they owned the rewrite pass before this refactor).
  bool apply_rewrites = false;
  /// Fold constant predicate subtrees (constant-vs-constant comparisons,
  /// and/or/not over literals). Exact: folding never changes per-tuple
  /// evaluation.
  bool fold_constants = true;
  /// Elide subtrees whose base relations are entirely expired at
  /// execution time, using Relation::texp_upper_bound(). Exact: all-empty
  /// scans make every operator above them produce the empty relation with
  /// texp = ∞ and validity [τ, ∞) — by induction over the operator rules.
  bool prune_expired = true;
  /// Build the join hash table on the estimated-smaller side.
  bool choose_build_side = true;
  /// Detect repeated subtrees and materialize them once per execution.
  bool detect_common_subtrees = true;
  /// Execution options the plan is annotated for (parallelism/morsel
  /// decisions); also the defaults used when the caller executes without
  /// overriding them.
  EvalOptions eval;
  /// When non-null, receives the rewrite report (which rules fired).
  RewriteReport* rewrite_report = nullptr;
};

class PhysicalPlan;
using PhysicalPlanPtr = std::shared_ptr<const PhysicalPlan>;

/// \brief An immutable physical plan: safe to cache and to execute
/// concurrently (execution never mutates the plan).
class PhysicalPlan {
 public:
  PhysicalPlan(std::unique_ptr<PlanNode> root, uint32_t node_count,
               ExpressionPtr source_expr, ExpressionPtr planned_expr,
               RewriteReport rewrites, PlannerOptions options)
      : root_(std::move(root)),
        node_count_(node_count),
        source_expr_(std::move(source_expr)),
        planned_expr_(std::move(planned_expr)),
        rewrites_(std::move(rewrites)),
        options_(std::move(options)) {}

  const PlanNode& root() const { return *root_; }
  /// Number of plan nodes; node ids are 1..node_count().
  uint32_t node_count() const { return node_count_; }
  /// The expression as handed to the planner.
  const ExpressionPtr& source_expr() const { return source_expr_; }
  /// The expression after rewrites and folding (what the plan computes).
  const ExpressionPtr& planned_expr() const { return planned_expr_; }
  /// Which rewrite rules fired during planning.
  const RewriteReport& rewrites() const { return rewrites_; }
  const PlannerOptions& options() const { return options_; }

  /// \brief Renders the physical tree, one node per line:
  ///
  ///     #1 HashJoin [$1 = $3, build=right, est=40]
  ///       #2 Scan [R, est=20]
  ///       #3 Scan [S, est=40]
  ///
  /// With a profile (EXPLAIN ANALYZE) each line gains
  /// `(rows=…, time=…, calls=…)` plus `pruned`/`reused` markers.
  std::string ToString(const PlanProfile* profile = nullptr) const;

 private:
  std::unique_ptr<PlanNode> root_;
  uint32_t node_count_;
  ExpressionPtr source_expr_;
  ExpressionPtr planned_expr_;
  RewriteReport rewrites_;
  PlannerOptions options_;
};

}  // namespace plan
}  // namespace expdb

#endif  // EXPDB_PLAN_PLAN_H_
