// Two-tier statement caching over physical plans (docs/PERFORMANCE.md §7).
//
// Tier 1 — StatementCache: parameterized plan skeletons keyed by the
// normalized statement fingerprint. `WHERE id = 7` and `WHERE id = 9`
// normalize to the same skeleton with one parameter slot; re-executions
// skip parsing-adjacent work and the whole planner, paying only
// InstantiatePlan (a tree clone that binds parameter operands).
//
// Tier 2 — ResultCache: fully materialized results keyed by (fingerprint,
// bound arguments). The paper's central result makes this cache
// revalidation-free: a materialization is provably identical to
// recomputation at every τ' in [materialized_at, texp(e)) (Theorems 1–2),
// so a hit needs only (a) every base relation's delta cursor unchanged and
// (b) now < texp. On small cursor drift the entry is *patched* through
// plan::DeltaPropagator instead of discarded; eviction is LRU over a byte
// budget (`SET result_cache_bytes`).

#ifndef EXPDB_PLAN_CACHE_H_
#define EXPDB_PLAN_CACHE_H_

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/result.h"
#include "common/value.h"
#include "core/materialized_result.h"
#include "obs/metrics.h"
#include "plan/delta.h"
#include "plan/executor.h"
#include "plan/plan.h"
#include "relational/database.h"

namespace expdb {
namespace plan {

/// \brief The process-wide "executions served from a cached physical
/// plan" counter — one name, one help string, shared by every plan-cache
/// call site (statement cache, materialized views, replica queries).
obs::Counter* PlanCacheHits();

// --- parameterized plans ---------------------------------------------------

/// \brief Number of parameter slots referenced anywhere in `expr`:
/// max parameter index + 1 (0 = not parameterized).
size_t ExpressionParameterCount(const ExpressionPtr& expr);

/// \brief Returns `expr` with every parameter operand bound to the
/// corresponding constant from `args`. Subtrees without parameters are
/// shared, not copied. Fails when a parameter index exceeds `args`.
Result<ExpressionPtr> BindExpressionParameters(const ExpressionPtr& expr,
                                               const std::vector<Value>& args);

/// \brief Binds a parameterized plan skeleton to concrete argument values:
/// clones the node tree (ids, schemas, and every optimizer annotation are
/// preserved) with each node's algebra subtree parameter-bound. No
/// optimizer pass runs — this is the entire per-execution planning cost of
/// a statement-cache hit.
Result<PhysicalPlanPtr> InstantiatePlan(const PhysicalPlanPtr& plan,
                                        const std::vector<Value>& args);

// --- tier 1: statement/plan cache ------------------------------------------

/// A cached parameterized plan skeleton plus the presentation metadata the
/// SQL layer needs to serve executions without re-binding.
struct PreparedPlan {
  PhysicalPlanPtr plan;
  size_t param_count = 0;
  /// Canonical normalized statement text (the statement-cache key; also
  /// the result-cache key prefix, so PREPARE/EXECUTE and the equivalent
  /// literal SELECT share result-cache entries).
  std::string fingerprint;
  /// Output column names of the statement (aliases applied).
  std::vector<std::string> column_names;
};

/// \brief LRU cache of parameterized plan skeletons keyed by statement
/// fingerprint. Thread-safe: the engine shares one instance across every
/// session, so all operations serialize on an internal mutex (hence
/// Lookup returns a copy — a pointer into the map could be evicted by a
/// concurrent Insert). The shared PlanCacheHits() counter aggregates hits
/// process-wide.
class StatementCache {
 public:
  static constexpr size_t kDefaultCapacity = 256;

  explicit StatementCache(size_t capacity = kDefaultCapacity)
      : capacity_(capacity) {}

  /// \brief A copy of the cached skeleton for `fingerprint`, or nullopt.
  /// The copy is shallow where it matters — PhysicalPlanPtr is a
  /// shared_ptr to an immutable plan. A hit refreshes LRU order and
  /// counts toward expdb_plan_cache_hits_total.
  std::optional<PreparedPlan> Lookup(const std::string& fingerprint);

  /// \brief Caches `plan` (replacing any previous entry), evicting the
  /// least recently used skeletons beyond capacity.
  void Insert(const std::string& fingerprint, PreparedPlan plan);

  /// \brief Drops every entry whose plan reads base relation `name`
  /// (schema churn: CREATE/DROP TABLE invalidates planned schemas).
  void InvalidateBase(const std::string& name);

  void Clear();

  size_t size() const {
    std::lock_guard<std::mutex> guard(mu_);
    return entries_.size();
  }
  uint64_t hits() const {
    std::lock_guard<std::mutex> guard(mu_);
    return hits_;
  }
  uint64_t misses() const {
    std::lock_guard<std::mutex> guard(mu_);
    return misses_;
  }

 private:
  struct Entry {
    PreparedPlan plan;
    std::list<std::string>::iterator lru_it;
  };

  /// Leaf lock (nothing else is acquired while held).
  mutable std::mutex mu_;
  size_t capacity_;
  std::unordered_map<std::string, Entry> entries_;
  std::list<std::string> lru_;  // front = most recently used
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
};

// --- tier 2: expiration-stamped result cache --------------------------------

/// \brief The result-cache key for one execution: the statement
/// fingerprint plus a type-tagged rendering of the bound arguments.
std::string ResultCacheKey(const std::string& fingerprint,
                           const std::vector<Value>& args);

/// \brief LRU-over-byte-budget cache of materialized query results,
/// validity-stamped with the paper's computed expiration times.
///
/// Per entry: the instantiated plan, the MaterializedResult, one
/// Relation::DeltaCursor per base relation, and (when the plan is
/// incrementalizable) a seeded DeltaPropagator. Lookup outcomes:
///
///   hit    — every cursor unchanged and now < texp: served verbatim.
///   patch  — cursors drifted but the delta streams are available and the
///            result has not lapsed: patched in place, then served.
///   miss   — anything else (absent, expired, history broken, Clear()'d
///            base, instance-id churn, patch failure): entry dropped.
///
/// Thread-safe: the engine shares one instance across every session; all
/// operations serialize on an internal mutex. Callers must still hold the
/// base relations' reader locks across Lookup/Insert (the cache reads
/// delta cursors and rings from `db`) — the internal mutex only protects
/// the cache's own structures. Lookup returns the materialization by
/// value, so a served result can never be torn by a concurrent patch or
/// eviction.
class ResultCache {
 public:
  static constexpr size_t kDefaultMaxBytes = 64ull << 20;  // 64 MiB

  ResultCache();

  struct Stats {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t patches = 0;  ///< subset of hits served after delta patching
    uint64_t evictions = 0;
    size_t entries = 0;
    size_t bytes = 0;
    size_t max_bytes = 0;
  };

  size_t max_bytes() const {
    std::lock_guard<std::mutex> guard(mu_);
    return max_bytes_;
  }
  bool enabled() const { return max_bytes() > 0; }
  /// \brief Sets the byte budget, evicting LRU entries over the new
  /// budget. 0 disables the cache and drops every entry.
  void set_max_bytes(size_t bytes);

  /// \brief Looks up `key` at time `now`, validating base cursors against
  /// `db` and patching drifted entries through the propagator. Returns
  /// the (possibly patched) materialization — the caller serves
  /// `relation.UnexpiredAt(now)` — or nullopt on a miss.
  std::optional<MaterializedResult> Lookup(const std::string& key,
                                           const Database& db, Timestamp now);

  /// \brief Caches one execution's result. Enables delta tracking on
  /// every base (so future mutations advance the cursors this entry
  /// snapshots), seeds a propagator from `capture` when available, and
  /// evicts LRU entries to fit the budget. No-op when disabled, when the
  /// result is already lapsed, or when the entry alone exceeds the
  /// budget.
  void Insert(const std::string& key, PhysicalPlanPtr plan,
              const NodeCapture* capture, MaterializedResult result,
              const Database& db, Timestamp now);

  /// \brief Drops every entry reading base relation `name` (DDL).
  void InvalidateBase(const std::string& name);

  void Clear();

  Stats stats() const;

  /// \brief Entries whose validity stamp has lapsed at `now` (texp <=
  /// now): dead weight a Lookup would drop on contact. The telemetry
  /// layer reads this as the result-cache staleness gauge; entries are
  /// not evicted here (Lookup/Insert own mutation).
  size_t CountStaleAt(Timestamp now) const;

 private:
  struct Entry {
    PhysicalPlanPtr plan;
    MaterializedResult result;
    std::vector<std::pair<std::string, Relation::DeltaCursor>> bases;
    std::unique_ptr<DeltaPropagator> propagator;
    size_t bytes = 0;
    std::list<std::string>::iterator lru_it;
  };
  using EntryMap = std::unordered_map<std::string, Entry>;

  // All private helpers require mu_ to be held by the caller.
  void EraseEntry(EntryMap::iterator it);
  /// Evicts LRU entries until `need` more bytes fit under the budget,
  /// never evicting `keep`.
  void EvictFor(size_t need, const std::string* keep);
  void Touch(Entry* entry);
  void CountMiss();

  /// Guards every member below. Leaf lock within the cache (obs metric
  /// updates under it are themselves lock-free or leaf-locked).
  mutable std::mutex mu_;
  size_t max_bytes_ = kDefaultMaxBytes;
  size_t bytes_ = 0;
  EntryMap entries_;
  std::list<std::string> lru_;  // front = most recently used
  // Session-local stats (CACHE STATS) ...
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
  uint64_t patches_ = 0;
  uint64_t evictions_ = 0;
  // ... parented into the process-wide expdb_result_cache_* metrics.
  obs::Counter* hits_total_;
  obs::Counter* misses_total_;
  obs::Counter* patches_total_;
  obs::Counter* evictions_total_;
  obs::Gauge bytes_gauge_;
  obs::Histogram* lookup_latency_;
};

/// \brief Byte-footprint estimate of a cached result: entry storage plus
/// string payloads. Advisory (the propagator's auxiliary state is not
/// charged); it is what the LRU budget accounts in.
size_t EstimateResultBytes(const Relation& relation);

}  // namespace plan
}  // namespace expdb

#endif  // EXPDB_PLAN_CACHE_H_
