// Physical-plan execution: the morsel-parallel operator implementations
// formerly in core/eval.cc, driven by a PhysicalPlan instead of the raw
// Expression tree.
//
// Execution is read-only on the plan — a cached plan (materialized view,
// replica query) can be executed repeatedly and concurrently. Per-node
// obs:: spans are tagged with the plan-node id; pass a PlanProfile to
// collect per-node row counts and latencies for EXPLAIN ANALYZE.

#ifndef EXPDB_PLAN_EXECUTOR_H_
#define EXPDB_PLAN_EXECUTOR_H_

#include <cstdint>
#include <map>

#include "common/result.h"
#include "core/eval.h"
#include "plan/plan.h"
#include "relational/database.h"

namespace expdb {
namespace plan {

/// EvalOptions::parallelism -> worker count: 1 stays serial, 0 sizes to
/// the hardware (>= 2), anything else is the worker count.
size_t ResolveWorkers(size_t parallelism);

/// \brief Per-node materializations captured during one plan execution —
/// the seed state for incremental (delta-driven) maintenance of the plan
/// (plan/delta.h). Keyed by PlanNode::id.
///
/// Children of a pruned/const-false node and of a common-subtree shadow
/// occurrence never execute, so they have no entries; DeltaPropagator
/// reconstructs them (empty results under a pruned ancestor, the primary
/// occurrence's state for shadows). Capturing copies every node's output,
/// so request it only when the result will actually be maintained
/// incrementally.
struct NodeCapture {
  struct Entry {
    MaterializedResult result;
    bool pruned = false;  ///< expired-subtree prune or const-false elision
    bool reused = false;  ///< served from the common-subtree cache
  };
  std::map<uint32_t, Entry> nodes;
};

/// \brief Executes `plan` against `db` at time `tau`.
///
/// `options` are the execution-time EvalOptions (parallelism, aggregate
/// mode, validity) — usually the ones the plan was annotated with, but a
/// cached plan may be executed under different settings. When `profile`
/// is non-null it is resized to the plan and filled with per-node stats.
/// When `capture` is non-null every executed node's materialization is
/// copied into it (see NodeCapture).
Result<MaterializedResult> ExecutePlan(const PhysicalPlan& plan,
                                       const Database& db, Timestamp tau,
                                       const EvalOptions& options = {},
                                       PlanProfile* profile = nullptr,
                                       NodeCapture* capture = nullptr);

/// \brief Like ExecutePlan for plans whose root is a difference or
/// anti-join; additionally returns the Theorem 3 helper entries.
Result<DifferenceEvalResult> ExecutePlanDifferenceRoot(
    const PhysicalPlan& plan, const Database& db, Timestamp tau,
    const EvalOptions& options = {}, PlanProfile* profile = nullptr,
    NodeCapture* capture = nullptr);

}  // namespace plan
}  // namespace expdb

#endif  // EXPDB_PLAN_EXECUTOR_H_
