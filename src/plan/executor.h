// Physical-plan execution: the morsel-parallel operator implementations
// formerly in core/eval.cc, driven by a PhysicalPlan instead of the raw
// Expression tree.
//
// Execution is read-only on the plan — a cached plan (materialized view,
// replica query) can be executed repeatedly and concurrently. Per-node
// obs:: spans are tagged with the plan-node id; pass a PlanProfile to
// collect per-node row counts and latencies for EXPLAIN ANALYZE.

#ifndef EXPDB_PLAN_EXECUTOR_H_
#define EXPDB_PLAN_EXECUTOR_H_

#include "common/result.h"
#include "core/eval.h"
#include "plan/plan.h"
#include "relational/database.h"

namespace expdb {
namespace plan {

/// EvalOptions::parallelism -> worker count: 1 stays serial, 0 sizes to
/// the hardware (>= 2), anything else is the worker count.
size_t ResolveWorkers(size_t parallelism);

/// \brief Executes `plan` against `db` at time `tau`.
///
/// `options` are the execution-time EvalOptions (parallelism, aggregate
/// mode, validity) — usually the ones the plan was annotated with, but a
/// cached plan may be executed under different settings. When `profile`
/// is non-null it is resized to the plan and filled with per-node stats.
Result<MaterializedResult> ExecutePlan(const PhysicalPlan& plan,
                                       const Database& db, Timestamp tau,
                                       const EvalOptions& options = {},
                                       PlanProfile* profile = nullptr);

/// \brief Like ExecutePlan for plans whose root is a difference or
/// anti-join; additionally returns the Theorem 3 helper entries.
Result<DifferenceEvalResult> ExecutePlanDifferenceRoot(
    const PhysicalPlan& plan, const Database& db, Timestamp tau,
    const EvalOptions& options = {}, PlanProfile* profile = nullptr);

}  // namespace plan
}  // namespace expdb

#endif  // EXPDB_PLAN_EXECUTOR_H_
