// Facade implementing core/eval.h on top of the plan pipeline.
//
// Evaluate() is now plan-then-execute: the expression is planned with the
// default PlannerOptions (expiration-aware optimizations on, the Sec. 3.1
// rewrites OFF — they preserve contents but can grow texp(e), and callers
// of the facade rely on exact expression expiration times) and executed
// immediately. Output is set-identical to the former interpreter; the
// property sweep in tests/plan/planner_property_test.cc asserts this
// against the reference evaluator.

#include "core/eval.h"

#include <utility>

#include "plan/executor.h"
#include "plan/plan.h"
#include "plan/planner.h"

namespace expdb {

Result<MaterializedResult> Evaluate(const ExpressionPtr& expr,
                                    const Database& db, Timestamp tau,
                                    const EvalOptions& options) {
  if (expr == nullptr) {
    return Status::InvalidArgument("null expression");
  }
  plan::PlannerOptions popts;
  popts.eval = options;
  EXPDB_ASSIGN_OR_RETURN(plan::PhysicalPlanPtr plan,
                         plan::Planner::Plan(expr, db, popts));
  return plan::ExecutePlan(*plan, db, tau, options);
}

Result<DifferenceEvalResult> EvaluateDifferenceRoot(
    const ExpressionPtr& expr, const Database& db, Timestamp tau,
    const EvalOptions& options) {
  if (expr == nullptr || (expr->kind() != ExprKind::kDifference &&
                          expr->kind() != ExprKind::kAntiJoin)) {
    return Status::InvalidArgument(
        "EvaluateDifferenceRoot requires a difference or anti-join root");
  }
  plan::PlannerOptions popts;
  popts.eval = options;
  EXPDB_ASSIGN_OR_RETURN(plan::PhysicalPlanPtr plan,
                         plan::Planner::Plan(expr, db, popts));
  return plan::ExecutePlanDifferenceRoot(*plan, db, tau, options);
}

}  // namespace expdb
