// Incremental (delta-driven) maintenance of cached physical plans
// (docs/PERFORMANCE.md §6).
//
// A materialized view caches a PhysicalPlan plus the per-node
// materializations of one execution (plan/executor.h NodeCapture). When a
// base relation records explicit mutations (Relation::DeltasSince), the
// DeltaPropagator pushes them node-by-node through the cached plan,
// emitting the net change to the root materialization — O(|delta|) work
// instead of the O(|base|) full recomputation.
//
// The op-stream contract every operator maintains:
//  * an insert means the tuple was semantically absent from the node's
//    output before the op;
//  * a delete carries the exact (tuple, texp) the node previously emitted;
//  * a texp change is delete(t, old) followed by insert(t, new).
// Consumers are nevertheless defensive (deleting an absent tuple is a
// no-op), because expired entries may linger in materializations: under
// the algebra's max/min texp composition a dead entry can never shadow a
// live one, so stale dead tuples are invisible to expτ readers.
//
// Not every operator is incrementalizable (CrossProduct, AntiJoin,
// keyless joins, Schrödinger validity, aggregate tolerance > 0);
// Create() refuses such plans and the caller falls back to full
// recomputation — correctness never depends on incrementality.

#ifndef EXPDB_PLAN_DELTA_H_
#define EXPDB_PLAN_DELTA_H_

#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "common/result.h"
#include "core/difference.h"
#include "core/eval.h"
#include "plan/executor.h"
#include "plan/plan.h"
#include "relational/relation.h"

namespace expdb {
namespace plan {

/// One incremental change to a node's output.
struct DeltaOp {
  bool is_delete = false;
  Relation::Entry entry;
};
using DeltaOps = std::vector<DeltaOp>;

/// The recorded mutation stream of one base relation (the batches come
/// from Relation::DeltasSince, already in epoch order).
struct BaseDelta {
  std::string relation;
  std::vector<Relation::DeltaBatch> batches;
};

/// \brief True when `node`'s operator can propagate deltas incrementally
/// under `options`. Schrödinger validity tracking and approximate
/// aggregates always force the full path; joins and semi-joins need
/// extractable equality keys; cross products and anti-joins are not
/// incrementalized.
bool NodeSupportsDelta(const PlanNode& node, const EvalOptions& options);

/// \brief True when every reachable node of `plan` supports delta
/// propagation (const-false subtrees never execute and are skipped).
/// EXPLAIN uses this per node to render the `[incremental]` marker.
bool PlanSupportsDelta(const PhysicalPlan& plan, const EvalOptions& options);

/// \brief Pushes base-relation deltas through a cached physical plan.
///
/// Seeded from one execution's NodeCapture, the propagator keeps the
/// auxiliary per-node state incremental maintenance needs (join key
/// buckets, projection support counts, aggregate partitions with their
/// lifetime analyses, difference criticals) and translates each batch of
/// base mutations into the net op stream on the root materialization.
class DeltaPropagator {
 public:
  /// The net effect of one Apply round.
  struct ApplyResult {
    /// Net changes to the root materialization, in emission order.
    DeltaOps root_ops;
    /// Recomputed texp(e) of the plan after the deltas.
    Timestamp texp = Timestamp::Infinity();
    /// Root-is-difference only: min(texp(R), texp(S)) — the Theorem 3
    /// maintenance-free horizon of a patched view. Equals `texp`
    /// otherwise.
    Timestamp children_texp = Timestamp::Infinity();
    /// Root-is-difference only: the regenerated Theorem 3 helper queue,
    /// sorted by (appears_at, tuple).
    std::vector<DifferencePatchEntry> helper;
    bool root_is_difference = false;
    size_t ops_in = 0;   ///< base-relation ops consumed
    size_t ops_out = 0;  ///< root ops emitted
  };

  /// \brief Builds a propagator for `plan`, seeding per-node state from
  /// `capture` (the NodeCapture of the execution that produced the
  /// currently cached result). Returns nullptr when the plan has an
  /// unsupported operator or the capture is incomplete — the caller must
  /// recompute instead.
  static std::unique_ptr<DeltaPropagator> Create(PhysicalPlanPtr plan,
                                                 const NodeCapture& capture,
                                                 const EvalOptions& options);

  ~DeltaPropagator();

  /// \brief Propagates `deltas` at time `now`.
  ///
  /// Precondition: `now` precedes the cached result's texp (for a patched
  /// difference root, its children_texp). This is what keeps the cached
  /// aggregate analyses and difference criticals valid — no invalidating
  /// change cap or appears_at has fired yet. Callers that let the result
  /// lapse must recompute.
  ///
  /// On error the internal state may be inconsistent; discard the
  /// propagator and recompute.
  Result<ApplyResult> Apply(const std::vector<BaseDelta>& deltas,
                            Timestamp now);

  /// \brief Applies an op stream to a materialization in place.
  static void ApplyOps(const DeltaOps& ops, Relation* mat);

 private:
  struct NodeState;
  struct Round;

  /// Per-node propagation output.
  struct PropOut {
    DeltaOps ops;
    Timestamp texp = Timestamp::Infinity();
    Timestamp children_texp = Timestamp::Infinity();
  };

  DeltaPropagator(PhysicalPlanPtr plan, EvalOptions options);

  /// Builds the node's auxiliary state from the captured child
  /// materializations. `under_pruned` marks subtrees whose captured
  /// ancestor was pruned (their captures are legitimately missing — they
  /// seed empty). Returns false when the capture is unusable.
  bool Seed(const PlanNode& node, const NodeCapture& capture,
            bool under_pruned, std::set<int32_t>* seeded_cse);

  Result<PropOut> Propagate(const PlanNode& node, Round* round);

  PhysicalPlanPtr plan_;
  EvalOptions options_;
  /// Keyed by PlanNode::id. CSE shadow occurrences share the primary's
  /// state and have no entry; stateless operators (scan, filter) none
  /// either.
  std::map<uint32_t, std::unique_ptr<NodeState>> state_;
};

}  // namespace plan
}  // namespace expdb

#endif  // EXPDB_PLAN_DELTA_H_
