#include "plan/cache.h"

#include <algorithm>
#include <utility>

#include "obs/log.h"
#include "obs/trace.h"

namespace expdb {
namespace plan {

namespace {

void LogCacheEvent(const char* event, std::vector<obs::LogField> fields) {
  obs::EventLog& log = obs::EventLog::Global();
  if (!log.enabled()) return;
  log.Emit(obs::LogSeverity::kInfo, "sql", event, std::move(fields));
}

}  // namespace

obs::Counter* PlanCacheHits() {
  static obs::Counter* hits = obs::MetricsRegistry::Global().GetCounter(
      "expdb_plan_cache_hits_total",
      "Executions served from a cached physical plan");
  return hits;
}

// --- parameterized plans ---------------------------------------------------

size_t ExpressionParameterCount(const ExpressionPtr& expr) {
  if (expr == nullptr) return 0;
  size_t n = expr->predicate().ParameterCount();
  n = std::max(n, ExpressionParameterCount(expr->left()));
  n = std::max(n, ExpressionParameterCount(expr->right()));
  return n;
}

Result<ExpressionPtr> BindExpressionParameters(
    const ExpressionPtr& expr, const std::vector<Value>& args) {
  if (expr == nullptr || ExpressionParameterCount(expr) == 0) return expr;
  EXPDB_ASSIGN_OR_RETURN(ExpressionPtr left,
                         BindExpressionParameters(expr->left(), args));
  EXPDB_ASSIGN_OR_RETURN(ExpressionPtr right,
                         BindExpressionParameters(expr->right(), args));
  switch (expr->kind()) {
    case ExprKind::kBase:
      return expr;
    case ExprKind::kSelect: {
      EXPDB_ASSIGN_OR_RETURN(Predicate p,
                             expr->predicate().BindParameters(args));
      return Expression::MakeSelect(std::move(left), std::move(p));
    }
    case ExprKind::kProject:
      return Expression::MakeProject(std::move(left), expr->projection());
    case ExprKind::kProduct:
      return Expression::MakeProduct(std::move(left), std::move(right));
    case ExprKind::kUnion:
      return Expression::MakeUnion(std::move(left), std::move(right));
    case ExprKind::kJoin: {
      EXPDB_ASSIGN_OR_RETURN(Predicate p,
                             expr->predicate().BindParameters(args));
      return Expression::MakeJoin(std::move(left), std::move(right),
                                  std::move(p));
    }
    case ExprKind::kIntersect:
      return Expression::MakeIntersect(std::move(left), std::move(right));
    case ExprKind::kDifference:
      return Expression::MakeDifference(std::move(left), std::move(right));
    case ExprKind::kAggregate:
      return Expression::MakeAggregate(std::move(left), expr->group_by(),
                                       expr->aggregate());
    case ExprKind::kSemiJoin: {
      EXPDB_ASSIGN_OR_RETURN(Predicate p,
                             expr->predicate().BindParameters(args));
      return Expression::MakeSemiJoin(std::move(left), std::move(right),
                                      std::move(p));
    }
    case ExprKind::kAntiJoin: {
      EXPDB_ASSIGN_OR_RETURN(Predicate p,
                             expr->predicate().BindParameters(args));
      return Expression::MakeAntiJoin(std::move(left), std::move(right),
                                      std::move(p));
    }
  }
  return Status::Internal("unhandled expression kind in parameter binding");
}

namespace {

Result<std::unique_ptr<PlanNode>> CloneBound(const PlanNode& node,
                                             const std::vector<Value>& args) {
  auto copy = std::make_unique<PlanNode>();
  copy->id = node.id;
  copy->op = node.op;
  EXPDB_ASSIGN_OR_RETURN(copy->expr,
                         BindExpressionParameters(node.expr, args));
  copy->schema = node.schema;
  copy->est_rows = node.est_rows;
  copy->build_left = node.build_left;
  copy->cse_id = node.cse_id;
  copy->const_false = node.const_false;
  copy->parallel = node.parallel;
  if (node.left != nullptr) {
    EXPDB_ASSIGN_OR_RETURN(copy->left, CloneBound(*node.left, args));
  }
  if (node.right != nullptr) {
    EXPDB_ASSIGN_OR_RETURN(copy->right, CloneBound(*node.right, args));
  }
  return copy;
}

}  // namespace

Result<PhysicalPlanPtr> InstantiatePlan(const PhysicalPlanPtr& plan,
                                        const std::vector<Value>& args) {
  if (plan == nullptr) return Status::InvalidArgument("null plan");
  EXPDB_ASSIGN_OR_RETURN(std::unique_ptr<PlanNode> root,
                         CloneBound(plan->root(), args));
  EXPDB_ASSIGN_OR_RETURN(ExpressionPtr source,
                         BindExpressionParameters(plan->source_expr(), args));
  EXPDB_ASSIGN_OR_RETURN(
      ExpressionPtr planned,
      BindExpressionParameters(plan->planned_expr(), args));
  return std::make_shared<const PhysicalPlan>(
      std::move(root), plan->node_count(), std::move(source),
      std::move(planned), plan->rewrites(), plan->options());
}

// --- tier 1: statement/plan cache ------------------------------------------

std::optional<PreparedPlan> StatementCache::Lookup(
    const std::string& fingerprint) {
  std::lock_guard<std::mutex> guard(mu_);
  auto it = entries_.find(fingerprint);
  if (it == entries_.end()) {
    ++misses_;
    return std::nullopt;
  }
  lru_.splice(lru_.begin(), lru_, it->second.lru_it);
  ++hits_;
  PlanCacheHits()->Increment();
  return it->second.plan;
}

void StatementCache::Insert(const std::string& fingerprint,
                            PreparedPlan plan) {
  if (capacity_ == 0) return;
  std::lock_guard<std::mutex> guard(mu_);
  auto it = entries_.find(fingerprint);
  if (it != entries_.end()) {
    it->second.plan = std::move(plan);
    lru_.splice(lru_.begin(), lru_, it->second.lru_it);
    return;
  }
  while (entries_.size() >= capacity_) {
    entries_.erase(lru_.back());
    lru_.pop_back();
  }
  lru_.push_front(fingerprint);
  entries_.emplace(fingerprint, Entry{std::move(plan), lru_.begin()});
}

void StatementCache::InvalidateBase(const std::string& name) {
  std::lock_guard<std::mutex> guard(mu_);
  for (auto it = entries_.begin(); it != entries_.end();) {
    const ExpressionPtr& expr = it->second.plan.plan->planned_expr();
    if (expr != nullptr && expr->BaseRelationNames().count(name) > 0) {
      lru_.erase(it->second.lru_it);
      it = entries_.erase(it);
    } else {
      ++it;
    }
  }
}

void StatementCache::Clear() {
  std::lock_guard<std::mutex> guard(mu_);
  entries_.clear();
  lru_.clear();
}

// --- tier 2: expiration-stamped result cache --------------------------------

std::string ResultCacheKey(const std::string& fingerprint,
                           const std::vector<Value>& args) {
  std::string key = fingerprint;
  for (const Value& v : args) {
    key += '\x1f';
    switch (v.type()) {
      case ValueType::kNull:
        key += "n";
        break;
      case ValueType::kInt64:
        key += "i" + v.ToString();
        break;
      case ValueType::kDouble:
        key += "d" + v.ToString();
        break;
      case ValueType::kString: {
        // Length-prefixed so payload bytes can never collide with the
        // delimiter or another argument's rendering.
        const std::string s = v.ToString();
        key += "s" + std::to_string(s.size()) + ":" + s;
        break;
      }
    }
  }
  return key;
}

size_t EstimateResultBytes(const Relation& relation) {
  // Fixed per-entry overhead (plan + cursors + map/list nodes) plus the
  // materialization: entry structs, inline values, string payloads, and
  // ~50% hash-index headroom on the entry storage.
  size_t bytes = 512 + sizeof(Relation);
  for (const Relation::Entry& e : relation.entries()) {
    size_t entry = sizeof(Relation::Entry) + e.tuple.arity() * sizeof(Value);
    for (const Value& v : e.tuple.values()) {
      if (v.is_string()) entry += v.ToString().size();
    }
    bytes += entry + entry / 2;
  }
  return bytes;
}

ResultCache::ResultCache() {
  obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
  hits_total_ = reg.GetCounter(
      "expdb_result_cache_hits_total",
      "Statements served from the expiration-stamped result cache");
  misses_total_ = reg.GetCounter("expdb_result_cache_misses_total",
                                 "Result-cache lookups that fell through to "
                                 "execution");
  patches_total_ = reg.GetCounter(
      "expdb_result_cache_patches_total",
      "Result-cache hits served after delta patching the entry");
  evictions_total_ = reg.GetCounter("expdb_result_cache_evictions_total",
                                    "Result-cache entries evicted by the "
                                    "LRU byte budget");
  bytes_gauge_.SetParent(reg.GetGauge(
      "expdb_result_cache_bytes", "Estimated bytes held by result caches"));
  lookup_latency_ = reg.GetHistogram("expdb_result_cache_lookup_latency_ns",
                                     "Result-cache lookup latency (ns)");
}

void ResultCache::set_max_bytes(size_t bytes) {
  std::lock_guard<std::mutex> guard(mu_);
  max_bytes_ = bytes;
  if (max_bytes_ == 0) {
    entries_.clear();
    lru_.clear();
    bytes_ = 0;
    bytes_gauge_.Set(0);
    return;
  }
  if (bytes_ > max_bytes_) EvictFor(0, nullptr);
}

void ResultCache::EraseEntry(EntryMap::iterator it) {
  bytes_ -= it->second.bytes;
  bytes_gauge_.Set(static_cast<int64_t>(bytes_));
  lru_.erase(it->second.lru_it);
  entries_.erase(it);
}

void ResultCache::EvictFor(size_t need, const std::string* keep) {
  while (bytes_ + need > max_bytes_ && !lru_.empty()) {
    std::string victim = lru_.back();
    if (keep != nullptr && victim == *keep) {
      // The protected entry is the LRU tail; nothing older to evict.
      if (lru_.size() == 1) return;
      // Rotate it to the front so older-than-it entries can go.
      auto it = entries_.find(victim);
      Touch(&it->second);
      continue;
    }
    auto it = entries_.find(victim);
    ++evictions_;
    evictions_total_->Increment();
    LogCacheEvent("cache_evict",
                  {{"entry_bytes", std::to_string(it->second.bytes)},
                   {"cache_bytes", std::to_string(bytes_)},
                   {"budget", std::to_string(max_bytes_)}});
    EraseEntry(it);
  }
}

void ResultCache::Touch(Entry* entry) {
  lru_.splice(lru_.begin(), lru_, entry->lru_it);
}

void ResultCache::CountMiss() {
  ++misses_;
  misses_total_->Increment();
}

std::optional<MaterializedResult> ResultCache::Lookup(const std::string& key,
                                                      const Database& db,
                                                      Timestamp now) {
  obs::ScopedSpan span("sql.result_cache.lookup", lookup_latency_);
  std::lock_guard<std::mutex> guard(mu_);
  auto it = entries_.find(key);
  if (it == entries_.end()) {
    CountMiss();
    return std::nullopt;
  }
  Entry& e = it->second;
  // Lapsed materialization: Theorem 2's identity window is over, and the
  // propagator's cached analyses lapse with it.
  if (!(now < e.result.texp)) {
    EraseEntry(it);
    CountMiss();
    return std::nullopt;
  }
  std::vector<BaseDelta> deltas;
  bool drifted = false;
  for (auto& [name, cursor] : e.bases) {
    auto rel = db.GetRelation(name);
    if (!rel.ok()) {
      EraseEntry(it);
      CountMiss();
      return std::nullopt;
    }
    const Relation* base = rel.value();
    // Instance churn = a different body of data under the name; an epoch
    // bump with a broken/trimmed history (Clear(), ring overflow) shows
    // up as DeltasSince -> nullopt below. Either way: never serve stale.
    if (base->delta_instance_id() == 0 ||
        base->delta_instance_id() != cursor.instance_id) {
      EraseEntry(it);
      CountMiss();
      return std::nullopt;
    }
    if (base->delta_epoch() == cursor.epoch) continue;
    drifted = true;
    if (e.propagator == nullptr) {
      EraseEntry(it);
      CountMiss();
      return std::nullopt;
    }
    auto batches = base->DeltasSince(cursor.epoch);
    if (!batches.has_value()) {
      EraseEntry(it);
      CountMiss();
      return std::nullopt;
    }
    deltas.push_back({name, std::move(*batches)});
  }
  if (drifted) {
    auto applied = e.propagator->Apply(deltas, now);
    if (!applied.ok()) {
      EraseEntry(it);
      CountMiss();
      return std::nullopt;
    }
    DeltaPropagator::ApplyOps(applied.value().root_ops, &e.result.relation);
    e.result.texp = applied.value().texp;
    e.result.materialized_at = now;
    e.result.validity = IntervalSet(now, e.result.texp);
    if (!(now < e.result.texp)) {
      EraseEntry(it);
      CountMiss();
      return std::nullopt;
    }
    for (auto& [name, cursor] : e.bases) {
      auto rel = db.GetRelation(name);
      if (rel.ok()) cursor = rel.value()->delta_cursor();
    }
    const size_t new_bytes = EstimateResultBytes(e.result.relation);
    bytes_ += new_bytes - e.bytes;
    e.bytes = new_bytes;
    bytes_gauge_.Set(static_cast<int64_t>(bytes_));
    ++patches_;
    patches_total_->Increment();
    LogCacheEvent("cache_patch",
                  {{"ops", std::to_string(applied.value().ops_out)},
                   {"texp", e.result.texp.ToString()}});
    if (bytes_ > max_bytes_) EvictFor(0, &key);
    // The patch may have evicted this very entry when it no longer fits.
    it = entries_.find(key);
    if (it == entries_.end()) {
      CountMiss();
      return std::nullopt;
    }
  }
  Touch(&it->second);
  ++hits_;
  hits_total_->Increment();
  return it->second.result;
}

void ResultCache::Insert(const std::string& key, PhysicalPlanPtr plan,
                         const NodeCapture* capture, MaterializedResult result,
                         const Database& db, Timestamp now) {
  if (plan == nullptr) return;
  // A lapsed (or immediately lapsing) materialization can never satisfy a
  // future `now < texp` check.
  if (!(now < result.texp)) return;
  std::lock_guard<std::mutex> guard(mu_);
  if (max_bytes_ == 0) return;
  std::vector<std::pair<std::string, Relation::DeltaCursor>> bases;
  for (const std::string& name : plan->planned_expr()->BaseRelationNames()) {
    auto rel = db.GetRelation(name);
    if (!rel.ok()) return;
    // Without tracking the cursors would never move and the cache would
    // serve stale data after the first INSERT/DELETE; enabling is
    // idempotent and metadata-only (allowed through const access).
    rel.value()->EnableDeltaTracking();
    bases.emplace_back(name, rel.value()->delta_cursor());
  }
  const size_t bytes = EstimateResultBytes(result.relation);
  if (bytes > max_bytes_) return;
  auto existing = entries_.find(key);
  if (existing != entries_.end()) EraseEntry(existing);
  EvictFor(bytes, nullptr);
  std::unique_ptr<DeltaPropagator> propagator;
  if (capture != nullptr) {
    propagator =
        DeltaPropagator::Create(plan, *capture, plan->options().eval);
  }
  lru_.push_front(key);
  Entry e;
  e.plan = std::move(plan);
  e.result = std::move(result);
  e.bases = std::move(bases);
  e.propagator = std::move(propagator);
  e.bytes = bytes;
  e.lru_it = lru_.begin();
  entries_.emplace(key, std::move(e));
  bytes_ += bytes;
  bytes_gauge_.Set(static_cast<int64_t>(bytes_));
}

void ResultCache::InvalidateBase(const std::string& name) {
  std::lock_guard<std::mutex> guard(mu_);
  for (auto it = entries_.begin(); it != entries_.end();) {
    bool reads = false;
    for (const auto& [base, cursor] : it->second.bases) {
      if (base == name) {
        reads = true;
        break;
      }
    }
    if (reads) {
      auto victim = it++;
      EraseEntry(victim);
    } else {
      ++it;
    }
  }
}

void ResultCache::Clear() {
  std::lock_guard<std::mutex> guard(mu_);
  entries_.clear();
  lru_.clear();
  bytes_ = 0;
  bytes_gauge_.Set(0);
}

ResultCache::Stats ResultCache::stats() const {
  std::lock_guard<std::mutex> guard(mu_);
  Stats s;
  s.hits = hits_;
  s.misses = misses_;
  s.patches = patches_;
  s.evictions = evictions_;
  s.entries = entries_.size();
  s.bytes = bytes_;
  s.max_bytes = max_bytes_;
  return s;
}

size_t ResultCache::CountStaleAt(Timestamp now) const {
  std::lock_guard<std::mutex> guard(mu_);
  size_t stale = 0;
  for (const auto& [key, entry] : entries_) {
    if (entry.result.texp <= now) ++stale;
  }
  return stale;
}

}  // namespace plan
}  // namespace expdb
