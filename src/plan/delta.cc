#include "plan/delta.h"

#include <algorithm>
#include <optional>
#include <utility>

#include "core/aggregate.h"
#include "core/join_key_index.h"
#include "core/predicate.h"

namespace expdb {
namespace plan {
namespace {

std::optional<Timestamp> MaxOpt(std::optional<Timestamp> a,
                                std::optional<Timestamp> b) {
  if (!a) return b;
  if (!b) return a;
  return Timestamp::Max(*a, *b);
}

/// Emits the canonical op sequence turning an output entry for `t` from
/// texp `before` into texp `after` (nullopt = absent). No-change emits
/// nothing; a texp change is delete(old) then insert(new).
void EmitChange(const Tuple& t, std::optional<Timestamp> before,
                std::optional<Timestamp> after, DeltaOps* out) {
  if (before == after) return;
  if (before.has_value()) out->push_back({true, {t, *before}});
  if (after.has_value()) out->push_back({false, {t, *after}});
}

void RemoveFromBucket(std::vector<Relation::Entry>* bucket, const Tuple& t) {
  for (auto it = bucket->begin(); it != bucket->end(); ++it) {
    if (it->tuple == t) {
      bucket->erase(it);
      return;
    }
  }
}

void UpsertBucket(std::vector<Relation::Entry>* bucket, const Tuple& t,
                  Timestamp texp) {
  for (auto& e : *bucket) {
    if (e.tuple == t) {
      e.texp = texp;
      return;
    }
  }
  bucket->push_back({t, texp});
}

/// The captured output of `child`, or an empty relation when the child
/// never executed (const-false, or under a pruned ancestor).
Relation ChildRelation(const PlanNode& child, const NodeCapture& capture) {
  auto it = capture.nodes.find(child.id);
  if (it != capture.nodes.end()) return it->second.result.relation;
  return Relation(child.schema);
}

bool SubtreeSupportsDelta(const PlanNode& n, const EvalOptions& options) {
  if (n.const_false) return true;  // never executes
  if (!NodeSupportsDelta(n, options)) return false;
  if (n.left != nullptr && !SubtreeSupportsDelta(*n.left, options)) {
    return false;
  }
  if (n.right != nullptr && !SubtreeSupportsDelta(*n.right, options)) {
    return false;
  }
  return true;
}

}  // namespace

bool NodeSupportsDelta(const PlanNode& node, const EvalOptions& options) {
  // Schrödinger validity intervals are not maintained incrementally.
  if (options.compute_validity) return false;
  switch (node.op) {
    case PlanOp::kScan:
    case PlanOp::kFilter:
    case PlanOp::kProject:
    case PlanOp::kUnionMerge:
    case PlanOp::kHashIntersect:
    case PlanOp::kHashDifference:
      return true;
    case PlanOp::kHashAggregate:
      // Approximate aggregates track a drift bound that depends on the
      // whole history, not just the current partition.
      return options.aggregate_tolerance == 0.0;
    case PlanOp::kHashJoin:
    case PlanOp::kHashSemiJoin: {
      // Incremental joins need equality keys to bucket by; a keyless
      // (theta) join would degrade to per-op full scans.
      Relation build(node.right->schema);
      JoinKeyIndex index(build, node.expr->predicate(),
                         node.left->schema.arity());
      return index.has_keys();
    }
    case PlanOp::kCrossProduct:
    case PlanOp::kHashAntiJoin:
      return false;
  }
  return false;
}

bool PlanSupportsDelta(const PhysicalPlan& plan, const EvalOptions& options) {
  return SubtreeSupportsDelta(plan.root(), options);
}

/// Auxiliary incremental state of one plan node. Only the fields of the
/// node's operator are populated.
struct DeltaPropagator::NodeState {
  // kProject: projected tuple -> multiset of source texps. The output
  // texp of a projected tuple is the max of its support.
  std::map<Tuple, std::multiset<Timestamp>> support;

  // Binary set operators: materialized child outputs (plain relations;
  // copies never inherit delta tracking).
  Relation left_mat;
  Relation right_mat;

  // kHashDifference: critical tuples (Table 2 case 3a),
  // tuple -> (appears_at = texp_S, expires_at = texp_R).
  std::map<Tuple, std::pair<Timestamp, Timestamp>> criticals;

  // kHashJoin / kHashSemiJoin: child entries bucketed by equality key.
  std::map<Tuple, std::vector<Relation::Entry>> left_buckets;
  std::map<Tuple, std::vector<Relation::Entry>> right_buckets;
  std::vector<size_t> left_cols;
  std::vector<size_t> right_cols;
  bool covered = false;  ///< key match already implies the predicate

  // kHashAggregate: group key -> members with their cached lifetime
  // analysis (valid while now < the result's texp — see Apply()).
  struct Group {
    std::map<Tuple, Timestamp> members;
    PartitionAnalysis analysis;
  };
  std::map<Tuple, Group> groups;
};

/// Per-Apply round context.
struct DeltaPropagator::Round {
  Timestamp now;
  const std::map<std::string, DeltaOps>* base_ops;
  /// Per-round memo of common-subtree outputs, keyed by cse_id: the
  /// primary occurrence (first in the executor's left-first DFS order)
  /// computes and owns the state, shadows reuse the ops.
  std::map<int32_t, PropOut> cse;
};

DeltaPropagator::DeltaPropagator(PhysicalPlanPtr plan, EvalOptions options)
    : plan_(std::move(plan)), options_(options) {}

DeltaPropagator::~DeltaPropagator() = default;

std::unique_ptr<DeltaPropagator> DeltaPropagator::Create(
    PhysicalPlanPtr plan, const NodeCapture& capture,
    const EvalOptions& options) {
  if (plan == nullptr) return nullptr;
  if (!PlanSupportsDelta(*plan, options)) return nullptr;
  std::unique_ptr<DeltaPropagator> p(
      new DeltaPropagator(std::move(plan), options));
  std::set<int32_t> seeded_cse;
  if (!p->Seed(p->plan_->root(), capture, /*under_pruned=*/false,
               &seeded_cse)) {
    return nullptr;
  }
  return p;
}

bool DeltaPropagator::Seed(const PlanNode& n, const NodeCapture& capture,
                           bool under_pruned, std::set<int32_t>* seeded_cse) {
  if (n.const_false) return true;  // never executes; no state
  auto it = capture.nodes.find(n.id);
  if (it != capture.nodes.end() && it->second.reused) {
    // CSE shadow occurrence: the primary (captured earlier in the same
    // left-first DFS the executor uses) owns the subtree's state.
    return n.cse_id >= 0 && seeded_cse->count(n.cse_id) > 0;
  }
  if (it == capture.nodes.end() && !under_pruned) {
    return false;  // incomplete capture: caller must recompute
  }
  const bool pruned_here =
      under_pruned || (it != capture.nodes.end() && it->second.pruned);
  if (n.left != nullptr &&
      !Seed(*n.left, capture, pruned_here, seeded_cse)) {
    return false;
  }
  if (n.right != nullptr &&
      !Seed(*n.right, capture, pruned_here, seeded_cse)) {
    return false;
  }

  switch (n.op) {
    case PlanOp::kScan:
    case PlanOp::kFilter:
      break;  // stateless
    case PlanOp::kProject: {
      auto state = std::make_unique<NodeState>();
      const Relation child = ChildRelation(*n.left, capture);
      const auto& proj = n.expr->projection();
      for (const auto& e : child.entries()) {
        state->support[e.tuple.Project(proj)].insert(e.texp);
      }
      state_[n.id] = std::move(state);
      break;
    }
    case PlanOp::kUnionMerge:
    case PlanOp::kHashIntersect: {
      auto state = std::make_unique<NodeState>();
      state->left_mat = ChildRelation(*n.left, capture);
      state->right_mat = ChildRelation(*n.right, capture);
      state_[n.id] = std::move(state);
      break;
    }
    case PlanOp::kHashDifference: {
      auto state = std::make_unique<NodeState>();
      state->left_mat = ChildRelation(*n.left, capture);
      state->right_mat = ChildRelation(*n.right, capture);
      for (const auto& e : state->left_mat.entries()) {
        const auto rt = state->right_mat.GetTexp(e.tuple);
        if (rt.has_value() && e.texp > *rt) {
          state->criticals[e.tuple] = {*rt, e.texp};
        }
      }
      state_[n.id] = std::move(state);
      break;
    }
    case PlanOp::kHashJoin:
    case PlanOp::kHashSemiJoin: {
      auto state = std::make_unique<NodeState>();
      {
        Relation build(n.right->schema);
        JoinKeyIndex index(build, n.expr->predicate(),
                           n.left->schema.arity());
        if (!index.has_keys()) return false;
        state->left_cols = index.left_cols();
        state->right_cols = index.right_cols();
        state->covered = index.predicate_covered();
      }
      const Relation left = ChildRelation(*n.left, capture);
      const Relation right = ChildRelation(*n.right, capture);
      for (const auto& e : left.entries()) {
        state->left_buckets[e.tuple.Project(state->left_cols)].push_back(e);
      }
      for (const auto& e : right.entries()) {
        state->right_buckets[e.tuple.Project(state->right_cols)].push_back(
            e);
      }
      state_[n.id] = std::move(state);
      break;
    }
    case PlanOp::kHashAggregate: {
      auto state = std::make_unique<NodeState>();
      const Relation child = ChildRelation(*n.left, capture);
      const auto& gb = n.expr->group_by();
      for (const auto& e : child.entries()) {
        state->groups[e.tuple.Project(gb)].members[e.tuple] = e.texp;
      }
      for (auto& [key, group] : state->groups) {
        std::vector<PartitionEntry> partition;
        partition.reserve(group.members.size());
        for (auto mit = group.members.begin(); mit != group.members.end();
             ++mit) {
          partition.push_back({&mit->first, mit->second});
        }
        auto analysis = AnalyzePartition(partition, n.expr->aggregate(),
                                         options_.aggregate_mode);
        if (!analysis.ok()) return false;
        group.analysis = std::move(analysis).value();
      }
      state_[n.id] = std::move(state);
      break;
    }
    case PlanOp::kCrossProduct:
    case PlanOp::kHashAntiJoin:
      return false;  // PlanSupportsDelta already rejected these
  }

  if (n.cse_id >= 0) seeded_cse->insert(n.cse_id);
  return true;
}

Result<DeltaPropagator::PropOut> DeltaPropagator::Propagate(const PlanNode& n,
                                                            Round* round) {
  if (n.const_false) return PropOut{};  // empty forever: no ops, texp = ∞
  if (n.cse_id >= 0) {
    auto it = round->cse.find(n.cse_id);
    if (it != round->cse.end()) return it->second;
  }

  PropOut out;
  switch (n.op) {
    case PlanOp::kScan: {
      auto it = round->base_ops->find(n.expr->relation_name());
      if (it != round->base_ops->end()) {
        for (const auto& op : it->second) {
          // Inserts already expired at `now` would be invisible to every
          // expτ reader downstream; deletes always pass (the tuple may
          // have been live when captured).
          if (!op.is_delete && op.entry.texp <= round->now) continue;
          out.ops.push_back(op);
        }
      }
      break;  // scans are monotonic: texp stays ∞
    }
    case PlanOp::kFilter: {
      EXPDB_ASSIGN_OR_RETURN(PropOut child, Propagate(*n.left, round));
      const Predicate& p = n.expr->predicate();
      for (const auto& op : child.ops) {
        if (p.Evaluate(op.entry.tuple)) out.ops.push_back(op);
      }
      out.texp = child.texp;
      break;
    }
    case PlanOp::kProject: {
      EXPDB_ASSIGN_OR_RETURN(PropOut child, Propagate(*n.left, round));
      auto sit = state_.find(n.id);
      if (sit == state_.end()) {
        return Status::Internal("delta: missing project state");
      }
      NodeState& s = *sit->second;
      const auto& proj = n.expr->projection();
      for (const auto& op : child.ops) {
        Tuple key = op.entry.tuple.Project(proj);
        auto& support = s.support[key];
        const std::optional<Timestamp> before =
            support.empty() ? std::nullopt
                            : std::optional<Timestamp>(*support.rbegin());
        if (op.is_delete) {
          auto mit = support.find(op.entry.texp);
          if (mit != support.end()) support.erase(mit);
        } else {
          support.insert(op.entry.texp);
        }
        const std::optional<Timestamp> after =
            support.empty() ? std::nullopt
                            : std::optional<Timestamp>(*support.rbegin());
        if (support.empty()) s.support.erase(key);
        EmitChange(key, before, after, &out.ops);
      }
      out.texp = child.texp;
      break;
    }
    case PlanOp::kUnionMerge:
    case PlanOp::kHashIntersect: {
      EXPDB_ASSIGN_OR_RETURN(PropOut left, Propagate(*n.left, round));
      EXPDB_ASSIGN_OR_RETURN(PropOut right, Propagate(*n.right, round));
      auto sit = state_.find(n.id);
      if (sit == state_.end()) {
        return Status::Internal("delta: missing set-op state");
      }
      NodeState& s = *sit->second;
      const bool is_union = n.op == PlanOp::kUnionMerge;
      const auto compose = [&](const Tuple& t) -> std::optional<Timestamp> {
        const auto lt = s.left_mat.GetTexp(t);
        const auto rt = s.right_mat.GetTexp(t);
        if (is_union) return MaxOpt(lt, rt);
        if (lt.has_value() && rt.has_value()) {
          return Timestamp::Min(*lt, *rt);
        }
        return std::nullopt;
      };
      const auto process = [&](const DeltaOps& ops, Relation* mine) {
        for (const auto& op : ops) {
          const Tuple& t = op.entry.tuple;
          const auto before = compose(t);
          if (op.is_delete) {
            mine->Erase(t);
          } else {
            mine->InsertUnchecked(t, op.entry.texp);
          }
          EmitChange(t, before, compose(t), &out.ops);
        }
      };
      process(left.ops, &s.left_mat);
      process(right.ops, &s.right_mat);
      out.texp = Timestamp::Min(left.texp, right.texp);
      break;
    }
    case PlanOp::kHashDifference: {
      EXPDB_ASSIGN_OR_RETURN(PropOut left, Propagate(*n.left, round));
      EXPDB_ASSIGN_OR_RETURN(PropOut right, Propagate(*n.right, round));
      auto sit = state_.find(n.id);
      if (sit == state_.end()) {
        return Status::Internal("delta: missing difference state");
      }
      NodeState& s = *sit->second;
      // Output texp of t is texp_R(t); t is suppressed while it is live
      // in S. A dead S entry no longer suppresses: the tuple has already
      // appeared (root patching replayed it; interior nodes are covered
      // by the now < texp precondition, which keeps criticals unfired).
      const auto compose = [&](const Tuple& t) -> std::optional<Timestamp> {
        const auto lt = s.left_mat.GetTexp(t);
        if (!lt.has_value()) return std::nullopt;
        const auto rt = s.right_mat.GetTexp(t);
        if (rt.has_value() && *rt > round->now) return std::nullopt;
        return lt;
      };
      const auto process = [&](const DeltaOps& ops, Relation* mine) {
        for (const auto& op : ops) {
          const Tuple& t = op.entry.tuple;
          const auto before = compose(t);
          if (op.is_delete) {
            mine->Erase(t);
          } else {
            mine->InsertUnchecked(t, op.entry.texp);
          }
          EmitChange(t, before, compose(t), &out.ops);
          // Maintain the critical set (Table 2 case 3a) for τ_R and the
          // Theorem 3 helper queue.
          const auto lt = s.left_mat.GetTexp(t);
          const auto rt = s.right_mat.GetTexp(t);
          if (lt.has_value() && rt.has_value() && *rt > round->now &&
              *lt > *rt) {
            s.criticals[t] = {*rt, *lt};
          } else {
            s.criticals.erase(t);
          }
        }
      };
      process(left.ops, &s.left_mat);
      process(right.ops, &s.right_mat);
      Timestamp tau_r = Timestamp::Infinity();
      for (const auto& [t, c] : s.criticals) {
        if (c.first > round->now) tau_r = Timestamp::Min(tau_r, c.first);
      }
      out.children_texp = Timestamp::Min(left.texp, right.texp);
      out.texp = Timestamp::Min(out.children_texp, tau_r);
      if (n.cse_id >= 0) round->cse[n.cse_id] = out;
      return out;
    }
    case PlanOp::kHashJoin: {
      EXPDB_ASSIGN_OR_RETURN(PropOut left, Propagate(*n.left, round));
      EXPDB_ASSIGN_OR_RETURN(PropOut right, Propagate(*n.right, round));
      auto sit = state_.find(n.id);
      if (sit == state_.end()) {
        return Status::Internal("delta: missing join state");
      }
      NodeState& s = *sit->second;
      const Predicate& p = n.expr->predicate();
      // ΔL against R_old, then ΔR against L_new: the standard incremental
      // join decomposition Δ(L ⋈ R) = ΔL ⋈ R ∪ L' ⋈ ΔR.
      for (const auto& op : left.ops) {
        const Tuple& t = op.entry.tuple;
        Tuple key = t.Project(s.left_cols);
        auto& bucket = s.left_buckets[key];
        if (op.is_delete) {
          RemoveFromBucket(&bucket, t);
          if (bucket.empty()) s.left_buckets.erase(key);
        } else {
          UpsertBucket(&bucket, t, op.entry.texp);
        }
        auto rb = s.right_buckets.find(key);
        if (rb == s.right_buckets.end()) continue;
        for (const auto& re : rb->second) {
          if (re.texp <= round->now) continue;  // pair already invisible
          Tuple joined = t.Concat(re.tuple);
          if (!s.covered && !p.Evaluate(joined)) continue;
          out.ops.push_back(
              {op.is_delete,
               {std::move(joined), Timestamp::Min(op.entry.texp, re.texp)}});
        }
      }
      for (const auto& op : right.ops) {
        const Tuple& t = op.entry.tuple;
        Tuple key = t.Project(s.right_cols);
        auto& bucket = s.right_buckets[key];
        if (op.is_delete) {
          RemoveFromBucket(&bucket, t);
          if (bucket.empty()) s.right_buckets.erase(key);
        } else {
          UpsertBucket(&bucket, t, op.entry.texp);
        }
        auto lb = s.left_buckets.find(key);
        if (lb == s.left_buckets.end()) continue;
        for (const auto& le : lb->second) {
          if (le.texp <= round->now) continue;
          Tuple joined = le.tuple.Concat(t);
          if (!s.covered && !p.Evaluate(joined)) continue;
          out.ops.push_back(
              {op.is_delete,
               {std::move(joined), Timestamp::Min(le.texp, op.entry.texp)}});
        }
      }
      out.texp = Timestamp::Min(left.texp, right.texp);
      break;
    }
    case PlanOp::kHashSemiJoin: {
      EXPDB_ASSIGN_OR_RETURN(PropOut left, Propagate(*n.left, round));
      EXPDB_ASSIGN_OR_RETURN(PropOut right, Propagate(*n.right, round));
      auto sit = state_.find(n.id);
      if (sit == state_.end()) {
        return Status::Internal("delta: missing semi-join state");
      }
      NodeState& s = *sit->second;
      const Predicate& p = n.expr->predicate();
      // Max texp over right entries matching `lt` under the predicate —
      // dead-inclusive, for consistency with the seeded outputs (a dead
      // max only produces dead, invisible outputs).
      const auto match_max =
          [&](const Tuple& lt) -> std::optional<Timestamp> {
        auto rb = s.right_buckets.find(lt.Project(s.left_cols));
        if (rb == s.right_buckets.end()) return std::nullopt;
        std::optional<Timestamp> m;
        for (const auto& re : rb->second) {
          if (!s.covered && !p.Evaluate(lt.Concat(re.tuple))) continue;
          m = MaxOpt(m, re.texp);
        }
        return m;
      };
      for (const auto& op : left.ops) {
        const Tuple& t = op.entry.tuple;
        Tuple key = t.Project(s.left_cols);
        auto& bucket = s.left_buckets[key];
        if (op.is_delete) {
          RemoveFromBucket(&bucket, t);
          if (bucket.empty()) s.left_buckets.erase(key);
        } else {
          UpsertBucket(&bucket, t, op.entry.texp);
        }
        const auto m = match_max(t);
        if (m.has_value()) {
          out.ops.push_back(
              {op.is_delete, {t, Timestamp::Min(op.entry.texp, *m)}});
        }
      }
      for (const auto& op : right.ops) {
        const Tuple& t = op.entry.tuple;
        const Timestamp y = op.entry.texp;
        Tuple key = t.Project(s.right_cols);
        if (op.is_delete) {
          auto& bucket = s.right_buckets[key];
          RemoveFromBucket(&bucket, t);
          if (bucket.empty()) s.right_buckets.erase(key);
        }
        auto lb = s.left_buckets.find(key);
        if (lb != s.left_buckets.end()) {
          for (const auto& le : lb->second) {
            if (!s.covered && !p.Evaluate(le.tuple.Concat(t))) continue;
            if (op.is_delete) {
              // Old max was over the bucket still containing t.
              const auto m_new = match_max(le.tuple);
              const auto m_old = MaxOpt(m_new, y);
              EmitChange(le.tuple, Timestamp::Min(le.texp, *m_old),
                         m_new.has_value()
                             ? std::optional<Timestamp>(
                                   Timestamp::Min(le.texp, *m_new))
                             : std::nullopt,
                         &out.ops);
            } else {
              const auto m_old = match_max(le.tuple);  // without t
              const auto m_new = MaxOpt(m_old, y);
              EmitChange(le.tuple,
                         m_old.has_value()
                             ? std::optional<Timestamp>(
                                   Timestamp::Min(le.texp, *m_old))
                             : std::nullopt,
                         Timestamp::Min(le.texp, *m_new), &out.ops);
            }
          }
        }
        if (!op.is_delete) UpsertBucket(&s.right_buckets[key], t, y);
      }
      out.texp = Timestamp::Min(left.texp, right.texp);
      break;
    }
    case PlanOp::kHashAggregate: {
      EXPDB_ASSIGN_OR_RETURN(PropOut child, Propagate(*n.left, round));
      auto sit = state_.find(n.id);
      if (sit == state_.end()) {
        return Status::Internal("delta: missing aggregate state");
      }
      NodeState& s = *sit->second;
      const auto& gb = n.expr->group_by();
      const AggregateFunction& f = n.expr->aggregate();
      // Bucket the child ops by group key, preserving order per group.
      std::map<Tuple, DeltaOps> by_group;
      for (const auto& op : child.ops) {
        by_group[op.entry.tuple.Project(gb)].push_back(op);
      }
      for (auto& [key, group_ops] : by_group) {
        auto git = s.groups.find(key);
        const bool had = git != s.groups.end();
        std::map<Tuple, Timestamp> members =
            had ? git->second.members : std::map<Tuple, Timestamp>{};
        const std::map<Tuple, Timestamp> old_members = members;
        const PartitionAnalysis old_analysis =
            had ? git->second.analysis : PartitionAnalysis{};
        for (const auto& op : group_ops) {
          if (op.is_delete) {
            members.erase(op.entry.tuple);
          } else {
            members[op.entry.tuple] = op.entry.texp;
          }
        }
        std::vector<PartitionEntry> live;
        for (auto mit = members.begin(); mit != members.end(); ++mit) {
          if (mit->second > round->now) {
            live.push_back({&mit->first, mit->second});
          }
        }
        if (live.empty()) {
          // The group died: retract every previously-emitted output.
          if (had) {
            for (const auto& [t, x] : old_members) {
              out.ops.push_back(
                  {true,
                   {t.Append(old_analysis.value),
                    Timestamp::Min(x, old_analysis.change_cap)}});
            }
            s.groups.erase(git);
          }
          continue;
        }
        EXPDB_ASSIGN_OR_RETURN(
            PartitionAnalysis analysis,
            AnalyzePartition(live, f, options_.aggregate_mode));
        if (had && analysis.value == old_analysis.value &&
            analysis.change_cap == old_analysis.change_cap) {
          // Fast path: the partition's value and cap are unchanged, so
          // only the touched members' outputs move.
          for (const auto& op : group_ops) {
            out.ops.push_back(
                {op.is_delete,
                 {op.entry.tuple.Append(analysis.value),
                  Timestamp::Min(op.entry.texp, analysis.change_cap)}});
          }
          git->second.members = std::move(members);
          git->second.analysis = analysis;
        } else {
          // Full per-group replay: retract all old outputs, emit all new
          // ones, and prune the membership to the live set.
          if (had) {
            for (const auto& [t, x] : old_members) {
              out.ops.push_back(
                  {true,
                   {t.Append(old_analysis.value),
                    Timestamp::Min(x, old_analysis.change_cap)}});
            }
          }
          std::map<Tuple, Timestamp> pruned;
          for (const auto& e : live) {
            pruned[*e.tuple] = e.texp;
            out.ops.push_back(
                {false,
                 {e.tuple->Append(analysis.value),
                  Timestamp::Min(e.texp, analysis.change_cap)}});
          }
          NodeState::Group& g = s.groups[key];
          g.members = std::move(pruned);
          g.analysis = analysis;
        }
      }
      Timestamp caps = Timestamp::Infinity();
      for (const auto& [key, g] : s.groups) {
        if (g.analysis.invalidates_expression) {
          caps = Timestamp::Min(caps, g.analysis.change_cap);
        }
      }
      out.texp = Timestamp::Min(child.texp, caps);
      break;
    }
    case PlanOp::kCrossProduct:
    case PlanOp::kHashAntiJoin:
      return Status::Internal("delta: unsupported operator reached");
  }

  out.children_texp = out.texp;
  if (n.cse_id >= 0) round->cse[n.cse_id] = out;
  return out;
}

Result<DeltaPropagator::ApplyResult> DeltaPropagator::Apply(
    const std::vector<BaseDelta>& deltas, Timestamp now) {
  std::map<std::string, DeltaOps> base_ops;
  size_t ops_in = 0;
  for (const auto& base : deltas) {
    DeltaOps& ops = base_ops[base.relation];
    for (const auto& batch : base.batches) {
      // Within a batch the delete precedes the insert (a texp change is
      // delete-old-then-insert-new).
      for (const auto& e : batch.deleted) ops.push_back({true, e});
      for (const auto& e : batch.inserted) ops.push_back({false, e});
      ops_in += batch.deleted.size() + batch.inserted.size();
    }
  }

  Round round{now, &base_ops, {}};
  EXPDB_ASSIGN_OR_RETURN(PropOut root, Propagate(plan_->root(), &round));

  ApplyResult result;
  result.root_ops = std::move(root.ops);
  result.texp = root.texp;
  result.children_texp = root.children_texp;
  result.ops_in = ops_in;
  result.ops_out = result.root_ops.size();
  const PlanNode& root_node = plan_->root();
  if (root_node.op == PlanOp::kHashDifference && !root_node.const_false) {
    result.root_is_difference = true;
    auto sit = state_.find(root_node.id);
    if (sit == state_.end()) {
      return Status::Internal("delta: missing root difference state");
    }
    for (const auto& [t, c] : sit->second->criticals) {
      if (c.first > now) result.helper.push_back({t, c.first, c.second});
    }
    std::sort(result.helper.begin(), result.helper.end(),
              [](const DifferencePatchEntry& a,
                 const DifferencePatchEntry& b) {
                if (a.appears_at != b.appears_at) {
                  return a.appears_at < b.appears_at;
                }
                return a.tuple < b.tuple;
              });
  }
  return result;
}

void DeltaPropagator::ApplyOps(const DeltaOps& ops, Relation* mat) {
  for (const auto& op : ops) {
    if (op.is_delete) {
      mat->Erase(op.entry.tuple);
    } else {
      mat->InsertUnchecked(op.entry.tuple, op.entry.texp);
    }
  }
}

}  // namespace plan
}  // namespace expdb
