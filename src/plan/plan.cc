#include "plan/plan.h"

#include <cmath>
#include <cstdio>

#include "plan/delta.h"

namespace expdb {
namespace plan {

std::string_view PlanOpName(PlanOp op) {
  switch (op) {
    case PlanOp::kScan:
      return "Scan";
    case PlanOp::kFilter:
      return "Filter";
    case PlanOp::kProject:
      return "Project";
    case PlanOp::kCrossProduct:
      return "CrossProduct";
    case PlanOp::kUnionMerge:
      return "Union";
    case PlanOp::kHashJoin:
      return "HashJoin";
    case PlanOp::kHashIntersect:
      return "HashIntersect";
    case PlanOp::kHashDifference:
      return "HashDifference";
    case PlanOp::kHashAggregate:
      return "HashAggregate";
    case PlanOp::kHashSemiJoin:
      return "HashSemiJoin";
    case PlanOp::kHashAntiJoin:
      return "HashAntiJoin";
  }
  return "?";
}

PlanOp PlanOpForKind(ExprKind kind) {
  switch (kind) {
    case ExprKind::kBase:
      return PlanOp::kScan;
    case ExprKind::kSelect:
      return PlanOp::kFilter;
    case ExprKind::kProject:
      return PlanOp::kProject;
    case ExprKind::kProduct:
      return PlanOp::kCrossProduct;
    case ExprKind::kUnion:
      return PlanOp::kUnionMerge;
    case ExprKind::kJoin:
      return PlanOp::kHashJoin;
    case ExprKind::kIntersect:
      return PlanOp::kHashIntersect;
    case ExprKind::kDifference:
      return PlanOp::kHashDifference;
    case ExprKind::kAggregate:
      return PlanOp::kHashAggregate;
    case ExprKind::kSemiJoin:
      return PlanOp::kHashSemiJoin;
    case ExprKind::kAntiJoin:
      return PlanOp::kHashAntiJoin;
  }
  return PlanOp::kScan;
}

namespace {

std::string FormatDurationNs(int64_t ns) {
  char buf[32];
  if (ns >= 1'000'000'000) {
    std::snprintf(buf, sizeof(buf), "%.2fs", ns / 1e9);
  } else if (ns >= 1'000'000) {
    std::snprintf(buf, sizeof(buf), "%.2fms", ns / 1e6);
  } else if (ns >= 1'000) {
    std::snprintf(buf, sizeof(buf), "%.1fus", ns / 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%lldns", static_cast<long long>(ns));
  }
  return buf;
}

std::string FormatEstRows(double est) {
  return std::to_string(static_cast<long long>(std::llround(est)));
}

/// 1-based attribute list "$2,$1" (matching the predicate operand syntax).
std::string FormatAttrs(const std::vector<size_t>& attrs) {
  std::string out;
  for (size_t i = 0; i < attrs.size(); ++i) {
    if (i > 0) out += ",";
    out += "$" + std::to_string(attrs[i] + 1);
  }
  return out;
}

void RenderNode(const PlanNode& n, const PlanProfile* profile,
                const EvalOptions& eval, size_t depth, std::string* out) {
  out->append(2 * depth, ' ');
  *out += "#" + std::to_string(n.id) + " ";
  *out += PlanOpName(n.op);
  *out += " [";
  switch (n.op) {
    case PlanOp::kScan:
      *out += n.expr->relation_name() + ", ";
      break;
    case PlanOp::kFilter:
    case PlanOp::kHashSemiJoin:
    case PlanOp::kHashAntiJoin:
      *out += n.expr->predicate().ToString() + ", ";
      break;
    case PlanOp::kHashJoin:
      *out += n.expr->predicate().ToString() + ", build=";
      *out += n.build_left ? "left" : "right";
      *out += ", ";
      break;
    case PlanOp::kProject:
      *out += "cols=" + FormatAttrs(n.expr->projection()) + ", ";
      break;
    case PlanOp::kHashAggregate:
      *out += "group=" + FormatAttrs(n.expr->group_by()) + ", f=" +
              n.expr->aggregate().ToString() + ", ";
      break;
    case PlanOp::kCrossProduct:
    case PlanOp::kUnionMerge:
    case PlanOp::kHashIntersect:
    case PlanOp::kHashDifference:
      break;
  }
  *out += "est=" + FormatEstRows(n.est_rows);
  if (n.const_false) *out += ", const=false";
  if (n.cse_id >= 0) *out += ", cse=#" + std::to_string(n.cse_id);
  if (n.parallel) *out += ", parallel";
  *out += "]";
  if (!n.const_false && NodeSupportsDelta(n, eval)) *out += " [incremental]";
  if (profile != nullptr && n.id < profile->nodes.size()) {
    const PlanProfile::NodeStats& s = profile->at(n.id);
    *out += " (rows=" + std::to_string(s.rows) +
            ", time=" + FormatDurationNs(s.wall_ns) +
            ", calls=" + std::to_string(s.calls) + ")";
    if (s.pruned) *out += " [pruned]";
    if (s.reused) *out += " [reused]";
    // Partition-aware scans: how the segment bounds classified against τ.
    if (n.partition_aware &&
        s.segs_live + s.segs_checked + s.segs_pruned > 0) {
      *out += " [segments: " + std::to_string(s.segs_live) + "/" +
              std::to_string(s.segs_checked) + "/" +
              std::to_string(s.segs_pruned) + "]";
    }
  }
  *out += "\n";
  if (n.left != nullptr) RenderNode(*n.left, profile, eval, depth + 1, out);
  if (n.right != nullptr) {
    RenderNode(*n.right, profile, eval, depth + 1, out);
  }
}

}  // namespace

std::string PhysicalPlan::ToString(const PlanProfile* profile) const {
  std::string out = "PhysicalPlan nodes=" + std::to_string(node_count_);
  if (rewrites_.total() > 0) {
    out += " rewrites:";
    bool first = true;
    for (const auto& [rule, count] : rewrites_.rule_applications) {
      out += first ? " " : ", ";
      first = false;
      out += rule + "x" + std::to_string(count);
    }
  }
  if (profile != nullptr) {
    out += " total_time=" + FormatDurationNs(profile->total_ns);
  }
  out += "\n";
  RenderNode(*root_, profile, options_.eval, 0, &out);
  return out;
}

}  // namespace plan
}  // namespace expdb
