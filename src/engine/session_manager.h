// SessionManager: hands out concurrent sql::Sessions over one Engine.
//
// Header-only by design: the engine library cannot link against the sql
// library (sql already links engine), so this convenience layer lives
// entirely in the header and is compiled into whoever includes it.

#ifndef EXPDB_ENGINE_SESSION_MANAGER_H_
#define EXPDB_ENGINE_SESSION_MANAGER_H_

#include <algorithm>
#include <cstdint>
#include <memory>
#include <mutex>
#include <utility>
#include <vector>

#include "engine/engine.h"
#include "obs/metrics.h"
#include "sql/session.h"

namespace expdb {
namespace engine {

/// \brief Opens sessions that share one Engine. Sessions are handed out
/// as shared_ptrs and tracked weakly — a session dropped by its thread
/// simply disappears from the active count.
///
/// Thread-safety: all members may be called from any thread.
class SessionManager {
 public:
  explicit SessionManager(std::shared_ptr<Engine> engine)
      : engine_(std::move(engine)) {
    sessions_gauge_.SetParent(
        obs::MetricsRegistry::Global().GetGauge("expdb_engine_sessions"));
  }

  /// \brief Opens a new session bound to the shared engine.
  /// `options.expiration` is ignored — the engine already owns its
  /// database; eval/rewrite knobs stay per-session.
  std::shared_ptr<sql::Session> OpenSession(
      sql::Session::Options options = {}) {
    auto session = std::make_shared<sql::Session>(engine_, options);
    std::lock_guard<std::mutex> guard(mu_);
    sessions_.push_back(session);
    ++opened_;
    PruneLocked();
    return session;
  }

  /// \brief Sessions currently alive (weak entries pruned on the way).
  size_t active_sessions() {
    std::lock_guard<std::mutex> guard(mu_);
    PruneLocked();
    return sessions_.size();
  }

  uint64_t opened_total() const {
    std::lock_guard<std::mutex> guard(mu_);
    return opened_;
  }

  Engine& engine() { return *engine_; }
  const std::shared_ptr<Engine>& engine_ptr() const { return engine_; }

 private:
  void PruneLocked() {
    sessions_.erase(
        std::remove_if(sessions_.begin(), sessions_.end(),
                       [](const std::weak_ptr<sql::Session>& weak) {
                         return weak.expired();
                       }),
        sessions_.end());
    sessions_gauge_.Set(static_cast<int64_t>(sessions_.size()));
  }

  std::shared_ptr<Engine> engine_;
  mutable std::mutex mu_;
  std::vector<std::weak_ptr<sql::Session>> sessions_;
  uint64_t opened_ = 0;  // guarded by mu_
  obs::Gauge sessions_gauge_;
};

}  // namespace engine
}  // namespace expdb

#endif  // EXPDB_ENGINE_SESSION_MANAGER_H_
