#include "engine/engine.h"

#include <algorithm>
#include <utility>

#include "engine/maintenance.h"
#include "engine/telemetry.h"

namespace expdb {
namespace engine {

Engine::Engine(EngineOptions options)
    : expiration_(options.expiration), views_(&expiration_.db()) {
  obs::MetricsRegistry& r = obs::MetricsRegistry::Global();
  snapshots_.SetParent(r.GetCounter("expdb_engine_snapshots_total"));
  write_waits_.SetParent(r.GetCounter("expdb_engine_write_waits_total"));
  maintenance_ = std::make_unique<MaintenanceService>(
      this, options.maintenance_interval_ms);
  telemetry_ = std::make_unique<TelemetryService>(
      this, options.telemetry_interval_ms, options.telemetry_ring_capacity);
  if (options.start_maintenance) maintenance_->Start();
  if (options.start_telemetry) telemetry_->Start();
}

Engine::~Engine() {
  // Teardown order: first the HTTP endpoint (its handler routes into
  // telemetry_), then the sampler (it reads every component), then
  // maintenance. Members are declared in this order already, but join
  // the threads explicitly to be clear about intent.
  if (http_ != nullptr) http_->Stop();
  telemetry_->Stop();
  maintenance_->Stop();
}

Result<int> Engine::StartHttpEndpoint(int port) {
  std::lock_guard<std::mutex> guard(registry_mu_);
  if (http_ == nullptr) {
    http_ = std::make_unique<obs::HttpEndpoint>(
        [this](const obs::HttpRequest& request) {
          return telemetry_->HandleHttp(request);
        });
  }
  std::string error;
  const int bound = http_->Start(port, &error);
  if (bound < 0) {
    return Status::InvalidArgument("http endpoint: " + error);
  }
  return bound;
}

void Engine::StopHttpEndpoint() {
  std::lock_guard<std::mutex> guard(registry_mu_);
  if (http_ != nullptr) http_->Stop();
}

int Engine::http_port() const {
  std::lock_guard<std::mutex> guard(registry_mu_);
  return http_ != nullptr && http_->running() ? http_->port() : 0;
}

Engine::Snapshot Engine::OpenSnapshot(const std::set<std::string>& relations) {
  Snapshot snap;
  snap.engine_lock_ = std::shared_lock<std::shared_mutex>(engine_mu_);
  // std::set iterates in sorted order — every snapshot acquires relation
  // locks in the same global order, so snapshots can never deadlock each
  // other or a writer (writers take exactly one relation lock).
  snap.relation_locks_.reserve(relations.size());
  for (const std::string& name : relations) {
    snap.relation_locks_.emplace_back(db().relation_lock(name));
  }
  snap.epoch_ = db().epoch();
  snapshots_.Increment();
  return snap;
}

Engine::Snapshot Engine::OpenSnapshotAll() {
  // Two-phase: the engine shared lock freezes the *catalog* shape (DDL
  // is exclusive), so the name list read under it stays accurate while
  // the relation locks are collected.
  Snapshot snap;
  snap.engine_lock_ = std::shared_lock<std::shared_mutex>(engine_mu_);
  const std::vector<std::string> names = db().RelationNames();
  snap.relation_locks_.reserve(names.size());
  for (const std::string& name : names) {  // RelationNames() is sorted
    snap.relation_locks_.emplace_back(db().relation_lock(name));
  }
  snap.epoch_ = db().epoch();
  snapshots_.Increment();
  return snap;
}

Engine::WriteGuard Engine::LockWrite(const std::string& relation) {
  WriteGuard guard;
  guard.engine_lock_ = std::shared_lock<std::shared_mutex>(engine_mu_);
  std::shared_mutex& mu = db().relation_lock(relation);
  guard.relation_lock_ = std::unique_lock<std::shared_mutex>(mu, std::defer_lock);
  if (!guard.relation_lock_.try_lock()) {
    write_waits_.Increment();
    guard.relation_lock_.lock();
  }
  guard.db_ = WriteGuard::NullOnMove(&db());
  return guard;
}

Engine::ExclusiveGuard Engine::LockExclusive() {
  ExclusiveGuard guard;
  guard.engine_lock_ = std::unique_lock<std::shared_mutex>(engine_mu_);
  return guard;
}

bool Engine::PutPrepared(const std::string& name, plan::PreparedPlan plan) {
  std::lock_guard<std::mutex> guard(registry_mu_);
  const bool replaced = prepared_.count(name) > 0;
  prepared_[name] = std::move(plan);
  return replaced;
}

std::optional<plan::PreparedPlan> Engine::GetPrepared(
    const std::string& name) const {
  std::lock_guard<std::mutex> guard(registry_mu_);
  auto it = prepared_.find(name);
  if (it == prepared_.end()) return std::nullopt;
  return it->second;
}

size_t Engine::prepared_count() const {
  std::lock_guard<std::mutex> guard(registry_mu_);
  return prepared_.size();
}

void Engine::SetViewColumns(const std::string& view,
                            std::vector<std::string> names) {
  std::lock_guard<std::mutex> guard(registry_mu_);
  view_columns_[view] = std::move(names);
}

std::optional<std::vector<std::string>> Engine::GetViewColumns(
    const std::string& view) const {
  std::lock_guard<std::mutex> guard(registry_mu_);
  auto it = view_columns_.find(view);
  if (it == view_columns_.end()) return std::nullopt;
  return it->second;
}

void Engine::EraseViewColumns(const std::string& view) {
  std::lock_guard<std::mutex> guard(registry_mu_);
  view_columns_.erase(view);
}

void Engine::InvalidateCachesFor(const std::string& table) {
  stmt_cache_.InvalidateBase(table);
  result_cache_.InvalidateBase(table);
  std::lock_guard<std::mutex> guard(registry_mu_);
  for (auto it = prepared_.begin(); it != prepared_.end();) {
    if (it->second.plan->planned_expr()->BaseRelationNames().count(table) >
        0) {
      it = prepared_.erase(it);
    } else {
      ++it;
    }
  }
}

}  // namespace engine
}  // namespace expdb
