// Engine: the concurrent core of ExpDB (docs/CONCURRENCY.md).
//
// One Engine owns everything sessions used to own privately — the
// database (inside its ExpirationManager), the view catalog, the
// two-tier statement/result cache, the prepared-statement registry, and
// the background MaintenanceService — so many sql::Sessions can execute
// against one database concurrently.
//
// Concurrency scheme (epoch-versioned reader/writer locking):
//
//   readers   Snapshot        engine shared + per-relation shared locks
//                             (sorted), pinned to the catalog epoch
//   DML       WriteGuard      engine shared + one relation exclusive
//                             lock; bumps the epoch on release
//   DDL etc.  ExclusiveGuard  engine exclusive (CREATE/DROP, ADVANCE
//                             TIME, view reads, maintenance passes)
//
// Lock order: engine lock -> relation locks (sorted by name) ->
// component-internal leaf mutexes (ViewManager, caches, expiration
// index, prepared registry). Writers hold at most one relation lock, so
// the scheme is deadlock-free by construction.

#ifndef EXPDB_ENGINE_ENGINE_H_
#define EXPDB_ENGINE_ENGINE_H_

#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <set>
#include <shared_mutex>
#include <string>
#include <vector>

#include "common/result.h"
#include "expiration/constraint.h"
#include "expiration/expiration_queue.h"
#include "obs/http_endpoint.h"
#include "obs/metrics.h"
#include "plan/cache.h"
#include "view/view_manager.h"

namespace expdb {
namespace engine {

class MaintenanceService;
class TelemetryService;

/// \brief Engine construction knobs.
struct EngineOptions {
  ExpirationManagerOptions expiration;
  /// Background maintenance cadence (wall-clock milliseconds between
  /// passes once the service is started). SET maintenance_interval_ms.
  int64_t maintenance_interval_ms = 100;
  /// Start the MaintenanceService thread immediately. Off by default:
  /// single-threaded embedders (and most tests) never need the thread,
  /// and `MAINTENANCE RESUME` / SET maintenance_interval_ms start it on
  /// demand.
  bool start_maintenance = false;
  /// Telemetry sampling cadence (docs/OBSERVABILITY.md §9).
  /// SET telemetry_interval_ms.
  int64_t telemetry_interval_ms = 1000;
  /// Start the TelemetryService thread immediately. Off by default for
  /// the same reason as maintenance; SET telemetry_interval_ms (or
  /// Start() on the service) turns it on on demand.
  bool start_telemetry = false;
  /// Points retained per metric in the telemetry rings.
  size_t telemetry_ring_capacity = 256;
};

/// \brief Owns the shared database state and hands out the locks that
/// make concurrent sessions safe.
class Engine {
 public:
  explicit Engine(EngineOptions options = {});
  ~Engine();

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  Database& db() { return expiration_.db(); }
  const Database& db() const { return expiration_.db(); }
  ExpirationManager& expiration() { return expiration_; }
  ViewManager& views() { return views_; }
  ConstraintSet& constraints() { return constraints_; }
  plan::StatementCache& stmt_cache() { return stmt_cache_; }
  plan::ResultCache& result_cache() { return result_cache_; }
  MaintenanceService& maintenance() { return *maintenance_; }
  TelemetryService& telemetry() { return *telemetry_; }
  Timestamp Now() const { return expiration_.Now(); }

  // --- HTTP observability endpoint -------------------------------------

  /// \brief Starts the embedded observability HTTP server on
  /// 127.0.0.1:`port` (0 = kernel-assigned ephemeral port), routing
  /// /metrics, /healthz, /vars, and /timeseries through the telemetry
  /// service. \return the actually bound port. Idempotent while
  /// running: returns the current port. SQL surface: SET http_port.
  Result<int> StartHttpEndpoint(int port);

  /// \brief Stops the HTTP server (idempotent; no-op when never
  /// started).
  void StopHttpEndpoint();

  /// \brief The bound endpoint port, or 0 when the server is down.
  int http_port() const;

  // --- locking primitives ---------------------------------------------

  /// \brief A consistent read view: the engine's shared lock plus the
  /// shared locks of every named relation (acquired in sorted order),
  /// pinned to the catalog epoch observed at open. While a Snapshot is
  /// held no writer can mutate the covered relations and no exclusive
  /// operation (DDL, ADVANCE TIME, maintenance) can run at all.
  class Snapshot {
   public:
    Snapshot() = default;
    Snapshot(Snapshot&&) = default;
    Snapshot& operator=(Snapshot&&) = default;

    /// The catalog epoch observed under the locks. Two snapshots with
    /// equal epochs saw the identical database.
    uint64_t epoch() const { return epoch_; }

   private:
    friend class Engine;
    std::shared_lock<std::shared_mutex> engine_lock_;
    std::vector<std::shared_lock<std::shared_mutex>> relation_locks_;
    uint64_t epoch_ = 0;
  };

  /// \brief A DML write ticket: the engine's shared lock plus one
  /// relation's exclusive lock. Destroying the guard bumps the catalog
  /// epoch (the mutation, if any, is published to snapshot validators).
  class WriteGuard {
   public:
    WriteGuard() = default;
    WriteGuard(WriteGuard&&) = default;
    WriteGuard& operator=(WriteGuard&&) = default;
    ~WriteGuard() {
      if (db_.ptr != nullptr) db_.ptr->BumpEpoch();
    }

   private:
    friend class Engine;
    std::shared_lock<std::shared_mutex> engine_lock_;
    std::unique_lock<std::shared_mutex> relation_lock_;
    struct NullOnMove {
      Database* ptr = nullptr;
      NullOnMove() = default;
      explicit NullOnMove(Database* p) : ptr(p) {}
      NullOnMove(NullOnMove&& o) noexcept : ptr(o.ptr) { o.ptr = nullptr; }
      NullOnMove& operator=(NullOnMove&& o) noexcept {
        ptr = o.ptr;
        o.ptr = nullptr;
        return *this;
      }
      operator Database*() const { return ptr; }
    };
    NullOnMove db_;
  };

  /// \brief The engine's exclusive lock: total isolation. DDL, ADVANCE
  /// TIME, view reads/maintenance, and background passes run under it.
  class ExclusiveGuard {
   public:
    ExclusiveGuard() = default;
    ExclusiveGuard(ExclusiveGuard&&) = default;
    ExclusiveGuard& operator=(ExclusiveGuard&&) = default;

   private:
    friend class Engine;
    std::unique_lock<std::shared_mutex> engine_lock_;
  };

  /// \brief Opens a read snapshot over `relations` (names not in the
  /// catalog get a lock anyway — harmless, and it keeps a concurrent
  /// CREATE of that name out while the snapshot reads).
  Snapshot OpenSnapshot(const std::set<std::string>& relations);

  /// \brief Snapshot over every relation currently in the catalog.
  Snapshot OpenSnapshotAll();

  /// \brief Takes the write locks for one relation. Blocks behind
  /// readers/writers of the same relation; contended acquisitions count
  /// toward expdb_engine_write_waits_total.
  WriteGuard LockWrite(const std::string& relation);

  /// \brief Takes the engine exclusively.
  ExclusiveGuard LockExclusive();

  // --- prepared statements (shared across sessions) --------------------

  /// \brief Registers (or silently replaces) a named prepared statement.
  /// \return true when an existing statement was replaced.
  bool PutPrepared(const std::string& name, plan::PreparedPlan plan);

  /// \brief A copy of the named prepared statement (the plan itself is a
  /// shared immutable tree), or nullopt.
  std::optional<plan::PreparedPlan> GetPrepared(const std::string& name) const;

  size_t prepared_count() const;

  // --- view presentation metadata --------------------------------------

  void SetViewColumns(const std::string& view, std::vector<std::string> names);
  std::optional<std::vector<std::string>> GetViewColumns(
      const std::string& view) const;
  void EraseViewColumns(const std::string& view);

  /// \brief DDL on `table`: drops dependent entries from both cache
  /// tiers and every prepared statement reading it.
  void InvalidateCachesFor(const std::string& table);

  uint64_t snapshots_opened() const { return snapshots_.value(); }
  uint64_t write_waits() const { return write_waits_.value(); }

 private:
  ExpirationManager expiration_;
  ViewManager views_;
  ConstraintSet constraints_;
  plan::StatementCache stmt_cache_;
  plan::ResultCache result_cache_;

  /// The engine-wide reader/writer lock (see file header).
  std::shared_mutex engine_mu_;

  /// Guards prepared_ and view_columns_. Leaf lock.
  mutable std::mutex registry_mu_;
  std::map<std::string, plan::PreparedPlan> prepared_;
  std::map<std::string, std::vector<std::string>> view_columns_;

  // Instance counters parented into the process-wide expdb_engine_*
  // metrics.
  obs::Counter snapshots_;
  obs::Counter write_waits_;

  /// Constructed last (they capture `this`); destroyed in reverse
  /// order, stopping each background thread before any component it
  /// touches goes away. The HTTP endpoint routes into telemetry_, so it
  /// is declared after it (destroyed first).
  std::unique_ptr<MaintenanceService> maintenance_;
  std::unique_ptr<TelemetryService> telemetry_;
  std::unique_ptr<obs::HttpEndpoint> http_;
};

}  // namespace engine
}  // namespace expdb

#endif  // EXPDB_ENGINE_ENGINE_H_
