// MaintenanceService: the engine's background housekeeping thread.
//
// On a configurable wall-clock cadence it takes the engine exclusively
// and runs one maintenance pass: drain/compact the expiration state
// (under lazy removal this is what physically deletes expired tuples —
// queries stay correct meanwhile because every read filters through
// expτ) and refresh stale materialized views. The paper's lazy policy
// "provides more optimisation opportunities"; this service is the agent
// that cashes them in without any session calling RemoveExpired.

#ifndef EXPDB_ENGINE_MAINTENANCE_H_
#define EXPDB_ENGINE_MAINTENANCE_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>

#include "obs/metrics.h"

namespace expdb {
namespace engine {

class Engine;

/// \brief Background thread running periodic maintenance passes against
/// one Engine. SQL surface: MAINTENANCE STATUS|PAUSE|RESUME|RUN and
/// SET maintenance_interval_ms.
///
/// Thread-safety: every public member may be called from any thread.
/// The service never outlives its engine (the engine destroys it first).
class MaintenanceService {
 public:
  MaintenanceService(Engine* engine, int64_t interval_ms);
  ~MaintenanceService();

  MaintenanceService(const MaintenanceService&) = delete;
  MaintenanceService& operator=(const MaintenanceService&) = delete;

  /// \brief Starts the background thread (idempotent).
  void Start();

  /// \brief Stops and joins the background thread (idempotent).
  void Stop();

  /// \brief Keeps the thread alive but skips passes until Resume.
  void Pause();

  /// \brief Clears a pause; starts the thread if it never ran.
  void Resume();

  /// \brief Runs one maintenance pass synchronously on the calling
  /// thread (takes the engine exclusively; the caller must hold no
  /// engine locks). \return tuples physically removed by the pass.
  size_t RunOnce();

  /// \brief Sets the cadence and wakes the thread so the new interval
  /// takes effect immediately. Starts the thread if it never ran —
  /// configuring a cadence means asking for background maintenance.
  void set_interval_ms(int64_t ms);
  int64_t interval_ms() const;

  bool running() const;
  bool paused() const;
  uint64_t runs() const { return runs_.value(); }
  uint64_t tuples_removed() const { return removed_.value(); }

  /// \brief Steady-clock instant (SteadyNowNs) the last pass finished;
  /// 0 when no pass has ever run. The telemetry service derives the
  /// maintenance-lag gauge (and its health rule) from this.
  int64_t last_run_ns() const {
    return last_run_ns_.load(std::memory_order_relaxed);
  }

  /// \brief One-line human-readable status (MAINTENANCE STATUS).
  std::string StatusString() const;

 private:
  void Loop();

  Engine* engine_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::thread thread_;
  bool thread_running_ = false;  // guarded by mu_
  bool stop_ = false;            // guarded by mu_
  bool paused_ = false;          // guarded by mu_
  int64_t interval_ms_;          // guarded by mu_
  std::atomic<int64_t> last_run_ns_{0};

  // Instance counters parented into the process-wide expdb_engine_*
  // metrics.
  obs::Counter runs_;
  obs::Counter removed_;
  obs::Histogram* pass_latency_;
};

}  // namespace engine
}  // namespace expdb

#endif  // EXPDB_ENGINE_MAINTENANCE_H_
