#include "engine/maintenance.h"

#include <chrono>

#include "engine/engine.h"
#include "obs/log.h"
#include "obs/trace.h"

namespace expdb {
namespace engine {

namespace {

void LogMaintenanceEvent(const char* event,
                         std::vector<obs::LogField> fields) {
  obs::EventLog& log = obs::EventLog::Global();
  if (!log.enabled()) return;
  log.Emit(obs::LogSeverity::kInfo, "engine", event, std::move(fields));
}

}  // namespace

MaintenanceService::MaintenanceService(Engine* engine, int64_t interval_ms)
    : engine_(engine), interval_ms_(interval_ms > 0 ? interval_ms : 100) {
  obs::MetricsRegistry& r = obs::MetricsRegistry::Global();
  runs_.SetParent(r.GetCounter("expdb_engine_maintenance_runs_total"));
  removed_.SetParent(r.GetCounter("expdb_engine_maintenance_removed_total"));
  pass_latency_ = r.GetHistogram("expdb_engine_maintenance_latency_ns");
}

MaintenanceService::~MaintenanceService() { Stop(); }

void MaintenanceService::Start() {
  std::lock_guard<std::mutex> guard(mu_);
  if (thread_running_) return;
  stop_ = false;
  thread_ = std::thread(&MaintenanceService::Loop, this);
  thread_running_ = true;
}

void MaintenanceService::Stop() {
  std::thread to_join;
  {
    std::lock_guard<std::mutex> guard(mu_);
    if (!thread_running_) return;
    stop_ = true;
    thread_running_ = false;
    to_join = std::move(thread_);
  }
  cv_.notify_all();
  if (to_join.joinable()) to_join.join();
}

void MaintenanceService::Pause() {
  {
    std::lock_guard<std::mutex> guard(mu_);
    if (paused_) return;
    paused_ = true;
  }
  cv_.notify_all();
  LogMaintenanceEvent("maintenance_pause", {});
}

void MaintenanceService::Resume() {
  {
    std::lock_guard<std::mutex> guard(mu_);
    paused_ = false;
  }
  Start();
  cv_.notify_all();
  LogMaintenanceEvent("maintenance_resume", {});
}

size_t MaintenanceService::RunOnce() {
  obs::ScopedSpan span("engine.maintenance.pass", pass_latency_);
  size_t removed = 0;
  uint64_t segments_dropped = 0;
  Status view_status = Status::OK();
  Timestamp now;
  {
    Engine::ExclusiveGuard guard = engine_->LockExclusive();
    now = engine_->Now();
    // Physical removal: under lazy policy this deletes every expired
    // tuple (queries never saw them anyway — expτ filters them); under
    // eager policy the advance already removed them and this is a no-op
    // sweep for stragglers. With no triggers registered the compaction
    // runs the segment bulk-drop path: whole expired segments go in O(1)
    // each, so a pass over n expired tuples in k segments costs O(k).
    const uint64_t segs_before =
        engine_->expiration().metrics().segments_dropped.value();
    removed = engine_->expiration().Compact();
    segments_dropped =
        engine_->expiration().metrics().segments_dropped.value() -
        segs_before;
    // A removal is a physical mutation; publish it to epoch observers.
    if (removed > 0) engine_->db().BumpEpoch();
    // Refresh views that explicit updates marked stale, on the
    // background thread instead of some future reader's critical path.
    view_status = engine_->views().AdvanceAllTo(now);
  }
  runs_.Increment();
  removed_.Increment(removed);
  last_run_ns_.store(obs::SteadyNowNs(), std::memory_order_relaxed);
  LogMaintenanceEvent(
      "maintenance_run",
      {{"removed", std::to_string(removed)},
       {"segments_dropped", std::to_string(segments_dropped)},
       {"now", now.ToString()},
       {"views", view_status.ok() ? "ok" : view_status.ToString()}});
  return removed;
}

void MaintenanceService::Loop() {
  std::unique_lock<std::mutex> lock(mu_);
  while (!stop_) {
    cv_.wait_for(lock, std::chrono::milliseconds(interval_ms_),
                 [this] { return stop_; });
    if (stop_) break;
    if (paused_) continue;
    // Run the pass without holding mu_ (RunOnce takes the engine lock;
    // keeping mu_ out of that nesting keeps mu_ a leaf).
    lock.unlock();
    RunOnce();
    lock.lock();
  }
}

void MaintenanceService::set_interval_ms(int64_t ms) {
  {
    std::lock_guard<std::mutex> guard(mu_);
    interval_ms_ = ms > 0 ? ms : 1;
  }
  Start();
  cv_.notify_all();
}

int64_t MaintenanceService::interval_ms() const {
  std::lock_guard<std::mutex> guard(mu_);
  return interval_ms_;
}

bool MaintenanceService::running() const {
  std::lock_guard<std::mutex> guard(mu_);
  return thread_running_ && !stop_;
}

bool MaintenanceService::paused() const {
  std::lock_guard<std::mutex> guard(mu_);
  return paused_;
}

std::string MaintenanceService::StatusString() const {
  std::string state;
  {
    std::lock_guard<std::mutex> guard(mu_);
    if (!thread_running_ || stop_) {
      state = "stopped";
    } else if (paused_) {
      state = "paused";
    } else {
      state = "running";
    }
    state += ", interval " + std::to_string(interval_ms_) + "ms";
  }
  return "maintenance: " + state + ", " + std::to_string(runs()) +
         " runs, " + std::to_string(tuples_removed()) + " tuples removed";
}

}  // namespace engine
}  // namespace expdb
