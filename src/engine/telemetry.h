// TelemetryService: the engine's background observer thread
// (docs/OBSERVABILITY.md §9) — the MaintenanceService's read-only
// sibling, same start/stop discipline.
//
// On a configurable cadence each tick:
//  1. computes the expiration-pressure gauges from the segmented
//     storage and the engine (per-relation live vs fully-expired
//     segment occupancy, the expired-tuple backlog awaiting physical
//     drain, the expiration horizon min texp − now, maintenance lag
//     since the last pass, result-cache staleness),
//  2. samples the whole MetricsRegistry into fixed-capacity time-series
//     rings (obs::TimeSeriesStore: counter deltas/rates, sliding-window
//     histogram percentiles),
//  3. feeds a rule-based health model — healthy | degraded(reasons) |
//     unhealthy(reasons) — and emits a state-transition event into the
//     EventLog whenever the verdict changes.
//
// SQL surface: MONITOR STATUS | HISTORY <metric> | THRESHOLDS,
// SHOW HEALTH, SET telemetry_interval_ms. HTTP surface (via
// Engine::StartHttpEndpoint): /metrics, /healthz, /vars,
// /timeseries?metric=... — HandleHttp below is the router.

#ifndef EXPDB_ENGINE_TELEMETRY_H_
#define EXPDB_ENGINE_TELEMETRY_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "obs/http_endpoint.h"
#include "obs/metrics.h"
#include "obs/timeseries.h"

namespace expdb {
namespace engine {

class Engine;

/// \brief The health model's verdict states, ordered by severity.
enum class HealthState { kHealthy, kDegraded, kUnhealthy };

std::string_view HealthStateToString(HealthState state);

/// \brief One health evaluation: the verdict plus the rule violations
/// that produced it (empty when healthy).
struct HealthReport {
  HealthState state = HealthState::kHealthy;
  std::vector<std::string> reasons;
  int64_t evaluated_at_ns = 0;  ///< steady clock (0 = never evaluated)

  /// "healthy" or "degraded: <r1>; <r2>" (SHOW HEALTH).
  std::string ToString() const;
  /// {"status":"degraded","reasons":[...]} (/healthz body).
  std::string ToJson() const;
};

/// \brief The health model's rule thresholds (MONITOR THRESHOLDS).
/// Defaults suit the repo's tick-time examples; embedders tune via
/// set_thresholds before going live.
struct HealthThresholds {
  /// Expired-tuple backlog (stored, awaiting drain) at or above which
  /// the engine is degraded / unhealthy.
  uint64_t backlog_degraded = 10'000;
  uint64_t backlog_unhealthy = 100'000;
  /// Backlog strictly rising over this many consecutive sampling
  /// windows → degraded (maintenance is not keeping up), regardless of
  /// the absolute level.
  size_t backlog_growth_windows = 3;
  /// SQL statement p99 latency at or above this → degraded.
  int64_t statement_p99_ns = 250'000'000;  // 250ms
  /// Maintenance lag beyond factor × interval → degraded (only once
  /// the service has been started).
  double maintenance_lag_factor = 2.0;
};

/// \brief Background telemetry/health thread over one Engine.
///
/// Thread-safety: every public member may be called from any thread
/// (the SQL sessions, the HTTP endpoint thread, and the sampling loop
/// itself all do). The service never outlives its engine — the engine
/// destroys it before the components a tick reads.
class TelemetryService {
 public:
  TelemetryService(Engine* engine, int64_t interval_ms,
                   size_t ring_capacity = obs::TimeSeriesStore::kDefaultCapacity);
  ~TelemetryService();

  TelemetryService(const TelemetryService&) = delete;
  TelemetryService& operator=(const TelemetryService&) = delete;

  /// \brief Starts the sampling thread (idempotent).
  void Start();

  /// \brief Stops and joins the sampling thread (idempotent).
  void Stop();

  /// \brief One synchronous tick on the calling thread: pressure
  /// gauges, registry sample, health evaluation. Takes a read snapshot
  /// over every relation; the caller must hold no engine locks.
  void SampleOnce();

  /// \brief Sets the cadence and wakes the thread; starts it if it
  /// never ran (configuring a cadence means asking for telemetry).
  void set_interval_ms(int64_t ms);
  int64_t interval_ms() const;

  bool running() const;
  uint64_t ticks() const { return ticks_.value(); }

  /// \brief The latest health verdict. When no tick has ever run (the
  /// service was never started), evaluates one synchronously first so
  /// SHOW HEALTH / /healthz never answer from thin air.
  HealthReport CurrentHealth();

  HealthThresholds thresholds() const;
  void set_thresholds(const HealthThresholds& t);

  /// \brief The per-metric sample rings (MONITOR HISTORY,
  /// /timeseries).
  obs::TimeSeriesStore& series() { return series_; }
  const obs::TimeSeriesStore& series() const { return series_; }

  /// \brief MONITOR STATUS: service state, health verdict, pressure
  /// gauges, event-log sink state, and every active registry metric.
  std::string StatusString();

  /// \brief MONITOR THRESHOLDS: the health rules with their current
  /// thresholds, one per line.
  std::string ThresholdsString() const;

  /// \brief Routes one observability HTTP request: /metrics (Prometheus
  /// text), /healthz (200/503 + JSON reasons), /vars (JSON metric
  /// snapshot), /timeseries[?metric=...] (JSON ring dump or name list).
  obs::HttpResponse HandleHttp(const obs::HttpRequest& request);

 private:
  void Loop();
  /// Evaluates the rules against the just-computed gauges. Called by
  /// SampleOnce after the gauges update; takes health_mu_.
  HealthReport EvaluateHealth(uint64_t backlog, int64_t lag_ms);

  Engine* engine_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::thread thread_;
  bool thread_running_ = false;  // guarded by mu_
  bool stop_ = false;            // guarded by mu_
  int64_t interval_ms_;          // guarded by mu_

  obs::TimeSeriesStore series_;

  /// Guards the health model's state. Leaf lock (never held across
  /// engine locks or mu_).
  mutable std::mutex health_mu_;
  HealthThresholds thresholds_;           // guarded by health_mu_
  HealthReport last_report_;              // guarded by health_mu_
  std::deque<uint64_t> backlog_history_;  // guarded by health_mu_

  // Instance counters parented into the process-wide expdb_telemetry_*.
  obs::Counter ticks_;
  obs::Histogram* tick_latency_;
  // Expiration-pressure gauges (registry-owned; Set each tick).
  obs::Gauge* backlog_gauge_;
  obs::Gauge* live_tuples_gauge_;
  obs::Gauge* live_segments_gauge_;
  obs::Gauge* expired_segments_gauge_;
  obs::Gauge* horizon_gauge_;
  obs::Gauge* maintenance_lag_gauge_;
  obs::Gauge* cache_stale_gauge_;
  obs::Gauge* health_gauge_;
};

}  // namespace engine
}  // namespace expdb

#endif  // EXPDB_ENGINE_TELEMETRY_H_
