#include "engine/telemetry.h"

#include <algorithm>
#include <chrono>

#include "engine/engine.h"
#include "engine/maintenance.h"
#include "obs/log.h"
#include "obs/trace.h"

namespace expdb {
namespace engine {

namespace {

int HealthRank(HealthState s) { return static_cast<int>(s); }

/// Raises `state` to at least `to` and records why.
void Raise(HealthState to, const std::string& reason, HealthState* state,
           std::vector<std::string>* reasons) {
  if (HealthRank(to) > HealthRank(*state)) *state = to;
  reasons->push_back(reason);
}

}  // namespace

std::string_view HealthStateToString(HealthState state) {
  switch (state) {
    case HealthState::kHealthy:
      return "healthy";
    case HealthState::kDegraded:
      return "degraded";
    case HealthState::kUnhealthy:
      return "unhealthy";
  }
  return "?";
}

std::string HealthReport::ToString() const {
  std::string out(HealthStateToString(state));
  if (!reasons.empty()) {
    out += ": ";
    for (size_t i = 0; i < reasons.size(); ++i) {
      if (i > 0) out += "; ";
      out += reasons[i];
    }
  }
  return out;
}

std::string HealthReport::ToJson() const {
  std::string out = "{\"status\":\"";
  out += HealthStateToString(state);
  out += "\",\"reasons\":[";
  for (size_t i = 0; i < reasons.size(); ++i) {
    if (i > 0) out += ",";
    out += "\"" + obs::JsonEscape(reasons[i]) + "\"";
  }
  out += "],\"evaluated_at_ns\":" + std::to_string(evaluated_at_ns) + "}";
  return out;
}

TelemetryService::TelemetryService(Engine* engine, int64_t interval_ms,
                                   size_t ring_capacity)
    : engine_(engine),
      interval_ms_(interval_ms > 0 ? interval_ms : 1000),
      series_(ring_capacity) {
  obs::MetricsRegistry& r = obs::MetricsRegistry::Global();
  ticks_.SetParent(r.GetCounter("expdb_telemetry_ticks_total",
                                "Telemetry sampling ticks"));
  tick_latency_ = r.GetHistogram("expdb_telemetry_tick_latency_ns",
                                 "Telemetry tick wall time");
  backlog_gauge_ =
      r.GetGauge("expdb_telemetry_expired_backlog",
                 "Stored tuples already expired, awaiting physical drain");
  live_tuples_gauge_ = r.GetGauge("expdb_telemetry_live_tuples",
                                  "Unexpired tuples across all relations");
  live_segments_gauge_ =
      r.GetGauge("expdb_telemetry_segments_live",
                 "Storage segments holding at least one live tuple");
  expired_segments_gauge_ =
      r.GetGauge("expdb_telemetry_segments_expired",
                 "Fully-expired storage segments awaiting O(1) drop");
  horizon_gauge_ = r.GetGauge(
      "expdb_telemetry_expiration_horizon_ticks",
      "min texp - now over all live tuples (-1: nothing expires)");
  maintenance_lag_gauge_ = r.GetGauge(
      "expdb_telemetry_maintenance_lag_ms",
      "Wall time since the last maintenance pass (-1: never ran)");
  cache_stale_gauge_ =
      r.GetGauge("expdb_telemetry_result_cache_stale_entries",
                 "Result-cache entries whose validity stamp has lapsed");
  health_gauge_ = r.GetGauge(
      "expdb_telemetry_health",
      "Health verdict: 0 healthy, 1 degraded, 2 unhealthy");
}

TelemetryService::~TelemetryService() { Stop(); }

void TelemetryService::Start() {
  std::lock_guard<std::mutex> guard(mu_);
  if (thread_running_) return;
  stop_ = false;
  thread_ = std::thread(&TelemetryService::Loop, this);
  thread_running_ = true;
}

void TelemetryService::Stop() {
  std::thread to_join;
  {
    std::lock_guard<std::mutex> guard(mu_);
    if (!thread_running_) return;
    stop_ = true;
    thread_running_ = false;
    to_join = std::move(thread_);
  }
  cv_.notify_all();
  if (to_join.joinable()) to_join.join();
}

void TelemetryService::Loop() {
  std::unique_lock<std::mutex> lock(mu_);
  while (!stop_) {
    cv_.wait_for(lock, std::chrono::milliseconds(interval_ms_),
                 [this] { return stop_; });
    if (stop_) break;
    // Tick without holding mu_ (SampleOnce takes engine locks; mu_
    // stays a leaf, exactly like the MaintenanceService's loop).
    lock.unlock();
    SampleOnce();
    lock.lock();
  }
}

void TelemetryService::SampleOnce() {
  obs::ScopedSpan span("engine.telemetry.tick", tick_latency_);

  uint64_t backlog = 0;
  uint64_t live_tuples = 0;
  uint64_t live_segments = 0;
  uint64_t expired_segments = 0;
  int64_t horizon = -1;
  size_t cache_stale = 0;
  {
    // A read snapshot over every relation: writers and maintenance stay
    // out while the occupancy sweep runs, so the gauges are a consistent
    // cut of the storage.
    Engine::Snapshot snap = engine_->OpenSnapshotAll();
    const Timestamp now = engine_->Now();
    for (const std::string& name : engine_->db().RelationNames()) {
      auto rel = engine_->db().GetRelation(name);
      if (!rel.ok()) continue;
      const Relation::SegmentOccupancy occ = rel.value()->OccupancyAt(now);
      backlog += occ.expired_tuples;
      live_tuples += occ.live_tuples;
      // "Live" here means: the segment still holds live tuples (fully
      // live or straddling); "expired" means droppable whole.
      live_segments += occ.live_segments + occ.straddling_segments;
      expired_segments += occ.expired_segments;
      const std::optional<Timestamp> next =
          rel.value()->NextExpirationAfter(now);
      if (next.has_value() && next->IsFinite()) {
        const int64_t delta = next->ticks() - now.ticks();
        if (horizon < 0 || delta < horizon) horizon = delta;
      }
    }
    cache_stale = engine_->result_cache().CountStaleAt(now);
  }

  const int64_t last_run = engine_->maintenance().last_run_ns();
  const int64_t lag_ms =
      last_run > 0 ? (obs::SteadyNowNs() - last_run) / 1'000'000 : -1;

  backlog_gauge_->Set(static_cast<int64_t>(backlog));
  live_tuples_gauge_->Set(static_cast<int64_t>(live_tuples));
  live_segments_gauge_->Set(static_cast<int64_t>(live_segments));
  expired_segments_gauge_->Set(static_cast<int64_t>(expired_segments));
  horizon_gauge_->Set(horizon);
  maintenance_lag_gauge_->Set(lag_ms);
  cache_stale_gauge_->Set(static_cast<int64_t>(cache_stale));

  // Health first, then the ring sample: the health gauge set by the
  // evaluation lands in the same tick's time series.
  EvaluateHealth(backlog, lag_ms);

  series_.Sample(obs::MetricsRegistry::Global().Snapshot(),
                 obs::SteadyNowNs());
  ticks_.Increment();
}

HealthReport TelemetryService::EvaluateHealth(uint64_t backlog,
                                              int64_t lag_ms) {
  HealthReport report;
  report.evaluated_at_ns = obs::SteadyNowNs();

  HealthState prev_state;
  {
    std::lock_guard<std::mutex> guard(health_mu_);
    const HealthThresholds& t = thresholds_;
    prev_state = last_report_.state;

    backlog_history_.push_back(backlog);
    while (backlog_history_.size() > t.backlog_growth_windows + 1) {
      backlog_history_.pop_front();
    }

    if (backlog >= t.backlog_unhealthy) {
      Raise(HealthState::kUnhealthy,
            "expired backlog " + std::to_string(backlog) + " >= " +
                std::to_string(t.backlog_unhealthy),
            &report.state, &report.reasons);
    } else if (backlog >= t.backlog_degraded) {
      Raise(HealthState::kDegraded,
            "expired backlog " + std::to_string(backlog) + " >= " +
                std::to_string(t.backlog_degraded),
            &report.state, &report.reasons);
    }

    if (backlog_history_.size() >= t.backlog_growth_windows + 1) {
      bool rising = true;
      for (size_t i = 1; i < backlog_history_.size(); ++i) {
        if (backlog_history_[i] <= backlog_history_[i - 1]) {
          rising = false;
          break;
        }
      }
      if (rising) {
        Raise(HealthState::kDegraded,
              "expired backlog rising over " +
                  std::to_string(t.backlog_growth_windows) +
                  " consecutive windows",
              &report.state, &report.reasons);
      }
    }

    obs::Histogram* stmt_latency = obs::MetricsRegistry::Global().GetHistogram(
        "expdb_sql_statement_latency_ns");
    if (stmt_latency->count() > 0) {
      const double p99 = stmt_latency->Percentile(99.0);
      if (p99 >= static_cast<double>(t.statement_p99_ns)) {
        Raise(HealthState::kDegraded,
              "statement p99 " + std::to_string(static_cast<int64_t>(p99)) +
                  "ns >= " + std::to_string(t.statement_p99_ns) + "ns",
              &report.state, &report.reasons);
      }
    }

    if (lag_ms >= 0 && engine_->maintenance().running()) {
      const double limit = t.maintenance_lag_factor *
                           static_cast<double>(
                               engine_->maintenance().interval_ms());
      if (static_cast<double>(lag_ms) > limit) {
        Raise(HealthState::kDegraded,
              "maintenance lag " + std::to_string(lag_ms) + "ms > " +
                  std::to_string(static_cast<int64_t>(limit)) + "ms",
              &report.state, &report.reasons);
      }
    }

    last_report_ = report;
  }

  health_gauge_->Set(HealthRank(report.state));

  if (report.state != prev_state) {
    obs::EventLog& log = obs::EventLog::Global();
    if (log.enabled()) {
      std::string reasons;
      for (size_t i = 0; i < report.reasons.size(); ++i) {
        if (i > 0) reasons += "; ";
        reasons += report.reasons[i];
      }
      log.Emit(HealthRank(report.state) > HealthRank(prev_state)
                   ? obs::LogSeverity::kWarn
                   : obs::LogSeverity::kInfo,
               "engine", "health_transition",
               {{"from", std::string(HealthStateToString(prev_state))},
                {"to", std::string(HealthStateToString(report.state))},
                {"reasons", reasons}});
    }
  }
  return report;
}

HealthReport TelemetryService::CurrentHealth() {
  {
    std::lock_guard<std::mutex> guard(health_mu_);
    if (last_report_.evaluated_at_ns != 0) return last_report_;
  }
  // Never evaluated (service not started): one synchronous tick so the
  // verdict reflects the actual engine, not a default.
  SampleOnce();
  std::lock_guard<std::mutex> guard(health_mu_);
  return last_report_;
}

HealthThresholds TelemetryService::thresholds() const {
  std::lock_guard<std::mutex> guard(health_mu_);
  return thresholds_;
}

void TelemetryService::set_thresholds(const HealthThresholds& t) {
  std::lock_guard<std::mutex> guard(health_mu_);
  thresholds_ = t;
}

void TelemetryService::set_interval_ms(int64_t ms) {
  {
    std::lock_guard<std::mutex> guard(mu_);
    interval_ms_ = ms > 0 ? ms : 1;
  }
  Start();
  cv_.notify_all();
}

int64_t TelemetryService::interval_ms() const {
  std::lock_guard<std::mutex> guard(mu_);
  return interval_ms_;
}

bool TelemetryService::running() const {
  std::lock_guard<std::mutex> guard(mu_);
  return thread_running_ && !stop_;
}

std::string TelemetryService::StatusString() {
  std::string state;
  {
    std::lock_guard<std::mutex> guard(mu_);
    state = thread_running_ && !stop_ ? "running" : "stopped";
    state += ", interval " + std::to_string(interval_ms_) + "ms";
  }
  std::string out = "telemetry: " + state + ", " + std::to_string(ticks()) +
                    " ticks, " + std::to_string(series_.series_count()) +
                    " series (ring capacity " +
                    std::to_string(series_.capacity()) + ")";
  HealthReport health;
  {
    std::lock_guard<std::mutex> guard(health_mu_);
    health = last_report_;
  }
  out += "\nhealth: ";
  out += health.evaluated_at_ns == 0 ? "never evaluated" : health.ToString();

  const obs::EventLog& log = obs::EventLog::Global();
  out += "\nevent log: sink " +
         std::string(log.HasSink() ? "open" : "closed") + ", " +
         std::to_string(log.write_errors()) + " write errors";
  const std::string sink_error = log.last_sink_error();
  if (!sink_error.empty()) out += ", last error '" + sink_error + "'";

  const std::string metrics =
      obs::TelemetryStatusText(obs::MetricsRegistry::Global());
  if (!metrics.empty()) out += "\nactive metrics:\n" + metrics;
  return out;
}

std::string TelemetryService::ThresholdsString() const {
  const HealthThresholds t = thresholds();
  std::string out = "health thresholds:";
  out += "\n  backlog_degraded       = " + std::to_string(t.backlog_degraded) +
         " expired tuples";
  out += "\n  backlog_unhealthy      = " +
         std::to_string(t.backlog_unhealthy) + " expired tuples";
  out += "\n  backlog_growth_windows = " +
         std::to_string(t.backlog_growth_windows) + " consecutive windows";
  out += "\n  statement_p99_ns       = " + std::to_string(t.statement_p99_ns) +
         " ns";
  out += "\n  maintenance_lag_factor = " +
         std::to_string(t.maintenance_lag_factor) + " x interval";
  return out;
}

obs::HttpResponse TelemetryService::HandleHttp(
    const obs::HttpRequest& request) {
  obs::HttpResponse resp;
  if (request.path == "/metrics") {
    resp.content_type = "text/plain; version=0.0.4; charset=utf-8";
    resp.body = obs::MetricsRegistry::Global().PrometheusText();
    return resp;
  }
  if (request.path == "/healthz") {
    const HealthReport health = CurrentHealth();
    resp.content_type = "application/json";
    // Degraded still serves traffic: only unhealthy flips the load
    // balancer's switch.
    resp.status = health.state == HealthState::kUnhealthy ? 503 : 200;
    resp.body = health.ToJson() + "\n";
    return resp;
  }
  if (request.path == "/vars") {
    resp.content_type = "application/json";
    resp.body = obs::MetricsRegistry::Global().JsonText();
    return resp;
  }
  if (request.path == "/timeseries") {
    resp.content_type = "application/json";
    const std::optional<std::string> metric =
        obs::QueryParam(request.query, "metric");
    if (!metric.has_value()) {
      resp.body = series_.JsonNames() + "\n";
      return resp;
    }
    const std::string body = series_.JsonText(*metric);
    if (body.empty()) {
      resp.status = 404;
      resp.body = "{\"error\":\"unknown metric '" + obs::JsonEscape(*metric) +
                  "' (never sampled)\"}\n";
      return resp;
    }
    resp.body = body + "\n";
    return resp;
  }
  resp.status = 404;
  resp.content_type = "application/json";
  resp.body = "{\"error\":\"no such route\",\"routes\":[\"/metrics\","
              "\"/healthz\",\"/vars\",\"/timeseries?metric=<name>\"]}\n";
  return resp;
}

}  // namespace engine
}  // namespace expdb
