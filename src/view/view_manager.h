// ViewManager: a catalog of named materialized views maintained in
// synchrony with a shared database.

#ifndef EXPDB_VIEW_VIEW_MANAGER_H_
#define EXPDB_VIEW_VIEW_MANAGER_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "view/materialized_view.h"

namespace expdb {

/// \brief Owns and maintains a set of named views over one database.
///
/// The database is borrowed; it must outlive the manager. Time flows only
/// forward and is shared by all views via AdvanceAllTo.
class ViewManager {
 public:
  explicit ViewManager(const Database* db) : db_(db) {}

  ViewManager(const ViewManager&) = delete;
  ViewManager& operator=(const ViewManager&) = delete;

  /// \brief Creates and materializes a view at time `now`.
  Result<MaterializedView*> CreateView(const std::string& name,
                                       ExpressionPtr expr,
                                       MaterializedView::Options options,
                                       Timestamp now);

  Result<MaterializedView*> GetView(const std::string& name);

  Status DropView(const std::string& name);

  bool HasView(const std::string& name) const {
    return views_.find(name) != views_.end();
  }

  /// \brief Runs due maintenance on every view.
  Status AdvanceAllTo(Timestamp now);

  /// \brief Notifies the manager that `relation` received an explicit
  /// update (insert/delete, as opposed to expiration): every view whose
  /// expression reads it is marked stale and will recompute at its next
  /// maintenance point.
  /// \return number of views affected.
  size_t NotifyBaseChanged(const std::string& relation);

  /// \brief Reads the named view at `now`.
  Result<Relation> Read(const std::string& name, Timestamp now,
                        Timestamp* served_at = nullptr);

  std::vector<std::string> ViewNames() const;
  size_t view_count() const { return views_.size(); }

  /// \brief Sum of all views' maintenance counters.
  ViewStats TotalStats() const;

 private:
  const Database* db_;
  std::map<std::string, std::unique_ptr<MaterializedView>> views_;
};

}  // namespace expdb

#endif  // EXPDB_VIEW_VIEW_MANAGER_H_
