// ViewManager: a catalog of named materialized views maintained in
// synchrony with a shared database.

#ifndef EXPDB_VIEW_VIEW_MANAGER_H_
#define EXPDB_VIEW_VIEW_MANAGER_H_

#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <vector>

#include "view/materialized_view.h"

namespace expdb {

/// \brief Owns and maintains a set of named views over one database.
///
/// The database is borrowed; it must outlive the manager. Time flows only
/// forward and is shared by all views via AdvanceAllTo.
///
/// Thread-safety (engine protocol, docs/CONCURRENCY.md): the catalog maps
/// and each view's stale flag are guarded by an internal mutex, so
/// NotifyBaseChanged may be called by concurrent DML writers (which hold
/// only the engine's shared lock) while other sessions consult
/// HasView/ViewNames. Operations that read or rewrite view *bodies*
/// against the database — CreateView, DropView, AdvanceAllTo, Read — must
/// run under the engine's exclusive lock; the internal mutex alone does
/// not protect the underlying base relations. Returned MaterializedView
/// pointers stay valid only while the caller's engine lock keeps DropView
/// out.
class ViewManager {
 public:
  explicit ViewManager(const Database* db);
  ~ViewManager();

  ViewManager(const ViewManager&) = delete;
  ViewManager& operator=(const ViewManager&) = delete;

  /// \brief Creates and materializes a view at time `now`.
  Result<MaterializedView*> CreateView(const std::string& name,
                                       ExpressionPtr expr,
                                       MaterializedView::Options options,
                                       Timestamp now);

  Result<MaterializedView*> GetView(const std::string& name);

  Status DropView(const std::string& name);

  bool HasView(const std::string& name) const {
    std::lock_guard<std::mutex> guard(mu_);
    return views_.find(name) != views_.end();
  }

  /// \brief Runs due maintenance on every view.
  Status AdvanceAllTo(Timestamp now);

  /// \brief Notifies the manager that `relation` received an explicit
  /// update (insert/delete, as opposed to expiration): every dependent
  /// view is marked stale and will apply the recorded base deltas — or
  /// recompute, when the incremental path is unavailable — at its next
  /// maintenance point. Routed through the inverted relation→views
  /// dependency index, so the cost is O(dependents), not O(views). Each
  /// notification bumps the `expdb_view_notifications_total` counter; the
  /// per-view stale transitions show up in
  /// `expdb_view_marked_stale_total`.
  /// \return the number of views whose expression reads `relation` (0 is
  /// a normal outcome for relations no view depends on — including
  /// relations the manager has never heard of; notification is not an
  /// error path).
  size_t NotifyBaseChanged(const std::string& relation);

  /// \brief Names of the views whose expressions read `relation`
  /// (a lookup in the inverted dependency index).
  std::vector<std::string> DependentViews(const std::string& relation) const;

  /// \brief Reads the named view at `now`.
  Result<Relation> Read(const std::string& name, Timestamp now,
                        Timestamp* served_at = nullptr);

  std::vector<std::string> ViewNames() const;
  size_t view_count() const {
    std::lock_guard<std::mutex> guard(mu_);
    return views_.size();
  }

  /// \brief Sum of all views' maintenance counters.
  ViewStats TotalStats() const;

 private:
  /// Unlocked body of GetView, for internal use while mu_ is held.
  Result<MaterializedView*> GetViewLocked(const std::string& name);

  const Database* db_;
  /// Guards views_, views_by_relation_, and stale-marking. A leaf in the
  /// lock order: acquired after the engine and relation locks, and no
  /// further lock is taken while held (docs/CONCURRENCY.md).
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<MaterializedView>> views_;
  /// Inverted dependency index: base relation → names of the views whose
  /// expressions read it. Maintained by CreateView/DropView; used by
  /// NotifyBaseChanged for stale-marking and delta routing.
  std::map<std::string, std::set<std::string>> views_by_relation_;
  // Manager-level metrics: a counter of NotifyBaseChanged calls and a
  // gauge contributing this manager's live view count to the global
  // `expdb_view_count` sum (retracted on destruction).
  obs::Counter notifications_;
  obs::Gauge view_count_gauge_;
};

}  // namespace expdb

#endif  // EXPDB_VIEW_VIEW_MANAGER_H_
