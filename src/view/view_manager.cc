#include "view/view_manager.h"

namespace expdb {

ViewManager::ViewManager(const Database* db) : db_(db) {
  obs::MetricsRegistry& r = obs::MetricsRegistry::Global();
  notifications_.SetParent(r.GetCounter("expdb_view_notifications_total"));
  view_count_gauge_.SetParent(r.GetGauge("expdb_view_count"));
}

// Out-of-line so ~Gauge retracts this manager's view-count contribution
// from the global sum exactly once, here.
ViewManager::~ViewManager() = default;

Result<MaterializedView*> ViewManager::CreateView(
    const std::string& name, ExpressionPtr expr,
    MaterializedView::Options options, Timestamp now) {
  if (name.empty()) {
    return Status::InvalidArgument("view name must not be empty");
  }
  std::lock_guard<std::mutex> guard(mu_);
  if (views_.find(name) != views_.end()) {
    return Status::AlreadyExists("view '" + name + "' already exists");
  }
  auto view = std::make_unique<MaterializedView>(std::move(expr), options);
  // Name the view before the first materialization so its maintenance
  // events carry the catalog name from the start.
  view->set_name(name);
  EXPDB_RETURN_NOT_OK(view->Initialize(*db_, now));
  auto [it, inserted] = views_.emplace(name, std::move(view));
  for (const std::string& base :
       it->second->expression()->BaseRelationNames()) {
    views_by_relation_[base].insert(name);
  }
  view_count_gauge_.Set(static_cast<int64_t>(views_.size()));
  return it->second.get();
}

Result<MaterializedView*> ViewManager::GetView(const std::string& name) {
  std::lock_guard<std::mutex> guard(mu_);
  return GetViewLocked(name);
}

Result<MaterializedView*> ViewManager::GetViewLocked(const std::string& name) {
  auto it = views_.find(name);
  if (it == views_.end()) {
    return Status::NotFound("no view named '" + name + "'");
  }
  return it->second.get();
}

Status ViewManager::DropView(const std::string& name) {
  std::lock_guard<std::mutex> guard(mu_);
  auto it = views_.find(name);
  if (it == views_.end()) {
    return Status::NotFound("no view named '" + name + "'");
  }
  for (const std::string& base :
       it->second->expression()->BaseRelationNames()) {
    auto rit = views_by_relation_.find(base);
    if (rit != views_by_relation_.end()) {
      rit->second.erase(name);
      if (rit->second.empty()) views_by_relation_.erase(rit);
    }
  }
  views_.erase(it);
  view_count_gauge_.Set(static_cast<int64_t>(views_.size()));
  return Status::OK();
}

size_t ViewManager::NotifyBaseChanged(const std::string& relation) {
  notifications_.Increment();
  std::lock_guard<std::mutex> guard(mu_);
  auto rit = views_by_relation_.find(relation);
  if (rit == views_by_relation_.end()) return 0;
  size_t affected = 0;
  for (const std::string& name : rit->second) {
    auto it = views_.find(name);
    if (it == views_.end()) continue;
    it->second->MarkStale();
    ++affected;
  }
  return affected;
}

std::vector<std::string> ViewManager::DependentViews(
    const std::string& relation) const {
  std::lock_guard<std::mutex> guard(mu_);
  auto rit = views_by_relation_.find(relation);
  if (rit == views_by_relation_.end()) return {};
  return std::vector<std::string>(rit->second.begin(), rit->second.end());
}

Status ViewManager::AdvanceAllTo(Timestamp now) {
  std::lock_guard<std::mutex> guard(mu_);
  for (auto& [name, view] : views_) {
    EXPDB_RETURN_NOT_OK(view->AdvanceTo(*db_, now));
  }
  return Status::OK();
}

Result<Relation> ViewManager::Read(const std::string& name, Timestamp now,
                                   Timestamp* served_at) {
  std::lock_guard<std::mutex> guard(mu_);
  EXPDB_ASSIGN_OR_RETURN(MaterializedView * view, GetViewLocked(name));
  return view->Read(*db_, now, served_at);
}

std::vector<std::string> ViewManager::ViewNames() const {
  std::lock_guard<std::mutex> guard(mu_);
  std::vector<std::string> names;
  names.reserve(views_.size());
  for (const auto& [name, view] : views_) names.push_back(name);
  return names;
}

ViewStats ViewManager::TotalStats() const {
  std::lock_guard<std::mutex> guard(mu_);
  ViewStats total;
  for (const auto& [name, view] : views_) {
    const ViewStats s = view->stats();
    total.recomputations += s.recomputations;
    total.reads += s.reads;
    total.reads_from_materialization += s.reads_from_materialization;
    total.reads_moved_backward += s.reads_moved_backward;
    total.reads_moved_forward += s.reads_moved_forward;
    total.patches_applied += s.patches_applied;
    total.tuples_recomputed += s.tuples_recomputed;
    total.delta_applies += s.delta_applies;
    total.delta_fallbacks += s.delta_fallbacks;
  }
  return total;
}

}  // namespace expdb
